#include "inner/line_cache.hpp"

namespace mcmm {

void LineCacheConfig::validate() const {
  MCMM_REQUIRE(line_bytes >= 8 && (line_bytes & (line_bytes - 1)) == 0,
               "LineCacheConfig: line size must be a power of two >= 8");
  MCMM_REQUIRE(size_bytes >= line_bytes && size_bytes % line_bytes == 0,
               "LineCacheConfig: size must be a multiple of the line size");
  MCMM_REQUIRE(ways >= 1 && num_lines() % ways == 0,
               "LineCacheConfig: ways must divide the line count");
}

LineCache::LineCache(const LineCacheConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  ways_.assign(static_cast<std::size_t>(cfg_.num_lines()), Way{});
}

bool LineCache::access(std::uint64_t address) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = address / static_cast<std::uint64_t>(cfg_.line_bytes);
  const std::uint64_t set =
      line % static_cast<std::uint64_t>(cfg_.num_sets());
  Way* base = ways_.data() + set * static_cast<std::uint64_t>(cfg_.ways);

  for (std::int64_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].line == line) {
      base[w].age = clock_;
      return false;  // hit
    }
  }
  // Miss: fill an empty way if any, else evict the least recently used.
  Way* victim = base;
  for (std::int64_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].line == kEmpty) {
      victim = &base[w];
      break;
    }
    if (base[w].age < victim->age) victim = &base[w];
  }
  ++misses_;
  victim->line = line;
  victim->age = clock_;
  return true;
}

}  // namespace mcmm
