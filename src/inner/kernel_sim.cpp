#include "inner/kernel_sim.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace mcmm {

const char* to_string(LoopOrder order) {
  switch (order) {
    case LoopOrder::kIJK: return "ijk";
    case LoopOrder::kIKJ: return "ikj";
    case LoopOrder::kJIK: return "jik";
    case LoopOrder::kJKI: return "jki";
    case LoopOrder::kKIJ: return "kij";
    case LoopOrder::kKJI: return "kji";
  }
  return "?";
}

std::vector<LoopOrder> all_loop_orders() {
  return {LoopOrder::kIJK, LoopOrder::kIKJ, LoopOrder::kJIK,
          LoopOrder::kJKI, LoopOrder::kKIJ, LoopOrder::kKJI};
}

namespace {

constexpr std::int64_t kElem = 8;  // sizeof(double)

/// Disjoint base addresses for the three parent matrices, far enough
/// apart that lines never alias across matrices by accident of layout
/// (they can still conflict in the cache, which is the point).
struct Layout {
  std::uint64_t a_base, b_base, c_base;
  std::int64_t ld;

  std::uint64_t a(std::int64_t i, std::int64_t k) const {
    return a_base + static_cast<std::uint64_t>((i * ld + k) * kElem);
  }
  std::uint64_t b(std::int64_t k, std::int64_t j) const {
    return b_base + static_cast<std::uint64_t>((k * ld + j) * kElem);
  }
  std::uint64_t c(std::int64_t i, std::int64_t j) const {
    return c_base + static_cast<std::uint64_t>((i * ld + j) * kElem);
  }
};

}  // namespace

bool kernel_fits(const LineCacheConfig& l1, std::int64_t q) {
  return 3 * q * q * kElem <= l1.size_bytes;
}

InnerKernelStats simulate_inner_kernel(const LineCacheConfig& l1,
                                       std::int64_t q, LoopOrder order,
                                       std::int64_t ld) {
  MCMM_REQUIRE(q >= 1, "simulate_inner_kernel: q must be >= 1");
  MCMM_REQUIRE(ld >= q, "simulate_inner_kernel: leading dimension < q");
  LineCache cache(l1);
  Layout lay;
  lay.ld = ld;
  // 1 GiB apart: no accidental line sharing between matrices.
  lay.a_base = 0;
  lay.b_base = std::uint64_t{1} << 30;
  lay.c_base = std::uint64_t{2} << 30;

  InnerKernelStats stats;

  // Compulsory floor: distinct lines of the three strided blocks.
  {
    std::unordered_set<std::uint64_t> lines;
    for (std::int64_t r = 0; r < q; ++r) {
      for (std::int64_t s = 0; s < q; ++s) {
        lines.insert(lay.a(r, s) / static_cast<std::uint64_t>(l1.line_bytes));
        lines.insert(lay.b(r, s) / static_cast<std::uint64_t>(l1.line_bytes));
        lines.insert(lay.c(r, s) / static_cast<std::uint64_t>(l1.line_bytes));
      }
    }
    stats.cold_lines = static_cast<std::int64_t>(lines.size());
  }

  auto fma = [&](std::int64_t i, std::int64_t j, std::int64_t k) {
    stats.misses += cache.access(lay.a(i, k)) ? 1 : 0;
    stats.misses += cache.access(lay.b(k, j)) ? 1 : 0;
    stats.misses += cache.access(lay.c(i, j)) ? 1 : 0;
    stats.accesses += 3;
    ++stats.fmas;
  };

  // The six loop orders, outer-to-inner.
  switch (order) {
    case LoopOrder::kIJK:
      for (std::int64_t i = 0; i < q; ++i)
        for (std::int64_t j = 0; j < q; ++j)
          for (std::int64_t k = 0; k < q; ++k) fma(i, j, k);
      break;
    case LoopOrder::kIKJ:
      for (std::int64_t i = 0; i < q; ++i)
        for (std::int64_t k = 0; k < q; ++k)
          for (std::int64_t j = 0; j < q; ++j) fma(i, j, k);
      break;
    case LoopOrder::kJIK:
      for (std::int64_t j = 0; j < q; ++j)
        for (std::int64_t i = 0; i < q; ++i)
          for (std::int64_t k = 0; k < q; ++k) fma(i, j, k);
      break;
    case LoopOrder::kJKI:
      for (std::int64_t j = 0; j < q; ++j)
        for (std::int64_t k = 0; k < q; ++k)
          for (std::int64_t i = 0; i < q; ++i) fma(i, j, k);
      break;
    case LoopOrder::kKIJ:
      for (std::int64_t k = 0; k < q; ++k)
        for (std::int64_t i = 0; i < q; ++i)
          for (std::int64_t j = 0; j < q; ++j) fma(i, j, k);
      break;
    case LoopOrder::kKJI:
      for (std::int64_t k = 0; k < q; ++k)
        for (std::int64_t j = 0; j < q; ++j)
          for (std::int64_t i = 0; i < q; ++i) fma(i, j, k);
      break;
  }
  return stats;
}

}  // namespace mcmm
