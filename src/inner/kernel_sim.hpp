// Element-level simulation of the sequential q x q block kernel — the
// level below the paper's model.
//
// The paper's analysis stops at block granularity: it assumes the
// sequential kernel that executes each block FMA runs out of the private
// cache ("the distributed cache must be large enough...: 3 q^2 <= S_D",
// and "typically, q ranges from 32 to 100").  This simulator checks that
// assumption for real: it walks the kernel's element accesses (all six
// loop orders, with the blocks living inside larger row-major matrices,
// so B's rows are strided) through a line-granularity L1 model and
// reports misses per FMA.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inner/line_cache.hpp"

namespace mcmm {

/// The six permutations of the kernel's loops, named outer-to-inner.
enum class LoopOrder { kIJK, kIKJ, kJIK, kJKI, kKIJ, kKJI };

const char* to_string(LoopOrder order);
std::vector<LoopOrder> all_loop_orders();

struct InnerKernelStats {
  std::int64_t fmas = 0;
  std::int64_t accesses = 0;  ///< element loads/stores (3 per FMA)
  std::int64_t misses = 0;    ///< L1 line fills
  double misses_per_fma() const {
    return fmas == 0 ? 0.0
                     : static_cast<double>(misses) / static_cast<double>(fmas);
  }
  /// The compulsory floor: every distinct line of the three q x q blocks
  /// (strided in their parent matrices) must be filled once.
  std::int64_t cold_lines = 0;
};

/// Simulate C[q x q] += A[q x q] * B[q x q] where the blocks sit inside
/// row-major parent matrices with leading dimension `ld` elements
/// (ld >= q; ld == q means contiguous blocks).  8-byte elements.
InnerKernelStats simulate_inner_kernel(const LineCacheConfig& l1,
                                       std::int64_t q, LoopOrder order,
                                       std::int64_t ld);

/// The paper's residency condition for the block kernel: all three
/// blocks fit, 3 q^2 elements * 8 bytes <= cache size.
bool kernel_fits(const LineCacheConfig& l1, std::int64_t q);

}  // namespace mcmm
