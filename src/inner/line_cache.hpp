// Cache-line-granularity set-associative LRU cache for the inner-kernel
// simulator.
//
// Everything else in the library works at the paper's q x q block
// granularity and *assumes* the sequential kernel under each block FMA
// runs out of the private cache (Section 2.1: "3 q^2 <= S_D").  This
// cache models that inner level for real: 64-byte lines, configurable
// size and associativity, byte addresses in.  Small ways counts are the
// norm, so each set is a tiny age-ordered array rather than a linked
// list.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

struct LineCacheConfig {
  std::int64_t size_bytes = 32 * 1024;  ///< total capacity
  std::int64_t line_bytes = 64;
  std::int64_t ways = 8;

  std::int64_t num_lines() const { return size_bytes / line_bytes; }
  std::int64_t num_sets() const { return num_lines() / ways; }
  void validate() const;
};

class LineCache {
public:
  explicit LineCache(const LineCacheConfig& cfg);

  /// Touch one byte address; returns true on a miss (line fill).
  bool access(std::uint64_t address);

  std::int64_t misses() const { return misses_; }
  std::int64_t accesses() const { return accesses_; }
  double miss_rate() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }
  void reset_stats() { misses_ = accesses_ = 0; }

private:
  struct Way {
    std::uint64_t line = kEmpty;
    std::uint64_t age = 0;  // last-access stamp
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  LineCacheConfig cfg_;
  std::vector<Way> ways_;  // num_sets * ways, row per set
  std::uint64_t clock_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t accesses_ = 0;
};

}  // namespace mcmm
