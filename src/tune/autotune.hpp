// On-host micro-kernel autotuning (tools/mcmm_tune).
//
// The kernel registry (gemm/microkernel.hpp) offers several register-tile
// shapes, and the engine exposes three more levers: the k-panel depth the
// blocked loops run at (the execution q — deeper panels amortise the C
// write-back over more rank-1 updates, shallower ones keep the packed
// strips resident), the software-prefetch distances threaded through the
// packs and the micro-kernel, and non-temporal C stores.  Which
// combination wins is a property of the machine — cache sizes, bandwidth,
// port widths — not of the code, which is why Martinez et al. (PAPERS.md)
// pick micro-kernel shapes per cache level and why BLIS ships per-uarch
// configs.
//
// autotune_kernel searches that space with live timed runs of gemm_micro
// on this host, in stages (shape x depth first, then prefetch distances,
// then pack prefetch and streaming), scoring each candidate by the median
// of N repeats.  The winner is returned as a KernelTuning, which
// mcmm_tune persists into the mcmm-machine-v1 profile ("kernel_tuning"
// section); KernelContext and MachineProfile::tiling() consume it so
// every tool that loads the profile runs the tuned configuration.
//
// Every candidate computes bit-identical C (the engine's determinism
// contract is kernel-independent in value only up to contraction — the
// tuner never mixes results, it only times), so tuning is purely a
// performance decision.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gemm/microkernel.hpp"

namespace mcmm::tune {

struct TuneOptions {
  /// Problem order the candidates are timed at.  Big enough that the
  /// blocked loops stream panels through the cache hierarchy the way a
  /// real product does; the default keeps a full tuning run in seconds.
  std::int64_t order = 512;

  /// Timed repeats per candidate; the score is the median (robust to a
  /// stray context switch, unlike the mean).
  int repeats = 3;

  /// CI smoke mode: a small order, fewer repeats, and a pruned candidate
  /// grid so the whole search runs in well under a second per kernel.
  bool quick = false;

  /// Candidate k-panel depths (the execution q).  Empty = defaults
  /// ({32, 64, 128, 256}, clamped to the order).
  std::vector<std::int64_t> kc_candidates;

  /// Candidate micro-kernel prefetch distances, in k-steps (applied to
  /// A and B independently).  Empty = defaults ({0, 2, 4, 8}).
  std::vector<std::int64_t> prefetch_grid;

  /// Candidate pack-time prefetch distances.  Empty = defaults
  /// ({0, 1, 2, 4}).
  std::vector<std::int64_t> pack_prefetch_grid;

  /// Restrict the kernel search to one dispatch name ("" = all kernels
  /// the host can run).
  std::string only_kernel;
};

/// One timed candidate, in search order.
struct TuneTrial {
  std::string kernel;
  std::int64_t kc = 0;
  std::int64_t prefetch_a = 0;
  std::int64_t prefetch_b = 0;
  std::int64_t pack_prefetch = 0;
  bool stream_stores = false;
  double ms = 0.0;      ///< median wall time of the repeats
  double gflops = 0.0;  ///< 2*order^3 / median time
};

struct TuneReport {
  KernelTuning best;             ///< the winner (tuned = true)
  std::int64_t order = 0;        ///< order the search timed at
  std::vector<TuneTrial> trials; ///< every candidate, in search order
};

/// Run the staged search on the calling thread (worker 0 of a 1-worker
/// KernelContext — kernel speed is a per-core property; the parallel
/// schedules inherit it through the shared context).
TuneReport autotune_kernel(const TuneOptions& opts = {});

}  // namespace mcmm::tune
