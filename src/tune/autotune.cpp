#include "tune/autotune.hpp"

#include <algorithm>
#include <chrono>

#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "util/error.hpp"

namespace mcmm::tune {

namespace {

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Deterministic non-trivial fill (same scheme the benches use): values
/// vary per coefficient so packing and arithmetic see realistic data.
void fill_operand(Matrix& m, double seed) {
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    double* row = m.row_ptr(i);
    for (std::int64_t j = 0; j < m.cols(); ++j) {
      row[j] = seed + 0.25 * static_cast<double>(i % 13) -
               0.125 * static_cast<double>(j % 7);
    }
  }
}

/// Median wall-clock ms of `repeats` gemm_micro runs of the configured
/// context (one untimed warm-up first: page faults, buffer growth, and
/// the CPUID probe all land there).
double time_candidate(KernelContext& ctx, Matrix& c, const Matrix& a,
                      const Matrix& b, std::int64_t kc, int repeats) {
  using clock = std::chrono::steady_clock;
  c.set_zero();
  gemm_micro(c, a, b, kc, ctx);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    c.set_zero();
    const clock::time_point t0 = clock::now();
    gemm_micro(c, a, b, kc, ctx);
    const clock::time_point t1 = clock::now();
    times.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        1e6);
  }
  return median(std::move(times));
}

struct Candidate {
  MicroKernel kernel;
  std::int64_t kc = 0;
  KernelKnobs knobs;
  std::int64_t pack_prefetch = 0;
  bool stream = false;
};

}  // namespace

TuneReport autotune_kernel(const TuneOptions& opts) {
  TuneOptions o = opts;
  if (o.quick) {
    if (o.order == TuneOptions{}.order) o.order = 192;
    o.repeats = std::min(o.repeats, 2);
    if (o.kc_candidates.empty()) o.kc_candidates = {32, 64};
    if (o.prefetch_grid.empty()) o.prefetch_grid = {0, 4};
    if (o.pack_prefetch_grid.empty()) o.pack_prefetch_grid = {0, 2};
  }
  if (o.kc_candidates.empty()) o.kc_candidates = {32, 64, 128, 256};
  if (o.prefetch_grid.empty()) o.prefetch_grid = {0, 2, 4, 8};
  if (o.pack_prefetch_grid.empty()) o.pack_prefetch_grid = {0, 1, 2, 4};
  MCMM_REQUIRE(o.order >= 32, "autotune_kernel: order must be >= 32");
  MCMM_REQUIRE(o.repeats >= 1, "autotune_kernel: repeats must be >= 1");

  std::vector<MicroKernel> kernels;
  if (!o.only_kernel.empty()) {
    kernels.push_back(micro_kernel_by_name(o.only_kernel));
  } else {
    kernels = all_micro_kernels();
  }

  Matrix a(o.order, o.order), b(o.order, o.order), c(o.order, o.order);
  fill_operand(a, 1.0);
  fill_operand(b, -2.0);

  const double flops = 2.0 * static_cast<double>(o.order) *
                       static_cast<double>(o.order) *
                       static_cast<double>(o.order);

  TuneReport report;
  report.order = o.order;
  KernelContext ctx(1, KernelPath::kScalar);

  Candidate best;
  double best_ms = 0.0;
  const auto run = [&](const Candidate& cand) {
    ctx.set_kernel(cand.kernel);
    ctx.set_knobs(cand.knobs);
    ctx.set_pack_prefetch(cand.pack_prefetch);
    ctx.set_stream_stores(cand.stream);
    const double ms = time_candidate(ctx, c, a, b, cand.kc, o.repeats);
    TuneTrial trial;
    trial.kernel = cand.kernel.name;
    trial.kc = cand.kc;
    trial.prefetch_a = cand.knobs.prefetch_a;
    trial.prefetch_b = cand.knobs.prefetch_b;
    trial.pack_prefetch = cand.pack_prefetch;
    trial.stream_stores = cand.stream;
    trial.ms = ms;
    trial.gflops = flops / (ms * 1e6);
    report.trials.push_back(trial);
    if (best.kernel.fn == nullptr || ms < best_ms) {
      best = cand;
      best_ms = ms;
    }
    return ms;
  };

  // Stage 1: register-tile shape x k-panel depth.  These two interact
  // (the tile dictates how much of the panel each pass touches), so they
  // are searched jointly; the later knobs are refinements of the winner.
  for (const MicroKernel& kernel : kernels) {
    for (const std::int64_t kc : o.kc_candidates) {
      if (kc > o.order) continue;
      Candidate cand;
      cand.kernel = kernel;
      cand.kc = kc;
      run(cand);
    }
  }

  // Stage 2: micro-kernel prefetch distances on the winning shape/depth.
  {
    const Candidate base = best;
    for (const std::int64_t pa : o.prefetch_grid) {
      for (const std::int64_t pb : o.prefetch_grid) {
        if (pa == base.knobs.prefetch_a && pb == base.knobs.prefetch_b) {
          continue;  // already timed in stage 1
        }
        Candidate cand = base;
        cand.knobs.prefetch_a = pa;
        cand.knobs.prefetch_b = pb;
        run(cand);
      }
    }
  }

  // Stage 3: pack prefetch, then the streaming-store toggle.
  {
    const Candidate base = best;
    for (const std::int64_t pp : o.pack_prefetch_grid) {
      if (pp == base.pack_prefetch) continue;
      Candidate cand = base;
      cand.pack_prefetch = pp;
      run(cand);
    }
  }
  if (best.kernel.stream_align > 0) {
    Candidate cand = best;
    cand.stream = !cand.stream;
    run(cand);
  }

  report.best.tuned = true;
  report.best.kernel = best.kernel.name;
  report.best.kc = best.kc;
  report.best.prefetch_a = best.knobs.prefetch_a;
  report.best.prefetch_b = best.knobs.prefetch_b;
  report.best.pack_prefetch = best.pack_prefetch;
  report.best.stream_stores = best.stream;
  report.best.gflops = flops / (best_ms * 1e6);
  return report;
}

}  // namespace mcmm::tune
