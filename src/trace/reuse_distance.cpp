#include "trace/reuse_distance.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcmm {

std::int64_t ReuseProfile::lru_misses(std::int64_t capacity) const {
  MCMM_REQUIRE(capacity >= 1, "lru_misses: capacity must be >= 1");
  std::int64_t misses = cold;
  for (std::size_t d = static_cast<std::size_t>(capacity) + 1;
       d < counts.size(); ++d) {
    misses += counts[d];
  }
  return misses;
}

std::int64_t ReuseProfile::working_set() const {
  for (std::size_t d = counts.size(); d-- > 1;) {
    if (counts[d] > 0) return static_cast<std::int64_t>(d);
  }
  return 0;
}

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer() { profile_.counts.resize(1); }

void ReuseDistanceAnalyzer::fenwick_add(std::size_t pos, std::int64_t delta) {
  for (std::size_t i = pos + 1; i <= tree_.size(); i += i & (~i + 1)) {
    tree_[i - 1] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::fenwick_sum(std::size_t pos) const {
  std::int64_t s = 0;
  for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
    s += tree_[i - 1];
  }
  return s;
}

std::int64_t ReuseDistanceAnalyzer::feed(BlockId b) {
  // Grow the timestamp tree lazily (doubling keeps adds amortised O(log N)).
  if (now_ >= tree_.size()) {
    std::vector<std::int64_t> bigger(std::max<std::size_t>(tree_.size() * 2, 1024), 0);
    // Rebuild: only "most recent access" positions carry a 1.
    tree_.swap(bigger);
    for (const auto& [key, pos] : last_) {
      (void)key;
      fenwick_add(pos, 1);
    }
  }

  std::int64_t depth = -1;
  auto it = last_.find(b.bits());
  if (it != last_.end()) {
    // Distinct blocks since the previous access = number of "most recent"
    // markers strictly after it; +1 for the block itself.
    const std::int64_t after =
        fenwick_sum(now_ == 0 ? 0 : now_ - 1) - fenwick_sum(it->second);
    depth = after + 1;
    fenwick_add(it->second, -1);
    it->second = now_;
  } else {
    last_.emplace(b.bits(), now_);
  }
  fenwick_add(now_, 1);
  ++now_;

  ++profile_.total;
  if (depth < 0) {
    ++profile_.cold;
  } else {
    if (static_cast<std::size_t>(depth) >= profile_.counts.size()) {
      profile_.counts.resize(static_cast<std::size_t>(depth) + 1, 0);
    }
    ++profile_.counts[static_cast<std::size_t>(depth)];
  }
  return depth;
}

ReuseProfile reuse_profile(const Trace& trace) {
  ReuseDistanceAnalyzer analyzer;
  for (const AccessEvent& e : trace.events()) analyzer.feed(e.block());
  return analyzer.profile();
}

std::vector<ReuseProfile> per_core_reuse_profiles(const Trace& trace,
                                                  int cores) {
  MCMM_REQUIRE(cores >= 1, "per_core_reuse_profiles: cores must be >= 1");
  std::vector<ReuseDistanceAnalyzer> analyzers(
      static_cast<std::size_t>(cores));
  for (const AccessEvent& e : trace.events()) {
    MCMM_REQUIRE(e.core >= 0 && e.core < cores,
                 "per_core_reuse_profiles: event core out of range");
    analyzers[static_cast<std::size_t>(e.core)].feed(e.block());
  }
  std::vector<ReuseProfile> out;
  out.reserve(analyzers.size());
  for (const auto& a : analyzers) out.push_back(a.profile());
  return out;
}

}  // namespace mcmm
