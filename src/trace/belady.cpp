#include "trace/belady.hpp"

#include <set>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace mcmm {

std::int64_t belady_misses(const std::vector<BlockId>& accesses,
                           std::int64_t capacity) {
  MCMM_REQUIRE(capacity >= 1, "belady_misses: capacity must be >= 1");
  const std::size_t n = accesses.size();

  // Pass 1: next_use[i] = index of the next access to the same block
  // (n == "never again").
  std::vector<std::size_t> next_use(n, n);
  std::unordered_map<std::uint64_t, std::size_t> last_seen;
  last_seen.reserve(n / 4 + 8);
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t key = accesses[i].bits();
    const auto it = last_seen.find(key);
    next_use[i] = it == last_seen.end() ? n : it->second;
    last_seen[key] = i;
  }

  // Pass 2: simulate.  `resident` maps block -> its current next use;
  // `order` keeps residents sorted by next use, largest (furthest) last.
  std::int64_t misses = 0;
  std::unordered_map<std::uint64_t, std::size_t> resident;
  resident.reserve(static_cast<std::size_t>(capacity) * 2);
  std::set<std::pair<std::size_t, std::uint64_t>> order;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = accesses[i].bits();
    const auto it = resident.find(key);
    if (it != resident.end()) {
      order.erase({it->second, key});
    } else {
      ++misses;
      if (static_cast<std::int64_t>(resident.size()) == capacity) {
        // Evict the block used farthest in the future (or never).
        const auto victim = std::prev(order.end());
        resident.erase(victim->second);
        order.erase(victim);
      }
    }
    resident[key] = next_use[i];
    order.insert({next_use[i], key});
  }
  return misses;
}

std::vector<std::int64_t> per_core_belady_misses(const Trace& trace,
                                                 int cores,
                                                 std::int64_t capacity) {
  MCMM_REQUIRE(cores >= 1, "per_core_belady_misses: cores must be >= 1");
  std::vector<std::vector<BlockId>> streams(static_cast<std::size_t>(cores));
  for (const AccessEvent& e : trace.events()) {
    MCMM_REQUIRE(e.core >= 0 && e.core < cores,
                 "per_core_belady_misses: event core out of range");
    streams[static_cast<std::size_t>(e.core)].push_back(e.block());
  }
  std::vector<std::int64_t> out;
  out.reserve(streams.size());
  for (const auto& s : streams) out.push_back(belady_misses(s, capacity));
  return out;
}

}  // namespace mcmm
