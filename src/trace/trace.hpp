// Block-access traces: capture a schedule's data-access stream from the
// simulated machine, inspect it, persist it, and replay it.
//
// Traces decouple schedule generation from cache evaluation: one recorded
// run can be replayed against many cache geometries, or fed to the exact
// reuse-distance analyzer (reuse_distance.hpp), which predicts LRU misses
// for *every* capacity at once — an independent check of the LRU
// simulator used by the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/block_id.hpp"
#include "sim/machine.hpp"

namespace mcmm {

/// One data access, 16 bytes.
struct AccessEvent {
  std::uint64_t block_bits = 0;
  std::int32_t core = 0;
  std::uint8_t is_write = 0;

  BlockId block() const { return BlockId::from_bits(block_bits); }
  Rw rw() const { return is_write ? Rw::kWrite : Rw::kRead; }
};

/// Aggregate statistics of a trace (per matrix and per core).
struct TraceStats {
  std::int64_t accesses = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t distinct_blocks = 0;            ///< footprint
  std::int64_t per_matrix[3] = {0, 0, 0};      ///< accesses to A, B, C
  std::vector<std::int64_t> per_core;
};

/// An in-memory access trace.
class Trace {
public:
  void append(int core, BlockId b, Rw rw);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const AccessEvent& operator[](std::size_t i) const { return events_[i]; }
  const std::vector<AccessEvent>& events() const { return events_; }

  TraceStats stats() const;

  /// The subsequence of accesses issued by one core (its distributed-cache
  /// request stream).
  Trace filter_core(int core) const;

  /// Replay every access onto a machine, preserving order.  Under LRU this
  /// reproduces the recorded run's miss counts exactly (given the same
  /// geometry).  Throws if an event's core exceeds the machine's.
  void replay(Machine& machine) const;

  /// Binary round-trip ("MCMMTRC1" header + count + raw events).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

private:
  std::vector<AccessEvent> events_;
};

/// Attach a recorder to `machine`: every subsequent access is appended to
/// the returned Trace until the machine's access observer is replaced.
/// The Trace must outlive the recording (it is captured by reference).
void record_into(Machine& machine, Trace& trace);

}  // namespace mcmm
