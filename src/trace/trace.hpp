// Block-access traces: capture a schedule's data-access stream from the
// simulated machine, inspect it, persist it, and replay it.
//
// Traces decouple schedule generation from cache evaluation: one recorded
// run can be replayed against many cache geometries, or fed to the exact
// reuse-distance analyzer (reuse_distance.hpp), which predicts LRU misses
// for *every* capacity at once — an independent check of the LRU
// simulator used by the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/audit_hook.hpp"
#include "sim/block_id.hpp"
#include "sim/machine.hpp"

namespace mcmm {

/// One trace event, 16 bytes: a data access, or a parallel-step marker.
/// Markers (kind 2/3) carry no block — block_bits is BlockId::kInvalid and
/// core is -1.  Traces recorded via the legacy record_into() contain only
/// accesses; TraceRecorder also captures the ParallelSection step
/// structure, which the invariant auditor needs for write-race provenance.
struct AccessEvent {
  static constexpr std::uint8_t kRead = 0;
  static constexpr std::uint8_t kWrite = 1;
  static constexpr std::uint8_t kStepBegin = 2;
  static constexpr std::uint8_t kStepEnd = 3;

  std::uint64_t block_bits = 0;
  std::int32_t core = 0;
  std::uint8_t is_write = 0;  ///< one of kRead/kWrite/kStepBegin/kStepEnd

  bool is_marker() const { return is_write >= kStepBegin; }
  bool is_step_begin() const { return is_write == kStepBegin; }
  bool is_step_end() const { return is_write == kStepEnd; }
  BlockId block() const { return BlockId::from_bits(block_bits); }
  Rw rw() const { return is_write == kWrite ? Rw::kWrite : Rw::kRead; }
};

/// Aggregate statistics of a trace (per matrix and per core).
struct TraceStats {
  std::int64_t accesses = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t steps = 0;                      ///< recorded parallel steps
  std::int64_t distinct_blocks = 0;            ///< footprint
  std::int64_t per_matrix[3] = {0, 0, 0};      ///< accesses to A, B, C
  std::vector<std::int64_t> per_core;
};

/// An in-memory access trace.
class Trace {
public:
  void append(int core, BlockId b, Rw rw);
  /// Record a parallel-step boundary (TraceRecorder; audit replay).
  void append_step_begin();
  void append_step_end();

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const AccessEvent& operator[](std::size_t i) const { return events_[i]; }
  const std::vector<AccessEvent>& events() const { return events_; }

  TraceStats stats() const;

  /// The subsequence of accesses issued by one core (its distributed-cache
  /// request stream).
  Trace filter_core(int core) const;

  /// Replay every access onto a machine, preserving order.  Under LRU this
  /// reproduces the recorded run's miss counts exactly (given the same
  /// geometry).  Step markers are forwarded to the machine's audit hooks,
  /// so an attached InvariantAuditor sees the original step structure.
  /// Throws if an event's core exceeds the machine's.
  void replay(Machine& machine) const;

  /// Binary round-trip.  save() writes the "MCMMTRC2" format (which can
  /// carry step markers); load() accepts both it and the marker-less v1.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

private:
  std::vector<AccessEvent> events_;
};

/// Attach a recorder to `machine`: every subsequent access is appended to
/// the returned Trace until the machine's access observer is replaced.
/// The Trace must outlive the recording (it is captured by reference).
/// Captures accesses only; use TraceRecorder to also capture step markers.
void record_into(Machine& machine, Trace& trace);

/// RAII step-aware recorder: while alive, every data access and every
/// ParallelSection step boundary on `machine` is appended to `trace`.
/// Implemented as an AuditHook, so it leaves the machine's access observer
/// free and composes with a simultaneously attached InvariantAuditor.
class TraceRecorder final : public AuditHook {
public:
  TraceRecorder(Machine& machine, Trace& trace);
  ~TraceRecorder() override;

  void on_access(int core, BlockId b, Rw rw) override;
  void on_cache_op(BlockId /*b*/) override {}
  void on_step_begin() override;
  void on_step_end() override;

private:
  Machine& machine_;
  Trace& trace_;
};

}  // namespace mcmm
