// Belady's optimal replacement (MIN/OPT): evict the resident block whose
// next use lies farthest in the future.
//
// The paper's IDEAL mode is *hand-managed* (each algorithm decides its own
// loads and evictions); MIN is the provably optimal automatic policy for a
// known trace.  Having both lets the library answer two questions the
// paper leaves implicit:
//  * how close are the hand-crafted managements to the per-trace optimum
//    (MIN lower-bounds any explicit management of the same stream), and
//  * does the Frigo et al. competitiveness theorem the paper's Section 2.1
//    cites — LRU with capacity 2C incurs at most twice the misses of an
//    ideal (MIN) cache of capacity C — hold on these traces (it must; the
//    test suite checks the actual inequality, not the paraphrase).
//
// Complexity: O(N log C) time, O(N) space (two passes: next-use indices,
// then a furthest-next-use eviction set).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/block_id.hpp"
#include "trace/trace.hpp"

namespace mcmm {

/// Misses of a single MIN-managed cache of `capacity` blocks serving the
/// access stream in order.
std::int64_t belady_misses(const std::vector<BlockId>& accesses,
                           std::int64_t capacity);

/// Per-core MIN miss counts for a recorded machine trace (each core's
/// stream served by its own private cache, as in the machine model).
std::vector<std::int64_t> per_core_belady_misses(const Trace& trace,
                                                 int cores,
                                                 std::int64_t capacity);

}  // namespace mcmm
