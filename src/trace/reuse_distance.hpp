// Exact LRU stack-distance (reuse-distance) analysis, after Olken (1981).
//
// The stack distance of an access is the number of *distinct* blocks
// touched since the previous access to the same block, counting the block
// itself — i.e. its depth in the LRU stack.  A fully-associative LRU cache
// of capacity C hits exactly the accesses with depth <= C, so one pass
// over a trace predicts the miss count for EVERY capacity simultaneously.
// The test suite uses this as an independent oracle for the LRU simulator.
//
// Caveat for per-core predictions on the two-level machine: the oracle
// models each private cache as an ISOLATED LRU cache over its core's
// stream.  That is exact whenever the shared cache never evicts a block
// still resident below (MachineStats::back_invalidations == 0).  Under
// shared-cache pressure, inclusivity back-invalidation perturbs the
// private contents and the counts become incomparable in general — the
// removal usually costs extra misses, but can also prevent a worse
// eviction later (a Belady-anomaly-like effect the fuzzer observed).
//
// Complexity: O(N log N) time, O(B) space (N accesses, B distinct blocks),
// via a Fenwick tree over access timestamps.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace mcmm {

/// Histogram of stack depths: `counts[d]` = accesses at depth d (1-based;
/// index 0 is unused), `cold` = first-ever accesses (infinite depth).
struct ReuseProfile {
  std::vector<std::int64_t> counts;
  std::int64_t cold = 0;
  std::int64_t total = 0;

  /// Misses of a fully-associative LRU cache with `capacity` blocks:
  /// cold misses plus every access at depth > capacity.
  std::int64_t lru_misses(std::int64_t capacity) const;

  /// Smallest capacity achieving `lru_misses(c) == cold` (i.e. only
  /// compulsory misses remain); 0 for an empty profile.
  std::int64_t working_set() const;
};

/// Streaming analyzer: feed accesses one at a time.
class ReuseDistanceAnalyzer {
public:
  ReuseDistanceAnalyzer();

  /// Process one access; returns its stack depth (1-based), or -1 for a
  /// cold (first) access.
  std::int64_t feed(BlockId b);

  const ReuseProfile& profile() const { return profile_; }

private:
  void fenwick_add(std::size_t pos, std::int64_t delta);
  std::int64_t fenwick_sum(std::size_t pos) const;  // prefix [0, pos]

  std::vector<std::int64_t> tree_;                   // Fenwick over timestamps
  std::unordered_map<std::uint64_t, std::size_t> last_;  // block -> timestamp
  std::size_t now_ = 0;
  ReuseProfile profile_;
};

/// Profile a whole trace (all cores merged — the shared-cache view of a
/// single computing system, as in Section 2.3.2's bound).
ReuseProfile reuse_profile(const Trace& trace);

/// Per-core profiles (each core's distributed-cache request stream).
std::vector<ReuseProfile> per_core_reuse_profiles(const Trace& trace,
                                                  int cores);

}  // namespace mcmm
