#include "trace/trace.hpp"

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/error.hpp"

namespace mcmm {

void Trace::append(int core, BlockId b, Rw rw) {
  AccessEvent e;
  e.block_bits = b.bits();
  e.core = core;
  e.is_write = rw == Rw::kWrite ? AccessEvent::kWrite : AccessEvent::kRead;
  events_.push_back(e);
}

namespace {
AccessEvent make_marker(std::uint8_t kind) {
  AccessEvent e;
  e.block_bits = BlockId::kInvalid;
  e.core = -1;
  e.is_write = kind;
  return e;
}
}  // namespace

void Trace::append_step_begin() {
  events_.push_back(make_marker(AccessEvent::kStepBegin));
}

void Trace::append_step_end() {
  events_.push_back(make_marker(AccessEvent::kStepEnd));
}

TraceStats Trace::stats() const {
  TraceStats out;
  std::unordered_set<std::uint64_t> footprint;
  int max_core = -1;
  for (const AccessEvent& e : events_) max_core = std::max(max_core, e.core);
  out.per_core.assign(static_cast<std::size_t>(max_core + 1), 0);
  for (const AccessEvent& e : events_) {
    if (e.is_marker()) {
      if (e.is_step_begin()) ++out.steps;
      continue;
    }
    ++out.accesses;
    if (e.is_write == AccessEvent::kWrite) {
      ++out.writes;
    } else {
      ++out.reads;
    }
    footprint.insert(e.block_bits);
    ++out.per_matrix[static_cast<std::size_t>(e.block().tag())];
    ++out.per_core[static_cast<std::size_t>(e.core)];
  }
  out.distinct_blocks = static_cast<std::int64_t>(footprint.size());
  return out;
}

Trace Trace::filter_core(int core) const {
  Trace out;
  for (const AccessEvent& e : events_) {
    if (e.core == core) out.events_.push_back(e);
  }
  return out;
}

void Trace::replay(Machine& machine) const {
  for (const AccessEvent& e : events_) {
    if (e.is_step_begin()) {
      machine.audit_step_begin();
      continue;
    }
    if (e.is_step_end()) {
      machine.audit_step_end();
      continue;
    }
    MCMM_REQUIRE(e.core >= 0 && e.core < machine.cores(),
                 "Trace::replay: event core exceeds machine cores");
    machine.access(e.core, e.block(), e.rw());
  }
}

namespace {
constexpr char kMagicV1[8] = {'M', 'C', 'M', 'M', 'T', 'R', 'C', '1'};
constexpr char kMagicV2[8] = {'M', 'C', 'M', 'M', 'T', 'R', 'C', '2'};

bool valid_event(const AccessEvent& e) {
  if (e.block_bits == BlockId::kInvalid) {
    return e.core == -1 && (e.is_write == AccessEvent::kStepBegin ||
                            e.is_write == AccessEvent::kStepEnd);
  }
  return (e.block_bits >> 60) <= 2 && e.core >= 0 &&
         e.is_write <= AccessEvent::kWrite;
}
}  // namespace

void Trace::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MCMM_REQUIRE(f != nullptr, "Trace::save: cannot open " + path);
  bool ok = std::fwrite(kMagicV2, sizeof(kMagicV2), 1, f) == 1;
  const std::uint64_t count = events_.size();
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  if (count > 0) {
    ok = ok && std::fwrite(events_.data(), sizeof(AccessEvent), events_.size(),
                           f) == events_.size();
  }
  const bool closed = std::fclose(f) == 0;
  MCMM_REQUIRE(ok && closed, "Trace::save: short write to " + path);
}

Trace Trace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MCMM_REQUIRE(f != nullptr, "Trace::load: cannot open " + path);
  char magic[8];
  std::uint64_t count = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0 ||
             std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) &&
            std::fread(&count, sizeof(count), 1, f) == 1;
  Trace out;
  if (ok) {
    out.events_.resize(count);
    if (count > 0) {
      ok = std::fread(out.events_.data(), sizeof(AccessEvent), count, f) ==
           count;
    }
  }
  std::fclose(f);
  MCMM_REQUIRE(ok, "Trace::load: " + path + " is not a valid trace file");
  for (const AccessEvent& e : out.events_) {
    MCMM_REQUIRE(valid_event(e), "Trace::load: corrupt event in " + path);
  }
  return out;
}

void record_into(Machine& machine, Trace& trace) {
  machine.set_access_observer(
      [&trace](int core, BlockId b, Rw rw) { trace.append(core, b, rw); });
}

TraceRecorder::TraceRecorder(Machine& machine, Trace& trace)
    : machine_(machine), trace_(trace) {
  machine_.attach_audit_hook(this);
}

TraceRecorder::~TraceRecorder() { machine_.detach_audit_hook(this); }

void TraceRecorder::on_access(int core, BlockId b, Rw rw) {
  trace_.append(core, b, rw);
}

void TraceRecorder::on_step_begin() { trace_.append_step_begin(); }

void TraceRecorder::on_step_end() { trace_.append_step_end(); }

}  // namespace mcmm
