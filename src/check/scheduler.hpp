// Deterministic cooperative scheduler for the concurrency model checker.
//
// A Scheduler runs one *schedule* (one interleaving) of a scenario.  The
// scenario body executes as virtual thread 0; every checked primitive
// (src/check/sync.hpp) parks its thread at a yield point and the
// coordinator — the caller of run(), typically the explorer in
// model_checker.cpp — grants exactly one enabled thread at a time.  With
// only one thread ever running between yield points, the interleaving is
// fully determined by the sequence of grant decisions, which makes every
// execution replayable from its decision list alone.
//
// Virtual threads are real OS threads gated on per-thread futex tokens
// (std::atomic wait/notify): parked threads cost nothing, and the
// coordinator/worker handoff is two futex operations per decision.
//
// What the scheduler knows how to model:
//   * mutexes     — lock blocks while held; unlock publishes the holder's
//                   vector clock to the next locker;
//   * condvars    — wait atomically releases the mutex and sleeps (no
//                   spurious wakeups, which is precisely what makes lost
//                   wakeups *detectable*: a waiter nobody will notify is a
//                   deadlock, not a shrug); notify moves waiters to the
//                   mutex queue;
//   * atomics     — every access is a yield point; release stores publish
//                   the writer's clock on the object, acquire loads join
//                   it (relaxed does neither — the model checker sees the
//                   difference even though exploration itself is
//                   sequentially consistent);
//   * plain data  — checked_value accesses are not scheduling points but
//                   feed the vector-clock race detector: two accesses, at
//                   least one write, neither covering the other's epoch =
//                   data race, reported on *any* schedule;
//   * threads     — spawn/join edges, plus leak and deadlock detection.
//
// Failure handling: races, failed check::expect assertions and scenario
// exceptions are recorded and the run continues to completion (so the OS
// threads are joined and nothing leaks).  Deadlocks and over-long runs
// are terminal: the parked OS threads can never be released safely
// (unwinding arbitrary scenario code is not), so the Scheduler leaks
// itself and detaches them — acceptable because a terminal failure ends
// the exploration and the process reports and exits.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/vector_clock.hpp"

namespace mcmm::check {

enum class FailureKind {
  kNone = 0,
  kDataRace,
  kDeadlock,
  kLostWakeup,  // deadlock with at least one thread parked in a condvar wait
  kAssert,      // check::expect violation reported by the scenario
  kException,   // uncaught C++ exception escaped a virtual thread
  kDivergence,  // replay chose a thread that was not enabled
  kTooLong,     // exceeded max_steps (livelock guard)
};

const char* to_string(FailureKind kind);

/// One observed failure, carrying everything needed to show and replay it.
struct Failure {
  FailureKind kind = FailureKind::kNone;
  std::string message;
  /// The grant sequence up to the failure, "0,0,1,2,...": feed to
  /// Scheduler via a replay strategy (or `mcmm_check --replay`).
  std::string schedule;
  /// Human-readable interleaving: one "t<id>: <op>" line per grant.
  std::vector<std::string> interleaving;

  explicit operator bool() const { return kind != FailureKind::kNone; }
};

/// One coordinator decision: which thread ran, who else could have.
struct Decision {
  int chosen = -1;
  /// Candidate threads in canonical order: the previously running thread
  /// first when still enabled, then the rest ascending by id.  The
  /// explorer backtracks by advancing `index` within this order.
  std::vector<int> order;
  int index = 0;             // position of `chosen` in `order`
  int running_before = -1;   // thread granted by the previous decision
  int preemptions_before = 0;
};

namespace detail {
/// Lazily bound per-run identity of a checked primitive.  Primitives may
/// outlive runs (e.g. a global mutex), so each use re-registers when the
/// tag's run id is stale; run ids are globally unique across Scheduler
/// instances.
struct ObjectTag {
  std::uint64_t run = 0;
  int id = -1;
};
}  // namespace detail

class Scheduler {
 public:
  /// Picks the next thread: `order` is the canonical candidate list of the
  /// current decision (see Decision::order); returns an index into it.
  using Strategy = std::function<std::size_t(const Decision& decision)>;

  struct RunOutcome {
    Failure failure;
    std::vector<Decision> decisions;
    std::uint64_t steps = 0;
    bool leaked = false;  // terminal failure: scheduler leaked itself
  };

  /// Runs `scenario` as virtual thread 0 under `strategy`.  The Scheduler
  /// must be heap-allocated and owned by `self`; on a terminal failure the
  /// outcome's `leaked` is true and ownership is released (the object and
  /// its parked OS threads intentionally leak).
  static RunOutcome run(std::unique_ptr<Scheduler> self,
                        const std::function<void()>& scenario,
                        const Strategy& strategy, std::uint64_t max_steps);

  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Scheduler driving the calling thread, nullptr outside a scenario.
  static Scheduler* current() noexcept;

  // --- called from virtual threads by the checked primitives ---
  void mutex_lock(detail::ObjectTag& m, const char* what);
  bool mutex_try_lock(detail::ObjectTag& m, const char* what);
  void mutex_unlock(detail::ObjectTag& m, const char* what);
  void condvar_wait(detail::ObjectTag& cv, detail::ObjectTag& m,
                    const char* what);
  void condvar_notify(detail::ObjectTag& cv, bool all, const char* what);
  int spawn(std::function<void()> fn);
  void join_thread(int tid);
  bool thread_finished(int tid);
  std::thread::native_handle_type thread_native_handle(int tid);
  /// Atomic access: a yield point plus the release/acquire clock transfer.
  void atomic_access(detail::ObjectTag& obj, bool acquire, bool release,
                     const char* what);
  /// Plain-data access: not a yield point; updates the race detector and
  /// records a kDataRace failure when unordered with a previous access.
  void data_access(detail::ObjectTag& obj, bool write, const char* what);
  /// Scenario invariant violation (check::expect): recorded, run continues.
  void fail_check(const std::string& msg);

 private:
  struct VThread {
    int id = 0;
    std::function<void()> fn;
    std::thread os;
    std::atomic<int> go{0};  // 0 = parked, 1 = granted
    enum class Status : std::uint8_t { kReady, kBlocked, kFinished } status =
        Status::kReady;
    enum class WaitKind : std::uint8_t {
      kNone,
      kMutex,
      kCondvar,
      kJoin
    } wait_kind = WaitKind::kNone;
    int wait_id = -1;        // mutex/condvar/thread waited on
    int cond_mutex = -1;     // mutex to reacquire after a condvar wait
    VectorClock clock;
    std::string pending;     // description of the op performed when granted
  };
  struct MutexState {
    bool held = false;
    int owner = -1;
    VectorClock released;
  };
  struct CondvarState {
    std::vector<int> waiters;
  };
  struct AtomicState {
    VectorClock released;
  };
  struct DataState {
    int writer = -1;
    std::uint64_t write_epoch = 0;
    std::vector<std::pair<int, std::uint64_t>> read_epochs;
  };

  enum class ObjectKind : std::uint8_t { kMutex, kCondvar, kAtomic, kData };

  RunOutcome run_impl(const std::function<void()>& scenario,
                      const Strategy& strategy, std::uint64_t max_steps);

  int resolve(detail::ObjectTag& tag, ObjectKind kind);
  VThread& self();
  /// Park the calling virtual thread and hand control to the coordinator.
  void park(VThread& t);
  /// Coordinator: wake `t` and wait until control returns.
  void grant(VThread& t);
  void record_failure(FailureKind kind, const std::string& msg);
  std::string schedule_so_far() const;
  static void thread_main(Scheduler* sched, VThread* t);

  std::uint64_t run_uid_;                 // globally unique per run
  std::vector<std::unique_ptr<VThread>> threads_;
  std::vector<MutexState> mutexes_;
  std::vector<CondvarState> condvars_;
  std::vector<AtomicState> atomics_;
  std::vector<DataState> data_;
  std::vector<Decision> decisions_;
  std::vector<std::string> interleaving_;
  Failure failure_;
  std::atomic<int> control_{0};
  int running_ = -1;
  int preemptions_ = 0;
  bool started_ = false;
};

/// Scenario-side invariant: inside a model-checked run a violation is
/// recorded as a kAssert failure (the run continues so teardown stays
/// clean); outside a run it aborts via MCMM_ASSERT.
void expect(bool condition, const char* msg);

}  // namespace mcmm::check
