#include "check/scheduler.hpp"

#include <algorithm>
#include <exception>

#include "util/error.hpp"

namespace mcmm::check {

namespace {

// The scheduler driving the calling OS thread, and the virtual thread id
// the caller is executing as.  Set only inside thread_main, so code run by
// the coordinator (or any thread outside a scenario) sees nullptr and the
// checked primitives fall through to their std:: behaviour.
thread_local Scheduler* g_scheduler = nullptr;
thread_local int g_thread_id = -1;

std::atomic<std::uint64_t> g_run_counter{1};

}  // namespace

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kDataRace: return "data-race";
    case FailureKind::kDeadlock: return "deadlock";
    case FailureKind::kLostWakeup: return "lost-wakeup";
    case FailureKind::kAssert: return "assert";
    case FailureKind::kException: return "exception";
    case FailureKind::kDivergence: return "divergence";
    case FailureKind::kTooLong: return "too-long";
  }
  return "?";
}

void expect(bool condition, const char* msg) {
  if (condition) return;
  if (Scheduler* sched = Scheduler::current()) {
    sched->fail_check(msg);
    return;
  }
  MCMM_ASSERT(condition, msg);
}

Scheduler::Scheduler() : run_uid_(g_run_counter.fetch_add(1)) {}

Scheduler::~Scheduler() = default;

Scheduler* Scheduler::current() noexcept { return g_scheduler; }

Scheduler::VThread& Scheduler::self() {
  MCMM_ASSERT(g_scheduler == this && g_thread_id >= 0,
              "checked primitive used from a thread the scheduler does not "
              "own");
  return *threads_[static_cast<std::size_t>(g_thread_id)];
}

// --- handoff -----------------------------------------------------------
//
// Exactly one side is ever awake: the coordinator between grant() calls,
// or one virtual thread between park() calls.  The two futex tokens form
// a release/acquire chain, so every model-state access is ordered even
// though none of the model state is itself atomic.

void Scheduler::park(VThread& t) {
  control_.store(1, std::memory_order_release);
  control_.notify_one();
  t.go.wait(0, std::memory_order_acquire);
  t.go.store(0, std::memory_order_relaxed);
}

void Scheduler::grant(VThread& t) {
  t.go.store(1, std::memory_order_release);
  t.go.notify_one();
  control_.wait(0, std::memory_order_acquire);
  control_.store(0, std::memory_order_relaxed);
}

void Scheduler::thread_main(Scheduler* sched, VThread* t) {
  g_scheduler = sched;
  g_thread_id = t->id;
  // First grant: not a park (the thread has not yielded yet).
  t->go.wait(0, std::memory_order_acquire);
  t->go.store(0, std::memory_order_relaxed);
  try {
    t->fn();
  } catch (const std::exception& e) {
    sched->record_failure(FailureKind::kException,
                          std::string("uncaught exception in virtual thread "
                                      "t") +
                              std::to_string(t->id) + ": " + e.what());
  } catch (...) {
    sched->record_failure(FailureKind::kException,
                          "uncaught non-std exception in virtual thread t" +
                              std::to_string(t->id));
  }
  t->status = VThread::Status::kFinished;
  sched->control_.store(1, std::memory_order_release);
  sched->control_.notify_one();
}

// --- object registry ---------------------------------------------------

int Scheduler::resolve(detail::ObjectTag& tag, ObjectKind kind) {
  if (tag.run == run_uid_) return tag.id;
  tag.run = run_uid_;
  switch (kind) {
    case ObjectKind::kMutex:
      tag.id = static_cast<int>(mutexes_.size());
      mutexes_.emplace_back();
      break;
    case ObjectKind::kCondvar:
      tag.id = static_cast<int>(condvars_.size());
      condvars_.emplace_back();
      break;
    case ObjectKind::kAtomic:
      tag.id = static_cast<int>(atomics_.size());
      atomics_.emplace_back();
      break;
    case ObjectKind::kData:
      tag.id = static_cast<int>(data_.size());
      data_.emplace_back();
      break;
  }
  return tag.id;
}

// --- failures ----------------------------------------------------------

std::string Scheduler::schedule_so_far() const {
  std::string out;
  for (const Decision& d : decisions_) {
    if (!out.empty()) out += ',';
    out += std::to_string(d.chosen);
  }
  return out;
}

void Scheduler::record_failure(FailureKind kind, const std::string& msg) {
  // Built by append: GCC 12's -O2 inliner raises a spurious -Wrestrict on
  // the equivalent operator+ chain.
  std::string line = "t";
  line += std::to_string(g_thread_id);
  line += ": !! ";
  line += to_string(kind);
  line += ": ";
  line += msg;
  interleaving_.push_back(std::move(line));
  if (failure_.kind != FailureKind::kNone) return;  // first failure wins
  failure_.kind = kind;
  failure_.message = msg;
  failure_.schedule = schedule_so_far();
  failure_.interleaving = interleaving_;
}

void Scheduler::fail_check(const std::string& msg) {
  record_failure(FailureKind::kAssert, msg);
}

// --- threads -----------------------------------------------------------

int Scheduler::spawn(std::function<void()> fn) {
  VThread& parent = self();
  parent.pending = "spawn";
  park(parent);
  const int id = static_cast<int>(threads_.size());
  threads_.push_back(std::make_unique<VThread>());
  VThread& child = *threads_.back();
  child.id = id;
  child.fn = std::move(fn);
  child.pending = "start";
  child.clock = parent.clock;   // spawn edge: child sees everything so far
  child.clock.tick(id);
  parent.clock.tick(parent.id);
  child.os = std::thread(&Scheduler::thread_main, this, &child);
  return id;
}

void Scheduler::join_thread(int tid) {
  VThread& t = self();
  MCMM_ASSERT(tid >= 0 && tid < static_cast<int>(threads_.size()),
              "join of unknown virtual thread");
  t.pending = "join t" + std::to_string(tid);
  t.status = VThread::Status::kBlocked;
  t.wait_kind = VThread::WaitKind::kJoin;
  t.wait_id = tid;
  park(t);
  t.status = VThread::Status::kReady;
  t.wait_kind = VThread::WaitKind::kNone;
  t.clock.join(threads_[static_cast<std::size_t>(tid)]->clock);
  t.clock.tick(t.id);
}

bool Scheduler::thread_finished(int tid) {
  MCMM_ASSERT(tid >= 0 && tid < static_cast<int>(threads_.size()),
              "query of unknown virtual thread");
  return threads_[static_cast<std::size_t>(tid)]->status ==
         VThread::Status::kFinished;
}

std::thread::native_handle_type Scheduler::thread_native_handle(int tid) {
  MCMM_ASSERT(tid >= 0 && tid < static_cast<int>(threads_.size()),
              "query of unknown virtual thread");
  return threads_[static_cast<std::size_t>(tid)]->os.native_handle();
}

// --- mutexes -----------------------------------------------------------

void Scheduler::mutex_lock(detail::ObjectTag& tag, const char* what) {
  const int id = resolve(tag, ObjectKind::kMutex);
  VThread& t = self();
  t.pending = what;
  t.status = VThread::Status::kBlocked;
  t.wait_kind = VThread::WaitKind::kMutex;
  t.wait_id = id;
  park(t);
  // Granted implies the mutex is free: acquire it.
  t.status = VThread::Status::kReady;
  t.wait_kind = VThread::WaitKind::kNone;
  MutexState& m = mutexes_[static_cast<std::size_t>(id)];
  m.held = true;
  m.owner = t.id;
  t.clock.join(m.released);
  t.clock.tick(t.id);
}

bool Scheduler::mutex_try_lock(detail::ObjectTag& tag, const char* what) {
  const int id = resolve(tag, ObjectKind::kMutex);
  VThread& t = self();
  t.pending = what;
  park(t);
  MutexState& m = mutexes_[static_cast<std::size_t>(id)];
  if (m.held) return false;
  m.held = true;
  m.owner = t.id;
  t.clock.join(m.released);
  t.clock.tick(t.id);
  return true;
}

void Scheduler::mutex_unlock(detail::ObjectTag& tag, const char* what) {
  const int id = resolve(tag, ObjectKind::kMutex);
  VThread& t = self();
  t.pending = what;
  park(t);
  MutexState& m = mutexes_[static_cast<std::size_t>(id)];
  if (!m.held || m.owner != t.id) {
    record_failure(FailureKind::kAssert,
                   "mutex unlocked by a thread that does not hold it");
    return;
  }
  m.held = false;
  m.owner = -1;
  m.released = t.clock;
  t.clock.tick(t.id);
}

// --- condition variables -----------------------------------------------

void Scheduler::condvar_wait(detail::ObjectTag& cv_tag,
                             detail::ObjectTag& m_tag, const char* what) {
  const int cv_id = resolve(cv_tag, ObjectKind::kCondvar);
  const int m_id = resolve(m_tag, ObjectKind::kMutex);
  VThread& t = self();
  MutexState& m = mutexes_[static_cast<std::size_t>(m_id)];
  if (!m.held || m.owner != t.id) {
    record_failure(FailureKind::kAssert,
                   "condvar wait without holding the mutex");
    return;
  }
  // Atomically: release the mutex and sleep on the condvar.  The thread
  // stays blocked until a notify moves it to the mutex queue and the
  // coordinator grants it the (free) mutex.  No spurious wakeups: a waiter
  // nobody notifies blocks forever, which is how lost wakeups surface as
  // deadlocks instead of hiding behind a courtesy re-check.
  t.pending = what;
  m.held = false;
  m.owner = -1;
  m.released = t.clock;
  t.clock.tick(t.id);
  t.status = VThread::Status::kBlocked;
  t.wait_kind = VThread::WaitKind::kCondvar;
  t.wait_id = cv_id;
  t.cond_mutex = m_id;
  condvars_[static_cast<std::size_t>(cv_id)].waiters.push_back(t.id);
  park(t);
  // Notified and granted: reacquire the mutex before returning.
  t.status = VThread::Status::kReady;
  t.wait_kind = VThread::WaitKind::kNone;
  t.cond_mutex = -1;
  MutexState& m2 = mutexes_[static_cast<std::size_t>(m_id)];
  m2.held = true;
  m2.owner = t.id;
  t.clock.join(m2.released);
  t.clock.tick(t.id);
}

void Scheduler::condvar_notify(detail::ObjectTag& cv_tag, bool all,
                               const char* what) {
  const int cv_id = resolve(cv_tag, ObjectKind::kCondvar);
  VThread& t = self();
  t.pending = what;
  park(t);
  CondvarState& cv = condvars_[static_cast<std::size_t>(cv_id)];
  const std::size_t count = all ? cv.waiters.size()
                                : std::min<std::size_t>(1, cv.waiters.size());
  for (std::size_t i = 0; i < count; ++i) {
    VThread& w = *threads_[static_cast<std::size_t>(cv.waiters[i])];
    // Move the waiter to the mutex queue; it becomes runnable once the
    // mutex is free.  Happens-before comes from the mutex, as in real
    // condvars.
    w.wait_kind = VThread::WaitKind::kMutex;
    w.wait_id = w.cond_mutex;
  }
  cv.waiters.erase(cv.waiters.begin(),
                   cv.waiters.begin() + static_cast<std::ptrdiff_t>(count));
  t.clock.tick(t.id);
}

// --- atomics and plain data --------------------------------------------

void Scheduler::atomic_access(detail::ObjectTag& tag, bool acquire,
                              bool release, const char* what) {
  const int id = resolve(tag, ObjectKind::kAtomic);
  VThread& t = self();
  t.pending = what;
  park(t);
  AtomicState& a = atomics_[static_cast<std::size_t>(id)];
  if (acquire) t.clock.join(a.released);
  // Joining (not overwriting) on release keeps every prior release visible
  // to later acquirers — conservative with respect to C++ release-sequence
  // breakage, so the detector can under-report but never false-positives.
  if (release) a.released.join(t.clock);
  t.clock.tick(t.id);
}

void Scheduler::data_access(detail::ObjectTag& tag, bool write,
                            const char* what) {
  const int id = resolve(tag, ObjectKind::kData);
  VThread& t = self();
  DataState& d = data_[static_cast<std::size_t>(id)];
  const auto race = [&](const char* prior, int other) {
    record_failure(
        FailureKind::kDataRace,
        std::string("data race on ") + what + ": " + prior + " by t" +
            std::to_string(other) + " is unordered with " +
            (write ? "write" : "read") + " by t" + std::to_string(t.id) +
            " (no happens-before edge)");
  };
  if (write) {
    if (d.writer >= 0 && d.writer != t.id &&
        !t.clock.covers(d.writer, d.write_epoch)) {
      race("write", d.writer);
    }
    for (const auto& [reader, epoch] : d.read_epochs) {
      if (reader != t.id && !t.clock.covers(reader, epoch)) {
        race("read", reader);
        break;
      }
    }
    d.writer = t.id;
    d.write_epoch = t.clock.of(t.id);
    d.read_epochs.clear();
  } else {
    if (d.writer >= 0 && d.writer != t.id &&
        !t.clock.covers(d.writer, d.write_epoch)) {
      race("write", d.writer);
    }
    for (auto& [reader, epoch] : d.read_epochs) {
      if (reader == t.id) {
        epoch = t.clock.of(t.id);
        return;
      }
    }
    d.read_epochs.emplace_back(t.id, t.clock.of(t.id));
  }
}

// --- coordinator -------------------------------------------------------

Scheduler::RunOutcome Scheduler::run(std::unique_ptr<Scheduler> self,
                                     const std::function<void()>& scenario,
                                     const Strategy& strategy,
                                     std::uint64_t max_steps) {
  RunOutcome out = self->run_impl(scenario, strategy, max_steps);
  if (out.leaked) {
    // Terminal failure: parked OS threads cannot be unwound safely through
    // arbitrary scenario code, so detach them and leak the scheduler (its
    // futex tokens must stay alive).  Terminal failures end the
    // exploration, so at most one scheduler leaks per checked scenario.
    (void)self.release();
  }
  return out;
}

Scheduler::RunOutcome Scheduler::run_impl(
    const std::function<void()>& scenario, const Strategy& strategy,
    std::uint64_t max_steps) {
  MCMM_ASSERT(!started_, "Scheduler::run: a Scheduler drives exactly one run");
  started_ = true;

  threads_.push_back(std::make_unique<VThread>());
  VThread& main = *threads_.back();
  main.id = 0;
  main.fn = scenario;
  main.pending = "start";
  main.clock.tick(0);
  main.os = std::thread(&Scheduler::thread_main, this, &main);

  RunOutcome out;
  bool terminal = false;
  for (;;) {
    std::vector<int> enabled;
    bool all_finished = true;
    bool any_cond_waiter = false;
    for (const auto& tp : threads_) {
      const VThread& t = *tp;
      if (t.status == VThread::Status::kFinished) continue;
      all_finished = false;
      bool is_enabled = false;
      if (t.status == VThread::Status::kReady) {
        is_enabled = true;
      } else {
        switch (t.wait_kind) {
          case VThread::WaitKind::kMutex:
            is_enabled =
                !mutexes_[static_cast<std::size_t>(t.wait_id)].held;
            break;
          case VThread::WaitKind::kJoin:
            is_enabled = threads_[static_cast<std::size_t>(t.wait_id)]
                             ->status == VThread::Status::kFinished;
            break;
          case VThread::WaitKind::kCondvar:
            any_cond_waiter = true;
            break;
          case VThread::WaitKind::kNone:
            break;
        }
      }
      if (is_enabled) enabled.push_back(t.id);
    }
    if (all_finished) break;
    if (enabled.empty()) {
      std::string blocked;
      for (const auto& tp : threads_) {
        if (tp->status == VThread::Status::kFinished) continue;
        if (!blocked.empty()) blocked += "; ";
        blocked += "t" + std::to_string(tp->id) + " blocked at [" +
                   tp->pending + "]";
      }
      record_failure(any_cond_waiter ? FailureKind::kLostWakeup
                                     : FailureKind::kDeadlock,
                     "no runnable thread: " + blocked);
      terminal = true;
      break;
    }
    if (out.steps >= max_steps) {
      record_failure(FailureKind::kTooLong,
                     "schedule exceeded " + std::to_string(max_steps) +
                         " steps (livelock or unbounded scenario)");
      terminal = true;
      break;
    }

    Decision d;
    d.running_before = running_;
    d.preemptions_before = preemptions_;
    const bool current_enabled =
        running_ >= 0 &&
        std::find(enabled.begin(), enabled.end(), running_) != enabled.end();
    if (current_enabled) d.order.push_back(running_);
    for (const int tid : enabled) {
      if (!(current_enabled && tid == running_)) d.order.push_back(tid);
    }

    const std::size_t index = strategy(d);
    if (index >= d.order.size()) {
      record_failure(FailureKind::kDivergence,
                     "strategy chose candidate " + std::to_string(index) +
                         " of " + std::to_string(d.order.size()) +
                         " (replay diverged from the recorded schedule)");
      terminal = true;
      break;
    }
    d.index = static_cast<int>(index);
    d.chosen = d.order[index];
    if (current_enabled && d.chosen != running_) ++preemptions_;
    decisions_.push_back(d);
    VThread& chosen = *threads_[static_cast<std::size_t>(d.chosen)];
    // Built by append: GCC 12's -O2 inliner raises a spurious -Wrestrict
    // on the equivalent operator+ chain.
    std::string line = "t";
    line += std::to_string(d.chosen);
    line += ": ";
    line += chosen.pending;
    interleaving_.push_back(std::move(line));
    running_ = d.chosen;
    ++out.steps;
    grant(chosen);
  }

  if (terminal) {
    for (auto& tp : threads_) {
      if (tp->os.joinable()) tp->os.detach();
    }
    out.leaked = true;
  } else {
    for (auto& tp : threads_) {
      if (tp->os.joinable()) tp->os.join();
    }
  }
  out.failure = failure_;
  out.decisions = std::move(decisions_);
  return out;
}

}  // namespace mcmm::check
