// Vector clocks for the model checker's happens-before graph.
//
// Every virtual thread carries a VectorClock; synchronisation objects
// (mutexes, release stores of atomics) carry the clock their last release
// published.  An event A happens-before an event B iff B's thread clock
// covers A's epoch — the pair (thread id, per-thread counter) stamped when
// A executed.  The race detector (Scheduler::data_access) uses exactly
// this covers() test, so a data race is reported from the happens-before
// relation alone, independent of which interleaving the explorer happened
// to schedule: a missing release/acquire edge is flagged even on the
// schedule where the racing accesses land in the "safe" order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace mcmm::check {

class VectorClock {
 public:
  /// This clock's component for `tid` (0 when never seen).
  std::uint64_t of(int tid) const {
    const auto i = static_cast<std::size_t>(tid);
    return i < c_.size() ? c_[i] : 0;
  }

  /// Advance own component (defines a new epoch for `tid`).
  void tick(int tid) {
    grow(static_cast<std::size_t>(tid) + 1);
    ++c_[static_cast<std::size_t>(tid)];
  }

  /// Pointwise maximum (the acquire side of a release/acquire edge).
  void join(const VectorClock& other) {
    grow(other.c_.size());
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      c_[i] = std::max(c_[i], other.c_[i]);
    }
  }

  /// True iff the epoch (tid, clock) is ordered before this clock.
  bool covers(int tid, std::uint64_t epoch) const { return of(tid) >= epoch; }

  void clear() { c_.clear(); }

  std::string str() const {
    std::string out = "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(c_[i]);
    }
    return out + "]";
  }

 private:
  void grow(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }

  std::vector<std::uint64_t> c_;
};

}  // namespace mcmm::check
