// Test-only macro: exposes the deliberately racy ring traits used by the
// mutation self-tests.  Production translation units never define this.
#define MCMM_CHECK_ENABLE_MUTATIONS 1

#include "check/scenarios.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/model_checker.hpp"
#include "check/sync.hpp"
#include "util/error.hpp"
#include "util/mpmc_ring.hpp"
#include "util/warnings.hpp"

#ifdef MCMM_CHECKED_SYNC
#include "gemm/thread_pool.hpp"
#include "obs/tracer.hpp"
#endif

namespace mcmm::check {

namespace {

using CheckedRing = MpmcRing<int, MpmcRingCheckedTraits>;
using RacyRing =
    MpmcRing<int, MpmcRingRacyPublishTraits<MpmcRingCheckedTraits>>;

// --- mutex -------------------------------------------------------------

void mutex_counter() {
  checked_mutex m;
  checked_value<int> count{0};
  auto inc = [&] {
    m.lock();
    count.store(count.load() + 1);
    m.unlock();
  };
  checked_thread a(inc);
  checked_thread b(inc);
  a.join();
  b.join();
  expect(count.load() == 2, "both locked increments must be visible");
}

void mutex_racy_counter() {
  checked_value<int> count{0};
  auto inc = [&] { count.store(count.load() + 1); };  // BUG: no lock
  checked_thread a(inc);
  checked_thread b(inc);
  a.join();
  b.join();
}

// --- condition variables ------------------------------------------------

void condvar_handoff() {
  checked_mutex m;
  checked_condvar cv;
  checked_value<bool> ready{false};
  checked_thread consumer([&] {
    m.lock();
    while (!ready.load()) cv.wait(m);
    m.unlock();
  });
  m.lock();
  ready.store(true);
  m.unlock();
  cv.notify_one();
  consumer.join();
}

void condvar_lost_wakeup() {
  checked_mutex m;
  checked_condvar cv;
  checked_thread consumer([&] {
    m.lock();
    cv.wait(m);  // BUG: waits unconditionally — no predicate
    m.unlock();
  });
  // When this notify fires before the consumer reaches its wait, the
  // wakeup is lost and the consumer sleeps forever.
  cv.notify_one();
  consumer.join();
}

// --- atomics ------------------------------------------------------------

void atomic_lost_update() {
  checked_atomic<int> v{0};
  auto bump = [&] {
    // BUG: load+store is not fetch_add; two threads can both read 0.
    const int x = v.load(std::memory_order_relaxed);
    v.store(x + 1, std::memory_order_relaxed);
  };
  checked_thread a(bump);
  checked_thread b(bump);
  a.join();
  b.join();
  expect(v.load() == 2, "an increment was lost (load/store is not RMW)");
}

void atomic_release_acquire() {
  checked_value<int> data{0};
  checked_atomic<bool> flag{false};
  checked_thread writer([&] {
    data.store(42);
    flag.store(true, std::memory_order_release);
  });
  if (flag.load(std::memory_order_acquire)) {
    expect(data.load() == 42, "acquire load must see the published data");
  }
  writer.join();
  expect(data.load() == 42, "join edge must order the write");
}

void atomic_relaxed_publish() {
  checked_value<int> data{0};
  checked_atomic<bool> flag{false};
  checked_thread writer([&] {
    data.store(42);
    flag.store(true, std::memory_order_relaxed);  // BUG: no release edge
  });
  if (flag.load(std::memory_order_relaxed)) {
    (void)data.load();  // racy: no happens-before from the writer
  }
  writer.join();
}

// --- MpmcRing -----------------------------------------------------------

void ring_full_empty() {
  CheckedRing ring(2);
  expect(ring.capacity() == 2, "capacity is the constructor argument");
  expect(ring.try_push(1), "push 1 into empty ring");
  expect(ring.try_push(2), "push 2 fills the ring");
  expect(!ring.try_push(3), "push into a full ring must fail");
  int v = 0;
  expect(ring.try_pop(v) && v == 1, "pops are FIFO (1)");
  expect(ring.try_pop(v) && v == 2, "pops are FIFO (2)");
  expect(!ring.try_pop(v), "pop from an empty ring must fail");
}

void ring_spsc() {
  CheckedRing ring(2);
  checked_thread producer([&] {
    expect(ring.try_push(1), "capacity 2 holds the first push");
    expect(ring.try_push(2), "capacity 2 holds the second push");
  });
  int got[2] = {0, 0};
  int n = 0;
  int v = 0;
  for (int i = 0; i < 2 && n < 2; ++i) {
    if (ring.try_pop(v)) got[n++] = v;
  }
  producer.join();
  while (n < 2 && ring.try_pop(v)) got[n++] = v;
  expect(n == 2 && got[0] == 1 && got[1] == 2,
         "consumer sees both values in FIFO order");
}

void ring_mpmc() {
  CheckedRing ring(4);
  int popped_by_c0 = 0;
  bool c0_got = false;
  checked_thread p0([&] { expect(ring.try_push(10), "cap 4 cannot fill"); });
  checked_thread p1([&] { expect(ring.try_push(20), "cap 4 cannot fill"); });
  checked_thread c0([&] {
    int v = 0;
    c0_got = ring.try_pop(v);
    if (c0_got) popped_by_c0 = v;
  });
  int v1 = 0;
  const bool main_got = ring.try_pop(v1);
  p0.join();
  p1.join();
  c0.join();
  // Conservation: every pushed value is popped or drained, exactly once.
  int seen10 = 0;
  int seen20 = 0;
  auto tally = [&](int v) {
    if (v == 10) ++seen10;
    if (v == 20) ++seen20;
  };
  if (c0_got) tally(popped_by_c0);
  if (main_got) tally(v1);
  int v = 0;
  while (ring.try_pop(v)) tally(v);
  expect(seen10 == 1 && seen20 == 1,
         "each pushed value surfaces exactly once");
}

// Capacity 1: one slot, mask 0 — every transfer exercises the doubled
// seq encoding's wraparound (push publishes 2*pos + 1, pop re-arms with
// 2*(pos + 1)), with a producer and a consumer racing on the same slot.
void ring_capacity_one() {
  CheckedRing ring(1);
  expect(ring.capacity() == 1, "capacity-1 ring is legal");
  checked_thread producer([&] {
    if (ring.try_push(1)) {
      // A second push can only land once the consumer freed the slot.
      if (ring.try_push(2)) return;
    }
  });
  int got[2] = {0, 0};
  int n = 0;
  int v = 0;
  for (int i = 0; i < 4 && n < 2; ++i) {
    if (ring.try_pop(v)) got[n++] = v;
  }
  producer.join();
  while (n < 2 && ring.try_pop(v)) got[n++] = v;
  // FIFO across the slot's laps: whatever was consumed came out in push
  // order, and nothing was duplicated.
  expect(n <= 2, "at most two values transferred");
  if (n >= 1) expect(got[0] == 1, "first pop sees the first push");
  if (n == 2) expect(got[1] == 2, "second pop sees the second push");
  expect(!ring.try_pop(v), "drained capacity-1 ring is empty");
}

void ring_racy_publish() {
  RacyRing ring(2);
  checked_thread producer([&] {
    expect(ring.try_push(7), "push into empty ring");
  });
  int v = 0;
  if (ring.try_pop(v)) {
    expect(v == 7, "popped the pushed value");
  }
  producer.join();
}

// --- serve protocol (mirrors src/serve/server.cpp) ----------------------
//
// The GemmServer protocol on the checked primitives, stripped of the pool
// and the kernels so the checker can explore it exhaustively: admission
// pushes onto the bounded ring and bumps queued_ under the server mutex,
// the single dispatcher waits on work_cv_ with a predicate loop, tickets
// are completed through a latch, and shutdown drains via drain_cv_.

void serve_admission_backpressure() {
  CheckedRing ring(2);
  checked_mutex m;
  checked_condvar work_cv;
  checked_value<int> queued{0};
  checked_value<bool> stop{false};
  checked_value<int> accepted{0};
  checked_value<int> rejected{0};
  checked_value<int> served{0};

  // GemmServer::submit: try_push under the lock; a full ring is
  // backpressure (reject now), never unbounded buffering.
  auto submit = [&](int id) {
    m.lock();
    if (ring.try_push(id)) {
      accepted.store(accepted.load() + 1);
      queued.store(queued.load() + 1);
      work_cv.notify_one();
    } else {
      rejected.store(rejected.load() + 1);
    }
    m.unlock();
  };

  checked_thread client_a([&] {
    submit(1);
    submit(2);
  });
  checked_thread client_b([&] { submit(3); });

  // GemmServer::dispatcher_loop: predicate wait, decrement, pop outside
  // the lock — the pop cannot miss because queued counts exactly the
  // pushed-but-unclaimed ids and this is the only consumer.
  checked_thread dispatcher([&] {
    for (;;) {
      m.lock();
      while (!stop.load() && queued.load() == 0) work_cv.wait(m);
      if (stop.load() && queued.load() == 0) {
        m.unlock();
        return;
      }
      queued.store(queued.load() - 1);
      m.unlock();
      int id = 0;
      expect(ring.try_pop(id), "queued > 0 implies a poppable id");
      served.store(served.load() + 1);
    }
  });

  client_a.join();
  client_b.join();
  m.lock();
  stop.store(true);
  work_cv.notify_one();
  m.unlock();
  dispatcher.join();
  expect(accepted.load() + rejected.load() == 3, "every submit resolves");
  expect(served.load() == accepted.load(), "every accepted id is served");
  expect(rejected.load() <= 1, "capacity 2 rejects at most one of three");
}

void serve_ticket_handoff() {
  // Ticket::complete / Ticket::wait: response published under the latch
  // mutex, flag flipped, waiter loops on the predicate.
  checked_mutex m;
  checked_condvar cv;
  checked_value<bool> done{false};
  checked_value<int> payload{0};
  checked_thread dispatcher([&] {
    m.lock();
    payload.store(42);
    done.store(true);
    m.unlock();
    cv.notify_all();
  });
  m.lock();
  while (!done.load()) cv.wait(m);
  m.unlock();
  expect(payload.load() == 42, "wait() must observe the published response");
  dispatcher.join();
}

void serve_completion_lost_wakeup() {
  // Seeded mutation of serve_ticket_handoff: Ticket::wait without its
  // done_ predicate.  When complete() fires before the client reaches the
  // wait, the notify is lost and the client blocks forever.
  checked_mutex m;
  checked_condvar cv;
  checked_value<int> payload{0};
  checked_thread dispatcher([&] {
    m.lock();
    payload.store(42);
    m.unlock();
    cv.notify_all();
  });
  m.lock();
  cv.wait(m);  // BUG: no done_ loop
  m.unlock();
  dispatcher.join();
}

void serve_shutdown_drain() {
  // GemmServer::shutdown: close admission, wake a possibly-paused
  // dispatcher, wait on drain_cv_ until the in-flight request completes,
  // then raise stop_ and join.  One request is already admitted.
  checked_mutex m;
  checked_condvar work_cv;
  checked_condvar drain_cv;
  checked_value<int> queued{1};
  checked_value<int> inflight{1};
  checked_value<bool> stop{false};
  checked_value<bool> served{false};
  checked_thread dispatcher([&] {
    for (;;) {
      m.lock();
      while (!stop.load() && queued.load() == 0) work_cv.wait(m);
      if (stop.load() && queued.load() == 0) {
        m.unlock();
        return;
      }
      queued.store(queued.load() - 1);
      m.unlock();
      // ... execute the request (elided) ...
      m.lock();
      inflight.store(inflight.load() - 1);
      served.store(true);
      if (inflight.load() == 0 && queued.load() == 0) drain_cv.notify_all();
      m.unlock();
    }
  });
  m.lock();
  work_cv.notify_all();  // accepting_ = false; wake a paused dispatcher
  while (!(inflight.load() == 0 && queued.load() == 0)) drain_cv.wait(m);
  stop.store(true);
  work_cv.notify_all();
  m.unlock();
  dispatcher.join();
  expect(served.load(), "shutdown drained the in-flight request");
}

// --- warning sink -------------------------------------------------------

void warnings_concurrent_sink() {
  ScopedWarningCapture outer;
  {
    checked_thread a([] { emit_warning("w-a"); });
    // Installing this capture races with a's emit_warning — the sink
    // mutex must make the swap atomic against concurrent emitters.
    ScopedWarningCapture inner;
    checked_thread b([] { emit_warning("w-b"); });
    a.join();
    b.join();
    const std::size_t total =
        inner.messages().size() + outer.messages().size();
    expect(total == 2, "every warning lands in exactly one sink");
  }
}

#ifdef MCMM_CHECKED_SYNC

// --- ThreadPool (the production code, on the instrumented sync layer) ---

void pool_run_on_all() {
  ThreadPool pool(2);
  int hits[2] = {0, 0};
  pool.run_on_all([&](int core) { ++hits[core]; });
  expect(hits[0] == 1 && hits[1] == 1, "each worker ran the job once");
}

void pool_reuse() {
  ThreadPool pool(1);
  int runs = 0;
  pool.run_on_all([&](int) { ++runs; });
  pool.run_on_all([&](int) { ++runs; });
  expect(runs == 2, "the pool survives consecutive regions");
}

void pool_run_batch() {
  ThreadPool pool(2);
  int done[3] = {0, 0, 0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.emplace_back([&done, i] { ++done[i]; });
  }
  pool.run_batch(tasks);
  expect(done[0] == 1 && done[1] == 1 && done[2] == 1,
         "each task runs exactly once");
}

void pool_run_batch_throw() {
  ThreadPool pool(1);
  int ran = 0;
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw Error("scenario: task failure"); });
  tasks.emplace_back([&ran] { ++ran; });
  bool rethrown = false;
  try {
    pool.run_batch(tasks);
  } catch (const Error&) {
    rethrown = true;
  }
  expect(rethrown, "the first task error is rethrown to the caller");
  expect(ran <= 1, "later tasks run at most once");
}

void pool_shutdown() {
  ThreadPool pool(2);
  // Destructor path only: stop flag, broadcast, join.
}

// --- ExecutionTracer under the pool -------------------------------------

void tracer_record_drops() {
  ExecutionTracer tracer(1, /*capacity_per_worker=*/1);
  ThreadPool pool(1);
  pool.set_tracer(&tracer);
  pool.set_trace_label("scenario");
  pool.run_on_all([&](int core) {
    tracer.record(core, TracePhase::kMicroKernel, tracer.now_ns(),
                  tracer.now_ns());
  });
  pool.set_tracer(nullptr);
  // Capacity 1: the explicit span fills the ring; the pool's kWork span
  // (and possibly the synthesised barrier) must be counted as dropped,
  // never written out of bounds.
  expect(tracer.span_count(0) == 1, "full ring keeps its capacity");
  expect(tracer.span(0, 0).phase == TracePhase::kMicroKernel,
         "the first-recorded span survives");
  expect(tracer.dropped(0) >= 1, "overflow is counted as drops");
}

void tracer_region_bracketing() {
  ExecutionTracer tracer(2, /*capacity_per_worker=*/8);
  ThreadPool pool(2);
  pool.set_tracer(&tracer);
  pool.set_trace_label("bracketed");
  pool.run_on_all([](int) {});
  pool.set_tracer(nullptr);
  expect(tracer.num_regions() == 1, "one dispatch, one region");
  expect(tracer.region_label(0) == "bracketed", "label is the trace label");
  expect(tracer.region_end_ns(0) >= tracer.region_begin_ns(0),
         "the region is closed");
  for (int w = 0; w < 2; ++w) {
    expect(tracer.span_count(w) >= 1, "every worker recorded its kWork span");
    expect(tracer.span(w, 0).phase == TracePhase::kWork,
           "the job wrapper records kWork first");
    expect(tracer.span(w, 0).region == 0, "spans carry the open region id");
  }
}

#endif  // MCMM_CHECKED_SYNC

void add(const char* name, const char* description, void (*fn)(),
         FailureKind expected = FailureKind::kNone) {
  register_scenario(Scenario{name, description, fn, expected});
}

}  // namespace

void register_builtin_scenarios() {
  static bool done = false;
  if (done) return;
  done = true;

  add("mutex/counter", "two threads increment a shared counter under a lock",
      mutex_counter);
  add("mutex/racy-counter",
      "mutation: the same counter without the lock — must be flagged",
      mutex_racy_counter, FailureKind::kDataRace);
  add("condvar/handoff",
      "producer/consumer flag handoff with a predicate wait loop",
      condvar_handoff);
  add("condvar/lost-wakeup",
      "mutation: unconditional wait whose notify can fire first",
      condvar_lost_wakeup, FailureKind::kLostWakeup);
  add("atomic/lost-update",
      "mutation: load+store increment loses updates under preemption",
      atomic_lost_update, FailureKind::kAssert);
  add("atomic/release-acquire",
      "message passing over a release store / acquire load pair",
      atomic_release_acquire);
  add("atomic/relaxed-publish",
      "mutation: relaxed publish severs the happens-before edge",
      atomic_relaxed_publish, FailureKind::kDataRace);
  add("ring/full-empty",
      "MpmcRing full/empty detection and FIFO order, single-threaded",
      ring_full_empty);
  add("ring/spsc", "MpmcRing with one producer and one consumer", ring_spsc);
  add("ring/mpmc",
      "MpmcRing with two producers and two consumers, conservation checked",
      ring_mpmc);
  add("ring/capacity-one",
      "MpmcRing degenerate single-slot ring: seq wraparound under a race",
      ring_capacity_one);
  add("ring/racy-publish",
      "mutation: ring publishing slots with relaxed stores — must be flagged",
      ring_racy_publish, FailureKind::kDataRace);
  add("serve/admission-backpressure",
      "GemmServer admission: bounded ring, queued counter, FIFO dispatch",
      serve_admission_backpressure);
  add("serve/ticket-handoff",
      "Ticket completion latch: publish under the lock, predicate wait",
      serve_ticket_handoff);
  add("serve/completion-lost-wakeup",
      "mutation: Ticket::wait without its done_ predicate — must be flagged",
      serve_completion_lost_wakeup, FailureKind::kLostWakeup);
  add("serve/shutdown-drain",
      "GemmServer shutdown: close admission, drain in-flight, stop, join",
      serve_shutdown_drain);
  add("warnings/concurrent-sink",
      "sink swap racing concurrent emit_warning calls, no message lost",
      warnings_concurrent_sink);

#ifdef MCMM_CHECKED_SYNC
  add("pool/run-on-all", "ThreadPool dispatch/drain over both workers",
      pool_run_on_all);
  add("pool/reuse", "consecutive parallel regions reuse the pool",
      pool_reuse);
  add("pool/run-batch", "dynamically claimed task batch drains exactly once",
      pool_run_batch);
  add("pool/run-batch-throw",
      "a throwing task stops the batch and is rethrown at the caller",
      pool_run_batch_throw);
  add("pool/shutdown", "construct and destroy: stop broadcast and join",
      pool_shutdown);
  add("tracer/record-drops",
      "a full tracer ring counts drops instead of overflowing",
      tracer_record_drops);
  add("tracer/region-bracketing",
      "run_on_all brackets a region and records kWork spans per worker",
      tracer_region_bracketing);
#endif
}

}  // namespace mcmm::check
