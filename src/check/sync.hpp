// Dual-mode synchronisation layer.
//
// Two namespaces, one contract:
//
//   * mcmm::check::checked_* — instrumented primitives that, when running
//     under a check::Scheduler (a model-checked scenario), route every
//     operation through the scheduler: each lock/wait/notify/atomic access
//     is a deterministic yield point and feeds the vector-clock
//     happens-before graph.  Outside a scheduler they fall through to the
//     real std:: primitive, so the same binary can run scenarios under the
//     checker *and* ordinary gtest threads.
//
//   * mcmm::sync — the names production code uses (sync::mutex,
//     sync::lock_guard, sync::unique_lock, sync::condition_variable,
//     sync::atomic, sync::value, sync::thread).  By default these are
//     zero-cost wrappers over std:: types (the wrappers exist to carry
//     Clang thread-safety annotations; every method is a trivial inline
//     forward).  Configuring with -DMCMM_CHECKED_SYNC=ON rebuilds them on
//     top of the checked primitives, which is how ThreadPool and the
//     tracer rings become model-checkable without touching their code.
//
// sync::mutex is annotated as a Clang capability and sync::lock_guard /
// sync::unique_lock as scoped capabilities, so `-Wthread-safety` verifies
// MCMM_GUARDED_BY declarations against real lock scopes (std::mutex in
// libstdc++ carries no annotations; the wrapper is what makes the analysis
// see anything at all).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>

#include "check/scheduler.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace mcmm::check {

namespace detail {
inline bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst || o == std::memory_order_consume;
}
inline bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
}  // namespace detail

/// std::mutex that yields to the scheduler inside a checked scenario.
class checked_mutex {
 public:
  checked_mutex() = default;
  checked_mutex(const checked_mutex&) = delete;
  checked_mutex& operator=(const checked_mutex&) = delete;

  void lock() {
    if (Scheduler* s = Scheduler::current()) {
      s->mutex_lock(tag_, "mutex-lock");
    } else {
      real_.lock();
    }
  }

  bool try_lock() {
    if (Scheduler* s = Scheduler::current()) {
      return s->mutex_try_lock(tag_, "mutex-try-lock");
    }
    return real_.try_lock();
  }

  void unlock() {
    if (Scheduler* s = Scheduler::current()) {
      s->mutex_unlock(tag_, "mutex-unlock");
    } else {
      real_.unlock();
    }
  }

 private:
  friend class checked_condvar;
  detail::ObjectTag tag_;
  std::mutex real_;
};

/// Condition variable over a checked_mutex.  Under the scheduler there are
/// no spurious wakeups — a waiter nobody notifies blocks forever, which is
/// what turns lost wakeups into detectable deadlocks.
class checked_condvar {
 public:
  checked_condvar() = default;
  checked_condvar(const checked_condvar&) = delete;
  checked_condvar& operator=(const checked_condvar&) = delete;

  /// Caller must hold `m` (checked at runtime under the scheduler).
  void wait(checked_mutex& m) {
    if (Scheduler* s = Scheduler::current()) {
      s->condvar_wait(tag_, m.tag_, "cond-wait");
      return;
    }
    // Adopt the already-held std::mutex for the duration of the wait; the
    // release() keeps ownership with the caller, so this is zero-overhead
    // glue, not a second locking layer.
    std::unique_lock<std::mutex> sl(m.real_, std::adopt_lock);
    real_.wait(sl);
    sl.release();
  }

  void notify_one() {
    if (Scheduler* s = Scheduler::current()) {
      s->condvar_notify(tag_, /*all=*/false, "notify-one");
    } else {
      real_.notify_one();
    }
  }

  void notify_all() {
    if (Scheduler* s = Scheduler::current()) {
      s->condvar_notify(tag_, /*all=*/true, "notify-all");
    } else {
      real_.notify_all();
    }
  }

 private:
  detail::ObjectTag tag_;
  std::condition_variable real_;
};

/// std::atomic<T> whose every access is a scheduler yield point.  The
/// requested memory order is passed through to the real atomic *and*
/// mapped onto the happens-before graph: release publishes the thread's
/// vector clock on this object, acquire joins it, relaxed does neither.
template <typename T>
class checked_atomic {
 public:
  checked_atomic() noexcept = default;
  constexpr checked_atomic(T v) noexcept : real_(v) {}  // NOLINT(google-explicit-constructor)
  checked_atomic(const checked_atomic&) = delete;
  checked_atomic& operator=(const checked_atomic&) = delete;

  T load(std::memory_order o = std::memory_order_seq_cst) const {
    hook(detail::is_acquire(o), false, "atomic-load");
    return real_.load(o);
  }

  void store(T v, std::memory_order o = std::memory_order_seq_cst) {
    hook(false, detail::is_release(o), "atomic-store");
    real_.store(v, o);
  }

  T exchange(T v, std::memory_order o = std::memory_order_seq_cst) {
    hook(detail::is_acquire(o), detail::is_release(o), "atomic-exchange");
    return real_.exchange(v, o);
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order succ,
                             std::memory_order fail) {
    // Conservative: model the success ordering even when the CAS fails
    // (the failure path is at most an acquire, so this can only add
    // happens-before edges, never invent a race).
    hook(detail::is_acquire(succ) || detail::is_acquire(fail),
         detail::is_release(succ), "atomic-cas");
    return real_.compare_exchange_weak(expected, desired, succ, fail);
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order o = std::memory_order_seq_cst) {
    return compare_exchange_weak(expected, desired, o,
                                 o == std::memory_order_acq_rel
                                     ? std::memory_order_acquire
                                     : o);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order succ,
                               std::memory_order fail) {
    hook(detail::is_acquire(succ) || detail::is_acquire(fail),
         detail::is_release(succ), "atomic-cas");
    return real_.compare_exchange_strong(expected, desired, succ, fail);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order o = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, o,
                                   o == std::memory_order_acq_rel
                                       ? std::memory_order_acquire
                                       : o);
  }

  T fetch_add(T v, std::memory_order o = std::memory_order_seq_cst) {
    hook(detail::is_acquire(o), detail::is_release(o), "atomic-fetch-add");
    return real_.fetch_add(v, o);
  }

  T fetch_sub(T v, std::memory_order o = std::memory_order_seq_cst) {
    hook(detail::is_acquire(o), detail::is_release(o), "atomic-fetch-sub");
    return real_.fetch_sub(v, o);
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

  T operator=(T v) {
    store(v);
    return v;
  }

 private:
  void hook(bool acquire, bool release, const char* what) const {
    if (Scheduler* s = Scheduler::current()) {
      s->atomic_access(tag_, acquire, release, what);
    }
  }

  mutable detail::ObjectTag tag_;
  std::atomic<T> real_{};
};

/// Plain (non-atomic) shared data under the race detector: every access is
/// reported to the scheduler's vector-clock graph, so two accesses without
/// a happens-before edge — on *any* explored schedule — are a data race.
/// Not a yield point; outside a scenario it is a bare T.
template <typename T>
class checked_value {
 public:
  checked_value() = default;
  explicit checked_value(T v) : v_(std::move(v)) {}
  checked_value(const checked_value&) = delete;
  checked_value& operator=(const checked_value&) = delete;
  // Movable so containers can be sized during setup; the moved-to object
  // is a fresh identity (blank tag), which is only sound before sharing.
  checked_value(checked_value&& other) noexcept : v_(std::move(other.v_)) {}
  checked_value& operator=(checked_value&& other) noexcept {
    v_ = std::move(other.v_);
    tag_ = detail::ObjectTag{};
    return *this;
  }

  T load() const {
    hook(false);
    return v_;
  }

  void store(const T& x) {
    hook(true);
    v_ = x;
  }

 private:
  void hook(bool write) const {
    if (Scheduler* s = Scheduler::current()) {
      s->data_access(tag_, write, "plain-data");
    }
  }

  mutable detail::ObjectTag tag_;
  T v_{};
};

/// std::thread that becomes a scheduler-controlled virtual thread inside a
/// checked scenario.  native_handle() still returns a real pthread handle
/// either way (virtual threads *are* OS threads), so affinity pinning
/// keeps working under the checker.
class checked_thread {
 public:
  checked_thread() noexcept = default;

  template <typename F, typename... Args,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, checked_thread>>>
  explicit checked_thread(F&& f, Args&&... args) {
    std::function<void()> fn =
        [f = std::forward<F>(f),
         tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
          std::apply(std::move(f), std::move(tup));
        };
    if (Scheduler* s = Scheduler::current()) {
      sched_ = s;
      vid_ = s->spawn(std::move(fn));
    } else {
      real_ = std::thread(std::move(fn));
    }
  }

  checked_thread(checked_thread&& other) noexcept { *this = std::move(other); }

  checked_thread& operator=(checked_thread&& other) noexcept {
    MCMM_ASSERT(!joinable(), "assigning over a joinable checked_thread");
    real_ = std::move(other.real_);
    sched_ = other.sched_;
    vid_ = other.vid_;
    other.sched_ = nullptr;
    other.vid_ = -1;
    return *this;
  }

  checked_thread(const checked_thread&) = delete;
  checked_thread& operator=(const checked_thread&) = delete;

  ~checked_thread() {
    MCMM_ASSERT(!joinable(), "destroying a joinable checked_thread");
  }

  bool joinable() const { return sched_ != nullptr || real_.joinable(); }

  void join() {
    if (sched_ != nullptr) {
      sched_->join_thread(vid_);
      sched_ = nullptr;
      vid_ = -1;
    } else {
      real_.join();
    }
  }

  std::thread::native_handle_type native_handle() {
    if (sched_ != nullptr) return sched_->thread_native_handle(vid_);
    return real_.native_handle();
  }

 private:
  std::thread real_;
  Scheduler* sched_ = nullptr;
  int vid_ = -1;
};

/// Sync policy instantiating util/mpmc_ring.hpp on the checked primitives:
/// `MpmcRing<T, MpmcRingCheckedTraits>` is the exact Vyukov algorithm with
/// every sequence counter a checked_atomic and every payload cell a
/// checked_value — the form the model-check scenarios explore.
struct MpmcRingCheckedTraits {
  template <typename T>
  using atomic = checked_atomic<T>;

  template <typename T>
  struct cell {
    checked_value<T> v;
    T load() const { return v.load(); }
    void store(const T& x) { v.store(x); }
  };

  static constexpr bool racy_publish = false;
};

}  // namespace mcmm::check

namespace mcmm::sync {

namespace detail {
#ifdef MCMM_CHECKED_SYNC
using mutex_impl = check::checked_mutex;
using condvar_impl = check::checked_condvar;
#else
using mutex_impl = std::mutex;
using condvar_impl = std::condition_variable;
#endif
}  // namespace detail

#ifdef MCMM_CHECKED_SYNC
template <typename T>
using atomic = check::checked_atomic<T>;
using thread = check::checked_thread;
template <typename T>
using value = check::checked_value<T>;
#else
template <typename T>
using atomic = std::atomic<T>;
using thread = std::thread;

/// Plain shared data slot.  In the default build this is a bare T with
/// inline load/store (compiles away); under MCMM_CHECKED_SYNC it is a
/// check::checked_value feeding the race detector.  Use it for fields
/// whose cross-thread ordering is provided *indirectly* (e.g. the tracer
/// rings, ordered by the pool mutex) so the model checker can verify that
/// claim instead of taking it on faith.
template <typename T>
class value {
 public:
  value() = default;
  explicit value(T v) : v_(std::move(v)) {}
  value(const value&) = delete;
  value& operator=(const value&) = delete;
  value(value&& other) noexcept : v_(std::move(other.v_)) {}
  value& operator=(value&& other) noexcept {
    v_ = std::move(other.v_);
    return *this;
  }

  T load() const { return v_; }
  void store(const T& x) { v_ = x; }

 private:
  T v_{};
};
#endif

/// Annotated mutex (Clang capability).  Trivial forwarder over std::mutex
/// by default, over check::checked_mutex under MCMM_CHECKED_SYNC.
class MCMM_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() MCMM_ACQUIRE() { impl_.lock(); }
  bool try_lock() MCMM_TRY_ACQUIRE(true) { return impl_.try_lock(); }
  void unlock() MCMM_RELEASE() { impl_.unlock(); }

  /// Underlying primitive, for condition_variable only.
  detail::mutex_impl& impl() { return impl_; }

 private:
  detail::mutex_impl impl_;
};

/// RAII lock, annotated as a scoped capability.
class MCMM_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(mutex& m) MCMM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() MCMM_RELEASE() { m_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  mutex& m_;
};

/// Ownership-tracking RAII lock for use with condition_variable.
class MCMM_SCOPED_CAPABILITY unique_lock {
 public:
  explicit unique_lock(mutex& m) MCMM_ACQUIRE(m) : m_(&m) {
    m_->lock();
    owns_ = true;
  }

  ~unique_lock() MCMM_RELEASE() {
    if (owns_) m_->unlock();
  }

  unique_lock(const unique_lock&) = delete;
  unique_lock& operator=(const unique_lock&) = delete;

  void lock() MCMM_ACQUIRE() {
    MCMM_ASSERT(!owns_, "unique_lock::lock: already locked");
    m_->lock();
    owns_ = true;
  }

  void unlock() MCMM_RELEASE() {
    MCMM_ASSERT(owns_, "unique_lock::unlock: not locked");
    m_->unlock();
    owns_ = false;
  }

  bool owns_lock() const { return owns_; }
  mutex* mutex_ptr() const { return m_; }

 private:
  mutex* m_;
  bool owns_ = false;
};

/// Condition variable over sync::mutex.  Callers hold the lock across the
/// call (the scoped capability stays held from the analysis's view, which
/// matches reality: wait reacquires before returning).  Use explicit
/// `while (!pred) cv.wait(lk);` loops — the analysis (and the model
/// checker's no-spurious-wakeup rule) both want the predicate re-check
/// visible in the caller.
class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void wait(unique_lock& lk) {
    MCMM_ASSERT(lk.owns_lock(), "condition_variable::wait without the lock");
    detail::mutex_impl& m = lk.mutex_ptr()->impl();
#ifdef MCMM_CHECKED_SYNC
    impl_.wait(m);
#else
    // Adopt the held mutex for the wait, then release ownership back to
    // the caller's unique_lock: no second locking layer, no overhead.
    std::unique_lock<std::mutex> sl(m, std::adopt_lock);
    impl_.wait(sl);
    sl.release();
#endif
  }

  void notify_one() { impl_.notify_one(); }
  void notify_all() { impl_.notify_all(); }

 private:
  detail::condvar_impl impl_;
};

}  // namespace mcmm::sync
