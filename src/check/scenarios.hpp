// Built-in model-check scenario suites.
//
// Registration is explicit (not static-initialiser magic): the suite lives
// in a static library, where self-registering globals get dead-stripped by
// the linker unless force-loaded.  Call register_builtin_scenarios() once
// from main()/test setup before using the registry in model_checker.hpp.
//
// The suites cover:
//   * the checked primitives themselves (mutex, condvar, atomics) with
//     both passing protocols and seeded bugs the checker must flag;
//   * MpmcRing (util/mpmc_ring.hpp) instantiated on the checked traits,
//     including the racy-publish mutation self-test;
//   * the GemmServer protocol (src/serve/server.cpp) — bounded-ring
//     admission with backpressure, the Ticket completion latch, and the
//     shutdown-drain handshake — modelled on the checked primitives, with
//     a seeded lost-wakeup mutation of Ticket::wait;
//   * with -DMCMM_CHECKED_SYNC=ON, the production ThreadPool dispatch
//     protocol and the ExecutionTracer ring contract, compiled exactly as
//     shipped but on the instrumented sync layer.
#pragma once

namespace mcmm::check {

/// Adds every built-in scenario to scenario_registry().  Idempotent.
void register_builtin_scenarios();

}  // namespace mcmm::check
