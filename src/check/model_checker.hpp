// Schedule exploration for the deterministic model checker.
//
// Stateless CHESS-style checking: a scenario (plain callable using the
// checked primitives from src/check/sync.hpp) is re-executed from scratch
// once per schedule, with a Scheduler (scheduler.hpp) forcing the
// interleaving.  Two exploration modes:
//
//   * explore()        — exhaustive depth-first search over grant
//     decisions, bounded by the number of *preemptions* (switching away
//     from a thread that could have kept running).  Context switches at
//     blocking points are free, so the bound spends its budget exactly
//     where bugs hide; empirically (CHESS) a bound of 2 finds the large
//     majority of real concurrency bugs while keeping the schedule count
//     polynomial.
//
//   * explore_random() — seeded pseudo-random walks, for scenario spaces
//     too large to exhaust and as a cheap smoke layer in CI.
//
// Any failing schedule is replayable: the grant sequence ("0,0,1,...")
// fully determines the run.  replay() re-executes one schedule; on a
// non-terminal failure the explorer greedily minimises the schedule
// (fewer context switches, shorter prefix) before reporting, so the
// interleaving a human reads is close to the essential bug, not the noise
// the search happened to walk through.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/scheduler.hpp"

namespace mcmm::check {

struct ExploreOptions {
  /// Max preemptions per schedule for exhaustive exploration.
  int preemption_bound = 2;
  /// Hard cap on schedules explored by explore() (0 = unlimited).
  std::uint64_t max_schedules = 200000;
  /// Per-run step cap (livelock guard; kTooLong beyond it).
  std::uint64_t max_steps_per_run = 20000;
  /// Number of random walks for explore_random().
  std::uint64_t random_iterations = 10000;
  std::uint64_t seed = 1;
  /// Greedily minimise a failing schedule before reporting (skipped for
  /// terminal failures — replaying a deadlock parks threads for good).
  bool minimize = true;
};

struct ExploreResult {
  std::uint64_t schedules_explored = 0;
  /// True when the DFS ran out of alternatives within the bound (the
  /// scenario is verified for every schedule with that many preemptions).
  bool exhausted = false;
  bool hit_schedule_cap = false;
  /// First failure found (empty when all schedules passed).
  Failure failure;
};

/// Exhaustively explore `scenario` up to the preemption bound; stops at
/// the first failure.
ExploreResult explore(const std::function<void()>& scenario,
                      const ExploreOptions& opts = {});

/// Seeded random exploration (`opts.random_iterations` walks).
ExploreResult explore_random(const std::function<void()>& scenario,
                             const ExploreOptions& opts = {});

/// Re-run one recorded schedule; decisions beyond the recorded prefix fall
/// back to "keep running the current thread".
Scheduler::RunOutcome replay(const std::function<void()>& scenario,
                             const std::string& schedule,
                             std::uint64_t max_steps = 20000);

/// Parse "0,0,1,2" into thread ids (throws mcmm::Error on junk).
std::vector<int> parse_schedule(const std::string& schedule);

/// A named, registered scenario for mcmm_check / the test suite.
struct Scenario {
  std::string name;         // e.g. "ring/mpmc-2p2c"
  std::string description;
  std::function<void()> fn;
  /// kNone: the checker must find no failure.  Anything else: the checker
  /// MUST report a failure of this kind (seeded-mutation self-tests — a
  /// green run is itself the bug).
  FailureKind expect = FailureKind::kNone;
};

/// Global scenario registry (explicit registration: the suites live in
/// static libraries, where self-registering initialisers get dead-stripped).
std::vector<Scenario>& scenario_registry();
void register_scenario(Scenario scenario);
const Scenario* find_scenario(const std::string& name);

}  // namespace mcmm::check
