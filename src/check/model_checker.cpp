#include "check/model_checker.hpp"

#include <algorithm>
#include <memory>
#include <random>

#include "util/error.hpp"

namespace mcmm::check {

namespace {

/// Strategy following a planned prefix of order-indices, then defaulting
/// to order[0] (keep the current thread running — zero extra preemptions).
Scheduler::Strategy prefix_strategy(const std::vector<std::size_t>& prefix) {
  auto step = std::make_shared<std::size_t>(0);
  return [prefix, step](const Decision& d) -> std::size_t {
    const std::size_t i = (*step)++;
    if (i < prefix.size()) {
      // A planned index can exceed the order size only if the scenario is
      // nondeterministic; surface that as divergence.
      return prefix[i] < d.order.size() ? prefix[i] : d.order.size();
    }
    return 0;
  };
}

Scheduler::RunOutcome run_once(const std::function<void()>& scenario,
                               const Scheduler::Strategy& strategy,
                               std::uint64_t max_steps) {
  return Scheduler::run(std::make_unique<Scheduler>(), scenario, strategy,
                        max_steps);
}

bool is_terminal(FailureKind kind) {
  return kind == FailureKind::kDeadlock || kind == FailureKind::kLostWakeup ||
         kind == FailureKind::kTooLong || kind == FailureKind::kDivergence;
}

/// Whether `d.order[0]` is the previously running thread (i.e. choosing
/// any other candidate costs one preemption).
bool head_is_running(const Decision& d) {
  return d.running_before >= 0 && !d.order.empty() &&
         d.order[0] == d.running_before;
}

/// Greedy schedule minimisation: repeatedly try dropping one entry at a
/// context-switch boundary and see whether the same failure kind still
/// reproduces (replay completes the tail with the default strategy).
/// Best-effort and capped — the goal is a readable interleaving, not a
/// provably minimal one.
Failure minimize_failure(const std::function<void()>& scenario,
                         const Failure& failure, std::uint64_t max_steps) {
  constexpr int kMaxAttempts = 64;
  std::vector<int> tids = parse_schedule(failure.schedule);
  Failure best = failure;
  int attempts = 0;
  bool improved = true;
  while (improved && attempts < kMaxAttempts) {
    improved = false;
    for (std::size_t i = tids.size(); i-- > 1 && attempts < kMaxAttempts;) {
      if (tids[i] == tids[i - 1]) continue;  // not a switch point
      std::vector<int> candidate = tids;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      std::string text;
      for (std::size_t j = 0; j < candidate.size(); ++j) {
        if (j != 0) text += ',';
        text += std::to_string(candidate[j]);
      }
      ++attempts;
      Scheduler::RunOutcome out = replay(scenario, text, max_steps);
      if (out.failure.kind == failure.kind &&
          parse_schedule(out.failure.schedule).size() <
              parse_schedule(best.schedule).size()) {
        best = out.failure;
        tids = parse_schedule(best.schedule);
        improved = true;
        break;
      }
    }
  }
  return best;
}

void maybe_minimize(const std::function<void()>& scenario,
                    const ExploreOptions& opts, ExploreResult& result) {
  if (!opts.minimize || !result.failure) return;
  // Replaying a terminal failure parks OS threads permanently (see
  // Scheduler's leak policy), so only record-and-continue kinds are worth
  // shrinking.
  if (is_terminal(result.failure.kind)) return;
  result.failure =
      minimize_failure(scenario, result.failure, opts.max_steps_per_run);
}

}  // namespace

std::vector<int> parse_schedule(const std::string& schedule) {
  std::vector<int> out;
  std::size_t i = 0;
  while (i < schedule.size()) {
    MCMM_REQUIRE(schedule[i] >= '0' && schedule[i] <= '9',
                 "parse_schedule: expected a thread id in '" + schedule + "'");
    int v = 0;
    while (i < schedule.size() && schedule[i] >= '0' && schedule[i] <= '9') {
      v = v * 10 + (schedule[i] - '0');
      ++i;
    }
    out.push_back(v);
    if (i < schedule.size()) {
      MCMM_REQUIRE(schedule[i] == ',',
                   "parse_schedule: expected ',' in '" + schedule + "'");
      ++i;
      MCMM_REQUIRE(i < schedule.size(),
                   "parse_schedule: trailing ',' in '" + schedule + "'");
    }
  }
  return out;
}

Scheduler::RunOutcome replay(const std::function<void()>& scenario,
                             const std::string& schedule,
                             std::uint64_t max_steps) {
  const std::vector<int> tids = parse_schedule(schedule);
  auto step = std::make_shared<std::size_t>(0);
  Scheduler::Strategy strategy = [tids, step](const Decision& d) -> std::size_t {
    const std::size_t i = (*step)++;
    if (i >= tids.size()) return 0;
    const auto it = std::find(d.order.begin(), d.order.end(), tids[i]);
    if (it == d.order.end()) return d.order.size();  // divergence
    return static_cast<std::size_t>(it - d.order.begin());
  };
  return run_once(scenario, strategy, max_steps);
}

ExploreResult explore(const std::function<void()>& scenario,
                      const ExploreOptions& opts) {
  ExploreResult result;
  std::vector<std::size_t> prefix;  // planned order-indices for next run
  for (;;) {
    if (opts.max_schedules != 0 &&
        result.schedules_explored >= opts.max_schedules) {
      result.hit_schedule_cap = true;
      break;
    }
    Scheduler::RunOutcome out =
        run_once(scenario, prefix_strategy(prefix), opts.max_steps_per_run);
    ++result.schedules_explored;
    if (out.failure) {
      result.failure = out.failure;
      break;
    }
    // Backtrack: deepest decision with an untried alternative that fits
    // the preemption budget.  Same prefix => same deterministic state =>
    // the recorded orders stay valid for the new plan.
    bool planned = false;
    for (std::size_t i = out.decisions.size(); i-- > 0 && !planned;) {
      const Decision& d = out.decisions[i];
      for (std::size_t alt = static_cast<std::size_t>(d.index) + 1;
           alt < d.order.size(); ++alt) {
        const int cost =
            d.preemptions_before +
            ((head_is_running(d) && d.order[alt] != d.running_before) ? 1 : 0);
        if (cost > opts.preemption_bound) continue;
        prefix.resize(i);
        for (std::size_t j = 0; j < i; ++j) {
          prefix[j] = static_cast<std::size_t>(out.decisions[j].index);
        }
        prefix.push_back(alt);
        planned = true;
        break;
      }
    }
    if (!planned) {
      result.exhausted = true;
      break;
    }
  }
  maybe_minimize(scenario, opts, result);
  return result;
}

ExploreResult explore_random(const std::function<void()>& scenario,
                             const ExploreOptions& opts) {
  ExploreResult result;
  for (std::uint64_t iter = 0; iter < opts.random_iterations; ++iter) {
    auto rng = std::make_shared<std::mt19937_64>(opts.seed + iter);
    Scheduler::Strategy strategy = [rng](const Decision& d) -> std::size_t {
      if (d.order.size() <= 1) return 0;
      // Bias towards staying on the current thread: long runs punctuated
      // by occasional switches probe rare orderings better than a uniform
      // coin-flip at every step.
      if (((*rng)() & 3) != 0) return 0;
      return 1 + static_cast<std::size_t>((*rng)() %
                                          (d.order.size() - 1));
    };
    Scheduler::RunOutcome out =
        run_once(scenario, strategy, opts.max_steps_per_run);
    ++result.schedules_explored;
    if (out.failure) {
      result.failure = out.failure;
      break;
    }
  }
  result.exhausted = false;
  maybe_minimize(scenario, opts, result);
  return result;
}

std::vector<Scenario>& scenario_registry() {
  static std::vector<Scenario> registry;
  return registry;
}

void register_scenario(Scenario scenario) {
  MCMM_REQUIRE(!scenario.name.empty(), "register_scenario: empty name");
  MCMM_REQUIRE(find_scenario(scenario.name) == nullptr,
               "register_scenario: duplicate scenario '" + scenario.name +
                   "'");
  scenario_registry().push_back(std::move(scenario));
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenario_registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace mcmm::check
