#include "gemm/pack.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace mcmm {

std::int64_t packed_a_size(std::int64_t mb, std::int64_t kb, std::int64_t mr) {
  return ceil_div(mb, mr) * mr * kb;
}

std::int64_t packed_b_size(std::int64_t kb, std::int64_t nb, std::int64_t nr) {
  return ceil_div(nb, nr) * nr * kb;
}

void pack_a_panel(const Matrix& a, std::int64_t i0, std::int64_t k0,
                  std::int64_t mb, std::int64_t kb, std::int64_t mr,
                  double* out) {
  for (std::int64_t s = 0; s < mb; s += mr) {
    const std::int64_t rows = std::min(mr, mb - s);
    double* strip = out + (s / mr) * (mr * kb);
    for (std::int64_t k = 0; k < kb; ++k) {
      double* dst = strip + k * mr;
      for (std::int64_t r = 0; r < rows; ++r) {
        dst[r] = a.row_ptr(i0 + s + r)[k0 + k];
      }
      for (std::int64_t r = rows; r < mr; ++r) dst[r] = 0.0;
    }
  }
}

void pack_b_panel(const Matrix& b, std::int64_t k0, std::int64_t j0,
                  std::int64_t kb, std::int64_t nb, std::int64_t nr,
                  double* out) {
  for (std::int64_t t = 0; t < nb; t += nr) {
    const std::int64_t cols = std::min(nr, nb - t);
    double* strip = out + (t / nr) * (nr * kb);
    for (std::int64_t k = 0; k < kb; ++k) {
      const double* brow = b.row_ptr(k0 + k) + j0 + t;
      double* dst = strip + k * nr;
      for (std::int64_t j = 0; j < cols; ++j) dst[j] = brow[j];
      for (std::int64_t j = cols; j < nr; ++j) dst[j] = 0.0;
    }
  }
}

}  // namespace mcmm
