#include "gemm/pack.hpp"

#include <algorithm>

#include "util/math.hpp"

// Prefetch hints are GNU builtins and compile to nothing elsewhere;
// architecturally they never fault, so hinting an address a few lines
// past the matrix edge is safe (row_ptr is unchecked pointer math).
#if defined(__GNUC__) || defined(__clang__)
#define MCMM_PACK_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define MCMM_PACK_PREFETCH(addr) ((void)0)
#endif

namespace mcmm {

namespace {
/// Doubles per 64-byte cache line: prefetch granularity for the packs.
constexpr std::int64_t kLineDoubles = 8;
}  // namespace

std::int64_t packed_a_size(std::int64_t mb, std::int64_t kb, std::int64_t mr) {
  return ceil_div(mb, mr) * mr * kb;
}

std::int64_t packed_b_size(std::int64_t kb, std::int64_t nb, std::int64_t nr) {
  return ceil_div(nb, nr) * nr * kb;
}

void pack_a_panel(const Matrix& a, std::int64_t i0, std::int64_t k0,
                  std::int64_t mb, std::int64_t kb, std::int64_t mr,
                  double* out, std::int64_t prefetch, bool negate) {
  for (std::int64_t s = 0; s < mb; s += mr) {
    const std::int64_t rows = std::min(mr, mb - s);
    double* strip = out + (s / mr) * (mr * kb);
    for (std::int64_t k = 0; k < kb; ++k) {
      double* dst = strip + k * mr;
      // Once per line boundary, hint the line each source row will need
      // `prefetch` lines from now (the k-walk streams along the rows).
      if (prefetch > 0 && (k0 + k) % kLineDoubles == 0) {
        for (std::int64_t r = 0; r < rows; ++r) {
          MCMM_PACK_PREFETCH(a.row_ptr(i0 + s + r) + k0 + k +
                             prefetch * kLineDoubles);
        }
      }
      if (negate) {
        for (std::int64_t r = 0; r < rows; ++r) {
          dst[r] = -a.row_ptr(i0 + s + r)[k0 + k];
        }
      } else {
        for (std::int64_t r = 0; r < rows; ++r) {
          dst[r] = a.row_ptr(i0 + s + r)[k0 + k];
        }
      }
      for (std::int64_t r = rows; r < mr; ++r) dst[r] = 0.0;
    }
  }
}

void pack_b_panel(const Matrix& b, std::int64_t k0, std::int64_t j0,
                  std::int64_t kb, std::int64_t nb, std::int64_t nr,
                  double* out, std::int64_t prefetch) {
  for (std::int64_t t = 0; t < nb; t += nr) {
    const std::int64_t cols = std::min(nr, nb - t);
    double* strip = out + (t / nr) * (nr * kb);
    for (std::int64_t k = 0; k < kb; ++k) {
      const double* brow = b.row_ptr(k0 + k) + j0 + t;
      // Hint the source row `prefetch` k-steps ahead (one line per 8
      // doubles of strip width).
      if (prefetch > 0) {
        const double* next = b.row_ptr(k0 + k + prefetch) + j0 + t;
        for (std::int64_t j = 0; j < cols; j += kLineDoubles) {
          MCMM_PACK_PREFETCH(next + j);
        }
      }
      double* dst = strip + k * nr;
      for (std::int64_t j = 0; j < cols; ++j) dst[j] = brow[j];
      for (std::int64_t j = cols; j < nr; ++j) dst[j] = 0.0;
    }
  }
}

}  // namespace mcmm
