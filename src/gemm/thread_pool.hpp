// Minimal fixed-size thread pool for the real-execution schedules.
//
// The schedules are SPMD: every core runs the same function with its own
// core id, over a statically partitioned slice of C (so there are no data
// races by construction, and no locks on the compute path).  The pool is
// created once and reused across parallel regions; run_on_all() blocks the
// caller until every worker finished the region.
//
// Synchronisation uses the mcmm::sync layer (src/check/sync.hpp): plain
// std:: types in normal builds, and under -DMCMM_CHECKED_SYNC=ON the
// model checker's instrumented primitives, so the pool's dispatch/drain
// protocol is exhaustively verified by tools/mcmm_check.  Mutex-guarded
// members carry Clang thread-safety annotations; the clang CI build
// enforces them with -Wthread-safety as an error.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "check/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcmm {

class ExecutionTracer;

class ThreadPool {
public:
  /// Spawns `workers` threads (>= 1).  Worker ids are 0 .. workers-1.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Pin worker i to cpus[i % cpus.size()] (one logical CPU each), so the
  /// model's per-core private caches map to real L2s.  Returns the number
  /// of workers successfully pinned: 0 on non-Linux builds, when `cpus` is
  /// empty, or when every pthread_setaffinity_np call fails (invalid ids,
  /// restricted cpuset) — pinning degrades, it never throws.  Safe to call
  /// between parallel regions; off unless explicitly requested (--pin).
  int pin_workers(const std::vector<int>& cpus);

  /// Workers pinned by the last pin_workers call (0 = unpinned).
  int pinned_workers() const { return pinned_; }

  /// Execute job(core_id) on every worker; returns when all are done.
  /// The first exception thrown by a worker (if any) is rethrown here.
  ///
  /// Exception ownership: workers capture throws with catch (...) — any
  /// type, not just std::exception — and the dispatch site rethrows the
  /// first one after the region drains, so the exception belongs to the
  /// *caller* of run_on_all/run_batch and the pool stays fully usable for
  /// the next region.  Long-lived callers (the serve dispatcher) must
  /// therefore catch (...) at the dispatch site if one failed job must not
  /// take down their loop.
  void run_on_all(const std::function<void(int)>& job);

  /// Split [0, total) into per-worker chunks and run body(core, lo, hi)
  /// on each worker.  Convenience wrapper over run_on_all.
  void parallel_for(std::int64_t total,
                    const std::function<void(int, std::int64_t, std::int64_t)>& body);

  /// Generic task-batch submit: execute every task in `tasks` exactly once,
  /// dynamically load-balanced across the workers (tasks are claimed from a
  /// shared atomic cursor, so heterogeneous task costs don't leave workers
  /// idle).  Blocks until the batch drains; when a task throws, the other
  /// workers stop claiming new tasks (already-started tasks finish) and the
  /// first exception is rethrown here.  Tasks must not submit further work
  /// to this pool.
  void run_batch(const std::vector<std::function<void()>>& tasks);

  /// Attach an ExecutionTracer (nullptr detaches).  While attached, every
  /// run_on_all dispatch is bracketed as a tracer region labelled with the
  /// current trace label, each worker's job is recorded as a kWork span,
  /// and run_batch records a kTask span per claimed task.  The tracer must
  /// have at least workers() rings and outlive the traced regions; safe to
  /// flip between parallel regions only.
  void set_tracer(ExecutionTracer* tracer) { tracer_ = tracer; }
  ExecutionTracer* tracer() const { return tracer_; }

  /// Label for subsequent traced regions (the schedule name); the pointer
  /// must stay valid until the next set_trace_label call.
  void set_trace_label(const char* label) { trace_label_ = label; }

private:
  void worker_loop(int id);

  std::vector<sync::thread> threads_;
  sync::mutex mutex_;
  sync::condition_variable cv_work_;
  sync::condition_variable cv_done_;
  const std::function<void(int)>* job_ MCMM_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ MCMM_GUARDED_BY(mutex_) = 0;
  int remaining_ MCMM_GUARDED_BY(mutex_) = 0;
  bool stop_ MCMM_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ MCMM_GUARDED_BY(mutex_);
  // Written only between parallel regions by the dispatching thread.
  int pinned_ = 0;
  ExecutionTracer* tracer_ = nullptr;
  const char* trace_label_ = "parallel";
};

}  // namespace mcmm
