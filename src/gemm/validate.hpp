// Numerical validation of the real-execution schedules against the
// reference kernel.
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"

namespace mcmm {

/// Tolerance for comparing two GEMM results with inner dimension z and
/// inputs bounded by 1: a small multiple of z * machine epsilon, the worst
/// accumulated rounding difference between two summation orders.
double gemm_tolerance(std::int64_t z);

/// True if `result` matches `expected` within gemm_tolerance(z).
bool gemm_matches(const Matrix& result, const Matrix& expected,
                  std::int64_t z);

}  // namespace mcmm
