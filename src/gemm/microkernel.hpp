// Register-blocked GEMM micro-kernels (the BLIS-style bottom layer).
//
// A micro-kernel computes one MR x NR register tile of C from packed
// panels of A and B:
//
//   C[r][j] += sum_k  A_panel[k*MR + r] * B_panel[k*NR + j]
//
// where A_panel stores MR rows column-by-column (so each k step reads one
// contiguous MR-vector) and B_panel stores NR columns row-by-row (one
// contiguous NR-vector per k).  Both panels come from src/gemm/pack and
// are 64-byte aligned with ragged edges zero-padded, so the kernel never
// branches on shape: the caller trims the store for edge tiles.
//
// The kernel family (runtime-dispatched after a one-time CPUID probe):
//  * scalar-4x8     — portable C++, MR x NR accumulator array, k ascending.
//  * avx2-fma-4x8   — 4 x 8 doubles in 8 ymm accumulators via FMA.
//  * avx512-fma-8x16 / avx512-fma-4x24 — zmm accumulators, compiled only
//    when MCMM_AVX512=ON (requires MCMM_SIMD=ON) and selected at runtime
//    only when the CPU reports avx512f.
//
// Every kernel accumulates the whole tile in registers/locals and adds it
// to C once, with a per-coefficient summation order (k ascending) that
// does not depend on the caller's decomposition — that is the bit-
// determinism contract the engine builds on.  For each SIMD kernel,
// scalar_mirror() returns a portable kernel with the same shape and the
// same per-coefficient arithmetic (std::fma when the SIMD kernel fuses),
// so the SIMD path can be proven bit-identical on any host that runs it.
//
// Two optional levers ride on the same contract:
//  * KernelKnobs carries software-prefetch distances (k-steps ahead for
//    the A/B panels).  Prefetching only warms caches; arithmetic and
//    results are unchanged.
//  * stream_fn is a non-temporal variant that writes the C tile with
//    streaming stores (same load+add arithmetic, so identical bits) —
//    legal only on the product's final k-panel, when the tile rows are
//    vector-aligned (stream_align), and followed by stream_fence() before
//    another thread may read C.  KernelContext guards all three.
//
// Dispatch policy lives in KernelContext (gemm/kernel.hpp); this header
// only exposes the kernels, the availability probes, and the registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcmm {

/// Default register-tile extents, in double coefficients (the AVX2/scalar
/// shape: 8 accumulator ymm registers + 2 B vectors + 1 broadcast).
inline constexpr std::int64_t kMicroM = 4;
inline constexpr std::int64_t kMicroN = 8;

/// Upper bounds over every compiled-in kernel shape — size scratch tiles
/// and shared buffers with these, never with kMicroM/kMicroN, when the
/// kernel is chosen at runtime.
inline constexpr std::int64_t kMaxMicroM = 8;
inline constexpr std::int64_t kMaxMicroN = 24;

/// Tunable software-prefetch distances, in k-steps ahead of the current
/// rank-1 update (0 disables the hint).  A distance d prefetches the
/// packed A/B row the kernel will consume d iterations from now; the C
/// tile is prefetched once ahead of the k-loop whenever either distance
/// is set.  Values come from the autotuner (KernelTuning) or default 0.
struct KernelKnobs {
  std::int64_t prefetch_a = 0;
  std::int64_t prefetch_b = 0;
};

/// C tile += packed-A-strip * packed-B-strip over `kc` rank-1 updates.
/// `a` is MR-strided, `b` is NR-strided (see pack.hpp); `c` points at the
/// tile's top-left coefficient with row stride `ldc` (full MR x NR store —
/// edge tiles go through a scratch tile in the caller).
using MicroKernelFn = void (*)(std::int64_t kc, const double* a,
                               const double* b, double* c, std::int64_t ldc,
                               const KernelKnobs& knobs);

struct MicroKernel {
  MicroKernelFn fn = nullptr;
  /// Non-temporal variant: identical arithmetic, C written with streaming
  /// stores.  Equal to `fn` when the kernel has no NT path (stream_align
  /// is then 0).  Callers must honour the streaming-store contract above.
  MicroKernelFn stream_fn = nullptr;
  const char* name = "";  ///< dispatch string, e.g. "avx2-fma-4x8"
  /// Whether each multiply-add is contracted to one fused operation (the
  /// SIMD kernels' per-lane vfmadd).  Callers that must reproduce the
  /// kernel's per-coefficient arithmetic exactly (the batch engine's
  /// direct small-shape path, scalar_mirror) mirror this with std::fma
  /// vs mul+add.
  bool fused = false;
  std::int64_t mr = kMicroM;  ///< register-tile rows
  std::int64_t nr = kMicroN;  ///< register-tile columns
  /// Byte alignment stream_fn requires of every C tile row (c + r*ldc).
  /// 0 means no real NT variant exists.
  std::int64_t stream_align = 0;
};

/// True when the AVX2+FMA kernel is compiled in (MCMM_SIMD=ON, x86-64)
/// and the host CPU reports both features (one-time CPUID probe).
bool simd_kernel_available();

/// Human-readable reason the SIMD kernel cannot run ("" when it can).
std::string simd_unavailable_reason();

/// True when the AVX-512 kernels are compiled in (MCMM_AVX512=ON under
/// MCMM_SIMD=ON, x86-64) and the host CPU reports avx512f.
bool avx512_kernel_available();

/// Human-readable reason the AVX-512 kernels cannot run ("" when they can).
std::string avx512_unavailable_reason();

/// The portable kernel (always available).
MicroKernel scalar_micro_kernel();

/// The AVX2+FMA 4x8 kernel; requires simd_kernel_available().  Throws
/// mcmm::Error otherwise so a forced-AVX2 request fails loudly.
MicroKernel avx2_micro_kernel();

/// The best SIMD kernel this host can run (AVX-512 8x16 when available,
/// else AVX2 4x8); throws mcmm::Error when no SIMD kernel can run.
MicroKernel simd_micro_kernel();

/// The AVX-512 kernels (8x16 first); requires avx512_kernel_available(),
/// throws mcmm::Error otherwise.
std::vector<MicroKernel> avx512_micro_kernels();

/// Best kernel for this host: SIMD when available, scalar otherwise.
MicroKernel best_micro_kernel();

/// Every kernel that can actually run on this host (scalar always, then
/// AVX2, then the AVX-512 shapes) — the autotuner's candidate set.
std::vector<MicroKernel> all_micro_kernels();

/// Look up a kernel by dispatch name — real kernels and scalar mirrors
/// ("scalar-fma-MRxNR") alike.  Throws mcmm::Error when the name is
/// unknown or the kernel cannot run on this host.
MicroKernel micro_kernel_by_name(const std::string& name);

/// A portable kernel with `k`'s tile shape and per-coefficient arithmetic
/// (std::fma when k.fused): bit-identical results to `k` on every input,
/// runnable on every host.  The mirror of the scalar kernel is itself.
MicroKernel scalar_mirror(const MicroKernel& k);

/// Order non-temporal stores before subsequent loads/stores (sfence).
/// Call after a block whose C tile was written through stream_fn and
/// before another thread may read C.  No-op on non-SIMD builds.
void stream_fence();

/// The autotuner's verdict for one host, persisted in the mcmm-machine-v1
/// profile ("kernel_tuning" section) and consumed by KernelContext and
/// MachineProfile::tiling().  Defaults mean "untuned": best kernel, model
/// q, no prefetch, no streaming.
struct KernelTuning {
  bool tuned = false;
  std::string kernel;             ///< dispatch name, e.g. "avx512-fma-8x16"
  std::int64_t kc = 0;            ///< tuned k-panel depth (execution q)
  std::int64_t prefetch_a = 0;    ///< micro-kernel A prefetch, k-steps
  std::int64_t prefetch_b = 0;    ///< micro-kernel B prefetch, k-steps
  std::int64_t pack_prefetch = 0; ///< pack-time prefetch, rows ahead
  bool stream_stores = false;     ///< use the NT store path for C
  double gflops = 0.0;            ///< measured rate at tune time
};

}  // namespace mcmm
