// Register-blocked GEMM micro-kernels (the BLIS-style bottom layer).
//
// A micro-kernel computes one MR x NR register tile of C from packed
// panels of A and B:
//
//   C[r][j] += sum_k  A_panel[k*MR + r] * B_panel[k*NR + j]
//
// where A_panel stores MR rows column-by-column (so each k step reads one
// contiguous MR-vector) and B_panel stores NR columns row-by-row (one
// contiguous NR-vector per k).  Both panels come from src/gemm/pack and
// are 64-byte aligned with ragged edges zero-padded, so the kernel never
// branches on shape: the caller trims the store for edge tiles.
//
// Two implementations share that contract:
//  * scalar  — portable C++, MR x NR accumulator array, k ascending.  The
//    per-element summation order is fixed, so results are bit-identical
//    for every worker count and tile decomposition.
//  * avx2-fma — 4 x 8 doubles in 8 ymm accumulators via FMA intrinsics,
//    compiled only when MCMM_SIMD=ON on an x86-64 toolchain and selected
//    at runtime after a one-time CPUID probe (__builtin_cpu_supports).
//
// Dispatch policy lives in KernelContext (gemm/kernel.hpp); this header
// only exposes the kernels and the availability probe.
#pragma once

#include <cstdint>
#include <string>

namespace mcmm {

/// Register-tile extents, in double coefficients.  4 x 8 fills the AVX2
/// register file: 8 accumulator ymm registers + 2 B vectors + 1 broadcast.
inline constexpr std::int64_t kMicroM = 4;
inline constexpr std::int64_t kMicroN = 8;

/// C tile += packed-A-strip * packed-B-strip over `kc` rank-1 updates.
/// `a` is MR-strided, `b` is NR-strided (see pack.hpp); `c` points at the
/// tile's top-left coefficient with row stride `ldc` (full MR x NR store —
/// edge tiles go through a scratch tile in the caller).
using MicroKernelFn = void (*)(std::int64_t kc, const double* a,
                               const double* b, double* c, std::int64_t ldc);

struct MicroKernel {
  MicroKernelFn fn = nullptr;
  const char* name = "";  ///< dispatch string, e.g. "avx2-fma-4x8"
  /// Whether each multiply-add is contracted to one fused operation (the
  /// AVX2 kernel's per-lane vfmadd).  Callers that must reproduce the
  /// kernel's per-coefficient arithmetic exactly (the batch engine's
  /// direct small-shape path) mirror this with std::fma vs mul+add.
  bool fused = false;
};

/// True when the AVX2+FMA kernel is compiled in (MCMM_SIMD=ON, x86-64)
/// and the host CPU reports both features (one-time CPUID probe).
bool simd_kernel_available();

/// Human-readable reason the SIMD kernel cannot run ("" when it can).
std::string simd_unavailable_reason();

/// The portable kernel (always available).
MicroKernel scalar_micro_kernel();

/// The AVX2+FMA kernel; requires simd_kernel_available().  Throws
/// mcmm::Error otherwise so a forced-SIMD request fails loudly.
MicroKernel simd_micro_kernel();

/// Best kernel for this host: SIMD when available, scalar otherwise.
MicroKernel best_micro_kernel();

}  // namespace mcmm
