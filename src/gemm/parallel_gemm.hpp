// Real-data, multithreaded executions of the paper's schedules — the
// "implement all algorithms on state-of-the-art multicore machines" the
// paper defers to future work.
//
// Each schedule partitions C statically among the cores exactly like its
// simulated counterpart, so workers never write the same coefficient and
// the whole product needs a single fork/join (results are identical to the
// reference kernel up to FP associativity of the k-loop, which every
// schedule preserves per C block by accumulating k in increasing order).
//
// Tile parameters are expressed in q x q blocks, mirroring the simulator:
// lambda for SharedOpt, mu (with a sqrt(p) grid) for DistributedOpt,
// (alpha, beta, mu) for Tradeoff.  Use tiling_for_host() for sensible
// defaults derived from typical L2/L3 sizes.
#pragma once

#include <cstdint>

#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"

namespace mcmm {

/// Block-tiling parameters for the real schedules (all in blocks).
struct Tiling {
  std::int64_t q = 64;       ///< block side, in coefficients
  std::int64_t lambda = 8;   ///< SharedOpt C-tile side
  std::int64_t mu = 2;       ///< DistributedOpt / Tradeoff sub-tile side
  std::int64_t alpha = 8;    ///< Tradeoff C-tile side (multiple of sqrt(p)*mu)
  std::int64_t beta = 4;     ///< Tradeoff k-panel depth
};

/// Derive a Tiling from cache sizes in bytes (8-byte coefficients), using
/// the paper's formulas: lambda from the shared (last-level) cache and mu
/// from the per-core cache, alpha/beta from the tradeoff solver with
/// sigma_S == sigma_D.  When the shared cache cannot hold p private caches
/// (exclusive or undersized last level) the model's inclusive-hierarchy
/// assumption forces CS up to p*CD; that clamp is reported on stderr so a
/// derived lambda is never silently based on more cache than is physical.
Tiling tiling_for_host(int p, std::int64_t shared_cache_bytes,
                       std::int64_t private_cache_bytes, std::int64_t q);

/// Each schedule has two faces: the two-argument form builds a default
/// KernelContext (auto-dispatched micro-kernel) per call; the three-
/// argument form routes every q x q block product through the caller's
/// context — reusing its per-worker packing buffers across calls and
/// honouring a forced scalar/SIMD path.  `ctx.workers()` must cover
/// `pool.workers()`.  Every loop order and ownership region is exactly
/// the paper's, independent of the kernel behind block_op.

/// C += A * B with the SharedOpt schedule (Algorithm 1).
void parallel_gemm_shared_opt(Matrix& c, const Matrix& a, const Matrix& b,
                              const Tiling& t, ThreadPool& pool);
void parallel_gemm_shared_opt(Matrix& c, const Matrix& a, const Matrix& b,
                              const Tiling& t, ThreadPool& pool,
                              KernelContext& ctx);

/// C += A * B with the DistributedOpt schedule (Algorithm 2).
/// Works with any worker count (most balanced r x c grid).
void parallel_gemm_distributed_opt(Matrix& c, const Matrix& a,
                                   const Matrix& b, const Tiling& t,
                                   ThreadPool& pool);
void parallel_gemm_distributed_opt(Matrix& c, const Matrix& a,
                                   const Matrix& b, const Tiling& t,
                                   ThreadPool& pool, KernelContext& ctx);

/// C += A * B with the Tradeoff schedule (Algorithm 3).
/// Works with any worker count (most balanced r x c grid).
void parallel_gemm_tradeoff(Matrix& c, const Matrix& a, const Matrix& b,
                            const Tiling& t, ThreadPool& pool);
void parallel_gemm_tradeoff(Matrix& c, const Matrix& a, const Matrix& b,
                            const Tiling& t, ThreadPool& pool,
                            KernelContext& ctx);

/// C += A * B with the outer-product baseline on a 2-D worker grid.
/// Works with any worker count (most balanced r x c grid).
void parallel_gemm_outer_product(Matrix& c, const Matrix& a, const Matrix& b,
                                 const Tiling& t, ThreadPool& pool);
void parallel_gemm_outer_product(Matrix& c, const Matrix& a, const Matrix& b,
                                 const Tiling& t, ThreadPool& pool,
                                 KernelContext& ctx);

}  // namespace mcmm
