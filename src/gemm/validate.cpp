#include "gemm/validate.hpp"

#include <limits>

namespace mcmm {

double gemm_tolerance(std::int64_t z) {
  return 64.0 * static_cast<double>(z) *
         std::numeric_limits<double>::epsilon();
}

bool gemm_matches(const Matrix& result, const Matrix& expected,
                  std::int64_t z) {
  return Matrix::max_abs_diff(result, expected) <= gemm_tolerance(z);
}

}  // namespace mcmm
