// Panel packing for the micro-kernel engine (the BLIS-style middle layer).
//
// The micro-kernel streams two contiguous panels:
//
//  * A panel, MR-strided: the mb x kb sub-block of A is split into strips
//    of MR rows; within a strip the layout is column-major, so one k step
//    reads one contiguous MR-vector:  out[strip][k*MR + r].
//  * B panel, NR-strided: the kb x nb sub-block of B is split into strips
//    of NR columns; within a strip the layout is row-major, one contiguous
//    NR-vector per k:                 out[strip][k*NR + j].
//
// Ragged strips (mb % MR, nb % NR) are zero-padded to the full stride, so
// the kernel itself never branches on shape.  Padding is exact: a zero
// coefficient contributes 0.0 to every product, and padded C rows/columns
// are never stored back.  Buffers come from AlignedVector (matrix.hpp),
// so every strip starts 64-byte aligned when MR/NR are multiples of 8
// doubles per stride pair (MR*8 = 32 B, NR*8 = 64 B — B rows stay aligned).
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"

namespace mcmm {

/// Doubles needed for a packed mb x kb A sub-block at stride mr.
std::int64_t packed_a_size(std::int64_t mb, std::int64_t kb, std::int64_t mr);

/// Doubles needed for a packed kb x nb B sub-block at stride nr.
std::int64_t packed_b_size(std::int64_t kb, std::int64_t nb, std::int64_t nr);

/// Pack A[i0 .. i0+mb, k0 .. k0+kb) MR-strided into `out`
/// (capacity >= packed_a_size(mb, kb, mr)).
///
/// `prefetch` > 0 issues a software prefetch that many cache lines ahead
/// along each source row while copying (the pack walks A column-by-column
/// within a strip, so the upcoming lines of every row are the next thing
/// it touches).  Prefetching never faults and never changes the packed
/// bytes; 0 disables it.  Tuned via KernelTuning::pack_prefetch.
///
/// `negate` packs -A instead of A: with IEEE-754 doubles (-a)*b is
/// bit-exactly -(a*b), so a negated A panel turns the micro-kernel's
/// C += A*B write-back into C -= A*B without touching the kernel contract
/// (the LU trailing update rides on this).  Padding stays +0.0 either way.
void pack_a_panel(const Matrix& a, std::int64_t i0, std::int64_t k0,
                  std::int64_t mb, std::int64_t kb, std::int64_t mr,
                  double* out, std::int64_t prefetch = 0, bool negate = false);

/// Pack B[k0 .. k0+kb, j0 .. j0+nb) NR-strided into `out`
/// (capacity >= packed_b_size(kb, nb, nr)).
///
/// `prefetch` > 0 prefetches the source row that many k-steps ahead of
/// the one being copied (B is read row-by-row, one row per k).  Same
/// contract as pack_a_panel's knob: hint only, 0 disables.
void pack_b_panel(const Matrix& b, std::int64_t k0, std::int64_t j0,
                  std::int64_t kb, std::int64_t nb, std::int64_t nr,
                  double* out, std::int64_t prefetch = 0);

}  // namespace mcmm
