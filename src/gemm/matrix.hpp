// Dense row-major matrix of doubles for the real-execution substrate.
//
// The simulator works on abstract q x q blocks; this container holds the
// actual coefficients so the paper's schedules can also be executed for
// real (threads + blocked kernels), validating that every schedule
// computes the same product.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

/// Minimal allocator returning 64-byte-aligned storage, so coefficient
/// rows and packed kernel panels start on a cache-line (and AVX) boundary;
/// the SIMD micro-kernel issues aligned loads on packed panels.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <class U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

/// 64-byte-aligned growable double buffer (packing panels, scratch tiles).
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

class Matrix {
public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols, double fill = 0.0);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  double& at(std::int64_t i, std::int64_t j) {
    MCMM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                "Matrix::at: index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double at(std::int64_t i, std::int64_t j) const {
    MCMM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                "Matrix::at: index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Unchecked row pointer for kernels (leading dimension == cols()).
  double* row_ptr(std::int64_t i) {
    return data_.data() + static_cast<std::size_t>(i * cols_);
  }
  const double* row_ptr(std::int64_t i) const {
    return data_.data() + static_cast<std::size_t>(i * cols_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void set_zero();

  /// Deterministic pseudo-random fill in [-1, 1] (seeded SplitMix64), so
  /// tests and examples are reproducible without <random> state plumbing.
  void fill_random(std::uint64_t seed);

  /// Largest absolute element-wise difference (infinity norm of A - B).
  static double max_abs_diff(const Matrix& a, const Matrix& b);

private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  AlignedVector data_;
};

}  // namespace mcmm
