// Dense row-major matrix of doubles for the real-execution substrate.
//
// The simulator works on abstract q x q blocks; this container holds the
// actual coefficients so the paper's schedules can also be executed for
// real (threads + blocked kernels), validating that every schedule
// computes the same product.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

class Matrix {
public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols, double fill = 0.0);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  double& at(std::int64_t i, std::int64_t j) {
    MCMM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                "Matrix::at: index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double at(std::int64_t i, std::int64_t j) const {
    MCMM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                "Matrix::at: index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Unchecked row pointer for kernels (leading dimension == cols()).
  double* row_ptr(std::int64_t i) {
    return data_.data() + static_cast<std::size_t>(i * cols_);
  }
  const double* row_ptr(std::int64_t i) const {
    return data_.data() + static_cast<std::size_t>(i * cols_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void set_zero();

  /// Deterministic pseudo-random fill in [-1, 1] (seeded SplitMix64), so
  /// tests and examples are reproducible without <random> state plumbing.
  void fill_random(std::uint64_t seed);

  /// Largest absolute element-wise difference (infinity norm of A - B).
  static double max_abs_diff(const Matrix& a, const Matrix& b);

private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mcmm
