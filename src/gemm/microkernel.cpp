#include "gemm/microkernel.hpp"

#include <cmath>

#include "util/error.hpp"

// The SIMD path needs: the CMake switch (MCMM_SIMD=ON defines
// MCMM_SIMD_ENABLED=1), an x86-64 target, and a GNU-compatible compiler
// for the per-function target attribute and __builtin_cpu_supports.
#if defined(MCMM_SIMD_ENABLED) && MCMM_SIMD_ENABLED && \
    (defined(__x86_64__) || defined(__amd64__)) &&     \
    (defined(__GNUC__) || defined(__clang__))
#define MCMM_SIMD_X86 1
#include <immintrin.h>
#else
#define MCMM_SIMD_X86 0
#endif

// AVX-512 stacks on top: its own CMake switch so CI can probe both
// configurations, still gated on the same toolchain requirements.
#if MCMM_SIMD_X86 && defined(MCMM_AVX512_ENABLED) && MCMM_AVX512_ENABLED
#define MCMM_AVX512_X86 1
#else
#define MCMM_AVX512_X86 0
#endif

// Prefetch hints are GNU builtins; they compile to nothing elsewhere.
// Prefetching is architecturally side-effect-free (never faults, never
// changes results), so running past a panel's end by a few k-steps is
// safe — it only warms (or wastes) a cache line.
#if defined(__GNUC__) || defined(__clang__)
#define MCMM_PREFETCH_R(addr) __builtin_prefetch((addr), 0, 3)
#define MCMM_PREFETCH_W(addr) __builtin_prefetch((addr), 1, 3)
#else
#define MCMM_PREFETCH_R(addr) ((void)0)
#define MCMM_PREFETCH_W(addr) ((void)0)
#endif

namespace mcmm {

namespace {

/// The portable tile kernel, shape- and contraction-parameterised: the
/// scalar dispatch path (FUSED=false) and the bit-exact mirrors of the
/// SIMD kernels (FUSED=true, std::fma == the hardware vfmadd per lane).
/// Accumulates the whole tile in locals, then adds once to C: one store
/// per element and a per-element summation order (k ascending) that does
/// not depend on how the caller decomposed the matrix.
template <int MR, int NR, bool FUSED>
void kernel_generic(std::int64_t kc, const double* a, const double* b,
                    double* c, std::int64_t ldc, const KernelKnobs& knobs) {
  double acc[MR][NR] = {};
  const std::int64_t pfa = knobs.prefetch_a, pfb = knobs.prefetch_b;
  if (pfa > 0 || pfb > 0) {
    for (int r = 0; r < MR; ++r) MCMM_PREFETCH_W(c + r * ldc);
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    if (pfa > 0) MCMM_PREFETCH_R(a + (k + pfa) * MR);
    if (pfb > 0) MCMM_PREFETCH_R(b + (k + pfb) * NR);
    const double* ak = a + k * MR;
    const double* bk = b + k * NR;
    for (int r = 0; r < MR; ++r) {
      const double ar = ak[r];
      for (int j = 0; j < NR; ++j) {
        if constexpr (FUSED) {
          acc[r][j] = std::fma(ar, bk[j], acc[r][j]);
        } else {
          acc[r][j] += ar * bk[j];
        }
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    double* crow = c + r * ldc;
    for (int j = 0; j < NR; ++j) crow[j] += acc[r][j];
  }
}

#if MCMM_SIMD_X86
// 4 rows x 8 columns = 8 ymm accumulators; each k step broadcasts four
// A coefficients against two aligned B vectors (packed panels are
// 64-byte aligned and NR == 8 doubles keeps every B row on a boundary).
// `stream` selects the non-temporal write-back: same load+add arithmetic,
// only the store instruction differs, so the bits in C are identical.
__attribute__((target("avx2,fma"))) inline void avx2_4x8_body(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs, bool stream) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  const std::int64_t pfa = knobs.prefetch_a, pfb = knobs.prefetch_b;
  if (pfa > 0 || pfb > 0) {
    for (int r = 0; r < 4; ++r) MCMM_PREFETCH_W(c + r * ldc);
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    if (pfa > 0) MCMM_PREFETCH_R(a + (k + pfa) * 4);
    if (pfb > 0) MCMM_PREFETCH_R(b + (k + pfb) * 8);
    const __m256d b0 = _mm256_load_pd(b + k * 8);
    const __m256d b1 = _mm256_load_pd(b + k * 8 + 4);
    const double* ak = a + k * 4;
    __m256d ar = _mm256_broadcast_sd(ak + 0);
    c00 = _mm256_fmadd_pd(ar, b0, c00);
    c01 = _mm256_fmadd_pd(ar, b1, c01);
    ar = _mm256_broadcast_sd(ak + 1);
    c10 = _mm256_fmadd_pd(ar, b0, c10);
    c11 = _mm256_fmadd_pd(ar, b1, c11);
    ar = _mm256_broadcast_sd(ak + 2);
    c20 = _mm256_fmadd_pd(ar, b0, c20);
    c21 = _mm256_fmadd_pd(ar, b1, c21);
    ar = _mm256_broadcast_sd(ak + 3);
    c30 = _mm256_fmadd_pd(ar, b0, c30);
    c31 = _mm256_fmadd_pd(ar, b1, c31);
  }
  double* c0 = c;
  double* c1 = c + ldc;
  double* c2 = c + 2 * ldc;
  double* c3 = c + 3 * ldc;
  if (stream) {
    // Caller guarantees 32-byte-aligned rows (stream_align); aligned
    // loads read the old C, the sums go out through the WC buffers.
    _mm256_stream_pd(c0, _mm256_add_pd(_mm256_load_pd(c0), c00));
    _mm256_stream_pd(c0 + 4, _mm256_add_pd(_mm256_load_pd(c0 + 4), c01));
    _mm256_stream_pd(c1, _mm256_add_pd(_mm256_load_pd(c1), c10));
    _mm256_stream_pd(c1 + 4, _mm256_add_pd(_mm256_load_pd(c1 + 4), c11));
    _mm256_stream_pd(c2, _mm256_add_pd(_mm256_load_pd(c2), c20));
    _mm256_stream_pd(c2 + 4, _mm256_add_pd(_mm256_load_pd(c2 + 4), c21));
    _mm256_stream_pd(c3, _mm256_add_pd(_mm256_load_pd(c3), c30));
    _mm256_stream_pd(c3 + 4, _mm256_add_pd(_mm256_load_pd(c3 + 4), c31));
  } else {
    // C is the caller's matrix (or an aligned scratch tile): unaligned ops.
    _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), c00));
    _mm256_storeu_pd(c0 + 4, _mm256_add_pd(_mm256_loadu_pd(c0 + 4), c01));
    _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), c10));
    _mm256_storeu_pd(c1 + 4, _mm256_add_pd(_mm256_loadu_pd(c1 + 4), c11));
    _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), c20));
    _mm256_storeu_pd(c2 + 4, _mm256_add_pd(_mm256_loadu_pd(c2 + 4), c21));
    _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), c30));
    _mm256_storeu_pd(c3 + 4, _mm256_add_pd(_mm256_loadu_pd(c3 + 4), c31));
  }
}

__attribute__((target("avx2,fma"))) void kernel_avx2_4x8(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx2_4x8_body(kc, a, b, c, ldc, knobs, false);
}

__attribute__((target("avx2,fma"))) void kernel_avx2_4x8_stream(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx2_4x8_body(kc, a, b, c, ldc, knobs, true);
}
#endif  // MCMM_SIMD_X86

#if MCMM_AVX512_X86
// 8 rows x 16 columns = 16 zmm accumulators + 2 B vectors + 1 broadcast
// (19 of 32 zmm).  B rows are 16 doubles = two full cache lines, always
// 64-byte aligned in the packed panel.
__attribute__((target("avx512f"))) inline void avx512_8x16_body(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs, bool stream) {
  __m512d acc0a = _mm512_setzero_pd(), acc0b = _mm512_setzero_pd();
  __m512d acc1a = _mm512_setzero_pd(), acc1b = _mm512_setzero_pd();
  __m512d acc2a = _mm512_setzero_pd(), acc2b = _mm512_setzero_pd();
  __m512d acc3a = _mm512_setzero_pd(), acc3b = _mm512_setzero_pd();
  __m512d acc4a = _mm512_setzero_pd(), acc4b = _mm512_setzero_pd();
  __m512d acc5a = _mm512_setzero_pd(), acc5b = _mm512_setzero_pd();
  __m512d acc6a = _mm512_setzero_pd(), acc6b = _mm512_setzero_pd();
  __m512d acc7a = _mm512_setzero_pd(), acc7b = _mm512_setzero_pd();
  const std::int64_t pfa = knobs.prefetch_a, pfb = knobs.prefetch_b;
  if (pfa > 0 || pfb > 0) {
    for (int r = 0; r < 8; ++r) {
      MCMM_PREFETCH_W(c + r * ldc);
      MCMM_PREFETCH_W(c + r * ldc + 8);
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    if (pfa > 0) MCMM_PREFETCH_R(a + (k + pfa) * 8);
    if (pfb > 0) {
      MCMM_PREFETCH_R(b + (k + pfb) * 16);
      MCMM_PREFETCH_R(b + (k + pfb) * 16 + 8);
    }
    const __m512d b0 = _mm512_load_pd(b + k * 16);
    const __m512d b1 = _mm512_load_pd(b + k * 16 + 8);
    const double* ak = a + k * 8;
    __m512d ar = _mm512_set1_pd(ak[0]);
    acc0a = _mm512_fmadd_pd(ar, b0, acc0a);
    acc0b = _mm512_fmadd_pd(ar, b1, acc0b);
    ar = _mm512_set1_pd(ak[1]);
    acc1a = _mm512_fmadd_pd(ar, b0, acc1a);
    acc1b = _mm512_fmadd_pd(ar, b1, acc1b);
    ar = _mm512_set1_pd(ak[2]);
    acc2a = _mm512_fmadd_pd(ar, b0, acc2a);
    acc2b = _mm512_fmadd_pd(ar, b1, acc2b);
    ar = _mm512_set1_pd(ak[3]);
    acc3a = _mm512_fmadd_pd(ar, b0, acc3a);
    acc3b = _mm512_fmadd_pd(ar, b1, acc3b);
    ar = _mm512_set1_pd(ak[4]);
    acc4a = _mm512_fmadd_pd(ar, b0, acc4a);
    acc4b = _mm512_fmadd_pd(ar, b1, acc4b);
    ar = _mm512_set1_pd(ak[5]);
    acc5a = _mm512_fmadd_pd(ar, b0, acc5a);
    acc5b = _mm512_fmadd_pd(ar, b1, acc5b);
    ar = _mm512_set1_pd(ak[6]);
    acc6a = _mm512_fmadd_pd(ar, b0, acc6a);
    acc6b = _mm512_fmadd_pd(ar, b1, acc6b);
    ar = _mm512_set1_pd(ak[7]);
    acc7a = _mm512_fmadd_pd(ar, b0, acc7a);
    acc7b = _mm512_fmadd_pd(ar, b1, acc7b);
  }
  const __m512d accs[8][2] = {{acc0a, acc0b}, {acc1a, acc1b}, {acc2a, acc2b},
                              {acc3a, acc3b}, {acc4a, acc4b}, {acc5a, acc5b},
                              {acc6a, acc6b}, {acc7a, acc7b}};
  for (int r = 0; r < 8; ++r) {
    double* crow = c + r * ldc;
    if (stream) {
      _mm512_stream_pd(crow, _mm512_add_pd(_mm512_load_pd(crow), accs[r][0]));
      _mm512_stream_pd(crow + 8,
                       _mm512_add_pd(_mm512_load_pd(crow + 8), accs[r][1]));
    } else {
      _mm512_storeu_pd(crow,
                       _mm512_add_pd(_mm512_loadu_pd(crow), accs[r][0]));
      _mm512_storeu_pd(crow + 8,
                       _mm512_add_pd(_mm512_loadu_pd(crow + 8), accs[r][1]));
    }
  }
}

__attribute__((target("avx512f"))) void kernel_avx512_8x16(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx512_8x16_body(kc, a, b, c, ldc, knobs, false);
}

__attribute__((target("avx512f"))) void kernel_avx512_8x16_stream(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx512_8x16_body(kc, a, b, c, ldc, knobs, true);
}

// 4 rows x 24 columns = 12 zmm accumulators + 3 B vectors + 1 broadcast
// (16 of 32 zmm): a wider, shallower tile for hosts where broadcast
// latency dominates (fewer A broadcasts per FMA).
__attribute__((target("avx512f"))) inline void avx512_4x24_body(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs, bool stream) {
  __m512d acc0a = _mm512_setzero_pd(), acc0b = _mm512_setzero_pd(),
          acc0c = _mm512_setzero_pd();
  __m512d acc1a = _mm512_setzero_pd(), acc1b = _mm512_setzero_pd(),
          acc1c = _mm512_setzero_pd();
  __m512d acc2a = _mm512_setzero_pd(), acc2b = _mm512_setzero_pd(),
          acc2c = _mm512_setzero_pd();
  __m512d acc3a = _mm512_setzero_pd(), acc3b = _mm512_setzero_pd(),
          acc3c = _mm512_setzero_pd();
  const std::int64_t pfa = knobs.prefetch_a, pfb = knobs.prefetch_b;
  if (pfa > 0 || pfb > 0) {
    for (int r = 0; r < 4; ++r) {
      MCMM_PREFETCH_W(c + r * ldc);
      MCMM_PREFETCH_W(c + r * ldc + 8);
      MCMM_PREFETCH_W(c + r * ldc + 16);
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    if (pfa > 0) MCMM_PREFETCH_R(a + (k + pfa) * 4);
    if (pfb > 0) {
      MCMM_PREFETCH_R(b + (k + pfb) * 24);
      MCMM_PREFETCH_R(b + (k + pfb) * 24 + 8);
      MCMM_PREFETCH_R(b + (k + pfb) * 24 + 16);
    }
    const __m512d b0 = _mm512_load_pd(b + k * 24);
    const __m512d b1 = _mm512_load_pd(b + k * 24 + 8);
    const __m512d b2 = _mm512_load_pd(b + k * 24 + 16);
    const double* ak = a + k * 4;
    __m512d ar = _mm512_set1_pd(ak[0]);
    acc0a = _mm512_fmadd_pd(ar, b0, acc0a);
    acc0b = _mm512_fmadd_pd(ar, b1, acc0b);
    acc0c = _mm512_fmadd_pd(ar, b2, acc0c);
    ar = _mm512_set1_pd(ak[1]);
    acc1a = _mm512_fmadd_pd(ar, b0, acc1a);
    acc1b = _mm512_fmadd_pd(ar, b1, acc1b);
    acc1c = _mm512_fmadd_pd(ar, b2, acc1c);
    ar = _mm512_set1_pd(ak[2]);
    acc2a = _mm512_fmadd_pd(ar, b0, acc2a);
    acc2b = _mm512_fmadd_pd(ar, b1, acc2b);
    acc2c = _mm512_fmadd_pd(ar, b2, acc2c);
    ar = _mm512_set1_pd(ak[3]);
    acc3a = _mm512_fmadd_pd(ar, b0, acc3a);
    acc3b = _mm512_fmadd_pd(ar, b1, acc3b);
    acc3c = _mm512_fmadd_pd(ar, b2, acc3c);
  }
  const __m512d accs[4][3] = {{acc0a, acc0b, acc0c},
                              {acc1a, acc1b, acc1c},
                              {acc2a, acc2b, acc2c},
                              {acc3a, acc3b, acc3c}};
  for (int r = 0; r < 4; ++r) {
    double* crow = c + r * ldc;
    for (int v = 0; v < 3; ++v) {
      double* cp = crow + v * 8;
      if (stream) {
        _mm512_stream_pd(cp, _mm512_add_pd(_mm512_load_pd(cp), accs[r][v]));
      } else {
        _mm512_storeu_pd(cp, _mm512_add_pd(_mm512_loadu_pd(cp), accs[r][v]));
      }
    }
  }
}

__attribute__((target("avx512f"))) void kernel_avx512_4x24(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx512_4x24_body(kc, a, b, c, ldc, knobs, false);
}

__attribute__((target("avx512f"))) void kernel_avx512_4x24_stream(
    std::int64_t kc, const double* a, const double* b, double* c,
    std::int64_t ldc, const KernelKnobs& knobs) {
  avx512_4x24_body(kc, a, b, c, ldc, knobs, true);
}
#endif  // MCMM_AVX512_X86

MicroKernel mirror_fma_4x8() {
  return {&kernel_generic<4, 8, true>, &kernel_generic<4, 8, true>,
          "scalar-fma-4x8", true, 4, 8, 0};
}

MicroKernel mirror_fma_8x16() {
  return {&kernel_generic<8, 16, true>, &kernel_generic<8, 16, true>,
          "scalar-fma-8x16", true, 8, 16, 0};
}

MicroKernel mirror_fma_4x24() {
  return {&kernel_generic<4, 24, true>, &kernel_generic<4, 24, true>,
          "scalar-fma-4x24", true, 4, 24, 0};
}

}  // namespace

bool simd_kernel_available() {
#if MCMM_SIMD_X86
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

std::string simd_unavailable_reason() {
#if MCMM_SIMD_X86
  if (simd_kernel_available()) return "";
  return "host CPU lacks AVX2+FMA";
#else
  return "compiled without the SIMD kernel (MCMM_SIMD=OFF or non-x86-64)";
#endif
}

bool avx512_kernel_available() {
#if MCMM_AVX512_X86
  static const bool supported = __builtin_cpu_supports("avx512f");
  return supported;
#else
  return false;
#endif
}

std::string avx512_unavailable_reason() {
#if MCMM_AVX512_X86
  if (avx512_kernel_available()) return "";
  return "host CPU lacks AVX-512F";
#else
  return "compiled without the AVX-512 kernels (MCMM_AVX512=OFF, "
         "MCMM_SIMD=OFF, or non-x86-64)";
#endif
}

MicroKernel scalar_micro_kernel() {
  // Plain mul+add: the generic x86-64 target has no FMA instruction, so
  // the compiler cannot contract the accumulate loop.
  return {&kernel_generic<4, 8, false>, &kernel_generic<4, 8, false>,
          "scalar-4x8", false, 4, 8, 0};
}

MicroKernel avx2_micro_kernel() {
  MCMM_REQUIRE(simd_kernel_available(),
               "avx2_micro_kernel: " + simd_unavailable_reason());
#if MCMM_SIMD_X86
  return {&kernel_avx2_4x8, &kernel_avx2_4x8_stream,
          "avx2-fma-4x8", true, 4, 8, 32};
#else
  return {};  // unreachable: the MCMM_REQUIRE above always throws here
#endif
}

std::vector<MicroKernel> avx512_micro_kernels() {
  MCMM_REQUIRE(avx512_kernel_available(),
               "avx512_micro_kernels: " + avx512_unavailable_reason());
#if MCMM_AVX512_X86
  return {{&kernel_avx512_8x16, &kernel_avx512_8x16_stream,
           "avx512-fma-8x16", true, 8, 16, 64},
          {&kernel_avx512_4x24, &kernel_avx512_4x24_stream,
           "avx512-fma-4x24", true, 4, 24, 64}};
#else
  return {};  // unreachable: the MCMM_REQUIRE above always throws here
#endif
}

MicroKernel simd_micro_kernel() {
  if (avx512_kernel_available()) return avx512_micro_kernels().front();
  return avx2_micro_kernel();  // throws when no SIMD kernel can run
}

MicroKernel best_micro_kernel() {
  if (avx512_kernel_available()) return avx512_micro_kernels().front();
  return simd_kernel_available() ? avx2_micro_kernel() : scalar_micro_kernel();
}

std::vector<MicroKernel> all_micro_kernels() {
  std::vector<MicroKernel> out;
  out.push_back(scalar_micro_kernel());
  if (simd_kernel_available()) out.push_back(avx2_micro_kernel());
  if (avx512_kernel_available()) {
    for (const MicroKernel& k : avx512_micro_kernels()) out.push_back(k);
  }
  return out;
}

MicroKernel micro_kernel_by_name(const std::string& name) {
  for (const MicroKernel& k : all_micro_kernels()) {
    if (name == k.name) return k;
  }
  // The portable mirrors are runnable everywhere, by construction.
  for (const MicroKernel& k :
       {mirror_fma_4x8(), mirror_fma_8x16(), mirror_fma_4x24()}) {
    if (name == k.name) return k;
  }
  throw Error("micro_kernel_by_name: \"" + name +
              "\" is unknown or cannot run on this host");
}

MicroKernel scalar_mirror(const MicroKernel& k) {
  if (!k.fused) return scalar_micro_kernel();
  if (k.mr == 4 && k.nr == 8) return mirror_fma_4x8();
  if (k.mr == 8 && k.nr == 16) return mirror_fma_8x16();
  if (k.mr == 4 && k.nr == 24) return mirror_fma_4x24();
  throw Error(std::string("scalar_mirror: no mirror for kernel ") + k.name);
}

void stream_fence() {
#if MCMM_SIMD_X86
  _mm_sfence();
#endif
}

}  // namespace mcmm
