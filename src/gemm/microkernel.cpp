#include "gemm/microkernel.hpp"

#include "util/error.hpp"

// The SIMD path needs: the CMake switch (MCMM_SIMD=ON defines
// MCMM_SIMD_ENABLED=1), an x86-64 target, and a GNU-compatible compiler
// for the per-function target attribute and __builtin_cpu_supports.
#if defined(MCMM_SIMD_ENABLED) && MCMM_SIMD_ENABLED && \
    (defined(__x86_64__) || defined(__amd64__)) &&     \
    (defined(__GNUC__) || defined(__clang__))
#define MCMM_SIMD_X86 1
#include <immintrin.h>
#else
#define MCMM_SIMD_X86 0
#endif

namespace mcmm {

namespace {

void kernel_scalar_4x8(std::int64_t kc, const double* a, const double* b,
                       double* c, std::int64_t ldc) {
  // Accumulate the whole tile in locals, then add once to C: one store per
  // element and a per-element summation order (k ascending) that does not
  // depend on how the caller decomposed the matrix.
  double acc[kMicroM][kMicroN] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const double* ak = a + k * kMicroM;
    const double* bk = b + k * kMicroN;
    for (std::int64_t r = 0; r < kMicroM; ++r) {
      const double ar = ak[r];
      for (std::int64_t j = 0; j < kMicroN; ++j) {
        acc[r][j] += ar * bk[j];
      }
    }
  }
  for (std::int64_t r = 0; r < kMicroM; ++r) {
    double* crow = c + r * ldc;
    for (std::int64_t j = 0; j < kMicroN; ++j) crow[j] += acc[r][j];
  }
}

#if MCMM_SIMD_X86
__attribute__((target("avx2,fma"))) void kernel_avx2_4x8(std::int64_t kc,
                                                         const double* a,
                                                         const double* b,
                                                         double* c,
                                                         std::int64_t ldc) {
  // 4 rows x 8 columns = 8 ymm accumulators; each k step broadcasts four
  // A coefficients against two aligned B vectors (packed panels are
  // 64-byte aligned and NR == 8 doubles keeps every B row on a boundary).
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::int64_t k = 0; k < kc; ++k) {
    const __m256d b0 = _mm256_load_pd(b + k * kMicroN);
    const __m256d b1 = _mm256_load_pd(b + k * kMicroN + 4);
    const double* ak = a + k * kMicroM;
    __m256d ar = _mm256_broadcast_sd(ak + 0);
    c00 = _mm256_fmadd_pd(ar, b0, c00);
    c01 = _mm256_fmadd_pd(ar, b1, c01);
    ar = _mm256_broadcast_sd(ak + 1);
    c10 = _mm256_fmadd_pd(ar, b0, c10);
    c11 = _mm256_fmadd_pd(ar, b1, c11);
    ar = _mm256_broadcast_sd(ak + 2);
    c20 = _mm256_fmadd_pd(ar, b0, c20);
    c21 = _mm256_fmadd_pd(ar, b1, c21);
    ar = _mm256_broadcast_sd(ak + 3);
    c30 = _mm256_fmadd_pd(ar, b0, c30);
    c31 = _mm256_fmadd_pd(ar, b1, c31);
  }
  // C is the caller's matrix (or an aligned scratch tile): unaligned ops.
  double* c0 = c;
  double* c1 = c + ldc;
  double* c2 = c + 2 * ldc;
  double* c3 = c + 3 * ldc;
  _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), c00));
  _mm256_storeu_pd(c0 + 4, _mm256_add_pd(_mm256_loadu_pd(c0 + 4), c01));
  _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), c10));
  _mm256_storeu_pd(c1 + 4, _mm256_add_pd(_mm256_loadu_pd(c1 + 4), c11));
  _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), c20));
  _mm256_storeu_pd(c2 + 4, _mm256_add_pd(_mm256_loadu_pd(c2 + 4), c21));
  _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), c30));
  _mm256_storeu_pd(c3 + 4, _mm256_add_pd(_mm256_loadu_pd(c3 + 4), c31));
}
#endif  // MCMM_SIMD_X86

}  // namespace

bool simd_kernel_available() {
#if MCMM_SIMD_X86
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

std::string simd_unavailable_reason() {
#if MCMM_SIMD_X86
  if (simd_kernel_available()) return "";
  return "host CPU lacks AVX2+FMA";
#else
  return "compiled without the SIMD kernel (MCMM_SIMD=OFF or non-x86-64)";
#endif
}

MicroKernel scalar_micro_kernel() {
  // Plain mul+add: the generic x86-64 target has no FMA instruction, so
  // the compiler cannot contract the accumulate loop.
  return {&kernel_scalar_4x8, "scalar-4x8", false};
}

MicroKernel simd_micro_kernel() {
  MCMM_REQUIRE(simd_kernel_available(),
               "simd_micro_kernel: " + simd_unavailable_reason());
#if MCMM_SIMD_X86
  return {&kernel_avx2_4x8, "avx2-fma-4x8", true};
#else
  return {};  // unreachable: the MCMM_REQUIRE above always throws here
#endif
}

MicroKernel best_micro_kernel() {
  return simd_kernel_available() ? simd_micro_kernel() : scalar_micro_kernel();
}

}  // namespace mcmm
