#include "gemm/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mcmm {

Matrix::Matrix(std::int64_t rows, std::int64_t cols, double fill)
    : rows_(rows), cols_(cols) {
  MCMM_REQUIRE(rows >= 0 && cols >= 0, "Matrix: negative dimensions");
  data_.assign(static_cast<std::size_t>(rows * cols), fill);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::fill_random(std::uint64_t seed) {
  // SplitMix64: tiny, seedable, statistically fine for test data.
  std::uint64_t state = seed;
  auto next = [&state]() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  for (double& v : data_) {
    // Map the top 53 bits to [-1, 1).
    v = static_cast<double>(next() >> 11) * (2.0 / 9007199254740992.0) - 1.0;
  }
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  MCMM_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
               "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

}  // namespace mcmm
