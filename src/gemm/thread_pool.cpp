#include "gemm/thread_pool.hpp"

#include <atomic>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {

ThreadPool::ThreadPool(int workers) {
  MCMM_REQUIRE(workers >= 1, "ThreadPool: need at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

int ThreadPool::pin_workers(const std::vector<int>& cpus) {
  pinned_ = 0;
  if (cpus.empty()) return 0;
#ifdef __linux__
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const int cpu = cpus[i % cpus.size()];
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    if (pthread_setaffinity_np(threads_[i].native_handle(), sizeof(set),
                               &set) == 0) {
      ++pinned_;
    }
  }
#endif
  return pinned_;
}

void ThreadPool::run_on_all(const std::function<void(int)>& job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    MCMM_ASSERT(remaining_ == 0, "ThreadPool: overlapping run_on_all");
    job_ = &job;
    remaining_ = workers();
    first_error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::atomic<std::size_t> next{0};
  run_on_all([&](int) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < tasks.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      tasks[i]();
    }
  });
}

void ThreadPool::parallel_for(
    std::int64_t total,
    const std::function<void(int, std::int64_t, std::int64_t)>& body) {
  run_on_all([&](int core) {
    const Range r = chunk_range(total, workers(), core);
    if (!r.empty()) body(core, r.lo, r.hi);
  });
}

}  // namespace mcmm
