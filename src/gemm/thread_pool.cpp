#include "gemm/thread_pool.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {

ThreadPool::ThreadPool(int workers) {
  MCMM_REQUIRE(workers >= 1, "ThreadPool: need at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back(sync::thread([this, i] { worker_loop(i); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      sync::unique_lock lock(mutex_);
      while (!stop_ && generation_ == seen) cv_work_.wait(lock);
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(id);
    } catch (...) {
      sync::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      sync::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

int ThreadPool::pin_workers(const std::vector<int>& cpus) {
  pinned_ = 0;
  if (cpus.empty()) return 0;
#ifdef __linux__
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const int cpu = cpus[i % cpus.size()];
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    if (pthread_setaffinity_np(threads_[i].native_handle(), sizeof(set),
                               &set) == 0) {
      ++pinned_;
    }
  }
#endif
  return pinned_;
}

void ThreadPool::run_on_all(const std::function<void(int)>& job) {
  // With a tracer attached, wrap the job so every worker's whole region
  // execution lands as one kWork span (recorded even when the job throws,
  // so barrier attribution stays consistent), and bracket the dispatch as
  // a region.  The pool mutex below publishes begin_region's writes to the
  // workers and the workers' ring writes back to end_region.
  ExecutionTracer* const tracer = tracer_;
  std::function<void(int)> traced;
  const std::function<void(int)>* to_run = &job;
  if (tracer != nullptr) {
    tracer->begin_region(trace_label_);
    traced = [tracer, &job](int core) {
      const std::int64_t t0 = tracer->now_ns();
      try {
        job(core);
      } catch (...) {
        tracer->record(core, TracePhase::kWork, t0, tracer->now_ns());
        throw;
      }
      tracer->record(core, TracePhase::kWork, t0, tracer->now_ns());
    };
    to_run = &traced;
  }
  {
    sync::lock_guard lock(mutex_);
    MCMM_ASSERT(remaining_ == 0, "ThreadPool: overlapping run_on_all");
    job_ = to_run;
    remaining_ = workers();
    first_error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();
  std::exception_ptr err;
  {
    sync::unique_lock lock(mutex_);
    while (remaining_ != 0) cv_done_.wait(lock);
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  // The lock acquisition above ordered every worker's ring write before
  // this read, so reading the rings lock-free here stays race-free.
  if (tracer != nullptr) tracer->end_region();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  sync::atomic<std::size_t> next{0};
  // First-error drain stop: once any task throws, the other workers stop
  // claiming — a failed batch surfaces its error promptly instead of
  // burning through the remaining tasks first.
  sync::atomic<bool> abort{false};
  run_on_all([&](int core) {
    ExecutionTracer* const tracer = tracer_;
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) break;
      const std::int64_t t0 = tracer != nullptr ? tracer->now_ns() : 0;
      try {
        tasks[i]();
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        if (tracer != nullptr) {
          tracer->record(core, TracePhase::kTask, t0, tracer->now_ns());
        }
        throw;
      }
      if (tracer != nullptr) {
        tracer->record(core, TracePhase::kTask, t0, tracer->now_ns());
      }
    }
  });
}

void ThreadPool::parallel_for(
    std::int64_t total,
    const std::function<void(int, std::int64_t, std::int64_t)>& body) {
  run_on_all([&](int core) {
    const Range r = chunk_range(total, workers(), core);
    if (!r.empty()) body(core, r.lo, r.hi);
  });
}

}  // namespace mcmm
