#include "gemm/parallel_gemm.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/params.hpp"
#include "util/math.hpp"
#include "util/warnings.hpp"

namespace mcmm {

namespace {

/// Block-grid extents of the product (ceil-divided by q).
struct BlockGrid {
  std::int64_t mb, nb, zb, q;
  std::int64_t m, n, z;
};

BlockGrid make_grid(const Matrix& c, const Matrix& a, const Matrix& b,
                    std::int64_t q) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "parallel_gemm: block size q must be >= 1");
  BlockGrid g;
  g.m = c.rows();
  g.n = c.cols();
  g.z = a.cols();
  g.q = q;
  g.mb = ceil_div(g.m, q);
  g.nb = ceil_div(g.n, q);
  g.zb = ceil_div(g.z, q);
  return g;
}

/// Execute the block product C[bi,bj] += A[bi,bk] * B[bk,bj] on real data
/// through `core`'s packing state in the kernel context.
void block_op(KernelContext& ctx, int core, Matrix& c, const Matrix& a,
              const Matrix& b, const BlockGrid& g, std::int64_t bi,
              std::int64_t bj, std::int64_t bk) {
  const std::int64_t i0 = bi * g.q, j0 = bj * g.q, k0 = bk * g.q;
  ctx.block_op(core, c, a, b, i0, j0, k0, std::min(g.q, g.m - i0),
               std::min(g.q, g.n - j0), std::min(g.q, g.z - k0));
}

/// Shared entry guard: the context must cover the pool, and its packed-
/// panel memo (keyed on block offsets only) must not leak across products
/// on different matrices.
void check_context(const ThreadPool& pool, KernelContext& ctx) {
  MCMM_REQUIRE(ctx.workers() >= pool.workers(),
               "parallel_gemm: KernelContext has fewer workers than the pool");
  ctx.invalidate();
}

}  // namespace

Tiling tiling_for_host(int p, std::int64_t shared_cache_bytes,
                       std::int64_t private_cache_bytes, std::int64_t q) {
  MCMM_REQUIRE(p >= 1, "tiling_for_host: core count p must be >= 1 (got " +
                           std::to_string(p) + ")");
  MCMM_REQUIRE(q >= 1, "tiling_for_host: block side q must be >= 1 (got " +
                           std::to_string(q) + ")");
  MCMM_REQUIRE(shared_cache_bytes > 0,
               "tiling_for_host: shared cache size must be positive (got " +
                   std::to_string(shared_cache_bytes) + " bytes)");
  MCMM_REQUIRE(private_cache_bytes > 0,
               "tiling_for_host: private cache size must be positive (got " +
                   std::to_string(private_cache_bytes) + " bytes)");
  const std::int64_t block_bytes = q * q * 8;
  MachineConfig cfg;
  cfg.p = p;
  cfg.cs = std::max<std::int64_t>(shared_cache_bytes / block_bytes, 3);
  cfg.cd = std::max<std::int64_t>(private_cache_bytes / block_bytes, 3);
  const std::int64_t inclusive_cs = static_cast<std::int64_t>(p) * cfg.cd;
  if (cfg.cs < inclusive_cs) {
    // The model assumes an inclusive hierarchy (CS >= p * CD); feeding it a
    // smaller physical CS would make the shared-cache parameters infeasible,
    // so clamp — but never silently, because the derived lambda then assumes
    // more shared cache than the machine has.
    // Sized so the worst-case expansion fits: g++ 12's -Wformat-truncation
    // rejects 256 for the five %lld/%d fields at their widest.
    char msg[384];
    std::snprintf(msg, sizeof(msg),
                  "tiling_for_host: warning: shared cache holds %lld blocks "
                  "but p*CD = %d*%lld = %lld; clamping CS to %lld (inclusive-"
                  "hierarchy model) — derived lambda assumes more shared "
                  "cache than is physical",
                  static_cast<long long>(cfg.cs), p,
                  static_cast<long long>(cfg.cd),
                  static_cast<long long>(inclusive_cs),
                  static_cast<long long>(inclusive_cs));
    emit_warning(msg);
    cfg.cs = inclusive_cs;
  }
  // Second feasibility floor: the Tradeoff solver must stage at least its
  // minimal tile, grain^2 + 2*grain <= CS with grain = mu * lcm(r, c).
  // The inclusive clamp does not imply this (many cores with modest
  // private caches push grain^2 past p*CD), and a multi-tenant share can
  // land below it even on hosts where the full cache is fine — so raise
  // CS to the staging floor, again loudly rather than silently.
  const std::int64_t host_mu = max_reuse_parameter(cfg.cd);
  const Grid host_grid = balanced_grid(p);
  const std::int64_t host_grain = host_mu * lcm(host_grid.r, host_grid.c);
  const std::int64_t staging_cs = host_grain * host_grain + 2 * host_grain;
  if (cfg.cs < staging_cs) {
    char msg[384];
    std::snprintf(msg, sizeof(msg),
                  "tiling_for_host: warning: shared cache holds %lld blocks "
                  "but the tradeoff tile needs grain^2 + 2*grain = %lld "
                  "(grain = %lld); clamping CS to %lld — the derived "
                  "alpha/beta assume more shared cache than is physical",
                  static_cast<long long>(cfg.cs),
                  static_cast<long long>(staging_cs),
                  static_cast<long long>(host_grain),
                  static_cast<long long>(staging_cs));
    emit_warning(msg);
    cfg.cs = staging_cs;
  }
  Tiling t;
  t.q = q;
  t.lambda = shared_opt_params(cfg.cs).lambda;
  t.mu = max_reuse_parameter(cfg.cd);
  const TradeoffParams tp = tradeoff_params(cfg);
  t.alpha = tp.alpha;
  t.beta = tp.beta;
  return t;
}

void parallel_gemm_shared_opt(Matrix& c, const Matrix& a, const Matrix& b,
                              const Tiling& t, ThreadPool& pool) {
  KernelContext ctx(pool.workers());
  parallel_gemm_shared_opt(c, a, b, t, pool, ctx);
}

void parallel_gemm_shared_opt(Matrix& c, const Matrix& a, const Matrix& b,
                              const Tiling& t, ThreadPool& pool,
                              KernelContext& ctx) {
  const BlockGrid g = make_grid(c, a, b, t.q);
  MCMM_REQUIRE(t.lambda >= 1, "parallel_gemm_shared_opt: lambda must be >= 1");
  check_context(pool, ctx);
  const int p = pool.workers();
  pool.set_trace_label("shared-opt");
  pool.run_on_all([&](int core) {
    // Algorithm 1 loop order; each core owns a contiguous column chunk of
    // every lambda x lambda tile, so writes never collide.
    for (std::int64_t i0 = 0; i0 < g.mb; i0 += t.lambda) {
      const std::int64_t ti = std::min(t.lambda, g.mb - i0);
      for (std::int64_t j0 = 0; j0 < g.nb; j0 += t.lambda) {
        const std::int64_t tj = std::min(t.lambda, g.nb - j0);
        const Range mine = chunk_range(tj, p, core);
        if (mine.empty()) continue;
        for (std::int64_t k = 0; k < g.zb; ++k) {
          for (std::int64_t ii = 0; ii < ti; ++ii) {
            for (std::int64_t jj = mine.lo; jj < mine.hi; ++jj) {
              block_op(ctx, core, c, a, b, g, i0 + ii, j0 + jj, k);
            }
          }
        }
      }
    }
  });
}

void parallel_gemm_distributed_opt(Matrix& c, const Matrix& a,
                                   const Matrix& b, const Tiling& t,
                                   ThreadPool& pool) {
  KernelContext ctx(pool.workers());
  parallel_gemm_distributed_opt(c, a, b, t, pool, ctx);
}

void parallel_gemm_distributed_opt(Matrix& c, const Matrix& a,
                                   const Matrix& b, const Tiling& t,
                                   ThreadPool& pool, KernelContext& ctx) {
  const BlockGrid g = make_grid(c, a, b, t.q);
  MCMM_REQUIRE(t.mu >= 1, "parallel_gemm_distributed_opt: mu must be >= 1");
  check_context(pool, ctx);
  const Grid grid = balanced_grid(pool.workers());
  const std::int64_t tile_r = grid.r * t.mu;
  const std::int64_t tile_c = grid.c * t.mu;
  pool.set_trace_label("distributed-opt");
  pool.run_on_all([&](int core) {
    const std::int64_t ci = core % grid.r;
    const std::int64_t cj = core / grid.r;
    // Algorithm 2: core (ci,cj) owns the mu x mu sub-block of every tile.
    for (std::int64_t i0 = 0; i0 < g.mb; i0 += tile_r) {
      const std::int64_t ti = std::min(tile_r, g.mb - i0);
      for (std::int64_t j0 = 0; j0 < g.nb; j0 += tile_c) {
        const std::int64_t tj = std::min(tile_c, g.nb - j0);
        const Range rows{std::min(ci * t.mu, ti), std::min((ci + 1) * t.mu, ti)};
        const Range cols{std::min(cj * t.mu, tj), std::min((cj + 1) * t.mu, tj)};
        if (rows.empty() || cols.empty()) continue;
        for (std::int64_t k = 0; k < g.zb; ++k) {
          for (std::int64_t ii = rows.lo; ii < rows.hi; ++ii) {
            for (std::int64_t jj = cols.lo; jj < cols.hi; ++jj) {
              block_op(ctx, core, c, a, b, g, i0 + ii, j0 + jj, k);
            }
          }
        }
      }
    }
  });
}

void parallel_gemm_tradeoff(Matrix& c, const Matrix& a, const Matrix& b,
                            const Tiling& t, ThreadPool& pool) {
  KernelContext ctx(pool.workers());
  parallel_gemm_tradeoff(c, a, b, t, pool, ctx);
}

void parallel_gemm_tradeoff(Matrix& c, const Matrix& a, const Matrix& b,
                            const Tiling& t, ThreadPool& pool,
                            KernelContext& ctx) {
  const BlockGrid g = make_grid(c, a, b, t.q);
  MCMM_REQUIRE(t.alpha >= 1 && t.beta >= 1 && t.mu >= 1,
               "parallel_gemm_tradeoff: bad tiling");
  check_context(pool, ctx);
  const Grid grid = balanced_grid(pool.workers());
  // Ceiling split: the r x c regions must cover the alpha x alpha tile
  // even when the grid does not divide alpha evenly.
  const std::int64_t side_r = ceil_div(t.alpha, grid.r);
  const std::int64_t side_c = ceil_div(t.alpha, grid.c);
  pool.set_trace_label("tradeoff");
  pool.run_on_all([&](int core) {
    const std::int64_t ci = core % grid.r;
    const std::int64_t cj = core / grid.r;
    // Algorithm 3: alpha-tiles of C, beta-deep k-panels, mu x mu sub-blocks.
    for (std::int64_t i0 = 0; i0 < g.mb; i0 += t.alpha) {
      const std::int64_t ti = std::min(t.alpha, g.mb - i0);
      for (std::int64_t j0 = 0; j0 < g.nb; j0 += t.alpha) {
        const std::int64_t tj = std::min(t.alpha, g.nb - j0);
        const Range rows{std::min(ci * side_r, ti),
                         std::min((ci + 1) * side_r, ti)};
        const Range cols{std::min(cj * side_c, tj),
                         std::min((cj + 1) * side_c, tj)};
        if (rows.empty() || cols.empty()) continue;
        for (std::int64_t k0 = 0; k0 < g.zb; k0 += t.beta) {
          const std::int64_t kb = std::min(t.beta, g.zb - k0);
          for (std::int64_t si = rows.lo; si < rows.hi; si += t.mu) {
            const std::int64_t se_i = std::min(si + t.mu, rows.hi);
            for (std::int64_t sj = cols.lo; sj < cols.hi; sj += t.mu) {
              const std::int64_t se_j = std::min(sj + t.mu, cols.hi);
              for (std::int64_t kk = 0; kk < kb; ++kk) {
                for (std::int64_t ii = si; ii < se_i; ++ii) {
                  for (std::int64_t jj = sj; jj < se_j; ++jj) {
                    block_op(ctx, core, c, a, b, g, i0 + ii, j0 + jj, k0 + kk);
                  }
                }
              }
            }
          }
        }
      }
    }
  });
}

void parallel_gemm_outer_product(Matrix& c, const Matrix& a, const Matrix& b,
                                 const Tiling& t, ThreadPool& pool) {
  KernelContext ctx(pool.workers());
  parallel_gemm_outer_product(c, a, b, t, pool, ctx);
}

void parallel_gemm_outer_product(Matrix& c, const Matrix& a, const Matrix& b,
                                 const Tiling& t, ThreadPool& pool,
                                 KernelContext& ctx) {
  const BlockGrid g = make_grid(c, a, b, t.q);
  check_context(pool, ctx);
  const Grid grid = balanced_grid(pool.workers());
  pool.set_trace_label("outer-product");
  pool.run_on_all([&](int core) {
    const Range rows = chunk_range(g.mb, static_cast<int>(grid.r),
                                   static_cast<int>(core % grid.r));
    const Range cols = chunk_range(g.nb, static_cast<int>(grid.c),
                                   static_cast<int>(core / grid.r));
    for (std::int64_t k = 0; k < g.zb; ++k) {
      for (std::int64_t i = rows.lo; i < rows.hi; ++i) {
        for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
          block_op(ctx, core, c, a, b, g, i, j, k);
        }
      }
    }
  });
}

}  // namespace mcmm
