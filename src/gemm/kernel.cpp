#include "gemm/kernel.hpp"

#include <algorithm>
#include <vector>

namespace mcmm {

void check_gemm_shapes(const Matrix& c, const Matrix& a, const Matrix& b) {
  MCMM_REQUIRE(a.cols() == b.rows(),
               "gemm: inner dimensions differ (A cols != B rows)");
  MCMM_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: C has the wrong shape");
}

void gemm_reference(Matrix& c, const Matrix& a, const Matrix& b) {
  check_gemm_shapes(c, a, b);
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i = 0; i < m; ++i) {
    double* crow = c.row_ptr(i);
    const double* arow = a.row_ptr(i);
    for (std::int64_t k = 0; k < z; ++k) {
      const double aik = arow[k];
      const double* brow = b.row_ptr(k);
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void block_fma(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t i0,
               std::int64_t j0, std::int64_t k0, std::int64_t mb,
               std::int64_t nb, std::int64_t kb) {
  for (std::int64_t i = 0; i < mb; ++i) {
    double* crow = c.row_ptr(i0 + i) + j0;
    const double* arow = a.row_ptr(i0 + i) + k0;
    for (std::int64_t k = 0; k < kb; ++k) {
      const double aik = arow[k];
      const double* brow = b.row_ptr(k0 + k) + j0;
      for (std::int64_t j = 0; j < nb; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_blocked(Matrix& c, const Matrix& a, const Matrix& b,
                  std::int64_t q) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "gemm_blocked: block size must be >= 1");
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i0 = 0; i0 < m; i0 += q) {
    const std::int64_t mb = std::min(q, m - i0);
    for (std::int64_t k0 = 0; k0 < z; k0 += q) {
      const std::int64_t kb = std::min(q, z - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += q) {
        const std::int64_t nb = std::min(q, n - j0);
        block_fma(c, a, b, i0, j0, k0, mb, nb, kb);
      }
    }
  }
}

void gemm_blocked_packed(Matrix& c, const Matrix& a, const Matrix& b,
                         std::int64_t q) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "gemm_blocked_packed: block size must be >= 1");
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  std::vector<double> packed(static_cast<std::size_t>(q * q));

  for (std::int64_t k0 = 0; k0 < z; k0 += q) {
    const std::int64_t kb = std::min(q, z - k0);
    for (std::int64_t j0 = 0; j0 < n; j0 += q) {
      const std::int64_t nb = std::min(q, n - j0);
      // Pack B[k0.., j0..] transposed: packed[j*kb + k] = B[k0+k][j0+j],
      // so each output column's inner product reads contiguous memory.
      for (std::int64_t k = 0; k < kb; ++k) {
        const double* brow = b.row_ptr(k0 + k) + j0;
        for (std::int64_t j = 0; j < nb; ++j) {
          packed[static_cast<std::size_t>(j * kb + k)] = brow[j];
        }
      }
      for (std::int64_t i = 0; i < m; ++i) {
        const double* arow = a.row_ptr(i) + k0;
        double* crow = c.row_ptr(i) + j0;
        std::int64_t j = 0;
        // Four independent dot products at a time for ILP.
        for (; j + 4 <= nb; j += 4) {
          const double* b0 = packed.data() + (j + 0) * kb;
          const double* b1 = packed.data() + (j + 1) * kb;
          const double* b2 = packed.data() + (j + 2) * kb;
          const double* b3 = packed.data() + (j + 3) * kb;
          double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
          for (std::int64_t k = 0; k < kb; ++k) {
            const double av = arow[k];
            s0 += av * b0[k];
            s1 += av * b1[k];
            s2 += av * b2[k];
            s3 += av * b3[k];
          }
          crow[j + 0] += s0;
          crow[j + 1] += s1;
          crow[j + 2] += s2;
          crow[j + 3] += s3;
        }
        for (; j < nb; ++j) {
          const double* bj = packed.data() + j * kb;
          double s = 0;
          for (std::int64_t k = 0; k < kb; ++k) s += arow[k] * bj[k];
          crow[j] += s;
        }
      }
    }
  }
}

}  // namespace mcmm
