#include "gemm/kernel.hpp"

#include <algorithm>

#include <cstdint>

#include "gemm/pack.hpp"
#include "obs/tracer.hpp"
#include "util/math.hpp"
#include "util/warnings.hpp"

namespace mcmm {

void check_gemm_shapes(const Matrix& c, const Matrix& a, const Matrix& b) {
  MCMM_REQUIRE(a.cols() == b.rows(),
               "gemm: inner dimensions differ (A cols != B rows)");
  MCMM_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: C has the wrong shape");
}

void gemm_reference(Matrix& c, const Matrix& a, const Matrix& b) {
  check_gemm_shapes(c, a, b);
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i = 0; i < m; ++i) {
    double* crow = c.row_ptr(i);
    const double* arow = a.row_ptr(i);
    for (std::int64_t k = 0; k < z; ++k) {
      const double aik = arow[k];
      const double* brow = b.row_ptr(k);
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void block_fma(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t i0,
               std::int64_t j0, std::int64_t k0, std::int64_t mb,
               std::int64_t nb, std::int64_t kb) {
  for (std::int64_t i = 0; i < mb; ++i) {
    double* crow = c.row_ptr(i0 + i) + j0;
    const double* arow = a.row_ptr(i0 + i) + k0;
    for (std::int64_t k = 0; k < kb; ++k) {
      const double aik = arow[k];
      const double* brow = b.row_ptr(k0 + k) + j0;
      for (std::int64_t j = 0; j < nb; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_blocked(Matrix& c, const Matrix& a, const Matrix& b,
                  std::int64_t q) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "gemm_blocked: block size must be >= 1");
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i0 = 0; i0 < m; i0 += q) {
    const std::int64_t mb = std::min(q, m - i0);
    for (std::int64_t k0 = 0; k0 < z; k0 += q) {
      const std::int64_t kb = std::min(q, z - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += q) {
        const std::int64_t nb = std::min(q, n - j0);
        block_fma(c, a, b, i0, j0, k0, mb, nb, kb);
      }
    }
  }
}

void gemm_blocked_packed(Matrix& c, const Matrix& a, const Matrix& b,
                         std::int64_t q) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "gemm_blocked_packed: block size must be >= 1");
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  // One buffer for the largest k-panel (a full q x n strip of B),
  // allocated once and reused by every panel.
  AlignedVector packed(
      static_cast<std::size_t>(std::max<std::int64_t>(std::min(q, z) * n, 1)));

  for (std::int64_t k0 = 0; k0 < z; k0 += q) {
    const std::int64_t kb = std::min(q, z - k0);
    // Pack the whole B[k0.., :] strip transposed: packed[j*kb + k] =
    // B[k0+k][j].  Hoisted out of the (i, j0) loops, B is traversed once
    // per k-panel instead of once per (k0, j0) tile.
    for (std::int64_t k = 0; k < kb; ++k) {
      const double* brow = b.row_ptr(k0 + k);
      for (std::int64_t j = 0; j < n; ++j) {
        packed[static_cast<std::size_t>(j * kb + k)] = brow[j];
      }
    }
    for (std::int64_t i = 0; i < m; ++i) {
      const double* arow = a.row_ptr(i) + k0;
      double* crow = c.row_ptr(i);
      std::int64_t j = 0;
      // Four independent dot products at a time for ILP.
      for (; j + 4 <= n; j += 4) {
        const double* b0 = packed.data() + (j + 0) * kb;
        const double* b1 = packed.data() + (j + 1) * kb;
        const double* b2 = packed.data() + (j + 2) * kb;
        const double* b3 = packed.data() + (j + 3) * kb;
        double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::int64_t k = 0; k < kb; ++k) {
          const double av = arow[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        crow[j + 0] += s0;
        crow[j + 1] += s1;
        crow[j + 2] += s2;
        crow[j + 3] += s3;
      }
      for (; j < n; ++j) {
        const double* bj = packed.data() + j * kb;
        double s = 0;
        for (std::int64_t k = 0; k < kb; ++k) s += arow[k] * bj[k];
        crow[j] += s;
      }
    }
  }
}

KernelPath parse_kernel_path(const std::string& name) {
  if (name == "auto") return KernelPath::kAuto;
  if (name == "scalar") return KernelPath::kScalar;
  if (name == "simd") return KernelPath::kSimd;
  if (name == "avx2") return KernelPath::kAvx2;
  if (name == "avx512") return KernelPath::kAvx512;
  throw Error("unknown kernel path: " + name +
              " (auto|scalar|simd|avx2|avx512)");
}

KernelContext::KernelContext(int workers, KernelPath path) : path_(path) {
  MCMM_REQUIRE(workers >= 1, "KernelContext: need at least one worker");
  switch (path) {
    case KernelPath::kScalar:
      kernel_ = scalar_micro_kernel();
      break;
    case KernelPath::kSimd:
      kernel_ = simd_micro_kernel();  // throws when unavailable
      break;
    case KernelPath::kAvx2:
      kernel_ = avx2_micro_kernel();  // throws when unavailable
      break;
    case KernelPath::kAvx512:
      kernel_ = avx512_micro_kernels().front();  // throws when unavailable
      break;
    case KernelPath::kAuto:
      kernel_ = best_micro_kernel();
      break;
  }
  name_ = kernel_.name;
  states_.resize(static_cast<std::size_t>(workers));
}

KernelContext::KernelContext(int workers, const KernelTuning& tuning)
    : path_(KernelPath::kAuto) {
  MCMM_REQUIRE(workers >= 1, "KernelContext: need at least one worker");
  if (tuning.tuned && !tuning.kernel.empty()) {
    try {
      kernel_ = micro_kernel_by_name(tuning.kernel);
    } catch (const Error&) {
      // A profile tuned on another machine: keep running with the best
      // local kernel rather than failing the whole tool.
      emit_warning("KernelContext: tuned kernel \"" + tuning.kernel +
                   "\" cannot run on this host (" +
                   (avx512_unavailable_reason().empty()
                        ? simd_unavailable_reason()
                        : avx512_unavailable_reason()) +
                   "); falling back to auto dispatch");
      kernel_ = best_micro_kernel();
    }
    knobs_.prefetch_a = tuning.prefetch_a;
    knobs_.prefetch_b = tuning.prefetch_b;
    pack_prefetch_ = tuning.pack_prefetch;
    stream_stores_ = tuning.stream_stores;
    kc_ = tuning.kc;
  } else {
    kernel_ = best_micro_kernel();
  }
  name_ = kernel_.name;
  states_.resize(static_cast<std::size_t>(workers));
}

void KernelContext::set_kernel(const MicroKernel& kernel) {
  MCMM_REQUIRE(kernel.fn != nullptr && kernel.mr >= 1 && kernel.nr >= 1,
               "KernelContext::set_kernel: malformed kernel");
  MCMM_REQUIRE(kernel.mr <= kMaxMicroM && kernel.nr <= kMaxMicroN,
               "KernelContext::set_kernel: tile exceeds kMaxMicroM/N");
  kernel_ = kernel;
  name_ = kernel_.name;
  // Stale panels cannot be served even without this: the memo keys carry
  // the pack stride.  Dropping them anyway frees the slots for the new
  // shape immediately.
  invalidate();
}

void KernelContext::set_kc(std::int64_t kc) {
  MCMM_REQUIRE(kc >= 0, "KernelContext::set_kc: depth must be >= 0");
  kc_ = kc;
  // Panels packed at the old split depth carry it in their keys, so they
  // could never be served anyway; drop them to free the slots.
  invalidate();
}

void KernelContext::invalidate() {
  for (WorkerState& st : states_) {
    st.a_key = PackKey{};
    for (BSlot& slot : st.b) slot.key = PackKey{};
  }
}

void KernelContext::invalidate_worker(int worker) {
  MCMM_REQUIRE(worker >= 0 && worker < workers(),
               "KernelContext::invalidate_worker: bad worker id");
  WorkerState& st = states_[static_cast<std::size_t>(worker)];
  st.a_key = PackKey{};
  for (BSlot& slot : st.b) slot.key = PackKey{};
}

const double* KernelContext::pack_a_memo(WorkerState& st, int worker,
                                         const Matrix& a, std::int64_t i0,
                                         std::int64_t k0, std::int64_t mb,
                                         std::int64_t kb, bool negate,
                                         std::int64_t& mark_ns) {
  // The schedules revisit A blocks along a row of C and B blocks across
  // their tile loops; memoising the packed panels per worker turns those
  // revisits into free reuse instead of repacking.  The whole kb-deep
  // block is packed as consecutive kc-deep sub-panels so a revisit hits
  // even when the tuned kc splits the k loop.
  const std::int64_t mr = kernel_.mr;
  const std::int64_t kc = kc_depth(kb);
  if (!st.a_key.matches(i0, k0, mb, kb, mr, kc, negate)) {
    const auto need = static_cast<std::size_t>(packed_a_size(mb, kb, mr));
    if (st.a_buf.size() < need) st.a_buf.resize(need);
    const std::int64_t strip_rows = ceil_div(mb, mr) * mr;
    for (std::int64_t ks = 0; ks < kb; ks += kc) {
      const std::int64_t kcb = std::min(kc, kb - ks);
      pack_a_panel(a, i0, k0 + ks, mb, kcb, mr,
                   st.a_buf.data() + strip_rows * ks, pack_prefetch_, negate);
      if (tracer_ != nullptr) {
        const std::int64_t t = tracer_->now_ns();
        tracer_->record(worker, TracePhase::kPackA, mark_ns, t);
        mark_ns = t;
      }
    }
    st.a_key = {i0, k0, mb, kb, mr, kc, negate};
  }
  return st.a_buf.data();
}

void KernelContext::micro_tiles(int worker, Matrix& c, const double* ap,
                                const double* bp, std::int64_t i0,
                                std::int64_t j0, std::int64_t mb,
                                std::int64_t nb, std::int64_t kb,
                                std::int64_t b_panel_kb, bool last_k_panel,
                                std::int64_t& mark_ns) {
  const std::int64_t ldc = c.cols();
  const std::int64_t mr = kernel_.mr, nr = kernel_.nr;
  // The NT path is legal only on the product's final accumulation into
  // this C block (streamed lines bypass the caches, so re-reading them on
  // the next k-panel would forfeit the win) and only for tiles whose rows
  // all meet the kernel's store alignment.  Row alignment is uniform when
  // the row stride is a multiple of the vector width, so one tile check
  // (base pointer + ldc) covers every row.
  const bool want_stream =
      stream_stores_ && last_k_panel && kernel_.stream_align > 0 &&
      (ldc * static_cast<std::int64_t>(sizeof(double))) %
              kernel_.stream_align ==
          0;
  bool streamed = false;
  for (std::int64_t jt = 0; jt < nb; jt += nr) {
    const std::int64_t nr_eff = std::min(nr, nb - jt);
    const double* bstrip = bp + (jt / nr) * (nr * b_panel_kb);
    for (std::int64_t it = 0; it < mb; it += mr) {
      const std::int64_t mr_eff = std::min(mr, mb - it);
      const double* astrip = ap + (it / mr) * (mr * kb);
      double* cptr = c.row_ptr(i0 + it) + j0 + jt;
      if (mr_eff == mr && nr_eff == nr) {
        if (want_stream &&
            reinterpret_cast<std::uintptr_t>(cptr) %
                    static_cast<std::uintptr_t>(kernel_.stream_align) ==
                0) {
          kernel_.stream_fn(kb, astrip, bstrip, cptr, ldc, knobs_);
          streamed = true;
        } else {
          kernel_.fn(kb, astrip, bstrip, cptr, ldc, knobs_);
        }
      } else {
        // Edge tile: run the full-size kernel into a scratch tile (the
        // packed panels are zero-padded), then add only the live corner.
        alignas(64) double tmp[kMaxMicroM * kMaxMicroN] = {};
        kernel_.fn(kb, astrip, bstrip, tmp, nr, knobs_);
        for (std::int64_t r = 0; r < mr_eff; ++r) {
          double* crow = cptr + r * ldc;
          const double* trow = tmp + r * nr;
          for (std::int64_t j = 0; j < nr_eff; ++j) crow[j] += trow[j];
        }
      }
    }
  }
  // Order the non-temporal stores before this block op completes: after
  // the fence the C lines are globally visible, so the pool barrier (or
  // any later reader) observes them exactly like regular stores.
  if (streamed) stream_fence();
  if (tracer_ != nullptr) {
    const std::int64_t t = tracer_->now_ns();
    tracer_->record(worker, TracePhase::kMicroKernel, mark_ns, t);
    mark_ns = t;
  }
}

void KernelContext::block_op_impl(int worker, Matrix& c, const Matrix& a,
                                  const Matrix& b, std::int64_t i0,
                                  std::int64_t j0, std::int64_t k0,
                                  std::int64_t mb, std::int64_t nb,
                                  std::int64_t kb, bool negate,
                                  bool may_stream) {
  MCMM_REQUIRE(worker >= 0 && worker < workers(),
               "KernelContext::block_op: bad worker id");
  if (mb <= 0 || nb <= 0 || kb <= 0) return;
  WorkerState& st = states_[static_cast<std::size_t>(worker)];

  // Phase spans chain off one running timestamp, so a fully instrumented
  // block op costs at most four clock reads per sub-panel (pack-A end
  // doubles as pack-B begin doubles as micro begin).
  std::int64_t mark_ns = tracer_ != nullptr ? tracer_->now_ns() : 0;

  const std::int64_t kc = kc_depth(kb);
  const double* ap = pack_a_memo(st, worker, a, i0, k0, mb, kb, negate,
                                 mark_ns);
  // Mix from the high bits: block offsets are multiples of q, so the low
  // bits of (j0, k0) carry no entropy.
  const std::uint64_t hash =
      static_cast<std::uint64_t>(j0) * 0x9E3779B97F4A7C15ull ^
      static_cast<std::uint64_t>(k0) * 0xC2B2AE3D27D4EB4Full;
  BSlot& slot = st.b[static_cast<std::size_t>(hash >> 32) % kBSlots];
  const std::int64_t nr = kernel_.nr;
  if (!slot.key.matches(k0, j0, kb, nb, nr, kc)) {
    const auto need = static_cast<std::size_t>(packed_b_size(kb, nb, nr));
    if (slot.buf.size() < need) slot.buf.resize(need);
    // Like the A memo: consecutive kc-deep sub-panels, each in the
    // standard NR-strided layout, so the sub-panel at k offset ks starts
    // at ceil(nb/nr)*nr*ks.
    const std::int64_t strip_cols = ceil_div(nb, nr) * nr;
    for (std::int64_t ks = 0; ks < kb; ks += kc) {
      const std::int64_t kcb = std::min(kc, kb - ks);
      pack_b_panel(b, k0 + ks, j0, kcb, nb, nr,
                   slot.buf.data() + strip_cols * ks, pack_prefetch_);
      if (tracer_ != nullptr) {
        const std::int64_t t = tracer_->now_ns();
        tracer_->record(worker, TracePhase::kPackB, mark_ns, t);
        mark_ns = t;
      }
    }
    slot.key = {k0, j0, kb, nb, nr, kc};
  }

  const std::int64_t a_strip_rows = ceil_div(mb, kernel_.mr) * kernel_.mr;
  const std::int64_t b_strip_cols = ceil_div(nb, nr) * nr;
  for (std::int64_t ks = 0; ks < kb; ks += kc) {
    const std::int64_t kcb = std::min(kc, kb - ks);
    const bool last = may_stream && k0 + ks + kcb == a.cols();
    micro_tiles(worker, c, ap + a_strip_rows * ks,
                slot.buf.data() + b_strip_cols * ks, i0, j0, mb, nb, kcb, kcb,
                last, mark_ns);
  }
}

void KernelContext::block_op_packed_b_impl(int worker, Matrix& c,
                                           const Matrix& a,
                                           const double* packed_b,
                                           std::int64_t i0, std::int64_t j0,
                                           std::int64_t k0, std::int64_t mb,
                                           std::int64_t nb, std::int64_t kb,
                                           bool negate, bool may_stream) {
  MCMM_REQUIRE(worker >= 0 && worker < workers(),
               "KernelContext::block_op_packed_b: bad worker id");
  if (mb <= 0 || nb <= 0 || kb <= 0) return;
  WorkerState& st = states_[static_cast<std::size_t>(worker)];

  std::int64_t mark_ns = tracer_ != nullptr ? tracer_->now_ns() : 0;
  const std::int64_t kc = kc_depth(kb);
  const double* ap = pack_a_memo(st, worker, a, i0, k0, mb, kb, negate,
                                 mark_ns);
  // The caller's panel is packed at the full kb depth; each kc sub-range
  // starts ks rows into every strip, so the strips keep their kb stride.
  const std::int64_t a_strip_rows = ceil_div(mb, kernel_.mr) * kernel_.mr;
  const std::int64_t nr = kernel_.nr;
  for (std::int64_t ks = 0; ks < kb; ks += kc) {
    const std::int64_t kcb = std::min(kc, kb - ks);
    const bool last = may_stream && k0 + ks + kcb == a.cols();
    micro_tiles(worker, c, ap + a_strip_rows * ks, packed_b + ks * nr, i0, j0,
                mb, nb, kcb, kb, last, mark_ns);
  }
}

void KernelContext::block_op(int worker, Matrix& c, const Matrix& a,
                             const Matrix& b, std::int64_t i0, std::int64_t j0,
                             std::int64_t k0, std::int64_t mb, std::int64_t nb,
                             std::int64_t kb) {
  block_op_impl(worker, c, a, b, i0, j0, k0, mb, nb, kb, /*negate=*/false,
                /*may_stream=*/true);
}

void KernelContext::block_op_packed_b(int worker, Matrix& c, const Matrix& a,
                                      const double* packed_b, std::int64_t i0,
                                      std::int64_t j0, std::int64_t k0,
                                      std::int64_t mb, std::int64_t nb,
                                      std::int64_t kb) {
  block_op_packed_b_impl(worker, c, a, packed_b, i0, j0, k0, mb, nb, kb,
                         /*negate=*/false, /*may_stream=*/true);
}

void KernelContext::block_op_sub(int worker, Matrix& c, const Matrix& a,
                                 const Matrix& b, std::int64_t i0,
                                 std::int64_t j0, std::int64_t k0,
                                 std::int64_t mb, std::int64_t nb,
                                 std::int64_t kb) {
  block_op_impl(worker, c, a, b, i0, j0, k0, mb, nb, kb, /*negate=*/true,
                /*may_stream=*/false);
}

void KernelContext::block_op_sub_packed_b(int worker, Matrix& c,
                                          const Matrix& a,
                                          const double* packed_b,
                                          std::int64_t i0, std::int64_t j0,
                                          std::int64_t k0, std::int64_t mb,
                                          std::int64_t nb, std::int64_t kb) {
  block_op_packed_b_impl(worker, c, a, packed_b, i0, j0, k0, mb, nb, kb,
                         /*negate=*/true, /*may_stream=*/false);
}

void gemm_micro(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t q,
                KernelContext& ctx) {
  check_gemm_shapes(c, a, b);
  MCMM_REQUIRE(q >= 1, "gemm_micro: block size must be >= 1");
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  // A degenerate product (any dimension 0) is an empty sum: return before
  // touching the context so pack buffers and memo keys stay untouched.
  if (m == 0 || n == 0 || z == 0) return;
  ctx.invalidate();
  for (std::int64_t i0 = 0; i0 < m; i0 += q) {
    const std::int64_t mb = std::min(q, m - i0);
    for (std::int64_t k0 = 0; k0 < z; k0 += q) {
      const std::int64_t kb = std::min(q, z - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += q) {
        const std::int64_t nb = std::min(q, n - j0);
        ctx.block_op(0, c, a, b, i0, j0, k0, mb, nb, kb);
      }
    }
  }
}

}  // namespace mcmm
