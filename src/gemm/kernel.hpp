// Sequential GEMM kernels and the block-kernel engine the parallel
// schedules are built from (the paper's "atomic elements ... are square
// blocks of coefficients of size q x q", computed by a sequential
// BLAS-like kernel).
//
// Two generations coexist:
//  * block_fma / gemm_blocked — the naive scalar triple loop, kept as the
//    measurable baseline (bench_gemm compares against it);
//  * KernelContext — the BLIS-style engine: per-worker 64-byte-aligned
//    packing buffers (pack.hpp) feeding a register-blocked MR x NR
//    micro-kernel (microkernel.hpp), runtime-dispatched AVX2+FMA vs
//    portable scalar.  The parallel schedules route every q x q block
//    product through KernelContext::block_op.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gemm/matrix.hpp"
#include "gemm/microkernel.hpp"

namespace mcmm {

class ExecutionTracer;

/// Reference: C += A * B with the classical triple loop (i, k, j order).
void gemm_reference(Matrix& c, const Matrix& a, const Matrix& b);

/// Block micro-kernel: C[i0.., j0..] += A[i0.., k0..] * B[k0.., j0..]
/// restricted to an (mb x nb x kb) sub-problem.  All offsets are in
/// coefficients; the sub-block may be ragged at matrix edges.
void block_fma(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t i0,
               std::int64_t j0, std::int64_t k0, std::int64_t mb,
               std::int64_t nb, std::int64_t kb);

/// Sequential blocked GEMM over q x q blocks (sanity substrate and the
/// single-core baseline of the timing benches).
void gemm_blocked(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t q);

/// Blocked GEMM with a packed, dot-product micro-kernel: each q x n
/// k-panel of B is transposed into one contiguous buffer (sized once to
/// the largest panel) and reused across the whole i sweep, turning the
/// inner loop into independent dot products (unrolled four columns at a
/// time).  Same results as gemm_blocked up to the k-summation order,
/// which it preserves.
void gemm_blocked_packed(Matrix& c, const Matrix& a, const Matrix& b,
                         std::int64_t q);

/// Which micro-kernel a KernelContext uses.
enum class KernelPath {
  kAuto,    ///< best kernel this host can run (AVX-512 > AVX2 > scalar)
  kScalar,  ///< force the portable kernel (bitwise-reproducible everywhere)
  kSimd,    ///< force the best SIMD kernel; constructing throws when none
  kAvx2,    ///< force avx2-fma-4x8 (the PR-4 baseline); throws when absent
  kAvx512,  ///< force the AVX-512 family's default shape; throws when absent
};

/// Parse "auto" | "scalar" | "simd" | "avx2" | "avx512" (the --kernel
/// CLI flag).
KernelPath parse_kernel_path(const std::string& name);

/// The block-kernel engine: per-worker packing state + dispatched
/// micro-kernel.  One context serves one ThreadPool-full of workers; each
/// worker passes its own id so packing buffers are never shared (no locks,
/// no false sharing on the compute path).
///
/// block_op packs the A sub-block MR-strided and the B sub-block
/// NR-strided (memoised per worker, so the schedules' tile loops — which
/// revisit the same A block across a row of C blocks and the same B
/// blocks across the lambda/mu/alpha tile sweeps — repack only on reuse
/// misses), then runs the micro-kernel over the register tiles.  Results
/// are identical for every worker count: per C coefficient the summation
/// order is k ascending within a block, blocks in caller order.
class KernelContext {
public:
  explicit KernelContext(int workers, KernelPath path = KernelPath::kAuto);

  /// Build from an autotuned profile (mcmm_tune): selects the tuned
  /// kernel by name and installs the tuned prefetch distances, pack
  /// prefetch, and streaming-store policy.  When the profile is untuned
  /// this is exactly the kAuto constructor; when the tuned kernel cannot
  /// run on this host (profile from another machine) it falls back to
  /// the best available kernel and emits a warning.
  KernelContext(int workers, const KernelTuning& tuning);

  int workers() const { return static_cast<int>(states_.size()); }
  KernelPath path() const { return path_; }

  /// Dispatch string for reports, e.g. "avx2-fma-4x8" or "scalar-4x8".
  const std::string& dispatch_name() const { return name_; }

  /// The dispatched micro-kernel (tile shape, contraction, NT variant).
  const MicroKernel& kernel() const { return kernel_; }

  /// Replace the dispatched micro-kernel (the autotuner's A/B lever; also
  /// lets tests pin an exact kernel).  Memoised panels are dropped via
  /// the pack-stride key, so a mid-process switch can never consume a
  /// panel packed for another shape.
  void set_kernel(const MicroKernel& kernel);

  /// Micro-kernel prefetch distances passed to every tile invocation.
  void set_knobs(const KernelKnobs& knobs) { knobs_ = knobs; }
  const KernelKnobs& knobs() const { return knobs_; }

  /// Pack-time prefetch distance (lines/rows ahead; 0 off).
  void set_pack_prefetch(std::int64_t distance) { pack_prefetch_ = distance; }
  std::int64_t pack_prefetch() const { return pack_prefetch_; }

  /// Tuned k-panel depth: when 0 < kc < kb, block products split their k
  /// loop at kc so panels are packed and the micro-kernel runs at the
  /// tuned depth even when the schedule's q exceeds kc (mcmm_tune's
  /// winning depth used to stop applying inside block_op exactly there).
  /// 0 disables the split.  Installed from KernelTuning::kc by the tuning
  /// constructor.  Splitting changes the C write-back granularity (one
  /// register-tile add per kc sub-panel), so results match a q=kc run
  /// bit-for-bit, not a q=kb run — still deterministic for every worker
  /// count, like every engine path.
  void set_kc(std::int64_t kc);
  std::int64_t kc() const { return kc_; }

  /// Enable non-temporal C stores on each product's final k-panel.  Only
  /// tiles that meet the kernel's stream_align on every row use the NT
  /// path (ragged and misaligned tiles fall back to regular stores), and
  /// the engine fences before block_op returns, so results are bit-
  /// identical with streaming on or off.
  void set_stream_stores(bool on) { stream_stores_ = on; }
  bool stream_stores() const { return stream_stores_; }

  /// Whether the dispatched micro-kernel contracts multiply-adds (FMA).
  /// The batch engine's direct path mirrors this per coefficient
  /// (std::fma vs mul+add) so skipping the packed path stays bit-identical.
  bool fused() const { return kernel_.fused; }

  /// C[i0.., j0..] += A[i0.., k0..] * B[k0.., j0..] over an
  /// (mb x nb x kb) sub-problem, using `worker`'s packing buffers.
  void block_op(int worker, Matrix& c, const Matrix& a, const Matrix& b,
                std::int64_t i0, std::int64_t j0, std::int64_t k0,
                std::int64_t mb, std::int64_t nb, std::int64_t kb);

  /// block_op with the B panel supplied by the caller: `packed_b` must
  /// hold B[k0.., j0..] NR-strided exactly as pack_b_panel would produce
  /// it (kb x nb, zero-padded ragged strips).  A is still packed and
  /// memoised per worker; no B slot is touched, so a batch-wide shared
  /// panel is consumed without repacking (src/batch amortised packing).
  void block_op_packed_b(int worker, Matrix& c, const Matrix& a,
                         const double* packed_b, std::int64_t i0,
                         std::int64_t j0, std::int64_t k0, std::int64_t mb,
                         std::int64_t nb, std::int64_t kb);

  /// C[i0.., j0..] -= A[i0.., k0..] * B[k0.., j0..]: the rank-kb downdate
  /// the LU trailing update is made of.  Implemented by packing -A — with
  /// IEEE-754 doubles (-a)*b is bit-exactly -(a*b) — so every micro-kernel
  /// path, the memo layer, and the determinism contract carry over
  /// unchanged.  Never takes the streaming-store path: the same C block is
  /// downdated again on later LU steps, so there is no "final k-panel".
  void block_op_sub(int worker, Matrix& c, const Matrix& a, const Matrix& b,
                    std::int64_t i0, std::int64_t j0, std::int64_t k0,
                    std::int64_t mb, std::int64_t nb, std::int64_t kb);

  /// block_op_sub with the B panel supplied by the caller in pack_b_panel
  /// layout (kb x nb, NR-strided, zero-padded) — the LU row-panel U strip
  /// packed once per step and shared read-only across workers, the same
  /// amortisation SharedPackedB proves in src/batch.
  void block_op_sub_packed_b(int worker, Matrix& c, const Matrix& a,
                             const double* packed_b, std::int64_t i0,
                             std::int64_t j0, std::int64_t k0, std::int64_t mb,
                             std::int64_t nb, std::int64_t kb);

  /// Drop every memoised panel (buffers are kept).  The memo is keyed on
  /// block offsets + pack stride, so it is valid for one (A, B) pair;
  /// every engine entry point (gemm_micro, the parallel schedules) calls
  /// this before a product.  Direct block_op users working on fresh
  /// matrices must too.
  void invalidate();

  /// Drop one worker's memoised panels only.  The batch engine runs many
  /// independent products per parallel region, each on one worker; when a
  /// worker moves to a product with different operands its memo is stale
  /// while its siblings' memos are still live, so a full invalidate()
  /// would be both racy and wasteful.
  void invalidate_worker(int worker);

  /// Attach an ExecutionTracer (nullptr detaches): block_op then records
  /// pack-A / pack-B / micro-kernel spans per worker (2-4 steady-clock
  /// reads per block op — a few tens of ns against block work in the µs
  /// range).  The tracer must have at least workers() rings and is usually
  /// the one attached to the driving ThreadPool, so kernel phases land
  /// inside the pool's regions.
  void set_tracer(ExecutionTracer* tracer) { tracer_ = tracer; }
  ExecutionTracer* tracer() const { return tracer_; }

private:
  /// Identity of a packed sub-block: offsets + extents in coefficients,
  /// the pack stride (MR for A panels, NR for B panels), the kc sub-panel
  /// depth the panel was split at, and whether it was packed negated.
  /// Stride and split are part of the layout and the sign is part of the
  /// values, so a kernel switch (set_kernel, tuned shapes), a kc change,
  /// or an add/sub flip can never be served a mismatched panel.
  struct PackKey {
    std::int64_t r0 = -1, c0 = -1, rows = 0, cols = 0, stride = 0;
    std::int64_t kc = 0;
    bool neg = false;
    bool matches(std::int64_t r, std::int64_t c, std::int64_t nr,
                 std::int64_t nc, std::int64_t s, std::int64_t kcv = 0,
                 bool negv = false) const {
      return r0 == r && c0 == c && rows == nr && cols == nc && stride == s &&
             kc == kcv && neg == negv;
    }
  };
  struct BSlot {
    PackKey key;
    AlignedVector buf;
  };
  static constexpr std::size_t kBSlots = 8;
  struct WorkerState {
    PackKey a_key;
    AlignedVector a_buf;
    std::array<BSlot, kBSlots> b;
  };

  /// Effective sub-panel depth for a kb-deep k loop: kc_ when it splits,
  /// else the full kb.
  std::int64_t kc_depth(std::int64_t kb) const {
    return kc_ > 0 && kc_ < kb ? kc_ : kb;
  }

  /// Pack (memoised) the whole kb-deep A sub-block into `st` as
  /// consecutive kc-deep sub-panels (sub-panel at k offset ks starts at
  /// ceil(mb/mr)*mr*ks; one sub-panel, the classic layout, when kc does
  /// not split) and return the base; records one kPackA span per
  /// sub-panel packed and advances `mark_ns` on a memo miss.
  const double* pack_a_memo(WorkerState& st, int worker, const Matrix& a,
                            std::int64_t i0, std::int64_t k0, std::int64_t mb,
                            std::int64_t kb, bool negate,
                            std::int64_t& mark_ns);

  /// The register-tile sweep shared by every block-op face, over one
  /// kb-deep sub-panel pair.  `b_panel_kb` is the depth the B panel was
  /// packed at (its strip stride) — kb when bp points at a panel of
  /// exactly this depth, the full panel depth when bp points into a
  /// deeper caller-packed panel.  `last_k_panel` marks the product's
  /// final accumulation into this C block — the only time the NT store
  /// path may be used.  Advances `mark_ns` past the recorded span.
  void micro_tiles(int worker, Matrix& c, const double* ap, const double* bp,
                   std::int64_t i0, std::int64_t j0, std::int64_t mb,
                   std::int64_t nb, std::int64_t kb, std::int64_t b_panel_kb,
                   bool last_k_panel, std::int64_t& mark_ns);

  /// Shared body of block_op / block_op_sub: packs A (negated for sub),
  /// packs B into a memo slot, and sweeps the kc sub-panels.
  void block_op_impl(int worker, Matrix& c, const Matrix& a, const Matrix& b,
                     std::int64_t i0, std::int64_t j0, std::int64_t k0,
                     std::int64_t mb, std::int64_t nb, std::int64_t kb,
                     bool negate, bool may_stream);

  /// Shared body of block_op_packed_b / block_op_sub_packed_b.
  void block_op_packed_b_impl(int worker, Matrix& c, const Matrix& a,
                              const double* packed_b, std::int64_t i0,
                              std::int64_t j0, std::int64_t k0, std::int64_t mb,
                              std::int64_t nb, std::int64_t kb, bool negate,
                              bool may_stream);

  MicroKernel kernel_;
  KernelPath path_;
  std::string name_;
  KernelKnobs knobs_;
  std::int64_t pack_prefetch_ = 0;
  std::int64_t kc_ = 0;
  bool stream_stores_ = false;
  std::vector<WorkerState> states_;
  ExecutionTracer* tracer_ = nullptr;
};

/// Sequential blocked GEMM over q x q blocks routed through `ctx`
/// (worker 0): the single-core face of the packed micro-kernel engine.
void gemm_micro(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t q,
                KernelContext& ctx);

/// Shape validation shared by all entry points: A (m x z), B (z x n),
/// C (m x n); throws mcmm::Error on mismatch.
void check_gemm_shapes(const Matrix& c, const Matrix& a, const Matrix& b);

}  // namespace mcmm
