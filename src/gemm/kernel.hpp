// Sequential GEMM kernels: the reference implementation and the q x q
// block micro-kernel the parallel schedules are built from (the paper's
// "atomic elements ... are square blocks of coefficients of size q x q",
// computed by a sequential BLAS-like kernel).
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"

namespace mcmm {

/// Reference: C += A * B with the classical triple loop (i, k, j order).
void gemm_reference(Matrix& c, const Matrix& a, const Matrix& b);

/// Block micro-kernel: C[i0.., j0..] += A[i0.., k0..] * B[k0.., j0..]
/// restricted to an (mb x nb x kb) sub-problem.  All offsets are in
/// coefficients; the sub-block may be ragged at matrix edges.
void block_fma(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t i0,
               std::int64_t j0, std::int64_t k0, std::int64_t mb,
               std::int64_t nb, std::int64_t kb);

/// Sequential blocked GEMM over q x q blocks (sanity substrate and the
/// single-core baseline of the timing benches).
void gemm_blocked(Matrix& c, const Matrix& a, const Matrix& b, std::int64_t q);

/// Blocked GEMM with a packed, dot-product micro-kernel: each B tile is
/// transposed into a contiguous buffer once per (j0, k0) panel and reused
/// across the whole i sweep, turning the inner loop into independent
/// dot products (unrolled four columns at a time).  Same results as
/// gemm_blocked up to the k-summation order, which it preserves.
void gemm_blocked_packed(Matrix& c, const Matrix& a, const Matrix& b,
                         std::int64_t q);

/// Shape validation shared by all entry points: A (m x z), B (z x n),
/// C (m x n); throws mcmm::Error on mismatch.
void check_gemm_shapes(const Matrix& c, const Matrix& a, const Matrix& b);

}  // namespace mcmm
