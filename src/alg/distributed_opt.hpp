// Algorithm 2 of the paper: the Multicore Maximum Reuse Algorithm tuned to
// minimise distributed-cache misses MD.
//
// Cores form a sqrt(p) x sqrt(p) grid.  A (sqrt(p) mu)^2 tile of C is staged
// in the shared cache and split into mu x mu sub-blocks, one per core
// (1 + mu + mu^2 <= CD).  Each core keeps its C sub-block resident until it
// is *fully* computed, streaming fractions of B rows and elements of A
// through the remaining distributed-cache space.
//
// Predicted misses (divisible sizes): MS = mn + 2mnz/(mu sqrt(p)),
//                                     MD = mn/p + 2mnz/(p mu).
#pragma once

#include "alg/algorithm.hpp"

namespace mcmm {

/// How the C tile is split among the cores — the design choice the paper
/// motivates in Section 3.2 ("distributed ... in a 2-D cyclic way, because
/// it helps reduce and balance ... the number of shared-cache misses"),
/// exposed so the ablation bench can quantify it.
enum class CTileDistribution {
  k2DCyclic,  ///< sqrt(p) x sqrt(p) grid of mu x mu sub-blocks (the paper)
  kLinear,    ///< contiguous column strips of the tile, one per core
};

class DistributedOpt final : public Algorithm {
public:
  explicit DistributedOpt(
      CTileDistribution distribution = CTileDistribution::k2DCyclic)
      : distribution_(distribution) {}

  std::string name() const override {
    return distribution_ == CTileDistribution::k2DCyclic
               ? "distributed-opt"
               : "distributed-opt-linear";
  }
  std::string label() const override {
    return distribution_ == CTileDistribution::k2DCyclic
               ? "Distributed Opt."
               : "Distributed Opt. (linear)";
  }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;

private:
  CTileDistribution distribution_;
};

}  // namespace mcmm
