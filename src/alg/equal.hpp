// The "Equal" baselines, inspired by Toledo's out-of-core algorithm: the
// target cache is split into three equal parts, one per matrix, and the
// product proceeds over s x s tiles with 3 s^2 <= C.
//
// The paper declines the single-level scheme in two versions:
//
//  * SharedEqual — s is sized for the *shared* cache; an s x s tile of C
//    stays staged in the shared cache while s x s tiles of A and B stream
//    through the remaining two thirds.  Cores split the C tile row-wise
//    and stream single blocks through their distributed caches.
//    MS = mn + 2mnz/s  with  s = floor(sqrt(CS/3))  (divisible sizes) —
//    a factor ~sqrt(3) more shared misses than SharedOpt.
//
//  * DistributedEqual — s is sized for the *distributed* caches; each core
//    independently computes its own s x s tiles of C, holding one tile of
//    each matrix in its cache.  Tiles are assigned to cores in groups of p
//    along a row of C so the cores share the A tile in the shared cache.
//    MD = mn/p + 2mnz/(p s)  with  s = floor(sqrt(CD/3)) — a factor
//    ~sqrt(3) more distributed misses than DistributedOpt.
#pragma once

#include "alg/algorithm.hpp"

namespace mcmm {

class SharedEqual final : public Algorithm {
public:
  std::string name() const override { return "shared-equal"; }
  std::string label() const override { return "Shared Equal"; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;
};

class DistributedEqual final : public Algorithm {
public:
  std::string name() const override { return "distributed-equal"; }
  std::string label() const override { return "Distributed Equal"; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;
};

}  // namespace mcmm
