#include "alg/distributed_opt.hpp"

#include <algorithm>

#include "analysis/params.hpp"
#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

namespace {

/// The mu x mu region of the current C tile owned by core `c` on the
/// r x c grid, clipped to the (possibly ragged) tile extent.
struct CoreRegion {
  Range rows;  // offsets within the tile
  Range cols;
  bool empty() const { return rows.empty() || cols.empty(); }
};

CoreRegion core_region(CTileDistribution dist, int c, int p, const Grid& grid,
                       std::int64_t mu, std::int64_t ti, std::int64_t tj) {
  CoreRegion r;
  if (dist == CTileDistribution::k2DCyclic) {
    const std::int64_t ci = c % grid.r;  // grid row
    const std::int64_t cj = c / grid.r;  // grid column
    r.rows = Range{std::min(ci * mu, ti), std::min((ci + 1) * mu, ti)};
    r.cols = Range{std::min(cj * mu, tj), std::min((cj + 1) * mu, tj)};
  } else {
    // Linear: full-height contiguous column strips of width
    // tile_cols/p = mu/r.  Same area per core (mu^2) but an r-times
    // taller A footprint per k.
    const std::int64_t strip = grid.c * mu / p;  // == mu / grid.r
    r.rows = Range{0, ti};
    r.cols = Range{std::min(c * strip, tj), std::min((c + 1) * strip, tj)};
  }
  return r;
}

}  // namespace

void DistributedOpt::run(Machine& machine, const Problem& prob,
                         const MachineConfig& declared) const {
  prob.validate();
  MCMM_REQUIRE(machine.cores() == declared.p,
               "DistributedOpt: declared p differs from the machine");
  const DistributedOptParams params = distributed_opt_params(declared);
  const std::int64_t mu = params.mu;
  const Grid grid = params.grid;
  const std::int64_t tile_r = params.tile_rows();
  const std::int64_t tile_c = params.tile_cols();
  const int p = machine.cores();
  if (distribution_ == CTileDistribution::kLinear) {
    // Strips must be tile_cols/p = mu/r whole columns; otherwise some core
    // holds more than mu^2 C blocks and overruns its distributed cache.
    MCMM_REQUIRE(mu % grid.r == 0,
                 "DistributedOpt(linear): needs grid rows | mu; use the 2-D "
                 "cyclic distribution instead");
  }
  ParallelSection par(machine);

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += tile_r) {
    const std::int64_t ti = std::min(tile_r, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += tile_c) {
      const std::int64_t tj = std::min(tile_c, prob.n - j0);

      // Stage the C tile in the shared cache, then hand each core its
      // mu x mu sub-block, which stays resident until fully computed.
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
      for (int c = 0; c < p; ++c) {
        const CoreRegion r = core_region(distribution_, c, p, grid, mu, ti, tj);
        for (std::int64_t ii = r.rows.lo; ii < r.rows.hi; ++ii) {
          for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
            par.load_distributed(c, BlockId::c(i0 + ii, j0 + jj));
          }
        }
      }
      par.run();

      for (std::int64_t k = 0; k < prob.z; ++k) {
        // Stage the B row fragment and the A column fragment.
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::b(k, j0 + jj));
        }
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          machine.load_shared(BlockId::a(i0 + ii, k));
        }
        for (int c = 0; c < p; ++c) {
          const CoreRegion r = core_region(distribution_, c, p, grid, mu, ti, tj);
          if (r.empty()) continue;
          for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
            par.load_distributed(c, BlockId::b(k, j0 + jj));
          }
          for (std::int64_t ii = r.rows.lo; ii < r.rows.hi; ++ii) {
            const BlockId a = BlockId::a(i0 + ii, k);
            par.load_distributed(c, a);
            for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
              par.fma(c, i0 + ii, j0 + jj, k);
            }
            par.evict_distributed(c, a);
          }
          for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
            par.evict_distributed(c, BlockId::b(k, j0 + jj));
          }
        }
        par.run();
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::b(k, j0 + jj));
        }
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          machine.evict_shared(BlockId::a(i0 + ii, k));
        }
      }

      // Cores release their finished sub-blocks (write-back to shared),
      // then the tile is written back to memory.
      for (int c = 0; c < p; ++c) {
        const CoreRegion r = core_region(distribution_, c, p, grid, mu, ti, tj);
        for (std::int64_t ii = r.rows.lo; ii < r.rows.hi; ++ii) {
          for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
            par.evict_distributed(c, BlockId::c(i0 + ii, j0 + jj));
          }
        }
      }
      par.run();
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
    }
  }
}

}  // namespace mcmm
