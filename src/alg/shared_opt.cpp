#include "alg/shared_opt.hpp"

#include <algorithm>

#include "analysis/params.hpp"
#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

void SharedOpt::run(Machine& machine, const Problem& prob,
                    const MachineConfig& declared) const {
  prob.validate();
  const std::int64_t lambda = shared_opt_params(declared.cs).lambda;
  const int p = machine.cores();
  if (machine.policy() == Policy::kIdeal) {
    // Each distributed cache holds {a, Bc, Cc}: the paper's 3 <= CD
    // assumption must hold on the physical machine.
    MCMM_REQUIRE(machine.config().cd >= 3,
                 "SharedOpt: IDEAL mode needs CD >= 3");
  }
  ParallelSection par(machine);

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += lambda) {
    const std::int64_t ti = std::min(lambda, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += lambda) {
      const std::int64_t tj = std::min(lambda, prob.n - j0);

      // Stage the C tile in the shared cache.
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }

      for (std::int64_t k = 0; k < prob.z; ++k) {
        // Stage one row fragment of B.
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::b(k, j0 + jj));
        }
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          const std::int64_t i = i0 + ii;
          const BlockId a = BlockId::a(i, k);
          machine.load_shared(a);
          // Distribute the C row among the cores, element by element:
          // each core cycles {a, Bc, Cc} through its distributed cache.
          for (int c = 0; c < p; ++c) {
            const Range chunk = chunk_range(tj, p, c);
            if (chunk.empty()) continue;
            par.load_distributed(c, a);
            for (std::int64_t jj = chunk.lo; jj < chunk.hi; ++jj) {
              const std::int64_t j = j0 + jj;
              const BlockId bb = BlockId::b(k, j);
              const BlockId cc = BlockId::c(i, j);
              par.load_distributed(c, bb);
              par.load_distributed(c, cc);
              par.fma(c, i, j, k);
              // Evicting the freshly written Cc propagates the update to
              // the shared copy (the paper's "update block in shared").
              par.evict_distributed(c, cc);
              par.evict_distributed(c, bb);
            }
            par.evict_distributed(c, a);
          }
          par.run();
          machine.evict_shared(a);
        }
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::b(k, j0 + jj));
        }
      }

      // Write the finished tile back to memory.
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
    }
  }
}

}  // namespace mcmm
