// Name-based factory for the six schedules, used by benches, examples and
// the experiment driver.
#pragma once

#include <string>
#include <vector>

#include "alg/algorithm.hpp"

namespace mcmm {

/// Instantiate an algorithm by its stable name ("shared-opt",
/// "distributed-opt", "tradeoff", "outer-product", "shared-equal",
/// "distributed-equal", plus the extensions "cannon" and
/// "distributed-opt-linear").  Throws mcmm::Error for unknown names.
AlgorithmPtr make_algorithm(const std::string& name);

/// The paper's six schedules, in its presentation order.
std::vector<std::string> algorithm_names();

/// The paper's six plus this library's extensions (Cannon's algorithm and
/// the linear-distribution ablation of Distributed Opt.).
std::vector<std::string> extended_algorithm_names();

}  // namespace mcmm
