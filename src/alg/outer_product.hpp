// The ScaLAPACK-style outer-product baseline ("Outer Product" in the
// paper's figures): cores are organised as a virtual sqrt(p) x sqrt(p)
// torus, C is partitioned into one rectangular tile per core, and at every
// step k each core accumulates the rank-one (in blocks) update of its tile
// from the k-th column of A and k-th row of B.
//
// The schedule makes no attempt at cache reuse across steps — the paper
// notes it "is insensitive to cache policies, since it is not focusing on
// cache usage" — so it has no IDEAL-mode management and is always run
// under LRU replacement.
#pragma once

#include "alg/algorithm.hpp"

namespace mcmm {

class OuterProduct final : public Algorithm {
public:
  std::string name() const override { return "outer-product"; }
  std::string label() const override { return "Outer Product"; }
  bool supports_ideal() const override { return false; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;
};

}  // namespace mcmm
