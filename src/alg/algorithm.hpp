// Common interface of the six simulated matrix-product schedules.
//
// An algorithm is a *schedule*: it decides which blocks move into which
// cache when, and which core executes each block FMA.  It is given two
// machine descriptions:
//
//  * `declared` — the cache capacities (and bandwidths) the algorithm
//    bases its parameters on.  Under the paper's LRU-50 setting this is
//    half of the physical machine; under IDEAL it is the full machine.
//  * `machine`  — the simulated hardware the schedule executes on.  Its
//    policy decides whether the algorithm's explicit cache management is
//    obeyed (IDEAL) or ignored in favour of LRU replacement.
//
// Every schedule must perform each block FMA (i,j,k) exactly once — the
// test suite checks this with the machine's FMA observer.
#pragma once

#include <memory>
#include <string>

#include "sim/machine.hpp"
#include "sim/problem.hpp"

namespace mcmm {

class Algorithm {
public:
  virtual ~Algorithm() = default;

  /// Stable identifier, e.g. "shared-opt" (used by the registry and CLIs).
  virtual std::string name() const = 0;

  /// Human-readable label matching the paper's figures, e.g. "Shared Opt.".
  virtual std::string label() const = 0;

  /// True if the schedule has an explicit IDEAL-mode cache management.
  /// Outer Product has none (the paper notes it is insensitive to cache
  /// policy); drivers run it under LRU in both settings.
  virtual bool supports_ideal() const { return true; }

  /// Execute the full product on `machine`, deriving parameters from
  /// `declared`.  Throws mcmm::Error if the declared machine cannot
  /// support the schedule (e.g. CD < 3, or p not a perfect square for
  /// Cannon's torus).
  virtual void run(Machine& machine, const Problem& prob,
                   const MachineConfig& declared) const = 0;
};

using AlgorithmPtr = std::unique_ptr<Algorithm>;

}  // namespace mcmm
