// Cannon's algorithm [Cannon 1969], the classical 2D-torus matrix product
// the paper cites as the canonical distributed-memory scheme (Section 1).
//
// Cores form a sqrt(p) x sqrt(p) torus; A, B and C are partitioned into
// sqrt(p) x sqrt(p) super-tiles.  After the initial skew, step t has core
// (i,j) multiply A-tile (i, (i+j+t) mod sqrt(p)) into B-tile
// ((i+j+t) mod sqrt(p), j).  On a shared-memory multicore the "shifts" are
// free (a tile is just a different index range), so Cannon degenerates to
// a tile-sequenced schedule: better temporal locality than Outer Product
// (each A/B tile pair is consumed completely before moving on) but no
// cache-size awareness at all.
//
// Like Outer Product it has no IDEAL-mode management and always runs under
// LRU.  Included as an extra baseline beyond the paper's six.
#pragma once

#include "alg/algorithm.hpp"

namespace mcmm {

class Cannon final : public Algorithm {
public:
  std::string name() const override { return "cannon"; }
  std::string label() const override { return "Cannon"; }
  bool supports_ideal() const override { return false; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;
};

}  // namespace mcmm
