#include "alg/registry.hpp"

#include "alg/cannon.hpp"
#include "alg/distributed_opt.hpp"
#include "alg/equal.hpp"
#include "alg/outer_product.hpp"
#include "alg/shared_opt.hpp"
#include "alg/tradeoff.hpp"
#include "util/error.hpp"

namespace mcmm {

AlgorithmPtr make_algorithm(const std::string& name) {
  if (name == "shared-opt") return std::make_unique<SharedOpt>();
  if (name == "distributed-opt") return std::make_unique<DistributedOpt>();
  if (name == "distributed-opt-linear") {
    return std::make_unique<DistributedOpt>(CTileDistribution::kLinear);
  }
  if (name == "tradeoff") return std::make_unique<Tradeoff>();
  if (name == "outer-product") return std::make_unique<OuterProduct>();
  if (name == "shared-equal") return std::make_unique<SharedEqual>();
  if (name == "distributed-equal") return std::make_unique<DistributedEqual>();
  if (name == "cannon") return std::make_unique<Cannon>();
  throw Error("unknown algorithm: " + name);
}

std::vector<std::string> algorithm_names() {
  return {"shared-opt",    "distributed-opt", "tradeoff",
          "outer-product", "shared-equal",    "distributed-equal"};
}

std::vector<std::string> extended_algorithm_names() {
  std::vector<std::string> names = algorithm_names();
  names.push_back("cannon");
  names.push_back("distributed-opt-linear");
  return names;
}

}  // namespace mcmm
