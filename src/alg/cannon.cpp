#include "alg/cannon.hpp"

#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

void Cannon::run(Machine& machine, const Problem& prob,
                 const MachineConfig& declared) const {
  prob.validate();
  (void)declared;  // cache-oblivious, like Outer Product
  MCMM_REQUIRE(machine.policy() == Policy::kLru,
               "Cannon has no IDEAL-mode management; run it under LRU");
  MCMM_REQUIRE(is_perfect_square(machine.cores()),
               "Cannon: p must be a perfect square (the skew needs a square "
               "torus)");
  const int p = machine.cores();
  const std::int64_t sp = isqrt(p);
  ParallelSection par(machine);

  // Super-tile index ranges along each dimension.
  const auto rows = [&](std::int64_t t) {
    return chunk_range(prob.m, static_cast<int>(sp), static_cast<int>(t));
  };
  const auto cols = [&](std::int64_t t) {
    return chunk_range(prob.n, static_cast<int>(sp), static_cast<int>(t));
  };
  const auto deps = [&](std::int64_t t) {
    return chunk_range(prob.z, static_cast<int>(sp), static_cast<int>(t));
  };

  for (std::int64_t t = 0; t < sp; ++t) {
    for (int c = 0; c < p; ++c) {
      const std::int64_t ci = c % sp;  // torus row
      const std::int64_t cj = c / sp;  // torus column
      const std::int64_t kk = (ci + cj + t) % sp;  // skewed k super-tile
      const Range ri = rows(ci);
      const Range rj = cols(cj);
      const Range rk = deps(kk);
      // Consume the whole A(ci,kk) x B(kk,cj) tile product before the
      // next "shift": i-k-j order keeps one A block hot per inner sweep.
      for (std::int64_t i = ri.lo; i < ri.hi; ++i) {
        for (std::int64_t k = rk.lo; k < rk.hi; ++k) {
          for (std::int64_t j = rj.lo; j < rj.hi; ++j) {
            par.fma(c, i, j, k);
          }
        }
      }
    }
    par.run();
  }
}

}  // namespace mcmm
