// Algorithm 1 of the paper: the Multicore Maximum Reuse Algorithm tuned to
// minimise shared-cache misses MS.
//
// A lambda x lambda tile of C (1 + lambda + lambda^2 <= CS) is staged in the
// shared cache together with one row of B and one element of A at a time;
// each C row is split into p contiguous chunks processed element-wise by the
// cores, whose distributed caches only ever hold {a, Bc, Cc} (3 blocks).
//
// Predicted misses (divisible sizes): MS = mn + 2mnz/lambda,
//                                     MD = 2mnz/p + mnz/lambda.
#pragma once

#include "alg/algorithm.hpp"

namespace mcmm {

class SharedOpt final : public Algorithm {
public:
  std::string name() const override { return "shared-opt"; }
  std::string label() const override { return "Shared Opt."; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;
};

}  // namespace mcmm
