#include "alg/outer_product.hpp"

#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

void OuterProduct::run(Machine& machine, const Problem& prob,
                       const MachineConfig& declared) const {
  prob.validate();
  (void)declared;  // cache-oblivious: parameters are ignored by design
  MCMM_REQUIRE(machine.policy() == Policy::kLru,
               "OuterProduct has no IDEAL-mode management; run it under LRU");
  const int p = machine.cores();
  const Grid grid = balanced_grid(p);
  ParallelSection par(machine);

  for (std::int64_t k = 0; k < prob.z; ++k) {
    for (int c = 0; c < p; ++c) {
      const Range rows = chunk_range(prob.m, static_cast<int>(grid.r),
                                     static_cast<int>(c % grid.r));
      const Range cols = chunk_range(prob.n, static_cast<int>(grid.c),
                                     static_cast<int>(c / grid.r));
      for (std::int64_t i = rows.lo; i < rows.hi; ++i) {
        for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
          par.fma(c, i, j, k);
        }
      }
    }
    par.run();
  }
}

}  // namespace mcmm
