#include "alg/equal.hpp"

#include <algorithm>

#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

namespace {

/// Toledo's equal split: the largest s with 3 s^2 <= capacity (at least 1).
std::int64_t equal_tile_side(std::int64_t capacity) {
  return std::max<std::int64_t>(isqrt(capacity / 3), 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// SharedEqual
// ---------------------------------------------------------------------------

void SharedEqual::run(Machine& machine, const Problem& prob,
                      const MachineConfig& declared) const {
  prob.validate();
  const std::int64_t s = equal_tile_side(declared.cs);
  const int p = machine.cores();
  if (machine.policy() == Policy::kIdeal) {
    MCMM_REQUIRE(machine.config().cd >= 3,
                 "SharedEqual: IDEAL mode needs CD >= 3");
    MCMM_REQUIRE(3 * s * s <= machine.config().cs,
                 "SharedEqual: tile does not fit the physical shared cache");
  }
  ParallelSection par(machine);

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += s) {
    const std::int64_t ti = std::min(s, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += s) {
      const std::int64_t tj = std::min(s, prob.n - j0);
      // C tile occupies one third of the shared cache for the whole (I,J).
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
      for (std::int64_t k0 = 0; k0 < prob.z; k0 += s) {
        const std::int64_t tk = std::min(s, prob.z - k0);
        // Stream the A and B tiles through the other two thirds.
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            machine.load_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }
        for (std::int64_t kk = 0; kk < tk; ++kk) {
          for (std::int64_t jj = 0; jj < tj; ++jj) {
            machine.load_shared(BlockId::b(k0 + kk, j0 + jj));
          }
        }
        // Cores split the C tile row-wise and stream single blocks
        // through their distributed caches ({a, b, c} at a time).
        for (int c = 0; c < p; ++c) {
          const Range rows = chunk_range(ti, p, c);
          for (std::int64_t ii = rows.lo; ii < rows.hi; ++ii) {
            const std::int64_t i = i0 + ii;
            for (std::int64_t jj = 0; jj < tj; ++jj) {
              const std::int64_t j = j0 + jj;
              const BlockId cc = BlockId::c(i, j);
              par.load_distributed(c, cc);
              for (std::int64_t kk = 0; kk < tk; ++kk) {
                const BlockId a = BlockId::a(i, k0 + kk);
                const BlockId b = BlockId::b(k0 + kk, j);
                par.load_distributed(c, a);
                par.load_distributed(c, b);
                par.fma(c, i, j, k0 + kk);
                par.evict_distributed(c, a);
                par.evict_distributed(c, b);
              }
              par.evict_distributed(c, cc);
            }
          }
        }
        par.run();
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            machine.evict_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }
        for (std::int64_t kk = 0; kk < tk; ++kk) {
          for (std::int64_t jj = 0; jj < tj; ++jj) {
            machine.evict_shared(BlockId::b(k0 + kk, j0 + jj));
          }
        }
      }
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DistributedEqual
// ---------------------------------------------------------------------------

void DistributedEqual::run(Machine& machine, const Problem& prob,
                           const MachineConfig& declared) const {
  prob.validate();
  const std::int64_t s = equal_tile_side(declared.cd);
  const int p = machine.cores();
  ParallelSection par(machine);

  // Tiles of C are assigned to cores in groups of p along a tile-row, so
  // the whole group shares the A tile staged in the shared cache.
  for (std::int64_t i0 = 0; i0 < prob.m; i0 += s) {
    const std::int64_t ti = std::min(s, prob.m - i0);
    for (std::int64_t g0 = 0; g0 < prob.n; g0 += s * p) {
      // Core c owns the C tile starting at column g0 + c*s (may be empty).
      auto core_cols = [&](int c) {
        const std::int64_t lo = std::min(g0 + c * s, prob.n);
        const std::int64_t hi = std::min(lo + s, prob.n);
        return Range{lo, hi};
      };

      // Stage and pin each core's C tile (shared + distributed).
      for (int c = 0; c < p; ++c) {
        const Range cols = core_cols(c);
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
            machine.load_shared(BlockId::c(i0 + ii, j));
            par.load_distributed(c, BlockId::c(i0 + ii, j));
          }
        }
      }
      par.run();

      for (std::int64_t k0 = 0; k0 < prob.z; k0 += s) {
        const std::int64_t tk = std::min(s, prob.z - k0);
        // One A tile serves the whole group.
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            machine.load_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }
        for (int c = 0; c < p; ++c) {
          const Range cols = core_cols(c);
          if (cols.empty()) continue;
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
              machine.load_shared(BlockId::b(k0 + kk, j));
            }
          }
          // Core-local: bring in its A and B tiles, multiply, release.
          for (std::int64_t ii = 0; ii < ti; ++ii) {
            for (std::int64_t kk = 0; kk < tk; ++kk) {
              par.load_distributed(c, BlockId::a(i0 + ii, k0 + kk));
            }
          }
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
              par.load_distributed(c, BlockId::b(k0 + kk, j));
            }
          }
          for (std::int64_t ii = 0; ii < ti; ++ii) {
            for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
              for (std::int64_t kk = 0; kk < tk; ++kk) {
                par.fma(c, i0 + ii, j, k0 + kk);
              }
            }
          }
          for (std::int64_t ii = 0; ii < ti; ++ii) {
            for (std::int64_t kk = 0; kk < tk; ++kk) {
              par.evict_distributed(c, BlockId::a(i0 + ii, k0 + kk));
            }
          }
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
              par.evict_distributed(c, BlockId::b(k0 + kk, j));
            }
          }
        }
        par.run();
        // Release the group's A and B tiles from the shared cache.
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            machine.evict_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }
        for (int c = 0; c < p; ++c) {
          const Range cols = core_cols(c);
          for (std::int64_t kk = 0; kk < tk; ++kk) {
            for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
              machine.evict_shared(BlockId::b(k0 + kk, j));
            }
          }
        }
      }

      // Write the group's C tiles back.
      for (int c = 0; c < p; ++c) {
        const Range cols = core_cols(c);
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
            par.evict_distributed(c, BlockId::c(i0 + ii, j));
          }
        }
      }
      par.run();
      for (int c = 0; c < p; ++c) {
        const Range cols = core_cols(c);
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t j = cols.lo; j < cols.hi; ++j) {
            machine.evict_shared(BlockId::c(i0 + ii, j));
          }
        }
      }
    }
  }
}

}  // namespace mcmm
