// Algorithm 3 of the paper: the Multicore Maximum Reuse Algorithm tuned to
// minimise the overall data access time Tdata = MS/sigma_S + MD/sigma_D.
//
// An alpha x alpha tile of C plus beta-deep panels of A and B share the
// shared cache (alpha^2 + 2 alpha beta <= CS).  The tile splits over a
// sqrt(p) x sqrt(p) core grid into mu x mu sub-blocks that cycle through
// the distributed caches once per k-panel — so a deeper panel (larger
// beta) re-loads C less often at the price of a smaller alpha (more
// shared misses).  alpha is chosen from the closed-form optimum of
// Section 3.3, clamped to [sqrt(p) mu, alpha_max] and snapped to the
// sqrt(p) mu grid.
//
// Predicted misses (divisible sizes):
//   MS = mn + 2mnz/alpha
//   MD = mnz/(p beta) + 2mnz/(p mu)      for alpha > sqrt(p) mu
//   MD = mn/p + 2mnz/(p mu)              for alpha == sqrt(p) mu
#pragma once

#include <optional>

#include "alg/algorithm.hpp"
#include "analysis/params.hpp"

namespace mcmm {

class Tradeoff final : public Algorithm {
public:
  /// Parameters from the Section 3.3 solver (the paper's algorithm).
  Tradeoff() = default;

  /// Pin (alpha, beta, mu, grid) explicitly instead of solving — used by
  /// the parameter-ablation bench to map the Tdata landscape around the
  /// solver's choice.  The pinned values must satisfy the same feasibility
  /// constraints the solver guarantees (checked at run()).
  explicit Tradeoff(const TradeoffParams& pinned) : pinned_(pinned) {}

  std::string name() const override { return "tradeoff"; }
  std::string label() const override { return "Tradeoff"; }
  void run(Machine& machine, const Problem& prob,
           const MachineConfig& declared) const override;

private:
  std::optional<TradeoffParams> pinned_;
};

}  // namespace mcmm
