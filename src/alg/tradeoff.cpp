#include "alg/tradeoff.hpp"

#include <algorithm>

#include "analysis/params.hpp"
#include "sim/parallel_section.hpp"
#include "util/math.hpp"

namespace mcmm {

namespace {

/// The contiguous (alpha/r) x (alpha/c) region of the current C tile
/// owned by core `core`, clipped to the (possibly ragged) tile extent.
struct CoreRegion {
  Range rows;
  Range cols;
  bool empty() const { return rows.empty() || cols.empty(); }
};

CoreRegion core_region(int core, const Grid& grid, std::int64_t side_r,
                       std::int64_t side_c, std::int64_t ti, std::int64_t tj) {
  const std::int64_t ci = core % grid.r;
  const std::int64_t cj = core / grid.r;
  CoreRegion r;
  r.rows = Range{std::min(ci * side_r, ti), std::min((ci + 1) * side_r, ti)};
  r.cols = Range{std::min(cj * side_c, tj), std::min((cj + 1) * side_c, tj)};
  return r;
}

}  // namespace

void Tradeoff::run(Machine& machine, const Problem& prob,
                   const MachineConfig& declared) const {
  prob.validate();
  MCMM_REQUIRE(machine.cores() == declared.p,
               "Tradeoff: declared p differs from the machine");
  const TradeoffParams params =
      pinned_ ? *pinned_ : tradeoff_params(declared);
  if (pinned_) {
    MCMM_REQUIRE(params.alpha >= 1 && params.beta >= 1 && params.mu >= 1 &&
                     params.grid.cores() >= 1,
                 "Tradeoff: pinned parameters must be positive");
    MCMM_REQUIRE(params.grid.cores() == declared.p,
                 "Tradeoff: pinned grid inconsistent with p");
    MCMM_REQUIRE(params.alpha % params.grain() == 0,
                 "Tradeoff: pinned alpha must be a multiple of mu*lcm(r,c)");
    MCMM_REQUIRE(
        params.alpha * params.alpha + 2 * params.alpha * params.beta <=
            declared.cs,
        "Tradeoff: pinned (alpha, beta) exceed the declared shared cache");
    MCMM_REQUIRE(1 + params.mu + params.mu * params.mu <= declared.cd,
                 "Tradeoff: pinned mu exceeds the declared distributed cache");
  }
  const std::int64_t alpha = params.alpha;
  const std::int64_t beta = params.beta;
  const std::int64_t mu = params.mu;
  const Grid grid = params.grid;
  // Multiples of mu by construction (alpha is a multiple of mu*lcm(r,c)).
  const std::int64_t region_rows = alpha / grid.r;
  const std::int64_t region_cols = alpha / grid.c;
  const int p = machine.cores();
  // On a square grid with alpha == sqrt(p) mu each core owns exactly one
  // sub-block, which then stays resident for the whole tile (the paper's
  // special case).
  const bool persistent_c = params.persistent_c();
  ParallelSection par(machine);

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += alpha) {
    const std::int64_t ti = std::min(alpha, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += alpha) {
      const std::int64_t tj = std::min(alpha, prob.n - j0);

      // Stage the C tile in the shared cache.
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.load_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
      if (persistent_c) {
        for (int c = 0; c < p; ++c) {
          const CoreRegion r = core_region(c, grid, region_rows, region_cols, ti, tj);
          for (std::int64_t ii = r.rows.lo; ii < r.rows.hi; ++ii) {
            for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
              par.load_distributed(c, BlockId::c(i0 + ii, j0 + jj));
            }
          }
        }
        par.run();
      }

      for (std::int64_t k0 = 0; k0 < prob.z; k0 += beta) {
        const std::int64_t kb = std::min(beta, prob.z - k0);
        // Stage the beta-deep panels of B (rows) and A (columns).
        for (std::int64_t kk = 0; kk < kb; ++kk) {
          for (std::int64_t jj = 0; jj < tj; ++jj) {
            machine.load_shared(BlockId::b(k0 + kk, j0 + jj));
          }
        }
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < kb; ++kk) {
            machine.load_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }

        for (int c = 0; c < p; ++c) {
          const CoreRegion r = core_region(c, grid, region_rows, region_cols, ti, tj);
          if (r.empty()) continue;
          // Cycle the core's mu x mu sub-blocks through its cache; each
          // accumulates the whole k-panel before being written back.
          for (std::int64_t si = r.rows.lo; si < r.rows.hi; si += mu) {
            const std::int64_t se_i = std::min(si + mu, r.rows.hi);
            for (std::int64_t sj = r.cols.lo; sj < r.cols.hi; sj += mu) {
              const std::int64_t se_j = std::min(sj + mu, r.cols.hi);
              if (!persistent_c) {
                for (std::int64_t ii = si; ii < se_i; ++ii) {
                  for (std::int64_t jj = sj; jj < se_j; ++jj) {
                    par.load_distributed(c, BlockId::c(i0 + ii, j0 + jj));
                  }
                }
              }
              for (std::int64_t kk = 0; kk < kb; ++kk) {
                for (std::int64_t jj = sj; jj < se_j; ++jj) {
                  par.load_distributed(c, BlockId::b(k0 + kk, j0 + jj));
                }
                for (std::int64_t ii = si; ii < se_i; ++ii) {
                  const BlockId a = BlockId::a(i0 + ii, k0 + kk);
                  par.load_distributed(c, a);
                  for (std::int64_t jj = sj; jj < se_j; ++jj) {
                    par.fma(c, i0 + ii, j0 + jj, k0 + kk);
                  }
                  par.evict_distributed(c, a);
                }
                for (std::int64_t jj = sj; jj < se_j; ++jj) {
                  par.evict_distributed(c, BlockId::b(k0 + kk, j0 + jj));
                }
              }
              if (!persistent_c) {
                for (std::int64_t ii = si; ii < se_i; ++ii) {
                  for (std::int64_t jj = sj; jj < se_j; ++jj) {
                    par.evict_distributed(c, BlockId::c(i0 + ii, j0 + jj));
                  }
                }
              }
            }
          }
        }
        par.run();

        for (std::int64_t kk = 0; kk < kb; ++kk) {
          for (std::int64_t jj = 0; jj < tj; ++jj) {
            machine.evict_shared(BlockId::b(k0 + kk, j0 + jj));
          }
        }
        for (std::int64_t ii = 0; ii < ti; ++ii) {
          for (std::int64_t kk = 0; kk < kb; ++kk) {
            machine.evict_shared(BlockId::a(i0 + ii, k0 + kk));
          }
        }
      }

      if (persistent_c) {
        for (int c = 0; c < p; ++c) {
          const CoreRegion r = core_region(c, grid, region_rows, region_cols, ti, tj);
          for (std::int64_t ii = r.rows.lo; ii < r.rows.hi; ++ii) {
            for (std::int64_t jj = r.cols.lo; jj < r.cols.hi; ++jj) {
              par.evict_distributed(c, BlockId::c(i0 + ii, j0 + jj));
            }
          }
        }
        par.run();
      }
      for (std::int64_t ii = 0; ii < ti; ++ii) {
        for (std::int64_t jj = 0; jj < tj; ++jj) {
          machine.evict_shared(BlockId::c(i0 + ii, j0 + jj));
        }
      }
    }
  }
}

}  // namespace mcmm
