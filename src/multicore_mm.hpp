// Umbrella public header for the multicore_mm library: cache-aware matrix
// product algorithms for multicore architectures, reproducing Jacquelin,
// Marchal & Robert, "Complexity analysis and performance evaluation of
// matrix product on multicore architectures" (ICPP 2009 / RRLIP2009-09).
//
// Layers (each usable independently):
//   sim/       two-level inclusive cache-hierarchy simulator (LRU + IDEAL)
//   analysis/  lower bounds, parameter solvers, closed-form predictions
//   alg/       the six simulated schedules
//   exp/       experiment driver and sweep helpers (the paper's settings)
//   gemm/      real-data multithreaded executions of the schedules
//   hw/        host calibration: topology, perf counters, bandwidths,
//              and the mcmm-machine-v1 profile
//   trace/     access-trace capture, replay and reuse-distance analysis
//   lu/        LU factorization extension (the paper's future work)
//   verify/    invariant auditor (capacity, inclusion, races, bounds)
#pragma once

#include "alg/algorithm.hpp"
#include "alg/cannon.hpp"
#include "alg/distributed_opt.hpp"
#include "alg/equal.hpp"
#include "alg/outer_product.hpp"
#include "alg/registry.hpp"
#include "alg/shared_opt.hpp"
#include "alg/tradeoff.hpp"
#include "analysis/bounds.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "exp/experiment.hpp"
#include "exp/sweep.hpp"
#include "exp/timeline.hpp"
#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/parallel_gemm.hpp"
#include "gemm/thread_pool.hpp"
#include "gemm/validate.hpp"
#include "hw/bandwidth.hpp"
#include "hw/machine_profile.hpp"
#include "hw/perf_counters.hpp"
#include "hw/topology.hpp"
#include "inner/kernel_sim.hpp"
#include "inner/line_cache.hpp"
#include "hier/hier_config.hpp"
#include "hier/hier_machine.hpp"
#include "hier/hier_max_reuse.hpp"
#include "lu/lu_kernel.hpp"
#include "mw/master_worker.hpp"
#include "lu/lu_pivot.hpp"
#include "lu/lu_sim.hpp"
#include "lu/parallel_lu.hpp"
#include "sim/audit_hook.hpp"
#include "sim/block_id.hpp"
#include "sim/cache_stats.hpp"
#include "sim/ideal_cache.hpp"
#include "sim/lru_cache.hpp"
#include "sim/machine.hpp"
#include "sim/machine_config.hpp"
#include "sim/parallel_section.hpp"
#include "sim/problem.hpp"
#include "sim/set_assoc_cache.hpp"
#include "trace/belady.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "verify/invariant_auditor.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
