// Multi-level cache hierarchies — the paper's closing future-work item:
// "designing efficient algorithms for clusters of multicores: we expect
// yet another level of hierarchy (or tiling) in the algorithmic
// specification to be required".
//
// The machine is a tree: main memory feeds one cache at level 0 (the
// outermost), every cache at level i feeds `fanout` caches at level i+1,
// and each innermost cache serves exactly one core.  The paper's
// two-level multicore is the special case
//   level 0: {CS, fanout = p, sigma_S},  level 1: {CD, fanout = 1, sigma_D}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_config.hpp"

namespace mcmm {

struct LevelSpec {
  std::int64_t capacity = 1;  ///< blocks per cache at this level
  int fanout = 1;             ///< child caches per cache (1 at the bottom)
  double bandwidth = 1.0;     ///< blocks/time from the level above
};

struct HierConfig {
  /// levels[0] is the outermost (fed by memory); levels.back() is the
  /// per-core level and must have fanout == 1.
  std::vector<LevelSpec> levels;

  int num_levels() const { return static_cast<int>(levels.size()); }

  /// Number of caches at `level` (product of fanouts above it).
  int caches_at(int level) const;

  /// Total cores == caches at the innermost level.
  int cores() const;

  /// Throws mcmm::Error unless every level is sane and inclusive
  /// (capacity_i >= fanout_i * capacity_{i+1}, so a parent can hold the
  /// union of its children).
  void validate() const;

  /// The paper's two-level machine as a hierarchy.
  static HierConfig from_flat(const MachineConfig& cfg);

  /// A three-level "cluster of multicores" (the shape the paper's
  /// conclusion anticipates): one cluster-level cache over `nodes`
  /// node-shared caches, each over `p` cores with private caches.
  static HierConfig cluster_of_multicores(std::int64_t cluster_cache,
                                          int nodes,
                                          std::int64_t node_cache, int p,
                                          std::int64_t private_cache);

  std::string describe() const;
};

}  // namespace mcmm
