#include "hier/hier_max_reuse.hpp"

#include <algorithm>

#include "analysis/bounds.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {

HierParams hier_max_reuse_params(const HierConfig& cfg) {
  cfg.validate();
  const int levels = cfg.num_levels();
  HierParams out;
  out.mu = max_reuse_parameter(cfg.levels.back().capacity);
  MCMM_REQUIRE(out.mu >= 1,
               "hier_max_reuse: per-core cache too small (capacity < 3)");
  out.side.assign(static_cast<std::size_t>(levels), 0);
  out.sqrt_fanout.assign(static_cast<std::size_t>(levels), 1);
  out.side[static_cast<std::size_t>(levels - 1)] = out.mu;
  for (int l = levels - 2; l >= 0; --l) {
    const int fanout = cfg.levels[static_cast<std::size_t>(l)].fanout;
    MCMM_REQUIRE(is_perfect_square(fanout),
                 "hier_max_reuse: every fanout must be a perfect square");
    out.sqrt_fanout[static_cast<std::size_t>(l)] = isqrt(fanout);
    out.side[static_cast<std::size_t>(l)] =
        out.sqrt_fanout[static_cast<std::size_t>(l)] *
        out.side[static_cast<std::size_t>(l + 1)];
  }
  return out;
}

namespace {

/// The (row, col) offset of a core's mu x mu sub-block inside the
/// outermost tile, composed from its grid position at every level.
struct CoreOffset {
  std::int64_t i = 0;
  std::int64_t j = 0;
};

CoreOffset core_offset(const HierConfig& cfg, const HierParams& params,
                       int core) {
  CoreOffset off;
  // Walk from the leaf upwards: at each level, the core's ancestor is the
  // (idx % fanout)-th child of its parent, placed on a sqrt(f) x sqrt(f)
  // grid of side side[l+1] tiles.
  int idx = core;
  for (int l = cfg.num_levels() - 2; l >= 0; --l) {
    const int fanout = cfg.levels[static_cast<std::size_t>(l)].fanout;
    const int child = idx % fanout;
    const std::int64_t sf = params.sqrt_fanout[static_cast<std::size_t>(l)];
    off.i += (child % sf) * params.side[static_cast<std::size_t>(l + 1)];
    off.j += (child / sf) * params.side[static_cast<std::size_t>(l + 1)];
    idx /= fanout;
  }
  return off;
}

}  // namespace

HierConfig hier_declared_half(const HierConfig& physical) {
  HierConfig out = physical;
  for (auto& level : out.levels) {
    level.capacity = std::max<std::int64_t>(level.capacity / 2, 1);
  }
  // The leaf must still fit a 1 + mu + mu^2 working set (mu = 1 needs 3).
  out.levels.back().capacity =
      std::max<std::int64_t>(out.levels.back().capacity,
                             std::min<std::int64_t>(
                                 physical.levels.back().capacity, 3));
  return out;
}

HierParams run_hier_max_reuse(HierMachine& machine, const Problem& prob) {
  const HierParams params =
      hier_max_reuse_params(hier_declared_half(machine.config()));
  run_hier_max_reuse(machine, prob, params);
  return params;
}

void run_hier_max_reuse(HierMachine& machine, const Problem& prob,
                        const HierParams& params) {
  prob.validate();
  const HierConfig& cfg = machine.config();
  MCMM_REQUIRE(static_cast<int>(params.side.size()) == cfg.num_levels(),
               "run_hier_max_reuse: parameter/machine level mismatch");
  const int cores = machine.cores();
  const std::int64_t top = params.side[0];
  const std::int64_t mu = params.mu;

  const std::int64_t fmas_before = machine.total_fmas();

  // Per-core FMA queues for one k step, dispatched round-robin (the same
  // lockstep interleaving as sim::ParallelSection).
  struct Op {
    std::int32_t i, j;
  };
  std::vector<std::vector<Op>> queues(static_cast<std::size_t>(cores));
  std::vector<CoreOffset> offsets;
  offsets.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    offsets.push_back(core_offset(cfg, params, c));
  }

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += top) {
    const std::int64_t ti = std::min(top, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += top) {
      const std::int64_t tj = std::min(top, prob.n - j0);
      for (std::int64_t k = 0; k < prob.z; ++k) {
        for (int c = 0; c < cores; ++c) {
          const CoreOffset& off = offsets[static_cast<std::size_t>(c)];
          const std::int64_t ri = std::min(off.i + mu, ti);
          const std::int64_t rj = std::min(off.j + mu, tj);
          for (std::int64_t ii = std::min(off.i, ti); ii < ri; ++ii) {
            for (std::int64_t jj = std::min(off.j, tj); jj < rj; ++jj) {
              queues[static_cast<std::size_t>(c)].push_back(
                  Op{static_cast<std::int32_t>(i0 + ii),
                     static_cast<std::int32_t>(j0 + jj)});
            }
          }
        }
        // Round-robin dispatch, one FMA per core per turn.
        std::vector<std::size_t> next(queues.size(), 0);
        bool progressed = true;
        while (progressed) {
          progressed = false;
          for (std::size_t c = 0; c < queues.size(); ++c) {
            if (next[c] < queues[c].size()) {
              const Op& op = queues[c][next[c]++];
              machine.fma(static_cast<int>(c), op.i, op.j, k);
              progressed = true;
            }
          }
        }
        for (auto& q : queues) q.clear();
      }
    }
  }
  MCMM_ASSERT(machine.total_fmas() - fmas_before == prob.fmas(),
              "hier_max_reuse: block FMA count does not match m*n*z");
}

std::vector<double> hier_predicted_misses(const HierConfig& topology,
                                          const HierParams& params,
                                          const Problem& prob) {
  MCMM_REQUIRE(static_cast<int>(params.side.size()) == topology.num_levels(),
               "hier_predicted_misses: parameter/topology level mismatch");
  const double mn = static_cast<double>(prob.m) * static_cast<double>(prob.n);
  const double mnz = mn * static_cast<double>(prob.z);
  std::vector<double> out;
  for (int l = 0; l < topology.num_levels(); ++l) {
    const double n_l = static_cast<double>(topology.caches_at(l));
    const double side = static_cast<double>(params.side[static_cast<std::size_t>(l)]);
    out.push_back(mn / n_l + 2.0 * mnz / (n_l * side));
  }
  return out;
}

std::vector<double> hier_lower_bounds(const HierConfig& cfg,
                                      const Problem& prob) {
  const double mnz = static_cast<double>(prob.fmas());
  std::vector<double> out;
  for (int l = 0; l < cfg.num_levels(); ++l) {
    const double n_l = static_cast<double>(cfg.caches_at(l));
    out.push_back(mnz / n_l *
                  ccr_lower_bound(cfg.levels[static_cast<std::size_t>(l)].capacity));
  }
  return out;
}

void replay_trace(const Trace& trace, HierMachine& machine) {
  for (const AccessEvent& e : trace.events()) {
    MCMM_REQUIRE(e.core >= 0 && e.core < machine.cores(),
                 "replay_trace: event core exceeds machine cores");
    machine.access(e.core, e.block(), e.rw());
  }
}

}  // namespace mcmm
