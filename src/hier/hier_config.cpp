#include "hier/hier_config.hpp"

#include "util/error.hpp"

namespace mcmm {

int HierConfig::caches_at(int level) const {
  MCMM_REQUIRE(level >= 0 && level < num_levels(),
               "HierConfig::caches_at: bad level");
  int n = 1;
  for (int i = 0; i < level; ++i) n *= levels[static_cast<std::size_t>(i)].fanout;
  return n;
}

int HierConfig::cores() const {
  MCMM_REQUIRE(!levels.empty(), "HierConfig: no levels");
  return caches_at(num_levels() - 1);
}

void HierConfig::validate() const {
  MCMM_REQUIRE(!levels.empty(), "HierConfig: need at least one level");
  MCMM_REQUIRE(levels.back().fanout == 1,
               "HierConfig: the innermost level must have fanout 1 (one "
               "core per cache)");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelSpec& l = levels[i];
    MCMM_REQUIRE(l.capacity >= 1, "HierConfig: capacity must be >= 1");
    MCMM_REQUIRE(l.fanout >= 1, "HierConfig: fanout must be >= 1");
    MCMM_REQUIRE(l.bandwidth > 0, "HierConfig: bandwidth must be positive");
    if (i + 1 < levels.size()) {
      MCMM_REQUIRE(l.capacity >=
                       static_cast<std::int64_t>(l.fanout) *
                           levels[i + 1].capacity,
                   "HierConfig: inclusivity needs capacity_i >= fanout_i * "
                   "capacity_{i+1}");
    }
  }
}

HierConfig HierConfig::from_flat(const MachineConfig& cfg) {
  cfg.validate();
  HierConfig out;
  out.levels.push_back(LevelSpec{cfg.cs, cfg.p, cfg.sigma_s});
  out.levels.push_back(LevelSpec{cfg.cd, 1, cfg.sigma_d});
  return out;
}

HierConfig HierConfig::cluster_of_multicores(std::int64_t cluster_cache,
                                             int nodes,
                                             std::int64_t node_cache, int p,
                                             std::int64_t private_cache) {
  HierConfig out;
  out.levels.push_back(LevelSpec{cluster_cache, nodes, 1.0});
  out.levels.push_back(LevelSpec{node_cache, p, 1.0});
  out.levels.push_back(LevelSpec{private_cache, 1, 1.0});
  out.validate();
  return out;
}

std::string HierConfig::describe() const {
  std::string out;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) out += " > ";
    out += "L";
    out += std::to_string(i);
    out += "[cap=";
    out += std::to_string(levels[i].capacity);
    out += " x";
    out += std::to_string(caches_at(static_cast<int>(i)));
    out += "]";
  }
  return out;
}

}  // namespace mcmm
