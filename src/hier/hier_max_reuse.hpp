// The Maximum Reuse Algorithm generalised to an arbitrary number of cache
// levels — the "yet another level of tiling in the algorithmic
// specification" the paper's conclusion predicts for clusters of
// multicores.
//
// Construction: the innermost tile side is mu (largest with
// 1 + mu + mu^2 <= capacity of the per-core level, as in Algorithm 2);
// every level above multiplies the side by sqrt(fanout), so the tile of a
// level-l cache splits into a sqrt(f) x sqrt(f) grid of its children's
// tiles.  Each core keeps its mu x mu C sub-block hot until fully
// computed while fragments of A and B stream down the tree — Algorithm 2
// is exactly the two-level instance.
//
// Under LRU the level-l caches keep their C sub-tiles resident
// (capacity_l >= fanout_l * capacity_{l+1} recursively covers
// side^2 + streaming), so per cache at level l with n_l caches:
//
//   misses_l  ~  mn/n_l + 2mnz/(n_l * side_l)
//   bound_l   >= (mnz/n_l) * sqrt(27 / (8 * capacity_l))
#pragma once

#include <cstdint>
#include <vector>

#include "hier/hier_machine.hpp"
#include "sim/problem.hpp"
#include "trace/trace.hpp"

namespace mcmm {

struct HierParams {
  std::int64_t mu = 0;                  ///< innermost tile side
  std::vector<std::int64_t> side;       ///< C tile side per level (side[0] outermost)
  std::vector<std::int64_t> sqrt_fanout;///< grid side per level
};

/// Derive the per-level tile sides.  Every non-leaf fanout must be a
/// perfect square and the per-core capacity must fit 1 + mu + mu^2.
HierParams hier_max_reuse_params(const HierConfig& declared);

/// The LRU-50 idea lifted to the hierarchy: plan with half of every
/// capacity (leaf floored at 3 blocks) and leave the other half to the
/// LRU policy as prefetch slack.  Planning with the full capacities makes
/// the per-k working set (side^2 + 2*side) overflow exact-fit caches and
/// thrash, exactly as the paper's Figure 5 LRU(C) curve shows.
HierConfig hier_declared_half(const HierConfig& physical);

/// Run the generalised schedule on the machine (LRU tree) with explicit
/// parameters.  Performs exactly m*n*z block FMAs.
void run_hier_max_reuse(HierMachine& machine, const Problem& prob,
                        const HierParams& params);

/// Convenience: plan with hier_declared_half(machine.config()) and run.
/// Returns the parameters used.
HierParams run_hier_max_reuse(HierMachine& machine, const Problem& prob);

/// Closed-form per-*cache* miss estimates for level l (large divisible
/// matrices):  mn/n_l + 2mnz/(n_l * side_l), with n_l caches at level l
/// taken from `topology` and the tile sides from `params`.
std::vector<double> hier_predicted_misses(const HierConfig& topology,
                                          const HierParams& params,
                                          const Problem& prob);

/// Loomis-Whitney-style per-level lower bounds.
std::vector<double> hier_lower_bounds(const HierConfig& cfg,
                                      const Problem& prob);

/// Replay a trace recorded on a flat Machine into a hierarchy with the
/// same core count (for baseline comparisons on multi-level machines).
void replay_trace(const Trace& trace, HierMachine& machine);

}  // namespace mcmm
