// The multi-level machine: an inclusive tree of fully-associative LRU
// caches (the natural generalisation of sim::Machine's LRU mode to the
// paper's anticipated "clusters of multicores").
//
// Accesses enter at a core's leaf cache and propagate towards memory
// until they hit; the block is then installed along the whole path.  An
// eviction at level i back-invalidates the victim in the entire subtree
// below, preserving inclusivity; dirty data is folded upwards.  With two
// levels this machine is access-for-access identical to Machine under
// Policy::kLru (asserted by a differential test).
#pragma once

#include <cstdint>
#include <vector>

#include "hier/hier_config.hpp"
#include "sim/block_id.hpp"
#include "sim/lru_cache.hpp"
#include "sim/machine.hpp"

namespace mcmm {

/// Miss statistics for one hierarchy level.
struct LevelStats {
  std::vector<std::int64_t> misses;  ///< per cache at this level
  std::vector<std::int64_t> hits;

  std::int64_t total_misses() const;
  /// The level analogue of the paper's MD: max over the level's caches.
  std::int64_t max_misses() const;
};

class HierMachine {
public:
  explicit HierMachine(const HierConfig& cfg);

  const HierConfig& config() const { return cfg_; }
  int cores() const { return cfg_.cores(); }

  /// One data access by `core` (entering at its leaf cache).
  void access(int core, BlockId b, Rw rw);

  /// C[i,j] += A[i,k] * B[k,j] on `core` (three accesses + work tally).
  void fma(int core, std::int64_t i, std::int64_t j, std::int64_t k);

  const LevelStats& level_stats(int level) const;
  std::int64_t writebacks_to_memory() const { return wb_memory_; }
  const std::vector<std::int64_t>& fmas() const { return fmas_; }
  std::int64_t total_fmas() const;

  /// Generalised data access time: sum over levels of
  /// max-misses(level) / bandwidth(level).
  double tdata() const;

  /// Abort unless every cache's contents are contained in its parent.
  void check_inclusive() const;

private:
  LruCache& cache(int level, int index);
  /// The index of the level-`level` cache on core's path.
  int path_index(int core, int level) const;
  /// Evict `victim` from the whole subtree rooted at (level, index),
  /// folding dirty flags upwards into (level, index)'s copy.
  void back_invalidate(int level, int index, BlockId victim);

  HierConfig cfg_;
  std::vector<std::vector<LruCache>> caches_;  // [level][index]
  std::vector<LevelStats> stats_;
  std::vector<std::int64_t> fmas_;
  std::int64_t wb_memory_ = 0;
};

}  // namespace mcmm
