#include "hier/hier_machine.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mcmm {

std::int64_t LevelStats::total_misses() const {
  return std::accumulate(misses.begin(), misses.end(), std::int64_t{0});
}

std::int64_t LevelStats::max_misses() const {
  if (misses.empty()) return 0;
  return *std::max_element(misses.begin(), misses.end());
}

HierMachine::HierMachine(const HierConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  const int levels = cfg_.num_levels();
  caches_.resize(static_cast<std::size_t>(levels));
  stats_.resize(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    const int n = cfg_.caches_at(l);
    auto& row = caches_[static_cast<std::size_t>(l)];
    row.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      row.emplace_back(cfg_.levels[static_cast<std::size_t>(l)].capacity);
    }
    stats_[static_cast<std::size_t>(l)].misses.assign(static_cast<std::size_t>(n), 0);
    stats_[static_cast<std::size_t>(l)].hits.assign(static_cast<std::size_t>(n), 0);
  }
  fmas_.assign(static_cast<std::size_t>(cfg_.cores()), 0);
}

LruCache& HierMachine::cache(int level, int index) {
  return caches_[static_cast<std::size_t>(level)][static_cast<std::size_t>(index)];
}

int HierMachine::path_index(int core, int level) const {
  int idx = core;
  for (int l = cfg_.num_levels() - 1; l > level; --l) {
    idx /= cfg_.levels[static_cast<std::size_t>(l - 1)].fanout;
  }
  return idx;
}

void HierMachine::back_invalidate(int level, int index, BlockId victim) {
  const int last = cfg_.num_levels() - 1;
  if (level >= last) return;
  const int fanout = cfg_.levels[static_cast<std::size_t>(level)].fanout;
  bool child_dirty = false;
  for (int c = index * fanout; c < (index + 1) * fanout; ++c) {
    // Depth-first: fold grandchildren dirtiness into the child first.
    back_invalidate(level + 1, c, victim);
    if (auto dirty = cache(level + 1, c).erase(victim)) {
      child_dirty = child_dirty || *dirty;
    }
  }
  if (child_dirty) cache(level, index).mark_dirty(victim);
}

void HierMachine::access(int core, BlockId b, Rw rw) {
  MCMM_ASSERT(core >= 0 && core < cores(), "HierMachine::access: bad core");
  const int levels = cfg_.num_levels();

  // Walk from the leaf towards memory until the block is found.
  int hit_level = -1;  // -1 == served from memory
  for (int l = levels - 1; l >= 0; --l) {
    const int idx = path_index(core, l);
    auto& st = stats_[static_cast<std::size_t>(l)];
    if (cache(l, idx).touch(b)) {
      ++st.hits[static_cast<std::size_t>(idx)];
      hit_level = l;
      break;
    }
    ++st.misses[static_cast<std::size_t>(idx)];
  }

  // Install along the path, parent before child (inclusivity).
  const int first_missing = hit_level + 1;
  for (int l = first_missing; l < levels; ++l) {
    const int idx = path_index(core, l);
    LruCache& c = cache(l, idx);
    if (c.size() == c.capacity()) {
      // Fold the victim's dirty data out of the subtree before evicting.
      back_invalidate(l, idx, *c.lru_block());
    }
    if (auto evicted = c.insert(b, /*dirty=*/false)) {
      if (evicted->dirty) {
        if (l == 0) {
          ++wb_memory_;
        } else {
          cache(l - 1, path_index(core, l - 1)).mark_dirty(evicted->block);
        }
      }
    }
  }
  if (rw == Rw::kWrite) {
    cache(levels - 1, core).mark_dirty(b);
  }
}

void HierMachine::fma(int core, std::int64_t i, std::int64_t j,
                      std::int64_t k) {
  access(core, BlockId::a(i, k), Rw::kRead);
  access(core, BlockId::b(k, j), Rw::kRead);
  access(core, BlockId::c(i, j), Rw::kWrite);
  ++fmas_[static_cast<std::size_t>(core)];
}

const LevelStats& HierMachine::level_stats(int level) const {
  MCMM_REQUIRE(level >= 0 && level < cfg_.num_levels(),
               "HierMachine::level_stats: bad level");
  return stats_[static_cast<std::size_t>(level)];
}

std::int64_t HierMachine::total_fmas() const {
  return std::accumulate(fmas_.begin(), fmas_.end(), std::int64_t{0});
}

double HierMachine::tdata() const {
  double t = 0;
  for (int l = 0; l < cfg_.num_levels(); ++l) {
    t += static_cast<double>(stats_[static_cast<std::size_t>(l)].max_misses()) /
         cfg_.levels[static_cast<std::size_t>(l)].bandwidth;
  }
  return t;
}

void HierMachine::check_inclusive() const {
  for (int l = 1; l < cfg_.num_levels(); ++l) {
    const int fanout = cfg_.levels[static_cast<std::size_t>(l - 1)].fanout;
    for (int i = 0; i < cfg_.caches_at(l); ++i) {
      const auto& child = caches_[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      const auto& parent =
          caches_[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(i / fanout)];
      for (BlockId b : child.contents_mru_order()) {
        MCMM_ASSERT(parent.contains(b),
                    ("hier inclusivity violated at level " + std::to_string(l) +
                     " for " + b.str())
                        .c_str());
      }
    }
  }
}

}  // namespace mcmm
