#include "hw/bandwidth.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

namespace {

/// Optimization barrier: forces the accumulated checksum to be computed
/// without pulling <benchmark> into the library.
volatile double g_bandwidth_sink = 0;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

double BandwidthEstimate::sigma_ratio() const {
  if (!measured || mem_gbs <= 0 || llc_gbs <= 0) return 0.5;
  return mem_gbs / (mem_gbs + llc_gbs);
}

double stream_read_gbs(std::int64_t bytes, std::int64_t stride_bytes,
                       int repeats, int passes) {
  MCMM_REQUIRE(bytes >= 4096, "stream_read_gbs: buffer must be >= 4 KiB");
  MCMM_REQUIRE(stride_bytes >= 8 && stride_bytes % 8 == 0,
               "stream_read_gbs: stride must be a positive multiple of 8");
  MCMM_REQUIRE(repeats >= 1 && passes >= 1,
               "stream_read_gbs: repeats and passes must be >= 1");
  const std::int64_t n = bytes / 8;
  const std::int64_t stride = stride_bytes / 8;
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);

  // Touched lines per pass; with one double read per line the transferred
  // volume is the line-granular footprint, not 8 bytes per access.
  const std::int64_t lines = (n + stride - 1) / stride;
  const double bytes_per_pass =
      static_cast<double>(lines) * static_cast<double>(stride_bytes);

  double best_gbs = 0;
  for (int rep = 0; rep < repeats + 1; ++rep) {  // +1: first pass warms up
    double s0 = 0;
    double s1 = 0;
    double s2 = 0;
    double s3 = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      std::int64_t i = 0;
      for (; i + 3 * stride < n; i += 4 * stride) {
        s0 += data[static_cast<std::size_t>(i)];
        s1 += data[static_cast<std::size_t>(i + stride)];
        s2 += data[static_cast<std::size_t>(i + 2 * stride)];
        s3 += data[static_cast<std::size_t>(i + 3 * stride)];
      }
      for (; i < n; i += stride) {
        s0 += data[static_cast<std::size_t>(i)];
      }
    }
    const double secs = seconds_since(t0);
    g_bandwidth_sink = g_bandwidth_sink + s0 + s1 + s2 + s3;
    if (rep == 0) continue;  // discard the cold-cache warm-up repetition
    if (secs > 0) {
      const double gbs = static_cast<double>(passes) * bytes_per_pass /
                         secs / 1e9;
      best_gbs = std::max(best_gbs, gbs);
    }
  }
  return best_gbs;
}

BandwidthEstimate measure_host_bandwidth(const HostTopology& topo,
                                         const BandwidthOptions& opt) {
  MCMM_REQUIRE(opt.repeats >= 1 && opt.passes >= 1,
               "measure_host_bandwidth: repeats and passes must be >= 1");
  const std::int64_t line = std::max<std::int64_t>(topo.line_bytes, 8);
  const std::int64_t shared = std::max<std::int64_t>(
      topo.shared_cache_bytes(), 1 << 20);
  const std::int64_t priv = std::max<std::int64_t>(
      topo.private_cache_bytes(), 32 << 10);

  BandwidthEstimate est;
  // DRAM stream: several LLCs, capped so the sweep stays seconds not
  // minutes even on big-cache servers (quick mode halves everything).
  const std::int64_t mem_cap = opt.quick ? (64LL << 20) : (256LL << 20);
  est.mem_buffer_bytes =
      std::min<std::int64_t>(mem_cap, shared * (opt.quick ? 2 : 4));
  // LLC stream: inside the shared cache, outside the private one.  Half
  // the LLC leaves room for the threads' other state; floor at 2x the
  // private cache so the stream cannot be served privately.
  est.llc_buffer_bytes = std::max<std::int64_t>(shared / 2, 2 * priv);
  est.llc_buffer_bytes = std::min(est.llc_buffer_bytes, shared);

  const int repeats = opt.quick ? std::min(opt.repeats, 2) : opt.repeats;
  est.mem_gbs = stream_read_gbs(est.mem_buffer_bytes, line, repeats,
                                opt.quick ? 1 : opt.passes);
  est.llc_gbs = stream_read_gbs(est.llc_buffer_bytes, line, repeats,
                                opt.passes * (opt.quick ? 2 : 4));
  est.measured = est.mem_gbs > 0 && est.llc_gbs > 0;
  return est;
}

}  // namespace mcmm
