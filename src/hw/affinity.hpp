// Topology -> thread-affinity glue for the real-execution schedules.
//
// The model gives every core its own private cache CD; on SMT parts the
// OS is free to land two workers on hyper-threads sharing one L2, which
// halves the private cache the model thinks each worker has.  This module
// turns a detected HostTopology into an explicit CPU list that spreads
// workers across distinct private-cache domains first (stride =
// l2_shared_by), wrapping onto SMT siblings only when there are more
// workers than domains.  Pinning is opt-in (--pin) and degrades to a
// no-op where unsupported.
#pragma once

#include <vector>

#include "gemm/thread_pool.hpp"
#include "hw/topology.hpp"

namespace mcmm {

/// Logical-CPU visit order that exhausts distinct L2 domains before SMT
/// siblings.  When `topo.l2_domain` carries a complete per-CPU map (live
/// sysfs detection) the order round-robins across the actual domains, so
/// split-sibling SMT numbering (siblings i and i + ncpu/2) is handled
/// correctly; otherwise it falls back to the contiguous-numbering stride
/// 0, s, 2s, ..., then 1, 1+s, ... for s = l2_shared_by.  Returns
/// `workers` entries (cycling through the permutation when workers exceed
/// logical_cpus).  Deterministic; requires workers >= 1.
std::vector<int> affinity_cpus(const HostTopology& topo, int workers);

/// Pin `pool`'s workers to affinity_cpus(topo, pool.workers()).  Returns
/// the number of workers actually pinned (0 when unsupported).
int pin_pool_to_host(ThreadPool& pool, const HostTopology& topo);

}  // namespace mcmm
