#include "hw/topology.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace mcmm {

namespace {

/// First line of a small sysfs file, stripped of trailing whitespace;
/// nullopt-style: returns false when the file is absent or unreadable.
bool read_line(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  while (!line.empty() &&
         (line.back() == '\n' || line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  *out = line;
  return true;
}

/// One (level, kind) cache entry aggregated across all CPUs: the largest
/// instance size and the widest sharing degree seen (hybrid parts report
/// different masks per cluster; the widest is the capacity-pressure case).
struct LevelInfo {
  std::int64_t size_bytes = 0;
  int shared_by = 0;
  bool seen = false;
  void merge(std::int64_t size, int shared) {
    if (size > size_bytes) size_bytes = size;
    if (shared > shared_by) shared_by = shared;
    seen = true;
  }
};

int sharing_degree(const std::filesystem::path& index_dir) {
  std::string text;
  if (read_line(index_dir / "shared_cpu_list", &text) && !text.empty()) {
    return count_cpu_list(text);
  }
  if (read_line(index_dir / "shared_cpu_map", &text) && !text.empty()) {
    return count_cpu_mask(text);
  }
  return 1;
}

}  // namespace

std::int64_t parse_cache_size(const std::string& text) {
  MCMM_REQUIRE(!text.empty(), "parse_cache_size: empty size string");
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &pos, 10);
  } catch (const std::exception&) {
    throw Error("mcmm: parse_cache_size: bad size string '" + text + "'");
  }
  MCMM_REQUIRE(pos > 0 && value >= 0,
               "parse_cache_size: bad size string '" + text + "'");
  std::int64_t bytes = value;
  if (pos < text.size()) {
    MCMM_REQUIRE(pos + 1 == text.size(),
                 "parse_cache_size: trailing garbage in '" + text + "'");
    switch (text[pos]) {
      case 'K': case 'k': bytes = value * (std::int64_t{1} << 10); break;
      case 'M': case 'm': bytes = value * (std::int64_t{1} << 20); break;
      case 'G': case 'g': bytes = value * (std::int64_t{1} << 30); break;
      default:
        throw Error("mcmm: parse_cache_size: unknown unit suffix in '" +
                    text + "'");
    }
  }
  return bytes;
}

int count_cpu_list(const std::string& list) {
  int count = 0;
  std::size_t pos = 0;
  try {
    while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
      const std::string token = list.substr(pos, comma - pos);
      const std::size_t dash = token.find('-');
      std::size_t used = 0;
      if (dash == std::string::npos) {
        const long long cpu = std::stoll(token, &used, 10);
        MCMM_REQUIRE(used == token.size() && cpu >= 0,
                     "count_cpu_list: bad token '" + token + "'");
        ++count;
      } else {
        const long long lo = std::stoll(token.substr(0, dash), &used, 10);
        MCMM_REQUIRE(used == dash && lo >= 0,
                     "count_cpu_list: bad range '" + token + "'");
        const long long hi = std::stoll(token.substr(dash + 1), &used, 10);
        MCMM_REQUIRE(used == token.size() - dash - 1 && hi >= lo,
                     "count_cpu_list: bad range '" + token + "'");
        count += static_cast<int>(hi - lo + 1);
      }
      pos = comma + 1;
    }
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("mcmm: count_cpu_list: bad list '" + list + "'");
  }
  MCMM_REQUIRE(count > 0, "count_cpu_list: empty list");
  return count;
}

std::vector<int> parse_cpu_list(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  try {
    while (pos < list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      const std::string token = list.substr(pos, comma - pos);
      const std::size_t dash = token.find('-');
      std::size_t used = 0;
      if (dash == std::string::npos) {
        const long long cpu = std::stoll(token, &used, 10);
        MCMM_REQUIRE(used == token.size() && cpu >= 0,
                     "parse_cpu_list: bad token '" + token + "'");
        cpus.push_back(static_cast<int>(cpu));
      } else {
        const long long lo = std::stoll(token.substr(0, dash), &used, 10);
        MCMM_REQUIRE(used == dash && lo >= 0,
                     "parse_cpu_list: bad range '" + token + "'");
        const long long hi = std::stoll(token.substr(dash + 1), &used, 10);
        MCMM_REQUIRE(used == token.size() - dash - 1 && hi >= lo,
                     "parse_cpu_list: bad range '" + token + "'");
        for (long long cpu = lo; cpu <= hi; ++cpu) {
          cpus.push_back(static_cast<int>(cpu));
        }
      }
      pos = comma + 1;
    }
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("mcmm: parse_cpu_list: bad list '" + list + "'");
  }
  MCMM_REQUIRE(!cpus.empty(), "parse_cpu_list: empty list");
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

std::vector<int> parse_cpu_mask(const std::string& mask) {
  // Strip the word separators: the remaining hex digits read most
  // significant first, so digit j from the right covers cpus 4j..4j+3.
  std::string digits;
  digits.reserve(mask.size());
  for (const char c : mask) {
    if (c == ',') continue;
    digits.push_back(c);
  }
  MCMM_REQUIRE(!digits.empty(), "parse_cpu_mask: empty mask");
  std::vector<int> cpus;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    const char c = digits[digits.size() - 1 - i];
    int nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      throw Error("mcmm: parse_cpu_mask: bad hex mask '" + mask + "'");
    }
    for (int bit = 0; bit < 4; ++bit) {
      if ((nibble >> bit) & 1) cpus.push_back(static_cast<int>(i) * 4 + bit);
    }
  }
  return cpus;
}

int count_cpu_mask(const std::string& mask) {
  int count = 0;
  bool any_digit = false;
  for (const char c : mask) {
    if (c == ',') continue;
    int nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      throw Error("mcmm: count_cpu_mask: bad hex mask '" + mask + "'");
    }
    any_digit = true;
    while (nibble != 0) {
      count += nibble & 1;
      nibble >>= 1;
    }
  }
  MCMM_REQUIRE(any_digit, "count_cpu_mask: empty mask");
  return count;
}

HostTopology fallback_topology() {
  HostTopology topo;
  const unsigned hw = std::thread::hardware_concurrency();
  topo.logical_cpus = hw >= 1 ? static_cast<int>(hw) : 1;
  topo.l3_shared_by = topo.logical_cpus;
  topo.source = "fallback";
  return topo;
}

HostTopology detect_host_topology(const std::string& sysfs_cpu_root) {
  namespace fs = std::filesystem;
  HostTopology topo = fallback_topology();

  std::error_code ec;
  int cpus = 0;
  while (fs::exists(fs::path(sysfs_cpu_root) / ("cpu" + std::to_string(cpus)),
                    ec) &&
         cpus < 1 << 14) {
    ++cpus;
  }
  if (cpus == 0) return topo;
  topo.logical_cpus = cpus;
  topo.l3_shared_by = cpus;

  LevelInfo l1d;
  LevelInfo l2;
  LevelInfo l3;
  std::int64_t line_bytes = 0;
  // Per-CPU L2 sharing sets -> small sequential domain ids (first-seen CPU
  // order).  Contiguity is NOT assumed: split-sibling SMT numbering
  // (siblings i and i+N/2) yields e.g. {0,4} {1,5} {2,6} {3,7}.
  std::vector<int> l2_dom(static_cast<std::size_t>(cpus), -1);
  std::map<std::string, int> l2_domain_ids;
  for (int cpu = 0; cpu < cpus; ++cpu) {
    const fs::path cache_dir =
        fs::path(sysfs_cpu_root) / ("cpu" + std::to_string(cpu)) / "cache";
    for (int index = 0; index < 32; ++index) {
      const fs::path dir = cache_dir / ("index" + std::to_string(index));
      if (!fs::exists(dir, ec)) break;
      // A malformed entry (truncated fixture, exotic driver) skips that
      // index only; whatever else parses still informs the profile.
      try {
        std::string text;
        if (!read_line(dir / "level", &text)) continue;
        const int level = static_cast<int>(std::stoll(text));
        if (!read_line(dir / "type", &text)) continue;
        if (text == "Instruction") continue;
        const bool data_or_unified = text == "Data" || text == "Unified";
        if (!data_or_unified) continue;
        if (!read_line(dir / "size", &text)) continue;
        const std::int64_t size = parse_cache_size(text);
        const int shared = sharing_degree(dir);
        if (read_line(dir / "coherency_line_size", &text)) {
          const std::int64_t line = std::stoll(text);
          if (line > line_bytes) line_bytes = line;
        }
        if (level == 1) {
          l1d.merge(size, shared);
        } else if (level == 2) {
          l2.merge(size, shared);
          if (l2_dom[static_cast<std::size_t>(cpu)] == -1) {
            // Canonicalise the sharing set (list preferred, mask fallback)
            // so equal sets map to one domain id regardless of spelling.
            std::vector<int> ids;
            if (read_line(dir / "shared_cpu_list", &text) && !text.empty()) {
              ids = parse_cpu_list(text);
            } else if (read_line(dir / "shared_cpu_map", &text) &&
                       !text.empty()) {
              ids = parse_cpu_mask(text);
            }
            if (!ids.empty()) {
              std::string key;
              for (const int id : ids) key += std::to_string(id) + ",";
              const auto [it, inserted] = l2_domain_ids.emplace(
                  key, static_cast<int>(l2_domain_ids.size()));
              l2_dom[static_cast<std::size_t>(cpu)] = it->second;
            }
          }
        } else if (level == 3) {
          l3.merge(size, shared);
        }
      } catch (const std::exception&) {
        continue;
      }
    }
  }

  if (!l1d.seen && !l2.seen && !l3.seen) return topo;  // cpu dirs, no caches
  topo.source = "sysfs";
  if (line_bytes > 0) topo.line_bytes = line_bytes;
  topo.l1d_bytes = l1d.seen ? l1d.size_bytes : 0;
  topo.l2_bytes = l2.seen ? l2.size_bytes : 0;
  topo.l3_bytes = l3.seen ? l3.size_bytes : 0;
  topo.l2_shared_by = l2.seen ? l2.shared_by : 1;
  topo.l3_shared_by = l3.seen ? l3.shared_by : topo.logical_cpus;
  // Only a complete per-CPU picture is usable for affinity plans; a single
  // unknown CPU means the stride fallback is the safer bet.
  if (l2.seen &&
      std::none_of(l2_dom.begin(), l2_dom.end(),
                   [](int domain) { return domain < 0; })) {
    topo.l2_domain = std::move(l2_dom);
  }
  return topo;
}

std::string HostTopology::describe() const {
  std::ostringstream out;
  out << logical_cpus << " cpus, L1d " << (l1d_bytes >> 10) << " KiB, L2 "
      << (l2_bytes >> 10) << " KiB x" << l2_shared_by << ", L3 "
      << (l3_bytes >> 10) << " KiB x" << l3_shared_by << ", line "
      << line_bytes << " B (" << source << ")";
  return out.str();
}

}  // namespace mcmm
