// Hardware performance counters for the model-vs-measurement experiments.
//
// PerfCounterSession wraps `perf_event_open(2)` around the small set of
// events the paper's model speaks about:
//
//   * LLC misses / references  — the shared-cache side (MS is the model's
//     count of q x q blocks loaded into the shared cache);
//   * L1d read misses          — the closest portable proxy for traffic
//     into the private per-core caches (the model's MD); true per-core-L2
//     misses need uncore/raw events that are not portable across vendors;
//   * cycles and instructions  — sanity and IPC context.
//
// Counters are opened per-process with `inherit`, so worker threads
// *created after the session* are counted too — create the session, then
// the ThreadPool, then measure deltas around each run.  `inherit` is
// incompatible with PERF_FORMAT_GROUP reads, so each event is a separate
// fd read individually; TIME_ENABLED/TIME_RUNNING are recorded per event
// and the multiplexing scale is reported with each sample.
//
// Graceful degradation is a hard requirement: on EPERM/EACCES (a
// kernel.perf_event_paranoid level that forbids unprivileged counting),
// ENOSYS/ENOENT (no PMU, seccomp), or any non-Linux platform, the session
// constructs fine, `counters_available()` is false, and every read returns
// zeros flagged `available=false` — callers never need privilege to run.
#pragma once

#include <cstdint>
#include <string>

namespace mcmm {

/// One snapshot (or delta) of the counter set.  `available == false` means
/// the values are meaningless zeros (no counters on this host / session).
struct CounterSample {
  bool available = false;
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t llc_misses = 0;
  std::int64_t llc_references = 0;
  std::int64_t l1d_misses = 0;
  /// Fraction of wall time the events were actually on a PMU (1.0 = no
  /// multiplexing); values are already scaled by 1/scale when < 1.
  double scale = 1.0;

  /// Component-wise difference end - begin (available iff both are).
  static CounterSample delta(const CounterSample& begin,
                             const CounterSample& end);
};

class PerfCounterSession {
public:
  struct Options {
    bool enabled = true;            ///< false: forced-degraded (--no-counters)
    bool simulate_denied = false;   ///< tests: behave as if EPERM'd
  };

  /// Opens the event set immediately (counting from construction, so child
  /// threads created afterwards inherit the events).  Never throws on
  /// missing permissions or platform support — check counters_available().
  explicit PerfCounterSession(Options opt);
  PerfCounterSession() : PerfCounterSession(Options{}) {}
  ~PerfCounterSession();

  PerfCounterSession(const PerfCounterSession&) = delete;
  PerfCounterSession& operator=(const PerfCounterSession&) = delete;

  /// True when at least the cycles leader opened; individual unsupported
  /// events read as zero.
  bool counters_available() const { return available_; }

  /// Why the session is degraded ("" when available): e.g.
  /// "perf_event_open: Permission denied (kernel.perf_event_paranoid=4?)".
  const std::string& degradation_reason() const { return reason_; }

  /// Cumulative counts since construction (zeros when degraded).
  CounterSample sample() const;

  /// Convenience bracket: begin() snapshots, end() returns the delta since
  /// the matching begin().
  void begin();
  CounterSample end();

  /// The host's kernel.perf_event_paranoid level, or `unknown_paranoid`
  /// when unreadable (non-Linux, masked /proc).
  static constexpr int kUnknownParanoid = -100;
  static int perf_event_paranoid();

  /// True when the binary was built with perf_event support compiled in.
  static bool platform_supported();

  /// Number of events in the set (cycles, instructions, LLC misses/refs,
  /// L1d read misses).
  static constexpr int kEvents = 5;

private:
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
  bool available_ = false;
  std::string reason_;
  CounterSample begin_;
};

}  // namespace mcmm
