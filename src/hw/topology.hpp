// Host cache-hierarchy detection for the calibration subsystem.
//
// The paper's machine model is parameterised by (p, CS, CD, sigma_S,
// sigma_D); everything downstream of `src/hw` derives those numbers from
// the *actual* host instead of the hard-coded "typical quad-core".  This
// module answers the topology half: core count, private (per-core) and
// shared (last-level) cache sizes, line size and sharing degrees, parsed
// from the Linux sysfs cache directory
//
//   /sys/devices/system/cpu/cpu*/cache/index*/{level,type,size,
//       coherency_line_size,shared_cpu_list,shared_cpu_map}
//
// The sysfs root is injectable so tests can run the parser against fixture
// trees (shared L3 / private L2, hybrid sharing masks, truncated trees).
// When the tree is absent or unreadable (non-Linux, containers with
// /sys masked) detection falls back to std::thread::hardware_concurrency
// plus the paper's 8 MB / 256 KB quad-core defaults, flagged via
// `source == "fallback"` so consumers can tell measured from assumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcmm {

/// What `detect_host_topology` learned about the machine.  Sizes are in
/// bytes; `*_shared_by` is the number of logical CPUs sharing one cache
/// instance (on hybrid parts where clusters differ, the largest degree
/// observed — the capacity-pressure worst case).
struct HostTopology {
  int logical_cpus = 1;
  std::int64_t line_bytes = 64;
  std::int64_t l1d_bytes = 32 << 10;
  std::int64_t l2_bytes = 256 << 10;   ///< per-core ("distributed") cache
  std::int64_t l3_bytes = 8 << 20;     ///< last-level ("shared") cache
  int l2_shared_by = 1;
  int l3_shared_by = 1;
  std::string source = "fallback";     ///< "sysfs" or "fallback"

  /// Per-CPU L2 domain id (l2_domain[cpu] = small integer; CPUs with equal
  /// ids share one L2 instance).  Ids are assigned in first-seen CPU order.
  /// Empty when sysfs did not expose a complete per-CPU L2 sharing picture
  /// (fallback topologies, truncated fixture trees, hand-built configs) —
  /// consumers must then fall back to the `l2_shared_by` stride heuristic.
  /// Live-detection only: not part of the mcmm-machine-v1 profile document.
  std::vector<int> l2_domain;

  bool detected() const { return source == "sysfs"; }

  /// The model's shared-cache size: the last level present (L3, or L2 on
  /// parts without one).
  std::int64_t shared_cache_bytes() const {
    return l3_bytes > 0 ? l3_bytes : l2_bytes;
  }
  /// The model's per-core distributed-cache size: the largest private
  /// level (L2 when it is private, else L1d).
  std::int64_t private_cache_bytes() const {
    return (l3_bytes > 0 && l2_bytes > 0) ? l2_bytes : l1d_bytes;
  }

  std::string describe() const;
};

/// Parse `sysfs_cpu_root` (default: the live /sys tree).  Never throws: a
/// missing or partial tree degrades to the defaults above, with
/// `source == "fallback"`; a parseable tree yields `source == "sysfs"`.
HostTopology detect_host_topology(
    const std::string& sysfs_cpu_root = "/sys/devices/system/cpu");

/// The pure fallback (hardware_concurrency + paper defaults), exposed so
/// callers can compare against it.
HostTopology fallback_topology();

/// Parse a sysfs cache size string ("32K", "8192K", "1M", "12582912").
/// Throws mcmm::Error on malformed input.
std::int64_t parse_cache_size(const std::string& text);

/// Number of CPUs named by a sysfs `shared_cpu_list` ("0-3", "0,4-5", "7").
/// Throws mcmm::Error on malformed input.
int count_cpu_list(const std::string& list);

/// Number of set bits in a sysfs `shared_cpu_map` hex mask, including the
/// comma-separated multi-word form ("ff", "0000000f", "ffffffff,00000003").
/// Throws mcmm::Error on malformed input.
int count_cpu_mask(const std::string& mask);

/// The CPU ids named by a sysfs `shared_cpu_list` ("0,4" -> {0, 4};
/// "0-3" -> {0, 1, 2, 3}), ascending and deduplicated.  Throws mcmm::Error
/// on malformed input.
std::vector<int> parse_cpu_list(const std::string& list);

/// The CPU ids set in a sysfs `shared_cpu_map` hex mask (most significant
/// word first in the comma-separated form), ascending.  Throws mcmm::Error
/// on malformed input.
std::vector<int> parse_cpu_mask(const std::string& mask);

}  // namespace mcmm
