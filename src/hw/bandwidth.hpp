// Streaming-bandwidth microbenchmarks: the sigma_S / sigma_D half of the
// machine profile.
//
// The model's two bandwidths are the rates blocks move memory -> shared
// cache (sigma_S) and shared cache -> core (sigma_D).  Both are estimated
// with the same line-strided streaming read sweep at two working-set
// sizes picked off the detected topology:
//
//   * sigma_S: a buffer several times the LLC, so every access streams
//     from DRAM through the shared cache;
//   * sigma_D: a buffer that fits comfortably in the LLC but overflows
//     the private per-core cache, so accesses stream LLC -> core.
//
// Reads touch one double per cache line (the fetch, not the ALU, is the
// bottleneck being measured) with four independent accumulators for ILP,
// and each measurement is best-of-`repeats` to shrug off scheduling noise.
// Only the *ratio* of the two rates enters the model (the paper's
// r = sigma_S / (sigma_S + sigma_D)); the absolute GB/s are kept for the
// profile document and human sanity checks.
#pragma once

#include <cstdint>

#include "hw/topology.hpp"

namespace mcmm {

struct BandwidthOptions {
  int repeats = 5;       ///< best-of repetitions per working-set size
  int passes = 4;        ///< sweeps over the buffer per repetition
  bool quick = false;    ///< CI smoke: smaller buffers, fewer repeats
};

struct BandwidthEstimate {
  bool measured = false;
  double mem_gbs = 0;                 ///< DRAM -> LLC streaming rate
  double llc_gbs = 0;                 ///< LLC -> core streaming rate
  std::int64_t mem_buffer_bytes = 0;  ///< working set used for mem_gbs
  std::int64_t llc_buffer_bytes = 0;  ///< working set used for llc_gbs

  /// The paper's bandwidth ratio r = sigma_S / (sigma_S + sigma_D),
  /// estimated as mem/(mem+llc); 0.5 (symmetric bandwidths) when the
  /// sweep has not run or degenerated.
  double sigma_ratio() const;
};

/// One strided streaming-read measurement: best-of-`repeats` GB/s reading
/// `bytes` of doubles touching one element per `stride_bytes`.  Exposed
/// for tests; `measure_host_bandwidth` composes it.
double stream_read_gbs(std::int64_t bytes, std::int64_t stride_bytes,
                       int repeats, int passes);

/// The two-point sweep sized off `topo`.  Pure computation + clock; no
/// privileges needed.  Throws mcmm::Error only on nonsensical options.
BandwidthEstimate measure_host_bandwidth(const HostTopology& topo,
                                         const BandwidthOptions& opt = {});

}  // namespace mcmm
