#include "hw/perf_counters.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MCMM_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define MCMM_HAVE_PERF_EVENT 0
#endif

namespace mcmm {

CounterSample CounterSample::delta(const CounterSample& begin,
                                   const CounterSample& end) {
  CounterSample d;
  d.available = begin.available && end.available;
  d.cycles = end.cycles - begin.cycles;
  d.instructions = end.instructions - begin.instructions;
  d.llc_misses = end.llc_misses - begin.llc_misses;
  d.llc_references = end.llc_references - begin.llc_references;
  d.l1d_misses = end.l1d_misses - begin.l1d_misses;
  d.scale = end.scale;
  return d;
}

#if MCMM_HAVE_PERF_EVENT

namespace {

/// The five events, in fds_ order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                                        std::uint64_t result) {
  return cache | (op << 8U) | (result << 16U);
}

const EventSpec kEventSpecs[PerfCounterSession::kEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // Counting starts at construction: `inherit` extends the count to worker
  // threads spawned later, but only enable/disable-at-open is reliable with
  // it (ioctl ENABLE does not reach inherited copies on older kernels), so
  // callers measure deltas instead of start/stop.
  attr.disabled = 0;
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// Read one event, multiplex-scaled; returns false when the fd is closed
/// or the read fails (value left at 0).
bool read_scaled(int fd, std::int64_t* value, double* running_fraction) {
  *value = 0;
  *running_fraction = 1.0;
  if (fd < 0) return false;
  struct Reading {
    std::uint64_t value;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
  } r{};
  if (read(fd, &r, sizeof(r)) != static_cast<ssize_t>(sizeof(r))) {
    return false;
  }
  if (r.time_running == 0) return true;  // never scheduled: honest zero
  const double scale = static_cast<double>(r.time_enabled) /
                       static_cast<double>(r.time_running);
  *value = static_cast<std::int64_t>(static_cast<double>(r.value) * scale);
  *running_fraction = static_cast<double>(r.time_running) /
                      static_cast<double>(r.time_enabled);
  return true;
}

}  // namespace

PerfCounterSession::PerfCounterSession(Options opt) {
  if (!opt.enabled) {
    reason_ = "counters disabled by caller";
    return;
  }
  if (opt.simulate_denied) {
    reason_ = "perf_event_open: Permission denied (simulated)";
    return;
  }
  // The cycles leader decides availability; secondary events that fail
  // (e.g. no generic LLC event on this PMU) just read as zero.
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = open_event(kEventSpecs[i]);
    if (i == 0 && fds_[0] < 0) {
      const int err = errno;
      reason_ = std::string("perf_event_open: ") + std::strerror(err);
      if (err == EPERM || err == EACCES) {
        reason_ += " (kernel.perf_event_paranoid=" +
                   std::to_string(perf_event_paranoid()) +
                   "; need <= 2, or CAP_PERFMON)";
      }
      return;
    }
  }
  available_ = true;
}

PerfCounterSession::~PerfCounterSession() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

CounterSample PerfCounterSession::sample() const {
  CounterSample s;
  if (!available_) return s;
  s.available = true;
  std::int64_t* const slots[kEvents] = {&s.cycles, &s.instructions,
                                        &s.llc_misses, &s.llc_references,
                                        &s.l1d_misses};
  for (int i = 0; i < kEvents; ++i) {
    double fraction = 1.0;
    read_scaled(fds_[i], slots[i], &fraction);
    if (fraction < s.scale) s.scale = fraction;
  }
  return s;
}

int PerfCounterSession::perf_event_paranoid() {
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  int level = kUnknownParanoid;
  if (in.is_open()) in >> level;
  return in.fail() ? kUnknownParanoid : level;
}

bool PerfCounterSession::platform_supported() { return true; }

#else  // !MCMM_HAVE_PERF_EVENT

PerfCounterSession::PerfCounterSession(Options opt) {
  reason_ = opt.enabled ? "perf_event_open not available on this platform"
                        : "counters disabled by caller";
  if (opt.simulate_denied) {
    reason_ = "perf_event_open: Permission denied (simulated)";
  }
}

PerfCounterSession::~PerfCounterSession() = default;

CounterSample PerfCounterSession::sample() const { return CounterSample{}; }

int PerfCounterSession::perf_event_paranoid() { return kUnknownParanoid; }

bool PerfCounterSession::platform_supported() { return false; }

#endif  // MCMM_HAVE_PERF_EVENT

void PerfCounterSession::begin() { begin_ = sample(); }

CounterSample PerfCounterSession::end() {
  return CounterSample::delta(begin_, sample());
}

}  // namespace mcmm
