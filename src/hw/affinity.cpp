#include "hw/affinity.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcmm {

std::vector<int> affinity_cpus(const HostTopology& topo, int workers) {
  MCMM_REQUIRE(workers >= 1, "affinity_cpus: need at least one worker");
  const int ncpu = std::max(topo.logical_cpus, 1);
  const int stride = std::min(std::max(topo.l2_shared_by, 1), ncpu);
  // The full permutation: one CPU per L2 domain first, then the domains'
  // remaining SMT siblings.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(ncpu));
  for (int offset = 0; offset < stride; ++offset) {
    for (int cpu = offset; cpu < ncpu; cpu += stride) order.push_back(cpu);
  }
  std::vector<int> cpus(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    cpus[static_cast<std::size_t>(w)] =
        order[static_cast<std::size_t>(w) % order.size()];
  }
  return cpus;
}

int pin_pool_to_host(ThreadPool& pool, const HostTopology& topo) {
  return pool.pin_workers(affinity_cpus(topo, pool.workers()));
}

}  // namespace mcmm
