#include "hw/affinity.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcmm {

namespace {

/// Visit order from the per-CPU L2 domain map: round-robin across domains
/// (first-seen order), one CPU per domain per round.  Handles any sibling
/// numbering, including the Linux split layout where siblings are i and
/// i + ncpu/2.
std::vector<int> domain_order(const std::vector<int>& l2_domain) {
  const int ncpu = static_cast<int>(l2_domain.size());
  // Bucket CPUs by domain, domains kept in first-seen order (domain ids
  // from detect_host_topology are already sequential first-seen, so a
  // plain vector-of-buckets indexed by id preserves that order).
  int ndom = 0;
  for (const int d : l2_domain) ndom = std::max(ndom, d + 1);
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(ndom));
  for (int cpu = 0; cpu < ncpu; ++cpu) {
    buckets[static_cast<std::size_t>(l2_domain[static_cast<std::size_t>(cpu)])]
        .push_back(cpu);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(ncpu));
  for (std::size_t round = 0; order.size() < static_cast<std::size_t>(ncpu);
       ++round) {
    for (const std::vector<int>& bucket : buckets) {
      if (round < bucket.size()) order.push_back(bucket[round]);
    }
  }
  return order;
}

/// Fallback when no per-CPU map is available: assume CPUs sharing an L2
/// are contiguously numbered and stride by the sharing degree.
std::vector<int> stride_order(int ncpu, int l2_shared_by) {
  const int stride = std::min(std::max(l2_shared_by, 1), ncpu);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(ncpu));
  for (int offset = 0; offset < stride; ++offset) {
    for (int cpu = offset; cpu < ncpu; cpu += stride) order.push_back(cpu);
  }
  return order;
}

}  // namespace

std::vector<int> affinity_cpus(const HostTopology& topo, int workers) {
  MCMM_REQUIRE(workers >= 1, "affinity_cpus: need at least one worker");
  const int ncpu = std::max(topo.logical_cpus, 1);
  // The full permutation: one CPU per L2 domain first, then the domains'
  // remaining SMT siblings.  The per-CPU domain map is authoritative when
  // complete; the contiguous-numbering stride is only a heuristic (wrong
  // on split-sibling SMT layouts, where it doubles workers onto one core).
  const std::vector<int> order =
      topo.l2_domain.size() == static_cast<std::size_t>(ncpu)
          ? domain_order(topo.l2_domain)
          : stride_order(ncpu, topo.l2_shared_by);
  std::vector<int> cpus(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    cpus[static_cast<std::size_t>(w)] =
        order[static_cast<std::size_t>(w) % order.size()];
  }
  return cpus;
}

int pin_pool_to_host(ThreadPool& pool, const HostTopology& topo) {
  return pool.pin_workers(affinity_cpus(topo, pool.workers()));
}

}  // namespace mcmm
