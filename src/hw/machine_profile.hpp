// The machine profile: one JSON document (`mcmm-machine-v1`) tying the
// calibration subsystem together.
//
// A profile records what was *measured* — topology (src/hw/topology),
// bandwidths (src/hw/bandwidth), counter availability (src/hw/
// perf_counters) — plus the two modelling choices (block side q and the
// declared data fraction), and *derives* from them the simulator's
// MachineConfig and the real schedules' Tiling.  `tools/mcmm_calibrate`
// produces the document; `mcmm_run --machine`, `bench_gemm --machine` and
// `ext_model_vs_hw --machine` consume it, so simulated and real runs
// share one ground truth for the host.
//
// The document round-trips byte-for-byte through util/json's
// order-preserving parser (tests/test_hw_topology.cpp locks this in):
// derived fields are pure functions of the measured ones, and every
// number is formatted by the same writer on both paths.
#pragma once

#include <string>

#include "gemm/microkernel.hpp"
#include "gemm/parallel_gemm.hpp"
#include "hw/bandwidth.hpp"
#include "hw/topology.hpp"
#include "sim/machine_config.hpp"

namespace mcmm {

struct MachineProfile {
  static constexpr const char* kSchema = "mcmm-machine-v1";

  HostTopology topology;
  BandwidthEstimate bandwidth;      ///< measured=false when the sweep was skipped
  bool counters_available = false;
  int perf_event_paranoid = -100;   ///< PerfCounterSession::kUnknownParanoid

  std::int64_t q = 32;              ///< block side the derivation uses
  /// Fraction of each *private* cache available to block data (the paper's
  /// Section 4.1 knob: 2/3 optimistic, 1/2 pessimistic); the shared cache
  /// is taken whole, and the LRU-50 halving stays with the Setting.
  double data_fraction = 2.0 / 3.0;

  /// The autotuner's verdict (tools/mcmm_tune): tuned = false means the
  /// optional "kernel_tuning" section is absent and every consumer falls
  /// back to auto dispatch with the model q.  When tuned, KernelContext
  /// loads the kernel/prefetch/streaming knobs and tiling() re-derives
  /// the tile parameters at the tuned k-panel depth (lambda-consistent:
  /// same tiling_for_host formulas, tuned execution q).
  KernelTuning kernel_tuning;

  /// The simulator machine this host corresponds to: p = number of
  /// private-cache domains, CS from the whole shared cache, CD from the
  /// data fraction of the private cache (in q x q blocks,
  /// inclusivity-clamped), bandwidths from the measured sigma ratio
  /// (symmetric when unmeasured).
  MachineConfig machine_config() const;

  /// Tile parameters for the real schedules, via tiling_for_host on the
  /// declared cache sizes.
  Tiling tiling() const;

  std::string describe() const;
};

/// Serialize with fixed key order (see docs/calibration.md for the schema).
std::string machine_profile_to_json(const MachineProfile& profile);

/// Parse and validate; throws mcmm::Error on malformed JSON, a missing or
/// foreign "schema", or out-of-range fields.
MachineProfile machine_profile_from_json(const std::string& text);

/// File convenience wrappers (throw mcmm::Error on I/O failure).
MachineProfile load_machine_profile(const std::string& path);
void save_machine_profile(const MachineProfile& profile,
                          const std::string& path);

}  // namespace mcmm
