#include "hw/machine_profile.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mcmm {

namespace {

const JsonValue& member(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  MCMM_REQUIRE(v != nullptr, "machine profile: missing field '" + key + "'");
  return *v;
}

std::int64_t as_int(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  MCMM_REQUIRE(v.type == JsonValue::Type::kNumber,
               "machine profile: field '" + key + "' must be a number");
  return static_cast<std::int64_t>(v.number);
}

double as_double(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  MCMM_REQUIRE(v.type == JsonValue::Type::kNumber,
               "machine profile: field '" + key + "' must be a number");
  return v.number;
}

bool as_bool(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  MCMM_REQUIRE(v.type == JsonValue::Type::kBool,
               "machine profile: field '" + key + "' must be a boolean");
  return v.boolean;
}

std::string as_string(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  MCMM_REQUIRE(v.type == JsonValue::Type::kString,
               "machine profile: field '" + key + "' must be a string");
  return v.string;
}

std::int64_t declared_bytes(std::int64_t physical, double fraction) {
  return static_cast<std::int64_t>(
      std::floor(static_cast<double>(physical) * fraction));
}

}  // namespace

MachineConfig MachineProfile::machine_config() const {
  MCMM_REQUIRE(q >= 1, "MachineProfile: q must be >= 1");
  MCMM_REQUIRE(data_fraction > 0 && data_fraction <= 1,
               "MachineProfile: data_fraction in (0, 1]");
  // One model "core" per private-cache domain: SMT siblings (and E-core
  // clusters) sharing one L2 count once, matching the p caches of Fig. 1.
  const int share = topology.l2_shared_by >= 1 ? topology.l2_shared_by : 1;
  const int p = topology.logical_cpus >= share
                    ? topology.logical_cpus / share
                    : 1;
  const std::int64_t block_bytes = q * q * 8;
  MachineConfig cfg;
  cfg.p = p >= 1 ? p : 1;
  // Like MachineConfig::realistic_quadcore, data_fraction derates only the
  // *private* caches (code and stack compete there); the LRU-50 halving is
  // a separate knob applied by the experiment Setting, not baked in here.
  cfg.cs = std::max<std::int64_t>(
      topology.shared_cache_bytes() / block_bytes, 3);
  cfg.cd = std::max<std::int64_t>(
      declared_bytes(topology.private_cache_bytes(), data_fraction) /
          block_bytes,
      3);
  cfg.cs = std::max(cfg.cs, static_cast<std::int64_t>(cfg.p) * cfg.cd);
  return cfg.with_bandwidth_ratio(bandwidth.sigma_ratio());
}

Tiling MachineProfile::tiling() const {
  const MachineConfig cfg = machine_config();
  // A tuned k-panel depth replaces the model q as the execution block
  // side; lambda/mu/alpha/beta are re-derived from the same cache-share
  // formulas at that depth, so the tiling stays internally consistent.
  const std::int64_t exec_q =
      kernel_tuning.tuned && kernel_tuning.kc >= 1 ? kernel_tuning.kc : q;
  return tiling_for_host(
      cfg.p, topology.shared_cache_bytes(),
      declared_bytes(topology.private_cache_bytes(), data_fraction), exec_q);
}

std::string MachineProfile::describe() const {
  const MachineConfig cfg = machine_config();
  std::ostringstream out;
  out << topology.describe() << "\n";
  if (bandwidth.measured) {
    out << "bandwidth: mem " << bandwidth.mem_gbs << " GB/s, llc "
        << bandwidth.llc_gbs << " GB/s (r=" << bandwidth.sigma_ratio()
        << ")\n";
  } else {
    out << "bandwidth: not measured (symmetric sigma assumed)\n";
  }
  out << "counters: "
      << (counters_available ? "available" : "unavailable") << "\n";
  out << "model (q=" << q << ", fraction=" << data_fraction
      << "): " << cfg.describe();
  if (kernel_tuning.tuned) {
    out << "\nkernel_tuning: " << kernel_tuning.kernel
        << " kc=" << kernel_tuning.kc << " prefetch a/b="
        << kernel_tuning.prefetch_a << "/" << kernel_tuning.prefetch_b
        << " pack=" << kernel_tuning.pack_prefetch << " stream="
        << (kernel_tuning.stream_stores ? "on" : "off") << " ("
        << kernel_tuning.gflops << " GFLOP/s at tune time)";
  }
  return out.str();
}

std::string machine_profile_to_json(const MachineProfile& profile) {
  const MachineConfig cfg = profile.machine_config();
  const Tiling t = profile.tiling();
  JsonWriter w;
  w.begin_object()
      .kv("schema", MachineProfile::kSchema)
      .key("topology")
      .begin_object()
      .kv("source", profile.topology.source)
      .kv("logical_cpus", profile.topology.logical_cpus)
      .kv("line_bytes", profile.topology.line_bytes)
      .kv("l1d_bytes", profile.topology.l1d_bytes)
      .kv("l2_bytes", profile.topology.l2_bytes)
      .kv("l2_shared_by", profile.topology.l2_shared_by)
      .kv("l3_bytes", profile.topology.l3_bytes)
      .kv("l3_shared_by", profile.topology.l3_shared_by)
      .end_object()
      .key("bandwidth")
      .begin_object()
      .kv("measured", profile.bandwidth.measured)
      .kv("mem_gbs", profile.bandwidth.mem_gbs)
      .kv("llc_gbs", profile.bandwidth.llc_gbs)
      .kv("mem_buffer_bytes", profile.bandwidth.mem_buffer_bytes)
      .kv("llc_buffer_bytes", profile.bandwidth.llc_buffer_bytes)
      .kv("sigma_ratio", profile.bandwidth.sigma_ratio())
      .end_object()
      .key("counters")
      .begin_object()
      .kv("available", profile.counters_available)
      .kv("perf_event_paranoid", profile.perf_event_paranoid)
      .end_object()
      .key("model")
      .begin_object()
      .kv("q", profile.q)
      .kv("data_fraction", profile.data_fraction)
      .kv("p", cfg.p)
      .kv("cs", cfg.cs)
      .kv("cd", cfg.cd)
      .kv("sigma_s", cfg.sigma_s)
      .kv("sigma_d", cfg.sigma_d)
      .end_object()
      .key("tiling")
      .begin_object()
      .kv("q", t.q)
      .kv("lambda", t.lambda)
      .kv("mu", t.mu)
      .kv("alpha", t.alpha)
      .kv("beta", t.beta)
      .end_object();
  // The tuning section is optional: absent on untuned profiles (so every
  // pre-tuner document round-trips unchanged), raw measured values when
  // present (re-emitted verbatim — byte-stable like the rest).
  if (profile.kernel_tuning.tuned) {
    w.key("kernel_tuning")
        .begin_object()
        .kv("kernel", profile.kernel_tuning.kernel)
        .kv("kc", profile.kernel_tuning.kc)
        .kv("prefetch_a", profile.kernel_tuning.prefetch_a)
        .kv("prefetch_b", profile.kernel_tuning.prefetch_b)
        .kv("pack_prefetch", profile.kernel_tuning.pack_prefetch)
        .kv("stream_stores", profile.kernel_tuning.stream_stores)
        .kv("gflops", profile.kernel_tuning.gflops)
        .end_object();
  }
  w.end_object();
  return w.str();
}

MachineProfile machine_profile_from_json(const std::string& text) {
  const JsonValue root = json_parse(text);
  MCMM_REQUIRE(root.type == JsonValue::Type::kObject,
               "machine profile: document must be a JSON object");
  const std::string schema = as_string(root, "schema");
  MCMM_REQUIRE(schema == MachineProfile::kSchema,
               "machine profile: unsupported schema '" + schema +
                   "' (expected " + std::string(MachineProfile::kSchema) +
                   ")");
  MachineProfile profile;

  const JsonValue& topo = member(root, "topology");
  profile.topology.source = as_string(topo, "source");
  profile.topology.logical_cpus =
      static_cast<int>(as_int(topo, "logical_cpus"));
  profile.topology.line_bytes = as_int(topo, "line_bytes");
  profile.topology.l1d_bytes = as_int(topo, "l1d_bytes");
  profile.topology.l2_bytes = as_int(topo, "l2_bytes");
  profile.topology.l2_shared_by =
      static_cast<int>(as_int(topo, "l2_shared_by"));
  profile.topology.l3_bytes = as_int(topo, "l3_bytes");
  profile.topology.l3_shared_by =
      static_cast<int>(as_int(topo, "l3_shared_by"));
  MCMM_REQUIRE(profile.topology.logical_cpus >= 1,
               "machine profile: logical_cpus must be >= 1");

  const JsonValue& bw = member(root, "bandwidth");
  profile.bandwidth.measured = as_bool(bw, "measured");
  profile.bandwidth.mem_gbs = as_double(bw, "mem_gbs");
  profile.bandwidth.llc_gbs = as_double(bw, "llc_gbs");
  profile.bandwidth.mem_buffer_bytes = as_int(bw, "mem_buffer_bytes");
  profile.bandwidth.llc_buffer_bytes = as_int(bw, "llc_buffer_bytes");

  const JsonValue& counters = member(root, "counters");
  profile.counters_available = as_bool(counters, "available");
  profile.perf_event_paranoid =
      static_cast<int>(as_int(counters, "perf_event_paranoid"));

  const JsonValue& model = member(root, "model");
  profile.q = as_int(model, "q");
  profile.data_fraction = as_double(model, "data_fraction");
  MCMM_REQUIRE(profile.q >= 1, "machine profile: q must be >= 1");
  MCMM_REQUIRE(profile.data_fraction > 0 && profile.data_fraction <= 1,
               "machine profile: data_fraction must be in (0, 1]");
  // "p"/"cs"/"cd"/"sigma_*" and "tiling" are derived on write; recomputing
  // them here (instead of trusting the file) keeps the document internally
  // consistent and the round trip byte-stable.

  if (const JsonValue* tuning = root.find("kernel_tuning")) {
    MCMM_REQUIRE(tuning->type == JsonValue::Type::kObject,
                 "machine profile: kernel_tuning must be an object");
    profile.kernel_tuning.tuned = true;
    profile.kernel_tuning.kernel = as_string(*tuning, "kernel");
    profile.kernel_tuning.kc = as_int(*tuning, "kc");
    profile.kernel_tuning.prefetch_a = as_int(*tuning, "prefetch_a");
    profile.kernel_tuning.prefetch_b = as_int(*tuning, "prefetch_b");
    profile.kernel_tuning.pack_prefetch = as_int(*tuning, "pack_prefetch");
    profile.kernel_tuning.stream_stores = as_bool(*tuning, "stream_stores");
    profile.kernel_tuning.gflops = as_double(*tuning, "gflops");
    MCMM_REQUIRE(!profile.kernel_tuning.kernel.empty(),
                 "machine profile: kernel_tuning.kernel must be non-empty");
    MCMM_REQUIRE(profile.kernel_tuning.kc >= 1,
                 "machine profile: kernel_tuning.kc must be >= 1");
    MCMM_REQUIRE(profile.kernel_tuning.prefetch_a >= 0 &&
                     profile.kernel_tuning.prefetch_b >= 0 &&
                     profile.kernel_tuning.pack_prefetch >= 0,
                 "machine profile: kernel_tuning prefetch distances must "
                 "be >= 0");
  }
  return profile;
}

MachineProfile load_machine_profile(const std::string& path) {
  std::ifstream in(path);
  MCMM_REQUIRE(in.is_open(), "cannot open machine profile: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return machine_profile_from_json(text.str());
}

void save_machine_profile(const MachineProfile& profile,
                          const std::string& path) {
  std::ofstream out(path);
  MCMM_REQUIRE(out.is_open(),
               "cannot open machine profile for writing: " + path);
  out << machine_profile_to_json(profile) << "\n";
  MCMM_REQUIRE(out.good(), "failed writing machine profile: " + path);
}

}  // namespace mcmm
