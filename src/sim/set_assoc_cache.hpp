// Set-associative LRU cache — an ablation of the paper's full-associativity
// assumption.
//
// The paper's model (and Machine) uses fully-associative caches; real
// hardware is W-way set-associative, which adds *conflict* misses when hot
// blocks collide in a set.  This cache partitions its capacity into
// capacity/ways sets, indexes blocks by a hash of their id, and runs LRU
// within each set.  ways == capacity degenerates to the fully-associative
// cache (one set), which the tests exploit for differential validation
// against LruCache.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/block_id.hpp"
#include "sim/lru_cache.hpp"

namespace mcmm {

class SetAssocCache {
public:
  /// `capacity_blocks` total blocks, `ways` per set (ways | capacity).
  SetAssocCache(std::int64_t capacity_blocks, std::int64_t ways);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t ways() const { return ways_; }
  std::int64_t sets() const { return static_cast<std::int64_t>(sets_.size()); }
  std::int64_t size() const;

  bool contains(BlockId b) const;

  /// If resident: promote to MRU within its set and return true.
  bool touch(BlockId b);

  /// Insert a non-resident block; evicts its set's LRU entry when the set
  /// is full (even if other sets have room — that is the conflict miss).
  std::optional<LruCache::Evicted> insert(BlockId b, bool dirty);

  void mark_dirty(BlockId b);
  std::optional<bool> erase(BlockId b);

private:
  std::size_t set_index(BlockId b) const;

  std::int64_t capacity_;
  std::int64_t ways_;
  std::vector<LruCache> sets_;
};

/// Convenience: simulate a trace's single-cache misses under a given
/// associativity (cold + capacity + conflict); ways == capacity gives the
/// fully-associative count.
struct AssocMisses {
  std::int64_t misses = 0;
  std::int64_t accesses = 0;
  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

}  // namespace mcmm
