// Explicitly managed cache implementing the paper's IDEAL replacement mode:
// "the user manually decides which data needs to be loaded/unloaded in a
// given cache".  There is no replacement policy — an algorithm must evict
// to make room, and every capacity or residency violation is an assertion
// failure, so IDEAL-mode algorithms are validated, not trusted.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/block_id.hpp"
#include "sim/fixed_hash_map.hpp"

namespace mcmm {

class IdealCache {
public:
  explicit IdealCache(std::int64_t capacity_blocks);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t size() const { return static_cast<std::int64_t>(map_.size()); }

  bool contains(BlockId b) const { return map_.contains(b.bits()); }

  /// Ensure `b` is resident.  Returns true if this call brought it in
  /// (i.e. it counts as a miss/load), false if it was already resident.
  /// Aborts if the cache is full and `b` is absent.
  bool load(BlockId b);

  /// Remove a resident block; returns its dirty flag.
  /// Evicting an absent block is a bug in the calling algorithm.
  bool evict(BlockId b);

  /// Mark a resident block dirty (it will need writing back downstream).
  void mark_dirty(BlockId b);

  bool is_dirty(BlockId b) const;

  /// Resident blocks in unspecified order (tests/diagnostics).
  std::vector<BlockId> contents() const;

  void clear();

private:
  std::int64_t capacity_;
  FixedHashMap map_;  // value: 1 = dirty, 0 = clean
};

}  // namespace mcmm
