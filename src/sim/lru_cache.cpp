#include "sim/lru_cache.hpp"

#include "util/error.hpp"

namespace mcmm {

LruCache::LruCache(std::int64_t capacity_blocks)
    : capacity_(capacity_blocks),
      map_(static_cast<std::size_t>(capacity_blocks)) {
  MCMM_REQUIRE(capacity_blocks >= 1, "LruCache: capacity must be >= 1 block");
  nodes_.resize(static_cast<std::size_t>(capacity_blocks));
  free_.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    free_.push_back(static_cast<std::uint32_t>(nodes_.size()) - 1 - i);
  }
}

void LruCache::unlink(std::uint32_t n) {
  Node& node = nodes_[n];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
  node.prev = node.next = kNil;
}

void LruCache::link_front(std::uint32_t n) {
  Node& node = nodes_[n];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = n;
  head_ = n;
  if (tail_ == kNil) tail_ = n;
}

bool LruCache::touch(BlockId b) {
  std::uint32_t* n = map_.find(b.bits());
  if (n == nullptr) return false;
  if (*n != head_) {
    const std::uint32_t idx = *n;
    unlink(idx);
    link_front(idx);
  }
  return true;
}

std::optional<LruCache::Evicted> LruCache::insert(BlockId b, bool dirty) {
  MCMM_ASSERT(!map_.contains(b.bits()), "LruCache::insert: block resident");
  std::optional<Evicted> victim;
  if (size() == capacity_) {
    const std::uint32_t v = tail_;
    const Node& vn = nodes_[v];
    victim = Evicted{BlockId::from_bits(vn.key), vn.dirty};
    map_.erase(vn.key);
    unlink(v);
    free_.push_back(v);
  }
  MCMM_ASSERT(!free_.empty(), "LruCache: node pool exhausted");
  const std::uint32_t n = free_.back();
  free_.pop_back();
  nodes_[n].key = b.bits();
  nodes_[n].dirty = dirty;
  link_front(n);
  map_.insert(b.bits(), n);
  return victim;
}

void LruCache::mark_dirty(BlockId b) {
  std::uint32_t* n = map_.find(b.bits());
  MCMM_ASSERT(n != nullptr, "LruCache::mark_dirty: block not resident");
  nodes_[*n].dirty = true;
}

bool LruCache::is_dirty(BlockId b) const {
  const std::uint32_t* n = map_.find(b.bits());
  MCMM_ASSERT(n != nullptr, "LruCache::is_dirty: block not resident");
  return nodes_[*n].dirty;
}

std::optional<bool> LruCache::erase(BlockId b) {
  std::uint32_t* n = map_.find(b.bits());
  if (n == nullptr) return std::nullopt;
  const std::uint32_t idx = *n;
  const bool dirty = nodes_[idx].dirty;
  map_.erase(b.bits());
  unlink(idx);
  free_.push_back(idx);
  return dirty;
}

std::optional<BlockId> LruCache::lru_block() const {
  if (tail_ == kNil) return std::nullopt;
  return BlockId::from_bits(nodes_[tail_].key);
}

std::vector<BlockId> LruCache::contents_mru_order() const {
  std::vector<BlockId> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    out.push_back(BlockId::from_bits(nodes_[n].key));
  }
  return out;
}

void LruCache::clear() {
  map_.clear();
  free_.clear();
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i] = Node{};
    free_.push_back(static_cast<std::uint32_t>(nodes_.size()) - 1 - i);
  }
  head_ = tail_ = kNil;
}

}  // namespace mcmm
