// Deterministic simulation of the paper's "foreach core c in parallel"
// regions.
//
// Each core's operations — block FMAs interleaved with its own
// distributed-cache management — are queued separately, then dispatched
// round-robin, one operation per core per round.  This models p identical
// cores progressing in lockstep (the paper assumes equal-speed cores and
// contention-free cache loads) while keeping the simulation
// single-threaded and bit-reproducible.
//
// Under the LRU policy the management operations are no-ops inside the
// Machine, so the same queued program runs under both policies; only the
// FMA access order matters there, and the round-robin interleaving is part
// of the simulated semantics.  Under the IDEAL policy the management
// operations move data and are validated by the Machine's assertions.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace mcmm {

class ParallelSection {
public:
  explicit ParallelSection(Machine& machine);

  /// Queue C[i,j] += A[i,k]*B[k,j] on `core`.
  void fma(int core, std::int64_t i, std::int64_t j, std::int64_t k);

  /// Queue a raw data access on `core` (kernels other than the matrix
  /// product, e.g. the LU extension's factor/trsm/update block ops).
  void access(int core, BlockId b, Rw rw);

  /// Queue IDEAL-mode distributed-cache management on `core`.
  void load_distributed(int core, BlockId b);
  void evict_distributed(int core, BlockId b);
  void update_shared(int core, BlockId b);

  /// Dispatch all queued operations round-robin and clear the queues.
  void run();

  /// Total operations currently queued (tests).
  std::int64_t pending() const;

private:
  enum class Kind : std::uint8_t {
    kFma,
    kRead,
    kWrite,
    kLoadD,
    kEvictD,
    kUpdateShared,
  };
  struct Op {
    Kind kind;
    std::uint64_t block_bits;  // for access and cache-management ops
    std::int32_t i, j, k;      // for FMAs
  };
  void enqueue(int core, Op op);

  Machine& machine_;
  std::vector<std::vector<Op>> queues_;
};

}  // namespace mcmm
