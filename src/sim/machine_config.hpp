// Description of the simulated multicore processor (Figure 1 of the paper):
// p cores, each with a private (distributed) cache of CD blocks fed at
// bandwidth sigma_D from a shared cache of CS blocks, itself fed at
// bandwidth sigma_S from an infinite main memory.  Caches are inclusive
// and fully associative; capacities are expressed in q x q blocks.
#pragma once

#include <cstdint>
#include <string>

namespace mcmm {

struct MachineConfig {
  int p = 4;                ///< number of cores
  std::int64_t cs = 977;    ///< shared-cache capacity, in blocks
  std::int64_t cd = 21;     ///< per-core distributed-cache capacity, in blocks
  double sigma_s = 1.0;     ///< memory -> shared cache bandwidth (blocks/unit)
  double sigma_d = 1.0;     ///< shared -> distributed cache bandwidth

  /// Throws mcmm::Error if the configuration violates the model
  /// (p >= 1, capacities >= 1; inclusivity requires CS >= p*CD).
  void validate() const;

  /// Same machine with both cache capacities scaled by an integer factor —
  /// used by the LRU(2C) competitiveness experiments of Figures 4-6.
  MachineConfig with_caches_scaled(std::int64_t num, std::int64_t den) const;

  /// The paper's "realistic quad-core": 8 MB shared cache, 4 x 256 KB
  /// distributed caches, 8-byte coefficients in q x q blocks, with
  /// `data_fraction` of each distributed cache available to data (the paper
  /// uses 2/3 optimistically and 1/2 pessimistically).  Sizes use decimal
  /// MB/KB and round up, matching the capacities quoted in Section 4.1
  /// (q=32 -> CS=977, CD=21 or 16; q=64 -> 245, 6 or 4; q=80 -> 157, 4 or 3).
  static MachineConfig realistic_quadcore(std::int64_t q,
                                          double data_fraction);

  /// Bandwidths from the paper's ratio parameter r = sigma_S/(sigma_S+sigma_D),
  /// normalised so sigma_S + sigma_D = 2.
  MachineConfig with_bandwidth_ratio(double r) const;

  std::string describe() const;
};

}  // namespace mcmm
