// Identification of the atomic data unit of the paper's model: one q x q
// block of matrix coefficients.  The simulator never looks inside a block;
// algorithms and caches move and count whole blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/error.hpp"

namespace mcmm {

/// Which matrix a block belongs to.
enum class MatrixTag : std::uint64_t { A = 0, B = 1, C = 2 };

inline const char* to_string(MatrixTag t) {
  switch (t) {
    case MatrixTag::A: return "A";
    case MatrixTag::B: return "B";
    case MatrixTag::C: return "C";
  }
  return "?";
}

/// A block address: (matrix, block-row i, block-col j), packed into 64 bits
/// so caches can key on a single integer.  Row/col are limited to 2^30-1,
/// far beyond any simulated matrix order.
class BlockId {
public:
  BlockId() : bits_(kInvalid) {}
  BlockId(MatrixTag tag, std::int64_t i, std::int64_t j) {
    MCMM_ASSERT(i >= 0 && i < (1 << 30) && j >= 0 && j < (1 << 30),
                "BlockId coordinates out of range");
    bits_ = (static_cast<std::uint64_t>(tag) << 60) |
            (static_cast<std::uint64_t>(i) << 30) |
            static_cast<std::uint64_t>(j);
  }

  /// Rebuild an id from the packed representation (cache internals only).
  static BlockId from_bits(std::uint64_t bits) {
    BlockId out;
    out.bits_ = bits;
    MCMM_ASSERT(out.valid() && (bits >> 60) <= 2, "BlockId::from_bits: bad tag");
    return out;
  }

  static BlockId a(std::int64_t i, std::int64_t k) { return {MatrixTag::A, i, k}; }
  static BlockId b(std::int64_t k, std::int64_t j) { return {MatrixTag::B, k, j}; }
  static BlockId c(std::int64_t i, std::int64_t j) { return {MatrixTag::C, i, j}; }

  MatrixTag tag() const { return static_cast<MatrixTag>(bits_ >> 60); }
  std::int64_t row() const { return static_cast<std::int64_t>((bits_ >> 30) & 0x3FFFFFFF); }
  std::int64_t col() const { return static_cast<std::int64_t>(bits_ & 0x3FFFFFFF); }

  std::uint64_t bits() const { return bits_; }
  bool valid() const { return bits_ != kInvalid; }

  friend bool operator==(BlockId x, BlockId y) { return x.bits_ == y.bits_; }
  friend bool operator!=(BlockId x, BlockId y) { return x.bits_ != y.bits_; }
  friend bool operator<(BlockId x, BlockId y) { return x.bits_ < y.bits_; }

  std::string str() const {
    return std::string(to_string(tag())) + "[" + std::to_string(row()) + "," +
           std::to_string(col()) + "]";
  }

  /// Sentinel bit pattern never produced by a valid id (tag would be 15).
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

private:
  std::uint64_t bits_;
};

struct BlockIdHash {
  std::size_t operator()(BlockId b) const noexcept {
    // Fibonacci multiplicative hash.  Block ids have structured low bits
    // (packed tag/row/col), so fold the high half of the product back in:
    // consumers that mask to small tables still see the mixed bits.
    const std::uint64_t h = b.bits() * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace mcmm
