// Miss statistics collected by the simulated machine.
//
// The paper's two headline metrics are
//   MS — the number of shared-cache misses (loads memory -> shared), and
//   MD — the *maximum* over cores of distributed-cache misses
//        (loads shared -> distributed),
// combined into the data-access time  Tdata = MS/sigma_S + MD/sigma_D.
// Write-backs are tracked for completeness but, as in the paper, never
// counted as misses ("the number of times each data has to be loaded").
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace mcmm {

struct MachineStats {
  explicit MachineStats(int cores = 0)
      : dist_misses(cores, 0),
        dist_hits(cores, 0),
        wb_to_shared_per_core(cores, 0),
        fmas(cores, 0) {}

  std::int64_t shared_misses = 0;
  std::int64_t shared_hits = 0;
  std::vector<std::int64_t> dist_misses;
  std::vector<std::int64_t> dist_hits;
  std::int64_t writebacks_to_memory = 0;
  std::int64_t writebacks_to_shared = 0;
  /// Blocks removed from a distributed cache because the SHARED cache
  /// evicted them (inclusivity back-invalidation).  When this is zero,
  /// each distributed cache behaved exactly like an isolated LRU cache
  /// over its core's stream, and the reuse-distance oracle predicts its
  /// misses exactly; with interference the counts can deviate in either
  /// direction.
  std::int64_t back_invalidations = 0;
  /// writebacks_to_shared attributed to the core whose private cache held
  /// the dirty block (for the write-inclusive Tdata variant).
  std::vector<std::int64_t> wb_to_shared_per_core;
  std::vector<std::int64_t> fmas;  // comp(c): block multiply-adds per core

  /// MS in the paper's notation.
  std::int64_t ms() const { return shared_misses; }

  /// MD: maximum distributed-cache miss count over all cores.
  std::int64_t md() const {
    if (dist_misses.empty()) return 0;
    return *std::max_element(dist_misses.begin(), dist_misses.end());
  }

  /// Total block FMAs performed (== m*n*z for a complete product).
  std::int64_t total_fmas() const {
    return std::accumulate(fmas.begin(), fmas.end(), std::int64_t{0});
  }

  /// Data access time for the given cache bandwidths (blocks per time unit).
  double tdata(double sigma_s, double sigma_d) const {
    return static_cast<double>(ms()) / sigma_s +
           static_cast<double>(md()) / sigma_d;
  }

  /// Write-inclusive variant: the paper's Tdata counts only loads; this
  /// adds the write-back traffic each level's bus also carries (dirty
  /// blocks travelling shared -> memory and private -> shared).  The
  /// distributed term takes the busiest core's combined traffic.
  double tdata_with_writebacks(double sigma_s, double sigma_d) const {
    std::int64_t busiest = 0;
    for (std::size_t c = 0; c < dist_misses.size(); ++c) {
      busiest = std::max(busiest,
                         dist_misses[c] + wb_to_shared_per_core[c]);
    }
    return static_cast<double>(ms() + writebacks_to_memory) / sigma_s +
           static_cast<double>(busiest) / sigma_d;
  }

  /// Shared-cache communication-to-computation ratio MS / (m n z).
  double ccr_shared() const {
    return static_cast<double>(ms()) / static_cast<double>(total_fmas());
  }

  /// Average distributed CCR: mean over cores of M_D^c / comp(c).
  double ccr_distributed() const {
    double sum = 0;
    for (std::size_t c = 0; c < dist_misses.size(); ++c) {
      if (fmas[c] > 0) {
        sum += static_cast<double>(dist_misses[c]) /
               static_cast<double>(fmas[c]);
      }
    }
    return dist_misses.empty() ? 0.0 : sum / static_cast<double>(dist_misses.size());
  }
};

}  // namespace mcmm
