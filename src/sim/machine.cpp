#include "sim/machine.hpp"

#include <algorithm>

#include "sim/audit_hook.hpp"
#include "util/error.hpp"

namespace mcmm {

Machine::Machine(const MachineConfig& cfg, Policy policy)
    : cfg_(cfg), policy_(policy), stats_(cfg.p) {
  cfg_.validate();
  if (policy_ == Policy::kLru) {
    lru_shared_.emplace(cfg_.cs);
    lru_dist_.reserve(static_cast<std::size_t>(cfg_.p));
    for (int c = 0; c < cfg_.p; ++c) lru_dist_.emplace_back(cfg_.cd);
  } else {
    ideal_shared_.emplace(cfg_.cs);
    ideal_dist_.reserve(static_cast<std::size_t>(cfg_.p));
    for (int c = 0; c < cfg_.p; ++c) ideal_dist_.emplace_back(cfg_.cd);
  }
}

void Machine::lru_install_shared(BlockId b) {
  // Load from memory into the shared cache, evicting the LRU victim if
  // needed.  Inclusivity: a victim leaving the shared cache must also be
  // invalidated in every distributed cache; its dirty data (at either
  // level) is written back to memory.
  ++stats_.shared_misses;
  if (lru_shared_->size() == lru_shared_->capacity()) {
    // Pre-invalidate the victim in the distributed caches so their dirty
    // flags reach the shared copy before it is evicted.
    const BlockId victim = *lru_shared_->lru_block();
    for (int c = 0; c < cfg_.p; ++c) {
      if (auto dirty = lru_dist_[static_cast<std::size_t>(c)].erase(victim)) {
        ++stats_.back_invalidations;
        if (*dirty) {
          ++stats_.writebacks_to_shared;
          ++stats_.wb_to_shared_per_core[static_cast<std::size_t>(c)];
          lru_shared_->mark_dirty(victim);
        }
      }
    }
  }
  if (auto evicted = lru_shared_->insert(b, /*dirty=*/false)) {
    if (evicted->dirty) ++stats_.writebacks_to_memory;
  }
}

void Machine::lru_access(int core, BlockId b, Rw rw) {
  auto& dcache = lru_dist_[static_cast<std::size_t>(core)];
  if (dcache.touch(b)) {
    ++stats_.dist_hits[static_cast<std::size_t>(core)];
    if (rw == Rw::kWrite) dcache.mark_dirty(b);
    return;
  }
  ++stats_.dist_misses[static_cast<std::size_t>(core)];
  if (lru_shared_->touch(b)) {
    ++stats_.shared_hits;
  } else {
    lru_install_shared(b);
  }
  // Install in the distributed cache; a dirty victim is written back to
  // the shared cache (whose copy exists, by inclusivity).
  if (auto evicted = dcache.insert(b, rw == Rw::kWrite)) {
    if (evicted->dirty) {
      ++stats_.writebacks_to_shared;
      ++stats_.wb_to_shared_per_core[static_cast<std::size_t>(core)];
      lru_shared_->mark_dirty(evicted->block);
    }
  }
}

void Machine::attach_audit_hook(AuditHook* hook) {
  MCMM_ASSERT(hook != nullptr, "attach_audit_hook: null hook");
  MCMM_ASSERT(std::find(audit_hooks_.begin(), audit_hooks_.end(), hook) ==
                  audit_hooks_.end(),
              "attach_audit_hook: hook already attached");
  audit_hooks_.push_back(hook);
}

void Machine::detach_audit_hook(AuditHook* hook) {
  const auto it = std::find(audit_hooks_.begin(), audit_hooks_.end(), hook);
  MCMM_ASSERT(it != audit_hooks_.end(), "detach_audit_hook: hook not attached");
  audit_hooks_.erase(it);
}

void Machine::audit_step_begin() {
  for (AuditHook* h : audit_hooks_) h->on_step_begin();
}

void Machine::audit_step_end() {
  for (AuditHook* h : audit_hooks_) h->on_step_end();
}

void Machine::notify_access(int core, BlockId b, Rw rw) {
  for (AuditHook* h : audit_hooks_) h->on_access(core, b, rw);
}

void Machine::notify_cache_op(BlockId b) {
  for (AuditHook* h : audit_hooks_) h->on_cache_op(b);
}

void Machine::access(int core, BlockId b, Rw rw) {
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "Machine::access: bad core index");
  if (access_observer_) access_observer_(core, b, rw);
  if (policy_ == Policy::kLru) {
    lru_access(core, b, rw);
    notify_access(core, b, rw);
    return;
  }
  auto& dcache = ideal_dist_[static_cast<std::size_t>(core)];
  MCMM_ASSERT(dcache.contains(b),
              ("IDEAL access to non-resident block " + b.str()).c_str());
  ++stats_.dist_hits[static_cast<std::size_t>(core)];
  if (rw == Rw::kWrite) dcache.mark_dirty(b);
  notify_access(core, b, rw);
}

void Machine::fma(int core, std::int64_t i, std::int64_t j, std::int64_t k) {
  access(core, BlockId::a(i, k), Rw::kRead);
  access(core, BlockId::b(k, j), Rw::kRead);
  access(core, BlockId::c(i, j), Rw::kWrite);
  ++stats_.fmas[static_cast<std::size_t>(core)];
  if (observer_) observer_(core, i, j, k);
}

void Machine::load_shared(BlockId b) {
  if (policy_ == Policy::kLru) return;
  if (ideal_shared_->load(b)) {
    ++stats_.shared_misses;
  } else {
    ++stats_.shared_hits;
  }
  notify_cache_op(b);
}

void Machine::evict_shared(BlockId b) {
  if (policy_ == Policy::kLru) return;
  for (int c = 0; c < cfg_.p; ++c) {
    MCMM_ASSERT(!ideal_dist_[static_cast<std::size_t>(c)].contains(b),
                ("IDEAL evict_shared of " + b.str() +
                 " while resident in a distributed cache")
                    .c_str());
  }
  if (ideal_shared_->evict(b)) ++stats_.writebacks_to_memory;
  notify_cache_op(b);
}

void Machine::load_distributed(int core, BlockId b) {
  if (policy_ == Policy::kLru) return;
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "load_distributed: bad core");
  MCMM_ASSERT(ideal_shared_->contains(b),
              ("IDEAL load_distributed of " + b.str() +
               " violates inclusivity (not in shared cache)")
                  .c_str());
  if (ideal_dist_[static_cast<std::size_t>(core)].load(b)) {
    ++stats_.dist_misses[static_cast<std::size_t>(core)];
  } else {
    ++stats_.dist_hits[static_cast<std::size_t>(core)];
  }
  notify_cache_op(b);
}

void Machine::evict_distributed(int core, BlockId b) {
  if (policy_ == Policy::kLru) return;
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "evict_distributed: bad core");
  if (ideal_dist_[static_cast<std::size_t>(core)].evict(b)) {
    ++stats_.writebacks_to_shared;
    ++stats_.wb_to_shared_per_core[static_cast<std::size_t>(core)];
    ideal_shared_->mark_dirty(b);
  }
  notify_cache_op(b);
}

void Machine::update_shared(int core, BlockId b) {
  if (policy_ == Policy::kLru) return;
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "update_shared: bad core");
  MCMM_ASSERT(ideal_dist_[static_cast<std::size_t>(core)].contains(b),
              "update_shared: block not in distributed cache");
  MCMM_ASSERT(ideal_shared_->contains(b),
              "update_shared: block not in shared cache");
  ++stats_.writebacks_to_shared;
  ++stats_.wb_to_shared_per_core[static_cast<std::size_t>(core)];
  ideal_shared_->mark_dirty(b);
  notify_cache_op(b);
}

void Machine::flush() {
  if (policy_ == Policy::kLru) {
    for (int c = 0; c < cfg_.p; ++c) {
      auto& dcache = lru_dist_[static_cast<std::size_t>(c)];
      for (BlockId b : dcache.contents_mru_order()) {
        if (*dcache.erase(b)) {
          ++stats_.writebacks_to_shared;
          ++stats_.wb_to_shared_per_core[static_cast<std::size_t>(c)];
          lru_shared_->mark_dirty(b);
        }
      }
    }
    for (BlockId b : lru_shared_->contents_mru_order()) {
      if (*lru_shared_->erase(b)) ++stats_.writebacks_to_memory;
    }
    return;
  }
  for (int c = 0; c < cfg_.p; ++c) {
    auto& dcache = ideal_dist_[static_cast<std::size_t>(c)];
    for (BlockId b : dcache.contents()) evict_distributed(c, b);
  }
  for (BlockId b : ideal_shared_->contents()) evict_shared(b);
}

bool Machine::resident_shared(BlockId b) const {
  return policy_ == Policy::kLru ? lru_shared_->contains(b)
                                 : ideal_shared_->contains(b);
}

bool Machine::resident_distributed(int core, BlockId b) const {
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "resident_distributed: bad core");
  return policy_ == Policy::kLru
             ? lru_dist_[static_cast<std::size_t>(core)].contains(b)
             : ideal_dist_[static_cast<std::size_t>(core)].contains(b);
}

std::int64_t Machine::shared_size() const {
  return policy_ == Policy::kLru ? lru_shared_->size() : ideal_shared_->size();
}

std::int64_t Machine::distributed_size(int core) const {
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "distributed_size: bad core");
  return policy_ == Policy::kLru
             ? lru_dist_[static_cast<std::size_t>(core)].size()
             : ideal_dist_[static_cast<std::size_t>(core)].size();
}

std::vector<BlockId> Machine::distributed_contents(int core) const {
  MCMM_ASSERT(core >= 0 && core < cfg_.p, "distributed_contents: bad core");
  return policy_ == Policy::kLru
             ? lru_dist_[static_cast<std::size_t>(core)].contents_mru_order()
             : ideal_dist_[static_cast<std::size_t>(core)].contents();
}

void Machine::check_inclusive() const {
  for (int c = 0; c < cfg_.p; ++c) {
    const auto contents =
        policy_ == Policy::kLru
            ? lru_dist_[static_cast<std::size_t>(c)].contents_mru_order()
            : ideal_dist_[static_cast<std::size_t>(c)].contents();
    for (BlockId b : contents) {
      MCMM_ASSERT(resident_shared(b),
                  ("inclusivity violated: " + b.str() + " in core " +
                   std::to_string(c) + " but not in shared cache")
                      .c_str());
    }
  }
}

void Machine::assert_empty() const {
  MCMM_ASSERT(shared_size() == 0, "shared cache not empty at end of run");
  for (int c = 0; c < cfg_.p; ++c) {
    MCMM_ASSERT(distributed_size(c) == 0,
                "a distributed cache is not empty at end of run");
  }
}

}  // namespace mcmm
