// The matrix-product instance C = A x B, measured in q x q blocks:
// A is m x z, B is z x n, C is m x n (all dimensions in blocks).
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mcmm {

struct Problem {
  std::int64_t m = 0;  ///< block-rows of A and C
  std::int64_t n = 0;  ///< block-cols of B and C
  std::int64_t z = 0;  ///< block-cols of A == block-rows of B

  static Problem square(std::int64_t order) { return {order, order, order}; }

  void validate() const {
    MCMM_REQUIRE(m >= 1 && n >= 1 && z >= 1,
                 "Problem: dimensions must be >= 1 block");
  }

  /// Total block multiply-adds of any conventional algorithm.
  std::int64_t fmas() const { return m * n * z; }

  std::string describe() const {
    return std::to_string(m) + "x" + std::to_string(z) + " * " +
           std::to_string(z) + "x" + std::to_string(n);
  }
};

}  // namespace mcmm
