#include "sim/set_assoc_cache.hpp"

#include "util/error.hpp"

namespace mcmm {

SetAssocCache::SetAssocCache(std::int64_t capacity_blocks, std::int64_t ways)
    : capacity_(capacity_blocks), ways_(ways) {
  MCMM_REQUIRE(capacity_blocks >= 1, "SetAssocCache: capacity must be >= 1");
  MCMM_REQUIRE(ways >= 1 && ways <= capacity_blocks,
               "SetAssocCache: ways must be in [1, capacity]");
  MCMM_REQUIRE(capacity_blocks % ways == 0,
               "SetAssocCache: ways must divide the capacity");
  const std::int64_t num_sets = capacity_blocks / ways;
  sets_.reserve(static_cast<std::size_t>(num_sets));
  for (std::int64_t s = 0; s < num_sets; ++s) sets_.emplace_back(ways);
}

std::size_t SetAssocCache::set_index(BlockId b) const {
  // Same mixed hash as the block maps; sets_.size() need not be a power
  // of two, so reduce by modulo.
  const std::uint64_t h = b.bits() * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>((h >> 32) % sets_.size());
}

std::int64_t SetAssocCache::size() const {
  std::int64_t n = 0;
  for (const auto& s : sets_) n += s.size();
  return n;
}

bool SetAssocCache::contains(BlockId b) const {
  return sets_[set_index(b)].contains(b);
}

bool SetAssocCache::touch(BlockId b) { return sets_[set_index(b)].touch(b); }

std::optional<LruCache::Evicted> SetAssocCache::insert(BlockId b, bool dirty) {
  return sets_[set_index(b)].insert(b, dirty);
}

void SetAssocCache::mark_dirty(BlockId b) {
  sets_[set_index(b)].mark_dirty(b);
}

std::optional<bool> SetAssocCache::erase(BlockId b) {
  return sets_[set_index(b)].erase(b);
}

}  // namespace mcmm
