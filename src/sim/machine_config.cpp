#include "sim/machine_config.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mcmm {

void MachineConfig::validate() const {
  MCMM_REQUIRE(p >= 1, "MachineConfig: need at least one core");
  MCMM_REQUIRE(cs >= 1 && cd >= 1, "MachineConfig: cache capacities must be >= 1");
  MCMM_REQUIRE(cs >= static_cast<std::int64_t>(p) * cd,
               "MachineConfig: inclusivity requires CS >= p * CD");
  MCMM_REQUIRE(sigma_s > 0 && sigma_d > 0,
               "MachineConfig: bandwidths must be positive");
}

MachineConfig MachineConfig::with_caches_scaled(std::int64_t num,
                                                std::int64_t den) const {
  MCMM_REQUIRE(num >= 1 && den >= 1, "with_caches_scaled: bad factor");
  MachineConfig out = *this;
  out.cs = cs * num / den;
  out.cd = cd * num / den;
  return out;
}

MachineConfig MachineConfig::realistic_quadcore(std::int64_t q,
                                                double data_fraction) {
  MCMM_REQUIRE(q >= 1, "realistic_quadcore: q must be >= 1");
  MCMM_REQUIRE(data_fraction > 0 && data_fraction <= 1,
               "realistic_quadcore: data_fraction in (0, 1]");
  const double block_bytes = static_cast<double>(q) * static_cast<double>(q) * 8.0;
  MachineConfig out;
  out.p = 4;
  out.cs = static_cast<std::int64_t>(std::ceil(8e6 / block_bytes));
  out.cd = static_cast<std::int64_t>(
      std::ceil(data_fraction * 256e3 / block_bytes));
  return out;
}

MachineConfig MachineConfig::with_bandwidth_ratio(double r) const {
  MCMM_REQUIRE(r >= 0 && r <= 1, "with_bandwidth_ratio: r must be in [0,1]");
  // r = sigma_S / (sigma_S + sigma_D), normalised to sigma_S + sigma_D = 2.
  // Tdata diverges as either bandwidth vanishes, yet the paper's Figure 12
  // plots finite values at r = 0 and r = 1; clamp the ratio to [0.01, 0.99]
  // so the endpoints extend the trend instead of exploding.
  const double eps = 0.01;
  const double rr = std::min(1.0 - eps, std::max(eps, r));
  MachineConfig out = *this;
  out.sigma_s = 2.0 * rr;
  out.sigma_d = 2.0 * (1.0 - rr);
  return out;
}

std::string MachineConfig::describe() const {
  return "p=" + std::to_string(p) + " CS=" + std::to_string(cs) +
         " CD=" + std::to_string(cd) + " sigmaS=" + std::to_string(sigma_s) +
         " sigmaD=" + std::to_string(sigma_d);
}

}  // namespace mcmm
