#include "sim/parallel_section.hpp"

#include "util/error.hpp"

namespace mcmm {

ParallelSection::ParallelSection(Machine& machine)
    : machine_(machine),
      queues_(static_cast<std::size_t>(machine.cores())) {}

void ParallelSection::enqueue(int core, Op op) {
  MCMM_ASSERT(core >= 0 && core < machine_.cores(),
              "ParallelSection: bad core index");
  queues_[static_cast<std::size_t>(core)].push_back(op);
}

void ParallelSection::fma(int core, std::int64_t i, std::int64_t j,
                          std::int64_t k) {
  MCMM_ASSERT(i >= 0 && i < (1 << 30) && j >= 0 && j < (1 << 30) && k >= 0 &&
                  k < (1 << 30),
              "ParallelSection::fma: index out of range");
  enqueue(core, Op{Kind::kFma, 0, static_cast<std::int32_t>(i),
                   static_cast<std::int32_t>(j), static_cast<std::int32_t>(k)});
}

void ParallelSection::access(int core, BlockId b, Rw rw) {
  enqueue(core, Op{rw == Rw::kRead ? Kind::kRead : Kind::kWrite, b.bits(), 0,
                   0, 0});
}

void ParallelSection::load_distributed(int core, BlockId b) {
  enqueue(core, Op{Kind::kLoadD, b.bits(), 0, 0, 0});
}

void ParallelSection::evict_distributed(int core, BlockId b) {
  enqueue(core, Op{Kind::kEvictD, b.bits(), 0, 0, 0});
}

void ParallelSection::update_shared(int core, BlockId b) {
  enqueue(core, Op{Kind::kUpdateShared, b.bits(), 0, 0, 0});
}

void ParallelSection::run() {
  machine_.audit_step_begin();
  const std::int64_t chunk = machine_.interleave_chunk();
  std::vector<std::size_t> next(queues_.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      const int core = static_cast<int>(c);
      for (std::int64_t step = 0;
           step < chunk && next[c] < queues_[c].size(); ++step) {
        const Op& op = queues_[c][next[c]++];
        switch (op.kind) {
          case Kind::kFma:
            machine_.fma(core, op.i, op.j, op.k);
            break;
          case Kind::kRead:
            machine_.access(core, BlockId::from_bits(op.block_bits), Rw::kRead);
            break;
          case Kind::kWrite:
            machine_.access(core, BlockId::from_bits(op.block_bits),
                            Rw::kWrite);
            break;
          case Kind::kLoadD:
            machine_.load_distributed(core, BlockId::from_bits(op.block_bits));
            break;
          case Kind::kEvictD:
            machine_.evict_distributed(core,
                                       BlockId::from_bits(op.block_bits));
            break;
          case Kind::kUpdateShared:
            machine_.update_shared(core, BlockId::from_bits(op.block_bits));
            break;
        }
        progressed = true;
      }
    }
  }
  for (auto& q : queues_) q.clear();
  machine_.audit_step_end();
}

std::int64_t ParallelSection::pending() const {
  std::int64_t n = 0;
  for (const auto& q : queues_) n += static_cast<std::int64_t>(q.size());
  return n;
}

}  // namespace mcmm
