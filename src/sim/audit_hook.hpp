// Observation interface for machine-level verification tools.
//
// A hook attached to a Machine sees every data access *after* the machine
// has applied it (so cache occupancy queries reflect the post-state), every
// IDEAL-mode cache-management operation, and the begin/end of each
// ParallelSection step.  Multiple hooks can be attached at once — the
// invariant auditor (src/verify) and the step-aware trace recorder
// (src/trace) compose freely.
//
// Hooks are deliberately passive: they may inspect the machine but must not
// drive it, so attaching one never changes the simulated miss counts.
#pragma once

#include "sim/block_id.hpp"
#include "sim/machine.hpp"

namespace mcmm {

class AuditHook {
 public:
  AuditHook() = default;
  virtual ~AuditHook() = default;
  AuditHook(const AuditHook&) = delete;
  AuditHook& operator=(const AuditHook&) = delete;

  /// A data access (read or write) by `core` just completed.
  virtual void on_access(int core, BlockId b, Rw rw) = 0;

  /// An IDEAL-mode cache-management operation touching `b` just completed
  /// (load/evict at either level, or update_shared).  Never fires under LRU,
  /// where management calls are no-ops.
  virtual void on_cache_op(BlockId b) = 0;

  /// A ParallelSection began/finished dispatching one parallel step.
  virtual void on_step_begin() = 0;
  virtual void on_step_end() = 0;
};

}  // namespace mcmm
