// Fully-associative cache with LRU replacement, as in the paper's simulator.
//
// Capacity is counted in blocks (the paper's unit).  The cache is a pure
// mechanism: it tracks residency, recency and dirtiness; miss accounting and
// hierarchy propagation live in sim::Machine.  The recency structure is an
// intrusive doubly-linked list over a node pool, indexed by a fixed-capacity
// open-addressing map, giving O(1) touch/insert/evict with no allocation on
// the hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/block_id.hpp"
#include "sim/fixed_hash_map.hpp"

namespace mcmm {

class LruCache {
public:
  /// A block evicted to make room, with its dirty flag.
  struct Evicted {
    BlockId block;
    bool dirty;
  };

  explicit LruCache(std::int64_t capacity_blocks);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t size() const { return static_cast<std::int64_t>(map_.size()); }

  bool contains(BlockId b) const { return map_.contains(b.bits()); }

  /// If resident: promote to most-recently-used and return true.
  bool touch(BlockId b);

  /// Insert a non-resident block as MRU.  If the cache is full the LRU
  /// block is evicted and returned.  Inserting a resident block is a bug.
  std::optional<Evicted> insert(BlockId b, bool dirty);

  /// Mark a resident block dirty (write hit).
  void mark_dirty(BlockId b);

  bool is_dirty(BlockId b) const;

  /// Remove a specific block (inclusivity back-invalidation).
  /// Returns its dirty flag, or nullopt if it was not resident.
  std::optional<bool> erase(BlockId b);

  /// Peek at the current eviction victim without evicting.
  std::optional<BlockId> lru_block() const;

  /// Resident blocks, most recent first (diagnostics and tests).
  std::vector<BlockId> contents_mru_order() const;

  /// Drop everything (counts nothing).
  void clear();

private:
  struct Node {
    std::uint64_t key = BlockId::kInvalid;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    bool dirty = false;
  };
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  void unlink(std::uint32_t n);
  void link_front(std::uint32_t n);

  std::int64_t capacity_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;  // MRU
  std::uint32_t tail_ = kNil;  // LRU
  FixedHashMap map_;
};

}  // namespace mcmm
