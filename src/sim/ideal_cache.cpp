#include "sim/ideal_cache.hpp"

#include "util/error.hpp"

namespace mcmm {

IdealCache::IdealCache(std::int64_t capacity_blocks)
    : capacity_(capacity_blocks),
      map_(static_cast<std::size_t>(capacity_blocks)) {
  MCMM_REQUIRE(capacity_blocks >= 1, "IdealCache: capacity must be >= 1");
}

bool IdealCache::load(BlockId b) {
  if (map_.contains(b.bits())) return false;
  MCMM_ASSERT(size() < capacity_,
              ("IdealCache: load would exceed capacity, loading " + b.str())
                  .c_str());
  map_.insert(b.bits(), 0);
  return true;
}

bool IdealCache::evict(BlockId b) {
  std::uint32_t* v = map_.find(b.bits());
  MCMM_ASSERT(v != nullptr,
              ("IdealCache: evicting non-resident block " + b.str()).c_str());
  const bool dirty = *v != 0;
  map_.erase(b.bits());
  return dirty;
}

void IdealCache::mark_dirty(BlockId b) {
  std::uint32_t* v = map_.find(b.bits());
  MCMM_ASSERT(v != nullptr,
              ("IdealCache: dirtying non-resident block " + b.str()).c_str());
  *v = 1;
}

bool IdealCache::is_dirty(BlockId b) const {
  const std::uint32_t* v = map_.find(b.bits());
  MCMM_ASSERT(v != nullptr, "IdealCache::is_dirty: block not resident");
  return *v != 0;
}

std::vector<BlockId> IdealCache::contents() const {
  std::vector<BlockId> out;
  out.reserve(static_cast<std::size_t>(size()));
  map_.for_each([&](std::uint64_t key, std::uint32_t) {
    out.push_back(BlockId::from_bits(key));
  });
  return out;
}

void IdealCache::clear() { map_.clear(); }

}  // namespace mcmm
