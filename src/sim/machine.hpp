// The simulated multicore machine: p cores behind an inclusive two-level
// cache hierarchy, replicating the simulator of Section 4 of the paper.
//
// Two replacement policies are supported, selected at construction:
//
//  * Policy::kLru — "read and write operations are made at the distributed
//    cache level; if a miss occurs, operations are propagated throughout
//    the hierarchy until a cache hit happens".  Algorithms only issue
//    fma()/access(); the machine moves data with LRU replacement and
//    back-invalidation to preserve inclusivity.  The IDEAL management
//    calls are accepted and ignored, so the same algorithm code runs
//    under both policies.
//
//  * Policy::kIdeal — the omniscient mode: the algorithm explicitly
//    loads and evicts blocks in each cache; fma()/access() merely assert
//    that the touched blocks are resident.  Any capacity or residency
//    violation aborts, so IDEAL-mode schedules are machine-checked.
//
// Miss accounting follows the paper: a load into the shared cache is one
// shared miss (MS), a load into core c's distributed cache is one
// distributed miss for c (MD = max over cores).  Write-backs are tracked
// separately and never added to the miss counts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/block_id.hpp"
#include "sim/cache_stats.hpp"
#include "sim/ideal_cache.hpp"
#include "sim/lru_cache.hpp"
#include "sim/machine_config.hpp"

namespace mcmm {

class AuditHook;

enum class Policy { kLru, kIdeal };

inline const char* to_string(Policy p) {
  return p == Policy::kLru ? "LRU" : "IDEAL";
}

enum class Rw { kRead, kWrite };

class Machine {
public:
  Machine(const MachineConfig& cfg, Policy policy);

  const MachineConfig& config() const { return cfg_; }
  Policy policy() const { return policy_; }
  int cores() const { return cfg_.p; }

  /// One block multiply-add C[i,j] += A[i,k] * B[k,j] executed on `core`:
  /// reads A[i,k] and B[k,j], read-modify-writes C[i,j], and tallies one
  /// unit of computation for the core.
  void fma(int core, std::int64_t i, std::int64_t j, std::int64_t k);

  /// Raw data access (reads and write-allocates like fma, without the
  /// computation tally).  Exposed for tests and irregular access patterns.
  void access(int core, BlockId b, Rw rw);

  // --- IDEAL-mode cache management (ignored under LRU) -------------------
  /// Bring a block from memory into the shared cache (counts one shared
  /// miss if it was absent).
  void load_shared(BlockId b);
  /// Drop a block from the shared cache; a dirty block counts one
  /// write-back to memory.  The block must not be in any distributed cache.
  void evict_shared(BlockId b);
  /// Bring a block from the shared cache into core's distributed cache
  /// (counts one distributed miss for the core if absent).  Inclusivity
  /// requires the block to be resident in the shared cache.
  void load_distributed(int core, BlockId b);
  /// Drop a block from core's distributed cache; a dirty block counts one
  /// write-back to the shared cache and dirties the shared copy.
  void evict_distributed(int core, BlockId b);
  /// Propagate core's (dirty) copy of `b` to the shared copy without
  /// evicting — the paper's "update block in the shared cache" step.
  void update_shared(int core, BlockId b);

  /// Drain all caches, counting the write-backs of dirty blocks.
  void flush();

  const MachineStats& stats() const { return stats_; }

  /// How many consecutive operations each simulated core executes per
  /// round-robin turn inside parallel sections (default 1 = finest
  /// lockstep).  Larger values model cores drifting out of step; only the
  /// LRU policy is sensitive to it.  An ablation knob, read by
  /// ParallelSection.
  void set_interleave_chunk(std::int64_t ops) {
    MCMM_REQUIRE(ops >= 1, "interleave chunk must be >= 1");
    interleave_chunk_ = ops;
  }
  std::int64_t interleave_chunk() const { return interleave_chunk_; }

  // --- test & diagnostic hooks -------------------------------------------
  /// Called once per fma() with (core, i, j, k); used by coverage tests.
  using FmaObserver = std::function<void(int, std::int64_t, std::int64_t, std::int64_t)>;
  void set_fma_observer(FmaObserver obs) { observer_ = std::move(obs); }

  /// Called once per data access with (core, block, rw) — before the cache
  /// lookup, under both policies.  Used by the trace recorder.
  using AccessObserver = std::function<void(int, BlockId, Rw)>;
  void set_access_observer(AccessObserver obs) {
    access_observer_ = std::move(obs);
  }

  // --- verification hooks (src/sim/audit_hook.hpp) -----------------------
  /// Attach a passive observer that sees accesses, IDEAL cache-management
  /// operations and parallel-step boundaries.  Hooks stack; each attach
  /// must be paired with a detach before the hook is destroyed.
  void attach_audit_hook(AuditHook* hook);
  void detach_audit_hook(AuditHook* hook);
  bool has_audit_hooks() const { return !audit_hooks_.empty(); }

  /// Parallel-step boundary notifications, called by ParallelSection::run()
  /// (and by Trace::replay when the trace carries step markers).
  void audit_step_begin();
  void audit_step_end();

  bool resident_shared(BlockId b) const;
  bool resident_distributed(int core, BlockId b) const;
  std::int64_t shared_size() const;
  std::int64_t distributed_size(int core) const;
  /// Blocks currently resident in core's distributed cache (either policy;
  /// order unspecified).  For diagnostics and the invariant auditor.
  std::vector<BlockId> distributed_contents(int core) const;
  /// Abort unless every distributed-cache block is also in the shared cache.
  void check_inclusive() const;
  /// Abort unless all caches are empty (well-behaved IDEAL algorithms
  /// evict everything they load).
  void assert_empty() const;

private:
  void lru_access(int core, BlockId b, Rw rw);
  void lru_install_shared(BlockId b);
  void notify_access(int core, BlockId b, Rw rw);
  void notify_cache_op(BlockId b);

  MachineConfig cfg_;
  Policy policy_;
  MachineStats stats_;

  // Exactly one family is populated, according to policy_.
  std::optional<LruCache> lru_shared_;
  std::vector<LruCache> lru_dist_;
  std::optional<IdealCache> ideal_shared_;
  std::vector<IdealCache> ideal_dist_;

  FmaObserver observer_;
  AccessObserver access_observer_;
  std::vector<AuditHook*> audit_hooks_;
  std::int64_t interleave_chunk_ = 1;
};

}  // namespace mcmm
