// Open-addressing hash map with a fixed maximum load, specialised for the
// cache simulator's hot path (one lookup per simulated block access, billions
// per bench run).  Keys are 64-bit block ids, values are 32-bit node indices.
//
// Design:
//  * linear probing over a power-of-two table sized for <= 50% load, so
//    probes are short and cache-friendly;
//  * backward-shift deletion (no tombstones), so performance cannot degrade
//    over the long eviction-heavy runs the benches perform;
//  * capacity is fixed at construction — cache capacity is known up front,
//    so there is never a rehash on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

class FixedHashMap {
public:
  /// `max_entries` is the largest number of live entries ever stored.
  explicit FixedHashMap(std::size_t max_entries) {
    std::size_t want = max_entries * 2 + 8;
    std::size_t size = 1;
    shift_ = 64;
    while (size < want) {
      size <<= 1;
      --shift_;
    }
    slots_.assign(size, Slot{});
    mask_ = size - 1;
    max_entries_ = max_entries;
  }

  std::size_t size() const { return size_; }
  std::size_t max_entries() const { return max_entries_; }

  /// Returns pointer to the value for `key`, or nullptr if absent.
  std::uint32_t* find(std::uint64_t key) { return find_impl(*this, key); }
  const std::uint32_t* find(std::uint64_t key) const {
    return find_impl(*this, key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Insert a key that must not already be present.
  void insert(std::uint64_t key, std::uint32_t value) {
    MCMM_ASSERT(key != kEmpty, "FixedHashMap: reserved key");
    MCMM_ASSERT(size_ < max_entries_, "FixedHashMap: capacity exceeded");
    std::size_t i = index(key);
    while (slots_[i].key != kEmpty) {
      MCMM_ASSERT(slots_[i].key != key, "FixedHashMap: duplicate insert");
      i = (i + 1) & mask_;
    }
    slots_[i] = {key, value};
    ++size_;
  }

  /// Erase a key; returns true if it was present.
  bool erase(std::uint64_t key) {
    std::size_t i = index(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmpty) return false;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: close the probe chain.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].key != kEmpty) {
      const std::size_t home = index(slots_[j].key);
      // slots_[j] may move into the hole iff the hole lies on its probe
      // path: cyclic distance from home to j must reach past the hole.
      const bool movable = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  void clear() {
    for (auto& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Visit all live entries (order unspecified).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& s : slots_) {
      if (s.key != kEmpty) f(s.key, s.value);
    }
  }

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint32_t value = 0;
  };

  /// Shared lookup for the const and non-const find() overloads: `Self`
  /// deduces as `FixedHashMap` or `const FixedHashMap`, and the returned
  /// pointer's constness follows, with no const_cast.
  template <typename Self>
  static auto find_impl(Self& self, std::uint64_t key)
      -> decltype(&self.slots_[0].value) {
    std::size_t i = self.index(key);
    while (self.slots_[i].key != kEmpty) {
      if (self.slots_[i].key == key) return &self.slots_[i].value;
      i = (i + 1) & self.mask_;
    }
    return nullptr;
  }

  std::size_t index(std::uint64_t key) const {
    // Fibonacci hashing, taking the HIGH bits of the product: block-id keys
    // have structured low bits (tag/row/col fields), and the low bits of
    // key * C inherit that structure — masking them directly would send
    // whole block columns to the same slot.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
  std::size_t max_entries_ = 0;
};

}  // namespace mcmm
