// The master-worker substrate the paper builds on: Pineau, Robert, Vivien
// & Dongarra's Maximum Reuse Algorithm [7] for matrix product on
// master-worker platforms, plus the equal-thirds baseline it improved on.
//
// Model (from [7], simplified to homogeneous workers): a master holds the
// matrices and serves `workers` workers over a shared serialised link of
// `bandwidth` blocks per time unit (one block in flight at a time); each
// worker has a private memory of `memory_blocks` blocks and computes one
// block FMA per `1/compute_rate` time units.  The paper's multicore
// machine replaces the master with the shared cache and the workers'
// memories with the distributed caches — the algorithms are the same
// shapes, which is why this module exists: it lets the tests check that
// our Algorithm 2 degenerates to the original MRA when the shared cache
// is "infinite" (a master).
//
// Two schedules:
//  * MaximumReuse — the 1 + mu + mu^2 allocation: a mu x mu block of C
//    stays on the worker until complete, B row fragments and A elements
//    stream through.  Volume per worker per C block: 2 z mu + mu^2 (+
//    mu^2 to return C); CCR -> 2/mu ~ 2/sqrt(M) for large matrices.
//  * EqualThirds — Toledo's split: s x s blocks of each matrix with
//    3 s^2 <= M; CCR -> 2/s ~ 2 sqrt(3)/sqrt(M).
//
// The simulator computes both the exact communication volume and a
// makespan under perfect double-buffering (a worker computes its current
// task while the master streams the next one): the makespan is the
// critical path of a pipeline whose stages are serialised master sends
// and parallel worker computes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/problem.hpp"

namespace mcmm {

struct MwConfig {
  int workers = 4;
  std::int64_t memory_blocks = 21;  ///< per-worker memory, in blocks
  double bandwidth = 1.0;           ///< master link, blocks per time unit
  double compute_rate = 1.0;        ///< block FMAs per time unit per worker

  /// Heterogeneous platforms ([7] targets "heterogeneous master-worker
  /// platforms"): per-worker compute rates overriding `compute_rate`.
  /// Empty = homogeneous.  When set, tiles are dealt greedily to the
  /// worker with the earliest finish time instead of round-robin.
  std::vector<double> worker_rates;

  double rate_of(int worker) const {
    return worker_rates.empty()
               ? compute_rate
               : worker_rates[static_cast<std::size_t>(worker)];
  }

  void validate() const;
};

enum class MwSchedule { kMaximumReuse, kEqualThirds };

const char* to_string(MwSchedule s);

/// Result of simulating one schedule on one problem.
struct MwResult {
  std::int64_t volume = 0;      ///< blocks sent master->worker + returned C
  std::int64_t sends = 0;       ///< individual block transfers
  std::int64_t fmas = 0;        ///< total block FMAs (== m n z)
  double comm_time = 0;         ///< volume / bandwidth (link is serialised)
  double compute_time = 0;      ///< per-worker compute on the critical path
  double makespan = 0;          ///< pipeline completion time
  double ccr() const {
    return static_cast<double>(volume) / static_cast<double>(fmas);
  }
};

/// The schedule's tile side: mu (1 + mu + mu^2 <= M) for MaximumReuse,
/// s = floor(sqrt(M/3)) for EqualThirds.
std::int64_t mw_tile_side(MwSchedule schedule, std::int64_t memory_blocks);

/// Exact volume accounting + pipelined makespan for the schedule.
MwResult run_master_worker(const MwConfig& cfg, const Problem& prob,
                           MwSchedule schedule);

/// Lower bound on the total communication volume from [7]'s refinement of
/// the Irony-Toledo-Tiskin bound: volume >= 2 mnz / sqrt(M) for large
/// matrices (block units; M = per-worker memory).
double mw_volume_lower_bound(const Problem& prob, std::int64_t memory_blocks);

}  // namespace mcmm
