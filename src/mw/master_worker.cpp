#include "mw/master_worker.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {

void MwConfig::validate() const {
  MCMM_REQUIRE(workers >= 1, "MwConfig: need at least one worker");
  MCMM_REQUIRE(memory_blocks >= 3,
               "MwConfig: workers need at least 3 blocks of memory");
  MCMM_REQUIRE(bandwidth > 0 && compute_rate > 0,
               "MwConfig: rates must be positive");
  if (!worker_rates.empty()) {
    MCMM_REQUIRE(static_cast<int>(worker_rates.size()) == workers,
                 "MwConfig: worker_rates must have one entry per worker");
    for (const double r : worker_rates) {
      MCMM_REQUIRE(r > 0, "MwConfig: worker rates must be positive");
    }
  }
}

const char* to_string(MwSchedule s) {
  return s == MwSchedule::kMaximumReuse ? "maximum-reuse" : "equal-thirds";
}

std::int64_t mw_tile_side(MwSchedule schedule, std::int64_t memory_blocks) {
  MCMM_REQUIRE(memory_blocks >= 3, "mw_tile_side: memory must be >= 3 blocks");
  if (schedule == MwSchedule::kMaximumReuse) {
    return max_reuse_parameter(memory_blocks);
  }
  return std::max<std::int64_t>(isqrt(memory_blocks / 3), 1);
}

MwResult run_master_worker(const MwConfig& cfg, const Problem& prob,
                           MwSchedule schedule) {
  cfg.validate();
  prob.validate();
  const std::int64_t side = mw_tile_side(schedule, cfg.memory_blocks);

  MwResult out;
  out.fmas = prob.fmas();
  std::vector<std::int64_t> worker_fmas(static_cast<std::size_t>(cfg.workers),
                                        0);
  int next_worker = 0;
  std::int64_t first_fill = 0;  // input blocks before the first FMA can run
  std::int64_t last_drain = 0;  // the final C tile returned after all work

  // Homogeneous platforms deal tiles round-robin; heterogeneous ones give
  // each tile to the worker that would finish it earliest (the greedy
  // list-scheduling rule of [7]).
  auto pick_worker = [&](std::int64_t tile_fmas) {
    if (cfg.worker_rates.empty()) {
      const int w = next_worker;
      next_worker = (next_worker + 1) % cfg.workers;
      return w;
    }
    int best = 0;
    double best_finish = 0;
    for (int w = 0; w < cfg.workers; ++w) {
      const double finish =
          static_cast<double>(worker_fmas[static_cast<std::size_t>(w)] +
                              tile_fmas) /
          cfg.rate_of(w);
      if (w == 0 || finish < best_finish) {
        best = w;
        best_finish = finish;
      }
    }
    return best;
  };

  for (std::int64_t i0 = 0; i0 < prob.m; i0 += side) {
    const std::int64_t ti = std::min(side, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += side) {
      const std::int64_t tj = std::min(side, prob.n - j0);
      // Each tile is computed entirely on one worker (the defining
      // property of both schedules).
      const int w = pick_worker(ti * tj * prob.z);
      worker_fmas[static_cast<std::size_t>(w)] += ti * tj * prob.z;

      std::int64_t tile_in = 0;
      if (schedule == MwSchedule::kMaximumReuse) {
        // Per k: a B row fragment (tj) and an A column fragment (ti); the
        // C tile lives on the worker from the start (accumulated from 0).
        tile_in = prob.z * (ti + tj);
        if (first_fill == 0 && prob.z > 0) first_fill = ti + tj;
      } else {
        // Per K-panel of depth <= side: an A tile (ti x tk) and a B tile
        // (tk x tj).
        for (std::int64_t k0 = 0; k0 < prob.z; k0 += side) {
          const std::int64_t tk = std::min(side, prob.z - k0);
          tile_in += ti * tk + tk * tj;
          if (first_fill == 0) first_fill = ti * tk + tk * tj;
        }
      }
      out.volume += tile_in + ti * tj;  // inputs + the C tile returned
      out.sends += tile_in + ti * tj;
      last_drain = ti * tj;
    }
  }

  out.comm_time = static_cast<double>(out.volume) / cfg.bandwidth;
  double slowest = 0;
  for (int w = 0; w < cfg.workers; ++w) {
    slowest = std::max(
        slowest, static_cast<double>(worker_fmas[static_cast<std::size_t>(w)]) /
                     cfg.rate_of(w));
  }
  out.compute_time = slowest;
  // Idealised pipeline with double-buffering: the serialised link and the
  // parallel computes overlap fully except for filling the first task and
  // draining the last result.
  out.makespan = std::max(out.comm_time, out.compute_time) +
                 static_cast<double>(first_fill + last_drain) / cfg.bandwidth;
  return out;
}

double mw_volume_lower_bound(const Problem& prob,
                             std::int64_t memory_blocks) {
  MCMM_REQUIRE(memory_blocks >= 1, "mw_volume_lower_bound: bad memory");
  return 2.0 * static_cast<double>(prob.fmas()) /
         std::sqrt(static_cast<double>(memory_blocks));
}

}  // namespace mcmm
