// Machine-checked verification of the invariants the paper's model rests
// on.  The auditor attaches to a Machine as a passive AuditHook and checks,
// as the schedule executes:
//
//  * capacity   — shared-cache occupancy never exceeds CS and no
//                 distributed cache exceeds CD (Section 2.1's machine
//                 model; limits default to the machine's own geometry but
//                 can be tightened to audit a declared footprint);
//  * inclusion  — at every parallel-step boundary, every block resident in
//                 a distributed cache is also resident in the shared cache
//                 (the hierarchy of Figure 1 is inclusive);
//  * write race — no two cores write the same block within one parallel
//                 step (the SPMD schedules are race-free "by construction";
//                 this checks the construction);
//  * bounds     — after a complete m x n x z product, measured MS and MD
//                 are at least the Loomis-Whitney lower bounds of
//                 Section 2.3 (Irony-Toledo-Tiskin): counting fewer misses
//                 than any schedule can achieve means the simulator's
//                 accounting is broken.
//
// Violations are recorded with provenance (step, core, block) rather than
// aborting, so tools can replay a whole schedule and report every problem.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/audit_hook.hpp"
#include "sim/block_id.hpp"
#include "sim/machine.hpp"
#include "sim/problem.hpp"

namespace mcmm {

enum class ViolationKind {
  kSharedCapacity,
  kDistributedCapacity,
  kInclusion,
  kWriteRace,
  kMsBound,
  kMdBound,
};

const char* to_string(ViolationKind k);
inline constexpr int kViolationKinds = 6;

/// One detected invariant violation, with provenance.
struct Violation {
  ViolationKind kind = ViolationKind::kSharedCapacity;
  std::int64_t step = -1;  ///< parallel-step index, -1 if outside any step
  int core = -1;           ///< offending core, -1 if not core-specific
  BlockId block;           ///< offending block, invalid if not block-specific
  std::string detail;

  std::string str() const;
};

struct AuditReport {
  /// Stored violations, capped at kMaxRecorded; counts are always complete.
  static constexpr std::size_t kMaxRecorded = 64;
  std::vector<Violation> violations;
  std::int64_t count_by_kind[kViolationKinds] = {};

  std::int64_t steps = 0;     ///< parallel steps observed
  std::int64_t accesses = 0;  ///< data accesses observed
  bool bounds_checked = false;
  double ms_bound = 0.0;  ///< Loomis-Whitney floor used by finalize()
  double md_bound = 0.0;
  std::int64_t ms_measured = 0;
  std::int64_t md_measured = 0;

  std::int64_t total() const;
  bool clean() const { return total() == 0; }
  /// Human-readable multi-line account (counts per kind + first samples).
  std::string summary() const;
};

/// Capacity limits to audit against.  Zero fields default to the machine's
/// physical geometry; tightening them audits a *declared* footprint (e.g.
/// the capacity a schedule promised its working set would fit in).
struct AuditLimits {
  std::int64_t cs = 0;
  std::int64_t cd = 0;
};

class InvariantAuditor final : public AuditHook {
 public:
  /// Attaches itself to `machine`; detaches on destruction.  The machine
  /// must outlive the auditor.
  explicit InvariantAuditor(Machine& machine, AuditLimits limits = {});
  ~InvariantAuditor() override;

  void on_access(int core, BlockId b, Rw rw) override;
  void on_cache_op(BlockId b) override;
  void on_step_begin() override;
  void on_step_end() override;

  /// End-of-run checks for a complete m x n x z product: inclusion once
  /// more, then measured MS/MD against the Section 2.3 lower bounds.
  /// Call after Machine::flush().
  void finalize(const Problem& prob);

  /// Inclusion-only end-of-run check, for runs that are not a complete
  /// matrix product (e.g. replayed traces, LU sweeps).
  void finalize_without_bounds();

  const AuditReport& report() const { return report_; }
  const AuditLimits& limits() const { return limits_; }

 private:
  void record(ViolationKind kind, int core, BlockId block, std::string detail);
  void check_capacity(BlockId b);
  void check_inclusion();

  Machine& machine_;
  AuditLimits limits_;
  AuditReport report_;
  bool in_step_ = false;
  std::int64_t step_index_ = -1;  ///< current step, -1 between steps
  /// block -> first core that wrote it in the current parallel step.
  std::unordered_map<std::uint64_t, int> step_writers_;
  /// Capacity-violation edge detection, so a persistently over-full cache
  /// is reported once per excursion rather than once per access.
  bool shared_over_ = false;
  std::vector<bool> dist_over_;
};

}  // namespace mcmm
