#include "verify/invariant_auditor.hpp"

#include <utility>

#include "analysis/bounds.hpp"
#include "util/error.hpp"

namespace mcmm {

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kSharedCapacity: return "shared-capacity";
    case ViolationKind::kDistributedCapacity: return "distributed-capacity";
    case ViolationKind::kInclusion: return "inclusion";
    case ViolationKind::kWriteRace: return "write-race";
    case ViolationKind::kMsBound: return "ms-bound";
    case ViolationKind::kMdBound: return "md-bound";
  }
  return "?";
}

std::string Violation::str() const {
  // Built by append: GCC 12's -O2 inliner raises a spurious -Wrestrict on
  // operator+ chains that mix literals and temporaries.
  std::string out = "[";
  out += to_string(kind);
  out += ']';
  if (step >= 0) {
    out += " step ";
    out += std::to_string(step);
  }
  if (core >= 0) {
    out += " core ";
    out += std::to_string(core);
  }
  if (block.valid()) {
    out += " block ";
    out += block.str();
  }
  out += ": ";
  out += detail;
  return out;
}

std::int64_t AuditReport::total() const {
  std::int64_t n = 0;
  for (const std::int64_t c : count_by_kind) n += c;
  return n;
}

std::string AuditReport::summary() const {
  std::string out;
  if (clean()) {
    out = "audit: clean (" + std::to_string(steps) + " parallel steps, " +
          std::to_string(accesses) + " accesses";
    if (bounds_checked) {
      out += ", MS " + std::to_string(ms_measured) + " >= bound " +
             std::to_string(static_cast<std::int64_t>(ms_bound)) + ", MD " +
             std::to_string(md_measured) + " >= bound " +
             std::to_string(static_cast<std::int64_t>(md_bound));
    }
    out += ")";
    return out;
  }
  out = "audit: " + std::to_string(total()) + " violation(s) in " +
        std::to_string(steps) + " parallel steps / " +
        std::to_string(accesses) + " accesses\n";
  for (int k = 0; k < kViolationKinds; ++k) {
    if (count_by_kind[k] > 0) {
      out += "  " + std::string(to_string(static_cast<ViolationKind>(k))) +
             ": " + std::to_string(count_by_kind[k]) + "\n";
    }
  }
  const std::size_t shown = violations.size();
  out += "  first " + std::to_string(shown) + " recorded:\n";
  for (const Violation& v : violations) out += "    " + v.str() + "\n";
  return out;
}

InvariantAuditor::InvariantAuditor(Machine& machine, AuditLimits limits)
    : machine_(machine), limits_(limits) {
  if (limits_.cs <= 0) limits_.cs = machine.config().cs;
  if (limits_.cd <= 0) limits_.cd = machine.config().cd;
  dist_over_.assign(static_cast<std::size_t>(machine.cores()), false);
  machine_.attach_audit_hook(this);
}

InvariantAuditor::~InvariantAuditor() { machine_.detach_audit_hook(this); }

void InvariantAuditor::record(ViolationKind kind, int core, BlockId block,
                              std::string detail) {
  ++report_.count_by_kind[static_cast<int>(kind)];
  if (report_.violations.size() < AuditReport::kMaxRecorded) {
    report_.violations.push_back(
        Violation{kind, step_index_, core, block, std::move(detail)});
  }
}

void InvariantAuditor::check_capacity(BlockId b) {
  // Edge-triggered: one violation per excursion above the limit, not one
  // per access while over it.
  const std::int64_t ss = machine_.shared_size();
  if (ss > limits_.cs) {
    if (!shared_over_) {
      shared_over_ = true;
      record(ViolationKind::kSharedCapacity, -1, b,
             "shared cache holds " + std::to_string(ss) + " blocks, limit " +
                 std::to_string(limits_.cs));
    }
  } else {
    shared_over_ = false;
  }
  for (int c = 0; c < machine_.cores(); ++c) {
    const std::int64_t ds = machine_.distributed_size(c);
    if (ds > limits_.cd) {
      if (!dist_over_[static_cast<std::size_t>(c)]) {
        dist_over_[static_cast<std::size_t>(c)] = true;
        record(ViolationKind::kDistributedCapacity, c, b,
               "distributed cache holds " + std::to_string(ds) +
                   " blocks, limit " + std::to_string(limits_.cd));
      }
    } else {
      dist_over_[static_cast<std::size_t>(c)] = false;
    }
  }
}

void InvariantAuditor::check_inclusion() {
  for (int c = 0; c < machine_.cores(); ++c) {
    for (const BlockId b : machine_.distributed_contents(c)) {
      if (!machine_.resident_shared(b)) {
        record(ViolationKind::kInclusion, c, b,
               "resident in core " + std::to_string(c) +
                   "'s distributed cache but not in the shared cache");
      }
    }
  }
}

void InvariantAuditor::on_access(int core, BlockId b, Rw rw) {
  ++report_.accesses;
  check_capacity(b);
  if (in_step_ && rw == Rw::kWrite) {
    const auto [it, inserted] = step_writers_.try_emplace(b.bits(), core);
    if (!inserted && it->second != core) {
      record(ViolationKind::kWriteRace, core, b,
             "also written by core " + std::to_string(it->second) +
                 " in the same parallel step");
    }
  }
}

void InvariantAuditor::on_cache_op(BlockId b) { check_capacity(b); }

void InvariantAuditor::on_step_begin() {
  step_index_ = report_.steps;
  ++report_.steps;
  in_step_ = true;
  step_writers_.clear();
}

void InvariantAuditor::on_step_end() {
  check_inclusion();
  in_step_ = false;
  step_writers_.clear();
  step_index_ = -1;
}

void InvariantAuditor::finalize_without_bounds() { check_inclusion(); }

void InvariantAuditor::finalize(const Problem& prob) {
  check_inclusion();
  const MachineConfig& cfg = machine_.config();
  const MachineStats& st = machine_.stats();
  report_.bounds_checked = true;
  report_.ms_bound = ms_lower_bound(prob, cfg.cs);
  report_.md_bound = md_lower_bound(prob, cfg.p, cfg.cd);
  report_.ms_measured = st.ms();
  report_.md_measured = st.md();
  // A measured count below the Loomis-Whitney floor cannot come from a
  // valid schedule: it means misses were dropped somewhere in the
  // simulator's accounting.  Small epsilon absorbs the double rounding.
  if (static_cast<double>(report_.ms_measured) < report_.ms_bound - 1e-6) {
    record(ViolationKind::kMsBound, -1, BlockId{},
           "measured MS " + std::to_string(report_.ms_measured) +
               " below the Loomis-Whitney bound " +
               std::to_string(report_.ms_bound));
  }
  if (static_cast<double>(report_.md_measured) < report_.md_bound - 1e-6) {
    record(ViolationKind::kMdBound, -1, BlockId{},
           "measured MD " + std::to_string(report_.md_measured) +
               " below the Loomis-Whitney bound " +
               std::to_string(report_.md_bound));
  }
}

}  // namespace mcmm
