// Cache-miss simulation of tiled LU factorization on the paper's multicore
// model — extending its analysis to the "more complex operations, such as
// LU factorization" named as future work.
//
// The matrix is n x n *blocks* (each a q x q tile, as everywhere in the
// simulator); block kernels are:
//   factor(K,K)        — unblocked LU of the diagonal block,
//   trsm(I,K)/(K,J)    — panel solves against the diagonal block,
//   update(I,J,K)      — T(I,J) -= L(I,K) * U(K,J).
//
// Two schedules over the same kernel set:
//
//  * right-looking — after each diagonal step the WHOLE trailing matrix is
//    updated.  Every trailing block is re-touched once per step with a
//    reuse distance of the full trailing matrix: the LU analogue of Outer
//    Product, and just as miss-heavy once the trailing matrix outgrows the
//    shared cache.
//
//  * left-looking with column panels — each target block accumulates ALL
//    of its updates consecutively before being factored/solved, and
//    `panel_width` columns are processed together so every L block read
//    from the shared cache serves panel_width targets: the LU analogue of
//    the Maximum Reuse idea (and of the Tradeoff's beta parameter).
//    Without panelling (width 1) each L block is fetched once per update
//    and the schedule is no better than right-looking — the panelled
//    variant cuts the dominant n^3/3 L-fetch term by the panel width.
//
// Both run under LRU (no IDEAL management, like the paper's baselines);
// cores take update kernels round-robin.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace mcmm {

/// Kernel-level operation counts of an n x n-block LU (for CCR reporting).
struct LuWork {
  std::int64_t factor_ops = 0;  ///< diagonal factorizations (n)
  std::int64_t trsm_ops = 0;    ///< panel solves (n(n-1))
  std::int64_t update_ops = 0;  ///< block FMAs (n(n-1)(2n-1)/6)
  std::int64_t total() const { return factor_ops + trsm_ops + update_ops; }
};
LuWork lu_work(std::int64_t n_blocks);

/// Simulate the right-looking schedule; returns the kernel counts (the
/// machine's stats carry the misses).
LuWork simulate_lu_right_looking(Machine& machine, std::int64_t n_blocks);

/// Simulate the left-looking (maximum-reuse-style) schedule.
/// `panel_width` columns are accumulated together (>= 1); pass 0 to let
/// the routine pick lu_panel_width(...) from the machine's geometry.
LuWork simulate_lu_left_looking(Machine& machine, std::int64_t n_blocks,
                                std::int64_t panel_width = 0);

/// Default panel width: the widest panel whose shared-cache working set
/// (the U panel, the active targets and the streaming L blocks) fits in
/// roughly 80% of CS, clamped to [1, CD - 2] so each core can keep its
/// target row resident.
std::int64_t lu_panel_width(const MachineConfig& cfg, std::int64_t n_blocks);

/// Loomis-Whitney-style floor on shared-cache misses for the update phase
/// of LU: its n^3/3 block FMAs are a conventional (partial) matrix product,
/// so MS >= (n^3/3) sqrt(27/(8 CS)) asymptotically (cf. Section 2.3; the
/// same argument Ballard et al. later formalised for factorizations).
double lu_ms_lower_bound(std::int64_t n_blocks, std::int64_t cs);

}  // namespace mcmm
