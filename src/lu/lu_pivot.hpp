// LU factorization with partial (row) pivoting: P A = L U.
//
// The pivot-free kernels in lu_kernel.hpp match the simulated schedules
// but require safe pivots (diagonally dominant inputs).  These routines
// handle general non-singular matrices: classic GETRF-style panel
// factorization with row swaps applied across the whole matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "gemm/matrix.hpp"

namespace mcmm {

/// Row permutation: pivots[k] = the row swapped into position k at step k
/// (LAPACK ipiv convention, 0-based).  Applying the swaps in order k = 0..
/// n-1 to a vector reproduces P b.
using PivotVector = std::vector<std::int64_t>;

/// Factor A in place into L (unit lower) and U with partial pivoting.
/// Throws mcmm::Error on a (numerically) singular matrix.
PivotVector lu_factor_pivoted(Matrix& a);

/// Blocked variant (q x q panels), identical factors up to rounding.
PivotVector lu_factor_pivoted_blocked(Matrix& a, std::int64_t q);

/// Solve A x = b given the packed pivoted factors.
std::vector<double> lu_solve_pivoted(const Matrix& lu,
                                     const PivotVector& pivots,
                                     const std::vector<double>& b);

/// max |(P A - L U)[i][j]| / n: the pivoted factorization residual.
double lu_pivoted_residual(const Matrix& original, const Matrix& lu,
                           const PivotVector& pivots);

}  // namespace mcmm
