// Multithreaded tiled LU factorization on real data — the LU counterpart
// of gemm/parallel_gemm.hpp.
//
// Right-looking with q x q tiles; each step factors the diagonal tile
// (sequential), then triangular-solves the row and column panels and
// applies the trailing update in parallel (a fork/join barrier separates
// the phases, which is exactly the dependency structure of the
// factorization).
//
// Two faces:
//  * the loop-based overload — naive per-coefficient panel solves and
//    trailing updates, kept as the measurable baseline and parity oracle;
//  * the kernel-routed overload — the O(n^3)-dominant trailing update
//    runs through KernelContext as packed rank-kb downdates (C -= L*U via
//    a negated packed L panel, bit-exact under IEEE-754), the row-panel U
//    strip is packed ONCE per step and shared read-only across workers
//    (the SharedPackedB amortisation argument from src/batch), and the
//    panel solves are blocked so their own bulk updates route through the
//    engine too.  Tracer phases: factor / trsm / pack-b / pack-a /
//    micro-kernel, one region per phase per step.  docs/lu.md has the
//    full contract.
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"

namespace mcmm {

class KernelContext;

/// Factor A = L * U in place with q x q tiles using `pool`'s workers.
/// Identical factors to lu_factor_blocked up to rounding.  No pivoting —
/// use matrices with safe pivots (e.g. diagonally_dominant_matrix).
/// Handles every degenerate shape (n < q, q = 1, 1 x 1, 0 x 0).
void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool);

/// The kernel-routed factorization: same tile dependency structure, with
/// panel solves and trailing updates executing through `ctx`'s packed
/// micro-kernel engine (see the header comment).  `ctx` must have at
/// least pool.workers() workers.  Same factors as the loop-based overload
/// up to rounding; bit-identical across worker counts for a fixed kernel
/// path (every tile's value chain is worker-independent).  A zero pivot
/// throws mcmm::Error from the pool's dispatch site without wedging the
/// pool.
void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool,
                        KernelContext& ctx);

}  // namespace mcmm
