// Multithreaded tiled LU factorization on real data — the LU counterpart
// of gemm/parallel_gemm.hpp.
//
// Right-looking with q x q tiles; each step factors the diagonal tile
// (sequential), then triangular-solves the row and column panels and
// applies the trailing update in parallel (tiles statically partitioned
// among the workers; a fork/join barrier separates the phases, which is
// exactly the dependency structure of the factorization).
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"

namespace mcmm {

/// Factor A = L * U in place with q x q tiles using `pool`'s workers.
/// Identical factors to lu_factor_blocked up to rounding.  No pivoting —
/// use matrices with safe pivots (e.g. diagonally_dominant_matrix).
void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool);

}  // namespace mcmm
