// Sequential LU factorization kernels — the first of the paper's two
// "future work" directions ("we will tackle more complex operations, such
// as LU factorization").
//
// All routines factor A = L * U in place without pivoting (L unit lower
// triangular sharing storage with U).  Callers supply matrices for which
// this is numerically safe — the helpers in this library generate strictly
// diagonally dominant test matrices, for which pivot-free LU is stable.
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"

namespace mcmm {

/// Right-looking unblocked LU (Doolittle), in place.  Throws on a zero
/// pivot or a non-square matrix.  A 0 x 0 matrix is a no-op.
void lu_factor_unblocked(Matrix& a);

/// Unblocked LU restricted to the diagonal sub-block [k0, k0+kb) — the
/// panel kernel every blocked/parallel factorization in this library
/// shares (exported so there is exactly one implementation to maintain).
/// Throws on a zero pivot; kb = 0 is a no-op.
void lu_factor_diagonal(Matrix& a, std::int64_t k0, std::int64_t kb);

/// Right-looking blocked LU with q x q tiles: factor the diagonal block,
/// triangular-solve the row and column panels, rank-q update the trailing
/// matrix.  Identical factors to the unblocked routine up to rounding.
/// Handles every degenerate shape (n < q, q = 1, 1 x 1, 0 x 0).
void lu_factor_blocked(Matrix& a, std::int64_t q);

/// Solve L * X = B in place on B, with L's strictly-lower part taken from
/// `lu` rows/cols [k0, k0+kb) and an implicit unit diagonal.  B is the
/// sub-panel rows [k0, k0+kb) x cols [j0, j0+nb) of `a`.
void trsm_lower_left_unit(const Matrix& lu, Matrix& a, std::int64_t k0,
                          std::int64_t kb, std::int64_t j0, std::int64_t nb);

/// Solve X * U = B in place on B, with U upper triangular from `lu` at
/// [k0, k0+kb); B is rows [i0, i0+mb) x cols [k0, k0+kb) of `a`.
void trsm_upper_right(const Matrix& lu, Matrix& a, std::int64_t k0,
                      std::int64_t kb, std::int64_t i0, std::int64_t mb);

/// Multiply the packed factors back: returns L * U (for validation).
Matrix lu_reconstruct(const Matrix& lu);

/// Solve A x = b given the packed factors (forward then back substitution).
std::vector<double> lu_solve(const Matrix& lu, const std::vector<double>& b);

/// A reproducible, strictly diagonally dominant matrix (safe pivots).
Matrix diagonally_dominant_matrix(std::int64_t n, std::uint64_t seed);

/// max |(L*U - A)[i][j]| relative to n — the factorization residual.
double lu_residual(const Matrix& original, const Matrix& lu);

}  // namespace mcmm
