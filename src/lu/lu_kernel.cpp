#include "lu/lu_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "gemm/kernel.hpp"

namespace mcmm {

namespace {

void check_square(const Matrix& a, const char* who) {
  MCMM_REQUIRE(a.rows() == a.cols(),
               std::string(who) + ": matrix must be square");
}

}  // namespace

void lu_factor_diagonal(Matrix& a, std::int64_t k0, std::int64_t kb) {
  for (std::int64_t k = k0; k < k0 + kb; ++k) {
    const double pivot = a.at(k, k);
    MCMM_REQUIRE(pivot != 0.0, "lu_factor: zero pivot (matrix needs pivoting)");
    for (std::int64_t i = k + 1; i < k0 + kb; ++i) {
      a.at(i, k) /= pivot;
      const double lik = a.at(i, k);
      for (std::int64_t j = k + 1; j < k0 + kb; ++j) {
        a.at(i, j) -= lik * a.at(k, j);
      }
    }
  }
}

void lu_factor_unblocked(Matrix& a) {
  check_square(a, "lu_factor_unblocked");
  lu_factor_diagonal(a, 0, a.rows());
}

void trsm_lower_left_unit(const Matrix& lu, Matrix& a, std::int64_t k0,
                          std::int64_t kb, std::int64_t j0, std::int64_t nb) {
  // Forward substitution, row by row of the panel: row i of X gets the
  // already-solved rows r < i scaled by L[i][r] subtracted.
  for (std::int64_t i = 1; i < kb; ++i) {
    for (std::int64_t r = 0; r < i; ++r) {
      const double l = lu.at(k0 + i, k0 + r);
      for (std::int64_t j = 0; j < nb; ++j) {
        a.at(k0 + i, j0 + j) -= l * a.at(k0 + r, j0 + j);
      }
    }
  }
}

void trsm_upper_right(const Matrix& lu, Matrix& a, std::int64_t k0,
                      std::int64_t kb, std::int64_t i0, std::int64_t mb) {
  // Column by column: X[:,c] = (B[:,c] - sum_{r<c} X[:,r] U[r][c]) / U[c][c].
  for (std::int64_t c = 0; c < kb; ++c) {
    const double pivot = lu.at(k0 + c, k0 + c);
    MCMM_REQUIRE(pivot != 0.0, "trsm_upper_right: zero pivot");
    for (std::int64_t r = 0; r < c; ++r) {
      const double u = lu.at(k0 + r, k0 + c);
      for (std::int64_t i = 0; i < mb; ++i) {
        a.at(i0 + i, k0 + c) -= a.at(i0 + i, k0 + r) * u;
      }
    }
    for (std::int64_t i = 0; i < mb; ++i) {
      a.at(i0 + i, k0 + c) /= pivot;
    }
  }
}

void lu_factor_blocked(Matrix& a, std::int64_t q) {
  check_square(a, "lu_factor_blocked");
  MCMM_REQUIRE(q >= 1, "lu_factor_blocked: block size must be >= 1");
  const std::int64_t n = a.rows();
  for (std::int64_t k0 = 0; k0 < n; k0 += q) {
    const std::int64_t kb = std::min(q, n - k0);
    lu_factor_diagonal(a, k0, kb);
    const std::int64_t rest = n - (k0 + kb);
    if (rest <= 0) continue;
    // U12 = L11^-1 A12 and L21 = A21 U11^-1.
    trsm_lower_left_unit(a, a, k0, kb, k0 + kb, rest);
    trsm_upper_right(a, a, k0, kb, k0 + kb, rest);
    // Trailing update A22 -= L21 * U12.
    for (std::int64_t i = k0 + kb; i < n; ++i) {
      for (std::int64_t k = k0; k < k0 + kb; ++k) {
        const double lik = a.at(i, k);
        for (std::int64_t j = k0 + kb; j < n; ++j) {
          a.at(i, j) -= lik * a.at(k, j);
        }
      }
    }
  }
}

Matrix lu_reconstruct(const Matrix& lu) {
  check_square(lu, "lu_reconstruct");
  const std::int64_t n = lu.rows();
  Matrix out(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // (L*U)[i][j] = sum over k <= min(i, j) of L[i][k] U[k][j],
      // with L[i][i] = 1.
      double sum = 0;
      const std::int64_t kmax = std::min(i, j);
      for (std::int64_t k = 0; k <= kmax; ++k) {
        const double l = k == i ? 1.0 : lu.at(i, k);
        sum += l * lu.at(k, j);
      }
      out.at(i, j) = sum;
    }
  }
  return out;
}

std::vector<double> lu_solve(const Matrix& lu, const std::vector<double>& b) {
  check_square(lu, "lu_solve");
  const std::int64_t n = lu.rows();
  MCMM_REQUIRE(static_cast<std::int64_t>(b.size()) == n,
               "lu_solve: right-hand side has the wrong length");
  std::vector<double> x = b;
  // Forward: L y = b (unit diagonal).
  for (std::int64_t i = 1; i < n; ++i) {
    for (std::int64_t k = 0; k < i; ++k) {
      x[static_cast<std::size_t>(i)] -=
          lu.at(i, k) * x[static_cast<std::size_t>(k)];
    }
  }
  // Backward: U x = y.
  for (std::int64_t i = n - 1; i >= 0; --i) {
    for (std::int64_t k = i + 1; k < n; ++k) {
      x[static_cast<std::size_t>(i)] -=
          lu.at(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] /= lu.at(i, i);
  }
  return x;
}

Matrix diagonally_dominant_matrix(std::int64_t n, std::uint64_t seed) {
  Matrix a(n, n);
  a.fill_random(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    a.at(i, i) = static_cast<double>(n) + 1.0 + std::fabs(a.at(i, i));
  }
  return a;
}

double lu_residual(const Matrix& original, const Matrix& lu) {
  const Matrix product = lu_reconstruct(lu);
  return Matrix::max_abs_diff(product, original) /
         static_cast<double>(original.rows());
}

}  // namespace mcmm
