#include "lu/parallel_lu.hpp"

#include <algorithm>
#include <vector>

#include "lu/lu_kernel.hpp"
#include "util/math.hpp"

namespace mcmm {

namespace {

// Re-declared here because lu_kernel.cpp keeps it internal: unblocked LU of
// the diagonal sub-block.
void factor_diagonal(Matrix& a, std::int64_t k0, std::int64_t kb) {
  for (std::int64_t k = k0; k < k0 + kb; ++k) {
    const double pivot = a.at(k, k);
    MCMM_REQUIRE(pivot != 0.0,
                 "parallel_lu_factor: zero pivot (matrix needs pivoting)");
    for (std::int64_t i = k + 1; i < k0 + kb; ++i) {
      a.at(i, k) /= pivot;
      const double lik = a.at(i, k);
      for (std::int64_t j = k + 1; j < k0 + kb; ++j) {
        a.at(i, j) -= lik * a.at(k, j);
      }
    }
  }
}

/// A[i0.., j0..] -= A[i0.., k0..] * A[k0.., j0..] on an mb x nb x kb
/// sub-problem (trailing update; the three regions are disjoint).
void trailing_update(Matrix& a, std::int64_t i0, std::int64_t mb,
                     std::int64_t j0, std::int64_t nb, std::int64_t k0,
                     std::int64_t kb) {
  for (std::int64_t i = 0; i < mb; ++i) {
    for (std::int64_t k = 0; k < kb; ++k) {
      const double lik = a.at(i0 + i, k0 + k);
      for (std::int64_t j = 0; j < nb; ++j) {
        a.at(i0 + i, j0 + j) -= lik * a.at(k0 + k, j0 + j);
      }
    }
  }
}

}  // namespace

void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool) {
  MCMM_REQUIRE(a.rows() == a.cols(), "parallel_lu_factor: matrix must be square");
  MCMM_REQUIRE(a.rows() >= 1, "parallel_lu_factor: matrix must be non-empty");
  MCMM_REQUIRE(q >= 1, "parallel_lu_factor: block size must be >= 1");
  const std::int64_t n = a.rows();

  for (std::int64_t k0 = 0; k0 < n; k0 += q) {
    const std::int64_t kb = std::min(q, n - k0);
    factor_diagonal(a, k0, kb);
    const std::int64_t rest = n - (k0 + kb);
    if (rest <= 0) continue;

    // Panel phase: row-panel tiles get L11^-1, column-panel tiles U11^-1.
    // Tiles are independent, so they are chunked across workers.
    const std::int64_t panel_tiles = ceil_div(rest, q);
    pool.parallel_for(2 * panel_tiles, [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const bool is_row_panel = t < panel_tiles;
        const std::int64_t off = (is_row_panel ? t : t - panel_tiles) * q;
        const std::int64_t t0 = k0 + kb + off;
        const std::int64_t tb = std::min(q, n - t0);
        if (is_row_panel) {
          trsm_lower_left_unit(a, a, k0, kb, t0, tb);
        } else {
          trsm_upper_right(a, a, k0, kb, t0, tb);
        }
      }
    });

    // Trailing phase: every (i, j) tile of the trailing matrix takes the
    // rank-kb update; tiles partition the writes, so no two workers touch
    // the same coefficients.
    pool.parallel_for(panel_tiles * panel_tiles,
                      [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t i0 = k0 + kb + (t / panel_tiles) * q;
        const std::int64_t j0 = k0 + kb + (t % panel_tiles) * q;
        trailing_update(a, i0, std::min(q, n - i0), j0, std::min(q, n - j0),
                        k0, kb);
      }
    });
  }
}

}  // namespace mcmm
