#include "lu/parallel_lu.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "gemm/kernel.hpp"
#include "gemm/pack.hpp"
#include "lu/lu_kernel.hpp"
#include "obs/tracer.hpp"
#include "util/math.hpp"

namespace mcmm {

namespace {

/// A[i0.., j0..] -= A[i0.., k0..] * A[k0.., j0..] on an mb x nb x kb
/// sub-problem (trailing update; the three regions are disjoint).  The
/// loop-based baseline and the parity oracle for the kernel-routed path.
void trailing_update(Matrix& a, std::int64_t i0, std::int64_t mb,
                     std::int64_t j0, std::int64_t nb, std::int64_t k0,
                     std::int64_t kb) {
  for (std::int64_t i = 0; i < mb; ++i) {
    for (std::int64_t k = 0; k < kb; ++k) {
      const double lik = a.at(i0 + i, k0 + k);
      for (std::int64_t j = 0; j < nb; ++j) {
        a.at(i0 + i, j0 + j) -= lik * a.at(k0 + k, j0 + j);
      }
    }
  }
}

/// Sub-block width of the blocked triangular solves: the scalar solve
/// touches only d x d triangles, everything else is rank-d updates routed
/// through the kernel engine.
constexpr std::int64_t kTrsmBlock = 32;

void check_lu_args(const Matrix& a, std::int64_t q, const char* who) {
  MCMM_REQUIRE(a.rows() == a.cols(),
               std::string(who) + ": matrix must be square");
  MCMM_REQUIRE(q >= 1, std::string(who) + ": block size must be >= 1");
}

}  // namespace

void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool) {
  check_lu_args(a, q, "parallel_lu_factor");
  const std::int64_t n = a.rows();
  if (n == 0) return;  // an empty factorization has no factors to compute

  for (std::int64_t k0 = 0; k0 < n; k0 += q) {
    const std::int64_t kb = std::min(q, n - k0);
    lu_factor_diagonal(a, k0, kb);
    const std::int64_t rest = n - (k0 + kb);
    if (rest <= 0) continue;

    // Panel phase: row-panel tiles get L11^-1, column-panel tiles U11^-1.
    // Tiles are independent, so they are chunked across workers.
    const std::int64_t panel_tiles = ceil_div(rest, q);
    pool.parallel_for(2 * panel_tiles, [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const bool is_row_panel = t < panel_tiles;
        const std::int64_t off = (is_row_panel ? t : t - panel_tiles) * q;
        const std::int64_t t0 = k0 + kb + off;
        const std::int64_t tb = std::min(q, n - t0);
        if (is_row_panel) {
          trsm_lower_left_unit(a, a, k0, kb, t0, tb);
        } else {
          trsm_upper_right(a, a, k0, kb, t0, tb);
        }
      }
    });

    // Trailing phase: every (i, j) tile of the trailing matrix takes the
    // rank-kb update; tiles partition the writes, so no two workers touch
    // the same coefficients.
    pool.parallel_for(panel_tiles * panel_tiles,
                      [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t i0 = k0 + kb + (t / panel_tiles) * q;
        const std::int64_t j0 = k0 + kb + (t % panel_tiles) * q;
        trailing_update(a, i0, std::min(q, n - i0), j0, std::min(q, n - j0),
                        k0, kb);
      }
    });
  }
}

void parallel_lu_factor(Matrix& a, std::int64_t q, ThreadPool& pool,
                        KernelContext& ctx) {
  check_lu_args(a, q, "parallel_lu_factor");
  MCMM_REQUIRE(ctx.workers() >= pool.workers(),
               "parallel_lu_factor: context has fewer workers than the pool");
  const std::int64_t n = a.rows();
  if (n == 0) return;
  ctx.invalidate();
  ExecutionTracer* const tracer = ctx.tracer();

  // The row-panel U strip of each step, packed ONCE into shared read-only
  // panels (pack_b_panel layout, one panel per trailing j block) and
  // consumed by every trailing tile via block_op_sub_packed_b — the same
  // amortisation SharedPackedB proves for batches.  Sized once for the
  // widest strip; panels keep a uniform full-block stride.
  const std::int64_t nr = ctx.kernel().nr;
  const std::int64_t panel_stride = packed_b_size(q, q, nr);
  const std::int64_t max_jblocks = ceil_div(n, q);
  AlignedVector panels(static_cast<std::size_t>(
      std::max<std::int64_t>(panel_stride * max_jblocks, 1)));

  for (std::int64_t k0 = 0; k0 < n; k0 += q) {
    const std::int64_t kb = std::min(q, n - k0);

    // (1) Factor the diagonal tile on worker 0 inside its own region, so
    // the tracer attributes it and a zero pivot propagates out of the
    // pool's dispatch site without wedging the pool.
    pool.set_trace_label("lu-factor");
    pool.run_on_all([&](int worker) {
      if (worker != 0) return;
      const std::int64_t t0 = tracer != nullptr ? tracer->now_ns() : 0;
      lu_factor_diagonal(a, k0, kb);
      if (tracer != nullptr) {
        tracer->record(worker, TracePhase::kFactor, t0, tracer->now_ns());
      }
    });

    const std::int64_t rest = n - (k0 + kb);
    if (rest <= 0) continue;
    const std::int64_t panel_tiles = ceil_div(rest, q);

    // (2) Panel solves, blocked at kTrsmBlock: per tile, each diagonal
    // sub-block first takes the bulk contribution of the already-solved
    // sub-blocks as one packed rank-s0 downdate through the engine, then
    // scalar-solves only its own small triangle.  Tiles are independent
    // and each is computed by exactly one worker, so the value chain per
    // tile does not depend on the worker count.
    pool.set_trace_label("lu-trsm");
    pool.parallel_for(2 * panel_tiles,
                      [&](int worker, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const bool is_row_panel = t < panel_tiles;
        const std::int64_t off = (is_row_panel ? t : t - panel_tiles) * q;
        const std::int64_t t0 = k0 + kb + off;
        const std::int64_t tb = std::min(q, n - t0);
        for (std::int64_t s0 = 0; s0 < kb; s0 += kTrsmBlock) {
          const std::int64_t db = std::min(kTrsmBlock, kb - s0);
          if (is_row_panel) {
            // X rows [s0, s0+db) -= L[s0.., 0..s0) * X[0..s0): solved rows.
            if (s0 > 0) {
              ctx.block_op_sub(worker, a, a, a, k0 + s0, t0, k0, db, tb, s0);
            }
            const std::int64_t m0 = tracer != nullptr ? tracer->now_ns() : 0;
            trsm_lower_left_unit(a, a, k0 + s0, db, t0, tb);
            if (tracer != nullptr) {
              tracer->record(worker, TracePhase::kTrsm, m0, tracer->now_ns());
            }
          } else {
            // X cols [s0, s0+db) -= X[0..s0) * U[0..s0, s0..): solved cols.
            if (s0 > 0) {
              ctx.block_op_sub(worker, a, a, a, t0, k0 + s0, k0, tb, db, s0);
            }
            const std::int64_t m0 = tracer != nullptr ? tracer->now_ns() : 0;
            trsm_upper_right(a, a, k0 + s0, db, t0, tb);
            if (tracer != nullptr) {
              tracer->record(worker, TracePhase::kTrsm, m0, tracer->now_ns());
            }
          }
        }
      }
    });

    // (3) Pack the solved U strip once, in parallel: workers claim whole
    // j-block panels from an atomic cursor, each pack recorded as a
    // pack-B span (the tracer is how bench_lu proves the per-tile pack
    // collapsed to a per-step one).
    pool.set_trace_label("lu-pack-b");
    std::atomic<std::int64_t> pack_cursor{0};
    pool.run_on_all([&](int worker) {
      for (;;) {
        const std::int64_t blk =
            pack_cursor.fetch_add(1, std::memory_order_relaxed);
        if (blk >= panel_tiles) return;
        const std::int64_t j0 = k0 + kb + blk * q;
        const std::int64_t nb = std::min(q, n - j0);
        const std::int64_t m0 = tracer != nullptr ? tracer->now_ns() : 0;
        pack_b_panel(a, k0, j0, kb, nb, nr,
                     panels.data() + blk * panel_stride, ctx.pack_prefetch());
        if (tracer != nullptr) {
          tracer->record(worker, TracePhase::kPackB, m0, tracer->now_ns());
        }
      }
    });

    // (4) Trailing downdates A22 -= L21 * U12 through the engine: tiles
    // partition the writes; the L panel packs negated per worker (memo
    // reused along a row of tiles), the U panels come from (3).
    pool.set_trace_label("lu-trailing");
    pool.parallel_for(panel_tiles * panel_tiles,
                      [&](int worker, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t jblk = t % panel_tiles;
        const std::int64_t i0 = k0 + kb + (t / panel_tiles) * q;
        const std::int64_t j0 = k0 + kb + jblk * q;
        ctx.block_op_sub_packed_b(worker, a, a,
                                  panels.data() + jblk * panel_stride, i0, j0,
                                  k0, std::min(q, n - i0), std::min(q, n - j0),
                                  kb);
      }
    });
  }
}

}  // namespace mcmm
