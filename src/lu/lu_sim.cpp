#include "lu/lu_sim.hpp"

#include "analysis/bounds.hpp"
#include "sim/parallel_section.hpp"

namespace mcmm {

namespace {

// LU blocks live in a single matrix; reuse the C tag for its tiles.
BlockId tile(std::int64_t i, std::int64_t j) { return BlockId::c(i, j); }

void check(const Machine& machine, std::int64_t n) {
  MCMM_REQUIRE(machine.policy() == Policy::kLru,
               "LU simulation runs under LRU (no IDEAL management)");
  MCMM_REQUIRE(n >= 1, "LU simulation: need at least one block");
}

}  // namespace

LuWork lu_work(std::int64_t n_blocks) {
  LuWork w;
  w.factor_ops = n_blocks;
  w.trsm_ops = n_blocks * (n_blocks - 1);
  w.update_ops = n_blocks * (n_blocks - 1) * (2 * n_blocks - 1) / 6;
  return w;
}

LuWork simulate_lu_right_looking(Machine& machine, std::int64_t n_blocks) {
  check(machine, n_blocks);
  const int p = machine.cores();
  ParallelSection par(machine);
  LuWork w;

  for (std::int64_t k = 0; k < n_blocks; ++k) {
    // Diagonal factorization (inherently sequential).
    machine.access(0, tile(k, k), Rw::kWrite);
    ++w.factor_ops;

    // Panel solves, independent given the diagonal block.
    for (std::int64_t i = k + 1; i < n_blocks; ++i) {
      const int core = static_cast<int>((i - k - 1) % p);
      par.access(core, tile(k, k), Rw::kRead);
      par.access(core, tile(i, k), Rw::kWrite);
      ++w.trsm_ops;
    }
    for (std::int64_t j = k + 1; j < n_blocks; ++j) {
      const int core = static_cast<int>((j - k - 1) % p);
      par.access(core, tile(k, k), Rw::kRead);
      par.access(core, tile(k, j), Rw::kWrite);
      ++w.trsm_ops;
    }
    par.run();

    // Trailing update: the whole remaining matrix, once per step — the
    // miss-heavy part: T(i,j) is re-fetched every k.
    for (std::int64_t i = k + 1; i < n_blocks; ++i) {
      for (std::int64_t j = k + 1; j < n_blocks; ++j) {
        const int core = static_cast<int>(
            ((i - k - 1) * (n_blocks - k - 1) + (j - k - 1)) % p);
        par.access(core, tile(i, k), Rw::kRead);
        par.access(core, tile(k, j), Rw::kRead);
        par.access(core, tile(i, j), Rw::kWrite);
        ++w.update_ops;
      }
    }
    par.run();
  }
  return w;
}

std::int64_t lu_panel_width(const MachineConfig& cfg, std::int64_t n_blocks) {
  // Shared working set of a panel of width w: the U panel (<= n*w blocks),
  // the p active target rows (p*w) and the streaming L blocks (p).  Keep it
  // within ~80% of CS so LRU holds the U panel; each core also needs its w
  // targets plus {L, U} blocks in its CD-block private cache.
  const std::int64_t budget = cfg.cs * 4 / 5;
  std::int64_t w = budget / (n_blocks + cfg.p);
  w = std::min(w, cfg.cd - 2);
  return std::max<std::int64_t>(w, 1);
}

LuWork simulate_lu_left_looking(Machine& machine, std::int64_t n_blocks,
                                std::int64_t panel_width) {
  check(machine, n_blocks);
  if (panel_width == 0) {
    panel_width = lu_panel_width(machine.config(), n_blocks);
  }
  MCMM_REQUIRE(panel_width >= 1, "panel_width must be >= 1 (or 0 for auto)");
  const int p = machine.cores();
  ParallelSection par(machine);
  LuWork w;

  for (std::int64_t p0 = 0; p0 < n_blocks; p0 += panel_width) {
    const std::int64_t pe = std::min(p0 + panel_width, n_blocks);
    // Process the panel row by row; rows round-robin over the cores.
    // Row i first accumulates the updates from columns LEFT of the panel —
    // each such L(i,k) is final, is fetched ONCE, and serves every target
    // column of the panel (the panel_width-fold reuse this schedule exists
    // for) — then finishes its panel entries left to right, interleaving
    // the panel-internal updates (whose L blocks are only final once the
    // corresponding column of this row has been solved) with the solves.
    for (std::int64_t i = 0; i < n_blocks; ++i) {
      const int core = static_cast<int>(i % p);
      // External updates: k left of the panel, k < min(i, j) for every
      // panel column j since k < p0 <= j.
      const std::int64_t kext = std::min(i, p0);
      for (std::int64_t k = 0; k < kext; ++k) {
        par.access(core, tile(i, k), Rw::kRead);
        for (std::int64_t j = p0; j < pe; ++j) {
          par.access(core, tile(k, j), Rw::kRead);
          par.access(core, tile(i, j), Rw::kWrite);
          ++w.update_ops;
        }
      }
      // Panel-internal updates + solves, column by column.
      for (std::int64_t j = p0; j < pe; ++j) {
        for (std::int64_t k = p0; k < std::min(i, j); ++k) {
          par.access(core, tile(i, k), Rw::kRead);
          par.access(core, tile(k, j), Rw::kRead);
          par.access(core, tile(i, j), Rw::kWrite);
          ++w.update_ops;
        }
        if (i == j) {
          par.access(core, tile(j, j), Rw::kWrite);
          ++w.factor_ops;
        } else if (i > j) {
          par.access(core, tile(j, j), Rw::kRead);  // U(j,j) solve
          par.access(core, tile(i, j), Rw::kWrite);
          ++w.trsm_ops;
        } else {
          par.access(core, tile(i, i), Rw::kRead);  // L(i,i) solve
          par.access(core, tile(i, j), Rw::kWrite);
          ++w.trsm_ops;
        }
      }
    }
    par.run();
  }
  return w;
}

double lu_ms_lower_bound(std::int64_t n_blocks, std::int64_t cs) {
  const double updates =
      static_cast<double>(n_blocks) * static_cast<double>(n_blocks - 1) *
      static_cast<double>(2 * n_blocks - 1) / 6.0;
  return updates * ccr_lower_bound(cs);
}

}  // namespace mcmm
