#include "lu/lu_pivot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lu/lu_kernel.hpp"

namespace mcmm {

namespace {

void check_square(const Matrix& a, const char* who) {
  MCMM_REQUIRE(a.rows() == a.cols(),
               std::string(who) + ": matrix must be square");
  MCMM_REQUIRE(a.rows() >= 1, std::string(who) + ": matrix must be non-empty");
}

void swap_rows(Matrix& a, std::int64_t r1, std::int64_t r2, std::int64_t j0,
               std::int64_t j1) {
  if (r1 == r2) return;
  for (std::int64_t j = j0; j < j1; ++j) {
    std::swap(a.at(r1, j), a.at(r2, j));
  }
}

/// Pivoted unblocked LU of the panel rows [k0, n) x cols [k0, k0+kb),
/// with row swaps applied over column range [j0, j1).  Appends pivots.
void factor_panel_pivoted(Matrix& a, std::int64_t k0, std::int64_t kb,
                          std::int64_t j0, std::int64_t j1,
                          PivotVector& pivots) {
  const std::int64_t n = a.rows();
  for (std::int64_t k = k0; k < k0 + kb; ++k) {
    // Partial pivoting: the largest magnitude in column k at or below row k.
    std::int64_t piv = k;
    double best = std::fabs(a.at(k, k));
    for (std::int64_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a.at(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    MCMM_REQUIRE(best > std::numeric_limits<double>::min(),
                 "lu_factor_pivoted: matrix is singular to working precision");
    pivots.push_back(piv);
    swap_rows(a, k, piv, j0, j1);
    const double pivot = a.at(k, k);
    for (std::int64_t i = k + 1; i < n; ++i) {
      a.at(i, k) /= pivot;
      const double lik = a.at(i, k);
      if (lik != 0.0) {
        for (std::int64_t j = k + 1; j < k0 + kb; ++j) {
          a.at(i, j) -= lik * a.at(k, j);
        }
      }
    }
  }
}

}  // namespace

PivotVector lu_factor_pivoted(Matrix& a) {
  check_square(a, "lu_factor_pivoted");
  PivotVector pivots;
  pivots.reserve(static_cast<std::size_t>(a.rows()));
  factor_panel_pivoted(a, 0, a.rows(), 0, a.cols(), pivots);
  return pivots;
}

PivotVector lu_factor_pivoted_blocked(Matrix& a, std::int64_t q) {
  check_square(a, "lu_factor_pivoted_blocked");
  MCMM_REQUIRE(q >= 1, "lu_factor_pivoted_blocked: block size must be >= 1");
  const std::int64_t n = a.rows();
  PivotVector pivots;
  pivots.reserve(static_cast<std::size_t>(n));

  for (std::int64_t k0 = 0; k0 < n; k0 += q) {
    const std::int64_t kb = std::min(q, n - k0);
    // Factor the panel (rows k0..n), applying its row swaps across the
    // WHOLE matrix so L's earlier columns and A's later columns stay
    // consistent.
    factor_panel_pivoted(a, k0, kb, 0, n, pivots);
    const std::int64_t rest = n - (k0 + kb);
    if (rest <= 0) continue;
    // U12 = L11^-1 A12, then the trailing update A22 -= L21 U12.
    trsm_lower_left_unit(a, a, k0, kb, k0 + kb, rest);
    for (std::int64_t i = k0 + kb; i < n; ++i) {
      for (std::int64_t k = k0; k < k0 + kb; ++k) {
        const double lik = a.at(i, k);
        if (lik == 0.0) continue;
        for (std::int64_t j = k0 + kb; j < n; ++j) {
          a.at(i, j) -= lik * a.at(k, j);
        }
      }
    }
  }
  return pivots;
}

std::vector<double> lu_solve_pivoted(const Matrix& lu,
                                     const PivotVector& pivots,
                                     const std::vector<double>& b) {
  check_square(lu, "lu_solve_pivoted");
  const std::int64_t n = lu.rows();
  MCMM_REQUIRE(static_cast<std::int64_t>(b.size()) == n,
               "lu_solve_pivoted: right-hand side has the wrong length");
  MCMM_REQUIRE(static_cast<std::int64_t>(pivots.size()) == n,
               "lu_solve_pivoted: pivot vector has the wrong length");
  std::vector<double> x = b;
  // Apply P, then the usual forward/backward substitution.
  for (std::int64_t k = 0; k < n; ++k) {
    std::swap(x[static_cast<std::size_t>(k)],
              x[static_cast<std::size_t>(pivots[static_cast<std::size_t>(k)])]);
  }
  for (std::int64_t i = 1; i < n; ++i) {
    for (std::int64_t k = 0; k < i; ++k) {
      x[static_cast<std::size_t>(i)] -=
          lu.at(i, k) * x[static_cast<std::size_t>(k)];
    }
  }
  for (std::int64_t i = n - 1; i >= 0; --i) {
    for (std::int64_t k = i + 1; k < n; ++k) {
      x[static_cast<std::size_t>(i)] -=
          lu.at(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] /= lu.at(i, i);
  }
  return x;
}

double lu_pivoted_residual(const Matrix& original, const Matrix& lu,
                           const PivotVector& pivots) {
  // Build P A by applying the recorded swaps in order.
  Matrix pa = original;
  const std::int64_t n = pa.rows();
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(pivots.size()); ++k) {
    swap_rows(pa, k, pivots[static_cast<std::size_t>(k)], 0, n);
  }
  const Matrix product = lu_reconstruct(lu);
  return Matrix::max_abs_diff(product, pa) / static_cast<double>(n);
}

}  // namespace mcmm
