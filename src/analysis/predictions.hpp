// Closed-form cache-miss predictions of Section 3 of the paper.
//
// These are the formulas the simulator is validated against: under the
// IDEAL policy with divisible problem sizes, the measured MS and MD match
// them *exactly* (integer equality is asserted in the test suite).
#pragma once

#include <cstdint>

#include "analysis/params.hpp"
#include "sim/machine_config.hpp"
#include "sim/problem.hpp"

namespace mcmm {

/// Predicted miss counts for one algorithm on one problem.
struct MissPrediction {
  double ms = 0;  ///< shared-cache misses
  double md = 0;  ///< max distributed-cache misses (any core; balanced)

  double tdata(double sigma_s, double sigma_d) const {
    return ms / sigma_s + md / sigma_d;
  }
  double ccr_shared(const Problem& prob) const {
    return ms / static_cast<double>(prob.fmas());
  }
  double ccr_distributed(const Problem& prob, int p) const {
    return md / (static_cast<double>(prob.fmas()) / static_cast<double>(p));
  }
};

/// Algorithm 1:  MS = mn + 2mnz/lambda,  MD = 2mnz/p + mnz/lambda.
MissPrediction predict_shared_opt(const Problem& prob, int p,
                                  const SharedOptParams& params);

/// Algorithm 2:  MS = mn + 2mnz/(mu sqrt(p)),  MD = mn/p + 2mnz/(p mu).
MissPrediction predict_distributed_opt(const Problem& prob, int p,
                                       const DistributedOptParams& params);

/// Algorithm 3:  MS = mn + 2mnz/alpha;
///               MD = mnz/(p beta) + 2mnz/(p mu)          if alpha > sqrt(p) mu,
///               MD = mn/p        + 2mnz/(p mu)           if alpha == sqrt(p) mu.
MissPrediction predict_tradeoff(const Problem& prob, int p,
                                const TradeoffParams& params);

/// Asymptotic CCRs (large matrices) quoted in the paper, for reporting:
/// Shared Opt: CCR_S -> 2/lambda.  Distributed Opt: CCR_D -> 2/mu.
double asymptotic_ccr_shared_opt(const SharedOptParams& params);
double asymptotic_ccr_distributed_opt(const DistributedOptParams& params);

}  // namespace mcmm
