#include "analysis/predictions.hpp"

#include "util/error.hpp"

namespace mcmm {

MissPrediction predict_shared_opt(const Problem& prob, int p,
                                  const SharedOptParams& params) {
  MCMM_REQUIRE(params.lambda >= 1, "predict_shared_opt: lambda must be >= 1");
  const double mn = static_cast<double>(prob.m) * static_cast<double>(prob.n);
  const double mnz = mn * static_cast<double>(prob.z);
  const double lambda = static_cast<double>(params.lambda);
  MissPrediction out;
  out.ms = mn + 2.0 * mnz / lambda;
  out.md = 2.0 * mnz / static_cast<double>(p) + mnz / lambda;
  return out;
}

MissPrediction predict_distributed_opt(const Problem& prob, int p,
                                       const DistributedOptParams& params) {
  MCMM_REQUIRE(params.mu >= 1 && params.grid.cores() >= 1,
               "predict_distributed_opt: bad parameters");
  const double mn = static_cast<double>(prob.m) * static_cast<double>(prob.n);
  const double mnz = mn * static_cast<double>(prob.z);
  const double mu = static_cast<double>(params.mu);
  const double pd = static_cast<double>(p);
  MissPrediction out;
  // Per tile: r*c*mu^2 C blocks + z * (c*mu of B + r*mu of A); on the
  // paper's square grid this is the familiar mn + 2mnz/(mu sqrt(p)).
  out.ms = mn + mnz / (mu * static_cast<double>(params.grid.r)) +
           mnz / (mu * static_cast<double>(params.grid.c));
  out.md = mn / pd + 2.0 * mnz / (pd * mu);
  return out;
}

MissPrediction predict_tradeoff(const Problem& prob, int p,
                                const TradeoffParams& params) {
  MCMM_REQUIRE(params.alpha >= 1 && params.beta >= 1 && params.mu >= 1,
               "predict_tradeoff: bad parameters");
  const double mn = static_cast<double>(prob.m) * static_cast<double>(prob.n);
  const double mnz = mn * static_cast<double>(prob.z);
  const double alpha = static_cast<double>(params.alpha);
  const double beta = static_cast<double>(params.beta);
  const double mu = static_cast<double>(params.mu);
  const double pd = static_cast<double>(p);
  MissPrediction out;
  out.ms = mn + 2.0 * mnz / alpha;
  if (params.persistent_c()) {
    // Each core owns exactly one mu x mu sub-block: C is loaded once per
    // tile instead of once per k-panel (the paper's special-case remark).
    out.md = mn / pd + 2.0 * mnz / (pd * mu);
  } else {
    out.md = mnz / (pd * beta) + 2.0 * mnz / (pd * mu);
  }
  return out;
}

double asymptotic_ccr_shared_opt(const SharedOptParams& params) {
  return 2.0 / static_cast<double>(params.lambda);
}

double asymptotic_ccr_distributed_opt(const DistributedOptParams& params) {
  return 2.0 / static_cast<double>(params.mu);
}

}  // namespace mcmm
