#include "analysis/params.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {

SharedOptParams shared_opt_params(std::int64_t cs) {
  const std::int64_t lambda = max_reuse_parameter(cs);
  MCMM_REQUIRE(lambda >= 1,
               "shared_opt_params: shared cache too small (CS < 3)");
  return {lambda};
}

DistributedOptParams distributed_opt_params(const MachineConfig& declared) {
  const std::int64_t mu = max_reuse_parameter(declared.cd);
  MCMM_REQUIRE(mu >= 1,
               "distributed_opt_params: distributed cache too small (CD < 3)");
  DistributedOptParams out;
  out.mu = mu;
  out.grid = balanced_grid(declared.p);
  // The shared cache must hold the C tile plus a B row fragment and an A
  // column fragment: p mu^2 + (r + c) mu <= CS.  This follows from
  // CS >= p*CD >= p (1 + mu + mu^2), but re-check for scaled declarations.
  MCMM_REQUIRE(declared.p * mu * mu + out.tile_rows() + out.tile_cols() <=
                   declared.cs,
               "distributed_opt_params: CS cannot stage the C tile");
  return out;
}

double tradeoff_alpha_num(std::int64_t cs, double x) {
  MCMM_REQUIRE(cs >= 1, "tradeoff_alpha_num: CS must be >= 1");
  MCMM_REQUIRE(x > 0, "tradeoff_alpha_num: x = p*sigmaD/sigmaS must be > 0");
  // Removable singularity at x == 1:
  //   (1 + 2x - sqrt(1+8x)) / (2(x-1))  ->  1/3   as x -> 1.
  const double eps = 1e-9;
  double ratio;
  if (std::fabs(x - 1.0) < eps) {
    ratio = 1.0 / 3.0;
  } else {
    ratio = (1.0 + 2.0 * x - std::sqrt(1.0 + 8.0 * x)) / (2.0 * (x - 1.0));
  }
  // The ratio is in (0, 1) for every x > 0; clamp against rounding noise.
  ratio = std::clamp(ratio, 0.0, 1.0);
  return std::sqrt(static_cast<double>(cs) * ratio);
}

double tradeoff_objective(std::int64_t cs, int p, double sigma_s,
                          double sigma_d, double alpha) {
  MCMM_REQUIRE(alpha > 0 && alpha * alpha < static_cast<double>(cs),
               "tradeoff_objective: alpha out of domain");
  return 2.0 / (sigma_s * alpha) +
         2.0 * alpha /
             (static_cast<double>(p) * sigma_d *
              (static_cast<double>(cs) - alpha * alpha));
}

TradeoffParams tradeoff_params(const MachineConfig& declared) {
  TradeoffParams out;
  out.mu = max_reuse_parameter(declared.cd);
  MCMM_REQUIRE(out.mu >= 1,
               "tradeoff_params: distributed cache too small (CD < 3)");
  out.grid = balanced_grid(declared.p);
  const std::int64_t grain = out.grain();  // alpha granularity

  // alpha_max: largest alpha with alpha^2 + 2*alpha*1 <= CS,
  // i.e. (alpha+1)^2 <= CS + 1.
  out.alpha_max = isqrt(declared.cs + 1) - 1;
  MCMM_REQUIRE(grain * grain + 2 * grain <= declared.cs,
               "tradeoff_params: CS cannot stage even the minimal tile");

  const double x = static_cast<double>(declared.p) * declared.sigma_d /
                   declared.sigma_s;
  out.alpha_num = tradeoff_alpha_num(declared.cs, x);

  // Clamp to [sqrt(p)*mu, alpha_max], then snap to the sqrt(p)*mu grid so
  // the tile splits evenly into a sqrt(p) x sqrt(p) core grid of mu x mu
  // sub-blocks (the rounding the paper's Section 4.3.3 blames for the
  // q = 64/80 results).  Both grid neighbours of the real optimum are
  // candidates; the objective F picks between them.
  const double clamped =
      std::min(static_cast<double>(out.alpha_max),
               std::max(static_cast<double>(grain), out.alpha_num));
  auto feasible = [&](std::int64_t a) {
    return a >= grain && a <= out.alpha_max &&
           a * a + 2 * a <= declared.cs;
  };
  std::int64_t lo = (static_cast<std::int64_t>(clamped) / grain) * grain;
  while (lo > grain && !feasible(lo)) lo -= grain;
  lo = std::max(lo, grain);
  const std::int64_t hi = lo + grain;
  std::int64_t alpha = lo;
  if (feasible(hi) &&
      tradeoff_objective(declared.cs, declared.p, declared.sigma_s,
                         declared.sigma_d, static_cast<double>(hi)) <
          tradeoff_objective(declared.cs, declared.p, declared.sigma_s,
                             declared.sigma_d, static_cast<double>(lo))) {
    alpha = hi;
  }
  out.alpha = alpha;
  out.beta = std::max<std::int64_t>((declared.cs - alpha * alpha) / (2 * alpha),
                                    std::int64_t{1});
  return out;
}

}  // namespace mcmm
