#include "analysis/bounds.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mcmm {

double loomis_whitney_k() { return std::sqrt(8.0 / 27.0); }

double loomis_whitney_objective(double eta, double nu, double xi) {
  if (eta < 0 || nu < 0 || xi < 0 || eta + nu + xi > 2.0) return 0.0;
  return std::sqrt(eta * nu * xi);
}

double ccr_lower_bound(std::int64_t z_capacity) {
  MCMM_REQUIRE(z_capacity >= 1, "ccr_lower_bound: capacity must be >= 1");
  return std::sqrt(27.0 / (8.0 * static_cast<double>(z_capacity)));
}

double ms_lower_bound(const Problem& prob, std::int64_t cs) {
  return static_cast<double>(prob.fmas()) * ccr_lower_bound(cs);
}

double md_lower_bound(const Problem& prob, int p, std::int64_t cd) {
  MCMM_REQUIRE(p >= 1, "md_lower_bound: p must be >= 1");
  return static_cast<double>(prob.fmas()) / static_cast<double>(p) *
         ccr_lower_bound(cd);
}

double tdata_lower_bound(const Problem& prob, const MachineConfig& cfg) {
  return ms_lower_bound(prob, cfg.cs) / cfg.sigma_s +
         md_lower_bound(prob, cfg.p, cfg.cd) / cfg.sigma_d;
}

}  // namespace mcmm
