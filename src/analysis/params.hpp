// Parameter selection for the three Multicore Maximum Reuse algorithms
// (Section 3 of the paper).
//
// All parameters are derived from the cache capacities an algorithm
// *declares* — under the LRU-50 setting these are half the physical sizes,
// which is why they are passed in explicitly rather than read from the
// machine.
#pragma once

#include <cstdint>

#include "sim/machine_config.hpp"
#include "util/math.hpp"

namespace mcmm {

/// Algorithm 1 (Shared Opt): lambda is the largest integer with
/// 1 + lambda + lambda^2 <= CS (a lambda x lambda tile of C, a row of
/// lambda elements of B and one element of A live in the shared cache).
struct SharedOptParams {
  std::int64_t lambda = 0;
};
SharedOptParams shared_opt_params(std::int64_t cs);

/// Algorithm 2 (Distributed Opt): mu is the largest integer with
/// 1 + mu + mu^2 <= CD; cores form a grid (the paper's sqrt(p) x sqrt(p),
/// generalised here to the most balanced r x c factorisation of p) and
/// the shared cache holds an (r mu) x (c mu) tile of C.
struct DistributedOptParams {
  std::int64_t mu = 0;
  Grid grid;
  /// Extent of the C tile staged in the shared cache.
  std::int64_t tile_rows() const { return grid.r * mu; }
  std::int64_t tile_cols() const { return grid.c * mu; }
};
DistributedOptParams distributed_opt_params(const MachineConfig& declared);

/// Algorithm 3 (Tradeoff): an alpha x alpha tile of C plus beta x alpha
/// panels of A and B share the cache (alpha^2 + 2 alpha beta <= CS);
/// alpha minimises F(alpha) = 2/(sigma_S alpha) + 2 alpha/(p sigma_D (CS - alpha^2)).
struct TradeoffParams {
  std::int64_t alpha = 0;    ///< C tile side, multiple of grain()
  std::int64_t beta = 0;     ///< k-panel depth, >= 1
  std::int64_t mu = 0;       ///< distributed sub-tile side
  Grid grid;                 ///< core grid (balanced factorisation of p)
  double alpha_num = 0;      ///< unclamped real-valued optimum (diagnostics)
  std::int64_t alpha_max = 0;///< largest alpha allowing beta >= 1
  /// alpha granularity: the tile must split into r x c core regions of
  /// whole mu-sub-blocks, so alpha is a multiple of mu * lcm(r, c).
  std::int64_t grain() const { return mu * lcm(grid.r, grid.c); }
  /// True when every core owns exactly one mu x mu sub-block (the paper's
  /// alpha == sqrt(p) mu special case; only possible on square grids).
  bool persistent_c() const {
    return grid.square() && alpha == grid.r * mu;
  }
};
TradeoffParams tradeoff_params(const MachineConfig& declared);

/// The real-valued minimiser of F(alpha) for given CS and x = p*sigma_D/sigma_S:
///   alpha_num = sqrt( CS * (1 + 2x - sqrt(1 + 8x)) / (2 (x - 1)) ),
/// with the removable singularity at x = 1 evaluating to sqrt(CS / 3).
/// Exposed separately so tests can check it against numeric minimisation.
double tradeoff_alpha_num(std::int64_t cs, double x);

/// F(alpha) itself (the large-matrix data-time objective of Section 3.3,
/// dropping the mu term which does not depend on alpha).
double tradeoff_objective(std::int64_t cs, int p, double sigma_s,
                          double sigma_d, double alpha);

}  // namespace mcmm
