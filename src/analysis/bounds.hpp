// Communication lower bounds from Section 2.3 of the paper.
//
// Derived from the Loomis-Whitney inequality (Irony, Toledo & Tiskin): a
// computing system with a cache of Z blocks that performs K block
// multiply-adds needs at least K * sqrt(27 / (8 Z)) cache loads.  Applied
// to the shared cache (Z = CS, K = m n z) and to each distributed cache
// (Z = CD, K = m n z / p, computation equally distributed) this yields
// floors on MS, MD and Tdata for *any* conventional matrix product.
#pragma once

#include <cstdint>

#include "sim/machine_config.hpp"
#include "sim/problem.hpp"

namespace mcmm {

/// k* = sqrt(8/27): the optimum of  max k  s.t. k <= sqrt(eta nu xi),
/// eta + nu + xi <= 2, attained at eta = nu = xi = 2/3 (Section 2.3.1).
double loomis_whitney_k();

/// Objective of the Loomis-Whitney optimisation at a given (eta, nu, xi):
/// min(sqrt(eta*nu*xi), feasibility).  Exposed so tests can verify k* is
/// the constrained maximum by grid search.
double loomis_whitney_objective(double eta, double nu, double xi);

/// Lower bound on the communication-to-computation ratio (block loads per
/// block FMA) of a system whose cache holds `z_capacity` blocks:
/// CCR >= sqrt(27 / (8 Z)).
double ccr_lower_bound(std::int64_t z_capacity);

/// MS >= m n z * sqrt(27 / (8 CS)).
double ms_lower_bound(const Problem& prob, std::int64_t cs);

/// MD >= (m n z / p) * sqrt(27 / (8 CD))  (computation equally spread).
double md_lower_bound(const Problem& prob, int p, std::int64_t cd);

/// Tdata >= m n z * ( sqrt(27/(8 CS))/sigma_S + sqrt(27/(8 CD))/(p sigma_D) ).
double tdata_lower_bound(const Problem& prob, const MachineConfig& cfg);

}  // namespace mcmm
