#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace mcmm {

SeriesTable::SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

std::size_t SeriesTable::add_series(const std::string& name) {
  names_.push_back(name);
  for (auto& row : cells_) row.resize(names_.size());
  return names_.size() - 1;
}

std::size_t SeriesTable::row_index(double x) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] == x) return i;
  }
  xs_.push_back(x);
  cells_.emplace_back(names_.size());
  return xs_.size() - 1;
}

void SeriesTable::set(std::size_t series, double x, double y) {
  MCMM_REQUIRE(series < names_.size(), "SeriesTable::set: bad series index");
  cells_[row_index(x)][series] = y;
}

std::optional<double> SeriesTable::cell(std::size_t series, double x) const {
  MCMM_REQUIRE(series < names_.size(), "SeriesTable::cell: bad series index");
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] == x) return cells_[i][series];
  }
  return std::nullopt;
}

std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

void SeriesTable::print_pretty() const {
  std::vector<std::size_t> widths;
  widths.push_back(x_label_.size());
  for (const auto& n : names_) widths.push_back(n.size());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    std::vector<std::string> row;
    row.push_back(format_value(xs_[r]));
    widths[0] = std::max(widths[0], row.back().size());
    for (std::size_t s = 0; s < names_.size(); ++s) {
      row.push_back(cells_[r][s] ? format_value(*cells_[r][s]) : "-");
      widths[s + 1] = std::max(widths[s + 1], row.back().size());
    }
    rows.push_back(std::move(row));
  }

  auto print_cell = [&](const std::string& text, std::size_t w, bool last) {
    std::printf("%*s%s", static_cast<int>(w), text.c_str(), last ? "\n" : "  ");
  };
  print_cell(x_label_, widths[0], names_.empty());
  for (std::size_t s = 0; s < names_.size(); ++s) {
    print_cell(names_[s], widths[s + 1], s + 1 == names_.size());
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      print_cell(row[c], widths[c], c + 1 == row.size());
    }
  }
}

void SeriesTable::print_csv() const {
  std::printf("%s", x_label_.c_str());
  for (const auto& n : names_) std::printf(",%s", n.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    std::printf("%s", format_value(xs_[r]).c_str());
    for (std::size_t s = 0; s < names_.size(); ++s) {
      std::printf(",%s",
                  cells_[r][s] ? format_value(*cells_[r][s]).c_str() : "");
    }
    std::printf("\n");
  }
}

}  // namespace mcmm
