#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace mcmm {

SeriesTable::SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

std::size_t SeriesTable::add_series(const std::string& name) {
  names_.push_back(name);
  for (auto& row : cells_) row.resize(names_.size());
  return names_.size() - 1;
}

std::size_t SeriesTable::row_index(double x) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] == x) return i;
  }
  xs_.push_back(x);
  cells_.emplace_back(names_.size());
  return xs_.size() - 1;
}

void SeriesTable::set(std::size_t series, double x, double y) {
  MCMM_REQUIRE(series < names_.size(), "SeriesTable::set: bad series index");
  cells_[row_index(x)][series] = y;
}

std::optional<double> SeriesTable::cell(std::size_t series, double x) const {
  MCMM_REQUIRE(series < names_.size(), "SeriesTable::cell: bad series index");
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] == x) return cells_[i][series];
  }
  return std::nullopt;
}

const std::string& SeriesTable::series_name(std::size_t series) const {
  MCMM_REQUIRE(series < names_.size(),
               "SeriesTable::series_name: bad series index");
  return names_[series];
}

double SeriesTable::x_at(std::size_t row) const {
  MCMM_REQUIRE(row < xs_.size(), "SeriesTable::x_at: bad row index");
  return xs_[row];
}

std::optional<double> SeriesTable::at(std::size_t row,
                                      std::size_t series) const {
  MCMM_REQUIRE(row < xs_.size() && series < names_.size(),
               "SeriesTable::at: bad cell index");
  return cells_[row][series];
}

std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string SeriesTable::to_pretty() const {
  std::vector<std::size_t> widths;
  widths.push_back(x_label_.size());
  for (const auto& n : names_) widths.push_back(n.size());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    std::vector<std::string> row;
    row.push_back(format_value(xs_[r]));
    widths[0] = std::max(widths[0], row.back().size());
    for (std::size_t s = 0; s < names_.size(); ++s) {
      row.push_back(cells_[r][s] ? format_value(*cells_[r][s]) : "-");
      widths[s + 1] = std::max(widths[s + 1], row.back().size());
    }
    rows.push_back(std::move(row));
  }

  std::string out;
  auto emit_cell = [&](const std::string& text, std::size_t w, bool last) {
    if (text.size() < w) out.append(w - text.size(), ' ');
    out += text;
    out += last ? "\n" : "  ";
  };
  emit_cell(x_label_, widths[0], names_.empty());
  for (std::size_t s = 0; s < names_.size(); ++s) {
    emit_cell(names_[s], widths[s + 1], s + 1 == names_.size());
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      emit_cell(row[c], widths[c], c + 1 == row.size());
    }
  }
  return out;
}

std::string SeriesTable::to_csv() const {
  std::string out = x_label_;
  for (const auto& n : names_) {
    out += ',';
    out += n;
  }
  out += '\n';
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    out += format_value(xs_[r]);
    for (std::size_t s = 0; s < names_.size(); ++s) {
      out += ',';
      if (cells_[r][s]) out += format_value(*cells_[r][s]);
    }
    out += '\n';
  }
  return out;
}

void SeriesTable::print_pretty() const {
  std::fputs(to_pretty().c_str(), stdout);
}

void SeriesTable::print_csv() const { std::fputs(to_csv().c_str(), stdout); }

}  // namespace mcmm
