#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace mcmm {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  MCMM_ASSERT(!done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;
  if (stack_.back() == Ctx::kObject) {
    MCMM_ASSERT(key_pending_, "JsonWriter: value in object without a key");
    key_pending_ = false;
    return;
  }
  if (!first_.back()) raw(",");
  first_.back() = false;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject,
              "JsonWriter: key outside an object");
  MCMM_ASSERT(!key_pending_, "JsonWriter: two keys in a row");
  if (!first_.back()) raw(",");
  first_.back() = false;
  raw("\"");
  raw(json_escape(k));
  raw("\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject,
              "JsonWriter: end_object without begin_object");
  MCMM_ASSERT(!key_pending_, "JsonWriter: dangling key at end_object");
  raw("}");
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kArray,
              "JsonWriter: end_array without begin_array");
  raw("]");
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw("\"");
  raw(json_escape(v));
  raw("\"");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  MCMM_ASSERT(std::isfinite(v), "JsonWriter: non-finite double");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  raw(buf);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  MCMM_ASSERT(stack_.empty() && done_, "JsonWriter: document incomplete");
  return out_;
}

}  // namespace mcmm
