#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace mcmm {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  MCMM_ASSERT(!done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;
  if (stack_.back() == Ctx::kObject) {
    MCMM_ASSERT(key_pending_, "JsonWriter: value in object without a key");
    key_pending_ = false;
    return;
  }
  if (!first_.back()) raw(",");
  first_.back() = false;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject,
              "JsonWriter: key outside an object");
  MCMM_ASSERT(!key_pending_, "JsonWriter: two keys in a row");
  if (!first_.back()) raw(",");
  first_.back() = false;
  raw("\"");
  raw(json_escape(k));
  raw("\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject,
              "JsonWriter: end_object without begin_object");
  MCMM_ASSERT(!key_pending_, "JsonWriter: dangling key at end_object");
  raw("}");
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MCMM_ASSERT(!stack_.empty() && stack_.back() == Ctx::kArray,
              "JsonWriter: end_array without begin_array");
  raw("]");
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw("\"");
  raw(json_escape(v));
  raw("\"");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  MCMM_ASSERT(std::isfinite(v), "JsonWriter: non-finite double");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  raw(buf);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  raw("null");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  MCMM_ASSERT(stack_.empty() && done_, "JsonWriter: document incomplete");
  return out_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over the writer's dialect (strict JSON).
class JsonParser {
public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue root = parse_value(0);
    skip_ws();
    MCMM_REQUIRE(pos_ == text_.size(), "json_parse: trailing characters");
    return root;
  }

private:
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    MCMM_REQUIRE(pos_ < text_.size(), "json_parse: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    MCMM_REQUIRE(peek() == c, std::string("json_parse: expected '") + c +
                                  "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    MCMM_REQUIRE(depth < kMaxDepth, "json_parse: nesting too deep");
    JsonValue v;
    switch (peek()) {
      case 'n':
        MCMM_REQUIRE(consume_literal("null"), "json_parse: bad literal");
        return v;
      case 't':
        MCMM_REQUIRE(consume_literal("true"), "json_parse: bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        MCMM_REQUIRE(consume_literal("false"), "json_parse: bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case '"':
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      MCMM_REQUIRE(c == ',', "json_parse: expected ',' or ']' in array");
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      MCMM_REQUIRE(peek() == '"', "json_parse: object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      MCMM_REQUIRE(c == ',', "json_parse: expected ',' or '}' in object");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      MCMM_REQUIRE(pos_ < text_.size(), "json_parse: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      MCMM_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                   "json_parse: raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      MCMM_REQUIRE(pos_ < text_.size(), "json_parse: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: throw Error("json_parse: bad escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    MCMM_REQUIRE(pos_ + 4 <= text_.size(), "json_parse: short \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4U;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        throw Error("json_parse: bad \\u escape digit");
      }
    }
    MCMM_REQUIRE(cp < 0xD800 || cp > 0xDFFF,
                 "json_parse: surrogate escapes are not supported");
    // Encode the BMP code point as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0U | (cp >> 6U));
      out += static_cast<char>(0x80U | (cp & 0x3FU));
    } else {
      out += static_cast<char>(0xE0U | (cp >> 12U));
      out += static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (cp & 0x3FU));
    }
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    MCMM_REQUIRE(digits() > 0, "json_parse: invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      MCMM_REQUIRE(digits() > 0, "json_parse: digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      MCMM_REQUIRE(digits() > 0, "json_parse: digits required in exponent");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void serialize_into(const JsonValue& v, std::string& out) {
  switch (v.type) {
    case JsonValue::Type::kNull: out += "null"; return;
    case JsonValue::Type::kBool: out += v.boolean ? "true" : "false"; return;
    case JsonValue::Type::kNumber: {
      char buf[32];
      // Integral values print without a decimal point, matching both
      // JsonWriter::value(int64) and %.17g's output for integral doubles.
      if (std::isfinite(v.number) && v.number == std::floor(v.number) &&
          std::fabs(v.number) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v.number);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      return;
    }
    case JsonValue::Type::kString:
      out += '"';
      out += json_escape(v.string);
      out += '"';
      return;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out += ',';
        first = false;
        serialize_into(e, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        serialize_into(e, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string json_serialize(const JsonValue& v) {
  std::string out;
  serialize_into(v, out);
  return out;
}

}  // namespace mcmm
