// Process-wide diagnostic sink for warnings that must not interleave with
// machine-read output.
//
// tiling_for_host's inclusive-hierarchy clamp and the tracer's dropped-
// span diagnostics used to go straight to stderr with fprintf; in --json
// runs that interleaves with the report stream and in tests it is only
// capturable through gtest's stderr capture.  emit_warning routes every
// such message through one replaceable sink instead: the default still
// writes "<message>\n" to stderr (so existing CLI behaviour and the
// test_cli stderr-capture tests are unchanged), but tools and tests can
// install their own sink — or use ScopedWarningCapture to collect
// messages for a scope.  The sink is guarded by a mutex, so workers may
// warn concurrently.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mcmm {

/// A warning consumer.  Receives the message without a trailing newline.
using WarningSink = std::function<void(const std::string&)>;

/// Route `message` through the installed sink (default: stderr).
void emit_warning(const std::string& message);

/// Install `sink`, returning the previously installed one.  Passing a
/// null sink restores the stderr default.
WarningSink set_warning_sink(WarningSink sink);

/// RAII capture: installs a sink that appends into an internal vector and
/// restores the previous sink on destruction.  Thread-safe appends.
class ScopedWarningCapture {
 public:
  ScopedWarningCapture();
  ~ScopedWarningCapture();

  ScopedWarningCapture(const ScopedWarningCapture&) = delete;
  ScopedWarningCapture& operator=(const ScopedWarningCapture&) = delete;

  /// Messages captured so far, in arrival order.
  std::vector<std::string> messages() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
  WarningSink previous_;
};

}  // namespace mcmm
