// Small exact-integer math helpers used throughout the library.
//
// The paper's parameter formulas (λ, µ, α, β, √p grids) are all integer
// optimisations; floating-point shortcuts would occasionally round the wrong
// way near perfect squares, so everything here is exact.
#pragma once

#include <cstdint>
#include <vector>

namespace mcmm {

/// Exact integer square root: largest s with s*s <= n.
std::int64_t isqrt(std::int64_t n);

/// True iff n is a perfect square.
bool is_perfect_square(std::int64_t n);

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Largest multiple of `step` that is <= n (and >= step). Requires step >= 1.
/// Returns `step` when n < step — callers clamp separately when needed.
std::int64_t round_down_multiple(std::int64_t n, std::int64_t step);

/// Largest divisor of n that is <= bound (>= 1). Used to snap tile sizes to
/// matrix dimensions the way the paper's implementation rounds λ and α.
std::int64_t largest_divisor_at_most(std::int64_t n, std::int64_t bound);

/// All divisors of n in increasing order.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Largest integer v >= 0 such that 1 + v + v^2 <= capacity.
/// This is the paper's λ (capacity = CS) and µ (capacity = CD).
/// Returns 0 when capacity < 3 (no useful tile fits).
std::int64_t max_reuse_parameter(std::int64_t capacity);

/// A 2-D processor grid of r rows x c columns (r * c cores).
/// The paper assumes sqrt(p) x sqrt(p); the library generalises the
/// grid-based schedules to the most balanced factorisation of any p.
struct Grid {
  std::int64_t r = 1;
  std::int64_t c = 1;
  std::int64_t cores() const { return r * c; }
  bool square() const { return r == c; }
};

/// The most balanced factorisation r x c = p with r <= c (r is the
/// largest divisor of p not exceeding sqrt(p)).  Perfect squares give
/// sqrt(p) x sqrt(p); primes degrade to 1 x p.
Grid balanced_grid(std::int64_t p);

/// Least common multiple (non-negative inputs, lcm(0, x) == 0).
std::int64_t lcm(std::int64_t a, std::int64_t b);

/// Half-open index range [lo, hi).
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

/// Contiguous split of [0, total) into `parts` chunks whose sizes differ by
/// at most one (the first `total % parts` chunks get the extra element).
Range chunk_range(std::int64_t total, int parts, int idx);

}  // namespace mcmm
