// Minimal command-line parser for the bench/example executables.
//
// Supports `--flag`, `--key value` and `--key=value`; unknown arguments are
// an error so typos in sweep parameters cannot silently run the wrong
// experiment. Values are parsed on demand with range checking.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcmm {

class CliParser {
public:
  /// Declare an option before parse(). `help` is shown by print_help().
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv; throws mcmm::Error on unknown or malformed arguments.
  /// Returns false if --help was requested (help text already printed).
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  /// True iff the user supplied the option on the command line (as opposed
  /// to the declared default being in effect).
  bool is_set(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Comma-separated list of integers ("50,100,200").
  std::vector<std::int64_t> integer_list(const std::string& name) const;

  void print_help(const std::string& program, const std::string& blurb) const;

private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };
  const Opt& find(const std::string& name) const;

  std::map<std::string, Opt> opts_;
  std::string program_;
};

}  // namespace mcmm
