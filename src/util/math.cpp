#include "util/math.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcmm {

std::int64_t isqrt(std::int64_t n) {
  MCMM_REQUIRE(n >= 0, "isqrt of negative number");
  if (n < 2) return n;
  // Start from the FP estimate and correct. Squares are computed in 128-bit
  // so inputs near INT64_MAX (whose roots square past 2^63) stay exact.
  auto s = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
  const auto sq = [](std::int64_t v) {
    // __extension__ keeps -Wpedantic quiet about the non-ISO __int128
    // (GCC 12 flags it; newer GCCs only without the keyword).
    __extension__ typedef __int128 int128;
    return static_cast<int128>(v) * static_cast<int128>(v);
  };
  while (s > 0 && sq(s) > n) --s;
  while (sq(s + 1) <= n) ++s;
  return s;
}

bool is_perfect_square(std::int64_t n) {
  if (n < 0) return false;
  const std::int64_t s = isqrt(n);
  return s * s == n;
}

std::int64_t round_down_multiple(std::int64_t n, std::int64_t step) {
  MCMM_REQUIRE(step >= 1, "round_down_multiple: step must be >= 1");
  if (n < step) return step;
  return (n / step) * step;
}

std::int64_t largest_divisor_at_most(std::int64_t n, std::int64_t bound) {
  MCMM_REQUIRE(n >= 1, "largest_divisor_at_most: n must be >= 1");
  MCMM_REQUIRE(bound >= 1, "largest_divisor_at_most: bound must be >= 1");
  if (bound >= n) return n;
  for (std::int64_t d = bound; d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;  // unreachable: 1 divides n
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  MCMM_REQUIRE(n >= 1, "divisors: n must be >= 1");
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

std::int64_t max_reuse_parameter(std::int64_t capacity) {
  MCMM_REQUIRE(capacity >= 0, "max_reuse_parameter: negative capacity");
  if (capacity < 3) return 0;
  // 1 + v + v^2 <= capacity  <=>  v <= (-1 + sqrt(4*capacity - 3)) / 2.
  std::int64_t v = (isqrt(4 * capacity - 3) - 1) / 2;
  while (1 + (v + 1) + (v + 1) * (v + 1) <= capacity) ++v;
  while (v > 0 && 1 + v + v * v > capacity) --v;
  return v;
}

Grid balanced_grid(std::int64_t p) {
  MCMM_REQUIRE(p >= 1, "balanced_grid: p must be >= 1");
  Grid g;
  g.r = largest_divisor_at_most(p, isqrt(p));
  g.c = p / g.r;
  return g;
}

std::int64_t lcm(std::int64_t a, std::int64_t b) {
  MCMM_REQUIRE(a >= 0 && b >= 0, "lcm: negative input");
  if (a == 0 || b == 0) return 0;
  std::int64_t x = a, y = b;
  while (y != 0) {
    const std::int64_t t = x % y;
    x = y;
    y = t;
  }
  return a / x * b;
}

Range chunk_range(std::int64_t total, int parts, int idx) {
  MCMM_REQUIRE(total >= 0, "chunk_range: negative total");
  MCMM_REQUIRE(parts >= 1 && idx >= 0 && idx < parts,
               "chunk_range: bad partition");
  const std::int64_t base = total / parts;
  const std::int64_t rem = total % parts;
  const std::int64_t lo =
      static_cast<std::int64_t>(idx) * base + std::min<std::int64_t>(idx, rem);
  const std::int64_t len = base + (idx < rem ? 1 : 0);
  return Range{lo, lo + len};
}

}  // namespace mcmm
