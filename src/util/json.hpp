// Minimal JSON writer for the CLI tool's machine-readable output.
//
// Hand-rolled on purpose (no third-party deps in this repo): supports
// objects, arrays, strings (escaped), integers, doubles and booleans,
// with validity enforced by assertions (keys only inside objects, one
// root value, balanced begin/end).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcmm {

class JsonWriter {
public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value (objects only).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document (all containers must be closed).
  std::string str() const;

private:
  enum class Ctx { kObject, kArray };
  void before_value();
  void raw(const std::string& s) { out_ += s; }

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace mcmm
