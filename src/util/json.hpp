// Minimal JSON writer and reader for the machine-readable outputs.
//
// Hand-rolled on purpose (no third-party deps in this repo): the writer
// supports objects, arrays, strings (escaped), integers, doubles, booleans
// and null, with validity enforced by assertions (keys only inside objects,
// one root value, balanced begin/end).  The reader parses the same dialect
// back into an order-preserving `JsonValue` tree, so bench JSON documents
// can be round-tripped byte-for-byte (the golden-schema tests rely on it).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcmm {

class JsonWriter {
public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value (objects only).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null_value();

  /// Splice a pre-serialized JSON document in as the next value.  The
  /// caller vouches for its validity (run it through json_parse first when
  /// in doubt) — the writer only tracks it as one value.
  JsonWriter& raw_value(const std::string& json) {
    before_value();
    raw(json);
    return *this;
  }

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document (all containers must be closed).
  std::string str() const;

private:
  enum class Ctx { kObject, kArray };
  void before_value();
  void raw(const std::string& s) { out_ += s; }

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Parsed JSON document.  Object members keep their textual order, so a
/// parse/serialize round trip preserves key order exactly — the bench JSON
/// schema promises stable key order and the tests check it through here.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document; throws mcmm::Error on malformed input
/// or trailing garbage.
JsonValue json_parse(const std::string& text);

/// Serialize a JsonValue with the same formatting as JsonWriter (compact
/// separators, %.17g doubles, integral values without a decimal point).
std::string json_serialize(const JsonValue& v);

}  // namespace mcmm
