#include "util/warnings.hpp"

#include <cstdio>
#include <utility>

#include "check/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcmm {

namespace {

// One mutex + slot pair so the guarded_by relation is expressible: the
// sink slot may only be touched while `m` is held.  Built on sync::mutex,
// so under -DMCMM_CHECKED_SYNC=ON the model checker explores concurrent
// set_warning_sink/emit_warning interleavings (the "warnings/..."
// scenarios) against this exact code.
struct SinkState {
  sync::mutex m;
  WarningSink sink MCMM_GUARDED_BY(m);  // empty = stderr default
};

SinkState& sink_state() {
  static SinkState state;
  return state;
}

}  // namespace

void emit_warning(const std::string& message) {
  // Copy the sink out under the lock, invoke it outside: a slow or
  // reentrant sink must not serialise (or deadlock) other warners.
  SinkState& state = sink_state();
  WarningSink sink;
  {
    sync::lock_guard lock(state.m);
    sink = state.sink;
  }
  if (sink) {
    sink(message);
  } else {
    std::fprintf(stderr, "%s\n", message.c_str());
  }
}

WarningSink set_warning_sink(WarningSink sink) {
  SinkState& state = sink_state();
  sync::lock_guard lock(state.m);
  WarningSink previous = std::move(state.sink);
  state.sink = std::move(sink);
  return previous;
}

struct ScopedWarningCapture::State {
  sync::mutex mutex;
  std::vector<std::string> messages MCMM_GUARDED_BY(mutex);
};

ScopedWarningCapture::ScopedWarningCapture()
    : state_(std::make_shared<State>()) {
  std::shared_ptr<State> state = state_;
  previous_ = set_warning_sink([state](const std::string& message) {
    sync::lock_guard lock(state->mutex);
    state->messages.push_back(message);
  });
}

ScopedWarningCapture::~ScopedWarningCapture() {
  set_warning_sink(std::move(previous_));
}

std::vector<std::string> ScopedWarningCapture::messages() const {
  sync::lock_guard lock(state_->mutex);
  return state_->messages;
}

}  // namespace mcmm
