#include "util/warnings.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

namespace mcmm {

namespace {

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

WarningSink& sink_slot() {
  static WarningSink sink;  // empty = stderr default
  return sink;
}

}  // namespace

void emit_warning(const std::string& message) {
  WarningSink sink;
  {
    std::lock_guard<std::mutex> lock(sink_mutex());
    sink = sink_slot();
  }
  if (sink) {
    sink(message);
  } else {
    std::fprintf(stderr, "%s\n", message.c_str());
  }
}

WarningSink set_warning_sink(WarningSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  WarningSink previous = std::move(sink_slot());
  sink_slot() = std::move(sink);
  return previous;
}

struct ScopedWarningCapture::State {
  mutable std::mutex mutex;
  std::vector<std::string> messages;
};

ScopedWarningCapture::ScopedWarningCapture()
    : state_(std::make_shared<State>()) {
  std::shared_ptr<State> state = state_;
  previous_ = set_warning_sink([state](const std::string& message) {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->messages.push_back(message);
  });
}

ScopedWarningCapture::~ScopedWarningCapture() {
  set_warning_sink(std::move(previous_));
}

std::vector<std::string> ScopedWarningCapture::messages() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->messages;
}

}  // namespace mcmm
