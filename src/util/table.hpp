// Tabular output for the figure-reproduction benches.
//
// Every figure in the paper is a set of series over a common x axis (matrix
// order, or the bandwidth ratio r). `SeriesTable` collects those series and
// renders them either as an aligned human-readable table or as CSV, so the
// bench output can be both read in a terminal and piped into a plotter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mcmm {

class SeriesTable {
public:
  /// `x_label` names the shared x axis (e.g. "order" in block units).
  explicit SeriesTable(std::string x_label);

  /// Register a series; columns appear in registration order.
  /// Returns the series index used by `set`.
  std::size_t add_series(const std::string& name);

  /// Record y value for series `series` at x position `x`.
  /// Rows are created on first use of an x value; x values keep insertion
  /// order (benches sweep in increasing order anyway).
  void set(std::size_t series, double x, double y);

  /// Render with aligned columns. Missing cells print as "-".
  void print_pretty() const;
  /// Render as CSV (header + one row per x).
  void print_csv() const;

  /// The same renderings as strings (for parity diffs and the JSON bench
  /// report); print_pretty/print_csv emit exactly these bytes.
  std::string to_pretty() const;
  std::string to_csv() const;

  std::size_t num_series() const { return names_.size(); }
  std::size_t num_rows() const { return xs_.size(); }
  /// Lookup a cell (for tests).
  std::optional<double> cell(std::size_t series, double x) const;

  /// Row-order accessors (for serialisers).
  const std::string& x_label() const { return x_label_; }
  const std::string& series_name(std::size_t series) const;
  double x_at(std::size_t row) const;
  std::optional<double> at(std::size_t row, std::size_t series) const;

private:
  std::size_t row_index(double x);

  std::string x_label_;
  std::vector<std::string> names_;
  std::vector<double> xs_;
  std::vector<std::vector<std::optional<double>>> cells_;  // [row][series]
};

/// Format a double the way the figures need: integers (miss counts) print
/// without decimals, fractional values with 6 significant digits.
std::string format_value(double v);

}  // namespace mcmm
