// Bounded lock-free MPMC ring buffer (Vyukov bounded-queue design).
//
// This generalises the per-worker ring idea behind obs/tracer.hpp into the
// multi-producer/multi-consumer request ring the serving daemon
// (ROADMAP: `mcmm_serve`) will use for admission: each slot carries a
// sequence number; producers claim a ticket from `tail_` with a CAS and
// publish the payload by advancing the slot's sequence with a release
// store; consumers mirror the dance on `head_`.  Full and empty are
// detected from the slot sequence alone, so neither side ever blocks the
// other, and a stalled producer only delays the one slot it claimed.
//
// The sync layer is a template policy so the *same* algorithm runs in two
// worlds:
//
//   * `MpmcRing<T>` (MpmcRingStdTraits) — real std::atomic, zero overhead,
//     for production use and the TSan stress tests;
//   * `MpmcRing<T, MpmcRingCheckedTraits>` (src/check/sync.hpp) — every
//     atomic is a check::checked_atomic and every payload cell a
//     check::checked_value, so the deterministic model checker
//     (tools/mcmm_check) can exhaustively explore interleavings and verify
//     the happens-before edges with vector clocks.
//
// `racy_publish` exists for the checker's seeded-mutation self-test: a
// traits variant that publishes the slot sequence with a *relaxed* store —
// dropping the release edge that makes the payload visible — must be
// flagged as a data race by the checker, proving the race detector is not
// vacuously green.  The mutation is only reachable behind
// MCMM_CHECK_ENABLE_MUTATIONS (defined by the checker's scenario suite and
// its tests, never by production code).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mcmm {

/// Production sync policy: plain std::atomic sequence counters and an
/// uninstrumented payload cell.
struct MpmcRingStdTraits {
  template <typename T>
  using atomic = std::atomic<T>;

  /// Payload storage; load/store are plain (the slot sequence's
  /// release/acquire pair orders them).
  template <typename T>
  struct cell {
    T v{};
    T load() const { return v; }
    void store(const T& x) { v = x; }
  };

  static constexpr bool racy_publish = false;
};

#ifdef MCMM_CHECK_ENABLE_MUTATIONS
/// Seeded mutation: publish the slot sequence with memory_order_relaxed,
/// severing the happens-before edge from the payload write to the
/// consumer's read.  The model checker must report this as a data race.
template <typename Base>
struct MpmcRingRacyPublishTraits : Base {
  static constexpr bool racy_publish = true;
};
#endif

template <typename T, typename Traits = MpmcRingStdTraits>
class MpmcRing {
 public:
  /// `capacity` must be a power of two >= 1 (throws mcmm::Error otherwise).
  ///
  /// Slot sequences use a doubled encoding: a slot is push-ready for
  /// ticket `pos` at seq == 2*pos (even) and pop-ready at seq == 2*pos + 1
  /// (odd).  The classical encoding (seq == pos / pos + 1) collides at
  /// capacity 1, where the pop-ready mark of ticket pos equals the
  /// push-ready mark of ticket pos + capacity, letting a second push
  /// overwrite an unconsumed slot; keeping the parities disjoint makes the
  /// degenerate single-slot ring (mask_ == 0) cycle correctly too.
  explicit MpmcRing(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    MCMM_REQUIRE(capacity >= 1 && (capacity & (capacity - 1)) == 0,
                 "MpmcRing: capacity must be a power of two >= 1");
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(2 * i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Enqueue `v`; false when the ring is full.  Lock-free, safe from any
  /// number of producers.
  bool try_push(const T& v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(2 * pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          slot.value.store(v);
          slot.seq.store(2 * pos + 1, publish_order());
          return true;
        }
        // CAS failure reloaded `pos`; retry with the new ticket.
      } else if (dif < 0) {
        return false;  // slot still owned by a reader one lap behind: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue into `out`; false when the ring is empty.  Lock-free, safe
  /// from any number of consumers.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(2 * pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          out = slot.value.load();
          // Re-arm for the slot's next producer ticket, pos + capacity.
          slot.seq.store(2 * (pos + mask_ + 1), std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // producer has not published this slot yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Instantaneous occupancy estimate (exact only when quiescent).
  std::size_t size_estimate() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  static constexpr std::memory_order publish_order() {
    return Traits::racy_publish ? std::memory_order_relaxed
                                : std::memory_order_release;
  }

  struct Slot {
    typename Traits::template atomic<std::size_t> seq{0};
    typename Traits::template cell<T> value;
  };

  std::size_t mask_;
  std::vector<Slot> slots_;
  // Producers and consumers contend on different cache lines.
  alignas(64) typename Traits::template atomic<std::size_t> tail_{0};
  alignas(64) typename Traits::template atomic<std::size_t> head_{0};
};

}  // namespace mcmm
