#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace mcmm {

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Opt o;
  o.help = help;
  o.is_flag = true;
  o.value = "false";
  opts_[name] = std::move(o);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  Opt o;
  o.help = help;
  o.value = default_value;
  opts_[name] = std::move(o);
}

bool CliParser::parse(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(program_, "");
      return false;
    }
    MCMM_REQUIRE(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(arg);
    MCMM_REQUIRE(it != opts_.end(), "unknown option: --" + arg);
    Opt& o = it->second;
    if (o.is_flag) {
      MCMM_REQUIRE(!has_value, "flag --" + arg + " does not take a value");
      o.value = "true";
    } else {
      if (!has_value) {
        MCMM_REQUIRE(i + 1 < argc, "option --" + arg + " needs a value");
        value = argv[++i];
      }
      o.value = value;
    }
    o.set = true;
  }
  return true;
}

const CliParser::Opt& CliParser::find(const std::string& name) const {
  auto it = opts_.find(name);
  MCMM_REQUIRE(it != opts_.end(), "option not declared: --" + name);
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  return find(name).value == "true";
}

bool CliParser::is_set(const std::string& name) const {
  return find(name).set;
}

std::string CliParser::str(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  const std::string& v = find(name).value;
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  MCMM_REQUIRE(end && *end == '\0' && !v.empty(),
               "option --" + name + ": not an integer: " + v);
  return r;
}

double CliParser::real(const std::string& name) const {
  const std::string& v = find(name).value;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  MCMM_REQUIRE(end && *end == '\0' && !v.empty(),
               "option --" + name + ": not a number: " + v);
  return r;
}

std::vector<std::int64_t> CliParser::integer_list(
    const std::string& name) const {
  const std::string v = find(name).value;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    const std::string tok = v.substr(pos, comma - pos);
    char* end = nullptr;
    const long long r = std::strtoll(tok.c_str(), &end, 10);
    MCMM_REQUIRE(end && *end == '\0' && !tok.empty(),
                 "option --" + name + ": bad list element: " + tok);
    out.push_back(r);
    pos = comma + 1;
  }
  return out;
}

void CliParser::print_help(const std::string& program,
                           const std::string& blurb) const {
  std::printf("usage: %s [options]\n", program.c_str());
  if (!blurb.empty()) std::printf("%s\n", blurb.c_str());
  std::printf("options:\n");
  for (const auto& [name, o] : opts_) {
    if (o.is_flag) {
      std::printf("  --%-24s %s\n", name.c_str(), o.help.c_str());
    } else {
      std::printf("  --%-24s %s (default: %s)\n", (name + " <v>").c_str(),
                  o.help.c_str(), o.value.c_str());
    }
  }
}

}  // namespace mcmm
