// Clang Thread Safety Analysis macros (-Wthread-safety).
//
// These expand to Clang's capability attributes when compiling with Clang
// and to nothing elsewhere, so GCC builds are unaffected.  The repo's
// annotated lock types live in src/check/sync.hpp (mcmm::sync::mutex and
// friends — libstdc++'s std::mutex carries no capability annotations, so a
// thin annotated wrapper is required for the analysis to see anything);
// mutex-guarded members are annotated at their declaration:
//
//   sync::mutex mutex_;
//   int remaining_ MCMM_GUARDED_BY(mutex_) = 0;
//
// The clang CI build compiles with -Wthread-safety -Werror, so a guarded
// member accessed without its mutex is a build break, not a code review
// comment.  Conventions are documented in docs/static_analysis.md.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MCMM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MCMM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define MCMM_CAPABILITY(x) MCMM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MCMM_SCOPED_CAPABILITY MCMM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define MCMM_GUARDED_BY(x) MCMM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define MCMM_PT_GUARDED_BY(x) MCMM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define MCMM_REQUIRES(...) \
  MCMM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (not held on entry).
#define MCMM_ACQUIRE(...) \
  MCMM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define MCMM_RELEASE(...) \
  MCMM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define MCMM_TRY_ACQUIRE(ret, ...) \
  MCMM_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define MCMM_EXCLUDES(...) MCMM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the calling thread already holds the capability.
#define MCMM_ASSERT_CAPABILITY(x) \
  MCMM_THREAD_ANNOTATION(assert_capability(x))

/// Returns a reference to the capability guarding this object.
#define MCMM_RETURN_CAPABILITY(x) MCMM_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis (use sparingly, with a comment).
#define MCMM_NO_THREAD_SAFETY_ANALYSIS \
  MCMM_THREAD_ANNOTATION(no_thread_safety_analysis)
