// Error handling primitives for the multicore_mm library.
//
// The library distinguishes two failure classes:
//  * usage errors (bad configuration, impossible parameters) -> mcmm::Error,
//    a std::runtime_error subclass thrown by public entry points;
//  * internal invariant violations (bugs) -> MCMM_ASSERT, which aborts with a
//    message in all build types.  The simulator relies on these assertions to
//    validate that IDEAL-mode algorithms never touch non-resident data, so
//    they are deliberately *not* compiled out in Release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mcmm {

/// Exception thrown on invalid user-supplied configuration or arguments.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "mcmm: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::abort();
}
}  // namespace detail

}  // namespace mcmm

/// Always-on assertion: invariant checks that guard simulator correctness.
#define MCMM_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::mcmm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                   \
  } while (false)

/// Throw an mcmm::Error with a formatted message.
#define MCMM_REQUIRE(expr, msg)                   \
  do {                                            \
    if (!(expr)) {                                \
      throw ::mcmm::Error(std::string("mcmm: ") + (msg)); \
    }                                             \
  } while (false)
