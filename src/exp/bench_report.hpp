// Machine-readable bench output (the BENCH_*.json files).
//
// Schema `mcmm-bench-v1` — see docs/benchmarking.md.  The document has a
// deliberately split shape:
//
//   * "results"  — everything deterministic: the rendered series tables,
//     the deduplicated simulation points with their metric values, and the
//     memo-cache accounting.  Two runs of the same sweep produce these
//     bytes identically regardless of --jobs; the sweep-parity CI job and
//     tests/test_sweep_runner.cpp diff exactly this subtree.
//   * "timing"   — everything nondeterministic: worker count, per-point
//     and total wall times, and the measured speedup versus a serial
//     replay (sum of per-point wall times / total wall time).
//
// Key order is fixed by construction (JsonWriter emits in call order) and
// locked in by the golden test (tests/test_bench_json.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep_runner.hpp"
#include "util/table.hpp"

namespace mcmm {

class JsonWriter;

class BenchReport {
public:
  explicit BenchReport(std::string bench_name);

  /// Append a rendered sub-figure (snapshots the table).
  void add_table(const std::string& title, const SeriesTable& table);

  /// Append a table of *measured* values (snapshots it).  Emitted under
  /// the "timing" subtree as "tables" — same row/series shape as the
  /// results tables, but excluded from results_json(), so nondeterministic
  /// series (wall-clock GFLOP/s, %-of-roofline) never break the
  /// sweep-parity byte diff.
  void add_timing_table(const std::string& title, const SeriesTable& table);

  /// Append one deduplicated simulation point with its metric values and
  /// measured wall time.  Throws mcmm::Error on a non-finite or negative
  /// wall time (a NaN here would silently poison every speedup statistic
  /// downstream).
  void add_point(const SweepPoint& point, double ms, double md, double tdata,
                 double wall_ms);

  /// Attach a deterministic key/value annotation (kernel dispatch string,
  /// pinning state, ...) to the "results" subtree.  Emitted in call order
  /// under "context"; the object is omitted entirely when no annotation
  /// was set, so existing golden documents are byte-stable.
  void set_context(const std::string& key, const std::string& value);

  /// Record the run's parallelism and aggregate wall times.
  void set_timing(int jobs, double total_wall_ms, double serial_wall_ms);

  /// Attach a pre-serialized mcmm-trace-summary-v1 document (see
  /// src/obs/trace_export.hpp).  Emitted verbatim as "trace" inside the
  /// *timing* subtree — trace timings are nondeterministic, so "results"
  /// stays byte-stable with or without tracing.  Throws mcmm::Error on
  /// malformed JSON; an empty string clears it.
  void set_trace_summary(const std::string& trace_json);

  /// Memo-cache accounting (deterministic, lives under "results").
  void set_requests(std::size_t requests, std::size_t cache_hits);

  /// The deterministic subtree only: schema, bench, "results".  Identical
  /// bytes for every --jobs value.
  std::string results_json() const;

  /// The full document: results + "timing".
  std::string to_json() const;

  /// Write to_json() (plus a trailing newline) to `path`; throws
  /// mcmm::Error if the file cannot be written.
  void write(const std::string& path) const;

private:
  struct Point {
    SweepPoint point;
    double ms = 0;
    double md = 0;
    double tdata = 0;
    double wall_ms = 0;
  };
  struct Table {
    std::string title;
    SeriesTable table;
  };

  void emit(JsonWriter& w, bool include_timing) const;
  static void emit_table(JsonWriter& w, const Table& t);

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<Table> tables_;
  std::vector<Table> timing_tables_;
  std::vector<Point> points_;
  std::size_t requests_ = 0;
  std::size_t cache_hits_ = 0;
  int jobs_ = 1;
  double total_wall_ms_ = 0;
  double serial_wall_ms_ = 0;
  std::string trace_json_;
};

}  // namespace mcmm
