// Sweep drivers shared by the figure benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/machine_config.hpp"
#include "sim/problem.hpp"

namespace mcmm {

/// Matrix orders lo, lo+step, ..., <= hi (all in block units).
std::vector<std::int64_t> order_sweep(std::int64_t lo, std::int64_t hi,
                                      std::int64_t step);

/// One point of a bandwidth-ratio sweep (Figure 12).
struct RatioPoint {
  double r = 0;       ///< sigma_S / (sigma_S + sigma_D)
  double tdata = 0;
};

/// Tdata of `algorithm` on a fixed problem as the bandwidth ratio r sweeps
/// over `ratios`, under the given setting.
///
/// For every algorithm except Tradeoff the schedule — hence MS and MD — is
/// independent of the bandwidths, so the product is simulated once and
/// Tdata is rescaled per ratio.  Tradeoff re-plans (alpha, beta depend on
/// sigma_S/sigma_D) and is re-simulated at every ratio.
std::vector<RatioPoint> bandwidth_ratio_sweep(const std::string& algorithm,
                                              const Problem& prob,
                                              const MachineConfig& cfg,
                                              Setting setting,
                                              const std::vector<double>& ratios);

/// Lower-bound Tdata per ratio for the same sweep (Figure 12's floor).
std::vector<RatioPoint> bandwidth_ratio_lower_bound(
    const Problem& prob, const MachineConfig& cfg,
    const std::vector<double>& ratios);

}  // namespace mcmm
