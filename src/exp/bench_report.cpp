#include "exp/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mcmm {

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void BenchReport::add_table(const std::string& title,
                            const SeriesTable& table) {
  tables_.push_back(Table{title, table});
}

void BenchReport::add_timing_table(const std::string& title,
                                   const SeriesTable& table) {
  timing_tables_.push_back(Table{title, table});
}

void BenchReport::add_point(const SweepPoint& point, double ms, double md,
                            double tdata, double wall_ms) {
  MCMM_REQUIRE(std::isfinite(wall_ms) && wall_ms >= 0,
               "BenchReport: wall time must be finite and non-negative");
  MCMM_REQUIRE(std::isfinite(ms) && std::isfinite(md) && std::isfinite(tdata),
               "BenchReport: metric values must be finite");
  points_.push_back(Point{point, ms, md, tdata, wall_ms});
}

void BenchReport::set_timing(int jobs, double total_wall_ms,
                             double serial_wall_ms) {
  MCMM_REQUIRE(jobs >= 1, "BenchReport: jobs must be >= 1");
  MCMM_REQUIRE(std::isfinite(total_wall_ms) && total_wall_ms >= 0 &&
                   std::isfinite(serial_wall_ms) && serial_wall_ms >= 0,
               "BenchReport: wall time must be finite and non-negative");
  jobs_ = jobs;
  total_wall_ms_ = total_wall_ms;
  serial_wall_ms_ = serial_wall_ms;
}

void BenchReport::set_trace_summary(const std::string& trace_json) {
  if (!trace_json.empty()) json_parse(trace_json);  // throws when malformed
  trace_json_ = trace_json;
}

void BenchReport::set_requests(std::size_t requests, std::size_t cache_hits) {
  requests_ = requests;
  cache_hits_ = cache_hits;
}

void BenchReport::set_context(const std::string& key,
                              const std::string& value) {
  MCMM_REQUIRE(!key.empty(), "BenchReport: context key must be non-empty");
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void BenchReport::emit(JsonWriter& w, bool include_timing) const {
  w.begin_object()
      .kv("schema", "mcmm-bench-v1")
      .kv("bench", bench_)
      .key("results")
      .begin_object();

  if (!context_.empty()) {
    w.key("context").begin_object();
    for (const auto& [key, value] : context_) w.kv(key, value);
    w.end_object();
  }

  w.key("tables").begin_array();
  for (const Table& t : tables_) emit_table(w, t);
  w.end_array();

  w.key("points").begin_array();
  for (const Point& p : points_) {
    w.begin_object()
        .kv("algorithm", p.point.algorithm)
        .key("problem")
        .begin_object()
        .kv("m", p.point.problem.m)
        .kv("n", p.point.problem.n)
        .kv("z", p.point.problem.z)
        .end_object()
        .key("machine")
        .begin_object()
        .kv("p", p.point.cfg.p)
        .kv("cs", p.point.cfg.cs)
        .kv("cd", p.point.cfg.cd)
        .kv("sigma_s", p.point.cfg.sigma_s)
        .kv("sigma_d", p.point.cfg.sigma_d)
        .end_object()
        .kv("setting", to_string(p.point.setting))
        .kv("ms", p.ms)
        .kv("md", p.md)
        .kv("tdata", p.tdata)
        .end_object();
  }
  w.end_array();

  w.kv("requests", static_cast<std::int64_t>(requests_))
      .kv("cache_hits", static_cast<std::int64_t>(cache_hits_))
      .kv("simulations", static_cast<std::int64_t>(points_.size()));
  w.end_object();  // results

  if (include_timing) {
    w.key("timing")
        .begin_object()
        .kv("jobs", jobs_)
        .kv("total_wall_ms", total_wall_ms_)
        .kv("serial_wall_ms", serial_wall_ms_)
        .kv("speedup_vs_serial",
            total_wall_ms_ > 0 ? serial_wall_ms_ / total_wall_ms_ : 1.0);
    w.key("point_wall_ms").begin_array();
    for (const Point& p : points_) w.value(p.wall_ms);
    w.end_array();
    if (!timing_tables_.empty()) {
      w.key("tables").begin_array();
      for (const Table& t : timing_tables_) emit_table(w, t);
      w.end_array();
    }
    if (!trace_json_.empty()) w.key("trace").raw_value(trace_json_);
    w.end_object();
  }
  w.end_object();
}

void BenchReport::emit_table(JsonWriter& w, const Table& t) {
  w.begin_object().kv("title", t.title).kv("x_label", t.table.x_label());
  w.key("series").begin_array();
  for (std::size_t s = 0; s < t.table.num_series(); ++s) {
    w.value(t.table.series_name(s));
  }
  w.end_array();
  w.key("rows").begin_array();
  for (std::size_t r = 0; r < t.table.num_rows(); ++r) {
    w.begin_object().kv("x", t.table.x_at(r));
    w.key("values").begin_array();
    for (std::size_t s = 0; s < t.table.num_series(); ++s) {
      if (const auto v = t.table.at(r, s)) {
        w.value(*v);
      } else {
        w.null_value();
      }
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
}

std::string BenchReport::results_json() const {
  JsonWriter w;
  emit(w, /*include_timing=*/false);
  return w.str();
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  emit(w, /*include_timing=*/true);
  return w.str();
}

void BenchReport::write(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MCMM_REQUIRE(f != nullptr, "BenchReport: cannot write " + path);
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = n == doc.size() && std::fputc('\n', f) != EOF;
  const bool closed = std::fclose(f) == 0;
  MCMM_REQUIRE(ok && closed, "BenchReport: short write to " + path);
}

}  // namespace mcmm
