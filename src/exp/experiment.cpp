#include "exp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "alg/registry.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "verify/invariant_auditor.hpp"

namespace mcmm {

const char* to_string(Setting s) {
  switch (s) {
    case Setting::kIdeal: return "IDEAL";
    case Setting::kLru50: return "LRU-50";
    case Setting::kLruFull: return "LRU(C)";
    case Setting::kLruDouble: return "LRU(2C)";
  }
  return "?";
}

RunResult run_experiment(const std::string& algorithm, const Problem& prob,
                         const MachineConfig& cfg, Setting setting) {
  return run_audited_experiment(algorithm, prob, cfg, setting,
                                /*audit=*/nullptr);
}

RunResult run_audited_experiment(const std::string& algorithm,
                                 const Problem& prob, const MachineConfig& cfg,
                                 Setting setting, AuditReport* audit,
                                 Trace* trace) {
  prob.validate();
  cfg.validate();
  const AlgorithmPtr alg = make_algorithm(algorithm);

  MachineConfig physical = cfg;
  MachineConfig declared = cfg;
  Policy policy = Policy::kLru;
  switch (setting) {
    case Setting::kIdeal:
      policy = alg->supports_ideal() ? Policy::kIdeal : Policy::kLru;
      break;
    case Setting::kLru50:
      declared = cfg.with_caches_scaled(1, 2);
      // Halving a tiny distributed cache (CD = 3 or 4 in the q=64/80
      // configurations) would leave no room for even a 1x1 working set
      // (1 + mu + mu^2 needs 3 blocks).  The declaration is only a
      // planning hint under LRU, so floor it at the minimum usable size —
      // the paper plots Distributed Opt. LRU-50 for these machines, so
      // its simulator must do the equivalent.
      declared.cd = std::max<std::int64_t>(
          declared.cd, std::min<std::int64_t>(cfg.cd, 3));
      break;
    case Setting::kLruFull:
      break;
    case Setting::kLruDouble:
      physical = cfg.with_caches_scaled(2, 1);
      break;
  }

  Machine machine(physical, policy);
  std::optional<InvariantAuditor> auditor;
  std::optional<TraceRecorder> recorder;
  if (audit != nullptr) auditor.emplace(machine);
  if (trace != nullptr) recorder.emplace(machine, *trace);
  alg->run(machine, prob, declared);
  machine.flush();
  if (auditor) {
    auditor->finalize(prob);
    *audit = auditor->report();
  }

  RunResult out;
  out.stats = machine.stats();
  out.physical = physical;
  out.declared = declared;
  out.ms = out.stats.ms();
  out.md = out.stats.md();
  out.tdata = out.stats.tdata(cfg.sigma_s, cfg.sigma_d);
  MCMM_ASSERT(out.stats.total_fmas() == prob.fmas(),
              ("experiment: " + algorithm + " performed " +
               std::to_string(out.stats.total_fmas()) + " FMAs, expected " +
               std::to_string(prob.fmas()))
                  .c_str());
  return out;
}

}  // namespace mcmm
