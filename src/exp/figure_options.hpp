// The standard command line shared by the figure/ablation/extension
// benches, split out of bench/ so the parsing and validation rules are
// unit-testable (tests/test_cli.cpp).
//
//   --csv            machine-friendly tables
//   --full           the paper's sweep extent instead of the reduced preset
//   --min-order/--max-order/--step
//                    sweep range in blocks (0 = preset)
//   --jobs N         sweep-point worker threads (default: hardware
//                    concurrency); results are bit-identical for every N
//   --json FILE      write the machine-readable bench report (see
//                    docs/benchmarking.md for the schema)
#pragma once

#include <cstdint>
#include <string>

namespace mcmm {

struct FigureOptions {
  bool csv = false;
  std::int64_t max_order = 0;   ///< largest matrix order in blocks
  std::int64_t step = 0;        ///< sweep step
  std::int64_t min_order = 0;
  int jobs = 1;                 ///< sweep worker threads (>= 1)
  std::string json_path;        ///< empty = no JSON report
};

/// Parse and validate the standard options.  `default_max`/`paper_max`
/// choose the sweep extent without/with --full.  Returns false if --help
/// was printed.  Throws mcmm::Error on invalid input: an inverted range
/// (--min-order > --max-order), a zero or negative --step, --jobs < 1, or
/// a --json path that cannot be opened for writing.
bool parse_figure_options(int argc, const char* const* argv,
                          const std::string& blurb, std::int64_t default_max,
                          std::int64_t paper_max, std::int64_t default_step,
                          FigureOptions* out);

/// The --jobs default: hardware concurrency, floored at 1.
int default_sweep_jobs();

/// Throws mcmm::Error unless `path` can be opened for writing (no-op for
/// an empty path).  Benches call this up front so a bad --json destination
/// fails before the sweep, not after it.
void require_writable_report_path(const std::string& path);

}  // namespace mcmm
