#include "exp/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "gemm/thread_pool.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace mcmm {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

std::string fmt_real(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(Metric m) {
  switch (m) {
    case Metric::kMs: return "ms";
    case Metric::kMd: return "md";
    case Metric::kTdata: return "tdata";
    case Metric::kTdataWithWritebacks: return "tdata_writebacks";
  }
  return "?";
}

double metric_of(const RunResult& res, Metric m) {
  switch (m) {
    case Metric::kMs: return static_cast<double>(res.ms);
    case Metric::kMd: return static_cast<double>(res.md);
    case Metric::kTdata: return res.tdata;
    case Metric::kTdataWithWritebacks:
      return res.stats.tdata_with_writebacks(res.physical.sigma_s,
                                             res.physical.sigma_d);
  }
  return 0;
}

std::string SweepPoint::key() const {
  return algorithm + '|' + std::to_string(problem.m) + 'x' +
         std::to_string(problem.n) + 'x' + std::to_string(problem.z) + '|' +
         std::to_string(cfg.p) + '|' + std::to_string(cfg.cs) + '|' +
         std::to_string(cfg.cd) + '|' + fmt_real(cfg.sigma_s) + '|' +
         fmt_real(cfg.sigma_d) + '|' + to_string(setting);
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs) {
  MCMM_REQUIRE(jobs >= 1, "SweepRunner: jobs must be >= 1");
}

std::size_t SweepRunner::request(const SweepPoint& point, Metric metric) {
  ++num_requests_;
  const std::string sim_key = point.key();
  const auto [sim_it, sim_inserted] = memo_.emplace(sim_key, points_.size());
  if (sim_inserted) {
    points_.push_back(Simulation{point, RunResult{}, 0, false});
  } else {
    ++cache_hits_;
  }
  const std::string req_key = sim_key + '#' + to_string(metric);
  const auto [req_it, req_inserted] =
      request_ids_.emplace(req_key, requests_.size());
  if (req_inserted) {
    requests_.push_back(Request{sim_it->second, metric});
  }
  return req_it->second;
}

void SweepRunner::run() {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!points_[i].done) pending.push_back(i);
  }
  if (pending.empty()) return;

  // Destructor-based accounting: a worker exception propagates to the
  // caller, but the wall time was still spent and must still be counted.
  struct WallGuard {
    double t0;
    double* acc;
    ~WallGuard() { *acc += now_ms() - t0; }
  } wall_guard{now_ms(), &total_wall_ms_};

  const auto evaluate = [this](std::size_t sim) {
    Simulation& s = points_[sim];
    const double start = now_ms();
    s.result = run_experiment(s.point.algorithm, s.point.problem, s.point.cfg,
                              s.point.setting);
    s.wall_ms = now_ms() - start;
    s.done = true;
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(jobs_), pending.size()));
  ExecutionTracer* const tracer = tracer_;
  if (workers <= 1) {
    // Serial replay still produces a "sweep" region with one task span per
    // simulation (on ring 0), closed even when a simulation throws.
    if (tracer != nullptr) tracer->begin_region("sweep");
    struct RegionGuard {
      ExecutionTracer* t;
      ~RegionGuard() {
        if (t != nullptr) t->end_region();
      }
    } region_guard{tracer};
    for (const std::size_t sim : pending) {
      const std::int64_t begin_ns = tracer != nullptr ? tracer->now_ns() : 0;
      evaluate(sim);
      if (tracer != nullptr) {
        tracer->record(0, TracePhase::kTask, begin_ns, tracer->now_ns());
      }
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pending.size());
    for (const std::size_t sim : pending) {
      tasks.emplace_back([&evaluate, sim] { evaluate(sim); });
    }
    ThreadPool pool(workers);
    if (tracer != nullptr) {
      MCMM_REQUIRE(tracer->workers() >= workers,
                   "SweepRunner: tracer has fewer rings than jobs");
      pool.set_tracer(tracer);
      pool.set_trace_label("sweep");
    }
    if (!pin_cpus_.empty()) pool.pin_workers(pin_cpus_);
    pool.run_batch(tasks);
  }
}

double SweepRunner::value(std::size_t request_id) const {
  MCMM_REQUIRE(request_id < requests_.size(),
               "SweepRunner::value: bad request id");
  const Request& req = requests_[request_id];
  const Simulation& sim = points_[req.sim];
  MCMM_REQUIRE(sim.done, "SweepRunner::value: run() has not evaluated this "
                         "point yet");
  return metric_of(sim.result, req.metric);
}

const SweepPoint& SweepRunner::simulation(std::size_t sim) const {
  MCMM_REQUIRE(sim < points_.size(), "SweepRunner::simulation: bad index");
  return points_[sim].point;
}

const RunResult& SweepRunner::result(std::size_t sim) const {
  MCMM_REQUIRE(sim < points_.size() && points_[sim].done,
               "SweepRunner::result: point not evaluated");
  return points_[sim].result;
}

double SweepRunner::wall_ms(std::size_t sim) const {
  MCMM_REQUIRE(sim < points_.size() && points_[sim].done,
               "SweepRunner::wall_ms: point not evaluated");
  return points_[sim].wall_ms;
}

double SweepRunner::serial_wall_ms() const {
  double sum = 0;
  for (const Simulation& s : points_) {
    if (s.done) sum += s.wall_ms;
  }
  return sum;
}

}  // namespace mcmm
