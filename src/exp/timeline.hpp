// Execution-time envelopes: connecting the paper's Tdata (pure data
// traffic) to wall-clock time.
//
// The paper's introduction motivates overlap ("most of these
// communications can be overlapped with independent computations") but
// its metric stops at Tdata.  Given a run's miss counts and a per-core
// compute rate (block FMAs per time unit), two analytic envelopes bound
// any real execution:
//
//   serial  = Tdata + compute            (no overlap at all: upper bound)
//   overlap = max(shared-transfer time,
//                 busiest core's transfer time,
//                 busiest core's compute time)   (perfect overlap: lower)
//
// The perfect-overlap bound treats the memory->shared channel, each
// shared->private channel and each core's ALU as independent pipelined
// resources; whichever saturates first is the bottleneck.  The machine
// balance (the compute rate at which a schedule flips from memory-bound
// to compute-bound) falls out in closed form.
#pragma once

#include "exp/experiment.hpp"
#include "sim/cache_stats.hpp"
#include "sim/machine_config.hpp"

namespace mcmm {

struct TimeEnvelope {
  double compute_time = 0;   ///< busiest core's FMAs / rate
  double shared_time = 0;    ///< MS / sigma_S
  double dist_time = 0;      ///< busiest core's loads / sigma_D
  double serial = 0;         ///< no overlap: everything sums
  double overlap = 0;        ///< perfect overlap: slowest resource
  /// Which resource the perfect-overlap bound saturates.
  enum class Bottleneck { kCompute, kSharedChannel, kDistributedChannel };
  Bottleneck bottleneck = Bottleneck::kCompute;
};

const char* to_string(TimeEnvelope::Bottleneck b);

/// Envelopes for a finished run, with each core computing `compute_rate`
/// block FMAs per time unit.
TimeEnvelope time_envelope(const MachineStats& stats,
                           const MachineConfig& cfg, double compute_rate);

/// The compute rate at which the perfect-overlap bound switches from
/// memory-bound to compute-bound for this run (FMAs per time unit):
/// below it the ALUs idle, above it the caches idle.
double balance_rate(const MachineStats& stats, const MachineConfig& cfg);

}  // namespace mcmm
