// Parallel sweep engine for the figure benches and sweep tools.
//
// Every bench replays a Section 4 sweep point-by-point, and every point —
// one `run_experiment` call — builds its own Machine, so the points are
// embarrassingly parallel.  SweepRunner shards them across an
// mcmm::ThreadPool while keeping the output *deterministic*:
//
//  * requests return indexed result slots, so values are read back in
//    request order no matter which worker finished first;
//  * a memo cache keyed on the full simulation tuple (algorithm, problem,
//    machine, setting) guarantees that points shared between figures or
//    metrics (e.g. the Tdata figures' Tradeoff-IDEAL overlay, or a bench
//    reading both MS and MD of one run) are simulated exactly once;
//  * per-point wall time is captured so the JSON bench output can record
//    the measured speedup versus a serial replay.
//
// The simulator itself is pure (no globals; each run owns its Machine), so
// `--jobs N` and `--jobs 1` produce bit-identical tables — a property the
// sweep-parity test layer (tests/test_sweep_runner.cpp and the CI
// sweep-parity job) locks in.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/machine_config.hpp"
#include "sim/problem.hpp"

namespace mcmm {

class ExecutionTracer;

/// The paper's per-run scalar metrics.
enum class Metric { kMs, kMd, kTdata, kTdataWithWritebacks };

const char* to_string(Metric m);

/// Extract `m` from a finished run.  Tdata variants use the bandwidths of
/// the run's base machine (RunResult::tdata is already computed that way).
double metric_of(const RunResult& res, Metric m);

/// One simulation of the sweep: the full tuple that determines a
/// RunResult.  Two points with equal keys are guaranteed to produce the
/// same result, which is what makes the memo cache sound.
struct SweepPoint {
  std::string algorithm;
  Problem problem;
  MachineConfig cfg;
  Setting setting = Setting::kLru50;

  static SweepPoint square(std::string algorithm, std::int64_t order,
                           const MachineConfig& cfg, Setting setting) {
    return {std::move(algorithm), Problem::square(order), cfg, setting};
  }

  /// Canonical encoding of the tuple (memo key; doubles printed with
  /// round-trip precision so distinct bandwidths never collide).
  std::string key() const;
};

class SweepRunner {
public:
  /// `jobs` >= 1 worker threads for run(); throws mcmm::Error otherwise.
  explicit SweepRunner(int jobs);

  /// Schedule `metric` of `point`.  Returns a request id — a stable slot
  /// index whose value can be read after run().  Duplicate (point, metric)
  /// requests return the same id; duplicate points across metrics share
  /// one simulation.  Requests made after a run() are evaluated by the
  /// next run() (the memo persists across runs).
  std::size_t request(const SweepPoint& point, Metric metric);

  /// Simulate every scheduled point that has not run yet.  Points are
  /// claimed dynamically by the workers but results land in indexed slots,
  /// so values are deterministic.  The first worker exception (e.g. an
  /// unknown algorithm name) is rethrown.
  void run();

  /// Metric value of a finished request.
  double value(std::size_t request_id) const;

  /// Pin the worker pool of subsequent run() calls to these logical CPUs
  /// (worker i -> cpus[i % cpus.size()]; see ThreadPool::pin_workers).
  /// Empty (the default) leaves scheduling to the OS.  Pinning affects
  /// wall times only — results are bit-identical either way.
  void set_pin_cpus(std::vector<int> cpus) { pin_cpus_ = std::move(cpus); }

  /// Attach an ExecutionTracer (nullptr detaches): each run() becomes a
  /// "sweep" region with one task span per simulation.  The tracer must
  /// have at least jobs() rings.  Not owned; must outlive run() calls.
  void set_tracer(ExecutionTracer* tracer) { tracer_ = tracer; }
  ExecutionTracer* tracer() const { return tracer_; }

  int jobs() const { return jobs_; }

  /// Accounting: every request() call, the subset that hit the memo, and
  /// the distinct simulations actually executed.
  std::size_t num_requests() const { return num_requests_; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t num_simulations() const { return points_.size(); }

  /// Per-simulation introspection (for the JSON bench report).
  const SweepPoint& simulation(std::size_t sim) const;
  const RunResult& result(std::size_t sim) const;
  double wall_ms(std::size_t sim) const;

  /// Wall-clock spent inside run() calls, and the serial-replay estimate
  /// (the sum of per-simulation wall times).
  double total_wall_ms() const { return total_wall_ms_; }
  double serial_wall_ms() const;

private:
  struct Request {
    std::size_t sim = 0;
    Metric metric = Metric::kTdata;
  };
  // Indexed-slot discipline instead of a mutex: during run() each pending
  // Simulation is written by exactly one worker (run_batch hands out
  // distinct `sim` indices), the vector itself is never resized while
  // workers are live, and run_batch's completion barrier orders every
  // slot write before the caller reads any of them.  There is therefore
  // no guarded state to annotate here; the handoff itself is what the
  // model checker exercises (scenario "pool/run-batch").
  struct Simulation {
    SweepPoint point;
    RunResult result;
    double wall_ms = 0;
    bool done = false;
  };

  int jobs_;
  std::vector<int> pin_cpus_;
  ExecutionTracer* tracer_ = nullptr;
  std::vector<Request> requests_;
  std::vector<Simulation> points_;
  std::unordered_map<std::string, std::size_t> memo_;      // key -> sim
  std::unordered_map<std::string, std::size_t> request_ids_;  // key+metric
  std::size_t num_requests_ = 0;
  std::size_t cache_hits_ = 0;
  double total_wall_ms_ = 0;
};

}  // namespace mcmm
