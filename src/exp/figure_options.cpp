#include "exp/figure_options.hpp"

#include <cstdio>
#include <thread>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace mcmm {

int default_sweep_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

bool parse_figure_options(int argc, const char* const* argv,
                          const std::string& blurb, std::int64_t default_max,
                          std::int64_t paper_max, std::int64_t default_step,
                          FigureOptions* out) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  cli.add_flag("full", "use the paper's full sweep range (slow)");
  cli.add_option("max-order", "largest matrix order in blocks (0 = preset)",
                 "0");
  cli.add_option("min-order", "smallest matrix order in blocks (0 = step)",
                 "0");
  cli.add_option("step", "sweep step in blocks (0 = preset)", "0");
  cli.add_option("jobs", "sweep worker threads (0 = hardware concurrency)",
                 "0");
  cli.add_option("json", "write the machine-readable bench report here", "");
  if (!cli.parse(argc, argv)) {
    (void)blurb;
    return false;
  }
  out->csv = cli.flag("csv");
  out->max_order = cli.integer("max-order");
  if (out->max_order == 0) {
    out->max_order = cli.flag("full") ? paper_max : default_max;
  }
  out->step = cli.integer("step");
  MCMM_REQUIRE(!(cli.is_set("step") && out->step == 0),
               "--step must be nonzero (omit it for the preset)");
  if (out->step == 0) out->step = default_step;
  out->min_order = cli.integer("min-order");
  if (out->min_order == 0) out->min_order = out->step;

  // An inverted or degenerate range used to slip through and only fail —
  // cryptically, or not at all — deep inside the sweep; reject it here.
  MCMM_REQUIRE(out->step >= 1, "--step must be >= 1");
  MCMM_REQUIRE(out->min_order >= 1, "--min-order must be >= 1");
  MCMM_REQUIRE(out->max_order >= 1, "--max-order must be >= 1");
  MCMM_REQUIRE(out->min_order <= out->max_order,
               "--min-order (" + std::to_string(out->min_order) +
                   ") must be <= --max-order (" +
                   std::to_string(out->max_order) + "): empty sweep");

  const std::int64_t jobs = cli.integer("jobs");
  MCMM_REQUIRE(!(cli.is_set("jobs") && jobs < 1),
               "--jobs must be >= 1 (omit it for hardware concurrency)");
  out->jobs = jobs >= 1 ? static_cast<int>(jobs) : default_sweep_jobs();

  out->json_path = cli.str("json");
  // Fail fast, before a long sweep, if the report cannot be written.
  require_writable_report_path(out->json_path);
  return true;
}

void require_writable_report_path(const std::string& path) {
  if (path.empty()) return;
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  MCMM_REQUIRE(probe != nullptr,
               "cannot open --json path for writing: " + path);
  std::fclose(probe);
}

}  // namespace mcmm
