// One-shot experiment execution, encoding the simulation settings of
// Section 4 of the paper:
//
//  * IDEAL     — omniscient replacement, full cache sizes declared.
//  * LRU-50    — LRU replacement; the algorithm declares only *half* of
//                each cache, leaving the rest to act as an automatic
//                prefetch buffer.
//  * LRU(C)    — LRU replacement with the full sizes declared (the
//                pessimistic curve of Figures 4-6).
//  * LRU(2C)   — the algorithm declares the full sizes but the physical
//                caches are twice as large (the Frigo et al. 2x-competitive
//                regime, the optimistic curve of Figures 4-6).
//
// Outer Product has no IDEAL-mode management (the paper notes it is
// insensitive to the policy), so under the IDEAL setting it is executed on
// an LRU machine of the same geometry.
#pragma once

#include <string>

#include "sim/cache_stats.hpp"
#include "sim/machine_config.hpp"
#include "sim/problem.hpp"
#include "verify/invariant_auditor.hpp"

namespace mcmm {

class Trace;

enum class Setting { kIdeal, kLru50, kLruFull, kLruDouble };

const char* to_string(Setting s);

struct RunResult {
  MachineStats stats{0};
  MachineConfig physical;   ///< the machine the run executed on
  MachineConfig declared;   ///< the capacities the algorithm planned with
  std::int64_t ms = 0;
  std::int64_t md = 0;
  double tdata = 0;         ///< computed with the *base* config's bandwidths
};

/// Run `algorithm` (a registry name) on `prob` under `setting`, derived
/// from the base machine `cfg`.  Checks that exactly m*n*z block FMAs were
/// performed and that the caches drained cleanly.
RunResult run_experiment(const std::string& algorithm, const Problem& prob,
                         const MachineConfig& cfg, Setting setting);

/// Same run with the invariant auditor attached (capacity, inclusion,
/// write-race and lower-bound checks — see src/verify).  The report is
/// written to `audit`.  When `trace` is non-null, the run's access stream
/// and parallel-step structure are also recorded into it, so the exact
/// schedule can be re-audited later with `mcmm_audit --trace`.
RunResult run_audited_experiment(const std::string& algorithm,
                                 const Problem& prob, const MachineConfig& cfg,
                                 Setting setting, AuditReport* audit,
                                 Trace* trace = nullptr);

}  // namespace mcmm
