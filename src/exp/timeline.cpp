#include "exp/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcmm {

const char* to_string(TimeEnvelope::Bottleneck b) {
  switch (b) {
    case TimeEnvelope::Bottleneck::kCompute: return "compute";
    case TimeEnvelope::Bottleneck::kSharedChannel: return "shared-channel";
    case TimeEnvelope::Bottleneck::kDistributedChannel:
      return "distributed-channel";
  }
  return "?";
}

namespace {

std::int64_t busiest(const std::vector<std::int64_t>& v) {
  std::int64_t out = 0;
  for (const std::int64_t x : v) out = std::max(out, x);
  return out;
}

}  // namespace

TimeEnvelope time_envelope(const MachineStats& stats,
                           const MachineConfig& cfg, double compute_rate) {
  MCMM_REQUIRE(compute_rate > 0, "time_envelope: compute rate must be > 0");
  TimeEnvelope out;
  out.compute_time =
      static_cast<double>(busiest(stats.fmas)) / compute_rate;
  out.shared_time = static_cast<double>(stats.ms()) / cfg.sigma_s;
  out.dist_time =
      static_cast<double>(busiest(stats.dist_misses)) / cfg.sigma_d;
  out.serial = out.compute_time + out.shared_time + out.dist_time;
  out.overlap = std::max({out.compute_time, out.shared_time, out.dist_time});
  if (out.overlap == out.compute_time) {
    out.bottleneck = TimeEnvelope::Bottleneck::kCompute;
  } else if (out.overlap == out.shared_time) {
    out.bottleneck = TimeEnvelope::Bottleneck::kSharedChannel;
  } else {
    out.bottleneck = TimeEnvelope::Bottleneck::kDistributedChannel;
  }
  return out;
}

double balance_rate(const MachineStats& stats, const MachineConfig& cfg) {
  // Compute time equals the slower channel time at:
  //   busiest_fmas / rate == max(MS/sigma_S, busiest_loads/sigma_D).
  const double channel =
      std::max(static_cast<double>(stats.ms()) / cfg.sigma_s,
               static_cast<double>(busiest(stats.dist_misses)) / cfg.sigma_d);
  MCMM_REQUIRE(channel > 0, "balance_rate: run had no data traffic");
  return static_cast<double>(busiest(stats.fmas)) / channel;
}

}  // namespace mcmm
