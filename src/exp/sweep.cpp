#include "exp/sweep.hpp"

#include "analysis/bounds.hpp"
#include "util/error.hpp"

namespace mcmm {

std::vector<std::int64_t> order_sweep(std::int64_t lo, std::int64_t hi,
                                      std::int64_t step) {
  MCMM_REQUIRE(lo >= 1 && step >= 1 && hi >= lo, "order_sweep: bad range");
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

std::vector<RatioPoint> bandwidth_ratio_sweep(
    const std::string& algorithm, const Problem& prob,
    const MachineConfig& cfg, Setting setting,
    const std::vector<double>& ratios) {
  std::vector<RatioPoint> out;
  out.reserve(ratios.size());
  if (algorithm == "tradeoff") {
    // alpha and beta depend on sigma_S/sigma_D: re-plan and re-run per r.
    for (double r : ratios) {
      const MachineConfig rcfg = cfg.with_bandwidth_ratio(r);
      const RunResult res = run_experiment(algorithm, prob, rcfg, setting);
      out.push_back({r, res.tdata});
    }
    return out;
  }
  // Bandwidth-oblivious schedules: one simulation, rescale Tdata per r.
  const RunResult res = run_experiment(algorithm, prob, cfg, setting);
  for (double r : ratios) {
    const MachineConfig rcfg = cfg.with_bandwidth_ratio(r);
    out.push_back({r, res.stats.tdata(rcfg.sigma_s, rcfg.sigma_d)});
  }
  return out;
}

std::vector<RatioPoint> bandwidth_ratio_lower_bound(
    const Problem& prob, const MachineConfig& cfg,
    const std::vector<double>& ratios) {
  std::vector<RatioPoint> out;
  out.reserve(ratios.size());
  for (double r : ratios) {
    const MachineConfig rcfg = cfg.with_bandwidth_ratio(r);
    out.push_back({r, tdata_lower_bound(prob, rcfg)});
  }
  return out;
}

}  // namespace mcmm
