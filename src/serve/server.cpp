#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gemm/parallel_gemm.hpp"
#include "lu/parallel_lu.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/math.hpp"

namespace mcmm::serve {

namespace {

/// Thrown by FaultInjection::kThrowUnknown: deliberately NOT derived from
/// std::exception, so the test exercises the dispatcher's catch (...) arm.
struct InjectedUnknownFault {};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected-queue-full";
    case SubmitStatus::kRejectedShutdown:
      return "rejected-shutdown";
    case SubmitStatus::kRejectedInvalid:
      return "rejected-invalid";
    case SubmitStatus::kRejectedTenantQuota:
      return "rejected-tenant-quota";
  }
  return "unknown";
}

const GemmResponse& Ticket::wait() {
  sync::unique_lock lock(mutex_);
  while (!done_) cv_.wait(lock);
  return response_;
}

bool Ticket::done() const {
  sync::lock_guard lock(mutex_);
  return done_;
}

void Ticket::complete(GemmResponse&& response) {
  {
    sync::lock_guard lock(mutex_);
    MCMM_ASSERT(!done_, "Ticket::complete called twice");
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

const BatchGemmResponse& BatchTicket::wait() {
  sync::unique_lock lock(mutex_);
  while (!done_) cv_.wait(lock);
  return response_;
}

bool BatchTicket::done() const {
  sync::lock_guard lock(mutex_);
  return done_;
}

void BatchTicket::complete(BatchGemmResponse&& response) {
  {
    sync::lock_guard lock(mutex_);
    MCMM_ASSERT(!done_, "BatchTicket::complete called twice");
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

const LuResponse& LuTicket::wait() {
  sync::unique_lock lock(mutex_);
  while (!done_) cv_.wait(lock);
  return response_;
}

bool LuTicket::done() const {
  sync::lock_guard lock(mutex_);
  return done_;
}

void LuTicket::complete(LuResponse&& response) {
  {
    sync::lock_guard lock(mutex_);
    MCMM_ASSERT(!done_, "LuTicket::complete called twice");
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

GemmServer::GemmServer(const Config& config)
    : config_(config),
      pool_(config.workers),
      ctx_(config.kernel == KernelPath::kAuto && config.kernel_tuning.tuned
               ? KernelContext(config.workers, config.kernel_tuning)
               : KernelContext(config.workers, config.kernel)),
      tracer_(config.workers),
      ring_(config.queue_capacity) {
  MCMM_REQUIRE(config.max_tenants >= 1,
               "GemmServer: max_tenants must be >= 1");
  MCMM_REQUIRE(config.request_log_capacity >= 1,
               "GemmServer: request_log_capacity must be >= 1");
  const ServeModel base{config.workers, config.q, config.shared_cache_bytes,
                        config.private_cache_bytes, config.sigma_s,
                        config.sigma_d};
  partitions_.reserve(static_cast<std::size_t>(config.max_tenants));
  for (int k = 1; k <= config.max_tenants; ++k) {
    partitions_.push_back(partition_for_tenants(base, k));
  }
  tenant_pending_.resize(static_cast<std::size_t>(config.max_tenants), 0);
  tenant_counters_.resize(static_cast<std::size_t>(config.max_tenants));
  pool_.set_tracer(&tracer_);
  ctx_.set_tracer(&tracer_);
  if (!config.pin_cpus.empty()) pool_.pin_workers(config.pin_cpus);
  dispatcher_ = sync::thread([this] { dispatcher_loop(); });
}

GemmServer::~GemmServer() { shutdown(); }

const TenantModel& GemmServer::partition(int k) const {
  const int clamped =
      std::clamp(k, 1, static_cast<int>(partitions_.size()));
  return partitions_[static_cast<std::size_t>(clamped - 1)];
}

Submit GemmServer::submit(const GemmRequest& request) {
  Submit result;
  sync::lock_guard lock(mutex_);
  ++counters_.submitted;
  if (!accepting_) {
    ++counters_.rejected_shutdown;
    result.status = SubmitStatus::kRejectedShutdown;
    result.error = "server is shutting down";
    return result;
  }
  if (request.tenant < 0 || request.tenant >= max_tenants()) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "tenant id out of range";
    return result;
  }
  if (request.c == nullptr || request.a == nullptr || request.b == nullptr) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "null matrix operand";
    return result;
  }
  try {
    check_gemm_shapes(*request.c, *request.a, *request.b);
  } catch (const std::exception& e) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = e.what();
    return result;
  }
  if (config_.max_inflight_per_tenant > 0 &&
      tenant_pending_[static_cast<std::size_t>(request.tenant)] >=
          config_.max_inflight_per_tenant) {
    ++counters_.rejected_tenant_quota;
    result.status = SubmitStatus::kRejectedTenantQuota;
    result.error = "tenant at max in-flight quota";
    return result;
  }
  const std::uint64_t id = next_id_++;
  if (!ring_.try_push(id)) {
    ++counters_.rejected_queue_full;
    result.status = SubmitStatus::kRejectedQueueFull;
    result.error = "request ring full (backpressure)";
    return result;
  }
  auto ticket = std::make_shared<Ticket>();
  inflight_.emplace(id, Inflight{ticket, request, tracer_.now_ns()});
  ++tenant_pending_[static_cast<std::size_t>(request.tenant)];
  ++queued_;
  ++counters_.accepted;
  work_cv_.notify_one();
  result.status = SubmitStatus::kAccepted;
  result.ticket = std::move(ticket);
  return result;
}

GemmResponse GemmServer::run(const GemmRequest& request) {
  Submit submitted = submit(request);
  if (submitted.status == SubmitStatus::kAccepted) {
    return submitted.ticket->wait();
  }
  GemmResponse response;
  response.tenant = request.tenant;
  response.ok = false;
  response.error = std::string(to_string(submitted.status)) + ": " +
                   submitted.error;
  return response;
}

BatchSubmit GemmServer::submit_batch(const BatchGemmRequest& request) {
  BatchSubmit result;
  sync::lock_guard lock(mutex_);
  ++counters_.submitted;
  if (!accepting_) {
    ++counters_.rejected_shutdown;
    result.status = SubmitStatus::kRejectedShutdown;
    result.error = "server is shutting down";
    return result;
  }
  if (request.tenant < 0 || request.tenant >= max_tenants()) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "tenant id out of range";
    return result;
  }
  if (request.products.empty()) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "empty batch";
    return result;
  }
  for (const batch::BatchProduct& p : request.products) {
    if (p.c == nullptr || p.a == nullptr || p.b == nullptr) {
      ++counters_.rejected_invalid;
      result.status = SubmitStatus::kRejectedInvalid;
      result.error = "null matrix operand in batch";
      return result;
    }
    try {
      check_gemm_shapes(*p.c, *p.a, *p.b);
    } catch (const std::exception& e) {
      ++counters_.rejected_invalid;
      result.status = SubmitStatus::kRejectedInvalid;
      result.error = e.what();
      return result;
    }
  }
  if (request.policy.q < 1) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "batch policy q must be >= 1";
    return result;
  }
  // One batch = one admission unit against the tenant quota, the same
  // unit it occupies on the ring.
  if (config_.max_inflight_per_tenant > 0 &&
      tenant_pending_[static_cast<std::size_t>(request.tenant)] >=
          config_.max_inflight_per_tenant) {
    ++counters_.rejected_tenant_quota;
    result.status = SubmitStatus::kRejectedTenantQuota;
    result.error = "tenant at max in-flight quota";
    return result;
  }
  const std::uint64_t id = next_id_++;
  if (!ring_.try_push(id)) {
    ++counters_.rejected_queue_full;
    result.status = SubmitStatus::kRejectedQueueFull;
    result.error = "request ring full (backpressure)";
    return result;
  }
  auto ticket = std::make_shared<BatchTicket>();
  batch_inflight_.emplace(id,
                          BatchInflight{ticket, request, tracer_.now_ns()});
  ++tenant_pending_[static_cast<std::size_t>(request.tenant)];
  ++queued_;
  ++counters_.accepted;
  work_cv_.notify_one();
  result.status = SubmitStatus::kAccepted;
  result.ticket = std::move(ticket);
  return result;
}

BatchGemmResponse GemmServer::run_batch(const BatchGemmRequest& request) {
  BatchSubmit submitted = submit_batch(request);
  if (submitted.status == SubmitStatus::kAccepted) {
    return submitted.ticket->wait();
  }
  BatchGemmResponse response;
  response.tenant = request.tenant;
  response.products = static_cast<std::int64_t>(request.products.size());
  response.ok = false;
  response.error = std::string(to_string(submitted.status)) + ": " +
                   submitted.error;
  return response;
}

LuSubmit GemmServer::submit_lu(const LuRequest& request) {
  LuSubmit result;
  sync::lock_guard lock(mutex_);
  ++counters_.submitted;
  if (!accepting_) {
    ++counters_.rejected_shutdown;
    result.status = SubmitStatus::kRejectedShutdown;
    result.error = "server is shutting down";
    return result;
  }
  if (request.tenant < 0 || request.tenant >= max_tenants()) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "tenant id out of range";
    return result;
  }
  if (request.a == nullptr) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "null matrix operand";
    return result;
  }
  if (request.a->rows() != request.a->cols()) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "lu matrix must be square";
    return result;
  }
  if (request.q < 0) {
    ++counters_.rejected_invalid;
    result.status = SubmitStatus::kRejectedInvalid;
    result.error = "lu q override must be >= 0";
    return result;
  }
  // One factorization = one admission unit (ring slot + quota charge).
  if (config_.max_inflight_per_tenant > 0 &&
      tenant_pending_[static_cast<std::size_t>(request.tenant)] >=
          config_.max_inflight_per_tenant) {
    ++counters_.rejected_tenant_quota;
    result.status = SubmitStatus::kRejectedTenantQuota;
    result.error = "tenant at max in-flight quota";
    return result;
  }
  const std::uint64_t id = next_id_++;
  if (!ring_.try_push(id)) {
    ++counters_.rejected_queue_full;
    result.status = SubmitStatus::kRejectedQueueFull;
    result.error = "request ring full (backpressure)";
    return result;
  }
  auto ticket = std::make_shared<LuTicket>();
  lu_inflight_.emplace(id, LuInflight{ticket, request, tracer_.now_ns()});
  ++tenant_pending_[static_cast<std::size_t>(request.tenant)];
  ++queued_;
  ++counters_.accepted;
  work_cv_.notify_one();
  result.status = SubmitStatus::kAccepted;
  result.ticket = std::move(ticket);
  return result;
}

LuResponse GemmServer::run_lu(const LuRequest& request) {
  LuSubmit submitted = submit_lu(request);
  if (submitted.status == SubmitStatus::kAccepted) {
    return submitted.ticket->wait();
  }
  LuResponse response;
  response.tenant = request.tenant;
  response.n = request.a != nullptr ? request.a->rows() : 0;
  response.ok = false;
  response.error = std::string(to_string(submitted.status)) + ": " +
                   submitted.error;
  return response;
}

void GemmServer::pause_dispatch() {
  sync::lock_guard lock(mutex_);
  paused_ = true;
}

void GemmServer::resume_dispatch() {
  {
    sync::lock_guard lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void GemmServer::shutdown() {
  sync::unique_lock lock(mutex_);
  accepting_ = false;
  paused_ = false;
  work_cv_.notify_all();
  while (!(inflight_.empty() && batch_inflight_.empty() &&
           lu_inflight_.empty() && queued_ == 0)) {
    drain_cv_.wait(lock);
  }
  stop_ = true;
  work_cv_.notify_all();
  if (joined_) return;  // an earlier shutdown() already joined
  joined_ = true;
  lock.unlock();
  dispatcher_.join();
}

void GemmServer::dispatcher_loop() {
  for (;;) {
    {
      sync::unique_lock lock(mutex_);
      while (!stop_ && (paused_ || queued_ == 0)) work_cv_.wait(lock);
      if (stop_ && queued_ == 0) return;
      --queued_;
    }
    std::uint64_t id = 0;
    const bool popped = ring_.try_pop(id);
    // queued_ counts exactly the pushed-but-unclaimed ids and this is the
    // only consumer, so the pop cannot miss.
    MCMM_ASSERT(popped, "GemmServer: request ring empty with queued_ > 0");
    bool is_batch = false;
    bool is_lu = false;
    {
      sync::lock_guard lock(mutex_);
      is_batch = batch_inflight_.find(id) != batch_inflight_.end();
      is_lu = lu_inflight_.find(id) != lu_inflight_.end();
    }
    if (is_batch) {
      execute_batch(id);
    } else if (is_lu) {
      execute_lu(id);
    } else {
      execute(id);
    }
  }
}

void GemmServer::execute(std::uint64_t id) {
  std::shared_ptr<Ticket> ticket;
  GemmRequest request;
  std::int64_t submit_ns = 0;
  int active_tenants = 1;
  {
    sync::lock_guard lock(mutex_);
    auto it = inflight_.find(id);
    MCMM_ASSERT(it != inflight_.end(), "GemmServer: unknown request id");
    ticket = it->second.ticket;
    request = it->second.request;
    submit_ns = it->second.submit_ns;
    std::int64_t distinct = 0;
    for (std::int64_t pending : tenant_pending_) {
      if (pending > 0) ++distinct;
    }
    active_tenants =
        std::clamp(static_cast<int>(distinct), 1, max_tenants());
  }

  const TenantModel& model = partition(active_tenants);
  const std::int64_t q = model.tiling.q;
  const Problem prob{ceil_div(request.c->rows(), q),
                     ceil_div(request.c->cols(), q),
                     ceil_div(request.a->cols(), q)};
  ScheduleKind schedule = request.schedule;
  if (schedule == ScheduleKind::kAuto) schedule = choose_schedule(model, prob);

  GemmResponse response;
  response.id = id;
  response.tenant = request.tenant;
  response.schedule = schedule;
  response.active_tenants = model.tenants;
  response.tiling = model.tiling;

  const std::int64_t start_ns = tracer_.now_ns();
  response.queue_ms = static_cast<double>(start_ns - submit_ns) / 1e6;
  tracer_.reset();
  pool_.set_trace_label(to_string(schedule));

  // Exception ownership: ThreadPool rethrows the first worker throw here
  // and remains fully usable; both arms below convert it into an error
  // reply for THIS request only — a worker failure never tears down the
  // dispatcher or the pool.  The catch (...) arm matters: workers can
  // surface non-std::exception throws (worker_loop captures with
  // catch (...)), and letting one escape would kill the dispatcher thread.
  try {
    switch (request.fault) {
      case FaultInjection::kThrowError: {
        std::vector<std::function<void()>> tasks(
            static_cast<std::size_t>(pool_.workers()), [] {});
        tasks[0] = [] { throw Error("injected worker fault"); };
        pool_.run_batch(tasks);
        break;
      }
      case FaultInjection::kThrowUnknown: {
        std::vector<std::function<void()>> tasks(
            static_cast<std::size_t>(pool_.workers()), [] {});
        tasks[0] = [] { throw InjectedUnknownFault{}; };
        pool_.run_batch(tasks);
        break;
      }
      case FaultInjection::kNone:
        switch (schedule) {
          case ScheduleKind::kSharedOpt:
            parallel_gemm_shared_opt(*request.c, *request.a, *request.b,
                                     model.tiling, pool_, ctx_);
            break;
          case ScheduleKind::kDistributedOpt:
            parallel_gemm_distributed_opt(*request.c, *request.a, *request.b,
                                          model.tiling, pool_, ctx_);
            break;
          case ScheduleKind::kTradeoff:
            parallel_gemm_tradeoff(*request.c, *request.a, *request.b,
                                   model.tiling, pool_, ctx_);
            break;
          case ScheduleKind::kAuto:
            MCMM_ASSERT(false, "GemmServer: unresolved kAuto schedule");
            break;
        }
        response.ok = true;
        break;
    }
  } catch (const std::exception& e) {
    response.ok = false;
    response.error = e.what();
  } catch (...) {
    response.ok = false;
    response.error = "non-standard exception from worker";
  }

  response.exec_ms =
      static_cast<double>(tracer_.now_ns() - start_ns) / 1e6;

  // The request ran as exactly one traced region (each schedule is a
  // single run_on_all dispatch); distil it into the per-request summary.
  const TraceSummary summary = summarize_trace(tracer_);
  if (!summary.regions.empty()) {
    const RegionSummary& region = summary.regions.back();
    response.trace.wall_ms = region.wall_ms();
    for (const PhaseTotals& worker : region.workers) {
      response.trace.pack_a_ms += worker.ms(TracePhase::kPackA);
      response.trace.pack_b_ms += worker.ms(TracePhase::kPackB);
      response.trace.micro_kernel_ms += worker.ms(TracePhase::kMicroKernel);
      response.trace.barrier_ms += worker.ms(TracePhase::kBarrier);
      response.trace.trsm_ms += worker.ms(TracePhase::kTrsm);
      response.trace.factor_ms += worker.ms(TracePhase::kFactor);
      response.trace.other_ms += worker.other_ms();
      for (std::int64_t spans : worker.spans) response.trace.spans += spans;
    }
  }

  {
    sync::lock_guard lock(mutex_);
    inflight_.erase(id);
    --tenant_pending_[static_cast<std::size_t>(request.tenant)];
    Counters& tenant = tenant_counters_[static_cast<std::size_t>(request.tenant)];
    if (response.ok) {
      ++counters_.completed;
      ++tenant.completed;
    } else {
      ++counters_.failed;
      ++tenant.failed;
    }
    latency_ms_.push_back(response.queue_ms + response.exec_ms);
    request_log_.push_back(RequestRecord{
        id, request.tenant, response.ok, response.error, schedule,
        response.active_tenants, response.queue_ms, response.exec_ms,
        response.trace});
    while (request_log_.size() > config_.request_log_capacity) {
      request_log_.pop_front();
    }
    if (!accepting_ && inflight_.empty() && batch_inflight_.empty() &&
        lu_inflight_.empty() && queued_ == 0) {
      drain_cv_.notify_all();
    }
  }
  ticket->complete(std::move(response));
}

void GemmServer::execute_batch(std::uint64_t id) {
  std::shared_ptr<BatchTicket> ticket;
  const BatchGemmRequest* request = nullptr;
  std::int64_t submit_ns = 0;
  {
    sync::lock_guard lock(mutex_);
    auto it = batch_inflight_.find(id);
    MCMM_ASSERT(it != batch_inflight_.end(), "GemmServer: unknown batch id");
    ticket = it->second.ticket;
    // The entry stays in batch_inflight_ until completion, so the pointer
    // is stable while this (the only dispatcher) executes it.
    request = &it->second.request;
    submit_ns = it->second.submit_ns;
  }

  BatchGemmResponse response;
  response.id = id;
  response.tenant = request->tenant;
  response.products = static_cast<std::int64_t>(request->products.size());

  const std::int64_t start_ns = tracer_.now_ns();
  response.queue_ms = static_cast<double>(start_ns - submit_ns) / 1e6;
  tracer_.reset();

  // Same exception ownership as execute(): gemm_batch rethrows the first
  // worker throw at its dispatch site, and a failure fails this batch
  // only, never the dispatcher.
  try {
    const batch::BatchResult result =
        batch::gemm_batch(request->products, pool_, ctx_, request->policy);
    response.buckets = result.buckets;
    response.ok = true;
  } catch (const std::exception& e) {
    response.ok = false;
    response.error = e.what();
  } catch (...) {
    response.ok = false;
    response.error = "non-standard exception from worker";
  }

  response.exec_ms = static_cast<double>(tracer_.now_ns() - start_ns) / 1e6;
  response.products_per_sec =
      response.exec_ms > 0
          ? static_cast<double>(response.products) / (response.exec_ms / 1e3)
          : 0.0;

  // A batch runs MANY traced regions (a pack + exec region per bucket);
  // aggregate the phase mix across all of them, not just the last.
  const TraceSummary summary = summarize_trace(tracer_);
  const PhaseTotals totals = aggregate_region_totals(summary);
  for (const RegionSummary& region : summary.regions) {
    response.trace.wall_ms += region.wall_ms();
  }
  response.trace.pack_a_ms = totals.ms(TracePhase::kPackA);
  response.trace.pack_b_ms = totals.ms(TracePhase::kPackB);
  response.trace.micro_kernel_ms = totals.ms(TracePhase::kMicroKernel);
  response.trace.barrier_ms = totals.ms(TracePhase::kBarrier);
  response.trace.trsm_ms = totals.ms(TracePhase::kTrsm);
  response.trace.factor_ms = totals.ms(TracePhase::kFactor);
  response.trace.other_ms = totals.other_ms();
  for (std::int64_t spans : totals.spans) response.trace.spans += spans;

  {
    sync::lock_guard lock(mutex_);
    batch_inflight_.erase(id);
    --tenant_pending_[static_cast<std::size_t>(response.tenant)];
    Counters& tenant =
        tenant_counters_[static_cast<std::size_t>(response.tenant)];
    if (response.ok) {
      ++counters_.completed;
      ++tenant.completed;
    } else {
      ++counters_.failed;
      ++tenant.failed;
    }
    latency_ms_.push_back(response.queue_ms + response.exec_ms);
    batch_log_.push_back(BatchRecord{
        id, response.tenant, response.ok, response.error, response.products,
        response.queue_ms, response.exec_ms, response.products_per_sec,
        response.buckets, response.trace});
    while (batch_log_.size() > config_.request_log_capacity) {
      batch_log_.pop_front();
    }
    if (!accepting_ && inflight_.empty() && batch_inflight_.empty() &&
        lu_inflight_.empty() && queued_ == 0) {
      drain_cv_.notify_all();
    }
  }
  ticket->complete(std::move(response));
}

void GemmServer::execute_lu(std::uint64_t id) {
  std::shared_ptr<LuTicket> ticket;
  LuRequest request;
  std::int64_t submit_ns = 0;
  int active_tenants = 1;
  {
    sync::lock_guard lock(mutex_);
    auto it = lu_inflight_.find(id);
    MCMM_ASSERT(it != lu_inflight_.end(), "GemmServer: unknown lu id");
    ticket = it->second.ticket;
    request = it->second.request;
    submit_ns = it->second.submit_ns;
    std::int64_t distinct = 0;
    for (std::int64_t pending : tenant_pending_) {
      if (pending > 0) ++distinct;
    }
    active_tenants =
        std::clamp(static_cast<int>(distinct), 1, max_tenants());
  }

  const TenantModel& model = partition(active_tenants);

  LuResponse response;
  response.id = id;
  response.tenant = request.tenant;
  response.n = request.a->rows();
  // A zero q override inherits the partitioned tiling, so the block size
  // shrinks with the tenant's shared-cache share exactly like GEMM.
  response.q = request.q > 0 ? request.q : model.tiling.q;
  response.active_tenants = model.tenants;

  const std::int64_t start_ns = tracer_.now_ns();
  response.queue_ms = static_cast<double>(start_ns - submit_ns) / 1e6;
  tracer_.reset();

  // Same exception ownership as execute(): a zero pivot (or any worker
  // throw) surfaces at the pool's dispatch site inside parallel_lu_factor,
  // fails THIS request, and leaves the pool and dispatcher usable.
  try {
    parallel_lu_factor(*request.a, response.q, pool_, ctx_);
    response.ok = true;
  } catch (const std::exception& e) {
    response.ok = false;
    response.error = e.what();
  } catch (...) {
    response.ok = false;
    response.error = "non-standard exception from worker";
  }

  response.exec_ms = static_cast<double>(tracer_.now_ns() - start_ns) / 1e6;

  // A factorization runs MANY traced regions (factor/trsm/pack/trailing
  // per step); aggregate the phase mix across all of them like a batch.
  const TraceSummary summary = summarize_trace(tracer_);
  const PhaseTotals totals = aggregate_region_totals(summary);
  for (const RegionSummary& region : summary.regions) {
    response.trace.wall_ms += region.wall_ms();
  }
  response.trace.pack_a_ms = totals.ms(TracePhase::kPackA);
  response.trace.pack_b_ms = totals.ms(TracePhase::kPackB);
  response.trace.micro_kernel_ms = totals.ms(TracePhase::kMicroKernel);
  response.trace.barrier_ms = totals.ms(TracePhase::kBarrier);
  response.trace.trsm_ms = totals.ms(TracePhase::kTrsm);
  response.trace.factor_ms = totals.ms(TracePhase::kFactor);
  response.trace.other_ms = totals.other_ms();
  for (std::int64_t spans : totals.spans) response.trace.spans += spans;

  {
    sync::lock_guard lock(mutex_);
    lu_inflight_.erase(id);
    --tenant_pending_[static_cast<std::size_t>(request.tenant)];
    Counters& tenant =
        tenant_counters_[static_cast<std::size_t>(request.tenant)];
    if (response.ok) {
      ++counters_.completed;
      ++tenant.completed;
    } else {
      ++counters_.failed;
      ++tenant.failed;
    }
    latency_ms_.push_back(response.queue_ms + response.exec_ms);
    lu_log_.push_back(LuRecord{
        id, request.tenant, response.ok, response.error, response.n,
        response.q, response.active_tenants, response.queue_ms,
        response.exec_ms, response.trace});
    while (lu_log_.size() > config_.request_log_capacity) {
      lu_log_.pop_front();
    }
    if (!accepting_ && inflight_.empty() && batch_inflight_.empty() &&
        lu_inflight_.empty() && queued_ == 0) {
      drain_cv_.notify_all();
    }
  }
  ticket->complete(std::move(response));
}

GemmServer::Counters GemmServer::counters() const {
  sync::lock_guard lock(mutex_);
  return counters_;
}

std::string GemmServer::stats_json() const {
  Counters counters;
  std::vector<double> latencies;
  std::vector<Counters> tenants;
  std::deque<RequestRecord> requests;
  std::deque<BatchRecord> batches;
  std::deque<LuRecord> factorizations;
  {
    sync::lock_guard lock(mutex_);
    counters = counters_;
    latencies = latency_ms_;
    tenants = tenant_counters_;
    requests = request_log_;
    batches = batch_log_;
    factorizations = lu_log_;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double v : latencies) sum += v;

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "mcmm-serve-v1");
  w.kv("workers", workers());
  w.kv("pinned_workers", pinned_workers());
  w.kv("queue_capacity", static_cast<std::int64_t>(queue_capacity()));
  w.kv("max_tenants", max_tenants());
  w.kv("max_inflight_per_tenant", config_.max_inflight_per_tenant);
  w.kv("kernel", dispatch_name());
  w.key("model").begin_object();
  w.kv("q", config_.q);
  w.kv("shared_cache_bytes", config_.shared_cache_bytes);
  w.kv("private_cache_bytes", config_.private_cache_bytes);
  w.kv("sigma_s", config_.sigma_s);
  w.kv("sigma_d", config_.sigma_d);
  w.end_object();
  w.key("partitions").begin_array();
  for (const TenantModel& m : partitions_) {
    w.begin_object();
    w.kv("tenants", m.tenants);
    w.kv("cs_share_bytes", m.cs_share_bytes);
    w.kv("cs_blocks", m.config.cs);
    w.kv("cd_blocks", m.config.cd);
    w.kv("clamped", m.clamped);
    w.key("tiling").begin_object();
    w.kv("q", m.tiling.q);
    w.kv("lambda", m.tiling.lambda);
    w.kv("mu", m.tiling.mu);
    w.kv("alpha", m.tiling.alpha);
    w.kv("beta", m.tiling.beta);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  w.kv("submitted", counters.submitted);
  w.kv("accepted", counters.accepted);
  w.kv("rejected_queue_full", counters.rejected_queue_full);
  w.kv("rejected_shutdown", counters.rejected_shutdown);
  w.kv("rejected_invalid", counters.rejected_invalid);
  w.kv("rejected_tenant_quota", counters.rejected_tenant_quota);
  w.kv("completed", counters.completed);
  w.kv("failed", counters.failed);
  w.end_object();
  w.key("latency_ms").begin_object();
  w.kv("count", static_cast<std::int64_t>(latencies.size()));
  w.kv("mean", latencies.empty() ? 0.0
                                 : sum / static_cast<double>(latencies.size()));
  w.kv("min", latencies.empty() ? 0.0 : latencies.front());
  w.kv("max", latencies.empty() ? 0.0 : latencies.back());
  w.kv("p50", percentile(latencies, 0.50));
  w.kv("p95", percentile(latencies, 0.95));
  w.kv("p99", percentile(latencies, 0.99));
  w.end_object();
  w.key("tenants").begin_array();
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    w.begin_object();
    w.kv("tenant", static_cast<std::int64_t>(t));
    w.kv("completed", tenants[t].completed);
    w.kv("failed", tenants[t].failed);
    w.end_object();
  }
  w.end_array();
  w.key("requests").begin_array();
  for (const RequestRecord& r : requests) {
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(r.id));
    w.kv("tenant", r.tenant);
    w.kv("ok", r.ok);
    if (!r.ok) w.kv("error", r.error);
    w.kv("schedule", to_string(r.schedule));
    w.kv("active_tenants", r.active_tenants);
    w.kv("queue_ms", r.queue_ms);
    w.kv("exec_ms", r.exec_ms);
    w.key("trace").begin_object();
    w.kv("wall_ms", r.trace.wall_ms);
    w.kv("pack_a_ms", r.trace.pack_a_ms);
    w.kv("pack_b_ms", r.trace.pack_b_ms);
    w.kv("micro_kernel_ms", r.trace.micro_kernel_ms);
    w.kv("barrier_ms", r.trace.barrier_ms);
    w.kv("trsm_ms", r.trace.trsm_ms);
    w.kv("factor_ms", r.trace.factor_ms);
    w.kv("other_ms", r.trace.other_ms);
    w.kv("spans", r.trace.spans);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // Batch admissions are logged separately from single requests: the
  // "requests" records promise a resolved schedule per entry, which a
  // bucketed batch does not have (it has per-bucket strategies instead).
  w.key("batches").begin_array();
  for (const BatchRecord& r : batches) {
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(r.id));
    w.kv("tenant", r.tenant);
    w.kv("ok", r.ok);
    if (!r.ok) w.kv("error", r.error);
    w.kv("products", r.products);
    w.kv("queue_ms", r.queue_ms);
    w.kv("exec_ms", r.exec_ms);
    w.kv("products_per_sec", r.products_per_sec);
    w.key("buckets").begin_array();
    for (const batch::BucketStats& bucket : r.buckets) {
      w.begin_object();
      w.kv("m", bucket.shape.m);
      w.kv("n", bucket.shape.n);
      w.kv("k", bucket.shape.k);
      w.kv("strategy", batch::to_string(bucket.strategy));
      w.kv("shared_b", bucket.shared_b);
      w.kv("products", bucket.products);
      w.kv("wall_ms", bucket.wall_ms);
      w.end_object();
    }
    w.end_array();
    w.key("trace").begin_object();
    w.kv("wall_ms", r.trace.wall_ms);
    w.kv("pack_a_ms", r.trace.pack_a_ms);
    w.kv("pack_b_ms", r.trace.pack_b_ms);
    w.kv("micro_kernel_ms", r.trace.micro_kernel_ms);
    w.kv("barrier_ms", r.trace.barrier_ms);
    w.kv("trsm_ms", r.trace.trsm_ms);
    w.kv("factor_ms", r.trace.factor_ms);
    w.kv("other_ms", r.trace.other_ms);
    w.kv("spans", r.trace.spans);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // LU admissions: like batches, these have no resolved GEMM schedule;
  // the trace summary carries the LU-only trsm/factor phases.
  w.key("lu").begin_array();
  for (const LuRecord& r : factorizations) {
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(r.id));
    w.kv("tenant", r.tenant);
    w.kv("ok", r.ok);
    if (!r.ok) w.kv("error", r.error);
    w.kv("n", r.n);
    w.kv("q", r.q);
    w.kv("active_tenants", r.active_tenants);
    w.kv("queue_ms", r.queue_ms);
    w.kv("exec_ms", r.exec_ms);
    w.key("trace").begin_object();
    w.kv("wall_ms", r.trace.wall_ms);
    w.kv("pack_a_ms", r.trace.pack_a_ms);
    w.kv("pack_b_ms", r.trace.pack_b_ms);
    w.kv("micro_kernel_ms", r.trace.micro_kernel_ms);
    w.kv("barrier_ms", r.trace.barrier_ms);
    w.kv("trsm_ms", r.trace.trsm_ms);
    w.kv("factor_ms", r.trace.factor_ms);
    w.kv("other_ms", r.trace.other_ms);
    w.kv("spans", r.trace.spans);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace mcmm::serve
