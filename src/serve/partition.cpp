#include "serve/partition.hpp"

#include <algorithm>

#include "analysis/params.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm::serve {

TenantModel partition_for_tenants(const ServeModel& base, int k) {
  MCMM_REQUIRE(k >= 1, "partition_for_tenants: tenant count must be >= 1");
  MCMM_REQUIRE(base.p >= 1, "partition_for_tenants: p must be >= 1");
  MCMM_REQUIRE(base.q >= 1, "partition_for_tenants: q must be >= 1");
  MCMM_REQUIRE(base.shared_cache_bytes > 0 && base.private_cache_bytes > 0,
               "partition_for_tenants: cache sizes must be positive");
  MCMM_REQUIRE(base.sigma_s > 0 && base.sigma_d > 0,
               "partition_for_tenants: bandwidths must be positive");

  TenantModel model;
  model.tenants = k;
  model.cs_share_bytes = base.shared_cache_bytes / k;

  // tiling_for_host is the single source of truth for deriving
  // lambda/mu/alpha/beta from byte capacities (it owns the minimum block
  // counts and the clamp warning); feed it the tenant's share.
  model.tiling = tiling_for_host(base.p, model.cs_share_bytes,
                                 base.private_cache_bytes, base.q);

  // Mirror the same capacity math in blocks for the MachineConfig the
  // predictions run on.  A cache must hold at least the 3-block working
  // set (one block of each operand) to make progress.
  const std::int64_t block_bytes = base.q * base.q * 8;
  std::int64_t cs = std::max<std::int64_t>(model.cs_share_bytes / block_bytes, 3);
  const std::int64_t cd =
      std::max<std::int64_t>(base.private_cache_bytes / block_bytes, 3);
  if (cs < static_cast<std::int64_t>(base.p) * cd) {
    model.clamped = true;
    cs = static_cast<std::int64_t>(base.p) * cd;
  }
  // Same staging floor tiling_for_host applies: the Tradeoff solver needs
  // grain^2 + 2*grain <= CS (grain = mu * lcm(r, c)) or predict_for would
  // throw on a share the tiling already accepted.
  const std::int64_t mu = max_reuse_parameter(cd);
  const Grid grid = balanced_grid(base.p);
  const std::int64_t grain = mu * lcm(grid.r, grid.c);
  if (cs < grain * grain + 2 * grain) {
    model.clamped = true;
    cs = grain * grain + 2 * grain;
  }
  model.config =
      MachineConfig{base.p, cs, cd, base.sigma_s, base.sigma_d};
  model.config.validate();
  return model;
}

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kAuto:
      return "auto";
    case ScheduleKind::kSharedOpt:
      return "shared-opt";
    case ScheduleKind::kDistributedOpt:
      return "distributed-opt";
    case ScheduleKind::kTradeoff:
      return "tradeoff";
  }
  return "unknown";
}

ScheduleKind parse_schedule_kind(const std::string& name) {
  if (name == "auto") return ScheduleKind::kAuto;
  if (name == "shared-opt") return ScheduleKind::kSharedOpt;
  if (name == "distributed-opt") return ScheduleKind::kDistributedOpt;
  if (name == "tradeoff") return ScheduleKind::kTradeoff;
  throw Error("unknown schedule kind: " + name +
              " (expected auto|shared-opt|distributed-opt|tradeoff)");
}

MissPrediction predict_for(const TenantModel& model, const Problem& prob,
                           ScheduleKind kind) {
  const MachineConfig& cfg = model.config;
  switch (kind) {
    case ScheduleKind::kSharedOpt:
      return predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
    case ScheduleKind::kDistributedOpt:
      return predict_distributed_opt(prob, cfg.p, distributed_opt_params(cfg));
    case ScheduleKind::kTradeoff:
      return predict_tradeoff(prob, cfg.p, tradeoff_params(cfg));
    case ScheduleKind::kAuto:
      break;
  }
  throw Error("predict_for: kAuto is not a concrete schedule");
}

ScheduleKind choose_schedule(const TenantModel& model, const Problem& prob) {
  constexpr ScheduleKind kCandidates[] = {
      ScheduleKind::kSharedOpt,
      ScheduleKind::kDistributedOpt,
      ScheduleKind::kTradeoff,
  };
  ScheduleKind best = ScheduleKind::kSharedOpt;
  double best_tdata = 0;
  bool first = true;
  for (ScheduleKind kind : kCandidates) {
    const MissPrediction pred = predict_for(model, prob, kind);
    const double tdata =
        pred.tdata(model.config.sigma_s, model.config.sigma_d);
    if (first || tdata < best_tdata) {
      first = false;
      best = kind;
      best_tdata = tdata;
    }
  }
  return best;
}

}  // namespace mcmm::serve
