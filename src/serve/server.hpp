// GEMM-as-a-service: a long-lived server owning the pinned ThreadPool and
// per-worker KernelContext, fed through the model-checked Vyukov MPMC ring
// (util/mpmc_ring.hpp) with bounded-queue admission control.
//
// Request lifecycle:
//
//   submit() —— validates, registers a Ticket, pushes the ticket id onto
//   the request ring.  A full ring is *backpressure*: the submit returns
//   kRejectedQueueFull immediately instead of buffering unboundedly, and
//   the client decides whether to retry.
//
//   dispatcher —— one internal thread pops ids off the ring in admission
//   order and executes each request on the shared ThreadPool.  Requests
//   are serialised on the compute resource (the pool IS the machine the
//   model describes: p cores under one shared cache); concurrency across
//   tenants shows up in the *model*, not in oversubscribed threads.
//
//   model-driven multi-tenancy —— at execution time the dispatcher counts
//   the distinct tenants with requests in flight (k), takes the
//   precomputed partition of the calibrated CS into k shares, and serves
//   the request with the tiling and lambda/alpha/beta re-derived from the
//   paper's formulas on that share (serve/partition.hpp).  kAuto schedule
//   requests pick the schedule with the least predicted data time on the
//   partitioned machine — admission and scheduling decisions are
//   predictions from src/sim, not heuristics.
//
//   completion —— each Ticket is a latch; wait() blocks until the
//   dispatcher publishes the GemmResponse, which carries the resolved
//   schedule/tiling, queue/execution latency, and a per-request trace
//   summary distilled from the ExecutionTracer region that ran it.
//
// Exception ownership (the run_batch/dispatcher contract): ThreadPool
// rethrows the first worker exception at the dispatch site and stays
// usable; the dispatcher catches *everything* there — std::exception and
// non-standard throws alike — and turns it into an error reply for that
// request only.  A worker throw fails one request, never the server.
//
// Thread-safety: all mutable server state is MCMM_GUARDED_BY(mutex_);
// the ring is accessed under the mutex too (submission is a control path;
// the ring still provides the bounded FIFO admission structure, and its
// lock-free MPMC face is exercised by the stress tests and model-check
// scenarios).  The whole protocol runs on mcmm::sync primitives, so
// -DMCMM_CHECKED_SYNC=ON model-checks the serve path (see
// src/check/scenarios.cpp, "serve/...").
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "batch/gemm_batch.hpp"
#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"
#include "obs/tracer.hpp"
#include "serve/partition.hpp"
#include "util/mpmc_ring.hpp"
#include "util/thread_annotations.hpp"

namespace mcmm::serve {

/// Test-only fault injection: makes a worker throw mid-request so the
/// exception-ownership contract is testable end-to-end.
enum class FaultInjection : std::uint8_t {
  kNone = 0,
  kThrowError,    ///< a worker throws mcmm::Error
  kThrowUnknown,  ///< a worker throws a non-std::exception type
};

/// One GEMM product: C += A * B.  The caller owns the matrices and must
/// keep them alive (and untouched) until the ticket completes.
struct GemmRequest {
  int tenant = 0;                ///< [0, Config::max_tenants)
  Matrix* c = nullptr;
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  ScheduleKind schedule = ScheduleKind::kAuto;
  FaultInjection fault = FaultInjection::kNone;
};

/// Per-request distillation of the ExecutionTracer region that ran it.
struct RequestTraceSummary {
  double wall_ms = 0;          ///< region wall time
  double pack_a_ms = 0;        ///< summed across workers
  double pack_b_ms = 0;
  double micro_kernel_ms = 0;
  double barrier_ms = 0;       ///< idle waiting for the slowest sibling
  double trsm_ms = 0;          ///< LU triangular solves (zero for GEMM)
  double factor_ms = 0;        ///< LU diagonal factorization (zero for GEMM)
  double other_ms = 0;         ///< uninstrumented region-job time
  std::int64_t spans = 0;      ///< spans recorded (all workers)
};

struct GemmResponse {
  std::uint64_t id = 0;
  int tenant = 0;
  bool ok = false;
  std::string error;                ///< set when !ok
  ScheduleKind schedule = ScheduleKind::kAuto;  ///< resolved, never kAuto on ok
  int active_tenants = 1;           ///< k the partition was derived for
  Tiling tiling;                    ///< the partitioned tiling actually used
  double queue_ms = 0;              ///< admission -> execution start
  double exec_ms = 0;               ///< execution start -> completion
  RequestTraceSummary trace;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,
  kRejectedQueueFull,    ///< bounded ring full — backpressure, retry later
  kRejectedShutdown,     ///< server no longer accepting
  kRejectedInvalid,      ///< bad tenant id or mismatched shapes
  kRejectedTenantQuota,  ///< tenant at max_inflight_per_tenant admissions
};

const char* to_string(SubmitStatus status);

/// Completion latch handed out by submit().  wait() blocks until the
/// dispatcher publishes the response; the reference stays valid for the
/// ticket's lifetime.
class Ticket {
 public:
  const GemmResponse& wait();
  bool done() const;

 private:
  friend class GemmServer;
  void complete(GemmResponse&& response);

  mutable sync::mutex mutex_;
  mutable sync::condition_variable cv_;
  bool done_ MCMM_GUARDED_BY(mutex_) = false;
  GemmResponse response_ MCMM_GUARDED_BY(mutex_);
};

struct Submit {
  SubmitStatus status = SubmitStatus::kRejectedInvalid;
  std::shared_ptr<Ticket> ticket;  ///< non-null iff kAccepted
  std::string error;               ///< human-readable rejection reason
};

/// A batched submission: many independent products admitted as ONE unit.
/// The batch occupies one ring slot, counts once against the tenant's
/// in-flight quota, and is dispatched as one admission-order turn on the
/// pool — the server-side face of gemm_batch (batch/gemm_batch.hpp).
/// The caller owns every matrix until the batch ticket completes.
struct BatchGemmRequest {
  int tenant = 0;
  std::vector<batch::BatchProduct> products;
  batch::BatchPolicy policy;
};

struct BatchGemmResponse {
  std::uint64_t id = 0;
  int tenant = 0;
  bool ok = false;
  std::string error;           ///< set when !ok
  std::int64_t products = 0;
  double queue_ms = 0;         ///< admission -> execution start
  double exec_ms = 0;          ///< execution start -> completion
  double products_per_sec = 0; ///< products / exec time
  std::vector<batch::BucketStats> buckets;
  /// Phase mix aggregated across ALL of the batch's traced regions
  /// (per-bucket pack + exec), unlike the single-region request trace.
  RequestTraceSummary trace;
};

/// Completion latch for a batch submission (see Ticket).
class BatchTicket {
 public:
  const BatchGemmResponse& wait();
  bool done() const;

 private:
  friend class GemmServer;
  void complete(BatchGemmResponse&& response);

  mutable sync::mutex mutex_;
  mutable sync::condition_variable cv_;
  bool done_ MCMM_GUARDED_BY(mutex_) = false;
  BatchGemmResponse response_ MCMM_GUARDED_BY(mutex_);
};

struct BatchSubmit {
  SubmitStatus status = SubmitStatus::kRejectedInvalid;
  std::shared_ptr<BatchTicket> ticket;  ///< non-null iff kAccepted
  std::string error;
};

/// One in-place LU factorization A = L * U (no pivoting): the `lu` verb.
/// One admission unit — one ring slot, one quota charge, one dispatch
/// turn — executed through the kernel-routed parallel_lu_factor on the
/// server's pool and per-worker contexts.  The caller owns `a` (square,
/// with safe pivots, e.g. diagonally_dominant_matrix) until the ticket
/// completes; on success it holds the packed factors.
struct LuRequest {
  int tenant = 0;
  Matrix* a = nullptr;
  /// Block size override; 0 resolves to the active partition's tiling q,
  /// so a served factorization inherits the model-driven cache share.
  std::int64_t q = 0;
};

struct LuResponse {
  std::uint64_t id = 0;
  int tenant = 0;
  bool ok = false;
  std::string error;           ///< set when !ok (e.g. zero pivot)
  std::int64_t n = 0;          ///< matrix order
  std::int64_t q = 0;          ///< resolved block size, never 0 on ok
  int active_tenants = 1;      ///< k the partition was derived for
  double queue_ms = 0;         ///< admission -> execution start
  double exec_ms = 0;          ///< execution start -> completion
  /// Phase mix aggregated across ALL of the factorization's traced
  /// regions (factor/trsm/pack/trailing, one set per step); trsm_ms and
  /// factor_ms carry the LU-only phases.
  RequestTraceSummary trace;
};

/// Completion latch for an LU submission (see Ticket).
class LuTicket {
 public:
  const LuResponse& wait();
  bool done() const;

 private:
  friend class GemmServer;
  void complete(LuResponse&& response);

  mutable sync::mutex mutex_;
  mutable sync::condition_variable cv_;
  bool done_ MCMM_GUARDED_BY(mutex_) = false;
  LuResponse response_ MCMM_GUARDED_BY(mutex_);
};

struct LuSubmit {
  SubmitStatus status = SubmitStatus::kRejectedInvalid;
  std::shared_ptr<LuTicket> ticket;  ///< non-null iff kAccepted
  std::string error;
};

class GemmServer {
 public:
  struct Config {
    int workers = 2;
    std::size_t queue_capacity = 64;  ///< request ring slots (power of two)
    int max_tenants = 4;              ///< partitions precomputed for 1..k
    std::int64_t q = 64;              ///< block side, coefficients
    std::int64_t shared_cache_bytes = 8ll << 20;
    std::int64_t private_cache_bytes = 256ll << 10;
    double sigma_s = 1.0;
    double sigma_d = 1.0;
    std::vector<int> pin_cpus;        ///< empty = unpinned
    std::size_t request_log_capacity = 256;  ///< stats_json "requests" depth
    KernelPath kernel = KernelPath::kAuto;

    /// Autotuned kernel configuration (a profile's kernel_tuning
    /// section).  When tuned and `kernel` is kAuto, the worker contexts
    /// are built from it — tuned shape, prefetch distances, streaming —
    /// so a served deployment inherits mcmm_tune's verdict; an explicit
    /// --kernel path always wins.
    KernelTuning kernel_tuning;

    /// Max admission units (single requests + whole batches) one tenant
    /// may have in flight at once; 0 = unlimited.  Exceeding it returns
    /// kRejectedTenantQuota — per-tenant backpressure, so one tenant
    /// cannot monopolise the bounded ring.
    std::int64_t max_inflight_per_tenant = 0;
  };

  /// Monotonically increasing counters since construction.
  struct Counters {
    std::int64_t submitted = 0;  ///< all submit()/submit_batch() calls
    std::int64_t accepted = 0;
    std::int64_t rejected_queue_full = 0;
    std::int64_t rejected_shutdown = 0;
    std::int64_t rejected_invalid = 0;
    std::int64_t rejected_tenant_quota = 0;
    std::int64_t completed = 0;  ///< finished ok
    std::int64_t failed = 0;     ///< finished with an error reply
  };

  /// Spawns the pool and the dispatcher thread; precomputes the CS
  /// partitions for every tenant count.  Throws mcmm::Error on an invalid
  /// config (workers < 1, non-power-of-two capacity, max_tenants < 1, ...).
  explicit GemmServer(const Config& config);
  ~GemmServer();

  GemmServer(const GemmServer&) = delete;
  GemmServer& operator=(const GemmServer&) = delete;

  int workers() const { return pool_.workers(); }
  int pinned_workers() const { return pool_.pinned_workers(); }
  std::size_t queue_capacity() const { return ring_.capacity(); }
  int max_tenants() const { return static_cast<int>(partitions_.size()); }
  const std::string& dispatch_name() const { return ctx_.dispatch_name(); }

  /// The precomputed tenant model for k concurrent tenants (clamped to
  /// [1, max_tenants]).  Const after construction.
  const TenantModel& partition(int k) const;

  /// Non-blocking admission.  On kAccepted the caller later waits on the
  /// ticket; any rejection is final for this call (backpressure, not
  /// queuing).  Thread-safe from any number of client threads.
  Submit submit(const GemmRequest& request);

  /// submit() + wait(), with rejections synthesised into error responses.
  GemmResponse run(const GemmRequest& request);

  /// Non-blocking batch admission: the whole batch is ONE admission unit
  /// (one ring slot, one quota charge, one dispatch turn).  Rejects with
  /// kRejectedInvalid on an empty batch, a bad tenant, or any product
  /// with null operands / mismatched shapes.
  BatchSubmit submit_batch(const BatchGemmRequest& request);

  /// submit_batch() + wait(), rejections synthesised into error responses.
  BatchGemmResponse run_batch(const BatchGemmRequest& request);

  /// Non-blocking LU admission: one admission unit like a batch.  Rejects
  /// with kRejectedInvalid on a bad tenant, a null or non-square matrix,
  /// or a negative q override.
  LuSubmit submit_lu(const LuRequest& request);

  /// submit_lu() + wait(), rejections synthesised into error responses.
  LuResponse run_lu(const LuRequest& request);

  /// Hold the dispatcher between requests (admission keeps running), so
  /// tests can fill the ring deterministically.  resume_dispatch() wakes it.
  void pause_dispatch();
  void resume_dispatch();

  /// Stop accepting, drain every in-flight request, join the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  Counters counters() const;

  /// The mcmm-serve-v1 stats document: model + partitions + counters +
  /// latency percentiles + per-tenant totals + the recent-request log with
  /// per-request trace summaries.  One line, stable key order.
  std::string stats_json() const;

 private:
  void dispatcher_loop();
  void execute(std::uint64_t id);
  void execute_batch(std::uint64_t id);
  void execute_lu(std::uint64_t id);

  /// One completed request as kept for the stats log.
  struct RequestRecord {
    std::uint64_t id = 0;
    int tenant = 0;
    bool ok = false;
    std::string error;
    ScheduleKind schedule = ScheduleKind::kAuto;
    int active_tenants = 1;
    double queue_ms = 0;
    double exec_ms = 0;
    RequestTraceSummary trace;
  };

  struct Inflight {
    std::shared_ptr<Ticket> ticket;
    GemmRequest request;
    std::int64_t submit_ns = 0;
  };

  struct BatchInflight {
    std::shared_ptr<BatchTicket> ticket;
    BatchGemmRequest request;
    std::int64_t submit_ns = 0;
  };

  struct LuInflight {
    std::shared_ptr<LuTicket> ticket;
    LuRequest request;
    std::int64_t submit_ns = 0;
  };

  /// One completed factorization as kept for the stats log ("lu" array).
  struct LuRecord {
    std::uint64_t id = 0;
    int tenant = 0;
    bool ok = false;
    std::string error;
    std::int64_t n = 0;
    std::int64_t q = 0;
    int active_tenants = 1;
    double queue_ms = 0;
    double exec_ms = 0;
    RequestTraceSummary trace;
  };

  /// One completed batch as kept for the stats log ("batches" array).
  struct BatchRecord {
    std::uint64_t id = 0;
    int tenant = 0;
    bool ok = false;
    std::string error;
    std::int64_t products = 0;
    double queue_ms = 0;
    double exec_ms = 0;
    double products_per_sec = 0;
    std::vector<batch::BucketStats> buckets;
    RequestTraceSummary trace;
  };

  const Config config_;
  std::vector<TenantModel> partitions_;  // index k-1; const after ctor

  ThreadPool pool_;
  KernelContext ctx_;
  ExecutionTracer tracer_;
  MpmcRing<std::uint64_t> ring_;  // accessed under mutex_ (see header note)

  mutable sync::mutex mutex_;
  sync::condition_variable work_cv_;   // dispatcher waits for queued work
  sync::condition_variable drain_cv_;  // shutdown waits for inflight == 0
  std::uint64_t next_id_ MCMM_GUARDED_BY(mutex_) = 1;
  std::unordered_map<std::uint64_t, Inflight> inflight_ MCMM_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, BatchInflight> batch_inflight_
      MCMM_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, LuInflight> lu_inflight_
      MCMM_GUARDED_BY(mutex_);
  std::vector<std::int64_t> tenant_pending_ MCMM_GUARDED_BY(mutex_);
  std::size_t queued_ MCMM_GUARDED_BY(mutex_) = 0;
  bool accepting_ MCMM_GUARDED_BY(mutex_) = true;
  bool paused_ MCMM_GUARDED_BY(mutex_) = false;
  bool stop_ MCMM_GUARDED_BY(mutex_) = false;
  bool joined_ MCMM_GUARDED_BY(mutex_) = false;
  Counters counters_ MCMM_GUARDED_BY(mutex_);
  std::vector<double> latency_ms_ MCMM_GUARDED_BY(mutex_);
  std::vector<Counters> tenant_counters_ MCMM_GUARDED_BY(mutex_);
  std::deque<RequestRecord> request_log_ MCMM_GUARDED_BY(mutex_);
  std::deque<BatchRecord> batch_log_ MCMM_GUARDED_BY(mutex_);
  std::deque<LuRecord> lu_log_ MCMM_GUARDED_BY(mutex_);

  sync::thread dispatcher_;  // started last, joined by shutdown()
};

}  // namespace mcmm::serve
