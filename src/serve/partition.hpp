// Model-driven multi-tenant cache partitioning for the serving daemon.
//
// The paper's machine model has one shared cache CS over p private caches
// CD.  When the server has k tenants with requests in flight, the tenants
// compete for the same physical CS — so instead of letting LRU arbitrate
// blindly, the server *declares* an even partition CS/k to each tenant and
// re-derives that tenant's algorithm parameters from the paper's formulas
// on the partitioned machine:
//
//   lambda(k): largest integer with 1 + lambda + lambda^2 <= CS/k   (Alg. 1)
//   mu:        largest integer with 1 + mu + mu^2 <= CD             (Alg. 2;
//              private caches are not shared across tenants, so mu is
//              independent of k)
//   alpha(k), beta(k): the Tradeoff solver on the partitioned config (Alg. 3)
//
// The inclusive-hierarchy clamp (CS >= p * CD) is re-applied *after*
// partitioning: a small share can fall below p*CD, in which case the model
// clamps the declared share up and flags it — the derived tiling then
// assumes more shared cache than the tenant's fair share, exactly the
// situation the `clamped` bit reports to operators.
//
// Schedule choice is a prediction, not a heuristic: choose_schedule()
// evaluates the closed-form MS/MD predictions (analysis/predictions.hpp)
// for each schedule under the tenant's partitioned machine and picks the
// minimum data time  Tdata = MS/sigma_S + MD/sigma_D.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/predictions.hpp"
#include "gemm/parallel_gemm.hpp"
#include "sim/machine_config.hpp"
#include "sim/problem.hpp"

namespace mcmm::serve {

/// The calibrated machine the server partitions: worker count, block side
/// and the physical cache sizes (from mcmm_calibrate or CLI overrides).
struct ServeModel {
  int p = 2;                                    ///< pool workers (= model cores)
  std::int64_t q = 64;                          ///< block side, coefficients
  std::int64_t shared_cache_bytes = 8ll << 20;  ///< physical CS
  std::int64_t private_cache_bytes = 256ll << 10;  ///< per-core CD (declared)
  double sigma_s = 1.0;  ///< memory -> shared bandwidth (blocks/unit)
  double sigma_d = 1.0;  ///< shared -> private bandwidth
};

/// One tenant's view of the machine when k tenants are active.
struct TenantModel {
  int tenants = 1;                   ///< k this partition was derived for
  std::int64_t cs_share_bytes = 0;   ///< declared share of the shared cache
  MachineConfig config;              ///< partitioned machine, in q x q blocks
  Tiling tiling;                     ///< re-derived lambda / mu / alpha / beta
  bool clamped = false;  ///< share fell below p*CD; CS clamped up (model debt)
};

/// Partition `base` evenly across `k` tenants and re-derive the paper's
/// parameters on the share.  Throws mcmm::Error on k < 1 or an invalid
/// base model.  Emits the tiling_for_host clamp warning when the share is
/// infeasible for an inclusive hierarchy.
TenantModel partition_for_tenants(const ServeModel& base, int k);

/// Which real-execution schedule serves a request.  kAuto defers to
/// choose_schedule on the tenant's partitioned model.
enum class ScheduleKind : std::uint8_t {
  kAuto = 0,
  kSharedOpt,
  kDistributedOpt,
  kTradeoff,
};

/// Stable names: "auto", "shared-opt", "distributed-opt", "tradeoff".
const char* to_string(ScheduleKind kind);

/// Parse a to_string name; throws mcmm::Error on anything else.
ScheduleKind parse_schedule_kind(const std::string& name);

/// Closed-form prediction for `kind` on `model`'s partitioned machine
/// (prob in q x q blocks).  kAuto is not a schedule; passing it throws.
MissPrediction predict_for(const TenantModel& model, const Problem& prob,
                           ScheduleKind kind);

/// The schedule with the minimum predicted Tdata on this tenant's
/// partitioned machine (ties resolve in enum order, SharedOpt first).
ScheduleKind choose_schedule(const TenantModel& model, const Problem& prob);

}  // namespace mcmm::serve
