#include "batch/bucketer.hpp"

#include <unordered_map>

#include "gemm/kernel.hpp"
#include "gemm/microkernel.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm::batch {

const char* to_string(BucketStrategy strategy) {
  switch (strategy) {
    case BucketStrategy::kDirect:
      return "direct";
    case BucketStrategy::kPacked:
      return "packed";
    case BucketStrategy::kPackedSharedB:
      return "packed-shared-b";
  }
  return "unknown";
}

std::int64_t direct_data_volume(std::int64_t m, std::int64_t n, std::int64_t k,
                                std::int64_t mr, std::int64_t nr) {
  return m * k * ceil_div(n, nr) + k * n * ceil_div(m, mr) + m * n;
}

std::int64_t packed_data_volume(std::int64_t m, std::int64_t n,
                                std::int64_t k) {
  return 3 * (m * k + k * n) + m * n;
}

bool prefer_direct(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::int64_t mr, std::int64_t nr) {
  return direct_data_volume(m, n, k, mr, nr) <= packed_data_volume(m, n, k);
}

namespace {

/// Bucket key: shape class + (for shared-B splitting) the B operand.
struct BucketKey {
  ShapeClass shape;
  const Matrix* b = nullptr;  ///< nullptr for the per-shape residual bucket

  bool operator==(const BucketKey& o) const {
    return shape == o.shape && b == o.b;
  }
};

struct BucketKeyHash {
  std::size_t operator()(const BucketKey& key) const {
    std::uint64_t h = static_cast<std::uint64_t>(key.shape.m);
    h = h * 0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(key.shape.n);
    h = h * 0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(key.shape.k);
    h = h * 0x9E3779B97F4A7C15ull ^
        reinterpret_cast<std::uintptr_t>(key.b);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

std::vector<Bucket> bucket_products(const std::vector<BatchProduct>& products,
                                    const BatchPolicy& policy) {
  MCMM_REQUIRE(policy.q >= 1, "bucket_products: policy.q must be >= 1");
  for (const BatchProduct& p : products) {
    MCMM_REQUIRE(p.c != nullptr && p.a != nullptr && p.b != nullptr,
                 "bucket_products: null matrix operand");
    check_gemm_shapes(*p.c, *p.a, *p.b);
  }

  // Pass 1: how often each B operand recurs within its shape class, so
  // pass 2 can decide per product whether its pack-B would amortise.
  std::unordered_map<BucketKey, std::int64_t, BucketKeyHash> b_uses;
  for (const BatchProduct& p : products) {
    const ShapeClass shape{p.c->rows(), p.c->cols(), p.a->cols()};
    ++b_uses[BucketKey{shape, p.b}];
  }

  std::vector<Bucket> buckets;
  std::unordered_map<BucketKey, std::size_t, BucketKeyHash> index;
  for (std::size_t i = 0; i < products.size(); ++i) {
    const BatchProduct& p = products[i];
    const ShapeClass shape{p.c->rows(), p.c->cols(), p.a->cols()};

    BucketStrategy strategy;
    if (policy.force) {
      strategy = policy.forced;
    } else if (prefer_direct(shape.m, shape.n, shape.k, policy.mr,
                             policy.nr)) {
      // No pack on the direct path, so there is nothing to amortise:
      // shared B never upgrades a direct bucket.
      strategy = BucketStrategy::kDirect;
    } else if (b_uses[BucketKey{shape, p.b}] >= policy.min_shared_b) {
      strategy = BucketStrategy::kPackedSharedB;
    } else {
      strategy = BucketStrategy::kPacked;
    }

    // Shared-B buckets are keyed on the operand so every bucket has ONE
    // panel set; everything else pools per shape class.
    const bool shared = strategy == BucketStrategy::kPackedSharedB;
    const BucketKey key{shape, shared ? p.b : nullptr};
    auto it = index.find(key);
    if (it == index.end()) {
      Bucket bucket;
      bucket.shape = shape;
      bucket.strategy = strategy;
      bucket.shared_b = shared ? p.b : nullptr;
      it = index.emplace(key, buckets.size()).first;
      buckets.push_back(std::move(bucket));
    }
    buckets[it->second].items.push_back(i);
  }
  return buckets;
}

}  // namespace mcmm::batch
