// gemm_batch — execute thousands of independent (possibly ragged) GEMM
// products on the pinned ThreadPool + per-worker KernelContext engine.
//
// The batch is bucketed by shape class (bucketer.hpp); each bucket runs
// as one parallel region in which workers claim whole products from a
// shared atomic cursor (dynamic load balancing: ragged shapes and
// heterogeneous costs never leave a worker idle while products remain).
// One product is computed by exactly ONE worker, with the same block
// sequence gemm_micro uses, so the result for every product is
// bit-identical to a serial gemm_micro loop — for every bucket strategy
// and every worker count:
//
//  * kPacked       — gemm_micro's (i0, k0, j0) block loop through
//                    KernelContext::block_op on the claiming worker.
//  * kPackedSharedB — the bucket's shared B is packed once (in parallel,
//                    traced as pack-B) into a SharedPackedB panel set
//                    with exactly pack_b_panel's layout, then consumed by
//                    every worker via block_op_packed_b.  Identical panel
//                    bytes => identical kernel results; the pack cost is
//                    paid once per batch instead of once per product.
//  * kDirect       — no packing at all.  The per-coefficient arithmetic
//                    of the micro-kernel is mirrored exactly: for each
//                    ascending k-block, an accumulator folded k-ascending
//                    (std::fma when the dispatched kernel fuses, mul+add
//                    when it does not) then added to C — the same value
//                    chain the packed path produces, without the panels.
//
// Per-worker pack memos are keyed on block offsets only, so the engine
// invalidates a worker's memo whenever it moves to a product with
// different operands (KernelContext::invalidate_worker); products that
// share operands keep the memo warm for free.
#pragma once

#include <cstdint>
#include <vector>

#include "batch/bucketer.hpp"
#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"

namespace mcmm::batch {

/// A bucket's shared B operand packed once for the whole batch: the
/// NR-strided panels of every (k0, j0) q-block, byte-identical to what
/// pack_b_panel would produce per worker, laid out back to back.
class SharedPackedB {
 public:
  /// Lay out (but do not fill) panels for a (k x n) B at block side q,
  /// packed at register-tile width `nr` (must be the NR of the kernel
  /// that will consume the panels — the strip layout depends on it).
  SharedPackedB(std::int64_t k, std::int64_t n, std::int64_t q,
                std::int64_t nr = kMicroN);

  std::int64_t blocks() const {
    return static_cast<std::int64_t>(offsets_.size());
  }

  /// Pack block `index` (row-major over the (k0, j0) grid) from `b`.
  void pack_block(const Matrix& b, std::int64_t index);

  /// The packed panel for the block containing (k0, j0); offsets must be
  /// multiples of q inside the layout.
  const double* panel(std::int64_t k0, std::int64_t j0) const;

  /// Block coordinates of `index` in the (k0, j0) grid.
  void block_coords(std::int64_t index, std::int64_t& k0,
                    std::int64_t& j0) const;

 private:
  std::int64_t k_ = 0, n_ = 0, q_ = 0, nr_ = kMicroN;
  std::int64_t jblocks_ = 0;
  std::vector<std::size_t> offsets_;  ///< per block, into buf_
  AlignedVector buf_;
};

/// Per-bucket execution record for reports.
struct BucketStats {
  ShapeClass shape;
  BucketStrategy strategy = BucketStrategy::kPacked;
  bool shared_b = false;
  std::int64_t products = 0;
  double wall_ms = 0;  ///< this bucket's parallel region(s), incl. pack
};

struct BatchResult {
  std::int64_t products = 0;
  double wall_ms = 0;
  std::vector<BucketStats> buckets;
};

/// Execute every product of `batch` on `pool` through `ctx`.  `ctx` must
/// have at least pool.workers() workers.  Results are bit-identical to
/// gemm_batch_serial on the same batch and policy.  Throws mcmm::Error on
/// invalid products (via bucket_products); worker exceptions propagate
/// from the pool's dispatch site.
BatchResult gemm_batch(const std::vector<BatchProduct>& batch,
                       ThreadPool& pool, KernelContext& ctx,
                       const BatchPolicy& policy = {});

/// The serial reference: the same buckets and strategies executed one
/// product at a time on worker 0 — a loop of gemm_micro for the packed
/// strategies (which are bit-identical to gemm_micro by construction)
/// and of the mirrored direct product for kDirect.  The bench's baseline
/// and the bit-identity oracle of the tests.
BatchResult gemm_batch_serial(const std::vector<BatchProduct>& batch,
                              KernelContext& ctx,
                              const BatchPolicy& policy = {});

/// One unpacked product mirroring the micro-kernel's per-coefficient
/// arithmetic (see the header comment); exposed for tests.  `kc` mirrors
/// KernelContext's tuned k-panel split (one accumulator add to C per kc
/// sub-panel of each q block); 0 = no split, matching an untuned context.
void direct_product(Matrix& c, const Matrix& a, const Matrix& b,
                    std::int64_t q, bool fused, std::int64_t kc = 0);

}  // namespace mcmm::batch
