// Shape-bucketed scheduling for batched small-shape GEMM (src/batch).
//
// A batch is thousands of independent, possibly ragged products.  The
// bucketer groups them by (m, n, k) class and picks one execution
// strategy per bucket:
//
//  * kDirect — whole-product-per-worker with packing skipped.  Below a
//    modelled crossover the pack traffic costs more than it saves, the
//    regime the paper's Tdata = MS/sigma_S + MD/sigma_D accounting makes
//    precise (see direct_data_volume / packed_data_volume below and
//    docs/batching.md for the derivation).
//  * kPacked — the per-worker packed micro-kernel path
//    (KernelContext::block_op), exactly gemm_micro's loop per product.
//  * kPackedSharedB — kPacked, but every product in the bucket shares
//    one B operand: B is packed ONCE into a shared read-only panel set
//    (SharedPackedB) and all workers consume it via block_op_packed_b.
//    The server-side analogue of the paper's operand-reuse parameter.
//
// Strategy choice is per bucket, deterministic, and independent of the
// worker count, so results can be compared bit-for-bit against a serial
// gemm_micro loop (see gemm_batch.hpp for how kDirect keeps that true).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gemm/matrix.hpp"
#include "gemm/microkernel.hpp"

namespace mcmm::batch {

/// One product of a batch: C += A * B.  The caller owns the matrices and
/// keeps them alive (and the A/B contents untouched) until gemm_batch
/// returns.  Distinct products must write distinct C matrices.
struct BatchProduct {
  Matrix* c = nullptr;
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
};

/// The (m, n, k) shape class a bucket collects.
struct ShapeClass {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;

  bool operator==(const ShapeClass& o) const {
    return m == o.m && n == o.n && k == o.k;
  }
};

enum class BucketStrategy : std::uint8_t {
  kDirect = 0,     ///< unpacked whole-product per worker (tiny shapes)
  kPacked,         ///< per-worker packed micro-kernel path
  kPackedSharedB,  ///< packed path consuming one shared packed B
};

/// Stable names: "direct", "packed", "packed-shared-b".
const char* to_string(BucketStrategy strategy);

/// Knobs for bucketing and strategy choice.
struct BatchPolicy {
  std::int64_t q = 64;  ///< block side for the packed path (>= 1)

  /// Minimum products sharing one B operand before the bucket is split
  /// out onto the shared-packed-B path (the pack must amortise over at
  /// least this many consumers).
  std::int64_t min_shared_b = 2;

  /// Force one strategy for every bucket (tests, ablations); kAuto-like
  /// behaviour when unset.
  bool force = false;
  BucketStrategy forced = BucketStrategy::kPacked;

  /// Register-tile extents of the kernel that will execute the batch
  /// (KernelContext::kernel().mr/nr).  The direct-vs-packed crossover
  /// depends on them (direct re-streams per tile strip), and the shared
  /// B panels must be packed at the consuming kernel's NR.  gemm_batch
  /// overwrites these from its context; the defaults match the
  /// scalar/AVX2 4x8 shape.
  std::int64_t mr = kMicroM;
  std::int64_t nr = kMicroN;
};

/// Data volume (coefficient reads + C writes) of one unpacked product:
/// without packing, every MR x NR register tile re-streams its A strip
/// and B strip, so A is read once per NR-wide column strip and B once
/// per MR-wide row strip:
///
///   Vdirect = m*k * ceil(n/NR) + k*n * ceil(m/MR) + m*n
std::int64_t direct_data_volume(std::int64_t m, std::int64_t n, std::int64_t k,
                                std::int64_t mr = kMicroM,
                                std::int64_t nr = kMicroN);

/// Data volume of the packed path: A and B are each read once, written
/// once into panels, and the panels re-streamed by the kernel (the
/// panel re-reads hit cache for the small shapes this model arbitrates,
/// but they are still transfers the paper's sigma_D level pays):
///
///   Vpacked = 3*(m*k + k*n) + m*n
std::int64_t packed_data_volume(std::int64_t m, std::int64_t n,
                                std::int64_t k);

/// The modelled crossover: pack only when it moves less data.  For square
/// shapes this flips around order ~16 (a 16x16x16 product runs direct,
/// 64x64x64 packs) — the batched small-shape regime the Tdata model
/// predicts packing cannot pay for.
bool prefer_direct(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::int64_t mr = kMicroM, std::int64_t nr = kMicroN);

/// One bucket: every product of one shape class (and, for
/// kPackedSharedB, one shared B operand), with its chosen strategy.
struct Bucket {
  ShapeClass shape;
  BucketStrategy strategy = BucketStrategy::kPacked;
  const Matrix* shared_b = nullptr;  ///< non-null iff kPackedSharedB
  std::vector<std::size_t> items;    ///< indices into the batch, in order
};

/// Group `products` into buckets and pick each bucket's strategy.
/// Deterministic: buckets appear in first-appearance order of their
/// (shape, shared-B) key and items keep batch order.  Products whose B
/// pointer recurs >= policy.min_shared_b times within a shape class form
/// a shared-B bucket (unless the shape prefers the direct path, where
/// there is no pack to amortise).  Throws mcmm::Error on null operands
/// or mismatched product shapes.
std::vector<Bucket> bucket_products(const std::vector<BatchProduct>& products,
                                    const BatchPolicy& policy);

}  // namespace mcmm::batch
