#include "batch/gemm_batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "gemm/microkernel.hpp"
#include "gemm/pack.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm::batch {

namespace {

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

/// Tracks which operands each worker's pack memo is valid for; the memo
/// keys are offsets only, so moving to a product with different matrices
/// must invalidate that worker (and only that worker).
struct MemoGuard {
  std::vector<const Matrix*> a, b;

  explicit MemoGuard(int workers)
      : a(static_cast<std::size_t>(workers), nullptr),
        b(static_cast<std::size_t>(workers), nullptr) {}

  void ensure(KernelContext& ctx, int worker, const Matrix* pa,
              const Matrix* pb) {
    const auto w = static_cast<std::size_t>(worker);
    if (a[w] != pa || b[w] != pb) {
      ctx.invalidate_worker(worker);
      a[w] = pa;
      b[w] = pb;
    }
  }
};

/// gemm_micro's block loop on the claiming worker (same order, same
/// block_op calls => bit-identical results).
void packed_product(KernelContext& ctx, int worker, Matrix& c, const Matrix& a,
                    const Matrix& b, std::int64_t q) {
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i0 = 0; i0 < m; i0 += q) {
    const std::int64_t mb = std::min(q, m - i0);
    for (std::int64_t k0 = 0; k0 < z; k0 += q) {
      const std::int64_t kb = std::min(q, z - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += q) {
        const std::int64_t nb = std::min(q, n - j0);
        ctx.block_op(worker, c, a, b, i0, j0, k0, mb, nb, kb);
      }
    }
  }
}

/// The same loop consuming the bucket's shared packed B panels.
void shared_b_product(KernelContext& ctx, int worker, Matrix& c,
                      const Matrix& a, const SharedPackedB& panels,
                      std::int64_t q) {
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  for (std::int64_t i0 = 0; i0 < m; i0 += q) {
    const std::int64_t mb = std::min(q, m - i0);
    for (std::int64_t k0 = 0; k0 < z; k0 += q) {
      const std::int64_t kb = std::min(q, z - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += q) {
        const std::int64_t nb = std::min(q, n - j0);
        ctx.block_op_packed_b(worker, c, a, panels.panel(k0, j0), i0, j0, k0,
                              mb, nb, kb);
      }
    }
  }
}

}  // namespace

void direct_product(Matrix& c, const Matrix& a, const Matrix& b,
                    std::int64_t q, bool fused, std::int64_t kc) {
  const std::int64_t m = c.rows(), n = c.cols(), z = a.cols();
  const std::int64_t ldb = b.cols();
  // Per coefficient this is exactly the packed path's value chain: for
  // each ascending k-block — split further at the tuned kc, exactly where
  // block_op splits — a zero-initialised accumulator folded k-ascending,
  // then added to C once.  The micro-kernel's accumulate is fused per
  // lane on the SIMD path (mirrored with std::fma) and a plain mul+add on
  // the scalar path (the generic x86-64 target cannot contract), so both
  // mirrors are bit-exact.
  for (std::int64_t k0 = 0; k0 < z; k0 += q) {
    const std::int64_t kb = std::min(q, z - k0);
    const std::int64_t kc_eff = kc > 0 && kc < kb ? kc : kb;
    for (std::int64_t ks = 0; ks < kb; ks += kc_eff) {
      const std::int64_t kcb = std::min(kc_eff, kb - ks);
      for (std::int64_t i = 0; i < m; ++i) {
        const double* arow = a.row_ptr(i) + k0 + ks;
        const double* bblock = b.row_ptr(k0 + ks);
        double* crow = c.row_ptr(i);
        for (std::int64_t j = 0; j < n; ++j) {
          const double* bcol = bblock + j;
          double s = 0;
          if (fused) {
            for (std::int64_t k = 0; k < kcb; ++k) {
              s = std::fma(arow[k], bcol[k * ldb], s);
            }
          } else {
            for (std::int64_t k = 0; k < kcb; ++k) {
              s += arow[k] * bcol[k * ldb];
            }
          }
          crow[j] += s;
        }
      }
    }
  }
}

SharedPackedB::SharedPackedB(std::int64_t k, std::int64_t n, std::int64_t q,
                             std::int64_t nr)
    : k_(k), n_(n), q_(q), nr_(nr), jblocks_(ceil_div(n, q)) {
  MCMM_REQUIRE(k >= 0 && n >= 0 && q >= 1 && nr >= 1,
               "SharedPackedB: bad geometry");
  std::size_t total = 0;
  for (std::int64_t k0 = 0; k0 < k_; k0 += q_) {
    const std::int64_t kb = std::min(q_, k_ - k0);
    for (std::int64_t j0 = 0; j0 < n_; j0 += q_) {
      const std::int64_t nb = std::min(q_, n_ - j0);
      offsets_.push_back(total);
      total += static_cast<std::size_t>(packed_b_size(kb, nb, nr_));
    }
  }
  buf_.resize(std::max<std::size_t>(total, 1));
}

void SharedPackedB::block_coords(std::int64_t index, std::int64_t& k0,
                                 std::int64_t& j0) const {
  MCMM_ASSERT(index >= 0 && index < blocks(),
              "SharedPackedB: block index out of range");
  k0 = (index / jblocks_) * q_;
  j0 = (index % jblocks_) * q_;
}

void SharedPackedB::pack_block(const Matrix& b, std::int64_t index) {
  std::int64_t k0 = 0, j0 = 0;
  block_coords(index, k0, j0);
  const std::int64_t kb = std::min(q_, k_ - k0);
  const std::int64_t nb = std::min(q_, n_ - j0);
  pack_b_panel(b, k0, j0, kb, nb, nr_,
               buf_.data() + offsets_[static_cast<std::size_t>(index)]);
}

const double* SharedPackedB::panel(std::int64_t k0, std::int64_t j0) const {
  const std::int64_t index = (k0 / q_) * jblocks_ + j0 / q_;
  MCMM_ASSERT(index >= 0 && index < blocks(),
              "SharedPackedB: panel offsets out of range");
  return buf_.data() + offsets_[static_cast<std::size_t>(index)];
}

BatchResult gemm_batch(const std::vector<BatchProduct>& batch,
                       ThreadPool& pool, KernelContext& ctx,
                       const BatchPolicy& policy) {
  MCMM_REQUIRE(ctx.workers() >= pool.workers(),
               "gemm_batch: context has fewer workers than the pool");
  // Strategy choice and shared panels must match the kernel that will
  // actually execute (direct-path crossover and B strip width are both
  // shape-dependent), so the context overrides the policy's tile extents.
  BatchPolicy eff = policy;
  eff.mr = ctx.kernel().mr;
  eff.nr = ctx.kernel().nr;
  const std::vector<Bucket> buckets = bucket_products(batch, eff);
  ctx.invalidate();
  MemoGuard memo(ctx.workers());
  ExecutionTracer* const tracer = ctx.tracer();

  BatchResult result;
  result.products = static_cast<std::int64_t>(batch.size());
  const double t0 = now_ms();
  for (const Bucket& bucket : buckets) {
    const double bucket_t0 = now_ms();

    // Amortised packing: fill the shared panels once, in parallel, with
    // each pack recorded as a pack-B span — the tracer is how the bench
    // proves the per-product pack cost collapsed to a per-batch one.
    SharedPackedB panels(bucket.shape.k, bucket.shape.n, eff.q,
                         ctx.kernel().nr);
    if (bucket.strategy == BucketStrategy::kPackedSharedB) {
      const Matrix* shared_b = bucket.shared_b;
      std::atomic<std::int64_t> pack_cursor{0};
      pool.set_trace_label("batch-pack-b");
      pool.run_on_all([&](int worker) {
        for (;;) {
          const std::int64_t blk =
              pack_cursor.fetch_add(1, std::memory_order_relaxed);
          if (blk >= panels.blocks()) return;
          const std::int64_t begin_ns =
              tracer != nullptr ? tracer->now_ns() : 0;
          panels.pack_block(*shared_b, blk);
          if (tracer != nullptr) {
            tracer->record(worker, TracePhase::kPackB, begin_ns,
                           tracer->now_ns());
          }
        }
      });
    }

    std::atomic<std::size_t> cursor{0};
    switch (bucket.strategy) {
      case BucketStrategy::kDirect:
        pool.set_trace_label("batch-direct");
        break;
      case BucketStrategy::kPacked:
        pool.set_trace_label("batch-packed");
        break;
      case BucketStrategy::kPackedSharedB:
        pool.set_trace_label("batch-packed-shared-b");
        break;
    }
    const bool fused = ctx.fused();
    pool.run_on_all([&](int worker) {
      for (;;) {
        const std::size_t slot =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (slot >= bucket.items.size()) return;
        const BatchProduct& p = batch[bucket.items[slot]];
        switch (bucket.strategy) {
          case BucketStrategy::kDirect:
            direct_product(*p.c, *p.a, *p.b, eff.q, fused, ctx.kc());
            break;
          case BucketStrategy::kPacked:
            memo.ensure(ctx, worker, p.a, p.b);
            packed_product(ctx, worker, *p.c, *p.a, *p.b, eff.q);
            break;
          case BucketStrategy::kPackedSharedB:
            memo.ensure(ctx, worker, p.a, p.b);
            shared_b_product(ctx, worker, *p.c, *p.a, panels, eff.q);
            break;
        }
      }
    });

    BucketStats stats;
    stats.shape = bucket.shape;
    stats.strategy = bucket.strategy;
    stats.shared_b = bucket.shared_b != nullptr;
    stats.products = static_cast<std::int64_t>(bucket.items.size());
    stats.wall_ms = now_ms() - bucket_t0;
    result.buckets.push_back(stats);
  }
  result.wall_ms = now_ms() - t0;
  return result;
}

BatchResult gemm_batch_serial(const std::vector<BatchProduct>& batch,
                              KernelContext& ctx, const BatchPolicy& policy) {
  // Mirror gemm_batch's tile-extent override so the serial face buckets
  // (and therefore executes) identically.
  BatchPolicy eff = policy;
  eff.mr = ctx.kernel().mr;
  eff.nr = ctx.kernel().nr;
  const std::vector<Bucket> buckets = bucket_products(batch, eff);
  const bool fused = ctx.fused();
  BatchResult result;
  result.products = static_cast<std::int64_t>(batch.size());
  const double t0 = now_ms();
  for (const Bucket& bucket : buckets) {
    const double bucket_t0 = now_ms();
    for (const std::size_t item : bucket.items) {
      const BatchProduct& p = batch[item];
      if (bucket.strategy == BucketStrategy::kDirect) {
        direct_product(*p.c, *p.a, *p.b, eff.q, fused, ctx.kc());
      } else {
        // Both packed strategies are bit-identical to gemm_micro, so the
        // serial face of either is exactly a gemm_micro loop.
        gemm_micro(*p.c, *p.a, *p.b, eff.q, ctx);
      }
    }
    BucketStats stats;
    stats.shape = bucket.shape;
    stats.strategy = bucket.strategy;
    stats.shared_b = bucket.shared_b != nullptr;
    stats.products = static_cast<std::int64_t>(bucket.items.size());
    stats.wall_ms = now_ms() - bucket_t0;
    result.buckets.push_back(stats);
  }
  result.wall_ms = now_ms() - t0;
  return result;
}

}  // namespace mcmm::batch
