#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/warnings.hpp"

namespace mcmm {

namespace {

double ns_to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

void emit_phase_map(JsonWriter& w, const char* key, const PhaseTotals& t,
                    bool counts) {
  w.key(key).begin_object();
  for (int p = 0; p < kNumTracePhases; ++p) {
    const auto phase = static_cast<TracePhase>(p);
    if (counts) {
      w.kv(to_string(phase), t.spans[p]);
    } else {
      w.kv(to_string(phase), t.ms(phase));
    }
  }
  if (!counts) w.kv("other", t.other_ms());
  w.end_object();
}

}  // namespace

void PhaseTotals::add(const TraceSpan& span) {
  const int p = static_cast<int>(span.phase);
  ns[p] += std::max<std::int64_t>(span.end_ns - span.begin_ns, 0);
  ++spans[p];
}

void PhaseTotals::merge(const PhaseTotals& other) {
  for (int p = 0; p < kNumTracePhases; ++p) {
    ns[p] += other.ns[p];
    spans[p] += other.spans[p];
  }
}

double PhaseTotals::other_ms() const {
  const double attributed = ms(TracePhase::kPackA) + ms(TracePhase::kPackB) +
                            ms(TracePhase::kMicroKernel) +
                            ms(TracePhase::kTrsm) + ms(TracePhase::kFactor);
  return std::max(ms(TracePhase::kWork) - attributed, 0.0);
}

double PhaseTotals::idle_fraction() const {
  const double busy = ms(TracePhase::kWork);
  const double idle = ms(TracePhase::kBarrier);
  return busy + idle > 0 ? idle / (busy + idle) : 0.0;
}

TraceSummary summarize_trace(const ExecutionTracer& tracer) {
  TraceSummary out;
  out.workers = tracer.workers();
  out.dropped.resize(static_cast<std::size_t>(out.workers));
  out.totals.resize(static_cast<std::size_t>(out.workers));
  for (std::size_t r = 0; r < tracer.num_regions(); ++r) {
    if (tracer.region_end_ns(r) < 0) continue;  // still open
    RegionSummary region;
    region.label = tracer.region_label(r);
    region.begin_ns = tracer.region_begin_ns(r);
    region.end_ns = tracer.region_end_ns(r);
    region.workers.resize(static_cast<std::size_t>(out.workers));
    out.regions.push_back(std::move(region));
  }
  for (int w = 0; w < out.workers; ++w) {
    out.dropped[static_cast<std::size_t>(w)] = tracer.dropped(w);
    out.dropped_total += tracer.dropped(w);
    for (std::size_t i = 0; i < tracer.span_count(w); ++i) {
      const TraceSpan& span = tracer.span(w, i);
      out.totals[static_cast<std::size_t>(w)].add(span);
      if (span.region >= 0 &&
          span.region < static_cast<std::int32_t>(out.regions.size())) {
        out.regions[static_cast<std::size_t>(span.region)]
            .workers[static_cast<std::size_t>(w)]
            .add(span);
      }
    }
  }
  return out;
}

PhaseTotals aggregate_region_totals(const TraceSummary& summary) {
  PhaseTotals out;
  for (const RegionSummary& region : summary.regions) {
    for (const PhaseTotals& t : region.workers) out.merge(t);
  }
  return out;
}

std::string trace_summary_json(const TraceSummary& summary) {
  JsonWriter w;
  w.begin_object()
      .kv("schema", "mcmm-trace-summary-v1")
      .kv("workers", summary.workers)
      .kv("dropped", summary.dropped_total);
  w.key("per_worker").begin_array();
  for (int i = 0; i < summary.workers; ++i) {
    const PhaseTotals& t = summary.totals[static_cast<std::size_t>(i)];
    w.begin_object()
        .kv("worker", i)
        .kv("dropped", summary.dropped[static_cast<std::size_t>(i)])
        .kv("idle_fraction", t.idle_fraction());
    emit_phase_map(w, "ms", t, /*counts=*/false);
    emit_phase_map(w, "spans", t, /*counts=*/true);
    w.end_object();
  }
  w.end_array();
  w.key("regions").begin_array();
  for (const RegionSummary& region : summary.regions) {
    w.begin_object().kv("label", region.label).kv("wall_ms", region.wall_ms());
    w.key("per_worker").begin_array();
    for (const PhaseTotals& t : region.workers) {
      w.begin_object().kv("idle_fraction", t.idle_fraction());
      emit_phase_map(w, "ms", t, /*counts=*/false);
      w.end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return w.str();
}

void print_trace_summary(const TraceSummary& summary) {
  std::printf("# trace summary: %d workers, %zu regions, %lld dropped spans\n",
              summary.workers, summary.regions.size(),
              static_cast<long long>(summary.dropped_total));
  std::printf("#  worker  pack-A ms  pack-B ms   micro ms  barrier ms  "
              "other ms    idle\n");
  for (int i = 0; i < summary.workers; ++i) {
    const PhaseTotals& t = summary.totals[static_cast<std::size_t>(i)];
    std::printf("#  %6d  %9.3f  %9.3f  %9.3f  %10.3f  %8.3f  %5.1f%%\n", i,
                t.ms(TracePhase::kPackA), t.ms(TracePhase::kPackB),
                t.ms(TracePhase::kMicroKernel), t.ms(TracePhase::kBarrier),
                t.other_ms(), 100.0 * t.idle_fraction());
  }
  for (const RegionSummary& region : summary.regions) {
    std::printf("#  region %-20s wall %9.3f ms\n", region.label.c_str(),
                region.wall_ms());
  }
}

std::string chrome_trace_json(const ExecutionTracer& tracer) {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", 0)
      .kv("tid", 0)
      .key("args")
      .begin_object()
      .kv("name", "mcmm")
      .end_object()
      .end_object();
  for (int worker = 0; worker < tracer.workers(); ++worker) {
    w.begin_object()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 0)
        .kv("tid", worker)
        .key("args")
        .begin_object()
        .kv("name", "worker " + std::to_string(worker))
        .end_object()
        .end_object();
  }
  for (int worker = 0; worker < tracer.workers(); ++worker) {
    for (std::size_t i = 0; i < tracer.span_count(worker); ++i) {
      const TraceSpan& span = tracer.span(worker, i);
      // The region job gets the schedule's name so the Perfetto track
      // reads "shared-opt > pack-a | micro-kernel | ..."; phases keep
      // their own names.
      const bool is_work = span.phase == TracePhase::kWork;
      const std::string name =
          is_work && span.region >= 0
              ? tracer.region_label(static_cast<std::size_t>(span.region))
              : to_string(span.phase);
      w.begin_object()
          .kv("name", name)
          .kv("cat", is_work ? "region" : "phase")
          .kv("ph", "X")
          .kv("ts", ns_to_us(span.begin_ns))
          .kv("dur", ns_to_us(std::max<std::int64_t>(
                         span.end_ns - span.begin_ns, 0)))
          .kv("pid", 0)
          .kv("tid", worker)
          .end_object();
    }
  }
  w.end_array().kv("displayTimeUnit", "ms").end_object();
  return w.str();
}

void write_chrome_trace(const ExecutionTracer& tracer,
                        const std::string& path) {
  if (tracer.total_dropped() > 0) {
    emit_warning("trace: " + std::to_string(tracer.total_dropped()) +
                 " spans dropped (ring buffers full) — the exported trace "
                 "is truncated; raise the tracer capacity for full runs");
  }
  const std::string doc = chrome_trace_json(tracer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MCMM_REQUIRE(f != nullptr, "write_chrome_trace: cannot write " + path);
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = n == doc.size() && std::fputc('\n', f) != EOF;
  const bool closed = std::fclose(f) == 0;
  MCMM_REQUIRE(ok && closed, "write_chrome_trace: short write to " + path);
}

}  // namespace mcmm
