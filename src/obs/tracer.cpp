#include "obs/tracer.hpp"

#include <chrono>

#include "util/error.hpp"

namespace mcmm {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kPackA: return "pack-a";
    case TracePhase::kPackB: return "pack-b";
    case TracePhase::kMicroKernel: return "micro-kernel";
    case TracePhase::kBarrier: return "barrier";
    case TracePhase::kTask: return "task";
    case TracePhase::kWork: return "work";
    case TracePhase::kTrsm: return "trsm";
    case TracePhase::kFactor: return "factor";
  }
  return "?";
}

ExecutionTracer::ExecutionTracer(int workers, std::size_t capacity_per_worker)
    : epoch_ns_(steady_ns()), capacity_(capacity_per_worker) {
  MCMM_REQUIRE(workers >= 1, "ExecutionTracer: need at least one worker");
  MCMM_REQUIRE(capacity_per_worker >= 1,
               "ExecutionTracer: per-worker capacity must be >= 1");
  rings_.resize(static_cast<std::size_t>(workers));
  for (WorkerRing& ring : rings_) ring.spans.resize(capacity_);
}

std::int64_t ExecutionTracer::now_ns() const { return steady_ns() - epoch_ns_; }

void ExecutionTracer::record(int worker, TracePhase phase,
                             std::int64_t begin_ns,
                             std::int64_t end_ns) noexcept {
  if (worker < 0 || worker >= static_cast<int>(rings_.size())) return;
  WorkerRing& ring = rings_[static_cast<std::size_t>(worker)];
  // Barrier spans are synthesised by end_region; everything else advances
  // the worker's progress mark so idle attribution stays correct even when
  // the ring is full.
  if (phase != TracePhase::kBarrier && end_ns > ring.last_end_ns.load()) {
    ring.last_end_ns.store(end_ns);
  }
  const std::size_t count = ring.count.load();
  if (count >= capacity_) {
    ring.dropped.store(ring.dropped.load() + 1);
    return;
  }
  ring.spans[count] =
      TraceSpan{begin_ns, end_ns, current_region_.load(), phase};
  ring.count.store(count + 1);
}

void ExecutionTracer::begin_region(const char* label) {
  MCMM_REQUIRE(current_region_.load() == -1,
               "ExecutionTracer: regions must not nest (begin_region while a "
               "region is open)");
  current_region_.store(static_cast<std::int32_t>(regions_.size()));
  for (WorkerRing& ring : rings_) ring.last_end_ns.store(-1);
  regions_.push_back(Region{label != nullptr ? label : "region", now_ns(), -1});
}

void ExecutionTracer::end_region() {
  MCMM_REQUIRE(current_region_.load() != -1,
               "ExecutionTracer: end_region without begin_region");
  Region& region = regions_[static_cast<std::size_t>(current_region_.load())];
  region.end_ns = now_ns();
  for (int w = 0; w < workers(); ++w) {
    WorkerRing& ring = rings_[static_cast<std::size_t>(w)];
    const std::int64_t idle_from = ring.last_end_ns.load();
    if (idle_from < 0) continue;  // did not participate in this region
    if (region.end_ns > idle_from) {
      record(w, TracePhase::kBarrier, idle_from, region.end_ns);
    }
  }
  current_region_.store(-1);
}

void ExecutionTracer::reset() {
  MCMM_REQUIRE(current_region_.load() == -1,
               "ExecutionTracer: reset while a region is open");
  for (WorkerRing& ring : rings_) {
    ring.count.store(0);
    ring.dropped.store(0);
    ring.last_end_ns.store(-1);
  }
  regions_.clear();
}

std::size_t ExecutionTracer::span_count(int worker) const {
  MCMM_REQUIRE(worker >= 0 && worker < workers(),
               "ExecutionTracer::span_count: bad worker id");
  return rings_[static_cast<std::size_t>(worker)].count.load();
}

const TraceSpan& ExecutionTracer::span(int worker, std::size_t i) const {
  MCMM_REQUIRE(worker >= 0 && worker < workers() &&
                   i < rings_[static_cast<std::size_t>(worker)].count.load(),
               "ExecutionTracer::span: out of range");
  return rings_[static_cast<std::size_t>(worker)].spans[i];
}

std::int64_t ExecutionTracer::dropped(int worker) const {
  MCMM_REQUIRE(worker >= 0 && worker < workers(),
               "ExecutionTracer::dropped: bad worker id");
  return rings_[static_cast<std::size_t>(worker)].dropped.load();
}

std::int64_t ExecutionTracer::total_dropped() const {
  std::int64_t sum = 0;
  for (const WorkerRing& ring : rings_) sum += ring.dropped.load();
  return sum;
}

const std::string& ExecutionTracer::region_label(std::size_t region) const {
  MCMM_REQUIRE(region < regions_.size(),
               "ExecutionTracer::region_label: bad region index");
  return regions_[region].label;
}

std::int64_t ExecutionTracer::region_begin_ns(std::size_t region) const {
  MCMM_REQUIRE(region < regions_.size(),
               "ExecutionTracer::region_begin_ns: bad region index");
  return regions_[region].begin_ns;
}

std::int64_t ExecutionTracer::region_end_ns(std::size_t region) const {
  MCMM_REQUIRE(region < regions_.size(),
               "ExecutionTracer::region_end_ns: bad region index");
  return regions_[region].end_ns;
}

}  // namespace mcmm
