// Per-worker execution tracing for the real-execution path.
//
// The paper's envelopes (src/exp/timeline.hpp) bound where a schedule can
// land between "no overlap" and "perfect overlap", but say nothing about
// *why* a real run sits where it does.  ExecutionTracer answers that with
// per-phase spans — pack-A, pack-B, micro-kernel, barrier/idle — recorded
// from inside ThreadPool and KernelContext::block_op:
//
//   * one preallocated ring buffer per worker, cache-line aligned, so the
//     hot path takes no locks and performs no allocation;
//   * timestamps from one shared steady_clock epoch (a vdso read, ~25 ns),
//     so spans from different workers share a timeline;
//   * when a ring fills, further spans are counted as dropped instead of
//     reallocating — tracing never perturbs what it measures.
//
// Thread-safety contract: worker w writes only ring w, from the pool
// thread running job(w).  begin_region/end_region are called by the
// coordinating thread while the workers are quiescent (ThreadPool brackets
// its dispatch with them); the pool's mutex provides the happens-before
// edges, so the tracer itself needs no synchronisation.  That claim is not
// taken on faith: the cross-thread fields are held in sync::value slots
// (bare data in normal builds, race-detector hooks under
// -DMCMM_CHECKED_SYNC=ON), and the model checker's tracer scenarios verify
// the mutex edges cover every access (tools/mcmm_check, "tracer/...").
//
// Exporters live in obs/trace_export.hpp (Chrome trace-event JSON and the
// aggregated per-phase summary); docs/observability.md has the worked
// example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync.hpp"

namespace mcmm {

/// What a span measures.  kWork is the whole per-worker parallel-region
/// job (the phases below nest inside it); kTask is one dynamically claimed
/// ThreadPool::run_batch task; kBarrier is the tail of a region a worker
/// spent waiting for the slowest sibling.  kTrsm and kFactor are the LU
/// panel phases (triangular solves and the diagonal-block factorization)
/// recorded by the kernel-routed parallel_lu_factor.
enum class TracePhase : std::uint8_t {
  kPackA = 0,
  kPackB,
  kMicroKernel,
  kBarrier,
  kTask,
  kWork,
  kTrsm,
  kFactor,
};
inline constexpr int kNumTracePhases = 8;

/// Stable lower-case name ("pack-a", "micro-kernel", ...).
const char* to_string(TracePhase phase);

/// One closed interval on the shared timeline (nanoseconds since the
/// tracer's construction).  `region` indexes the tracer's region list, or
/// -1 for spans recorded outside any region.
struct TraceSpan {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t region = -1;
  TracePhase phase = TracePhase::kWork;
};

class ExecutionTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Preallocates `capacity_per_worker` span slots for each of `workers`
  /// rings.  Throws mcmm::Error on workers < 1 or capacity < 1.
  ExecutionTracer(int workers, std::size_t capacity_per_worker = kDefaultCapacity);

  int workers() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const { return capacity_; }

  /// Nanoseconds on the shared steady-clock timeline.
  std::int64_t now_ns() const;

  /// Append a span to `worker`'s ring.  Lock-free, allocation-free; out of
  /// range workers and full rings count as dropped.  Must be called from
  /// the thread running worker `worker` (see the header contract).
  void record(int worker, TracePhase phase, std::int64_t begin_ns,
              std::int64_t end_ns) noexcept;

  /// Open a named region (one parallel dispatch).  Called by the
  /// coordinating thread before workers start; regions never nest.
  void begin_region(const char* label);

  /// Close the current region and emit one kBarrier span per worker that
  /// recorded anything inside it, covering [its last span end, region
  /// end] — the time it idled waiting for the slowest sibling.
  void end_region();

  /// Discard all recorded spans, dropped counts and regions, keeping the
  /// rings (and their allocations) and the clock epoch.  Same contract as
  /// the accessors: call only from the coordinating thread while no region
  /// is open and no worker is executing — the serve dispatcher uses this
  /// between requests so each request's summary covers exactly one region.
  void reset();

  // --- accessors (call only while no region is executing) ---
  std::size_t span_count(int worker) const;
  const TraceSpan& span(int worker, std::size_t i) const;
  std::int64_t dropped(int worker) const;
  std::int64_t total_dropped() const;

  std::size_t num_regions() const { return regions_.size(); }
  const std::string& region_label(std::size_t region) const;
  std::int64_t region_begin_ns(std::size_t region) const;
  std::int64_t region_end_ns(std::size_t region) const;

 private:
  /// One worker's ring, padded to its own cache line so concurrent
  /// recording never false-shares.
  struct alignas(64) WorkerRing {
    std::vector<TraceSpan> spans;   // preallocated to capacity_
    sync::value<std::size_t> count{0};
    sync::value<std::int64_t> dropped{0};
    // Latest span end in the open region (-1 = none yet).
    sync::value<std::int64_t> last_end_ns{-1};
  };
  struct Region {
    std::string label;
    std::int64_t begin_ns = 0;
    std::int64_t end_ns = -1;  // -1 while open
  };

  std::int64_t epoch_ns_;  // steady_clock at construction
  std::size_t capacity_;
  std::vector<WorkerRing> rings_;
  std::vector<Region> regions_;
  // Written by the coordinating thread, read by workers inside record().
  sync::value<std::int32_t> current_region_{-1};
};

}  // namespace mcmm
