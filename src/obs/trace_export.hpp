// Exporters for ExecutionTracer: the Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) and the aggregated per-phase summary that
// the bench reports embed (schema mcmm-trace-summary-v1).
//
// The trace-event document is the "JSON object format": a traceEvents
// array of "X" (complete) duration events with microsecond ts/dur, one
// tid per worker, plus "M" metadata events naming the process and
// threads.  kWork spans are named after their region label (the schedule
// that dispatched them); phase spans keep their phase name so Perfetto
// groups them.  See docs/observability.md for a worked reading.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace mcmm {

/// Per-worker accumulated time and span counts, indexed by TracePhase.
struct PhaseTotals {
  std::int64_t ns[kNumTracePhases] = {};
  std::int64_t spans[kNumTracePhases] = {};

  double ms(TracePhase phase) const {
    return static_cast<double>(ns[static_cast<int>(phase)]) / 1e6;
  }
  /// Region-job time not attributed to any instrumented phase (loop
  /// bookkeeping, memo hashing, C write-back):
  /// work - (packs + micro + trsm + factor).
  double other_ms() const;
  /// Fraction of this worker's region time spent at barriers:
  /// barrier / (work + barrier).  0 when the worker recorded no work.
  double idle_fraction() const;

  void add(const TraceSpan& span);
  void merge(const PhaseTotals& other);
};

/// One traced region (one parallel dispatch) with per-worker attribution.
struct RegionSummary {
  std::string label;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::vector<PhaseTotals> workers;

  double wall_ms() const {
    return static_cast<double>(end_ns - begin_ns) / 1e6;
  }
};

struct TraceSummary {
  int workers = 0;
  std::int64_t dropped_total = 0;
  std::vector<std::int64_t> dropped;   ///< per worker
  std::vector<PhaseTotals> totals;     ///< per worker, across every span
  std::vector<RegionSummary> regions;  ///< closed regions, in order
};

/// Aggregate the tracer's spans.  Spans outside any region (region == -1)
/// count toward `totals` only; still-open regions are skipped.
TraceSummary summarize_trace(const ExecutionTracer& tracer);

/// Every worker's totals across ALL closed regions merged into one
/// PhaseTotals — the whole-trace phase mix of a multi-region dispatch
/// (e.g. a batch request's per-bucket pack/exec regions condensed into
/// one stats record, where regions.back() would see only the last).
PhaseTotals aggregate_region_totals(const TraceSummary& summary);

/// The summary as an mcmm-trace-summary-v1 JSON object (one line, stable
/// key order — embeddable under the bench report's "timing" subtree).
std::string trace_summary_json(const TraceSummary& summary);

/// Human-readable per-worker table on stdout (the --trace-summary flag).
void print_trace_summary(const TraceSummary& summary);

/// The full Chrome trace-event JSON document.
std::string chrome_trace_json(const ExecutionTracer& tracer);

/// Write chrome_trace_json to `path` (plus a trailing newline); throws
/// mcmm::Error when the file cannot be written.  Emits a warning through
/// the warning sink when the tracer dropped spans.
void write_chrome_trace(const ExecutionTracer& tracer, const std::string& path);

}  // namespace mcmm
