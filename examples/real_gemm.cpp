// Run the paper's schedules for real: multithreaded double-precision
// matrix products on the host CPU, validated against the reference kernel
// and timed (the "future work" of the paper's conclusion).
//
//   $ ./real_gemm [--n 768] [--q 64] [--workers 4]
#include <chrono>
#include <cstdio>

#include "multicore_mm.hpp"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("n", "square matrix order in coefficients", "768");
  cli.add_option("q", "block size in coefficients", "64");
  cli.add_option("workers", "thread count", "4");
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t n = cli.integer("n");
  const std::int64_t q = cli.integer("q");
  const int workers = static_cast<int>(cli.integer("workers"));

  Matrix a(n, n), b(n, n);
  a.fill_random(2026);
  b.fill_random(707);

  Matrix expect(n, n);
  const double t0 = now_seconds();
  gemm_reference(expect, a, b);
  const double t_ref = now_seconds() - t0;
  const double gflop = 2.0 * static_cast<double>(n) * n * n / 1e9;
  std::printf("n = %lld, q = %lld, %d workers, %.2f GFLOP per product\n\n",
              static_cast<long long>(n), static_cast<long long>(q), workers,
              gflop);
  std::printf("%-22s %8.3fs %8.2f GFLOP/s   (baseline)\n", "reference (1 thread)",
              t_ref, gflop / t_ref);

  const Tiling tiling = tiling_for_host(workers, 8 << 20, 256 << 10, q);
  std::printf("tiling: lambda=%lld mu=%lld alpha=%lld beta=%lld\n\n",
              static_cast<long long>(tiling.lambda),
              static_cast<long long>(tiling.mu),
              static_cast<long long>(tiling.alpha),
              static_cast<long long>(tiling.beta));

  ThreadPool pool(workers);
  struct Entry {
    const char* name;
    void (*fn)(Matrix&, const Matrix&, const Matrix&, const Tiling&,
               ThreadPool&);
  };
  const Entry entries[] = {
      {"shared-opt", &parallel_gemm_shared_opt},
      {"distributed-opt", &parallel_gemm_distributed_opt},
      {"tradeoff", &parallel_gemm_tradeoff},
      {"outer-product", &parallel_gemm_outer_product},
  };
  for (const Entry& e : entries) {
    Matrix c(n, n);
    const double t1 = now_seconds();
    e.fn(c, a, b, tiling, pool);
    const double dt = now_seconds() - t1;
    const bool ok = gemm_matches(c, expect, n);
    std::printf("%-22s %8.3fs %8.2f GFLOP/s   (%s, max err %.2e)\n", e.name,
                dt, gflop / dt, ok ? "CORRECT" : "WRONG",
                Matrix::max_abs_diff(c, expect));
    if (!ok) return 1;
  }
  return 0;
}
