// Simulate a cluster of multicores — the machine shape the paper's
// conclusion predicts will need "yet another level of tiling" — and show
// the generalised Maximum Reuse schedule tiling every level of the tree.
//
//   $ ./cluster_sim [--nodes 4] [--p 4] [--order 64]
#include <cstdio>

#include "multicore_mm.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("nodes", "multicore nodes (perfect square)", "4");
  cli.add_option("p", "cores per node (perfect square)", "4");
  cli.add_option("cluster-cache", "cluster cache capacity in blocks", "4096");
  cli.add_option("node-cache", "per-node cache capacity in blocks", "512");
  cli.add_option("private-cache", "per-core cache capacity in blocks", "21");
  cli.add_option("order", "square matrix order in blocks", "64");
  if (!cli.parse(argc, argv)) return 0;

  const HierConfig cfg = HierConfig::cluster_of_multicores(
      cli.integer("cluster-cache"), static_cast<int>(cli.integer("nodes")),
      cli.integer("node-cache"), static_cast<int>(cli.integer("p")),
      cli.integer("private-cache"));
  const Problem prob = Problem::square(cli.integer("order"));

  std::printf("machine: %s (%d cores)\n", cfg.describe().c_str(), cfg.cores());
  std::printf("problem: %s blocks\n\n", prob.describe().c_str());

  HierMachine machine(cfg);
  const HierParams params = run_hier_max_reuse(machine, prob);

  std::printf("tile sides per level (planned on half capacities): ");
  for (std::size_t l = 0; l < params.side.size(); ++l) {
    std::printf("%s%lld", l ? " > " : "",
                static_cast<long long>(params.side[l]));
  }
  std::printf("  (mu = %lld)\n\n", static_cast<long long>(params.mu));

  const auto declared_pred = hier_predicted_misses(
      cfg, params, prob);
  const auto bounds = hier_lower_bounds(cfg, prob);
  std::printf("%8s %10s %16s %16s %16s\n", "level", "caches",
              "busiest misses", "predicted", "lower bound");
  for (int l = 0; l < cfg.num_levels(); ++l) {
    std::printf("%8d %10d %16lld %16.0f %16.0f\n", l, cfg.caches_at(l),
                static_cast<long long>(machine.level_stats(l).max_misses()),
                declared_pred[static_cast<std::size_t>(l)],
                bounds[static_cast<std::size_t>(l)]);
  }
  std::printf("\ngeneralised Tdata (unit bandwidths): %.0f\n",
              machine.tdata());
  machine.check_inclusive();
  return 0;
}
