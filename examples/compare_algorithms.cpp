// Compare all six schedules on one machine configuration: the library's
// equivalent of one column of the paper's Figures 7-9.
//
//   $ ./compare_algorithms [--order N] [--cs N] [--cd N] [--setting lru50|ideal]
#include <cstdio>

#include "multicore_mm.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("order", "square matrix order in blocks", "64");
  cli.add_option("cs", "shared cache capacity in blocks", "977");
  cli.add_option("cd", "distributed cache capacity in blocks", "21");
  cli.add_option("setting", "lru50 | ideal | lru | lru2x", "lru50");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = cli.integer("cs");
  cfg.cd = cli.integer("cd");
  const Problem prob = Problem::square(cli.integer("order"));

  Setting setting = Setting::kLru50;
  const std::string s = cli.str("setting");
  if (s == "ideal") setting = Setting::kIdeal;
  else if (s == "lru") setting = Setting::kLruFull;
  else if (s == "lru2x") setting = Setting::kLruDouble;
  else if (s != "lru50") throw Error("unknown setting: " + s);

  std::printf("machine: %s | order %lld blocks | setting %s\n\n",
              cfg.describe().c_str(), static_cast<long long>(prob.m),
              to_string(setting));
  std::printf("%-18s %14s %14s %14s %10s %10s\n", "algorithm", "MS", "MD",
              "Tdata", "CCR_S", "CCR_D");
  std::printf("%-18s %14s %14s %14s %10s %10s\n", "lower bound",
              format_value(ms_lower_bound(prob, cfg.cs)).c_str(),
              format_value(md_lower_bound(prob, cfg.p, cfg.cd)).c_str(),
              format_value(tdata_lower_bound(prob, cfg)).c_str(), "-", "-");

  for (const auto& name : algorithm_names()) {
    const RunResult res = run_experiment(name, prob, cfg, setting);
    std::printf("%-18s %14lld %14lld %14.0f %10.4f %10.4f\n", name.c_str(),
                static_cast<long long>(res.ms),
                static_cast<long long>(res.md), res.tdata,
                res.stats.ccr_shared(), res.stats.ccr_distributed());
  }
  return 0;
}
