// Dissect a schedule's memory behaviour with the trace module: record the
// block-access stream, break it down per matrix and per core, and use one
// reuse-distance pass to print the exact LRU miss count for every cache
// capacity — including the "knee" where the schedule's designed working
// set (1 + mu + mu^2 for Distributed Opt., 3 for Shared Opt.) fits.
//
//   $ ./trace_analysis [--algorithm distributed-opt] [--order 32]
#include <cstdio>

#include "multicore_mm.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("algorithm", "schedule to trace (see registry)",
                 "distributed-opt");
  cli.add_option("order", "square matrix order in blocks", "32");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));
  const std::string name = cli.str("algorithm");

  Machine machine(cfg, Policy::kLru);
  Trace trace;
  record_into(machine, trace);
  make_algorithm(name)->run(machine, prob, cfg);

  const TraceStats stats = trace.stats();
  std::printf("%s on %s blocks: %lld accesses, footprint %lld blocks\n",
              name.c_str(), prob.describe().c_str(),
              static_cast<long long>(stats.accesses),
              static_cast<long long>(stats.distinct_blocks));
  std::printf("  reads %lld, writes %lld | A %lld, B %lld, C %lld\n",
              static_cast<long long>(stats.reads),
              static_cast<long long>(stats.writes),
              static_cast<long long>(stats.per_matrix[0]),
              static_cast<long long>(stats.per_matrix[1]),
              static_cast<long long>(stats.per_matrix[2]));
  for (std::size_t c = 0; c < stats.per_core.size(); ++c) {
    std::printf("  core %zu: %lld accesses\n", c,
                static_cast<long long>(stats.per_core[c]));
  }

  // Exact miss counts for EVERY distributed-cache capacity from one pass
  // over core 0's stream (Olken's algorithm).
  const Trace core0 = trace.filter_core(0);
  const ReuseProfile profile = reuse_profile(core0);
  std::printf("\ncore 0: %zu accesses, working set %lld blocks\n",
              core0.size(), static_cast<long long>(profile.working_set()));
  std::printf("%10s %12s %10s\n", "capacity", "LRU misses", "miss rate");
  std::int64_t prev = -1;
  for (const std::int64_t cap :
       {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}) {
    const std::int64_t misses = profile.lru_misses(cap);
    if (misses == prev) continue;  // skip flat segments
    prev = misses;
    std::printf("%10lld %12lld %9.1f%%\n", static_cast<long long>(cap),
                static_cast<long long>(misses),
                100.0 * static_cast<double>(misses) /
                    static_cast<double>(profile.total));
  }
  std::printf("\ncross-check: the machine's own counter for core 0 at "
              "capacity %lld: %lld\n",
              static_cast<long long>(cfg.cd),
              static_cast<long long>(machine.stats().dist_misses[0]));
  std::printf("             reuse-distance prediction:                %lld\n",
              static_cast<long long>(profile.lru_misses(cfg.cd)));
  return 0;
}
