// Model your own multicore: define an arbitrary cache geometry and see how
// the algorithms and the paper's analysis respond — e.g. a 16-core part
// with small private caches, or an asymmetric-bandwidth design.
//
//   $ ./custom_machine [--p 16] [--cs 4096] [--cd 64]
//                    [--sigma-s 1.0] [--sigma-d 4.0] [--order 64]
#include <cstdio>

#include "multicore_mm.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("p", "core count (any; grid schedules use the most "
                      "balanced r x c factorisation)", "16");
  cli.add_option("cs", "shared cache capacity in blocks", "4096");
  cli.add_option("cd", "per-core distributed cache capacity in blocks", "64");
  cli.add_option("sigma-s", "memory->shared bandwidth (blocks/unit)", "1.0");
  cli.add_option("sigma-d", "shared->distributed bandwidth", "4.0");
  cli.add_option("order", "square matrix order in blocks", "64");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = static_cast<int>(cli.integer("p"));
  cfg.cs = cli.integer("cs");
  cfg.cd = cli.integer("cd");
  cfg.sigma_s = cli.real("sigma-s");
  cfg.sigma_d = cli.real("sigma-d");
  cfg.validate();
  const Problem prob = Problem::square(cli.integer("order"));

  std::printf("machine: %s\n", cfg.describe().c_str());
  std::printf("problem: %s blocks\n\n", prob.describe().c_str());

  std::printf("derived parameters:\n");
  const Grid grid = balanced_grid(cfg.p);
  std::printf("  core grid                   = %lld x %lld\n",
              static_cast<long long>(grid.r), static_cast<long long>(grid.c));
  std::printf("  lambda (SharedOpt tile)     = %lld\n",
              static_cast<long long>(shared_opt_params(cfg.cs).lambda));
  std::printf("  mu (DistributedOpt tile)    = %lld\n",
              static_cast<long long>(max_reuse_parameter(cfg.cd)));
  {
    const TradeoffParams t = tradeoff_params(cfg);
    std::printf("  alpha, beta (Tradeoff)      = %lld, %lld  (alpha_num %.1f)\n",
                static_cast<long long>(t.alpha),
                static_cast<long long>(t.beta), t.alpha_num);
  }
  std::printf("  CCR_S lower bound           = %.5f\n",
              ccr_lower_bound(cfg.cs));
  std::printf("  CCR_D lower bound           = %.5f\n\n",
              ccr_lower_bound(cfg.cd));

  std::printf("%-18s | %12s %12s %14s | %12s %12s %14s\n", "", "IDEAL MS",
              "IDEAL MD", "IDEAL Tdata", "LRU-50 MS", "LRU-50 MD",
              "LRU-50 Tdata");
  for (const auto& name : algorithm_names()) {
    const RunResult ideal = run_experiment(name, prob, cfg, Setting::kIdeal);
    const RunResult lru = run_experiment(name, prob, cfg, Setting::kLru50);
    std::printf("%-18s | %12lld %12lld %14.0f | %12lld %12lld %14.0f\n",
                name.c_str(), static_cast<long long>(ideal.ms),
                static_cast<long long>(ideal.md), ideal.tdata,
                static_cast<long long>(lru.ms),
                static_cast<long long>(lru.md), lru.tdata);
  }
  std::printf("%-18s | %12lld %12lld %14.0f |\n", "lower bound",
              static_cast<long long>(ms_lower_bound(prob, cfg.cs)),
              static_cast<long long>(md_lower_bound(prob, cfg.p, cfg.cd)),
              tdata_lower_bound(prob, cfg));
  return 0;
}
