// End-to-end design walkthrough: choose the unit block size q for a real
// machine by combining BOTH levels of the library's analysis —
//
//  * below the block model: the inner-kernel simulator checks that the
//    sequential q x q kernel actually runs out of the L1 (the paper's
//    3 q^2 <= S_D assumption) and reports its misses per block FMA;
//  * the block model itself: each q implies block capacities (CS, CD)
//    and hence lambda, mu and the predicted Tdata of the Tradeoff.
//
// The sweet spot is the largest q whose kernel is still L1-resident with
// a healthy mu — exactly why the paper lands on q = 32 for this machine.
//
//   $ ./choose_block_size [--l1-kib 32] [--order-coeffs 6144]
#include <cstdio>

#include "multicore_mm.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("l1-kib", "per-core L1 size in KiB", "32");
  cli.add_option("order-coeffs", "matrix order in coefficients", "6144");
  if (!cli.parse(argc, argv)) return 0;

  LineCacheConfig l1;
  l1.size_bytes = cli.integer("l1-kib") * 1024;
  l1.line_bytes = 64;
  l1.ways = 8;
  const std::int64_t oc = cli.integer("order-coeffs");

  std::printf("Choosing q for the 8MB/256KB quad-core with a %lld KiB L1,\n"
              "problem %lld x %lld coefficients\n\n",
              static_cast<long long>(l1.size_bytes / 1024),
              static_cast<long long>(oc), static_cast<long long>(oc));
  std::printf("%4s %9s %12s | %5s %4s %3s %12s\n", "q", "3q^2*8B",
              "L1 miss/FMA", "CS", "CD", "mu", "Tdata(pred)");

  for (const std::int64_t q : {16, 24, 32, 48, 64, 96}) {
    if (oc % q != 0) continue;
    // Level below: is the kernel resident?  (ikj, contiguous blocks.)
    const InnerKernelStats inner =
        simulate_inner_kernel(l1, q, LoopOrder::kIKJ, q);
    // Block level: capacities, parameters and the predicted Tdata.
    const MachineConfig cfg = MachineConfig::realistic_quadcore(q, 2.0 / 3.0);
    if (cfg.cd < 3) continue;
    const Problem prob = Problem::square(oc / q);
    const TradeoffParams params = tradeoff_params(cfg);
    const double tdata_coeffs =
        predict_tradeoff(prob, cfg.p, params).tdata(cfg.sigma_s, cfg.sigma_d) *
        static_cast<double>(q) * static_cast<double>(q);
    std::printf("%4lld %8.1fK %12.4f | %5lld %4lld %3lld %12.3e  %s\n",
                static_cast<long long>(q),
                3.0 * static_cast<double>(q * q) * 8 / 1024,
                inner.misses_per_fma(), static_cast<long long>(cfg.cs),
                static_cast<long long>(cfg.cd),
                static_cast<long long>(params.mu), tdata_coeffs,
                kernel_fits(l1, q)
                    ? (params.mu >= 3 ? "<- candidate" : "(mu too small)")
                    : "(kernel not L1-resident)");
  }
  std::printf("\nRule of thumb this table encodes: grow q while (a) the\n"
              "kernel stays L1-resident and (b) mu = largest v with\n"
              "1+v+v^2 <= CD stays >= 3; the paper's q = 32 satisfies both\n"
              "on this machine, q = 64 fails (b), q = 96 fails (a) too.\n");
  return 0;
}
