// Quickstart: simulate one cache-aware matrix product and compare the
// measured misses with the paper's closed-form predictions and lower
// bounds.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the library: configure a machine, pick an
// algorithm, run it under a cache policy, read the statistics.
#include <cstdio>

#include "multicore_mm.hpp"

int main() {
  using namespace mcmm;

  // The paper's "realistic quad-core": 8 MB shared cache, 4 x 256 KB
  // private caches, 32x32 blocks of doubles, 2/3 of private caches for data.
  const MachineConfig cfg = MachineConfig::realistic_quadcore(32, 2.0 / 3.0);
  std::printf("machine: %s\n", cfg.describe().c_str());

  // Multiply two 90x90-block matrices (2880x2880 coefficients at q=32).
  // 90 is a multiple of lambda = 30, so the IDEAL run matches the paper's
  // closed form *exactly*; non-divisible orders add ragged-tile misses.
  const Problem prob = Problem::square(90);
  std::printf("problem: C = A*B with %s blocks (%lld block FMAs)\n\n",
              prob.describe().c_str(),
              static_cast<long long>(prob.fmas()));

  // Run Algorithm 1 (Shared Opt.) under the omniscient IDEAL policy...
  Machine ideal(cfg, Policy::kIdeal);
  SharedOpt().run(ideal, prob, cfg);

  // ...and under realistic LRU replacement with half-declared caches.
  Machine lru(cfg, Policy::kLru);
  SharedOpt().run(lru, prob, cfg.with_caches_scaled(1, 2));

  // Compare with the closed form and the Loomis-Whitney lower bound.
  const auto params = shared_opt_params(cfg.cs);
  const auto pred = predict_shared_opt(prob, cfg.p, params);
  std::printf("Shared Opt. (lambda = %lld)\n",
              static_cast<long long>(params.lambda));
  std::printf("  %-28s %12lld\n", "MS lower bound:",
              static_cast<long long>(ms_lower_bound(prob, cfg.cs)));
  std::printf("  %-28s %12lld\n", "MS formula mn+2mnz/lambda:",
              static_cast<long long>(pred.ms));
  std::printf("  %-28s %12lld   (exactly the formula)\n", "MS measured IDEAL:",
              static_cast<long long>(ideal.stats().ms()));
  std::printf("  %-28s %12lld   (within 2x of the formula)\n",
              "MS measured LRU-50:",
              static_cast<long long>(lru.stats().ms()));

  std::printf("\n  %-28s %12lld\n", "MD formula 2mnz/p+mnz/lambda:",
              static_cast<long long>(pred.md));
  std::printf("  %-28s %12lld\n", "MD measured IDEAL:",
              static_cast<long long>(ideal.stats().md()));
  std::printf("  %-28s %12lld\n", "MD measured LRU-50:",
              static_cast<long long>(lru.stats().md()));

  std::printf("\n  %-28s %12.0f\n", "Tdata IDEAL:",
              ideal.stats().tdata(cfg.sigma_s, cfg.sigma_d));
  std::printf("  %-28s %12.0f\n", "Tdata LRU-50:",
              lru.stats().tdata(cfg.sigma_s, cfg.sigma_d));
  return 0;
}
