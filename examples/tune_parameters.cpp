// Explore how the paper's tile parameters react to the machine geometry:
// lambda/mu across the paper's cache configurations, and the Tradeoff's
// (alpha, beta) as the bandwidth ratio sweeps — Section 3.3's analysis,
// made executable.
//
//   $ ./tune_parameters
#include <cstdio>

#include "multicore_mm.hpp"

int main() {
  using namespace mcmm;

  std::printf("Tile parameters for the paper's quad-core configurations\n");
  std::printf("(8 MB shared / 4 x 256 KB private, 8-byte coefficients)\n\n");
  std::printf("%4s %10s %6s %8s %6s %6s\n", "q", "data", "CS", "lambda", "CD",
              "mu");
  for (const std::int64_t q : {std::int64_t{32}, std::int64_t{64}, std::int64_t{80}}) {
    for (const double frac : {2.0 / 3.0, 0.5}) {
      const MachineConfig cfg = MachineConfig::realistic_quadcore(q, frac);
      std::printf("%4lld %9.0f%% %6lld %8lld %6lld %6lld\n",
                  static_cast<long long>(q), frac * 100,
                  static_cast<long long>(cfg.cs),
                  static_cast<long long>(shared_opt_params(cfg.cs).lambda),
                  static_cast<long long>(cfg.cd),
                  static_cast<long long>(max_reuse_parameter(cfg.cd)));
    }
  }

  std::printf("\nTradeoff parameters vs bandwidth ratio r = sigmaS/(sigmaS+sigmaD)\n");
  std::printf("(CS=977, CD=21: alpha clamps to [sqrt(p)*mu, alpha_max] and\n");
  std::printf(" snaps to the sqrt(p)*mu grid; beta = (CS - alpha^2)/(2 alpha))\n\n");
  std::printf("%6s %10s %7s %6s %22s\n", "r", "alpha_num", "alpha", "beta",
              "regime");
  MachineConfig base;
  base.p = 4;
  base.cs = 977;
  base.cd = 21;
  for (int i = 0; i <= 10; ++i) {
    const double r = i / 10.0;
    const MachineConfig cfg = base.with_bandwidth_ratio(r);
    const TradeoffParams t = tradeoff_params(cfg);
    const char* regime = t.persistent_c() ? "distributed-like"
                         : t.alpha + 2 >= t.alpha_max ? "shared-like"
                                                      : "intermediate";
    std::printf("%6.2f %10.2f %7lld %6lld %22s\n", r, t.alpha_num,
                static_cast<long long>(t.alpha),
                static_cast<long long>(t.beta), regime);
  }

  std::printf("\nPredicted Tdata of the three Maximum Reuse variants, order 96,\n");
  std::printf("r sweeping (the crossover the Tradeoff is designed to track):\n\n");
  const Problem prob = Problem::square(96);
  std::printf("%6s %14s %14s %14s\n", "r", "shared-opt", "dist-opt",
              "tradeoff");
  for (int i = 0; i <= 10; ++i) {
    const double r = i / 10.0;
    const MachineConfig cfg = base.with_bandwidth_ratio(r);
    const auto so = predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
    const auto dopt =
        predict_distributed_opt(prob, cfg.p, distributed_opt_params(cfg));
    const auto to = predict_tradeoff(prob, cfg.p, tradeoff_params(cfg));
    std::printf("%6.2f %14.0f %14.0f %14.0f\n", r,
                so.tdata(cfg.sigma_s, cfg.sigma_d),
                dopt.tdata(cfg.sigma_s, cfg.sigma_d),
                to.tdata(cfg.sigma_s, cfg.sigma_d));
  }
  return 0;
}
