// Solve a dense linear system A x = b with the LU extension: factor with
// the blocked multithreaded routine, validate the factors, solve, and
// check the residual — plus a look at what the cache simulator says about
// the two LU schedules on the same problem.
//
//   $ ./linear_solver [--n 512] [--q 32] [--workers 4]
#include <chrono>
#include <cmath>
#include <cstdio>

#include "multicore_mm.hpp"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmm;

  CliParser cli;
  cli.add_option("n", "system size in coefficients", "512");
  cli.add_option("q", "tile size in coefficients", "32");
  cli.add_option("workers", "thread count", "4");
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t n = cli.integer("n");
  const std::int64_t q = cli.integer("q");
  const int workers = static_cast<int>(cli.integer("workers"));

  // Build a well-conditioned system with a known solution.
  const Matrix a = diagonally_dominant_matrix(n, 99);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] =
        std::cos(0.1 * static_cast<double>(i));
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i)] +=
          a.at(i, j) * x_true[static_cast<std::size_t>(j)];
    }
  }

  std::printf("factor %lldx%lld (q = %lld, %d workers)\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(q), workers);

  Matrix lu_seq = a;
  double t0 = now_seconds();
  lu_factor_blocked(lu_seq, q);
  std::printf("  sequential blocked LU: %.3fs, residual %.2e\n",
              now_seconds() - t0, lu_residual(a, lu_seq));

  Matrix lu_par = a;
  ThreadPool pool(workers);
  t0 = now_seconds();
  parallel_lu_factor(lu_par, q, pool);
  std::printf("  parallel tiled LU:     %.3fs, residual %.2e\n",
              now_seconds() - t0, lu_residual(a, lu_par));

  const std::vector<double> x = lu_solve(lu_par, b);
  double worst = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::fabs(x[static_cast<std::size_t>(i)] -
                                      x_true[static_cast<std::size_t>(i)]));
  }
  std::printf("  solve:                 max |x - x_true| = %.2e\n\n", worst);

  // What would this factorization cost in cache misses on the paper's
  // quad-core?  (n/q blocks per side.)
  const std::int64_t nb = (n + q - 1) / q;
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  Machine right(cfg, Policy::kLru);
  simulate_lu_right_looking(right, nb);
  Machine left(cfg, Policy::kLru);
  const std::int64_t width = lu_panel_width(cfg, nb);
  simulate_lu_left_looking(left, nb, width);
  std::printf("simulated on the paper's quad-core (%lld blocks per side):\n",
              static_cast<long long>(nb));
  std::printf("  right-looking:              MS = %lld, MD = %lld\n",
              static_cast<long long>(right.stats().ms()),
              static_cast<long long>(right.stats().md()));
  std::printf("  left-looking (panel %lld):    MS = %lld, MD = %lld\n",
              static_cast<long long>(width),
              static_cast<long long>(left.stats().ms()),
              static_cast<long long>(left.stats().md()));
  return 0;
}
