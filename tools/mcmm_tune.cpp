// Kernel autotuning: search the micro-kernel registry x k-panel depth x
// prefetch/streaming knobs on the live host and persist the winner into
// the mcmm-machine-v1 profile's optional "kernel_tuning" section.
//
//   $ mcmm_tune --machine machine.json            # tune in place
//   $ mcmm_tune --json tuned.json                 # fresh profile + tuning
//   $ mcmm_tune --quick --json tuned.json         # CI smoke (sub-second)
//   $ mcmm_tune --order 1024 --repeats 5          # slower, steadier search
//
// With --machine the profile is loaded first (its topology/bandwidth are
// kept) and rewritten with the new tuning; otherwise the host is
// calibrated topology-only (no bandwidth sweep — kernel tuning does not
// need it) into a fresh profile.  Every consumer of --machine
// (mcmm_run, mcmm_serve, bench_gemm, the batch engine) then inherits the
// tuned kernel, prefetch distances, streaming policy, and k-panel depth
// (tiling() re-derives lambda/mu/alpha/beta at the tuned depth).
//
// The search itself is src/tune/autotune.hpp: stage 1 register-tile
// shape x kc, stage 2 micro-kernel prefetch grid, stage 3 pack prefetch
// + streaming toggle, each candidate scored by the median of --repeats
// timed gemm_micro runs.
#include <cstdio>

#include "gemm/microkernel.hpp"
#include "hw/machine_profile.hpp"
#include "hw/topology.hpp"
#include "tune/autotune.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("machine",
                 "mcmm-machine-v1 profile to tune and rewrite in place", "");
  cli.add_option("json",
                 "write the tuned profile here (defaults to --machine; "
                 "stdout when neither is given)",
                 "");
  cli.add_option("order", "problem order the candidates are timed at", "512");
  cli.add_option("repeats", "timed repeats per candidate (median)", "3");
  cli.add_option("kernel",
                 "restrict the search to one dispatch name, e.g. "
                 "avx2-fma-4x8 (default: every kernel this host can run)",
                 "");
  cli.add_flag("quick", "small order / pruned grid (CI smoke)");
  cli.add_flag("trials", "print every timed candidate, not just the winner");
  if (!cli.parse(argc, argv)) return 0;

  MachineProfile profile;
  if (!cli.str("machine").empty()) {
    profile = load_machine_profile(cli.str("machine"));
  } else {
    profile.topology = detect_host_topology();
  }

  std::printf("kernels this host can run:");
  for (const MicroKernel& k : all_micro_kernels()) std::printf(" %s", k.name);
  std::printf("\n");
  if (!avx512_kernel_available()) {
    std::printf("avx512: %s\n", avx512_unavailable_reason().c_str());
  }

  tune::TuneOptions opts;
  opts.order = cli.integer("order");
  opts.repeats = static_cast<int>(cli.integer("repeats"));
  opts.quick = cli.flag("quick");
  opts.only_kernel = cli.str("kernel");

  std::printf("tuning, %d repeats per candidate%s...\n", opts.repeats,
              opts.quick ? " (quick)" : "");
  std::fflush(stdout);
  const tune::TuneReport report = tune::autotune_kernel(opts);
  std::printf("timed at order %lld\n", static_cast<long long>(report.order));

  if (cli.flag("trials")) {
    std::printf("%-18s %5s %4s %4s %5s %7s %10s %9s\n", "kernel", "kc", "pfa",
                "pfb", "packp", "stream", "ms", "GFLOP/s");
    for (const tune::TuneTrial& t : report.trials) {
      std::printf("%-18s %5lld %4lld %4lld %5lld %7s %10.3f %9.2f\n",
                  t.kernel.c_str(), static_cast<long long>(t.kc),
                  static_cast<long long>(t.prefetch_a),
                  static_cast<long long>(t.prefetch_b),
                  static_cast<long long>(t.pack_prefetch),
                  t.stream_stores ? "on" : "off", t.ms, t.gflops);
    }
  }

  const KernelTuning& best = report.best;
  std::printf("winner: %s kc=%lld prefetch a/b=%lld/%lld pack=%lld "
              "stream=%s — %.2f GFLOP/s (%zu candidates)\n",
              best.kernel.c_str(), static_cast<long long>(best.kc),
              static_cast<long long>(best.prefetch_a),
              static_cast<long long>(best.prefetch_b),
              static_cast<long long>(best.pack_prefetch),
              best.stream_stores ? "on" : "off", best.gflops,
              report.trials.size());

  profile.kernel_tuning = best;
  const Tiling t = profile.tiling();
  std::printf("tiling at tuned depth: q=%lld lambda=%lld mu=%lld "
              "alpha=%lld beta=%lld\n",
              static_cast<long long>(t.q), static_cast<long long>(t.lambda),
              static_cast<long long>(t.mu), static_cast<long long>(t.alpha),
              static_cast<long long>(t.beta));

  std::string out = cli.str("json");
  if (out.empty()) out = cli.str("machine");
  if (!out.empty()) {
    save_machine_profile(profile, out);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::printf("%s\n", machine_profile_to_json(profile).c_str());
  }
  return 0;
}
