// The universal experiment driver: run any schedule on any machine
// geometry under any setting and print every statistic, as a table or as
// JSON (for scripting sweeps beyond the bundled benches).
//
//   $ mcmm_run --algorithm tradeoff --m 48 --n 48 --z 48 --setting lru50
//   $ mcmm_run --algorithm distributed-opt --cs 245 --cd 6 --json
//   $ mcmm_run --algorithm shared-opt --audit
//   $ mcmm_run --algorithm tradeoff --orders 16,32,48 --jobs 4 --json
//   $ mcmm_run --algorithm tradeoff --machine machine.json
//   $ mcmm_run --list
//
// With --machine FILE the machine geometry defaults come from a calibrated
// mcmm-machine-v1 profile (tools/mcmm_calibrate), so the simulated machine
// is the measured host; explicit --p/--cs/--cd/--sigma-* flags override
// individual fields.
//
// With --orders (a comma-separated list of square orders) the tool switches
// to sweep mode: the points run through the parallel sweep engine
// (--jobs workers, bit-identical output for every worker count) and --json
// emits the mcmm-bench-v1 report document instead of the single-run object.
//
// With --audit the invariant auditor (src/verify) rides along: cache
// capacities, hierarchy inclusion, per-step write races and the Section 2.3
// lower bounds are machine-checked, and violations fail the run (exit 1).
#include <cstdio>
#include <cstdlib>

#include "alg/registry.hpp"
#include "analysis/bounds.hpp"
#include "exp/bench_report.hpp"
#include "exp/experiment.hpp"
#include "exp/figure_options.hpp"
#include "exp/sweep_runner.hpp"
#include "hw/affinity.hpp"
#include "hw/machine_profile.hpp"
#include "hw/topology.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "verify/invariant_auditor.hpp"

using namespace mcmm;

namespace {

Setting parse_setting(const std::string& s) {
  if (s == "ideal") return Setting::kIdeal;
  if (s == "lru50") return Setting::kLru50;
  if (s == "lru") return Setting::kLruFull;
  if (s == "lru2x") return Setting::kLruDouble;
  throw Error("unknown setting: " + s + " (ideal|lru50|lru|lru2x)");
}

std::vector<std::int64_t> parse_orders(const std::string& list) {
  std::vector<std::int64_t> orders;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(pos, comma - pos);
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    MCMM_REQUIRE(end != token.c_str() && *end == '\0' && v >= 1,
                 "--orders: bad order '" + token +
                     "' (expected a comma-separated list of integers >= 1)");
    orders.push_back(v);
    pos = comma + 1;
  }
  MCMM_REQUIRE(!orders.empty(), "--orders: empty list");
  return orders;
}

int run_sweep(const std::string& algorithm,
              const std::vector<std::int64_t>& orders,
              const MachineConfig& cfg, Setting setting, int jobs, bool json,
              bool pin, const std::string& trace_path, bool trace_summary) {
  SweepRunner runner(jobs);
  if (pin) {
    const HostTopology topo = detect_host_topology();
    if (topo.detected()) runner.set_pin_cpus(affinity_cpus(topo, jobs));
  }
  const bool tracing = !trace_path.empty() || trace_summary;
  ExecutionTracer tracer(jobs);
  if (tracing) runner.set_tracer(&tracer);
  struct Row {
    std::size_t ms, md, tdata;
  };
  std::vector<Row> rows;
  for (const std::int64_t order : orders) {
    const SweepPoint point = SweepPoint::square(algorithm, order, cfg, setting);
    rows.push_back(Row{runner.request(point, Metric::kMs),
                       runner.request(point, Metric::kMd),
                       runner.request(point, Metric::kTdata)});
  }
  runner.run();

  SeriesTable table("order");
  const auto s_ms = table.add_series("MS");
  const auto s_md = table.add_series("MD");
  const auto s_tdata = table.add_series("Tdata");
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const auto x = static_cast<double>(orders[i]);
    table.set(s_ms, x, runner.value(rows[i].ms));
    table.set(s_md, x, runner.value(rows[i].md));
    table.set(s_tdata, x, runner.value(rows[i].tdata));
  }

  const std::string title = algorithm + " sweep | " + cfg.describe() + " | " +
                            to_string(setting);
  if (json) {
    BenchReport report("mcmm_run");
    report.add_table(title, table);
    for (std::size_t sim = 0; sim < runner.num_simulations(); ++sim) {
      const RunResult& res = runner.result(sim);
      report.add_point(runner.simulation(sim), static_cast<double>(res.ms),
                       static_cast<double>(res.md), res.tdata,
                       runner.wall_ms(sim));
    }
    report.set_requests(runner.num_requests(), runner.cache_hits());
    report.set_timing(runner.jobs(), runner.total_wall_ms(),
                      runner.serial_wall_ms());
    if (tracing) {
      report.set_trace_summary(trace_summary_json(summarize_trace(tracer)));
    }
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("# %s\n", title.c_str());
    table.print_pretty();
    if (trace_summary) print_trace_summary(summarize_trace(tracer));
  }
  if (!trace_path.empty()) {
    write_chrome_trace(tracer, trace_path);
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("json", "machine-readable output");
  cli.add_flag("audit", "run the invariant auditor; violations exit 1");
  cli.add_flag("pin",
               "pin sweep workers to distinct L2 domains (no-op without "
               "detected topology)");
  cli.add_flag("list", "list the available schedules and exit");
  cli.add_option("algorithm", "schedule to run (see --list)", "tradeoff");
  cli.add_option("m", "block-rows of A and C", "48");
  cli.add_option("n", "block-cols of B and C", "48");
  cli.add_option("z", "inner dimension in blocks", "48");
  cli.add_option("p", "core count", "4");
  cli.add_option("cs", "shared-cache capacity in blocks", "977");
  cli.add_option("cd", "distributed-cache capacity in blocks", "21");
  cli.add_option("sigma-s", "memory->shared bandwidth", "1.0");
  cli.add_option("sigma-d", "shared->distributed bandwidth", "1.0");
  cli.add_option("setting", "ideal | lru50 | lru | lru2x", "lru50");
  cli.add_option("machine",
                 "mcmm-machine-v1 profile (mcmm_calibrate --json); supplies "
                 "p/cs/cd/sigma defaults, explicit flags override",
                 "");
  cli.add_option("orders", "comma-separated square orders: sweep mode", "");
  cli.add_option("jobs", "sweep worker threads (0 = hardware concurrency)",
                 "0");
  cli.add_option("trace",
                 "sweep mode: write a Chrome trace-event JSON of the sweep "
                 "workers here",
                 "");
  cli.add_flag("trace-summary",
               "sweep mode: per-worker phase summary (table output, or "
               "embedded under timing.trace with --json)");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.flag("list")) {
    for (const auto& name : extended_algorithm_names()) {
      const AlgorithmPtr alg = make_algorithm(name);
      std::printf("%-26s %s%s\n", name.c_str(), alg->label().c_str(),
                  alg->supports_ideal() ? "" : "  (LRU only)");
    }
    return 0;
  }

  MachineConfig cfg;
  if (cli.is_set("machine")) {
    // The calibrated host is the baseline; explicit flags still win so a
    // profile can be perturbed one parameter at a time.
    cfg = load_machine_profile(cli.str("machine")).machine_config();
    if (cli.is_set("p")) cfg.p = static_cast<int>(cli.integer("p"));
    if (cli.is_set("cs")) cfg.cs = cli.integer("cs");
    if (cli.is_set("cd")) cfg.cd = cli.integer("cd");
    if (cli.is_set("sigma-s")) cfg.sigma_s = cli.real("sigma-s");
    if (cli.is_set("sigma-d")) cfg.sigma_d = cli.real("sigma-d");
  } else {
    cfg.p = static_cast<int>(cli.integer("p"));
    cfg.cs = cli.integer("cs");
    cfg.cd = cli.integer("cd");
    cfg.sigma_s = cli.real("sigma-s");
    cfg.sigma_d = cli.real("sigma-d");
  }
  const Problem prob{cli.integer("m"), cli.integer("n"), cli.integer("z")};
  const Setting setting = parse_setting(cli.str("setting"));
  const std::string algorithm = cli.str("algorithm");

  if (cli.is_set("orders")) {
    const std::int64_t jobs_raw = cli.integer("jobs");
    MCMM_REQUIRE(!(cli.is_set("jobs") && jobs_raw < 1),
                 "--jobs must be >= 1 (omit it for hardware concurrency)");
    const int jobs =
        jobs_raw >= 1 ? static_cast<int>(jobs_raw) : default_sweep_jobs();
    return run_sweep(algorithm, parse_orders(cli.str("orders")), cfg, setting,
                     jobs, cli.flag("json"), cli.flag("pin"),
                     cli.str("trace"), cli.flag("trace-summary"));
  }
  MCMM_REQUIRE(!cli.is_set("trace") && !cli.flag("trace-summary"),
               "--trace/--trace-summary require sweep mode (--orders)");

  const bool audit = cli.flag("audit");
  AuditReport report;
  const RunResult res =
      audit ? run_audited_experiment(algorithm, prob, cfg, setting, &report)
            : run_experiment(algorithm, prob, cfg, setting);
  const auto& st = res.stats;

  if (cli.flag("json")) {
    JsonWriter w;
    w.begin_object()
        .kv("algorithm", algorithm)
        .kv("setting", to_string(setting))
        .key("problem")
        .begin_object()
        .kv("m", prob.m)
        .kv("n", prob.n)
        .kv("z", prob.z)
        .kv("fmas", prob.fmas())
        .end_object()
        .key("machine")
        .begin_object()
        .kv("p", cfg.p)
        .kv("cs", cfg.cs)
        .kv("cd", cfg.cd)
        .kv("sigma_s", cfg.sigma_s)
        .kv("sigma_d", cfg.sigma_d)
        .end_object()
        .kv("ms", res.ms)
        .kv("md", res.md)
        .kv("tdata", res.tdata)
        .kv("tdata_with_writebacks",
            st.tdata_with_writebacks(cfg.sigma_s, cfg.sigma_d))
        .kv("ccr_shared", st.ccr_shared())
        .kv("ccr_distributed", st.ccr_distributed())
        .kv("shared_hits", st.shared_hits)
        .kv("writebacks_to_memory", st.writebacks_to_memory)
        .kv("writebacks_to_shared", st.writebacks_to_shared)
        .kv("ms_lower_bound", ms_lower_bound(prob, cfg.cs))
        .kv("md_lower_bound", md_lower_bound(prob, cfg.p, cfg.cd));
    if (audit) {
      w.key("audit")
          .begin_object()
          .kv("clean", report.clean())
          .kv("violations", report.total())
          .kv("steps", report.steps)
          .kv("accesses", report.accesses)
          .end_object();
    }
    w.key("per_core").begin_array();
    for (std::size_t c = 0; c < st.dist_misses.size(); ++c) {
      w.begin_object()
          .kv("misses", st.dist_misses[c])
          .kv("hits", st.dist_hits[c])
          .kv("writebacks", st.wb_to_shared_per_core[c])
          .kv("fmas", st.fmas[c])
          .end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    if (audit && !report.clean()) {
      std::fprintf(stderr, "%s", report.summary().c_str());
      return 1;
    }
    return 0;
  }

  std::printf("%s on %s blocks | %s | %s\n", algorithm.c_str(),
              prob.describe().c_str(), cfg.describe().c_str(),
              to_string(setting));
  std::printf("  %-26s %14lld   (bound %.0f)\n", "shared misses MS",
              static_cast<long long>(res.ms), ms_lower_bound(prob, cfg.cs));
  std::printf("  %-26s %14lld   (bound %.0f)\n", "distributed misses MD",
              static_cast<long long>(res.md),
              md_lower_bound(prob, cfg.p, cfg.cd));
  std::printf("  %-26s %14.0f\n", "Tdata (loads only)", res.tdata);
  std::printf("  %-26s %14.0f\n", "Tdata (with write-backs)",
              st.tdata_with_writebacks(cfg.sigma_s, cfg.sigma_d));
  std::printf("  %-26s %14.4f / %.4f\n", "CCR shared / distributed",
              st.ccr_shared(), st.ccr_distributed());
  for (std::size_t c = 0; c < st.dist_misses.size(); ++c) {
    std::printf("  core %zu: %lld misses, %lld hits, %lld write-backs, "
                "%lld FMAs\n",
                c, static_cast<long long>(st.dist_misses[c]),
                static_cast<long long>(st.dist_hits[c]),
                static_cast<long long>(st.wb_to_shared_per_core[c]),
                static_cast<long long>(st.fmas[c]));
  }
  if (audit) {
    std::printf("  %s\n", report.summary().c_str());
    if (!report.clean()) return 1;
  }
  return 0;
}
