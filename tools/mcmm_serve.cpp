// mcmm_serve — the GEMM-as-a-service daemon.
//
// Owns one GemmServer (pinned ThreadPool + per-worker KernelContext +
// bounded MPMC admission ring) and exposes it two ways:
//
//   --self-test N   in-process traffic generator: N products spread over
//                   --tenants concurrent client threads, then the
//                   mcmm-serve-v1 stats document on stdout.  Exits
//                   non-zero when any request fails — the no-socket
//                   smoke path for CI and ctest.
//
//   --socket PATH   listen on a Unix domain socket with a newline text
//                   protocol (one request per line, one JSON reply line):
//
//                     gemm <tenant> <m> <n> <z> <schedule> <seed>
//                         operands are generated server-side with the
//                         deterministic fill (SplitMix64 on <seed>), so
//                         the wire stays tiny; the reply carries a
//                         checksum of C for cross-run comparison
//                     batch <tenant> <count> <m> <n> <z> [shared_b] [seed]
//                         a server-side generated batch of <count>
//                         independent m x n x z products admitted as ONE
//                         unit through submit_batch; shared_b=1 gives
//                         every product the same B operand so the packed
//                         panels amortise.  The reply carries the
//                         per-bucket breakdown and a checksum over all C
//                     lu <tenant> <n> [q] [seed]
//                         in-place LU factorization of a server-side
//                         generated diagonally dominant n x n matrix
//                         through the kernel-routed parallel_lu_factor;
//                         q=0 (the default) inherits the tenant
//                         partition's tiling.  The reply carries the
//                         resolved q, the trace phase summary (factor /
//                         trsm / pack / micro-kernel), and a checksum of
//                         the packed factors
//                     stats      -> the mcmm-serve-v1 document
//                     ping       -> liveness probe
//                     shutdown   -> drain, reply, exit
//
// Each connection is served by its own thread, so two clients on two
// sockets ARE two tenants in flight: the server re-derives the partition
// of CS and each request's tiling from the live tenant count.
//
// The machine model defaults to the host topology (sysfs) and can be
// pinned down with --machine (an mcmm-calibrate profile) or explicit
// --shared-cache/--private-cache byte overrides.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "gemm/matrix.hpp"
#include "hw/affinity.hpp"
#include "lu/lu_kernel.hpp"
#include "hw/machine_profile.hpp"
#include "hw/topology.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using mcmm::Matrix;
using mcmm::serve::GemmRequest;
using mcmm::serve::GemmResponse;
using mcmm::serve::GemmServer;
using mcmm::serve::ScheduleKind;

double checksum(const Matrix& m) {
  double sum = 0;
  const double* p = m.data();
  const std::int64_t n = m.rows() * m.cols();
  for (std::int64_t i = 0; i < n; ++i) sum += p[i];
  return sum;
}

std::string response_json(const GemmResponse& r, double sum) {
  mcmm::JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::int64_t>(r.id));
  w.kv("tenant", r.tenant);
  w.kv("ok", r.ok);
  if (!r.ok) w.kv("error", r.error);
  w.kv("schedule", mcmm::serve::to_string(r.schedule));
  w.kv("active_tenants", r.active_tenants);
  w.kv("lambda", r.tiling.lambda);
  w.kv("queue_ms", r.queue_ms);
  w.kv("exec_ms", r.exec_ms);
  w.kv("checksum", sum);
  w.end_object();
  return w.str();
}

/// Generate the request operands and run it; the reply is one JSON line.
std::string handle_gemm_line(GemmServer& server, const std::string& line) {
  int tenant = 0;
  long long m = 0, n = 0, z = 0;
  char schedule_buf[32] = "auto";
  unsigned long long seed = 1;
  const int fields =
      std::sscanf(line.c_str(), "gemm %d %lld %lld %lld %31s %llu", &tenant,
                  &m, &n, &z, schedule_buf, &seed);
  if (fields < 4 || m < 1 || n < 1 || z < 1 || m > 8192 || n > 8192 ||
      z > 8192) {
    return R"({"ok":false,"error":"usage: gemm <tenant> <m> <n> <z> [schedule] [seed]"})";
  }
  GemmRequest req;
  req.tenant = tenant;
  try {
    req.schedule = mcmm::serve::parse_schedule_kind(schedule_buf);
  } catch (const mcmm::Error& e) {
    return std::string(R"({"ok":false,"error":")") +
           mcmm::json_escape(e.what()) + "\"}";
  }
  Matrix a(m, z), b(z, n), c(m, n);
  a.fill_random(seed);
  b.fill_random(seed + 1);
  req.a = &a;
  req.b = &b;
  req.c = &c;
  const GemmResponse resp = server.run(req);
  return response_json(resp, resp.ok ? checksum(c) : 0.0);
}

/// Generate a whole batch server-side and run it through submit_batch;
/// the reply is one JSON line with the per-bucket breakdown.
std::string handle_batch_line(GemmServer& server, const std::string& line) {
  int tenant = 0;
  long long count = 0, m = 0, n = 0, z = 0;
  int shared_b = 0;
  unsigned long long seed = 1;
  const int fields = std::sscanf(line.c_str(),
                                 "batch %d %lld %lld %lld %lld %d %llu",
                                 &tenant, &count, &m, &n, &z, &shared_b,
                                 &seed);
  if (fields < 5 || count < 1 || count > 65536 || m < 1 || n < 1 || z < 1 ||
      m > 1024 || n > 1024 || z > 1024) {
    return R"({"ok":false,"error":"usage: batch <tenant> <count> <m> <n> <z> [shared_b 0|1] [seed]"})";
  }
  std::vector<std::unique_ptr<Matrix>> storage;
  mcmm::serve::BatchGemmRequest req;
  req.tenant = tenant;
  Matrix* shared = nullptr;
  if (shared_b != 0) {
    storage.push_back(std::make_unique<Matrix>(z, n));
    storage.back()->fill_random(seed);
    shared = storage.back().get();
  }
  for (long long i = 0; i < count; ++i) {
    storage.push_back(std::make_unique<Matrix>(m, z));
    storage.back()->fill_random(seed + 2 * static_cast<unsigned long long>(i) + 1);
    Matrix* a = storage.back().get();
    Matrix* b = shared;
    if (b == nullptr) {
      storage.push_back(std::make_unique<Matrix>(z, n));
      storage.back()->fill_random(seed + 2 * static_cast<unsigned long long>(i) + 2);
      b = storage.back().get();
    }
    storage.push_back(std::make_unique<Matrix>(m, n, 0.0));
    req.products.push_back(
        mcmm::batch::BatchProduct{storage.back().get(), a, b});
  }
  const mcmm::serve::BatchGemmResponse resp = server.run_batch(req);
  double sum = 0;
  if (resp.ok) {
    for (const mcmm::batch::BatchProduct& p : req.products) {
      sum += checksum(*p.c);
    }
  }
  mcmm::JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::int64_t>(resp.id));
  w.kv("tenant", resp.tenant);
  w.kv("ok", resp.ok);
  if (!resp.ok) w.kv("error", resp.error);
  w.kv("products", resp.products);
  w.kv("queue_ms", resp.queue_ms);
  w.kv("exec_ms", resp.exec_ms);
  w.kv("products_per_sec", resp.products_per_sec);
  w.key("buckets").begin_array();
  for (const mcmm::batch::BucketStats& bucket : resp.buckets) {
    w.begin_object();
    w.kv("m", bucket.shape.m);
    w.kv("n", bucket.shape.n);
    w.kv("k", bucket.shape.k);
    w.kv("strategy", mcmm::batch::to_string(bucket.strategy));
    w.kv("shared_b", bucket.shared_b);
    w.kv("products", bucket.products);
    w.end_object();
  }
  w.end_array();
  w.kv("checksum", sum);
  w.end_object();
  return w.str();
}

/// Generate a diagonally dominant matrix server-side and factor it
/// through the `lu` verb; the reply is one JSON line with the resolved
/// block size, the trace phase summary, and a factor checksum.
std::string handle_lu_line(GemmServer& server, const std::string& line) {
  int tenant = 0;
  long long n = 0, q = 0;
  unsigned long long seed = 1;
  const int fields = std::sscanf(line.c_str(), "lu %d %lld %lld %llu",
                                 &tenant, &n, &q, &seed);
  if (fields < 2 || n < 1 || n > 8192 || q < 0 || q > 8192) {
    return R"({"ok":false,"error":"usage: lu <tenant> <n> [q] [seed]"})";
  }
  Matrix a = mcmm::diagonally_dominant_matrix(n, seed);
  mcmm::serve::LuRequest req;
  req.tenant = tenant;
  req.a = &a;
  req.q = q;
  const mcmm::serve::LuResponse resp = server.run_lu(req);
  mcmm::JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::int64_t>(resp.id));
  w.kv("tenant", resp.tenant);
  w.kv("ok", resp.ok);
  if (!resp.ok) w.kv("error", resp.error);
  w.kv("n", resp.n);
  w.kv("q", resp.q);
  w.kv("active_tenants", resp.active_tenants);
  w.kv("queue_ms", resp.queue_ms);
  w.kv("exec_ms", resp.exec_ms);
  w.key("trace").begin_object();
  w.kv("wall_ms", resp.trace.wall_ms);
  w.kv("pack_a_ms", resp.trace.pack_a_ms);
  w.kv("pack_b_ms", resp.trace.pack_b_ms);
  w.kv("micro_kernel_ms", resp.trace.micro_kernel_ms);
  w.kv("barrier_ms", resp.trace.barrier_ms);
  w.kv("trsm_ms", resp.trace.trsm_ms);
  w.kv("factor_ms", resp.trace.factor_ms);
  w.kv("other_ms", resp.trace.other_ms);
  w.kv("spans", resp.trace.spans);
  w.end_object();
  w.kv("checksum", resp.ok ? checksum(a) : 0.0);
  w.end_object();
  return w.str();
}

int run_self_test(GemmServer& server, int requests, int tenants,
                  std::int64_t order) {
  std::vector<std::thread> clients;
  std::vector<int> failures(static_cast<std::size_t>(tenants), 0);
  for (int t = 0; t < tenants; ++t) {
    clients.emplace_back([&server, &failures, t, requests, tenants, order] {
      const int mine = requests / tenants + (t < requests % tenants ? 1 : 0);
      Matrix a(order, order), b(order, order), c(order, order);
      a.fill_random(11 + static_cast<std::uint64_t>(t));
      b.fill_random(29 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < mine; ++i) {
        c.set_zero();
        GemmRequest req;
        req.tenant = t;
        req.a = &a;
        req.b = &b;
        req.c = &c;
        const GemmResponse resp = server.run(req);
        if (!resp.ok) {
          std::fprintf(stderr, "mcmm_serve: tenant %d request failed: %s\n",
                       t, resp.error.c_str());
          ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  server.shutdown();
  std::printf("%s\n", server.stats_json().c_str());
  int failed = 0;
  for (int f : failures) failed += f;
  return failed == 0 ? 0 : 1;
}

#ifdef __linux__
/// One connection = one client loop; `gemm` lines block in server.run, so
/// concurrent connections are concurrent tenants.  A `shutdown` command
/// shuts the listener down too, unblocking the accept loop.
void serve_connection(GemmServer& server, int fd, int listener,
                      std::atomic<bool>& stop) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t newline = buffer.find('\n');
    while (newline == std::string::npos) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got <= 0) {
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(got));
      newline = buffer.find('\n');
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    std::string reply;
    bool last = false;
    if (line.rfind("gemm", 0) == 0) {
      reply = handle_gemm_line(server, line);
    } else if (line.rfind("batch", 0) == 0) {
      reply = handle_batch_line(server, line);
    } else if (line.rfind("lu", 0) == 0) {
      reply = handle_lu_line(server, line);
    } else if (line == "stats") {
      reply = server.stats_json();
    } else if (line == "ping") {
      reply = R"({"ok":true,"pong":true})";
    } else if (line == "shutdown") {
      reply = R"({"ok":true,"shutdown":true})";
      last = true;
    } else if (line.empty()) {
      continue;
    } else {
      reply = R"({"ok":false,"error":"unknown command"})";
    }
    reply.push_back('\n');
    ssize_t off = 0;
    while (off < static_cast<ssize_t>(reply.size())) {
      const ssize_t put =
          ::write(fd, reply.data() + off, reply.size() - static_cast<std::size_t>(off));
      if (put <= 0) break;
      off += put;
    }
    if (last) {
      stop.store(true);
      ::shutdown(listener, SHUT_RDWR);
      ::close(fd);
      return;
    }
  }
}

int run_socket_server(GemmServer& server, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("mcmm_serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "mcmm_serve: socket path too long\n");
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("mcmm_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::printf("mcmm_serve: listening on %s\n", path.c_str());
  std::fflush(stdout);

  std::vector<std::thread> handlers;
  std::atomic<bool> stop{false};
  while (!stop.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;  // listener shut down by a `shutdown` command
    handlers.emplace_back([&server, fd, listener, &stop] {
      serve_connection(server, fd, listener, stop);
    });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (std::thread& h : handlers) h.join();
  server.shutdown();
  std::printf("%s\n", server.stats_json().c_str());
  return 0;
}
#endif  // __linux__

}  // namespace

int main(int argc, char** argv) {
  mcmm::CliParser cli;
  cli.add_option("workers", "pool workers (default: machine/topology p)", "2");
  cli.add_option("queue", "request ring capacity (power of two)", "64");
  cli.add_option("max-tenants", "tenant slots (CS partitioned for 1..k)", "4");
  cli.add_option("q", "block side in coefficients", "64");
  cli.add_option("shared-cache", "shared cache bytes (0 = detect)", "0");
  cli.add_option("private-cache", "per-core cache bytes (0 = detect)", "0");
  cli.add_option("machine", "mcmm-machine-v1 profile to serve with", "");
  cli.add_option("kernel", "micro-kernel path: auto|scalar|simd", "auto");
  cli.add_flag("pin", "pin workers across private-cache domains");
  cli.add_option("socket", "listen on this Unix domain socket path", "");
  cli.add_option("self-test", "serve N in-process requests and exit", "0");
  cli.add_option("tenants", "concurrent client threads for --self-test", "2");
  cli.add_option("order", "matrix order for --self-test products", "192");

  try {
    if (!cli.parse(argc, argv)) return 0;

    GemmServer::Config config;
    config.workers = static_cast<int>(cli.integer("workers"));
    config.queue_capacity =
        static_cast<std::size_t>(cli.integer("queue"));
    config.max_tenants = static_cast<int>(cli.integer("max-tenants"));
    config.q = cli.integer("q");
    config.kernel = mcmm::parse_kernel_path(cli.str("kernel"));

    mcmm::HostTopology topo;
    if (!cli.str("machine").empty()) {
      const mcmm::MachineProfile profile =
          mcmm::load_machine_profile(cli.str("machine"));
      topo = profile.topology;
      const mcmm::MachineConfig mc = profile.machine_config();
      if (!cli.is_set("workers")) config.workers = mc.p;
      if (!cli.is_set("q")) config.q = profile.q;
      config.sigma_s = mc.sigma_s;
      config.sigma_d = mc.sigma_d;
      config.kernel_tuning = profile.kernel_tuning;
    } else {
      topo = mcmm::detect_host_topology();
    }
    config.shared_cache_bytes = cli.integer("shared-cache") > 0
                                    ? cli.integer("shared-cache")
                                    : topo.shared_cache_bytes();
    config.private_cache_bytes = cli.integer("private-cache") > 0
                                     ? cli.integer("private-cache")
                                     : topo.private_cache_bytes();
    if (cli.flag("pin")) {
      config.pin_cpus = mcmm::affinity_cpus(topo, config.workers);
    }

    GemmServer server(config);
    std::fprintf(stderr,
                 "mcmm_serve: %d workers (%d pinned), kernel %s, queue %zu, "
                 "%d tenant slots\n",
                 server.workers(), server.pinned_workers(),
                 server.dispatch_name().c_str(), server.queue_capacity(),
                 server.max_tenants());

    const int self_test = static_cast<int>(cli.integer("self-test"));
    if (self_test > 0) {
      const int tenants = std::max(
          1, std::min(static_cast<int>(cli.integer("tenants")),
                      server.max_tenants()));
      return run_self_test(server, self_test, tenants, cli.integer("order"));
    }

    const std::string socket_path = cli.str("socket");
    if (!socket_path.empty()) {
#ifdef __linux__
      return run_socket_server(server, socket_path);
#else
      std::fprintf(stderr, "mcmm_serve: --socket requires Linux\n");
      return 2;
#endif
    }

    std::fprintf(stderr,
                 "mcmm_serve: nothing to do (pass --socket PATH or "
                 "--self-test N)\n");
    return 2;
  } catch (const mcmm::Error& e) {
    std::fprintf(stderr, "mcmm_serve: %s\n", e.what());
    return 2;
  }
}
