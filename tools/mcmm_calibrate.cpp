// Host calibration: produce the mcmm-machine-v1 profile this machine
// corresponds to in the paper's model.
//
//   $ mcmm_calibrate --json machine.json          # full calibration
//   $ mcmm_calibrate --no-counters --json machine.json
//   $ mcmm_calibrate --quick --no-bandwidth       # topology only, stdout
//
// Steps (each independently degradable, exit code stays 0):
//   1. topology    — sysfs cache hierarchy (fallback: hardware_concurrency
//                    + the paper's 8 MB / 256 KB quad-core defaults);
//   2. counters    — probe perf_event_open; records availability and the
//                    kernel.perf_event_paranoid level, never requires it;
//   3. bandwidth   — streaming sweeps for the sigma_S/sigma_D ratio
//                    (--no-bandwidth skips, --quick shrinks);
//   4. derivation  — MachineConfig (p, CS, CD, sigmas) and Tiling
//                    (lambda, mu, alpha, beta) for the chosen q and
//                    declared data fraction.
//
// The profile is consumed via --machine by mcmm_run, bench_gemm and
// ext_model_vs_hw; schema documented in docs/calibration.md.
#include <cstdio>

#include "hw/bandwidth.hpp"
#include "hw/machine_profile.hpp"
#include "hw/perf_counters.hpp"
#include "hw/topology.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("no-counters", "skip the perf-counter probe (forced degraded)");
  cli.add_flag("no-bandwidth", "skip the bandwidth sweeps (symmetric sigma)");
  cli.add_flag("quick", "smaller bandwidth buffers / fewer repeats (CI)");
  cli.add_option("json", "write the mcmm-machine-v1 profile here", "");
  cli.add_option("q", "block side in coefficients for the derivation", "32");
  cli.add_option("data-fraction",
                 "fraction of each private cache available to data "
                 "(paper: 2/3 optimistic, 1/2 pessimistic)",
                 "0.66666666666666663");
  cli.add_option("sysfs", "override the sysfs cpu root (testing)",
                 "/sys/devices/system/cpu");
  if (!cli.parse(argc, argv)) return 0;

  MachineProfile profile;
  profile.q = cli.integer("q");
  profile.data_fraction = cli.real("data-fraction");
  MCMM_REQUIRE(profile.q >= 1, "--q must be >= 1");
  MCMM_REQUIRE(profile.data_fraction > 0 && profile.data_fraction <= 1,
               "--data-fraction must be in (0, 1]");

  std::printf("[1/3] topology: ");
  profile.topology = detect_host_topology(cli.str("sysfs"));
  std::printf("%s\n", profile.topology.describe().c_str());

  std::printf("[2/3] counters: ");
  profile.perf_event_paranoid = PerfCounterSession::perf_event_paranoid();
  if (cli.flag("no-counters")) {
    std::printf("skipped (--no-counters)\n");
  } else {
    const PerfCounterSession probe;
    profile.counters_available = probe.counters_available();
    if (probe.counters_available()) {
      std::printf("available\n");
    } else {
      std::printf("unavailable — %s\n", probe.degradation_reason().c_str());
    }
  }

  std::printf("[3/3] bandwidth: ");
  if (cli.flag("no-bandwidth")) {
    std::printf("skipped (--no-bandwidth)\n");
  } else {
    std::fflush(stdout);
    BandwidthOptions opt;
    opt.quick = cli.flag("quick");
    profile.bandwidth = measure_host_bandwidth(profile.topology, opt);
    std::printf("mem %.2f GB/s (%lld MiB), llc %.2f GB/s (%lld KiB), "
                "r=%.3f\n",
                profile.bandwidth.mem_gbs,
                static_cast<long long>(profile.bandwidth.mem_buffer_bytes >>
                                       20),
                profile.bandwidth.llc_gbs,
                static_cast<long long>(profile.bandwidth.llc_buffer_bytes >>
                                       10),
                profile.bandwidth.sigma_ratio());
  }

  std::printf("\n%s\n", profile.describe().c_str());
  const Tiling t = profile.tiling();
  std::printf("tiling (blocks): lambda=%lld mu=%lld alpha=%lld beta=%lld\n",
              static_cast<long long>(t.lambda), static_cast<long long>(t.mu),
              static_cast<long long>(t.alpha), static_cast<long long>(t.beta));

  const std::string path = cli.str("json");
  if (!path.empty()) {
    save_machine_profile(profile, path);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\n%s\n", machine_profile_to_json(profile).c_str());
  }
  return 0;
}
