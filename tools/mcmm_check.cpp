// mcmm_check — deterministic concurrency model checker driver.
//
// Runs the registered scenario suites (src/check/scenarios.cpp) through
// the CHESS-style explorer: exhaustive preemption-bounded search plus
// optional seeded random walks.  Scenarios marked as expected failures
// (the seeded-mutation self-tests) must be *flagged* — the tool exits
// non-zero when a mutation comes back green, so the race detector can
// never rot into vacuous silence.
//
//   mcmm_check --list
//   mcmm_check                          # whole suite, bound 2 + random
//   mcmm_check --scenario ring/mpmc --bound 3
//   mcmm_check --scenario pool/run-batch --random 20000 --seed 7
//   mcmm_check --scenario ring/racy-publish --replay 0,1,1,0
//
// Exit status: 0 = every scenario behaved as expected, 1 = a scenario
// failed (unexpected failure, or an expected mutation not flagged),
// 2 = usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "check/model_checker.hpp"
#include "check/scenarios.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using mcmm::check::ExploreOptions;
using mcmm::check::ExploreResult;
using mcmm::check::Failure;
using mcmm::check::FailureKind;
using mcmm::check::Scenario;

void print_failure(const Failure& failure) {
  std::printf("    kind: %s\n", mcmm::check::to_string(failure.kind));
  std::printf("    message: %s\n", failure.message.c_str());
  std::printf("    schedule: %s\n", failure.schedule.c_str());
  std::printf("    interleaving (replay with --replay %s):\n",
              failure.schedule.c_str());
  for (std::size_t i = 0; i < failure.interleaving.size(); ++i) {
    std::printf("      %3zu. %s\n", i, failure.interleaving[i].c_str());
  }
}

/// Runs one scenario through exploration; returns true when its outcome
/// matches its expectation.
bool run_scenario(const Scenario& scenario, const ExploreOptions& opts,
                  std::uint64_t random_iterations) {
  std::printf("[%s] %s\n", scenario.name.c_str(),
              scenario.description.c_str());
  ExploreResult result = mcmm::check::explore(scenario.fn, opts);
  std::uint64_t explored = result.schedules_explored;
  if (!result.failure && random_iterations > 0) {
    ExploreOptions random_opts = opts;
    random_opts.random_iterations = random_iterations;
    ExploreResult random_result =
        mcmm::check::explore_random(scenario.fn, random_opts);
    explored += random_result.schedules_explored;
    if (random_result.failure) result = random_result;
  }

  const char* coverage = result.exhausted
                             ? "exhausted"
                             : (result.hit_schedule_cap ? "schedule-cap"
                                                        : "partial");
  if (scenario.expect == FailureKind::kNone) {
    if (result.failure) {
      std::printf("  FAIL after %llu schedules (%s):\n",
                  static_cast<unsigned long long>(explored), coverage);
      print_failure(result.failure);
      return false;
    }
    std::printf("  ok: %llu schedules (%s), no failure\n",
                static_cast<unsigned long long>(explored), coverage);
    return true;
  }

  // Mutation self-test: the checker must flag this scenario.
  if (!result.failure) {
    std::printf(
        "  FAIL: expected a %s failure but %llu schedules (%s) came back "
        "green — the detector is blind to this mutation\n",
        mcmm::check::to_string(scenario.expect),
        static_cast<unsigned long long>(explored), coverage);
    return false;
  }
  if (result.failure.kind != scenario.expect) {
    std::printf("  FAIL: expected %s, got:\n",
                mcmm::check::to_string(scenario.expect));
    print_failure(result.failure);
    return false;
  }
  std::printf("  ok: flagged as expected (%s) after %llu schedules\n",
              mcmm::check::to_string(result.failure.kind),
              static_cast<unsigned long long>(explored));
  std::printf("  minimized interleaving:\n");
  for (const std::string& line : result.failure.interleaving) {
    std::printf("    %s\n", line.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mcmm::CliParser cli;
  cli.add_flag("list", "list registered scenarios and exit");
  cli.add_option("scenario", "run only this scenario (default: all)", "");
  cli.add_option("bound", "preemption bound for exhaustive exploration", "2");
  cli.add_option("max-schedules",
                 "cap on exhaustively explored schedules (0 = unlimited)",
                 "200000");
  cli.add_option("max-steps", "per-run step cap (livelock guard)", "20000");
  cli.add_option("random",
                 "extra seeded random schedules per scenario (0 = off)",
                 "1000");
  cli.add_option("seed", "seed for the random exploration", "1");
  cli.add_option("replay",
                 "replay one recorded schedule (requires --scenario)", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    mcmm::check::register_builtin_scenarios();

    if (cli.flag("list")) {
      for (const Scenario& s : mcmm::check::scenario_registry()) {
        std::printf("%-28s %s%s\n", s.name.c_str(), s.description.c_str(),
                    s.expect == FailureKind::kNone
                        ? ""
                        : (std::string(" [expects ") +
                           mcmm::check::to_string(s.expect) + "]")
                              .c_str());
      }
      return 0;
    }

    const std::string only = cli.str("scenario");
    const std::string replay_schedule = cli.str("replay");

    if (!replay_schedule.empty()) {
      if (only.empty()) {
        std::fprintf(stderr, "mcmm_check: --replay requires --scenario\n");
        return 2;
      }
      const Scenario* scenario = mcmm::check::find_scenario(only);
      if (scenario == nullptr) {
        std::fprintf(stderr, "mcmm_check: unknown scenario '%s'\n",
                     only.c_str());
        return 2;
      }
      const auto outcome = mcmm::check::replay(
          scenario->fn, replay_schedule,
          static_cast<std::uint64_t>(cli.integer("max-steps")));
      std::printf("[%s] replay of %s\n", scenario->name.c_str(),
                  replay_schedule.c_str());
      if (outcome.failure) {
        print_failure(outcome.failure);
      } else {
        std::printf("    no failure on this schedule\n");
      }
      return 0;
    }

    ExploreOptions opts;
    opts.preemption_bound = static_cast<int>(cli.integer("bound"));
    opts.max_schedules =
        static_cast<std::uint64_t>(cli.integer("max-schedules"));
    opts.max_steps_per_run =
        static_cast<std::uint64_t>(cli.integer("max-steps"));
    opts.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    const auto random_iterations =
        static_cast<std::uint64_t>(cli.integer("random"));

    int failures = 0;
    int ran = 0;
    for (const Scenario& s : mcmm::check::scenario_registry()) {
      if (!only.empty() && s.name != only) continue;
      ++ran;
      if (!run_scenario(s, opts, random_iterations)) ++failures;
    }
    if (ran == 0) {
      std::fprintf(stderr, "mcmm_check: no scenario matches '%s'\n",
                   only.c_str());
      return 2;
    }
    std::printf("%d/%d scenarios behaved as expected\n", ran - failures, ran);
    return failures == 0 ? 0 : 1;
  } catch (const mcmm::Error& e) {
    std::fprintf(stderr, "mcmm_check: %s\n", e.what());
    return 2;
  }
}
