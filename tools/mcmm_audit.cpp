// Schedule auditor CLI: run a schedule (or replay a recorded trace) with
// the invariant auditor attached and report every violation with step/core/
// block provenance.  Exit code 0 = all invariants hold, 1 = violations.
//
//   # audit a schedule end to end (capacity, inclusion, races, bounds)
//   $ mcmm_audit --algorithm tradeoff --m 48 --n 48 --z 48 --setting lru50
//
//   # record the audited run, then re-audit the exact access stream later
//   $ mcmm_audit --algorithm shared-opt --save-trace run.trc
//   $ mcmm_audit --trace run.trc --p 4 --cs 977 --cd 21
//
//   # tighten the capacity limits to audit a declared footprint
//   $ mcmm_audit --algorithm tradeoff --limit-cs 900
//
// Trace replay runs under LRU and checks capacity, inclusion and (when the
// trace carries step markers) write races; the Loomis-Whitney bound checks
// need FMA counts, which traces do not carry, so they apply only to the
// --algorithm mode.
#include <cstdio>
#include <optional>

#include "alg/registry.hpp"
#include "exp/experiment.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "verify/invariant_auditor.hpp"

using namespace mcmm;

namespace {

Setting parse_setting(const std::string& s) {
  if (s == "ideal") return Setting::kIdeal;
  if (s == "lru50") return Setting::kLru50;
  if (s == "lru") return Setting::kLruFull;
  if (s == "lru2x") return Setting::kLruDouble;
  throw Error("unknown setting: " + s + " (ideal|lru50|lru|lru2x)");
}

void print_report(const AuditReport& report, bool json) {
  if (json) {
    JsonWriter w;
    w.begin_object()
        .kv("clean", report.clean())
        .kv("violations", report.total())
        .kv("steps", report.steps)
        .kv("accesses", report.accesses);
    if (report.bounds_checked) {
      w.kv("ms_measured", report.ms_measured)
          .kv("ms_bound", report.ms_bound)
          .kv("md_measured", report.md_measured)
          .kv("md_bound", report.md_bound);
    }
    w.key("by_kind").begin_object();
    for (int k = 0; k < kViolationKinds; ++k) {
      w.kv(to_string(static_cast<ViolationKind>(k)), report.count_by_kind[k]);
    }
    w.end_object().key("recorded").begin_array();
    for (const Violation& v : report.violations) w.value(v.str());
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    return;
  }
  std::printf("%s\n", report.summary().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("json", "machine-readable output");
  cli.add_flag("list", "list the available schedules and exit");
  cli.add_option("algorithm", "schedule to audit (see --list)", "tradeoff");
  cli.add_option("trace", "replay and audit a saved trace instead", "");
  cli.add_option("save-trace", "record the audited run to this file", "");
  cli.add_option("m", "block-rows of A and C", "48");
  cli.add_option("n", "block-cols of B and C", "48");
  cli.add_option("z", "inner dimension in blocks", "48");
  cli.add_option("p", "core count", "4");
  cli.add_option("cs", "shared-cache capacity in blocks", "977");
  cli.add_option("cd", "distributed-cache capacity in blocks", "21");
  cli.add_option("setting", "ideal | lru50 | lru | lru2x", "lru50");
  cli.add_option("limit-cs", "audit limit on shared occupancy (0 = CS)", "0");
  cli.add_option("limit-cd", "audit limit on distributed occupancy (0 = CD)",
                 "0");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.flag("list")) {
    for (const auto& name : extended_algorithm_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  MachineConfig cfg;
  cfg.p = static_cast<int>(cli.integer("p"));
  cfg.cs = cli.integer("cs");
  cfg.cd = cli.integer("cd");
  AuditLimits limits;
  limits.cs = cli.integer("limit-cs");
  limits.cd = cli.integer("limit-cd");
  const bool json = cli.flag("json");

  if (!cli.str("trace").empty()) {
    // Replay mode: the trace drives an LRU machine of the given geometry;
    // step markers recorded by TraceRecorder restore race provenance.
    const Trace trace = Trace::load(cli.str("trace"));
    cfg.validate();
    Machine machine(cfg, Policy::kLru);
    InvariantAuditor auditor(machine, limits);
    trace.replay(machine);
    machine.flush();
    auditor.finalize_without_bounds();
    if (!json) {
      const TraceStats ts = trace.stats();
      std::printf("replayed %lld accesses / %lld steps from %s\n",
                  static_cast<long long>(ts.accesses),
                  static_cast<long long>(ts.steps),
                  cli.str("trace").c_str());
    }
    print_report(auditor.report(), json);
    return auditor.report().clean() ? 0 : 1;
  }

  // Schedule mode: full audit, including the Section 2.3 bound checks.
  // Custom limits re-run the machine directly since run_audited_experiment
  // audits against the physical geometry.
  const Problem prob{cli.integer("m"), cli.integer("n"), cli.integer("z")};
  const std::string algorithm = cli.str("algorithm");
  const Setting setting = parse_setting(cli.str("setting"));

  AuditReport report;
  Trace trace;
  const bool want_trace = !cli.str("save-trace").empty();
  if (limits.cs > 0 || limits.cd > 0) {
    prob.validate();
    cfg.validate();
    Machine machine(cfg, setting == Setting::kIdeal ? Policy::kIdeal
                                                    : Policy::kLru);
    InvariantAuditor auditor(machine, limits);
    std::optional<TraceRecorder> recorder;
    if (want_trace) recorder.emplace(machine, trace);
    make_algorithm(algorithm)->run(machine, prob, cfg);
    machine.flush();
    auditor.finalize(prob);
    report = auditor.report();
  } else {
    run_audited_experiment(algorithm, prob, cfg, setting, &report,
                           want_trace ? &trace : nullptr);
  }

  if (want_trace) {
    trace.save(cli.str("save-trace"));
    if (!json) {
      std::printf("trace saved to %s (%zu events)\n",
                  cli.str("save-trace").c_str(), trace.size());
    }
  }
  if (!json) {
    std::printf("%s on %s blocks | %s | %s\n", algorithm.c_str(),
                prob.describe().c_str(), cfg.describe().c_str(),
                cli.str("setting").c_str());
  }
  print_report(report, json);
  return report.clean() ? 0 : 1;
}
