#!/usr/bin/env bash
# Run clang-tidy over the project's first-party sources (src/, tools/,
# bench/) using a build tree's compile_commands.json and the checked-in
# .clang-tidy.  Any finding fails the script (WarningsAsErrors: '*').
#
#   scripts/run_clang_tidy.sh [build-dir]     # default build dir: ./build
#
# Override the binary with CLANG_TIDY=clang-tidy-18 etc.  The build dir must
# have been configured by CMake (compile_commands.json is always exported).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: '$TIDY' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json missing; run cmake -B $BUILD_DIR first" >&2
  exit 2
fi

SOURCES=()
while IFS= read -r f; do
  SOURCES+=("$f")
done < <(find src tools bench -name '*.cpp' | sort)

echo "clang-tidy ($("$TIDY" --version | head -n 1)) over ${#SOURCES[@]} files"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "clang-tidy: clean"
