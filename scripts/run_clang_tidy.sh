#!/usr/bin/env bash
# Run clang-tidy over the project's first-party sources (src/, tools/,
# bench/) using a build tree's compile_commands.json and the checked-in
# .clang-tidy.  Any finding fails the script (WarningsAsErrors: '*').
#
#   scripts/run_clang_tidy.sh [build-dir]     # default build dir: ./build
#
# Override the binary with CLANG_TIDY=clang-tidy-18 etc.  The build dir must
# have been configured by CMake (compile_commands.json is always exported).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: '$TIDY' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "error: $DB missing — configure the build tree first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

SOURCES=()
while IFS= read -r f; do
  SOURCES+=("$f")
done < <(find src tools bench -name '*.cpp' | sort)

# Fail fast on a stale database rather than letting clang-tidy lint a TU
# with wrong or missing flags.  Two staleness signals: a first-party .cpp
# that the database has never heard of (added after the last configure),
# and a CMakeLists.txt newer than the database (targets or flags changed).
STALE=0
for f in "${SOURCES[@]}"; do
  if ! grep -qF "/$f\"" "$DB"; then
    echo "error: $f is not in $DB (added after the last configure?)" >&2
    STALE=1
  fi
done
while IFS= read -r cml; do
  if [ "$cml" -nt "$DB" ]; then
    echo "error: $cml is newer than $DB" >&2
    STALE=1
  fi
done < <(find CMakeLists.txt src tools bench tests -name 'CMakeLists.txt')
if [ "$STALE" -ne 0 ]; then
  echo "error: $DB is stale — re-run cmake to refresh it:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

echo "clang-tidy ($("$TIDY" --version | head -n 1)) over ${#SOURCES[@]} files"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "clang-tidy: clean"
