#!/usr/bin/env bash
# Regenerate every paper figure, ablation and extension table into
# results/, plus the test log.  Pass --full to use the paper's sweep
# ranges (slow: an hour-plus instead of minutes).
set -euo pipefail

cd "$(dirname "$0")/.."
FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/tests.txt

for bench in build/bench/fig* build/bench/abl* build/bench/ext*; do
  name="$(basename "$bench")"
  echo "== ${name}"
  # Figure sweeps understand --full; parameterised ablations ignore it.
  if "$bench" --help 2>/dev/null | grep -q -- '--full'; then
    "$bench" ${FULL_FLAG} | tee "results/${name}.txt"
    "$bench" ${FULL_FLAG} --csv > "results/${name}.csv"
  else
    "$bench" | tee "results/${name}.txt"
    "$bench" --csv > "results/${name}.csv"
  fi
done

./build/bench/bench_simulator 2>&1 | tee results/bench_simulator.txt
./build/bench/bench_gemm 2>&1 | tee results/bench_gemm.txt

echo "All outputs in results/ — plot CSVs with scripts/plot_figures.py"
