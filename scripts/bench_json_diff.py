#!/usr/bin/env python3
"""Diff two mcmm-bench-v1 reports, ignoring the nondeterministic subtree.

The schema splits every report into a deterministic "results" subtree
(tables, points, memo accounting — identical bytes for every --jobs value)
and a "timing" subtree (wall times, speedup — different on every run).
The sweep-parity CI job runs a bench twice, serially and with
--jobs $(nproc), and uses this script to assert the "results" subtrees
match exactly:

    scripts/bench_json_diff.py BENCH_fig09_serial.json BENCH_fig09.json

Exit status 0 on a match; 1 with a pinpointed path on the first mismatch.
"""
import json
import sys


def first_difference(a, b, path="results"):
    """Return a human-readable path to the first mismatch, or None."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        if list(a.keys()) != list(b.keys()):
            return f"{path}: keys {sorted(a)} != {sorted(b)}"
        for key in a:
            diff = first_difference(a[key], b[key], f"{path}.{key}")
            if diff:
                return diff
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = first_difference(x, y, f"{path}[{i}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    docs = []
    for arg in sys.argv[1:3]:
        with open(arg) as f:
            doc = json.load(f)
        if doc.get("schema") != "mcmm-bench-v1":
            print(f"{arg}: not an mcmm-bench-v1 document")
            return 2
        docs.append(doc)
    diff = first_difference(docs[0]["results"], docs[1]["results"])
    if diff:
        print(f"results subtrees differ — {diff}")
        return 1
    print("results subtrees are identical (timing ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
