#!/usr/bin/env python3
"""Plot the tables produced by the bench binaries (or reproduce.sh).

Two input formats, chosen by extension:

  *.csv   — the benches' --csv output: a comment line starting with '# '
            titles each table, the next line is the CSV header (x axis
            first), and the following lines are rows.
  *.json  — the benches' --json output (schema mcmm-bench-v1, see
            docs/benchmarking.md): every table under results.tables is
            rendered; null cells are skipped like empty CSV cells.

This script renders every table in a file (or directory of .csv/.json
files) as a PNG, one series per line, matching the paper's figure layout.

    scripts/plot_figures.py results/            # all tables -> results/*.png
    scripts/plot_figures.py results/fig07_shared_misses.csv
    scripts/plot_figures.py results/BENCH_fig09.json

Requires matplotlib; prints a hint and exits cleanly if it is missing.
"""
import json
import os
import sys


def parse_tables(path):
    """Yield (title, header, rows) for each table in a bench CSV file."""
    tables = []
    title = os.path.basename(path)
    header = None
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if header and rows:
                    tables.append((title, header, rows))
                    header, rows = None, []
                title = line.lstrip("# ").strip()
                continue
            cells = line.split(",")
            if header is None:
                header = cells
                continue
            try:
                rows.append([float(c) if c else None for c in cells])
            except ValueError:
                # A new header mid-file (table without a title comment).
                if header and rows:
                    tables.append((title, header, rows))
                header, rows = cells, []
    if header and rows:
        tables.append((title, header, rows))
    return tables


def parse_tables_json(path):
    """Yield (title, header, rows) for each table in an mcmm-bench-v1 file."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "mcmm-bench-v1":
        raise ValueError(f"{path}: not an mcmm-bench-v1 document")
    tables = []
    for table in doc["results"]["tables"]:
        header = [table["x_label"]] + list(table["series"])
        rows = [[row["x"]] + list(row["values"]) for row in table["rows"]]
        tables.append((table["title"], header, rows))
    return tables


def plot_file(path, plt):
    if path.endswith(".json"):
        tables = parse_tables_json(path)
    else:
        tables = parse_tables(path)
    base = os.path.splitext(path)[0]
    outputs = []
    for idx, (title, header, rows) in enumerate(tables):
        fig, ax = plt.subplots(figsize=(8, 5))
        xs = [r[0] for r in rows]
        for col in range(1, len(header)):
            ys = [r[col] if col < len(r) else None for r in rows]
            pts = [(x, y) for x, y in zip(xs, ys) if y is not None]
            if not pts:
                continue
            ax.plot([p[0] for p in pts], [p[1] for p in pts],
                    marker="o", markersize=3, label=header[col])
        ax.set_xlabel(header[0])
        ax.set_title(title, fontsize=9)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        suffix = f"_{idx}" if len(tables) > 1 else ""
        out = f"{base}{suffix}.png"
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        outputs.append(out)
    return outputs


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available — the CSV tables in results/ are "
              "plain series tables; any plotting tool can render them.")
        return 0

    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    target = sys.argv[1]
    paths = []
    if os.path.isdir(target):
        paths = [os.path.join(target, f) for f in sorted(os.listdir(target))
                 if f.endswith(".csv") or f.endswith(".json")]
    else:
        paths = [target]
    for path in paths:
        for out in plot_file(path, plt):
            print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
