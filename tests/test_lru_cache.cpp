#include "sim/lru_cache.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>

namespace mcmm {
namespace {

BlockId blk(std::int64_t i) { return BlockId::a(i, 0); }

TEST(LruCache, InsertAndTouch) {
  LruCache c(3);
  EXPECT_FALSE(c.touch(blk(1)));
  EXPECT_FALSE(c.insert(blk(1), false).has_value());
  EXPECT_TRUE(c.touch(blk(1)));
  EXPECT_TRUE(c.contains(blk(1)));
  EXPECT_EQ(c.size(), 1);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(3);
  c.insert(blk(1), false);
  c.insert(blk(2), false);
  c.insert(blk(3), false);
  const auto evicted = c.insert(blk(4), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block, blk(1));
  EXPECT_FALSE(c.contains(blk(1)));
  EXPECT_TRUE(c.contains(blk(4)));
}

TEST(LruCache, TouchPromotes) {
  LruCache c(3);
  c.insert(blk(1), false);
  c.insert(blk(2), false);
  c.insert(blk(3), false);
  ASSERT_TRUE(c.touch(blk(1)));  // 1 becomes MRU; 2 is now LRU
  const auto evicted = c.insert(blk(4), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block, blk(2));
  EXPECT_TRUE(c.contains(blk(1)));
}

TEST(LruCache, DirtyFlagTravelsWithEviction) {
  LruCache c(2);
  c.insert(blk(1), true);
  c.insert(blk(2), false);
  const auto e1 = c.insert(blk(3), false);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->block, blk(1));
  EXPECT_TRUE(e1->dirty);
  const auto e2 = c.insert(blk(4), false);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->block, blk(2));
  EXPECT_FALSE(e2->dirty);
}

TEST(LruCache, MarkDirty) {
  LruCache c(2);
  c.insert(blk(1), false);
  EXPECT_FALSE(c.is_dirty(blk(1)));
  c.mark_dirty(blk(1));
  EXPECT_TRUE(c.is_dirty(blk(1)));
}

TEST(LruCache, EraseReturnsDirtiness) {
  LruCache c(4);
  c.insert(blk(1), true);
  c.insert(blk(2), false);
  const auto d1 = c.erase(blk(1));
  ASSERT_TRUE(d1.has_value());
  EXPECT_TRUE(*d1);
  const auto d2 = c.erase(blk(2));
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(*d2);
  EXPECT_FALSE(c.erase(blk(3)).has_value()) << "absent block";
  EXPECT_EQ(c.size(), 0);
}

TEST(LruCache, LruBlockPeek) {
  LruCache c(3);
  EXPECT_FALSE(c.lru_block().has_value());
  c.insert(blk(1), false);
  c.insert(blk(2), false);
  EXPECT_EQ(*c.lru_block(), blk(1));
  c.touch(blk(1));
  EXPECT_EQ(*c.lru_block(), blk(2));
}

TEST(LruCache, ContentsMruOrder) {
  LruCache c(3);
  c.insert(blk(1), false);
  c.insert(blk(2), false);
  c.insert(blk(3), false);
  c.touch(blk(2));
  const auto contents = c.contents_mru_order();
  ASSERT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents[0], blk(2));
  EXPECT_EQ(contents[1], blk(3));
  EXPECT_EQ(contents[2], blk(1));
}

TEST(LruCache, ClearResets) {
  LruCache c(2);
  c.insert(blk(1), true);
  c.clear();
  EXPECT_EQ(c.size(), 0);
  EXPECT_FALSE(c.contains(blk(1)));
  c.insert(blk(2), false);
  c.insert(blk(3), false);
  EXPECT_EQ(c.size(), 2);
}

TEST(LruCache, CapacityOneBehaves) {
  LruCache c(1);
  c.insert(blk(1), false);
  const auto e = c.insert(blk(2), false);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->block, blk(1));
  EXPECT_TRUE(c.contains(blk(2)));
  EXPECT_EQ(c.size(), 1);
}

// Differential test against a simple deque-based LRU model.
TEST(LruCache, StressAgainstReferenceModel) {
  constexpr std::int64_t kCap = 16;
  LruCache c(kCap);
  std::deque<std::int64_t> order;  // front = MRU
  std::unordered_map<std::int64_t, bool> dirty;
  std::uint64_t rng = 99;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto model_touch = [&](std::int64_t k) {
    for (auto it = order.begin(); it != order.end(); ++it) {
      if (*it == k) {
        order.erase(it);
        order.push_front(k);
        return true;
      }
    }
    return false;
  };
  for (int step = 0; step < 100000; ++step) {
    const std::int64_t key = static_cast<std::int64_t>(next() % 48);
    const bool write = next() % 4 == 0;
    const bool hit = model_touch(key);
    ASSERT_EQ(c.touch(blk(key)), hit) << "step " << step;
    if (!hit) {
      std::optional<LruCache::Evicted> expect_evict;
      if (static_cast<std::int64_t>(order.size()) == kCap) {
        const std::int64_t victim = order.back();
        order.pop_back();
        expect_evict = LruCache::Evicted{blk(victim), dirty[victim]};
        dirty.erase(victim);
      }
      order.push_front(key);
      dirty[key] = write;
      const auto evicted = c.insert(blk(key), write);
      ASSERT_EQ(evicted.has_value(), expect_evict.has_value());
      if (evicted) {
        EXPECT_EQ(evicted->block, expect_evict->block);
        EXPECT_EQ(evicted->dirty, expect_evict->dirty);
      }
    } else if (write) {
      c.mark_dirty(blk(key));
      dirty[key] = true;
    }
    ASSERT_EQ(c.size(), static_cast<std::int64_t>(order.size()));
  }
}

}  // namespace
}  // namespace mcmm
