// Randomised (seeded, deterministic) consistency fuzzing: many random
// machine geometries x problem shapes x settings, each checked against
// the library's cross-cutting invariants.  This is the wide net behind
// the targeted suites — any schedule/simulator inconsistency that slips
// past the formula tests should land here.
#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "analysis/bounds.hpp"
#include "exp/experiment.hpp"
#include "test_helpers.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace.hpp"
#include "util/math.hpp"

namespace mcmm {
namespace {

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::int64_t in(std::int64_t lo, std::int64_t hi) {  // inclusive
    return lo + static_cast<std::int64_t>(next() %
                                          static_cast<std::uint64_t>(hi - lo + 1));
  }
};

MachineConfig random_machine(Rng& rng) {
  MachineConfig cfg;
  const int ps[] = {1, 2, 4, 6, 8, 9, 16};
  cfg.p = ps[rng.in(0, 6)];
  cfg.cd = rng.in(3, 40);
  // Ensure inclusivity plus slack for every grid schedule's staging
  // needs, including the Tradeoff's minimal alpha = mu * lcm(r, c) tile.
  const std::int64_t mu = max_reuse_parameter(cfg.cd);
  const Grid grid = balanced_grid(cfg.p);
  const std::int64_t grain = mu * lcm(grid.r, grid.c);
  std::int64_t floor = std::max<std::int64_t>(
      cfg.p * cfg.cd, cfg.p * mu * mu + 2 * cfg.p * mu + 2 * cfg.p);
  floor = std::max(floor, grain * grain + 2 * grain);
  cfg.cs = floor + rng.in(0, 400);
  return cfg;
}

Problem random_problem(Rng& rng) {
  return Problem{rng.in(1, 20), rng.in(1, 20), rng.in(1, 20)};
}

TEST(Fuzz, CoverageBoundsAndOracleAcrossRandomConfigs) {
  Rng rng{0xC0FFEE};
  const auto names = extended_algorithm_names();
  int lru_checked = 0, ideal_checked = 0;

  for (int round = 0; round < 120; ++round) {
    const MachineConfig cfg = random_machine(rng);
    const Problem prob = random_problem(rng);
    const std::string& name = names[static_cast<std::size_t>(
        rng.in(0, static_cast<std::int64_t>(names.size()) - 1))];
    const AlgorithmPtr alg = make_algorithm(name);

    // Cannon needs a square torus; the linear ablation needs r | mu.
    if (name == "cannon" && !is_perfect_square(cfg.p)) continue;
    if (name == "distributed-opt-linear") {
      const std::int64_t mu = max_reuse_parameter(cfg.cd);
      if (mu % balanced_grid(cfg.p).r != 0) continue;
    }

    const bool use_ideal = alg->supports_ideal() && rng.in(0, 1) == 1;
    SCOPED_TRACE(name + " on " + cfg.describe() + " prob " + prob.describe() +
                 (use_ideal ? " IDEAL" : " LRU"));

    Machine machine(cfg, use_ideal ? Policy::kIdeal : Policy::kLru);
    mcmm::testing::FmaCoverage coverage(machine);
    Trace trace;
    record_into(machine, trace);
    alg->run(machine, prob, cfg);

    // 1. Exactly m*n*z block FMAs, each once.
    ASSERT_TRUE(coverage.complete(prob));

    // 2. Never below the Loomis-Whitney floors.
    EXPECT_GE(static_cast<double>(machine.stats().ms()) + 1e-9,
              0.999 * ms_lower_bound(prob, cfg.cs));
    EXPECT_GE(static_cast<double>(machine.stats().md()) + 1e-9,
              0.999 * md_lower_bound(prob, cfg.p, cfg.cd));

    if (use_ideal) {
      // 3. IDEAL schedules clean up after themselves.
      machine.assert_empty();
      ++ideal_checked;
    } else {
      // 4. The reuse-distance oracle: EXACT per-core prediction when the
      // shared cache never back-invalidated a resident line.  With
      // interference the counts can move in EITHER direction (removing a
      // line early can also prevent a worse eviction later), so only the
      // isolated case is comparable.
      machine.check_inclusive();
      if (machine.stats().back_invalidations == 0) {
        const auto profiles = per_core_reuse_profiles(trace, cfg.p);
        for (int c = 0; c < cfg.p; ++c) {
          ASSERT_EQ(profiles[static_cast<std::size_t>(c)].lru_misses(cfg.cd),
                    machine.stats().dist_misses[static_cast<std::size_t>(c)])
              << "core " << c;
        }
      }
      ++lru_checked;
    }
  }
  // The sampler must actually exercise both policies substantially.
  EXPECT_GE(lru_checked, 30);
  EXPECT_GE(ideal_checked, 20);
}

TEST(Fuzz, ReplayAlwaysReproducesTheRun) {
  Rng rng{0xBEEF};
  for (int round = 0; round < 40; ++round) {
    const MachineConfig cfg = random_machine(rng);
    const Problem prob = random_problem(rng);
    const auto names = algorithm_names();
    const std::string& name = names[static_cast<std::size_t>(
        rng.in(0, static_cast<std::int64_t>(names.size()) - 1))];

    Machine original(cfg, Policy::kLru);
    Trace trace;
    record_into(original, trace);
    make_algorithm(name)->run(original, prob, cfg);

    Machine replayed(cfg, Policy::kLru);
    trace.replay(replayed);
    ASSERT_EQ(replayed.stats().ms(), original.stats().ms())
        << name << " on " << cfg.describe();
    ASSERT_EQ(replayed.stats().md(), original.stats().md());
  }
}

}  // namespace
}  // namespace mcmm
