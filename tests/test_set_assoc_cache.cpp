#include "sim/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "alg/registry.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

BlockId blk(std::int64_t i, std::int64_t j = 0) { return BlockId::a(i, j); }

std::int64_t misses_on(SetAssocCache& cache,
                       const std::vector<BlockId>& accesses) {
  std::int64_t misses = 0;
  for (BlockId b : accesses) {
    if (!cache.touch(b)) {
      ++misses;
      cache.insert(b, false);
    }
  }
  return misses;
}

TEST(SetAssocCache, ConstructionValidation) {
  EXPECT_NO_THROW(SetAssocCache(16, 4));
  EXPECT_THROW(SetAssocCache(16, 3), Error) << "ways must divide capacity";
  EXPECT_THROW(SetAssocCache(16, 0), Error);
  EXPECT_THROW(SetAssocCache(16, 32), Error);
  SetAssocCache c(16, 4);
  EXPECT_EQ(c.sets(), 4);
  EXPECT_EQ(c.ways(), 4);
}

TEST(SetAssocCache, BasicResidency) {
  SetAssocCache c(8, 2);
  EXPECT_FALSE(c.touch(blk(1)));
  c.insert(blk(1), false);
  EXPECT_TRUE(c.contains(blk(1)));
  EXPECT_TRUE(c.touch(blk(1)));
  EXPECT_EQ(c.size(), 1);
  EXPECT_TRUE(c.erase(blk(1)).has_value());
  EXPECT_EQ(c.size(), 0);
}

TEST(SetAssocCache, DirtyFlagsWork) {
  SetAssocCache c(4, 2);
  c.insert(blk(1), false);
  c.mark_dirty(blk(1));
  const auto dirty = c.erase(blk(1));
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
}

// ways == capacity is exactly one LRU set: differential test vs LruCache.
TEST(SetAssocCache, FullyAssociativeDegenerationMatchesLruCache) {
  std::uint64_t rng = 17;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<BlockId> accesses;
  for (int i = 0; i < 30000; ++i) {
    accesses.push_back(blk(static_cast<std::int64_t>(next() % 40),
                           static_cast<std::int64_t>(next() % 3)));
  }
  for (const std::int64_t cap : {1, 4, 16, 21, 64}) {
    SetAssocCache sa(cap, cap);
    LruCache lru(cap);
    std::int64_t lru_misses = 0;
    for (BlockId b : accesses) {
      if (!lru.touch(b)) {
        ++lru_misses;
        lru.insert(b, false);
      }
    }
    SetAssocCache fresh(cap, cap);
    EXPECT_EQ(misses_on(fresh, accesses), lru_misses) << "capacity " << cap;
  }
}

TEST(SetAssocCache, ConflictMissesAppearAtLowAssociativity) {
  // A working set that fits the capacity exactly: fully-associative sees
  // only cold misses on re-sweeps; low associativity conflicts.
  std::vector<BlockId> accesses;
  for (int round = 0; round < 50; ++round) {
    for (std::int64_t i = 0; i < 32; ++i) accesses.push_back(blk(i, i));
  }
  SetAssocCache full(32, 32);
  const std::int64_t full_misses = misses_on(full, accesses);
  EXPECT_EQ(full_misses, 32) << "only cold misses";

  SetAssocCache direct(32, 1);
  const std::int64_t direct_misses = misses_on(direct, accesses);
  EXPECT_GT(direct_misses, full_misses)
      << "direct-mapped: hash collisions evict live blocks";
}

TEST(SetAssocCache, FullyAssociativeSweepMatchesMachineCounters) {
  // ways == capacity replays must reproduce the machine's own per-core
  // distributed-miss counters exactly, for every schedule.
  const MachineConfig cfg = mcmm::testing::paper_quadcore();
  const Problem prob{12, 12, 12};
  for (const auto& name : algorithm_names()) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(name)->run(machine, prob, cfg);
    const Trace core0 = trace.filter_core(0);
    std::vector<BlockId> accesses;
    accesses.reserve(core0.size());
    for (std::size_t i = 0; i < core0.size(); ++i) {
      accesses.push_back(core0[i].block());
    }
    SetAssocCache exact(21, 21);
    EXPECT_EQ(misses_on(exact, accesses), machine.stats().dist_misses[0])
        << name;
  }
}

TEST(SetAssocCache, AssociativityEffectsOnScheduleTraces) {
  // Associativity is NOT universally monotone: a schedule whose working
  // set slightly exceeds the capacity (Distributed Opt.'s 1+mu+mu^2 = 21
  // blocks on a 20-block cache) thrashes cyclically under fully-
  // associative LRU, and *partitioning* into sets breaks the cycle —
  // 4-way beats fully-associative there.  Schedules with tiny working
  // sets ({a,b,c} = 3 blocks for Shared Opt.) do improve monotonically.
  const MachineConfig cfg = mcmm::testing::paper_quadcore();
  const Problem prob{24, 24, 24};
  auto core0_misses = [&](const char* name, std::int64_t ways) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(name)->run(machine, prob, cfg);
    const Trace core0 = trace.filter_core(0);
    std::vector<BlockId> accesses;
    for (std::size_t i = 0; i < core0.size(); ++i) {
      accesses.push_back(core0[i].block());
    }
    SetAssocCache cache(20, ways);
    return misses_on(cache, accesses);
  };

  // Shared Opt.: monotone improvement with associativity.
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t ways : {1, 2, 4, 20}) {
    const std::int64_t m = core0_misses("shared-opt", ways);
    EXPECT_LE(m, prev) << "shared-opt ways " << ways;
    prev = m;
  }
  // Distributed Opt.: the exact-fit pathology — moderate associativity
  // beats the fully-associative cache of the same capacity.
  EXPECT_LT(core0_misses("distributed-opt", 4),
            core0_misses("distributed-opt", 20));
}

}  // namespace
}  // namespace mcmm
