#include "trace/reuse_distance.hpp"

#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "sim/lru_cache.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

BlockId blk(std::int64_t i) { return BlockId::a(i, 0); }

TEST(ReuseDistance, HandComputedDepths) {
  ReuseDistanceAnalyzer a;
  EXPECT_EQ(a.feed(blk(1)), -1) << "cold";
  EXPECT_EQ(a.feed(blk(1)), 1) << "immediate re-access: depth 1";
  EXPECT_EQ(a.feed(blk(2)), -1);
  EXPECT_EQ(a.feed(blk(1)), 2) << "one distinct block in between";
  EXPECT_EQ(a.feed(blk(3)), -1);
  EXPECT_EQ(a.feed(blk(4)), -1);
  EXPECT_EQ(a.feed(blk(2)), 4) << "blocks 1,3,4 in between, plus itself";
  EXPECT_EQ(a.feed(blk(2)), 1);
}

TEST(ReuseDistance, RepeatedAccessesDoNotInflateDepth) {
  ReuseDistanceAnalyzer a;
  a.feed(blk(1));
  a.feed(blk(2));
  a.feed(blk(2));
  a.feed(blk(2));
  EXPECT_EQ(a.feed(blk(1)), 2)
      << "three touches of block 2 count as ONE distinct block";
}

TEST(ReuseDistance, ProfileAccounting) {
  ReuseDistanceAnalyzer a;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t i = 0; i < 4; ++i) a.feed(blk(i));
  }
  const ReuseProfile& p = a.profile();
  EXPECT_EQ(p.total, 12);
  EXPECT_EQ(p.cold, 4);
  ASSERT_GT(p.counts.size(), 4u);
  EXPECT_EQ(p.counts[4], 8) << "cyclic sweep over 4 blocks: depth always 4";
  EXPECT_EQ(p.working_set(), 4);
}

TEST(ReuseDistance, LruMissesFormula) {
  ReuseDistanceAnalyzer a;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t i = 0; i < 4; ++i) a.feed(blk(i));
  }
  const ReuseProfile& p = a.profile();
  EXPECT_EQ(p.lru_misses(4), 4) << "capacity 4 holds the whole loop";
  EXPECT_EQ(p.lru_misses(3), 12) << "capacity 3 thrashes: every access misses";
  EXPECT_EQ(p.lru_misses(100), 4);
}

// The oracle property: one reuse profile predicts the exact miss count of
// an LruCache for EVERY capacity.  Differential test on random traffic.
TEST(ReuseDistance, MatchesLruCacheForAllCapacities) {
  std::uint64_t rng = 31;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<BlockId> accesses;
  for (int i = 0; i < 20000; ++i) {
    // Mixture of hot blocks and a long tail.
    const std::int64_t id = next() % 8 == 0 ? static_cast<std::int64_t>(next() % 500)
                                            : static_cast<std::int64_t>(next() % 24);
    accesses.push_back(blk(id));
  }
  ReuseDistanceAnalyzer analyzer;
  for (BlockId b : accesses) analyzer.feed(b);
  const ReuseProfile& profile = analyzer.profile();

  for (const std::int64_t capacity : {1, 2, 3, 5, 8, 16, 24, 64, 200, 600}) {
    LruCache cache(capacity);
    std::int64_t misses = 0;
    for (BlockId b : accesses) {
      if (!cache.touch(b)) {
        ++misses;
        cache.insert(b, false);
      }
    }
    EXPECT_EQ(profile.lru_misses(capacity), misses)
        << "capacity " << capacity;
  }
}

// End-to-end: profile a schedule's per-core streams and predict each
// distributed cache's misses; compare against the machine's own counters.
// Exactness requires that the shared cache never back-invalidated a
// resident distributed line (true here: the footprint fits CS=977), so
// each private cache behaved as an isolated LRU cache over its stream.
TEST(ReuseDistance, PredictsDistributedMissesOfSchedules) {
  const Problem prob{12, 12, 12};
  const MachineConfig cfg = paper_quadcore();
  for (const auto& name : algorithm_names()) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(name)->run(machine, prob, cfg);
    ASSERT_EQ(machine.stats().back_invalidations, 0)
        << name << ": precondition for exactness";

    const auto profiles = per_core_reuse_profiles(trace, cfg.p);
    for (int c = 0; c < cfg.p; ++c) {
      EXPECT_EQ(profiles[static_cast<std::size_t>(c)].lru_misses(cfg.cd),
                machine.stats().dist_misses[static_cast<std::size_t>(c)])
          << name << " core " << c;
    }
  }
}

// When the shared cache is small enough to evict lines that are still
// resident in a distributed cache, inclusivity couples the levels and the
// isolated-cache oracle stops being exact.  The deviation can go either
// way (removing a line early can also spare a worse eviction later); this
// pinned configuration is one where the coupling COSTS misses.
TEST(ReuseDistance, InclusivityCouplingBreaksOracleExactness) {
  // The configuration the fuzzer originally caught this on: Cannon on a
  // 16-core machine whose 183-block shared cache is far smaller than the
  // problem footprint, so resident private lines keep getting
  // back-invalidated.
  MachineConfig cfg;
  cfg.p = 16;
  cfg.cs = 183;
  cfg.cd = 9;
  const Problem prob{19, 5, 9};
  Machine machine(cfg, Policy::kLru);
  Trace trace;
  record_into(machine, trace);
  make_algorithm("cannon")->run(machine, prob, cfg);
  ASSERT_GT(machine.stats().back_invalidations, 0);
  const auto profiles = per_core_reuse_profiles(trace, cfg.p);
  bool deviated = false;
  for (int c = 0; c < cfg.p; ++c) {
    const std::int64_t predicted =
        profiles[static_cast<std::size_t>(c)].lru_misses(cfg.cd);
    const std::int64_t measured =
        machine.stats().dist_misses[static_cast<std::size_t>(c)];
    deviated = deviated || measured != predicted;
    // On this pinned trace every deviation is an extra miss.
    EXPECT_GE(measured, predicted) << "core " << c;
  }
  EXPECT_TRUE(deviated)
      << "this trace is known to lose at least one line to inclusivity";
}

TEST(ReuseDistance, WorkingSetOfSchedulesIsTheirFootprintPerCore) {
  // A core's working set can never exceed the number of distinct blocks it
  // touches, and a cache that large leaves only cold misses.
  const Problem prob{8, 8, 8};
  Machine machine(paper_quadcore(), Policy::kLru);
  Trace trace;
  record_into(machine, trace);
  make_algorithm("shared-opt")->run(machine, prob, paper_quadcore());
  const Trace core0 = trace.filter_core(0);
  const ReuseProfile p = reuse_profile(core0);
  const std::int64_t footprint = core0.stats().distinct_blocks;
  EXPECT_LE(p.working_set(), footprint);
  EXPECT_EQ(p.lru_misses(std::max<std::int64_t>(footprint, 1)), p.cold);
  EXPECT_EQ(p.cold, footprint);
}

TEST(ReuseDistance, EmptyProfile) {
  ReuseDistanceAnalyzer a;
  EXPECT_EQ(a.profile().total, 0);
  EXPECT_EQ(a.profile().lru_misses(10), 0);
  EXPECT_EQ(a.profile().working_set(), 0);
}

}  // namespace
}  // namespace mcmm
