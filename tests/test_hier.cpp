// Multi-level hierarchy extension: configuration, the LRU cache tree, and
// the generalised Maximum Reuse schedule.
#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "hier/hier_config.hpp"
#include "hier/hier_machine.hpp"
#include "hier/hier_max_reuse.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

HierConfig three_level() {
  return HierConfig::cluster_of_multicores(/*cluster_cache=*/4096,
                                           /*nodes=*/4, /*node_cache=*/512,
                                           /*p=*/4, /*private_cache=*/21);
}

// ---------------------------------------------------------------------------
// HierConfig
// ---------------------------------------------------------------------------

TEST(HierConfig, FlatConversionMatchesPaperMachine) {
  const HierConfig h = HierConfig::from_flat(paper_quadcore());
  ASSERT_EQ(h.num_levels(), 2);
  EXPECT_EQ(h.levels[0].capacity, 977);
  EXPECT_EQ(h.levels[0].fanout, 4);
  EXPECT_EQ(h.levels[1].capacity, 21);
  EXPECT_EQ(h.caches_at(0), 1);
  EXPECT_EQ(h.caches_at(1), 4);
  EXPECT_EQ(h.cores(), 4);
}

TEST(HierConfig, ClusterFactoryShape) {
  const HierConfig h = three_level();
  ASSERT_EQ(h.num_levels(), 3);
  EXPECT_EQ(h.cores(), 16);
  EXPECT_EQ(h.caches_at(1), 4);
  EXPECT_EQ(h.caches_at(2), 16);
}

TEST(HierConfig, ValidationRejectsBadShapes) {
  HierConfig h = three_level();
  h.levels.back().fanout = 2;  // leaves must have fanout 1
  EXPECT_THROW(h.validate(), Error);

  h = three_level();
  h.levels[0].capacity = 100;  // < 4 * 512: inclusivity broken
  EXPECT_THROW(h.validate(), Error);

  h = three_level();
  h.levels[1].bandwidth = 0;
  EXPECT_THROW(h.validate(), Error);

  EXPECT_THROW(HierConfig{}.validate(), Error);
}

// ---------------------------------------------------------------------------
// HierMachine
// ---------------------------------------------------------------------------

// The keystone: with two levels the tree must be access-for-access
// identical to the flat Machine under LRU — replay the same traces and
// compare every counter.
TEST(HierMachine, TwoLevelsEquivalentToFlatMachine) {
  const MachineConfig flat_cfg = paper_quadcore();
  const Problem prob{14, 10, 12};
  for (const auto& name : algorithm_names()) {
    Machine flat(flat_cfg, Policy::kLru);
    Trace trace;
    record_into(flat, trace);
    make_algorithm(name)->run(flat, prob, flat_cfg);

    HierMachine tree(HierConfig::from_flat(flat_cfg));
    replay_trace(trace, tree);

    EXPECT_EQ(tree.level_stats(0).total_misses(), flat.stats().ms()) << name;
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(tree.level_stats(1).misses[static_cast<std::size_t>(c)],
                flat.stats().dist_misses[static_cast<std::size_t>(c)])
          << name << " core " << c;
    }
  }
}

TEST(HierMachine, ColdAccessMissesEveryLevel) {
  HierMachine m(three_level());
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(m.level_stats(l).total_misses(), 1) << "level " << l;
  }
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  EXPECT_EQ(m.level_stats(2).hits[0], 1);
  EXPECT_EQ(m.level_stats(1).total_misses(), 1) << "no second miss";
}

TEST(HierMachine, SiblingCoreHitsSharedAncestor) {
  HierMachine m(three_level());
  m.access(0, BlockId::b(1, 1), Rw::kRead);
  // Core 1 shares the node cache with core 0; core 4 is in another node
  // and only shares the cluster cache.
  m.access(1, BlockId::b(1, 1), Rw::kRead);
  EXPECT_EQ(m.level_stats(1).total_misses(), 1) << "node-cache hit";
  m.access(4, BlockId::b(1, 1), Rw::kRead);
  EXPECT_EQ(m.level_stats(1).total_misses(), 2) << "other node misses";
  EXPECT_EQ(m.level_stats(0).total_misses(), 1) << "cluster-cache hit";
}

TEST(HierMachine, InclusivityUnderRandomTraffic) {
  HierConfig cfg = HierConfig::cluster_of_multicores(128, 4, 24, 4, 5);
  HierMachine m(cfg);
  std::uint64_t rng = 5;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 30000; ++step) {
    const int core = static_cast<int>(next() % 16);
    const BlockId b = BlockId::c(static_cast<std::int64_t>(next() % 9),
                                 static_cast<std::int64_t>(next() % 9));
    m.access(core, b, next() % 3 == 0 ? Rw::kWrite : Rw::kRead);
    if (step % 1000 == 0) m.check_inclusive();
  }
  m.check_inclusive();
}

TEST(HierMachine, DirtyDataFoldsUpToMemory) {
  // A tiny tree (every capacity 1-ish) forces evictions through all
  // levels; dirty writes must surface as memory write-backs.
  HierConfig cfg;
  cfg.levels = {LevelSpec{2, 2, 1.0}, LevelSpec{1, 1, 1.0}};
  HierMachine m(cfg);
  m.access(0, BlockId::c(0, 0), Rw::kWrite);
  m.access(0, BlockId::c(1, 0), Rw::kRead);   // evicts dirty c(0,0) from leaf
  m.access(0, BlockId::c(2, 0), Rw::kRead);   // evicts c(0,0) from the root
  EXPECT_EQ(m.writebacks_to_memory(), 1);
}

TEST(HierMachine, TdataSumsLevels) {
  HierConfig cfg = three_level();
  cfg.levels[0].bandwidth = 2.0;
  cfg.levels[1].bandwidth = 4.0;
  cfg.levels[2].bandwidth = 8.0;
  HierMachine m(cfg);
  m.access(0, BlockId::a(0, 0), Rw::kRead);  // one miss at each level
  EXPECT_DOUBLE_EQ(m.tdata(), 1.0 / 2 + 1.0 / 4 + 1.0 / 8);
}

// ---------------------------------------------------------------------------
// Generalised Maximum Reuse
// ---------------------------------------------------------------------------

TEST(HierMaxReuse, ParamsComposeSides) {
  const HierParams p = hier_max_reuse_params(three_level());
  EXPECT_EQ(p.mu, 4);                       // capacity 21
  ASSERT_EQ(p.side.size(), 3u);
  EXPECT_EQ(p.side[2], 4);
  EXPECT_EQ(p.side[1], 8);                  // sqrt(4) * 4
  EXPECT_EQ(p.side[0], 16);                 // sqrt(4) * 8
}

TEST(HierMaxReuse, DeclaredHalfFloorsLeafCapacity) {
  const HierConfig declared = hier_declared_half(three_level());
  EXPECT_EQ(declared.levels[0].capacity, 2048);
  EXPECT_EQ(declared.levels[1].capacity, 256);
  EXPECT_EQ(declared.levels[2].capacity, 10);
  HierConfig tiny = three_level();
  tiny.levels[2].capacity = 4;  // half would be 2 < the 3-block minimum
  EXPECT_EQ(hier_declared_half(tiny).levels[2].capacity, 3);
}

TEST(HierMaxReuse, TwoLevelInstanceEqualsDistributedOptPrediction) {
  // On the flat quad-core, the generalised schedule *is* Algorithm 2 run
  // under the LRU-50 setting: its per-level misses must land near the
  // paper's MS/MD formulas evaluated at the declared (halved) parameters.
  // Footprint 3 * 48^2 = 6912 blocks >> CS = 977, so the streaming terms
  // dominate (a problem that fits in the shared cache would show only
  // cold misses and sit far below the formula).
  const HierConfig cfg = HierConfig::from_flat(paper_quadcore());
  const Problem prob{48, 48, 48};
  HierMachine machine(cfg);
  const HierParams params = run_hier_max_reuse(machine, prob);
  EXPECT_EQ(params.mu, 2) << "mu from the declared CD/2 = 10";
  // Sandwich: the physical half of the cache acts as LRU prefetch slack,
  // so measured misses fall between the full-capacity formula (what an
  // omniscient policy could do with the whole cache) and the formula at
  // the declared (halved) parameters.
  const auto declared_pred = hier_predicted_misses(cfg, params, prob);
  const auto physical_pred =
      hier_predicted_misses(cfg, hier_max_reuse_params(cfg), prob);
  const double ms = static_cast<double>(machine.level_stats(0).total_misses());
  EXPECT_GE(ms, 0.95 * physical_pred[0]);
  EXPECT_LE(ms, 1.2 * declared_pred[0]);
  const double md = static_cast<double>(machine.level_stats(1).max_misses());
  EXPECT_GE(md, 0.95 * physical_pred[1]);
  EXPECT_LE(md, 1.2 * declared_pred[1]);
}

TEST(HierMaxReuse, ThreeLevelPredictionsHold) {
  // Footprint 3 * 80^2 = 19200 >> the 4096-block cluster cache.
  const HierConfig cfg = three_level();
  const Problem prob{80, 80, 80};
  HierMachine machine(cfg);
  const HierParams params = run_hier_max_reuse(machine, prob);
  EXPECT_EQ(params.side[0], 8) << "declared-half leaf mu = 2, two doublings";
  EXPECT_EQ(machine.total_fmas(), prob.fmas());
  // Same sandwich as the two-level case, at every level of the tree.
  const auto declared_pred = hier_predicted_misses(cfg, params, prob);
  const auto physical_pred =
      hier_predicted_misses(cfg, hier_max_reuse_params(cfg), prob);
  for (int l = 0; l < 3; ++l) {
    const double measured =
        static_cast<double>(machine.level_stats(l).max_misses());
    EXPECT_GE(measured, 0.95 * physical_pred[static_cast<std::size_t>(l)])
        << "level " << l;
    EXPECT_LE(measured, 1.2 * declared_pred[static_cast<std::size_t>(l)])
        << "level " << l;
  }
}

TEST(HierMaxReuse, BeatsFlatSchedulesOnTheMiddleLevel) {
  // A flat two-level-aware schedule (Algorithm 2's trace) ignores the node
  // caches of a cluster; the generalised schedule tiles for them too.
  const HierConfig cfg = three_level();  // 16 cores
  // Each node's Outer Product C strip (64*64/4 = 1024 blocks) must exceed
  // the 512-block node cache for the baseline to show its weakness.
  const Problem prob{64, 64, 32};

  MachineConfig flat;
  flat.p = 16;
  flat.cs = 4096;
  flat.cd = 21;
  Machine recorder(flat, Policy::kLru);
  Trace trace;
  record_into(recorder, trace);
  make_algorithm("outer-product")->run(recorder, prob, flat);
  HierMachine baseline(cfg);
  replay_trace(trace, baseline);

  HierMachine ours(cfg);
  run_hier_max_reuse(ours, prob);
  EXPECT_LT(ours.level_stats(1).max_misses() * 2,
            baseline.level_stats(1).max_misses())
      << "node-cache misses";
  EXPECT_LT(ours.level_stats(2).max_misses(),
            baseline.level_stats(2).max_misses())
      << "private-cache misses";
}

TEST(HierMaxReuse, CoverageOnRaggedSizes) {
  const HierConfig cfg = three_level();
  const Problem prob{19, 7, 5};
  HierMachine machine(cfg);
  run_hier_max_reuse(machine, prob);  // the internal assert checks m*n*z
  EXPECT_EQ(machine.total_fmas(), prob.fmas());
  machine.check_inclusive();
}

TEST(HierMaxReuse, LowerBoundsBelowMeasurements) {
  const HierConfig cfg = three_level();
  const Problem prob{32, 32, 32};
  HierMachine machine(cfg);
  run_hier_max_reuse(machine, prob);
  const auto bounds = hier_lower_bounds(cfg, prob);
  for (int l = 0; l < 3; ++l) {
    // The bound is per cache (work mnz/n_l behind a capacity_l cache);
    // the busiest cache of the level cannot beat it.
    EXPECT_GE(static_cast<double>(machine.level_stats(l).max_misses()),
              bounds[static_cast<std::size_t>(l)] * 0.999)
        << "level " << l;
  }
}

TEST(HierMaxReuse, RejectsNonSquareFanout) {
  HierConfig cfg;
  cfg.levels = {LevelSpec{977, 3, 1.0}, LevelSpec{21, 1, 1.0}};
  EXPECT_THROW(hier_max_reuse_params(cfg), Error);
}

}  // namespace
}  // namespace mcmm
