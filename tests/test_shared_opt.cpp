// Formula exactness for Algorithm 1 (Shared Opt): under IDEAL with
// divisible sizes, measured MS and MD equal Section 3.1's closed forms
// as integers.
#include <gtest/gtest.h>

#include "alg/shared_opt.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

// CS = 73 gives lambda = 8 (1+8+64), divisible by p = 4.
MachineConfig lambda8_cfg() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 73;
  cfg.cd = 3;
  return cfg;
}

struct Dims {
  std::int64_t m, n, z;
};

class SharedOptExact : public ::testing::TestWithParam<Dims> {};

TEST_P(SharedOptExact, IdealMatchesClosedFormExactly) {
  const Dims d = GetParam();
  const MachineConfig cfg = lambda8_cfg();
  const Problem prob{d.m, d.n, d.z};
  ASSERT_EQ(shared_opt_params(cfg.cs).lambda, 8);

  Machine machine(cfg, Policy::kIdeal);
  SharedOpt().run(machine, prob, cfg);

  const MissPrediction pred =
      predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  // Perfect balance: every core has identical miss counts and work.
  for (int c = 1; c < cfg.p; ++c) {
    EXPECT_EQ(machine.stats().dist_misses[c], machine.stats().dist_misses[0]);
    EXPECT_EQ(machine.stats().fmas[c], machine.stats().fmas[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DivisibleSizes, SharedOptExact,
    ::testing::Values(Dims{8, 8, 1}, Dims{8, 8, 8}, Dims{16, 8, 5},
                      Dims{8, 24, 3}, Dims{16, 16, 16}, Dims{32, 16, 10},
                      Dims{24, 24, 7}),
    [](const ::testing::TestParamInfo<Dims>& p_info) {
      std::string name = "m";
      name += std::to_string(p_info.param.m);
      name += "n";
      name += std::to_string(p_info.param.n);
      name += "z";
      name += std::to_string(p_info.param.z);
      return name;
    });

TEST(SharedOpt, WholeCMatrixLoadedExactlyOnce) {
  // The mn term: each C block incurs exactly one shared miss.
  const MachineConfig cfg = lambda8_cfg();
  const Problem prob{16, 16, 4};
  Machine machine(cfg, Policy::kIdeal);
  SharedOpt().run(machine, prob, cfg);
  const auto pred = predict_shared_opt(prob, cfg.p, {8});
  // Remove the A/B streaming part: 2mnz/lambda.
  EXPECT_EQ(machine.stats().ms() - 2 * prob.m * prob.n * prob.z / 8,
            prob.m * prob.n);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
}

TEST(SharedOpt, DirtyTileWrittenBackOncePerBlock) {
  const MachineConfig cfg = lambda8_cfg();
  const Problem prob{8, 8, 3};
  Machine machine(cfg, Policy::kIdeal);
  SharedOpt().run(machine, prob, cfg);
  EXPECT_EQ(machine.stats().writebacks_to_memory, prob.m * prob.n)
      << "each C block written back exactly once";
  EXPECT_EQ(machine.stats().writebacks_to_shared, prob.fmas())
      << "each FMA updates the shared copy of its C block";
}

TEST(SharedOpt, RaggedSizesStillExactForMs) {
  // MS = sum over tiles of (tile_area + z*(tile_w + tile_h)) also holds for
  // ragged tiles; verify against a direct tiling computation.
  const MachineConfig cfg = lambda8_cfg();
  const Problem prob{13, 11, 5};
  Machine machine(cfg, Policy::kIdeal);
  SharedOpt().run(machine, prob, cfg);
  std::int64_t expect = 0;
  for (std::int64_t i0 = 0; i0 < prob.m; i0 += 8) {
    const std::int64_t ti = std::min<std::int64_t>(8, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += 8) {
      const std::int64_t tj = std::min<std::int64_t>(8, prob.n - j0);
      expect += ti * tj + prob.z * (tj + ti);
    }
  }
  EXPECT_EQ(machine.stats().ms(), expect);
}

TEST(SharedOpt, Lru50RunsAndStaysAboveIdeal) {
  const MachineConfig cfg = mcmm::testing::paper_quadcore();
  const Problem prob = Problem::square(60);

  Machine ideal(cfg, Policy::kIdeal);
  SharedOpt().run(ideal, prob, cfg);

  Machine lru(cfg, Policy::kLru);
  SharedOpt().run(lru, prob, cfg.with_caches_scaled(1, 2));

  EXPECT_GT(lru.stats().ms(), 0);
  EXPECT_GE(lru.stats().ms(), ideal.stats().ms())
      << "LRU cannot beat the omniscient schedule it imitates";
}

TEST(SharedOptDeath, IdealNeedsThreeDistributedBlocks) {
  MachineConfig cfg = lambda8_cfg();
  cfg.cd = 2;
  Machine machine(cfg, Policy::kIdeal);
  EXPECT_THROW(SharedOpt().run(machine, Problem::square(8), cfg), Error);
}

}  // namespace
}  // namespace mcmm
