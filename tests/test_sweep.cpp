#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

TEST(OrderSweep, GeneratesInclusiveRange) {
  EXPECT_EQ(order_sweep(50, 200, 50),
            (std::vector<std::int64_t>{50, 100, 150, 200}));
  EXPECT_EQ(order_sweep(10, 10, 5), (std::vector<std::int64_t>{10}));
  EXPECT_EQ(order_sweep(10, 14, 5), (std::vector<std::int64_t>{10}));
  EXPECT_THROW(order_sweep(10, 5, 1), Error);
  EXPECT_THROW(order_sweep(0, 5, 1), Error);
}

TEST(BandwidthRatioSweep, RescaledSeriesMatchesDirectRuns) {
  // For a bandwidth-oblivious schedule the fast path (simulate once,
  // rescale) must equal simulating at each ratio.
  const Problem prob{16, 16, 16};
  const MachineConfig cfg = paper_quadcore();
  const std::vector<double> ratios{0.2, 0.5, 0.8};
  const auto fast =
      bandwidth_ratio_sweep("shared-opt", prob, cfg, Setting::kIdeal, ratios);
  ASSERT_EQ(fast.size(), ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const MachineConfig rcfg = cfg.with_bandwidth_ratio(ratios[i]);
    const RunResult direct =
        run_experiment("shared-opt", prob, rcfg, Setting::kIdeal);
    EXPECT_DOUBLE_EQ(fast[i].tdata, direct.tdata) << "r=" << ratios[i];
    EXPECT_DOUBLE_EQ(fast[i].r, ratios[i]);
  }
}

TEST(BandwidthRatioSweep, TradeoffReplansPerRatio) {
  // Tradeoff's Tdata must track min(SharedOpt, DistributedOpt) across r;
  // a single fixed plan could not do that at both extremes.
  const Problem prob{16, 16, 16};
  const MachineConfig cfg = paper_quadcore();
  const std::vector<double> ratios{0.01, 0.5, 0.99};
  const auto trade =
      bandwidth_ratio_sweep("tradeoff", prob, cfg, Setting::kIdeal, ratios);
  const auto shared =
      bandwidth_ratio_sweep("shared-opt", prob, cfg, Setting::kIdeal, ratios);
  const auto dist = bandwidth_ratio_sweep("distributed-opt", prob, cfg,
                                          Setting::kIdeal, ratios);
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    EXPECT_LE(trade[i].tdata,
              1.3 * std::min(shared[i].tdata, dist[i].tdata))
        << "r=" << ratios[i];
  }
}

TEST(BandwidthRatioLowerBound, BelowEveryAlgorithm) {
  const Problem prob{16, 16, 16};
  const MachineConfig cfg = paper_quadcore();
  const std::vector<double> ratios{0.1, 0.5, 0.9};
  const auto bound = bandwidth_ratio_lower_bound(prob, cfg, ratios);
  for (const auto& name : algorithm_names()) {
    const auto series =
        bandwidth_ratio_sweep(name, prob, cfg, Setting::kIdeal, ratios);
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      EXPECT_GE(series[i].tdata, bound[i].tdata * 0.999)
          << name << " r=" << ratios[i];
    }
  }
}

}  // namespace
}  // namespace mcmm
