#include "util/json.hpp"

#include <gtest/gtest.h>

namespace mcmm {
namespace {

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .kv("name", "shared-opt")
      .kv("ms", std::int64_t{12345})
      .kv("ratio", 0.5)
      .kv("ok", true)
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"shared-opt\",\"ms\":12345,\"ratio\":0.5,\"ok\":true}");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object()
      .key("cores")
      .begin_array()
      .value(std::int64_t{1})
      .value(std::int64_t{2})
      .end_array()
      .key("inner")
      .begin_object()
      .kv("x", std::int64_t{7})
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(), "{\"cores\":[1,2],\"inner\":{\"x\":7}}");
}

TEST(Json, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object().kv("i", std::int64_t{i}).end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
}

TEST(Json, ScalarRoot) {
  JsonWriter w;
  w.value(std::int64_t{42});
  EXPECT_EQ(w.str(), "42");
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_object().key("a").begin_array().end_array().end_object();
  EXPECT_EQ(w.str(), "{\"a\":[]}");
}

TEST(JsonDeath, MisuseAborts) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object();
        w.value(std::int64_t{1});  // value in object without key
      },
      "without a key");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_array();
        w.key("nope");  // key inside array
      },
      "outside an object");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object();
        (void)w.str();  // incomplete document
      },
      "incomplete");
}

}  // namespace
}  // namespace mcmm
