#include "gemm/kernel.hpp"

#include <gtest/gtest.h>

#include "gemm/validate.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Matrix m(r, c);
  m.fill_random(seed);
  return m;
}

TEST(GemmReference, TinyHandComputedCase) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c(2, 2);
  gemm_reference(c, a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(GemmReference, AccumulatesIntoC) {
  Matrix a(1, 1, 2.0), b(1, 1, 3.0), c(1, 1, 10.0);
  gemm_reference(c, a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 16.0);
}

TEST(GemmReference, ShapeChecks) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_reference(c, a, b), Error);
  Matrix b2(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm_reference(c_bad, a, b2), Error);
}

TEST(BlockFma, UpdatesOnlyTheTargetSubBlock) {
  Matrix a = random_matrix(6, 6, 1);
  Matrix b = random_matrix(6, 6, 2);
  Matrix c(6, 6, 0.0);
  block_fma(c, a, b, /*i0=*/2, /*j0=*/1, /*k0=*/3, /*mb=*/2, /*nb=*/3,
            /*kb=*/2);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      const bool in_target = i >= 2 && i < 4 && j >= 1 && j < 4;
      if (!in_target) {
        EXPECT_DOUBLE_EQ(c.at(i, j), 0.0) << i << "," << j;
      } else {
        double expect = 0;
        for (std::int64_t k = 3; k < 5; ++k) expect += a.at(i, k) * b.at(k, j);
        EXPECT_NEAR(c.at(i, j), expect, 1e-14);
      }
    }
  }
}

class GemmBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmBlockedSizes, MatchesReference) {
  const auto [m, n, z, q] = GetParam();
  Matrix a = random_matrix(m, z, 11);
  Matrix b = random_matrix(z, n, 22);
  Matrix expect(m, n, 0.5);  // non-zero start: blocked must accumulate too
  Matrix got(m, n, 0.5);
  gemm_reference(expect, a, b);
  gemm_blocked(got, a, b, q);
  EXPECT_TRUE(gemm_matches(got, expect, z))
      << "max diff " << Matrix::max_abs_diff(got, expect);
}

TEST_P(GemmBlockedSizes, PackedKernelMatchesReference) {
  const auto [m, n, z, q] = GetParam();
  Matrix a = random_matrix(m, z, 33);
  Matrix b = random_matrix(z, n, 44);
  Matrix expect(m, n, -0.25);
  Matrix got(m, n, -0.25);
  gemm_reference(expect, a, b);
  gemm_blocked_packed(got, a, b, q);
  EXPECT_TRUE(gemm_matches(got, expect, z))
      << "max diff " << Matrix::max_abs_diff(got, expect);
}

std::string blocked_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& info) {
  std::string name = "m";
  name += std::to_string(std::get<0>(info.param));
  name += "n";
  name += std::to_string(std::get<1>(info.param));
  name += "z";
  name += std::to_string(std::get<2>(info.param));
  name += "q";
  name += std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(8, 8, 8, 4),
                      std::make_tuple(13, 7, 5, 4),
                      std::make_tuple(16, 16, 16, 16),
                      std::make_tuple(17, 19, 23, 8),
                      std::make_tuple(32, 8, 64, 16),
                      std::make_tuple(5, 40, 3, 7)),
    blocked_case_name);

TEST(GemmTolerance, GrowsWithInnerDimension) {
  EXPECT_LT(gemm_tolerance(10), gemm_tolerance(1000));
  EXPECT_GT(gemm_tolerance(1), 0.0);
}

}  // namespace
}  // namespace mcmm
