#include "gemm/kernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "gemm/microkernel.hpp"
#include "gemm/pack.hpp"
#include "gemm/parallel_gemm.hpp"
#include "gemm/thread_pool.hpp"
#include "gemm/validate.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Matrix m(r, c);
  m.fill_random(seed);
  return m;
}

TEST(GemmReference, TinyHandComputedCase) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c(2, 2);
  gemm_reference(c, a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(GemmReference, AccumulatesIntoC) {
  Matrix a(1, 1, 2.0), b(1, 1, 3.0), c(1, 1, 10.0);
  gemm_reference(c, a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 16.0);
}

TEST(GemmReference, ShapeChecks) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_reference(c, a, b), Error);
  Matrix b2(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm_reference(c_bad, a, b2), Error);
}

TEST(BlockFma, UpdatesOnlyTheTargetSubBlock) {
  Matrix a = random_matrix(6, 6, 1);
  Matrix b = random_matrix(6, 6, 2);
  Matrix c(6, 6, 0.0);
  block_fma(c, a, b, /*i0=*/2, /*j0=*/1, /*k0=*/3, /*mb=*/2, /*nb=*/3,
            /*kb=*/2);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      const bool in_target = i >= 2 && i < 4 && j >= 1 && j < 4;
      if (!in_target) {
        EXPECT_DOUBLE_EQ(c.at(i, j), 0.0) << i << "," << j;
      } else {
        double expect = 0;
        for (std::int64_t k = 3; k < 5; ++k) expect += a.at(i, k) * b.at(k, j);
        EXPECT_NEAR(c.at(i, j), expect, 1e-14);
      }
    }
  }
}

class GemmBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmBlockedSizes, MatchesReference) {
  const auto [m, n, z, q] = GetParam();
  Matrix a = random_matrix(m, z, 11);
  Matrix b = random_matrix(z, n, 22);
  Matrix expect(m, n, 0.5);  // non-zero start: blocked must accumulate too
  Matrix got(m, n, 0.5);
  gemm_reference(expect, a, b);
  gemm_blocked(got, a, b, q);
  EXPECT_TRUE(gemm_matches(got, expect, z))
      << "max diff " << Matrix::max_abs_diff(got, expect);
}

TEST_P(GemmBlockedSizes, PackedKernelMatchesReference) {
  const auto [m, n, z, q] = GetParam();
  Matrix a = random_matrix(m, z, 33);
  Matrix b = random_matrix(z, n, 44);
  Matrix expect(m, n, -0.25);
  Matrix got(m, n, -0.25);
  gemm_reference(expect, a, b);
  gemm_blocked_packed(got, a, b, q);
  EXPECT_TRUE(gemm_matches(got, expect, z))
      << "max diff " << Matrix::max_abs_diff(got, expect);
}

std::string blocked_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& info) {
  std::string name = "m";
  name += std::to_string(std::get<0>(info.param));
  name += "n";
  name += std::to_string(std::get<1>(info.param));
  name += "z";
  name += std::to_string(std::get<2>(info.param));
  name += "q";
  name += std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(8, 8, 8, 4),
                      std::make_tuple(13, 7, 5, 4),
                      std::make_tuple(16, 16, 16, 16),
                      std::make_tuple(17, 19, 23, 8),
                      std::make_tuple(32, 8, 64, 16),
                      std::make_tuple(5, 40, 3, 7)),
    blocked_case_name);

TEST(GemmTolerance, GrowsWithInnerDimension) {
  EXPECT_LT(gemm_tolerance(10), gemm_tolerance(1000));
  EXPECT_GT(gemm_tolerance(1), 0.0);
}

// ---------------------------------------------------------------------------
// The packed micro-kernel engine (KernelContext / pack / microkernel).

/// ULP distance between two doubles: map the bit patterns onto a monotone
/// integer line (negative range flipped) and subtract.
std::uint64_t ulp_distance(double x, double y) {
  const auto key = [](double v) {
    const auto u = std::bit_cast<std::uint64_t>(v);
    return (u & 0x8000000000000000ull) != 0 ? ~u : (u | 0x8000000000000000ull);
  };
  const std::uint64_t a = key(x);
  const std::uint64_t b = key(y);
  return a > b ? a - b : b - a;
}

/// Element-wise comparison with both an absolute tolerance (scaled to the
/// inner dimension like gemm_matches) and a ULP bound: a cell passes when
/// either holds, so near-cancellation cells are judged by absolute error
/// and large-magnitude cells by relative (ULP) error.
::testing::AssertionResult matches_within_ulp(const Matrix& got,
                                              const Matrix& expect,
                                              std::int64_t z,
                                              std::uint64_t max_ulp) {
  const double tol = gemm_tolerance(z);
  for (std::int64_t i = 0; i < got.rows(); ++i) {
    for (std::int64_t j = 0; j < got.cols(); ++j) {
      const double g = got.at(i, j);
      const double e = expect.at(i, j);
      const double diff = g > e ? g - e : e - g;
      if (diff <= tol) continue;
      if (ulp_distance(g, e) <= max_ulp) continue;
      return ::testing::AssertionFailure()
             << "cell (" << i << "," << j << "): got " << g << " expect " << e
             << " (diff " << diff << " > tol " << tol << ", "
             << ulp_distance(g, e) << " ulp > " << max_ulp << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// FMA contraction and the accumulate-then-add block tile change rounding
/// by a few ulp per k step; 256 is orders of magnitude above what the
/// z <= 29 sweep produces while still catching any indexing bug (a wrong
/// coefficient is wrong by ~1e15 ulp).
constexpr std::uint64_t kMaxUlp = 256;

TEST(KernelPathParse, AcceptsTheFiveNames) {
  EXPECT_EQ(parse_kernel_path("auto"), KernelPath::kAuto);
  EXPECT_EQ(parse_kernel_path("scalar"), KernelPath::kScalar);
  EXPECT_EQ(parse_kernel_path("simd"), KernelPath::kSimd);
  EXPECT_EQ(parse_kernel_path("avx2"), KernelPath::kAvx2);
  EXPECT_EQ(parse_kernel_path("avx512"), KernelPath::kAvx512);
  EXPECT_THROW(parse_kernel_path("sse2"), Error);
  EXPECT_THROW(parse_kernel_path(""), Error);
}

TEST(MicroKernelDispatch, ScalarAlwaysAvailable) {
  const MicroKernel k = scalar_micro_kernel();
  ASSERT_NE(k.fn, nullptr);
  EXPECT_STREQ(k.name, "scalar-4x8");
}

TEST(MicroKernelDispatch, BestMatchesAvailability) {
  const MicroKernel best = best_micro_kernel();
  ASSERT_NE(best.fn, nullptr);
  if (avx512_kernel_available()) {
    EXPECT_STREQ(best.name, "avx512-fma-8x16");
    EXPECT_EQ(avx512_unavailable_reason(), "");
    EXPECT_EQ(avx512_micro_kernels().size(), 2u);
  } else if (simd_kernel_available()) {
    EXPECT_STREQ(best.name, "avx2-fma-4x8");
    EXPECT_EQ(simd_unavailable_reason(), "");
    EXPECT_NE(simd_micro_kernel().fn, nullptr);
    EXPECT_NE(avx512_unavailable_reason(), "");
  } else {
    EXPECT_STREQ(best.name, "scalar-4x8");
    EXPECT_NE(simd_unavailable_reason(), "");
    EXPECT_THROW(simd_micro_kernel(), Error);
  }
}

TEST(MicroKernelDispatch, RegistryNamesResolveAndMirrorShapes) {
  // Every host-runnable kernel resolves by name, and its scalar mirror
  // keeps the register-tile shape (bit-identity depends on it).
  for (const MicroKernel& k : all_micro_kernels()) {
    const MicroKernel by_name = micro_kernel_by_name(k.name);
    EXPECT_STREQ(by_name.name, k.name);
    const MicroKernel mirror = scalar_mirror(k);
    EXPECT_EQ(mirror.mr, k.mr) << k.name;
    EXPECT_EQ(mirror.nr, k.nr) << k.name;
    EXPECT_EQ(mirror.fused, k.fused) << k.name;
  }
  EXPECT_THROW(micro_kernel_by_name("no-such-kernel"), Error);
}

TEST(KernelContext, ForcedSimdThrowsWhenUnavailable) {
  if (simd_kernel_available()) {
    EXPECT_NO_THROW(KernelContext(1, KernelPath::kSimd));
  } else {
    EXPECT_THROW(KernelContext(1, KernelPath::kSimd), Error);
  }
  EXPECT_THROW(KernelContext(0), Error);
}

// Regression: a degenerate product (any dimension 0) is an empty sum.
// gemm_micro must return before touching the context, so C is untouched
// and the worker's pack memo is not poisoned with zero-extent keys.
TEST(KernelContext, DegenerateShapesAreNoOps) {
  KernelContext ctx(1, KernelPath::kScalar);
  const struct {
    std::int64_t m, n, z;
  } shapes[] = {{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {0, 0, 0}};
  for (const auto& s : shapes) {
    Matrix a = random_matrix(s.m, s.z, 1);
    Matrix b = random_matrix(s.z, s.n, 2);
    Matrix c(s.m, s.n, 0.5);
    EXPECT_NO_THROW(gemm_micro(c, a, b, 8, ctx))
        << "m=" << s.m << " n=" << s.n << " z=" << s.z;
    for (std::int64_t i = 0; i < s.m; ++i) {
      for (std::int64_t j = 0; j < s.n; ++j) {
        EXPECT_EQ(c.at(i, j), 0.5) << "degenerate product wrote to C";
      }
    }
  }
  // The context must remain fully usable for a real product afterwards.
  Matrix a = random_matrix(4, 4, 3);
  Matrix b = random_matrix(4, 4, 4);
  Matrix c(4, 4, 0.0), expect(4, 4, 0.0);
  gemm_reference(expect, a, b);
  gemm_micro(c, a, b, 8, ctx);
  EXPECT_TRUE(gemm_matches(c, expect, 4));
}

// block_op with an empty sub-problem (mb/nb/kb of 0) must return without
// touching the pack buffers; zero-extent packs would stamp memo keys that
// alias real blocks on the next call.
TEST(KernelContext, BlockOpZeroExtentIsANoOp) {
  KernelContext ctx(1, KernelPath::kScalar);
  Matrix a = random_matrix(8, 8, 5);
  Matrix b = random_matrix(8, 8, 6);
  Matrix c(8, 8, 1.0);
  ctx.invalidate();
  EXPECT_NO_THROW(ctx.block_op(0, c, a, b, 0, 0, 0, 0, 8, 8));
  EXPECT_NO_THROW(ctx.block_op(0, c, a, b, 0, 0, 0, 8, 0, 8));
  EXPECT_NO_THROW(ctx.block_op(0, c, a, b, 0, 0, 0, 8, 8, 0));
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      ASSERT_EQ(c.at(i, j), 1.0) << "zero-extent block op wrote to C";
    }
  }
  // A real block op after the no-ops must still be correct (the memo
  // keys were not poisoned by the zero-extent calls).
  Matrix expect(8, 8, 1.0);
  gemm_reference(expect, a, b);
  ctx.block_op(0, c, a, b, 0, 0, 0, 8, 8, 8);
  EXPECT_TRUE(gemm_matches(c, expect, 8));
}

// Sub-register-tile shapes (smaller than the MR x NR = 4 x 8 micro tile)
// run entirely through the zero-padded edge path.
TEST(KernelContext, SubMicroTileShapesMatchReference) {
  const struct {
    std::int64_t m, n, z;
  } shapes[] = {{1, 1, 1}, {3, 5, 2}, {2, 7, 1}, {3, 8, 3}, {4, 7, 5}};
  for (const auto& s : shapes) {
    Matrix a = random_matrix(s.m, s.z, static_cast<std::uint64_t>(s.m + 10));
    Matrix b = random_matrix(s.z, s.n, static_cast<std::uint64_t>(s.n + 20));
    Matrix expect(s.m, s.n, 0.25);
    gemm_reference(expect, a, b);
    KernelContext ctx(1, KernelPath::kScalar);
    Matrix c(s.m, s.n, 0.25);
    gemm_micro(c, a, b, 8, ctx);
    ASSERT_TRUE(gemm_matches(c, expect, s.z))
        << "m=" << s.m << " n=" << s.n << " z=" << s.z;
  }
}

TEST(Pack, SizesRoundUpToTheStride) {
  EXPECT_EQ(packed_a_size(4, 3, 4), 4 * 3);
  EXPECT_EQ(packed_a_size(5, 3, 4), 8 * 3);  // 2 strips of 4 rows
  EXPECT_EQ(packed_b_size(3, 8, 8), 8 * 3);
  EXPECT_EQ(packed_b_size(3, 9, 8), 16 * 3);  // 2 strips of 8 cols
}

TEST(Pack, APanelIsMrStridedAndZeroPadded) {
  Matrix a = random_matrix(7, 6, 5);
  const std::int64_t mb = 6, kb = 3, mr = 4;  // ragged: strip 2 has 2 rows
  std::vector<double> out(
      static_cast<std::size_t>(packed_a_size(mb, kb, mr)), -1.0);
  pack_a_panel(a, /*i0=*/1, /*k0=*/2, mb, kb, mr, out.data());
  for (std::int64_t s = 0; s < 2; ++s) {      // strips of mr rows
    const double* strip = out.data() + s * mr * kb;
    for (std::int64_t k = 0; k < kb; ++k) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::int64_t row = s * mr + r;
        const double expect = row < mb ? a.at(1 + row, 2 + k) : 0.0;
        EXPECT_DOUBLE_EQ(strip[k * mr + r], expect) << s << "," << k << "," << r;
      }
    }
  }
}

TEST(Pack, BPanelIsNrStridedAndZeroPadded) {
  Matrix b = random_matrix(6, 13, 6);
  const std::int64_t kb = 4, nb = 10, nr = 8;  // ragged: strip 2 has 2 cols
  std::vector<double> out(
      static_cast<std::size_t>(packed_b_size(kb, nb, nr)), -1.0);
  pack_b_panel(b, /*k0=*/2, /*j0=*/3, kb, nb, nr, out.data());
  for (std::int64_t s = 0; s < 2; ++s) {       // strips of nr columns
    const double* strip = out.data() + s * nr * kb;
    for (std::int64_t k = 0; k < kb; ++k) {
      for (std::int64_t j = 0; j < nr; ++j) {
        const std::int64_t col = s * nr + j;
        const double expect = col < nb ? b.at(2 + k, 3 + col) : 0.0;
        EXPECT_DOUBLE_EQ(strip[k * nr + j], expect) << s << "," << k << "," << j;
      }
    }
  }
}

TEST(MicroKernel, ScalarComputesOneRegisterTile) {
  // One full MR x NR tile through pack + kernel against the hand loop.
  Matrix a = random_matrix(kMicroM, 5, 7);
  Matrix b = random_matrix(5, kMicroN, 8);
  std::vector<double> ap(static_cast<std::size_t>(packed_a_size(kMicroM, 5, kMicroM)));
  std::vector<double> bp(static_cast<std::size_t>(packed_b_size(5, kMicroN, kMicroN)));
  pack_a_panel(a, 0, 0, kMicroM, 5, kMicroM, ap.data());
  pack_b_panel(b, 0, 0, 5, kMicroN, kMicroN, bp.data());
  Matrix c(kMicroM, kMicroN, 0.5);
  scalar_micro_kernel().fn(5, ap.data(), bp.data(), c.row_ptr(0), kMicroN,
                           KernelKnobs{});
  for (std::int64_t i = 0; i < kMicroM; ++i) {
    for (std::int64_t j = 0; j < kMicroN; ++j) {
      double expect = 0.5;
      for (std::int64_t k = 0; k < 5; ++k) expect += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), expect, 1e-13) << i << "," << j;
    }
  }
}

TEST(MicroKernel, SimdAgreesWithScalar) {
  if (!simd_kernel_available()) {
    GTEST_SKIP() << "SIMD kernel not available: " << simd_unavailable_reason();
  }
  // simd_micro_kernel() is the *best* SIMD kernel (AVX-512 when the host
  // has it), so pack at its register-tile shape, not the scalar 4x8.
  const MicroKernel k = simd_micro_kernel();
  Matrix a = random_matrix(k.mr, 64, 9);
  Matrix b = random_matrix(64, k.nr, 10);
  std::vector<double> ap(
      static_cast<std::size_t>(packed_a_size(k.mr, 64, k.mr)));
  AlignedVector bp(static_cast<std::size_t>(packed_b_size(64, k.nr, k.nr)));
  pack_a_panel(a, 0, 0, k.mr, 64, k.mr, ap.data());
  pack_b_panel(b, 0, 0, 64, k.nr, k.nr, bp.data());
  Matrix cs(k.mr, k.nr, 1.0);
  Matrix cv(k.mr, k.nr, 1.0);
  scalar_mirror(k).fn(64, ap.data(), bp.data(), cs.row_ptr(0), k.nr,
                      KernelKnobs{});
  k.fn(64, ap.data(), bp.data(), cv.row_ptr(0), k.nr, KernelKnobs{});
  EXPECT_TRUE(matches_within_ulp(cv, cs, 64, kMaxUlp));
}

/// Tentpole acceptance: every SIMD kernel (AVX2 and both AVX-512 shapes)
/// is *bit-identical* to its std::fma scalar mirror on one packed
/// register tile, with and without prefetch knobs, and the streaming
/// store variant is bit-identical to the regular one (same load+add
/// arithmetic, only the final store instruction differs).
TEST(MicroKernel, AllKernelsBitMatchTheirScalarMirrors) {
  for (const MicroKernel& k : all_micro_kernels()) {
    const MicroKernel mirror = scalar_mirror(k);
    const std::int64_t kc = 37;
    Matrix a = random_matrix(k.mr, kc, 13);
    Matrix b = random_matrix(kc, k.nr, 14);
    std::vector<double> ap(
        static_cast<std::size_t>(packed_a_size(k.mr, kc, k.mr)));
    AlignedVector bp(static_cast<std::size_t>(packed_b_size(kc, k.nr, k.nr)));
    pack_a_panel(a, 0, 0, k.mr, kc, k.mr, ap.data());
    pack_b_panel(b, 0, 0, kc, k.nr, k.nr, bp.data());
    Matrix want(k.mr, k.nr, 0.5);
    mirror.fn(kc, ap.data(), bp.data(), want.row_ptr(0), k.nr, KernelKnobs{});
    for (const KernelKnobs knobs : {KernelKnobs{}, KernelKnobs{4, 8}}) {
      Matrix got(k.mr, k.nr, 0.5);
      k.fn(kc, ap.data(), bp.data(), got.row_ptr(0), k.nr, knobs);
      for (std::int64_t i = 0; i < k.mr; ++i) {
        for (std::int64_t j = 0; j < k.nr; ++j) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got.at(i, j)),
                    std::bit_cast<std::uint64_t>(want.at(i, j)))
              << k.name << " pfa=" << knobs.prefetch_a << " cell (" << i
              << "," << j << ")";
        }
      }
    }
    if (k.stream_align > 0) {
      ASSERT_NE(k.stream_fn, nullptr) << k.name;
      // A 64-byte aligned C tile so the streaming stores are legal.
      AlignedVector c_stream(static_cast<std::size_t>(k.mr * k.nr));
      for (std::int64_t i = 0; i < k.mr * k.nr; ++i) c_stream[i] = 0.5;
      k.stream_fn(kc, ap.data(), bp.data(), c_stream.data(), k.nr,
                  KernelKnobs{});
      stream_fence();
      for (std::int64_t i = 0; i < k.mr; ++i) {
        for (std::int64_t j = 0; j < k.nr; ++j) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(c_stream[i * k.nr + j]),
                    std::bit_cast<std::uint64_t>(want.at(i, j)))
              << k.name << " stream cell (" << i << "," << j << ")";
        }
      }
    }
  }
}

/// Satellite sweep (docs/kernels.md): every engine against the reference
/// over ragged shapes m, n, z in {1, q-1, q, q+1, 3q+5} with q = 8, so
/// every micro-tile edge case (full tiles, 1-wide remainders, multi-block
/// k panels) is exercised, under both forced kernel paths.
class MicroEngineSweep : public ::testing::TestWithParam<KernelPath> {
protected:
  /// Why this host cannot run the forced path; empty when it can.  The
  /// test body turns a non-empty reason into GTEST_SKIP (the macro only
  /// returns from the function it expands in, so it must run there).
  static std::string unavailable_reason(KernelPath path) {
    if ((path == KernelPath::kSimd || path == KernelPath::kAvx2) &&
        !simd_kernel_available()) {
      return "SIMD kernel not available: " + simd_unavailable_reason();
    }
    if (path == KernelPath::kAvx512 && !avx512_kernel_available()) {
      return "AVX-512 kernels not available: " + avx512_unavailable_reason();
    }
    return {};
  }
};

TEST_P(MicroEngineSweep, AllEnginesMatchReference) {
  const KernelPath path = GetParam();
  if (const std::string skip = unavailable_reason(path); !skip.empty()) {
    GTEST_SKIP() << skip;
  }
  const std::int64_t q = 8;
  const std::int64_t sizes[] = {1, q - 1, q, q + 1, 3 * q + 5};
  for (const std::int64_t m : sizes) {
    for (const std::int64_t n : sizes) {
      for (const std::int64_t z : sizes) {
        Matrix a = random_matrix(m, z, static_cast<std::uint64_t>(m * 1000 + z));
        Matrix b = random_matrix(z, n, static_cast<std::uint64_t>(z * 1000 + n));
        Matrix expect(m, n, 0.125);  // non-zero start: must accumulate
        gemm_reference(expect, a, b);

        KernelContext ctx(1, path);
        Matrix micro(m, n, 0.125);
        gemm_micro(micro, a, b, q, ctx);
        ASSERT_TRUE(matches_within_ulp(micro, expect, z, kMaxUlp))
            << "gemm_micro[" << ctx.dispatch_name() << "] m=" << m
            << " n=" << n << " z=" << z;

        if (path == KernelPath::kScalar) {
          Matrix packed(m, n, 0.125);
          gemm_blocked_packed(packed, a, b, q);
          ASSERT_TRUE(matches_within_ulp(packed, expect, z, kMaxUlp))
              << "gemm_blocked_packed m=" << m << " n=" << n << " z=" << z;
          Matrix blocked(m, n, 0.125);
          gemm_blocked(blocked, a, b, q);
          ASSERT_TRUE(matches_within_ulp(blocked, expect, z, kMaxUlp))
              << "gemm_blocked m=" << m << " n=" << n << " z=" << z;
        }
      }
    }
  }
}

TEST_P(MicroEngineSweep, AllSchedulesMatchReference) {
  const KernelPath path = GetParam();
  if (const std::string skip = unavailable_reason(path); !skip.empty()) {
    GTEST_SKIP() << skip;
  }
  Tiling t;
  t.q = 8;
  t.lambda = 3;
  t.mu = 2;
  t.alpha = 4;
  t.beta = 2;
  using CtxGemmFn = void (*)(Matrix&, const Matrix&, const Matrix&,
                             const Tiling&, ThreadPool&, KernelContext&);
  const CtxGemmFn schedules[] = {
      &parallel_gemm_shared_opt, &parallel_gemm_distributed_opt,
      &parallel_gemm_tradeoff, &parallel_gemm_outer_product};
  const std::int64_t q = t.q;
  const std::int64_t sizes[] = {1, q - 1, q + 1, 3 * q + 5};
  ThreadPool pool(4);
  KernelContext ctx(pool.workers(), path);
  for (const std::int64_t m : sizes) {
    for (const std::int64_t n : sizes) {
      for (const std::int64_t z : sizes) {
        Matrix a = random_matrix(m, z, static_cast<std::uint64_t>(m * 77 + z));
        Matrix b = random_matrix(z, n, static_cast<std::uint64_t>(z * 77 + n));
        Matrix expect(m, n, -0.5);
        gemm_reference(expect, a, b);
        for (const CtxGemmFn fn : schedules) {
          Matrix got(m, n, -0.5);
          fn(got, a, b, t, pool, ctx);
          ASSERT_TRUE(matches_within_ulp(got, expect, z, kMaxUlp))
              << "schedule under " << ctx.dispatch_name() << " m=" << m
              << " n=" << n << " z=" << z;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, MicroEngineSweep,
                         ::testing::Values(KernelPath::kScalar,
                                           KernelPath::kSimd,
                                           KernelPath::kAvx2,
                                           KernelPath::kAvx512),
                         [](const ::testing::TestParamInfo<KernelPath>& p) {
                           switch (p.param) {
                             case KernelPath::kScalar: return "scalar";
                             case KernelPath::kSimd: return "simd";
                             case KernelPath::kAvx2: return "avx2";
                             case KernelPath::kAvx512: return "avx512";
                             default: return "auto";
                           }
                         });

/// Every host-runnable kernel, ragged shapes, streaming stores forced on
/// and off: the engine must agree with the reference, and the streamed
/// result must be bit-identical to the unstreamed one (the stream variant
/// performs the same load+add arithmetic; only the store differs, and
/// ragged/misaligned tiles silently fall back).
TEST(MicroEngineStreaming, OnOffBitIdenticalAcrossKernels) {
  const std::int64_t q = 16;
  const std::int64_t sizes[] = {1, q - 1, q, q + 1, 2 * q + 3};
  for (const MicroKernel& k : all_micro_kernels()) {
    for (const std::int64_t m : sizes) {
      for (const std::int64_t n : sizes) {
        for (const std::int64_t z : sizes) {
          Matrix a =
              random_matrix(m, z, static_cast<std::uint64_t>(m * 131 + z));
          Matrix b =
              random_matrix(z, n, static_cast<std::uint64_t>(z * 131 + n));
          Matrix expect(m, n, 0.25);
          gemm_reference(expect, a, b);

          KernelContext plain(1, KernelPath::kScalar);
          plain.set_kernel(k);
          Matrix base(m, n, 0.25);
          gemm_micro(base, a, b, q, plain);
          ASSERT_TRUE(matches_within_ulp(base, expect, z, kMaxUlp))
              << k.name << " m=" << m << " n=" << n << " z=" << z;

          KernelContext streaming(1, KernelPath::kScalar);
          streaming.set_kernel(k);
          streaming.set_stream_stores(true);
          Matrix streamed(m, n, 0.25);
          gemm_micro(streamed, a, b, q, streaming);
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              ASSERT_EQ(std::bit_cast<std::uint64_t>(streamed.at(i, j)),
                        std::bit_cast<std::uint64_t>(base.at(i, j)))
                  << k.name << " m=" << m << " n=" << n << " z=" << z
                  << " cell (" << i << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

/// Prefetch distances are hints: any knob setting must leave the result
/// bit-identical (prefetching can never change arithmetic).
TEST(MicroEngineKnobs, PrefetchKnobsAreBitNeutral) {
  const std::int64_t m = 37, n = 29, z = 41, q = 16;
  Matrix a = random_matrix(m, z, 7);
  Matrix b = random_matrix(z, n, 8);
  for (const MicroKernel& k : all_micro_kernels()) {
    KernelContext base_ctx(1, KernelPath::kScalar);
    base_ctx.set_kernel(k);
    Matrix base(m, n, -1.5);
    gemm_micro(base, a, b, q, base_ctx);
    KernelContext knobbed(1, KernelPath::kScalar);
    knobbed.set_kernel(k);
    knobbed.set_knobs(KernelKnobs{8, 4});
    knobbed.set_pack_prefetch(2);
    Matrix got(m, n, -1.5);
    gemm_micro(got, a, b, q, knobbed);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got.at(i, j)),
                  std::bit_cast<std::uint64_t>(base.at(i, j)))
            << k.name << " cell (" << i << "," << j << ")";
      }
    }
  }
}

/// Regression for the 8-slot direct-mapped B memo: switching kernels on a
/// live context invalidates packed panels, and the memo key carries the
/// register-tile shape — without it, a panel packed at NR=8 is replayed
/// into an NR=16 kernel and the product silently corrupts.  The scalar
/// mirrors make this check runnable on any host.
TEST(KernelContext, PackedBMemoSurvivesKernelSwitch) {
  const std::int64_t m = 24, n = 48, z = 40, q = 16;
  Matrix a = random_matrix(m, z, 91);
  Matrix b = random_matrix(z, n, 92);
  Matrix expect(m, n, 0.0);
  gemm_reference(expect, a, b);

  KernelContext ctx(1, KernelPath::kScalar);
  const MicroKernel narrow = micro_kernel_by_name("scalar-fma-4x8");
  const MicroKernel wide = micro_kernel_by_name("scalar-fma-8x16");
  for (const MicroKernel* k : {&narrow, &wide, &narrow, &wide}) {
    ctx.set_kernel(*k);
    Matrix c(m, n, 0.0);
    gemm_micro(c, a, b, q, ctx);
    ASSERT_TRUE(matches_within_ulp(c, expect, z, kMaxUlp))
        << "after switching to " << k->name;
  }
}

/// set_kernel rejects malformed register tiles instead of letting the
/// pack layer scribble out of bounds.
TEST(KernelContext, SetKernelValidatesShape) {
  KernelContext ctx(1, KernelPath::kScalar);
  MicroKernel bad = scalar_micro_kernel();
  bad.fn = nullptr;
  EXPECT_THROW(ctx.set_kernel(bad), Error);
  bad = scalar_micro_kernel();
  bad.mr = 0;
  EXPECT_THROW(ctx.set_kernel(bad), Error);
  bad = scalar_micro_kernel();
  bad.nr = kMaxMicroN + 1;
  EXPECT_THROW(ctx.set_kernel(bad), Error);
}

/// A context built from a KernelTuning installs the tuned kernel and
/// knobs; an unknown kernel name degrades to the best available one
/// instead of failing the run.
TEST(KernelContext, TuningConstructorInstallsKnobs) {
  KernelTuning tuning;
  tuning.tuned = true;
  tuning.kernel = "scalar-fma-8x16";
  tuning.kc = 32;
  tuning.prefetch_a = 2;
  tuning.prefetch_b = 4;
  tuning.pack_prefetch = 1;
  tuning.stream_stores = true;
  KernelContext ctx(1, tuning);
  EXPECT_EQ(ctx.dispatch_name(), "scalar-fma-8x16");
  EXPECT_EQ(ctx.knobs().prefetch_a, 2);
  EXPECT_EQ(ctx.knobs().prefetch_b, 4);
  EXPECT_EQ(ctx.pack_prefetch(), 1);
  EXPECT_TRUE(ctx.stream_stores());

  KernelTuning unknown = tuning;
  unknown.kernel = "riscv-rvv-8x8";
  KernelContext fallback(1, unknown);
  EXPECT_EQ(fallback.dispatch_name(), best_micro_kernel().name);
}

/// Acceptance criterion: under the scalar kernel every schedule is
/// bitwise-deterministic across worker counts (static ownership + fixed
/// per-coefficient k order make the FP summation independent of p).
TEST(MicroEngineDeterminism, BitwiseAcrossWorkerCounts) {
  Tiling t;
  t.q = 8;
  t.lambda = 3;
  t.mu = 2;
  t.alpha = 4;
  t.beta = 2;
  using CtxGemmFn = void (*)(Matrix&, const Matrix&, const Matrix&,
                             const Tiling&, ThreadPool&, KernelContext&);
  const CtxGemmFn schedules[] = {
      &parallel_gemm_shared_opt, &parallel_gemm_distributed_opt,
      &parallel_gemm_tradeoff, &parallel_gemm_outer_product};
  const std::int64_t m = 29, n = 27, z = 31;
  Matrix a = random_matrix(m, z, 41);
  Matrix b = random_matrix(z, n, 42);
  // Every host-runnable register tile (SIMD kernels included: static
  // ownership and the per-coefficient k order are shape-independent), with
  // streaming stores both off and on.
  for (const MicroKernel& kernel : all_micro_kernels()) {
    for (const bool stream : {false, true}) {
      for (const CtxGemmFn fn : schedules) {
        Matrix baseline(m, n, 0.75);
        {
          ThreadPool pool(1);
          KernelContext ctx(1, KernelPath::kScalar);
          ctx.set_kernel(kernel);
          ctx.set_stream_stores(stream);
          fn(baseline, a, b, t, pool, ctx);
        }
        for (const int workers : {2, 3, 5}) {
          Matrix got(m, n, 0.75);
          ThreadPool pool(workers);
          KernelContext ctx(workers, KernelPath::kScalar);
          ctx.set_kernel(kernel);
          ctx.set_stream_stores(stream);
          fn(got, a, b, t, pool, ctx);
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              ASSERT_EQ(std::bit_cast<std::uint64_t>(got.at(i, j)),
                        std::bit_cast<std::uint64_t>(baseline.at(i, j)))
                  << kernel.name << (stream ? " stream" : "") << " "
                  << workers << " workers, cell (" << i << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(KernelContext, RejectsWorkerIdOutOfRange) {
  KernelContext ctx(2, KernelPath::kScalar);
  Matrix a = random_matrix(4, 4, 1);
  Matrix b = random_matrix(4, 4, 2);
  Matrix c(4, 4);
  EXPECT_THROW(ctx.block_op(2, c, a, b, 0, 0, 0, 4, 4, 4), Error);
  EXPECT_THROW(ctx.block_op(-1, c, a, b, 0, 0, 0, 4, 4, 4), Error);
}

}  // namespace
}  // namespace mcmm
