// The batched small-shape GEMM engine (src/batch): bucketer properties,
// the Tdata crossover model, bit-identity of every bucket strategy
// against the serial reference, shared-packed-B equivalence, and the
// server's batch verb.  Suite names start with "Batch" — the CI tsan job
// keys its presence guard on that prefix.
#include "batch/gemm_batch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "batch/bucketer.hpp"
#include "gemm/microkernel.hpp"
#include "gemm/pack.hpp"
#include "gemm/validate.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace mcmm::batch {
namespace {

Matrix random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Matrix m(r, c);
  m.fill_random(seed);
  return m;
}

/// Operand pool + product list for one batch.  Matrices live here so the
/// BatchProduct pointers stay valid for the test's lifetime.
struct TestBatch {
  std::vector<std::unique_ptr<Matrix>> storage;
  std::vector<BatchProduct> products;

  Matrix* make(std::int64_t r, std::int64_t c, std::uint64_t seed) {
    storage.push_back(std::make_unique<Matrix>(r, c));
    storage.back()->fill_random(seed);
    return storage.back().get();
  }

  Matrix* zeros(std::int64_t r, std::int64_t c) {
    storage.push_back(std::make_unique<Matrix>(r, c));
    return storage.back().get();
  }

  void add(std::int64_t m, std::int64_t n, std::int64_t k, std::uint64_t seed,
           const Matrix* shared_b = nullptr) {
    Matrix* a = make(m, k, seed * 2 + 1);
    const Matrix* b = shared_b != nullptr ? shared_b : make(k, n, seed * 2 + 2);
    products.push_back(BatchProduct{zeros(m, n), a, b});
  }

  /// Deep-copy every C so one batch can run under several engines.
  std::vector<Matrix> snapshot_c() const {
    std::vector<Matrix> out;
    for (const BatchProduct& p : products) out.push_back(*p.c);
    return out;
  }

  void restore_c(const std::vector<Matrix>& saved) {
    for (std::size_t i = 0; i < products.size(); ++i) *products[i].c = saved[i];
  }
};

// --- crossover model ----------------------------------------------------

TEST(BatchBucketer, CrossoverPrefersDirectOnlyForTinyShapes) {
  // Well below the modelled crossover: the unpacked path moves less data.
  EXPECT_TRUE(prefer_direct(4, 4, 4));
  EXPECT_TRUE(prefer_direct(8, 8, 8));
  EXPECT_TRUE(prefer_direct(1, 1, 1));
  // Well above: packing pays for itself.
  EXPECT_FALSE(prefer_direct(64, 64, 64));
  EXPECT_FALSE(prefer_direct(128, 128, 128));
  // The square crossover sits near order 16 (see docs/batching.md); it is
  // monotone in each dimension around there.
  EXPECT_LT(direct_data_volume(8, 8, 8), packed_data_volume(8, 8, 8));
  EXPECT_GT(direct_data_volume(64, 64, 64), packed_data_volume(64, 64, 64));
}

TEST(BatchBucketer, VolumesMatchTheClosedForms) {
  // m=n=k=8 with MR=4, NR=8: direct = 64*1 + 64*2 + 64; packed = 3*128+64.
  EXPECT_EQ(direct_data_volume(8, 8, 8), 8 * 8 * 1 + 8 * 8 * 2 + 64);
  EXPECT_EQ(packed_data_volume(8, 8, 8), 3 * (64 + 64) + 64);
}

// --- bucketing ----------------------------------------------------------

TEST(BatchBucketer, GroupsByShapeInFirstAppearanceOrder) {
  TestBatch tb;
  tb.add(64, 64, 64, 1);
  tb.add(32, 48, 16, 2);
  tb.add(64, 64, 64, 3);
  tb.add(32, 48, 16, 4);
  const auto buckets = bucket_products(tb.products, BatchPolicy{});
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].shape, (ShapeClass{64, 64, 64}));
  EXPECT_EQ(buckets[0].items, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(buckets[1].shape, (ShapeClass{32, 48, 16}));
  EXPECT_EQ(buckets[1].items, (std::vector<std::size_t>{1, 3}));
}

TEST(BatchBucketer, StrategyFollowsTheCrossover) {
  TestBatch tb;
  tb.add(8, 8, 8, 1);     // tiny -> direct
  tb.add(64, 64, 64, 2);  // large, unshared B -> packed
  const auto buckets = bucket_products(tb.products, BatchPolicy{});
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].strategy, BucketStrategy::kDirect);
  EXPECT_EQ(buckets[1].strategy, BucketStrategy::kPacked);
}

TEST(BatchBucketer, RecurringBOperandSplitsIntoASharedBucket) {
  TestBatch tb;
  Matrix* shared = tb.make(64, 64, 99);
  tb.add(64, 64, 64, 1, shared);
  tb.add(64, 64, 64, 2, shared);
  tb.add(64, 64, 64, 3, shared);
  tb.add(64, 64, 64, 4);  // same shape, its own B -> plain packed
  const auto buckets = bucket_products(tb.products, BatchPolicy{});
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].strategy, BucketStrategy::kPackedSharedB);
  EXPECT_EQ(buckets[0].shared_b, shared);
  EXPECT_EQ(buckets[0].items.size(), 3u);
  EXPECT_EQ(buckets[1].strategy, BucketStrategy::kPacked);
  EXPECT_EQ(buckets[1].shared_b, nullptr);
}

TEST(BatchBucketer, SharedBNeverUpgradesADirectBucket) {
  TestBatch tb;
  Matrix* shared = tb.make(8, 8, 7);
  tb.add(8, 8, 8, 1, shared);
  tb.add(8, 8, 8, 2, shared);
  const auto buckets = bucket_products(tb.products, BatchPolicy{});
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].strategy, BucketStrategy::kDirect);
  EXPECT_EQ(buckets[0].shared_b, nullptr);
}

TEST(BatchBucketer, RejectsInvalidProducts) {
  TestBatch tb;
  tb.add(16, 16, 16, 1);
  BatchProduct bad = tb.products[0];
  bad.b = nullptr;
  EXPECT_THROW(bucket_products({bad}, BatchPolicy{}), Error);

  Matrix c(4, 4), a(4, 5), b(6, 4);  // inner dimension mismatch
  EXPECT_THROW(bucket_products({BatchProduct{&c, &a, &b}}, BatchPolicy{}),
               Error);

  BatchPolicy bad_q;
  bad_q.q = 0;
  EXPECT_THROW(bucket_products(tb.products, bad_q), Error);
}

// --- shared packed B ----------------------------------------------------

TEST(Batch, SharedPackedBPanelsAreByteIdenticalToPackBPanel) {
  const std::int64_t k = 37, n = 23, q = 16;
  Matrix b = random_matrix(k, n, 11);
  SharedPackedB panels(k, n, q);
  for (std::int64_t i = 0; i < panels.blocks(); ++i) panels.pack_block(b, i);
  for (std::int64_t k0 = 0; k0 < k; k0 += q) {
    const std::int64_t kb = std::min(q, k - k0);
    for (std::int64_t j0 = 0; j0 < n; j0 += q) {
      const std::int64_t nb = std::min(q, n - j0);
      AlignedVector expect(
          static_cast<std::size_t>(packed_b_size(kb, nb, kMicroN)));
      pack_b_panel(b, k0, j0, kb, nb, kMicroN, expect.data());
      ASSERT_EQ(std::memcmp(panels.panel(k0, j0), expect.data(),
                            expect.size() * sizeof(double)),
                0)
          << "panel (" << k0 << ", " << j0 << ") differs";
    }
  }
}

// --- bit-identity -------------------------------------------------------

/// Runs one batch through gemm_batch on `workers` workers and through the
/// serial reference, asserting every C is bitwise identical.
void expect_bit_identical(TestBatch& tb, const BatchPolicy& policy,
                          KernelPath path, int workers) {
  const std::vector<Matrix> original = tb.snapshot_c();

  KernelContext serial_ctx(1, path);
  const BatchResult serial = gemm_batch_serial(tb.products, serial_ctx, policy);
  const std::vector<Matrix> expect = tb.snapshot_c();

  tb.restore_c(original);
  ThreadPool pool(workers);
  KernelContext ctx(workers, path);
  const BatchResult parallel = gemm_batch(tb.products, pool, ctx, policy);

  EXPECT_EQ(serial.products, parallel.products);
  EXPECT_EQ(serial.buckets.size(), parallel.buckets.size());
  for (std::size_t i = 0; i < tb.products.size(); ++i) {
    ASSERT_EQ(Matrix::max_abs_diff(*tb.products[i].c, expect[i]), 0.0)
        << "product " << i << " not bit-identical (path "
        << ctx.dispatch_name() << ", " << workers << " workers)";
  }
}

/// A ragged mixed batch: tiny direct shapes, packed shapes, a shared-B
/// run, and sub-micro-tile raggedness.
TestBatch mixed_batch() {
  TestBatch tb;
  Matrix* shared = tb.make(48, 40, 1000);
  for (int i = 0; i < 6; ++i) tb.add(8, 8, 8, static_cast<std::uint64_t>(i));
  for (int i = 0; i < 4; ++i) {
    tb.add(48, 40, 48, static_cast<std::uint64_t>(100 + i), shared);
  }
  for (int i = 0; i < 3; ++i) {
    tb.add(33, 29, 17, static_cast<std::uint64_t>(200 + i));
  }
  tb.add(3, 5, 2, 300);
  tb.add(1, 1, 1, 301);
  return tb;
}

TEST(Batch, BitIdenticalToSerialAutoStrategies) {
  for (const int workers : {1, 2, 4}) {
    TestBatch tb = mixed_batch();
    expect_bit_identical(tb, BatchPolicy{}, KernelPath::kScalar, workers);
  }
  TestBatch tb = mixed_batch();
  expect_bit_identical(tb, BatchPolicy{}, KernelPath::kAuto, 4);
}

TEST(Batch, BitIdenticalToSerialEveryForcedStrategy) {
  for (const BucketStrategy strategy :
       {BucketStrategy::kDirect, BucketStrategy::kPacked,
        BucketStrategy::kPackedSharedB}) {
    for (const KernelPath path : {KernelPath::kScalar, KernelPath::kAuto}) {
      TestBatch tb = mixed_batch();
      BatchPolicy policy;
      policy.force = true;
      policy.forced = strategy;
      expect_bit_identical(tb, policy, path, 4);
    }
  }
}

TEST(Batch, MatchesTheReferenceKernelWithinTolerance) {
  TestBatch tb = mixed_batch();
  ThreadPool pool(2);
  KernelContext ctx(2, KernelPath::kAuto);
  gemm_batch(tb.products, pool, ctx, BatchPolicy{});
  for (const BatchProduct& p : tb.products) {
    Matrix expect(p.c->rows(), p.c->cols());
    gemm_reference(expect, *p.a, *p.b);
    ASSERT_TRUE(gemm_matches(*p.c, expect, p.a->cols()));
  }
}

// --- edges --------------------------------------------------------------

TEST(Batch, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  KernelContext ctx(2, KernelPath::kScalar);
  const BatchResult result = gemm_batch({}, pool, ctx, BatchPolicy{});
  EXPECT_EQ(result.products, 0);
  EXPECT_TRUE(result.buckets.empty());
}

TEST(Batch, ZeroDimensionProductsAreNoOps) {
  TestBatch tb;
  tb.add(0, 8, 8, 1);
  tb.add(8, 0, 8, 2);
  tb.add(8, 8, 0, 3);
  tb.add(8, 8, 8, 4);  // one real product rides along
  ThreadPool pool(2);
  KernelContext ctx(2, KernelPath::kScalar);
  const BatchResult result = gemm_batch(tb.products, pool, ctx, BatchPolicy{});
  EXPECT_EQ(result.products, 4);
  Matrix expect(8, 8);
  gemm_reference(expect, *tb.products[3].a, *tb.products[3].b);
  EXPECT_TRUE(gemm_matches(*tb.products[3].c, expect, 8));
}

TEST(Batch, ResultReportsPerBucketCounts) {
  TestBatch tb = mixed_batch();
  ThreadPool pool(2);
  KernelContext ctx(2, KernelPath::kScalar);
  const BatchResult result = gemm_batch(tb.products, pool, ctx, BatchPolicy{});
  EXPECT_EQ(result.products, static_cast<std::int64_t>(tb.products.size()));
  std::int64_t sum = 0;
  bool saw_shared = false;
  for (const BucketStats& bucket : result.buckets) {
    sum += bucket.products;
    EXPECT_GE(bucket.wall_ms, 0.0);
    if (bucket.strategy == BucketStrategy::kPackedSharedB) {
      saw_shared = true;
      EXPECT_TRUE(bucket.shared_b);
    }
  }
  EXPECT_EQ(sum, result.products);
  EXPECT_TRUE(saw_shared) << "mixed batch must exercise the shared-B path";
  EXPECT_GE(result.wall_ms, 0.0);
}

// --- serving path -------------------------------------------------------

serve::GemmServer::Config batch_server_config() {
  serve::GemmServer::Config config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.max_tenants = 4;
  config.q = 16;
  return config;
}

TEST(BatchServe, RoundTripThroughTheServer) {
  TestBatch tb = mixed_batch();
  serve::GemmServer server(batch_server_config());
  serve::BatchGemmRequest request;
  request.tenant = 1;
  request.products = tb.products;
  request.policy.q = 16;
  const serve::BatchGemmResponse response = server.run_batch(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.products, static_cast<std::int64_t>(tb.products.size()));
  EXPECT_GT(response.products_per_sec, 0.0);
  EXPECT_FALSE(response.buckets.empty());
  EXPECT_GT(response.trace.spans, 0);
  for (const BatchProduct& p : tb.products) {
    Matrix expect(p.c->rows(), p.c->cols());
    gemm_reference(expect, *p.a, *p.b);
    ASSERT_TRUE(gemm_matches(*p.c, expect, p.a->cols()));
  }

  // The batch surfaces in the stats document's "batches" array (NOT in
  // "requests", whose records promise a per-request schedule).
  const std::string stats = server.stats_json();
  const JsonValue doc = json_parse(stats);
  const JsonValue* batches = doc.find("batches");
  ASSERT_NE(batches, nullptr);
  ASSERT_EQ(batches->array.size(), 1u);
  const JsonValue& record = batches->array[0];
  EXPECT_EQ(record.find("tenant")->number, 1.0);
  EXPECT_TRUE(record.find("ok")->boolean);
  EXPECT_EQ(record.find("products")->number,
            static_cast<double>(tb.products.size()));
  EXPECT_GT(record.find("products_per_sec")->number, 0.0);
  ASSERT_NE(record.find("buckets"), nullptr);
  const JsonValue* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_TRUE(requests->array.empty())
      << "batches must not leak into the per-request log";
}

TEST(BatchServe, RejectsInvalidBatches) {
  serve::GemmServer server(batch_server_config());
  serve::BatchGemmRequest empty;
  empty.tenant = 0;
  EXPECT_EQ(server.submit_batch(empty).status,
            serve::SubmitStatus::kRejectedInvalid);

  TestBatch tb;
  tb.add(8, 8, 8, 1);
  serve::BatchGemmRequest bad_tenant;
  bad_tenant.tenant = 99;
  bad_tenant.products = tb.products;
  EXPECT_EQ(server.submit_batch(bad_tenant).status,
            serve::SubmitStatus::kRejectedInvalid);

  Matrix c(4, 4), a(4, 5), b(6, 4);
  serve::BatchGemmRequest bad_shape;
  bad_shape.tenant = 0;
  bad_shape.products.push_back(BatchProduct{&c, &a, &b});
  EXPECT_EQ(server.submit_batch(bad_shape).status,
            serve::SubmitStatus::kRejectedInvalid);
}

TEST(BatchServe, BatchIsOneAdmissionUnit) {
  serve::GemmServer::Config config = batch_server_config();
  config.queue_capacity = 2;
  serve::GemmServer server(config);
  server.pause_dispatch();

  TestBatch tb;
  for (int i = 0; i < 16; ++i) {
    tb.add(8, 8, 8, static_cast<std::uint64_t>(i));
  }
  serve::BatchGemmRequest request;
  request.tenant = 0;
  request.products = tb.products;

  // A 16-product batch takes ONE of the two ring slots.
  serve::BatchSubmit first = server.submit_batch(request);
  ASSERT_EQ(first.status, serve::SubmitStatus::kAccepted);
  serve::BatchSubmit second = server.submit_batch(request);
  ASSERT_EQ(second.status, serve::SubmitStatus::kAccepted);
  serve::BatchSubmit third = server.submit_batch(request);
  EXPECT_EQ(third.status, serve::SubmitStatus::kRejectedQueueFull);

  server.resume_dispatch();
  EXPECT_TRUE(first.ticket->wait().ok);
  EXPECT_TRUE(second.ticket->wait().ok);
}

}  // namespace
}  // namespace mcmm::batch
