#include "analysis/predictions.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"

namespace mcmm {
namespace {

TEST(Predictions, SharedOptFormulas) {
  const Problem prob{60, 60, 60};
  const SharedOptParams sp{30};
  const MissPrediction p = predict_shared_opt(prob, 4, sp);
  // MS = mn + 2mnz/lambda, MD = 2mnz/p + mnz/lambda.
  EXPECT_DOUBLE_EQ(p.ms, 3600 + 2.0 * 216000 / 30);
  EXPECT_DOUBLE_EQ(p.md, 2.0 * 216000 / 4 + 216000.0 / 30);
}

TEST(Predictions, DistributedOptFormulas) {
  const Problem prob{48, 48, 48};
  DistributedOptParams dp;
  dp.mu = 4;
  dp.grid = Grid{2, 2};
  const MissPrediction p = predict_distributed_opt(prob, 4, dp);
  const double mn = 48.0 * 48.0, mnz = mn * 48.0;
  EXPECT_DOUBLE_EQ(p.ms, mn + 2.0 * mnz / (4 * 2));
  EXPECT_DOUBLE_EQ(p.md, mn / 4 + 2.0 * mnz / (4 * 4));
}

TEST(Predictions, TradeoffGeneralCase) {
  const Problem prob{48, 48, 48};
  TradeoffParams tp;
  tp.alpha = 24;
  tp.beta = 16;
  tp.mu = 4;
  tp.grid = Grid{2, 2};
  const MissPrediction p = predict_tradeoff(prob, 4, tp);
  const double mn = 48.0 * 48.0, mnz = mn * 48.0;
  EXPECT_DOUBLE_EQ(p.ms, mn + 2.0 * mnz / 24);
  EXPECT_DOUBLE_EQ(p.md, mnz / (4.0 * 16) + 2.0 * mnz / (4.0 * 4));
}

TEST(Predictions, TradeoffSpecialCaseAlphaEqualsGrid) {
  const Problem prob{48, 48, 48};
  TradeoffParams tp;
  tp.alpha = 8;  // == sqrt(p) * mu: C sub-blocks loaded once per tile
  tp.beta = 16;
  tp.mu = 4;
  tp.grid = Grid{2, 2};
  const MissPrediction p = predict_tradeoff(prob, 4, tp);
  const double mn = 48.0 * 48.0, mnz = mn * 48.0;
  EXPECT_DOUBLE_EQ(p.md, mn / 4 + 2.0 * mnz / (4.0 * 4));
}

TEST(Predictions, TdataCombinesBandwidths) {
  MissPrediction p;
  p.ms = 1000;
  p.md = 500;
  EXPECT_DOUBLE_EQ(p.tdata(2.0, 0.5), 500 + 1000);
}

TEST(Predictions, CcrHelpers) {
  const Problem prob{10, 10, 10};
  MissPrediction p;
  p.ms = 2000;
  p.md = 250;
  EXPECT_DOUBLE_EQ(p.ccr_shared(prob), 2.0);
  EXPECT_DOUBLE_EQ(p.ccr_distributed(prob, 4), 1.0);
}

// Asymptotics from the paper: Shared Opt's CCR_S -> 2/lambda, within a
// sqrt(32/27) factor of the lower bound sqrt(27/(8 CS)).
TEST(Predictions, SharedOptAsymptoticNearBound) {
  const std::int64_t cs = 977;
  const SharedOptParams sp = shared_opt_params(cs);
  const double asym = asymptotic_ccr_shared_opt(sp);
  const double bound = ccr_lower_bound(cs);
  EXPECT_GE(asym, bound);
  // 2/lambda vs sqrt(27/(8 CS)): ratio sqrt(32/27) ~ 1.089 for lambda ~ sqrt(CS).
  EXPECT_LE(asym, 1.2 * bound);
}

TEST(Predictions, DistributedOptAsymptoticNearBound) {
  const std::int64_t cd = 21;
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = cd;
  const DistributedOptParams dp = distributed_opt_params(cfg);
  const double asym = asymptotic_ccr_distributed_opt(dp);
  const double bound = ccr_lower_bound(cd);
  EXPECT_GE(asym, bound);
  // mu = 4 for CD = 21: 2/4 = 0.5 vs sqrt(27/168) ~ 0.40: within ~25%.
  EXPECT_LE(asym, 1.3 * bound);
}

// Larger tiles always help the level they target: MS prediction decreases
// with lambda, MD prediction decreases with mu.
TEST(Predictions, MonotoneInParameters) {
  const Problem prob{120, 120, 120};
  double prev_ms = 1e300;
  for (std::int64_t lambda = 2; lambda <= 40; ++lambda) {
    const double ms = predict_shared_opt(prob, 4, {lambda}).ms;
    EXPECT_LT(ms, prev_ms);
    prev_ms = ms;
  }
  double prev_md = 1e300;
  for (std::int64_t mu = 1; mu <= 10; ++mu) {
    DistributedOptParams dp;
    dp.mu = mu;
    dp.grid = Grid{2, 2};
    const double md = predict_distributed_opt(prob, 4, dp).md;
    EXPECT_LT(md, prev_md);
    prev_md = md;
  }
}

}  // namespace
}  // namespace mcmm
