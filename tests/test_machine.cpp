#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace mcmm {
namespace {

MachineConfig small_cfg(int p = 2, std::int64_t cs = 8, std::int64_t cd = 3) {
  MachineConfig cfg;
  cfg.p = p;
  cfg.cs = cs;
  cfg.cd = cd;
  return cfg;
}

// ---------------------------------------------------------------------------
// LRU policy
// ---------------------------------------------------------------------------

TEST(MachineLru, ColdAccessMissesBothLevels) {
  Machine m(small_cfg(), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  EXPECT_EQ(m.stats().shared_misses, 1);
  EXPECT_EQ(m.stats().dist_misses[0], 1);
  EXPECT_TRUE(m.resident_shared(BlockId::a(0, 0)));
  EXPECT_TRUE(m.resident_distributed(0, BlockId::a(0, 0)));
}

TEST(MachineLru, RepeatAccessHitsDistributed) {
  Machine m(small_cfg(), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  m.access(0, BlockId::a(0, 0), Rw::kWrite);
  EXPECT_EQ(m.stats().shared_misses, 1);
  EXPECT_EQ(m.stats().dist_misses[0], 1);
  EXPECT_EQ(m.stats().dist_hits[0], 2);
}

TEST(MachineLru, SecondCoreHitsSharedCache) {
  Machine m(small_cfg(), Policy::kLru);
  m.access(0, BlockId::b(1, 1), Rw::kRead);
  m.access(1, BlockId::b(1, 1), Rw::kRead);
  EXPECT_EQ(m.stats().shared_misses, 1) << "second core finds it in shared";
  EXPECT_EQ(m.stats().shared_hits, 1);
  EXPECT_EQ(m.stats().dist_misses[0], 1);
  EXPECT_EQ(m.stats().dist_misses[1], 1);
}

TEST(MachineLru, DistributedEvictionKeepsSharedResident) {
  Machine m(small_cfg(2, 8, 2), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  m.access(0, BlockId::a(1, 0), Rw::kRead);
  m.access(0, BlockId::a(2, 0), Rw::kRead);  // evicts a(0,0) from dcache
  EXPECT_FALSE(m.resident_distributed(0, BlockId::a(0, 0)));
  EXPECT_TRUE(m.resident_shared(BlockId::a(0, 0)));
  m.access(0, BlockId::a(0, 0), Rw::kRead);  // back in: shared hit
  EXPECT_EQ(m.stats().shared_misses, 3);
  EXPECT_EQ(m.stats().shared_hits, 1);
  EXPECT_EQ(m.stats().dist_misses[0], 4);
}

TEST(MachineLru, SharedEvictionBackInvalidatesDistributed) {
  // CS = 4, CD = 2: walk 5 distinct blocks through core 0; block 0 must be
  // gone from BOTH levels (inclusivity), even though core 1 held it too.
  Machine m(small_cfg(2, 4, 2), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  m.access(1, BlockId::a(0, 0), Rw::kRead);
  for (std::int64_t i = 1; i <= 4; ++i) {
    m.access(0, BlockId::a(i, 0), Rw::kRead);
  }
  EXPECT_FALSE(m.resident_shared(BlockId::a(0, 0)));
  EXPECT_FALSE(m.resident_distributed(0, BlockId::a(0, 0)));
  EXPECT_FALSE(m.resident_distributed(1, BlockId::a(0, 0)))
      << "back-invalidation must reach every distributed cache";
  m.check_inclusive();
}

TEST(MachineLru, InclusivityHeldUnderRandomTraffic) {
  Machine m(small_cfg(4, 12, 3), Policy::kLru);
  std::uint64_t rng = 7;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 50000; ++step) {
    const int core = static_cast<int>(next() % 4);
    const auto i = static_cast<std::int64_t>(next() % 6);
    const auto j = static_cast<std::int64_t>(next() % 6);
    const auto tag = static_cast<int>(next() % 3);
    const BlockId b = tag == 0   ? BlockId::a(i, j)
                      : tag == 1 ? BlockId::b(i, j)
                                 : BlockId::c(i, j);
    m.access(core, b, next() % 3 == 0 ? Rw::kWrite : Rw::kRead);
    if (step % 500 == 0) m.check_inclusive();
  }
  m.check_inclusive();
}

TEST(MachineLru, DirtyEvictionWritesBackToMemory) {
  Machine m(small_cfg(1, 2, 1), Policy::kLru);
  m.access(0, BlockId::c(0, 0), Rw::kWrite);
  m.access(0, BlockId::c(1, 0), Rw::kRead);   // c(0,0) leaves dcache dirty
  EXPECT_EQ(m.stats().writebacks_to_shared, 1);
  m.access(0, BlockId::c(2, 0), Rw::kRead);   // c(0,0) leaves shared dirty
  EXPECT_EQ(m.stats().writebacks_to_memory, 1);
}

TEST(MachineLru, CleanEvictionWritesNothing) {
  Machine m(small_cfg(1, 2, 1), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  m.access(0, BlockId::a(1, 0), Rw::kRead);
  m.access(0, BlockId::a(2, 0), Rw::kRead);
  EXPECT_EQ(m.stats().writebacks_to_shared, 0);
  EXPECT_EQ(m.stats().writebacks_to_memory, 0);
}

TEST(MachineLru, FlushDrainsAndWritesBackDirtyData) {
  Machine m(small_cfg(2, 8, 3), Policy::kLru);
  m.access(0, BlockId::c(0, 0), Rw::kWrite);
  m.access(1, BlockId::c(1, 1), Rw::kWrite);
  m.access(0, BlockId::a(5, 5), Rw::kRead);
  m.flush();
  EXPECT_EQ(m.shared_size(), 0);
  EXPECT_EQ(m.distributed_size(0), 0);
  EXPECT_EQ(m.distributed_size(1), 0);
  EXPECT_EQ(m.stats().writebacks_to_shared, 2);
  EXPECT_EQ(m.stats().writebacks_to_memory, 2);
  m.assert_empty();
}

TEST(MachineLru, ManagementCallsAreIgnored) {
  Machine m(small_cfg(), Policy::kLru);
  m.load_shared(BlockId::a(0, 0));
  m.load_distributed(0, BlockId::a(0, 0));
  m.evict_distributed(0, BlockId::a(0, 0));
  m.evict_shared(BlockId::a(0, 0));
  m.update_shared(0, BlockId::a(0, 0));
  EXPECT_EQ(m.stats().shared_misses, 0);
  EXPECT_EQ(m.stats().dist_misses[0], 0);
  EXPECT_EQ(m.shared_size(), 0);
}

TEST(MachineLru, FmaTouchesThreeBlocksAndCounts) {
  Machine m(small_cfg(), Policy::kLru);
  m.fma(1, 2, 3, 4);
  EXPECT_EQ(m.stats().fmas[1], 1);
  EXPECT_EQ(m.stats().total_fmas(), 1);
  EXPECT_TRUE(m.resident_distributed(1, BlockId::a(2, 4)));
  EXPECT_TRUE(m.resident_distributed(1, BlockId::b(4, 3)));
  EXPECT_TRUE(m.resident_distributed(1, BlockId::c(2, 3)));
  EXPECT_EQ(m.stats().dist_misses[1], 3);
  EXPECT_EQ(m.stats().shared_misses, 3);
}

TEST(MachineLru, FmaObserverSeesEveryOperation) {
  Machine m(small_cfg(), Policy::kLru);
  int calls = 0;
  m.set_fma_observer([&](int core, std::int64_t i, std::int64_t j, std::int64_t k) {
    ++calls;
    EXPECT_EQ(core, 0);
    EXPECT_EQ(i, 1);
    EXPECT_EQ(j, 2);
    EXPECT_EQ(k, 3);
  });
  m.fma(0, 1, 2, 3);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// IDEAL policy
// ---------------------------------------------------------------------------

TEST(MachineIdeal, ExplicitLoadsCountMisses) {
  Machine m(small_cfg(), Policy::kIdeal);
  m.load_shared(BlockId::a(0, 0));
  m.load_shared(BlockId::a(0, 0));  // resident: a hit, not a miss
  EXPECT_EQ(m.stats().shared_misses, 1);
  EXPECT_EQ(m.stats().shared_hits, 1);
  m.load_distributed(1, BlockId::a(0, 0));
  m.load_distributed(1, BlockId::a(0, 0));
  EXPECT_EQ(m.stats().dist_misses[1], 1);
  EXPECT_EQ(m.stats().dist_hits[1], 1);
}

TEST(MachineIdeal, AccessRequiresResidency) {
  Machine m(small_cfg(), Policy::kIdeal);
  m.load_shared(BlockId::a(0, 0));
  m.load_distributed(0, BlockId::a(0, 0));
  m.access(0, BlockId::a(0, 0), Rw::kRead);  // fine
  EXPECT_EQ(m.stats().dist_hits[0], 1);
  EXPECT_DEATH(m.access(1, BlockId::a(0, 0), Rw::kRead), "non-resident");
}

TEST(MachineIdeal, LoadDistributedEnforcesInclusivity) {
  Machine m(small_cfg(), Policy::kIdeal);
  EXPECT_DEATH(m.load_distributed(0, BlockId::a(9, 9)), "inclusivity");
}

TEST(MachineIdeal, EvictSharedRefusesWhileInDistributed) {
  Machine m(small_cfg(), Policy::kIdeal);
  m.load_shared(BlockId::a(0, 0));
  m.load_distributed(0, BlockId::a(0, 0));
  EXPECT_DEATH(m.evict_shared(BlockId::a(0, 0)), "distributed");
}

TEST(MachineIdeal, DirtyEvictionPropagatesToSharedThenMemory) {
  Machine m(small_cfg(), Policy::kIdeal);
  const BlockId c = BlockId::c(0, 0);
  m.load_shared(c);
  m.load_distributed(0, c);
  m.access(0, c, Rw::kWrite);
  m.evict_distributed(0, c);
  EXPECT_EQ(m.stats().writebacks_to_shared, 1);
  m.evict_shared(c);
  EXPECT_EQ(m.stats().writebacks_to_memory, 1);
}

TEST(MachineIdeal, CleanBlocksEvictSilently) {
  Machine m(small_cfg(), Policy::kIdeal);
  const BlockId a = BlockId::a(0, 0);
  m.load_shared(a);
  m.load_distributed(0, a);
  m.access(0, a, Rw::kRead);
  m.evict_distributed(0, a);
  m.evict_shared(a);
  EXPECT_EQ(m.stats().writebacks_to_shared, 0);
  EXPECT_EQ(m.stats().writebacks_to_memory, 0);
  m.assert_empty();
}

TEST(MachineIdeal, UpdateSharedMarksDirty) {
  Machine m(small_cfg(), Policy::kIdeal);
  const BlockId c = BlockId::c(0, 0);
  m.load_shared(c);
  m.load_distributed(0, c);
  m.update_shared(0, c);
  EXPECT_EQ(m.stats().writebacks_to_shared, 1);
  m.evict_distributed(0, c);  // block was never dirtied in the dcache
  m.evict_shared(c);
  EXPECT_EQ(m.stats().writebacks_to_memory, 1) << "shared copy was dirty";
}

TEST(MachineIdeal, FlushDrainsIdealCaches) {
  Machine m(small_cfg(), Policy::kIdeal);
  m.load_shared(BlockId::c(0, 0));
  m.load_distributed(0, BlockId::c(0, 0));
  m.access(0, BlockId::c(0, 0), Rw::kWrite);
  m.flush();
  m.assert_empty();
  EXPECT_EQ(m.stats().writebacks_to_shared, 1);
  EXPECT_EQ(m.stats().writebacks_to_memory, 1);
}

TEST(MachineIdealDeath, SharedCapacityEnforced) {
  Machine m(small_cfg(1, 2, 1), Policy::kIdeal);
  m.load_shared(BlockId::a(0, 0));
  m.load_shared(BlockId::a(1, 0));
  EXPECT_DEATH(m.load_shared(BlockId::a(2, 0)), "capacity");
}

}  // namespace
}  // namespace mcmm
