// Tests for the deterministic concurrency model checker (src/check/).
//
// Three layers:
//   * scheduler/explorer mechanics — determinism, replay, preemption
//     accounting, deadlock and lost-wakeup classification;
//   * the vector-clock race detector — seeded racy protocols must be
//     flagged, release/acquire protocols must not;
//   * the registered scenario suites (src/check/scenarios.cpp) run
//     exhaustively at preemption bound 2: scenarios marked kNone must
//     come back green, mutation scenarios must be flagged with a
//     replayable schedule.  This is the gtest twin of `mcmm_check`.
#include "check/model_checker.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "check/sync.hpp"
#include "util/mpmc_ring.hpp"

namespace mcmm::check {
namespace {

ExploreOptions quick(int bound = 2) {
  ExploreOptions opts;
  opts.preemption_bound = bound;
  opts.random_iterations = 500;
  return opts;
}

TEST(ModelCheckScheduler, SingleThreadRunsToCompletion) {
  int calls = 0;
  const ExploreResult result = explore([&] { ++calls; }, quick());
  EXPECT_FALSE(result.failure) << result.failure.message;
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.schedules_explored, 1u);
  EXPECT_EQ(calls, 1);
}

TEST(ModelCheckScheduler, SpawnJoinOrdersMemory) {
  const ExploreResult result = explore(
      [] {
        checked_value<int> data{0};
        checked_thread t([&] { data.store(1); });
        t.join();
        expect(data.load() == 1, "join must order the child's write");
      },
      quick());
  EXPECT_FALSE(result.failure) << result.failure.message;
  EXPECT_TRUE(result.exhausted);
}

TEST(ModelCheckScheduler, ExpectViolationIsReportedWithSchedule) {
  const ExploreResult result =
      explore([] { expect(false, "always fails"); }, quick());
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kAssert);
  EXPECT_EQ(result.failure.message, "always fails");
  EXPECT_FALSE(result.failure.schedule.empty());
  EXPECT_FALSE(result.failure.interleaving.empty());
}

TEST(ModelCheckScheduler, UncaughtExceptionIsReported) {
  const ExploreResult result =
      explore([] { throw std::runtime_error("boom"); }, quick());
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kException);
  EXPECT_NE(result.failure.message.find("boom"), std::string::npos);
}

TEST(ModelCheckScheduler, SelfDeadlockIsTerminal) {
  // Double lock of a non-recursive mutex: thread 0 blocks on itself.
  const ExploreResult result = explore(
      [] {
        // Leaked deliberately: the scenario deadlocks holding it, and the
        // scheduler detaches the parked thread rather than unwinding it.
        auto* m = new checked_mutex();
        m->lock();
        m->lock();
      },
      quick());
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kDeadlock);
}

TEST(ModelCheckScheduler, AbaDeadlockIsFound) {
  // Classic lock-order inversion: t0 takes A then B, t1 takes B then A.
  const ExploreResult result = explore(
      [] {
        auto* a = new checked_mutex();
        auto* b = new checked_mutex();
        checked_thread t([a, b] {
          b->lock();
          a->lock();
          a->unlock();
          b->unlock();
        });
        a->lock();
        b->lock();
        b->unlock();
        a->unlock();
        t.join();
      },
      quick());
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kDeadlock);
}

TEST(ModelCheckScheduler, ReplayReproducesTheFailure) {
  auto scenario = [] {
    checked_atomic<int> v{0};
    auto bump = [&] {
      const int x = v.load(std::memory_order_relaxed);
      v.store(x + 1, std::memory_order_relaxed);
    };
    checked_thread a(bump);
    checked_thread b(bump);
    a.join();
    b.join();
    expect(v.load() == 2, "lost update");
  };
  const ExploreResult found = explore(scenario, quick());
  ASSERT_TRUE(found.failure);
  ASSERT_EQ(found.failure.kind, FailureKind::kAssert);

  const Scheduler::RunOutcome again =
      replay(scenario, found.failure.schedule);
  ASSERT_TRUE(again.failure);
  EXPECT_EQ(again.failure.kind, FailureKind::kAssert);
  EXPECT_EQ(again.failure.schedule, found.failure.schedule);
}

TEST(ModelCheckScheduler, ExplorationIsDeterministic) {
  auto scenario = [] {
    checked_mutex m;
    checked_value<int> n{0};
    auto inc = [&] {
      m.lock();
      n.store(n.load() + 1);
      m.unlock();
    };
    checked_thread a(inc);
    checked_thread b(inc);
    a.join();
    b.join();
  };
  const ExploreResult r1 = explore(scenario, quick());
  const ExploreResult r2 = explore(scenario, quick());
  EXPECT_EQ(r1.schedules_explored, r2.schedules_explored);
  EXPECT_EQ(static_cast<bool>(r1.failure), static_cast<bool>(r2.failure));
  EXPECT_TRUE(r1.exhausted);
}

TEST(ModelCheckScheduler, PreemptionBoundLimitsSchedules) {
  auto scenario = [] {
    checked_atomic<int> v{0};
    auto touch = [&] {
      v.store(1, std::memory_order_relaxed);
      v.store(2, std::memory_order_relaxed);
    };
    checked_thread a(touch);
    checked_thread b(touch);
    a.join();
    b.join();
  };
  const ExploreResult bound0 = explore(scenario, quick(0));
  const ExploreResult bound2 = explore(scenario, quick(2));
  EXPECT_TRUE(bound0.exhausted);
  EXPECT_TRUE(bound2.exhausted);
  EXPECT_LT(bound0.schedules_explored, bound2.schedules_explored);
}

TEST(ModelCheckRaceDetector, FlagsRacyWriteOnTheSafeOrderToo) {
  // The racing accesses are scheduled in a "safe" textual order on every
  // explored schedule with bound 0 (child runs only while the parent is
  // blocked in join), yet the missing release edge is still a race —
  // detection comes from the happens-before graph, not from observing a
  // bad ordering.
  const ExploreResult result = explore(
      [] {
        checked_value<int> data{0};
        checked_atomic<bool> flag{false};
        checked_thread w([&] {
          data.store(42);
          flag.store(true, std::memory_order_relaxed);
        });
        if (flag.load(std::memory_order_relaxed)) {
          (void)data.load();
        }
        w.join();
      },
      quick());
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kDataRace);
}

TEST(ModelCheckRaceDetector, ReleaseAcquirePairIsClean) {
  const ExploreResult result = explore(
      [] {
        checked_value<int> data{0};
        checked_atomic<bool> flag{false};
        checked_thread w([&] {
          data.store(42);
          flag.store(true, std::memory_order_release);
        });
        if (flag.load(std::memory_order_acquire)) {
          expect(data.load() == 42, "published data visible");
        }
        w.join();
      },
      quick());
  EXPECT_FALSE(result.failure) << result.failure.message;
  EXPECT_TRUE(result.exhausted);
}

TEST(ModelCheckRandom, FindsTheLostUpdate) {
  ExploreOptions opts;
  opts.random_iterations = 2000;
  opts.seed = 42;
  const ExploreResult result = explore_random(
      [] {
        checked_atomic<int> v{0};
        auto bump = [&] {
          const int x = v.load(std::memory_order_relaxed);
          v.store(x + 1, std::memory_order_relaxed);
        };
        checked_thread a(bump);
        checked_thread b(bump);
        a.join();
        b.join();
        expect(v.load() == 2, "lost update");
      },
      opts);
  ASSERT_TRUE(result.failure);
  EXPECT_EQ(result.failure.kind, FailureKind::kAssert);
}

TEST(ModelCheckParse, ScheduleRoundTrip) {
  EXPECT_EQ(parse_schedule(""), std::vector<int>{});
  EXPECT_EQ(parse_schedule("0,0,12,3"), (std::vector<int>{0, 0, 12, 3}));
  EXPECT_THROW(parse_schedule("0,,1"), Error);
  EXPECT_THROW(parse_schedule("a"), Error);
  EXPECT_THROW(parse_schedule("1,"), Error);
}

// --- the registered suites, exhaustively at bound 2 ---------------------

class BuiltinScenarios : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { register_builtin_scenarios(); }
};

TEST_F(BuiltinScenarios, RegistryIsPopulated) {
  EXPECT_GE(scenario_registry().size(), 12u);
  EXPECT_NE(find_scenario("ring/mpmc"), nullptr);
  EXPECT_EQ(find_scenario("no/such-scenario"), nullptr);
#ifdef MCMM_CHECKED_SYNC
  EXPECT_NE(find_scenario("pool/run-batch"), nullptr);
  EXPECT_NE(find_scenario("tracer/record-drops"), nullptr);
#endif
}

TEST_F(BuiltinScenarios, ExhaustiveBound2MatchesExpectations) {
  ExploreOptions opts;
  opts.preemption_bound = 2;
  opts.random_iterations = 0;
  for (const Scenario& s : scenario_registry()) {
    SCOPED_TRACE(s.name);
    const ExploreResult result = explore(s.fn, opts);
    if (s.expect == FailureKind::kNone) {
      EXPECT_FALSE(result.failure)
          << s.name << ": " << result.failure.message << "\nschedule "
          << result.failure.schedule;
      EXPECT_TRUE(result.exhausted) << s.name << ": search was cut short";
    } else {
      ASSERT_TRUE(result.failure)
          << s.name << ": mutation not flagged — the detector is blind";
      EXPECT_EQ(result.failure.kind, s.expect) << result.failure.message;
      EXPECT_FALSE(result.failure.schedule.empty());
      // Terminal failures park their OS threads for good, so only
      // record-and-continue kinds are replayed here.
      if (result.failure.kind == FailureKind::kDataRace ||
          result.failure.kind == FailureKind::kAssert) {
        const Scheduler::RunOutcome again =
            replay(s.fn, result.failure.schedule);
        ASSERT_TRUE(again.failure) << s.name << ": schedule not replayable";
        EXPECT_EQ(again.failure.kind, s.expect);
      }
    }
  }
}

TEST_F(BuiltinScenarios, CheckedPrimitivesFallBackOutsideScenarios) {
  // Outside a Scheduler the checked types must behave as the std ones —
  // this test itself is the proof (no scheduler is active here).
  checked_mutex m;
  checked_value<int> n{0};
  checked_atomic<int> a{0};
  m.lock();
  n.store(7);
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
  EXPECT_EQ(n.load(), 7);
  EXPECT_EQ(a.fetch_add(3), 0);
  EXPECT_EQ(a.load(), 3);
  checked_thread t([&] { a.store(11); });
  t.join();
  EXPECT_EQ(a.load(), 11);
}

}  // namespace
}  // namespace mcmm::check
