#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcmm {
namespace {

CliParser make_parser() {
  CliParser p;
  p.add_flag("csv", "emit CSV");
  p.add_option("max-order", "largest matrix order", "384");
  p.add_option("ratios", "comma-separated ratios", "1,2,3");
  p.add_option("scale", "a real factor", "1.5");
  return p;
}

template <typename... Args>
bool parse(CliParser& p, Args... args) {
  const char* argv[] = {"prog", args...};
  return p.parse(static_cast<int>(sizeof...(args)) + 1, argv);
}

TEST(Cli, Defaults) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p));
  EXPECT_FALSE(p.flag("csv"));
  EXPECT_EQ(p.integer("max-order"), 384);
  EXPECT_DOUBLE_EQ(p.real("scale"), 1.5);
}

TEST(Cli, FlagAndSeparateValue) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--csv", "--max-order", "600"));
  EXPECT_TRUE(p.flag("csv"));
  EXPECT_EQ(p.integer("max-order"), 600);
}

TEST(Cli, EqualsSyntax) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--max-order=1100", "--scale=0.25"));
  EXPECT_EQ(p.integer("max-order"), 1100);
  EXPECT_DOUBLE_EQ(p.real("scale"), 0.25);
}

TEST(Cli, IntegerList) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--ratios", "50,100,150"));
  EXPECT_EQ(p.integer_list("ratios"),
            (std::vector<std::int64_t>{50, 100, 150}));
}

TEST(Cli, HelpShortCircuits) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, "--help"));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--nope"), Error);
}

TEST(Cli, RejectsMissingValue) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--max-order"), Error);
}

TEST(Cli, RejectsValueOnFlag) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--csv=yes"), Error);
}

TEST(Cli, RejectsNonNumeric) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--max-order", "abc"));
  EXPECT_THROW(p.integer("max-order"), Error);
}

TEST(Cli, RejectsPositionalArgument) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "positional"), Error);
}

TEST(Cli, RejectsUndeclaredLookup) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p));
  EXPECT_THROW(p.str("never-declared"), Error);
}

}  // namespace
}  // namespace mcmm
