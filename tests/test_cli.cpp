#include "util/cli.hpp"

#include <cstdio>

#include <gtest/gtest.h>

#include "exp/figure_options.hpp"
#include "gemm/parallel_gemm.hpp"
#include "util/error.hpp"
#include "util/warnings.hpp"

namespace mcmm {
namespace {

CliParser make_parser() {
  CliParser p;
  p.add_flag("csv", "emit CSV");
  p.add_option("max-order", "largest matrix order", "384");
  p.add_option("ratios", "comma-separated ratios", "1,2,3");
  p.add_option("scale", "a real factor", "1.5");
  return p;
}

template <typename... Args>
bool parse(CliParser& p, Args... args) {
  const char* argv[] = {"prog", args...};
  return p.parse(static_cast<int>(sizeof...(args)) + 1, argv);
}

TEST(Cli, Defaults) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p));
  EXPECT_FALSE(p.flag("csv"));
  EXPECT_EQ(p.integer("max-order"), 384);
  EXPECT_DOUBLE_EQ(p.real("scale"), 1.5);
}

TEST(Cli, FlagAndSeparateValue) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--csv", "--max-order", "600"));
  EXPECT_TRUE(p.flag("csv"));
  EXPECT_EQ(p.integer("max-order"), 600);
}

TEST(Cli, EqualsSyntax) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--max-order=1100", "--scale=0.25"));
  EXPECT_EQ(p.integer("max-order"), 1100);
  EXPECT_DOUBLE_EQ(p.real("scale"), 0.25);
}

TEST(Cli, IntegerList) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--ratios", "50,100,150"));
  EXPECT_EQ(p.integer_list("ratios"),
            (std::vector<std::int64_t>{50, 100, 150}));
}

TEST(Cli, HelpShortCircuits) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, "--help"));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--nope"), Error);
}

TEST(Cli, RejectsMissingValue) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--max-order"), Error);
}

TEST(Cli, RejectsValueOnFlag) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "--csv=yes"), Error);
}

TEST(Cli, RejectsNonNumeric) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--max-order", "abc"));
  EXPECT_THROW(p.integer("max-order"), Error);
}

TEST(Cli, RejectsPositionalArgument) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, "positional"), Error);
}

TEST(Cli, RejectsUndeclaredLookup) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p));
  EXPECT_THROW(p.str("never-declared"), Error);
}

TEST(Cli, IsSetDistinguishesDefaultsFromExplicitValues) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, "--max-order", "384"));
  EXPECT_TRUE(p.is_set("max-order"));
  EXPECT_FALSE(p.is_set("scale"));
}

// The standard figure-bench command line (src/exp/figure_options.cpp).

template <typename... Args>
bool parse_figure(FigureOptions* out, Args... args) {
  const char* argv[] = {"prog", args...};
  return parse_figure_options(static_cast<int>(sizeof...(args)) + 1, argv,
                              "Test figure", /*default_max=*/240,
                              /*paper_max=*/600, /*default_step=*/40, out);
}

TEST(FigureOptions, Defaults) {
  FigureOptions opt;
  ASSERT_TRUE(parse_figure(&opt));
  EXPECT_FALSE(opt.csv);
  EXPECT_EQ(opt.max_order, 240);
  EXPECT_EQ(opt.step, 40);
  EXPECT_EQ(opt.min_order, 40);
  EXPECT_GE(opt.jobs, 1);  // hardware concurrency, floored at 1
  EXPECT_TRUE(opt.json_path.empty());
}

TEST(FigureOptions, FullRangeAndExplicitSweep) {
  FigureOptions opt;
  ASSERT_TRUE(parse_figure(&opt, "--full", "--min-order", "16", "--step",
                           "8"));
  EXPECT_EQ(opt.max_order, 600);
  EXPECT_EQ(opt.min_order, 16);
  EXPECT_EQ(opt.step, 8);
}

TEST(FigureOptions, JobsParsed) {
  FigureOptions opt;
  ASSERT_TRUE(parse_figure(&opt, "--jobs", "3"));
  EXPECT_EQ(opt.jobs, 3);
}

TEST(FigureOptions, RejectsNonPositiveJobs) {
  FigureOptions opt;
  EXPECT_THROW(parse_figure(&opt, "--jobs", "0"), Error);
  EXPECT_THROW(parse_figure(&opt, "--jobs", "-2"), Error);
}

TEST(FigureOptions, RejectsInvertedOrDegenerateRange) {
  FigureOptions opt;
  EXPECT_THROW(parse_figure(&opt, "--min-order", "100", "--max-order", "50"),
               Error);
  EXPECT_THROW(parse_figure(&opt, "--step", "0"), Error);
  EXPECT_THROW(parse_figure(&opt, "--step", "-8"), Error);
  EXPECT_THROW(parse_figure(&opt, "--max-order", "-1"), Error);
}

TEST(FigureOptions, JsonPathAccepted) {
  FigureOptions opt;
  const char* path = "/tmp/mcmm_test_figure_options.json";
  ASSERT_TRUE(parse_figure(&opt, "--json", path));
  EXPECT_EQ(opt.json_path, path);
  std::remove(path);  // the writability probe touches the file
}

TEST(FigureOptions, RejectsUnwritableJsonPath) {
  FigureOptions opt;
  EXPECT_THROW(parse_figure(&opt, "--json", "/nonexistent-dir-mcmm/out.json"),
               Error);
}

TEST(FigureOptions, HelpShortCircuits) {
  FigureOptions opt;
  EXPECT_FALSE(parse_figure(&opt, "--help"));
}

// The CLI tools derive tilings via tiling_for_host; its inclusive-hierarchy
// clamp must never fire silently (the derived lambda would assume more
// shared cache than the machine has).

TEST(TilingForHostWarning, ClampIsReportedOnStderr) {
  // q=64 blocks are 32 KiB: a 1 MiB shared cache holds 32 blocks while
  // p*CD = 16 * 32 = 512, so the CS >= p*CD clamp must fire.
  ::testing::internal::CaptureStderr();
  const Tiling t = tiling_for_host(16, 1 << 20, 1 << 20, 64);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("tiling_for_host: warning"), std::string::npos) << err;
  EXPECT_NE(err.find("clamping CS"), std::string::npos) << err;
  EXPECT_GE(t.lambda, 1);
}

TEST(TilingForHostWarning, SilentWhenHierarchyIsInclusive) {
  // The paper's quad-core geometry: CS = 256 blocks >= p*CD = 32.
  ::testing::internal::CaptureStderr();
  const Tiling t = tiling_for_host(4, 8 << 20, 256 << 10, 64);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err, "");
  EXPECT_GE(t.lambda, 1);
}

TEST(WarningSink, ScopedCaptureCollectsTheClampWarning) {
  ScopedWarningCapture capture;
  ::testing::internal::CaptureStderr();
  tiling_for_host(16, 1 << 20, 1 << 20, 64);
  // The installed sink swallows the message: nothing leaks to stderr...
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  // ...and the capture holds it, without a trailing newline.
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_NE(capture.messages()[0].find("tiling_for_host: warning"),
            std::string::npos);
  EXPECT_NE(capture.messages()[0].find("clamping CS"), std::string::npos);
  EXPECT_EQ(capture.messages()[0].find('\n'), std::string::npos);
}

TEST(WarningSink, CapturesNestAndRestoreOnDestruction) {
  std::vector<std::string> outer;
  set_warning_sink([&outer](const std::string& m) { outer.push_back(m); });
  {
    ScopedWarningCapture inner;
    emit_warning("inner message");
    EXPECT_EQ(inner.messages(),
              (std::vector<std::string>{"inner message"}));
  }
  // The inner capture restored the outer sink, not the stderr default.
  emit_warning("outer message");
  EXPECT_EQ(outer, (std::vector<std::string>{"outer message"}));
  set_warning_sink(nullptr);  // back to the stderr default for other tests
}

}  // namespace
}  // namespace mcmm
