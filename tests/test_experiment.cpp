#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

TEST(Experiment, SettingNames) {
  EXPECT_STREQ(to_string(Setting::kIdeal), "IDEAL");
  EXPECT_STREQ(to_string(Setting::kLru50), "LRU-50");
  EXPECT_STREQ(to_string(Setting::kLruFull), "LRU(C)");
  EXPECT_STREQ(to_string(Setting::kLruDouble), "LRU(2C)");
}

TEST(Experiment, IdealSettingMatchesPrediction) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{30, 30, 12};  // divisible by lambda = 30
  const RunResult res = run_experiment("shared-opt", prob, cfg, Setting::kIdeal);
  const auto pred = predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
  EXPECT_EQ(res.ms, static_cast<std::int64_t>(pred.ms));
  // lambda = 30 does not divide into p = 4 equal chunks, so the busiest
  // core carries ceil(30/4) = 8 columns instead of 7.5: MD is the ceiling
  // variant of the formula, never below it.
  EXPECT_GE(res.md, static_cast<std::int64_t>(pred.md));
  const std::int64_t md_ceiling =
      prob.fmas() / 30 * (1 + 2 * 8);  // per (k,i'): 1 + 2*ceil(lambda/p)
  EXPECT_EQ(res.md, md_ceiling);
  EXPECT_DOUBLE_EQ(res.tdata, static_cast<double>(res.ms) / cfg.sigma_s +
                                  static_cast<double>(res.md) / cfg.sigma_d);
}

TEST(Experiment, Lru50DeclaresHalfTheCaches) {
  const MachineConfig cfg = paper_quadcore();
  const RunResult res =
      run_experiment("shared-opt", Problem::square(20), cfg, Setting::kLru50);
  EXPECT_EQ(res.declared.cs, cfg.cs / 2);
  EXPECT_EQ(res.declared.cd, cfg.cd / 2);
  EXPECT_EQ(res.physical.cs, cfg.cs);
}

TEST(Experiment, LruDoubleDoublesThePhysicalCaches) {
  const MachineConfig cfg = paper_quadcore();
  const RunResult res = run_experiment("shared-opt", Problem::square(20), cfg,
                                       Setting::kLruDouble);
  EXPECT_EQ(res.physical.cs, 2 * cfg.cs);
  EXPECT_EQ(res.declared.cs, cfg.cs);
}

TEST(Experiment, OuterProductUnderIdealSettingFallsBackToLru) {
  // Must not abort: the driver runs policy-insensitive schedules on LRU.
  const RunResult res = run_experiment("outer-product", Problem::square(10),
                                       paper_quadcore(), Setting::kIdeal);
  EXPECT_GT(res.ms, 0);
  EXPECT_GT(res.md, 0);
}

TEST(Experiment, AllAlgorithmsRunUnderAllSettings) {
  const Problem prob{12, 12, 12};
  for (const auto& name : algorithm_names()) {
    for (const Setting s : {Setting::kIdeal, Setting::kLru50,
                            Setting::kLruFull, Setting::kLruDouble}) {
      const RunResult res = run_experiment(name, prob, paper_quadcore(), s);
      EXPECT_EQ(res.stats.total_fmas(), prob.fmas())
          << name << " under " << to_string(s);
    }
  }
}

TEST(Experiment, LruWithBiggerCacheNeverMissesMore) {
  const Problem prob = Problem::square(40);
  const MachineConfig cfg = paper_quadcore();
  for (const auto& name : algorithm_names()) {
    const RunResult full =
        run_experiment(name, prob, cfg, Setting::kLruFull);
    const RunResult dbl =
        run_experiment(name, prob, cfg, Setting::kLruDouble);
    // Same trace, larger LRU cache: distributed misses are monotone (LRU is
    // a stack algorithm).  The shared cache sees a *filtered* stream, so
    // strict monotonicity is not guaranteed in theory; allow 5% slack.
    EXPECT_LE(dbl.md, full.md) << name;
    EXPECT_LE(static_cast<double>(dbl.ms), 1.05 * static_cast<double>(full.ms))
        << name;
  }
}

}  // namespace
}  // namespace mcmm
