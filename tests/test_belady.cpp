#include "trace/belady.hpp"

#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "test_helpers.hpp"
#include "trace/reuse_distance.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

BlockId blk(std::int64_t i) { return BlockId::a(i, 0); }

std::vector<BlockId> blocks(std::initializer_list<std::int64_t> ids) {
  std::vector<BlockId> out;
  for (std::int64_t i : ids) out.push_back(blk(i));
  return out;
}

TEST(Belady, TextbookExample) {
  // The classic cyclic sweep 1 2 3 1 2 3 ... with capacity 2:
  // LRU misses everything; MIN keeps block 1 (say) and alternates.
  std::vector<BlockId> sweep;
  for (int round = 0; round < 10; ++round) {
    for (std::int64_t i = 0; i < 3; ++i) sweep.push_back(blk(i));
  }
  ReuseDistanceAnalyzer lru;
  for (BlockId b : sweep) lru.feed(b);
  EXPECT_EQ(lru.profile().lru_misses(2), 30) << "LRU thrashes completely";
  const std::int64_t min_misses = belady_misses(sweep, 2);
  EXPECT_LT(min_misses, 30);
  // MIN keeps whichever block returns sooner, so after the 3 cold misses
  // it hits on every other access: misses at indices 4, 6, 8, ..., 28 —
  // 13 of them — for 16 total.
  EXPECT_EQ(min_misses, 16);
}

TEST(Belady, HandComputedSmallCase) {
  // 1 2 3 4 1 2 5 1 2 3 4 5 with capacity 3 — Belady's original example
  // shape: OPT = 7 misses.
  const std::vector<BlockId> seq =
      blocks({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  EXPECT_EQ(belady_misses(seq, 3), 7);
}

TEST(Belady, CapacityOneMissesEveryDistinctTransition) {
  const std::vector<BlockId> seq = blocks({1, 1, 2, 2, 2, 1, 3, 3});
  // Misses at 1, 2, 1, 3 -> 4.
  EXPECT_EQ(belady_misses(seq, 1), 4);
}

TEST(Belady, LargeCapacitySeesOnlyColdMisses) {
  std::vector<BlockId> seq;
  for (int round = 0; round < 5; ++round) {
    for (std::int64_t i = 0; i < 20; ++i) seq.push_back(blk(i));
  }
  EXPECT_EQ(belady_misses(seq, 20), 20);
  EXPECT_EQ(belady_misses(seq, 1000), 20);
}

TEST(Belady, EmptyAndValidation) {
  EXPECT_EQ(belady_misses({}, 4), 0);
  EXPECT_THROW(belady_misses({}, 0), Error);
}

// MIN is optimal: it can never miss more than LRU, at any capacity, on
// any trace.  Checked on random traffic and on every schedule's stream.
TEST(Belady, NeverWorseThanLruOnRandomTraffic) {
  std::uint64_t rng = 23;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<BlockId> seq;
  for (int i = 0; i < 20000; ++i) {
    seq.push_back(blk(static_cast<std::int64_t>(next() % 64)));
  }
  ReuseDistanceAnalyzer lru;
  for (BlockId b : seq) lru.feed(b);
  for (const std::int64_t cap : {1, 2, 4, 8, 16, 32, 64}) {
    EXPECT_LE(belady_misses(seq, cap), lru.profile().lru_misses(cap))
        << "capacity " << cap;
  }
}

TEST(Belady, NeverWorseThanLruOnScheduleStreams) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{16, 16, 16};
  for (const auto& name : extended_algorithm_names()) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(name)->run(machine, prob, cfg);
    const auto min_misses = per_core_belady_misses(trace, cfg.p, cfg.cd);
    const auto profiles = per_core_reuse_profiles(trace, cfg.p);
    for (int c = 0; c < cfg.p; ++c) {
      EXPECT_LE(min_misses[static_cast<std::size_t>(c)],
                profiles[static_cast<std::size_t>(c)].lru_misses(cfg.cd))
          << name << " core " << c;
    }
  }
}

// The theorem the paper's Section 2.1 actually cites (Frigo et al.): an
// LRU cache of capacity 2C incurs at most twice the misses of an optimal
// cache of capacity C on the same trace.  Check the real inequality on
// every schedule's per-core stream.
TEST(Belady, FrigoCompetitivenessHoldsOnScheduleStreams) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{16, 16, 16};
  for (const auto& name : extended_algorithm_names()) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(name)->run(machine, prob, cfg);
    const Trace core0 = trace.filter_core(0);
    const ReuseProfile lru = reuse_profile(core0);
    std::vector<BlockId> stream;
    for (std::size_t i = 0; i < core0.size(); ++i) {
      stream.push_back(core0[i].block());
    }
    for (const std::int64_t c : {3, 5, 10, 21}) {
      EXPECT_LE(lru.lru_misses(2 * c), 2 * belady_misses(stream, c))
          << name << " C=" << c;
    }
  }
}

// The hand-crafted IDEAL managements cannot beat MIN on the same stream
// — and for the schedule each one was designed for, they should be close.
TEST(Belady, HandManagedIdealBoundedBelowByMin) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{16, 16, 16};
  for (const char* name : {"shared-opt", "distributed-opt", "tradeoff"}) {
    // Record the stream (policy-independent) and the explicit per-core
    // load counts under IDEAL.
    Machine ideal(cfg, Policy::kIdeal);
    Trace trace;
    record_into(ideal, trace);
    make_algorithm(name)->run(ideal, prob, cfg);
    const auto min_misses = per_core_belady_misses(trace, cfg.p, cfg.cd);
    for (int c = 0; c < cfg.p; ++c) {
      EXPECT_GE(ideal.stats().dist_misses[static_cast<std::size_t>(c)],
                min_misses[static_cast<std::size_t>(c)])
          << name << " core " << c;
    }
  }
  // Distributed Opt.'s management is the one the paper tuned for the
  // distributed caches: within 25% of the true optimum.
  Machine ideal(cfg, Policy::kIdeal);
  Trace trace;
  record_into(ideal, trace);
  make_algorithm("distributed-opt")->run(ideal, prob, cfg);
  const auto min_misses = per_core_belady_misses(trace, cfg.p, cfg.cd);
  EXPECT_LE(static_cast<double>(ideal.stats().dist_misses[0]),
            1.25 * static_cast<double>(min_misses[0]));
}

}  // namespace
}  // namespace mcmm
