// Golden regression values: the simulator is fully deterministic, so the
// exact miss counts of every schedule on a fixed ragged problem are
// pinned here.  Any change to these numbers is a semantic change to the
// simulator or a schedule and must be made deliberately (regenerate with
// the table below after auditing the diff).
#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "exp/experiment.hpp"

namespace mcmm {
namespace {

struct Golden {
  const char* algorithm;
  Setting setting;
  std::int64_t ms;
  std::int64_t md;
  std::int64_t wb_memory;
};

// p=4, CS=977, CD=21 (the paper's q=32 quad-core), problem 24x20x28.
constexpr Golden kGolden[] = {
    {"shared-opt", Setting::kIdeal, 1712, 7392, 480},
    {"shared-opt", Setting::kLru50, 2272, 4312, 480},
    {"distributed-opt", Setting::kIdeal, 4176, 2160, 480},
    {"distributed-opt", Setting::kLru50, 1712, 3480, 480},
    {"tradeoff", Setting::kIdeal, 1712, 2592, 480},
    {"tradeoff", Setting::kLru50, 2580, 6144, 480},
    {"outer-product", Setting::kIdeal, 1712, 6748, 480},
    {"outer-product", Setting::kLru50, 1712, 6748, 480},
    {"shared-equal", Setting::kIdeal, 2944, 8120, 480},
    {"shared-equal", Setting::kLru50, 2272, 6648, 480},
    {"distributed-equal", Setting::kIdeal, 9216, 4176, 480},
    {"distributed-equal", Setting::kLru50, 1712, 6840, 480},
    {"cannon", Setting::kIdeal, 2864, 6744, 960},
    {"cannon", Setting::kLru50, 2864, 6744, 960},
    {"distributed-opt-linear", Setting::kIdeal, 4176, 2664, 480},
    {"distributed-opt-linear", Setting::kLru50, 1712, 4320, 480},
};

class GoldenValues : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenValues, ExactMissCountsPinned) {
  const Golden& g = GetParam();
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob{24, 20, 28};
  const RunResult res = run_experiment(g.algorithm, prob, cfg, g.setting);
  EXPECT_EQ(res.ms, g.ms);
  EXPECT_EQ(res.md, g.md);
  EXPECT_EQ(res.stats.writebacks_to_memory, g.wb_memory);
}

std::string golden_name(const ::testing::TestParamInfo<Golden>& info) {
  std::string name = std::string(info.param.algorithm) + "_" +
                     to_string(info.param.setting);
  for (char& ch : name) {
    if (ch == '-' || ch == '(' || ch == ')') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Pinned, GoldenValues, ::testing::ValuesIn(kGolden),
                         golden_name);

// A note on two values above worth understanding rather than memorising:
//  * Cannon writes each C block back to memory ~twice (960 = 2 mn): the
//    problem's 1712-block footprint exceeds CS=977, so C blocks fall out
//    of the shared cache dirty between super-tile steps.
//  * distributed-equal IDEAL has MS far above everyone (9216): its tiny
//    s=2 tiles re-stage A/B through the shared cache constantly.
TEST(GoldenValues, CannonDoubleWritebackExplanation) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 4096;  // large enough to hold the whole problem
  cfg.cd = 21;
  const Problem prob{24, 20, 28};
  const RunResult res = run_experiment("cannon", prob, cfg, Setting::kLru50);
  EXPECT_EQ(res.stats.writebacks_to_memory, prob.m * prob.n)
      << "with the footprint resident, each C block is written back once";
}

}  // namespace
}  // namespace mcmm
