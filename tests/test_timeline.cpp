#include "exp/timeline.hpp"

#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

MachineStats run_stats(const char* name, const Problem& prob,
                       const MachineConfig& cfg) {
  Machine machine(cfg, Policy::kIdeal);
  make_algorithm(name)->run(machine, prob, cfg);
  return machine.stats();
}

TEST(Timeline, EnvelopeArithmetic) {
  MachineStats stats(2);
  stats.shared_misses = 100;
  stats.dist_misses = {60, 40};
  stats.fmas = {500, 500};
  MachineConfig cfg = paper_quadcore();
  cfg.p = 2;
  cfg.sigma_s = 2.0;   // shared time 50
  cfg.sigma_d = 1.0;   // dist time 60
  const TimeEnvelope env = time_envelope(stats, cfg, /*rate=*/10.0);
  EXPECT_DOUBLE_EQ(env.compute_time, 50.0);
  EXPECT_DOUBLE_EQ(env.shared_time, 50.0);
  EXPECT_DOUBLE_EQ(env.dist_time, 60.0);
  EXPECT_DOUBLE_EQ(env.serial, 160.0);
  EXPECT_DOUBLE_EQ(env.overlap, 60.0);
  EXPECT_EQ(env.bottleneck, TimeEnvelope::Bottleneck::kDistributedChannel);
}

TEST(Timeline, BoundsOrderAndMonotonicity) {
  const MachineConfig cfg = paper_quadcore();
  const MachineStats stats = run_stats("tradeoff", Problem::square(32), cfg);
  double prev_overlap = 1e300;
  for (const double rate : {0.1, 1.0, 10.0, 100.0}) {
    const TimeEnvelope env = time_envelope(stats, cfg, rate);
    EXPECT_GE(env.serial, env.overlap) << "serial is the upper envelope";
    EXPECT_LE(env.overlap, prev_overlap) << "faster cores never slow it";
    EXPECT_GE(env.overlap, env.shared_time);
    EXPECT_GE(env.overlap, env.dist_time);
    prev_overlap = env.overlap;
  }
}

TEST(Timeline, BalanceRateSeparatesRegimes) {
  const MachineConfig cfg = paper_quadcore();
  const MachineStats stats =
      run_stats("distributed-opt", Problem::square(32), cfg);
  const double balance = balance_rate(stats, cfg);
  EXPECT_GT(balance, 0);
  // Just below the balance rate: compute-bound.
  EXPECT_EQ(time_envelope(stats, cfg, balance * 0.99).bottleneck,
            TimeEnvelope::Bottleneck::kCompute);
  // Just above: some memory channel is the bottleneck.
  EXPECT_NE(time_envelope(stats, cfg, balance * 1.01).bottleneck,
            TimeEnvelope::Bottleneck::kCompute);
}

TEST(Timeline, BetterSchedulesHaveHigherBalanceRates) {
  // A schedule with less traffic stays compute-bound up to faster cores:
  // Tradeoff's balance rate must beat Outer Product's substantially.
  const MachineConfig cfg = paper_quadcore();
  const Problem prob = Problem::square(32);
  Machine trade(cfg, Policy::kIdeal);
  make_algorithm("tradeoff")->run(trade, prob, cfg);
  Machine outer(cfg, Policy::kLru);
  make_algorithm("outer-product")->run(outer, prob, cfg);
  EXPECT_GT(balance_rate(trade.stats(), cfg),
            3.0 * balance_rate(outer.stats(), cfg));
}

TEST(Timeline, MemoryBoundRegimeRanksByTraffic) {
  // With slow caches (low rate irrelevant: channels saturate), the
  // perfect-overlap times rank the schedules like their dominant traffic.
  const MachineConfig cfg = paper_quadcore();
  const Problem prob = Problem::square(32);
  const double rate = 1e9;  // compute is free
  const double t_trade =
      time_envelope(run_stats("tradeoff", prob, cfg), cfg, rate).overlap;
  const double t_shared =
      time_envelope(run_stats("shared-opt", prob, cfg), cfg, rate).overlap;
  Machine outer(cfg, Policy::kLru);
  make_algorithm("outer-product")->run(outer, prob, cfg);
  const double t_outer = time_envelope(outer.stats(), cfg, rate).overlap;
  EXPECT_LT(t_trade, t_shared);
  EXPECT_LT(t_shared, t_outer);
}

TEST(Timeline, Validation) {
  MachineStats stats(1);
  EXPECT_THROW(time_envelope(stats, paper_quadcore(), 0.0), Error);
  EXPECT_THROW(time_envelope(stats, paper_quadcore(), -1.0), Error);
  EXPECT_THROW(balance_rate(stats, paper_quadcore()), Error);
}

TEST(Timeline, ZeroMissRunIsComputeBoundWithNoBalanceRate) {
  // A run whose working set fits entirely in the caches: every channel
  // time is zero, the envelope collapses onto pure compute, and the
  // balance rate is undefined (no traffic to balance against).
  MachineStats stats(2);
  stats.fmas = {300, 200};
  const MachineConfig cfg = paper_quadcore();
  const TimeEnvelope env = time_envelope(stats, cfg, 10.0);
  EXPECT_DOUBLE_EQ(env.compute_time, 30.0);  // busiest core's 300 FMAs
  EXPECT_DOUBLE_EQ(env.shared_time, 0.0);
  EXPECT_DOUBLE_EQ(env.dist_time, 0.0);
  EXPECT_DOUBLE_EQ(env.serial, env.overlap);
  EXPECT_EQ(env.bottleneck, TimeEnvelope::Bottleneck::kCompute);
  EXPECT_THROW(balance_rate(stats, cfg), Error);
}

TEST(Timeline, BottleneckTiesResolveComputeThenSharedThenDistributed) {
  // Exact three-way tie: classification precedence is compute first.
  MachineStats stats(1);
  stats.fmas = {100};
  stats.shared_misses = 50;
  stats.dist_misses = {25};
  MachineConfig cfg = paper_quadcore();
  cfg.p = 1;
  cfg.sigma_s = 1.0;
  cfg.sigma_d = 0.5;  // all three times are 50
  const TimeEnvelope tie = time_envelope(stats, cfg, 2.0);
  EXPECT_DOUBLE_EQ(tie.overlap, 50.0);
  EXPECT_EQ(tie.bottleneck, TimeEnvelope::Bottleneck::kCompute);
  // Shared/distributed two-way tie resolves to the shared channel.
  const TimeEnvelope channels = time_envelope(stats, cfg, 1e9);
  EXPECT_DOUBLE_EQ(channels.overlap, 50.0);
  EXPECT_EQ(channels.bottleneck, TimeEnvelope::Bottleneck::kSharedChannel);
}

TEST(Timeline, ZeroComputeRunSaturatesAChannel) {
  // No FMAs recorded (a pure-copy phase): overlap is channel-bound and the
  // balance rate is zero — any positive compute rate is already "fast".
  MachineStats stats(1);
  stats.shared_misses = 40;
  stats.dist_misses = {10};
  MachineConfig cfg = paper_quadcore();
  cfg.sigma_s = 1.0;
  cfg.sigma_d = 1.0;
  const TimeEnvelope env = time_envelope(stats, cfg, 5.0);
  EXPECT_DOUBLE_EQ(env.compute_time, 0.0);
  EXPECT_DOUBLE_EQ(env.overlap, 40.0);
  EXPECT_EQ(env.bottleneck, TimeEnvelope::Bottleneck::kSharedChannel);
  EXPECT_DOUBLE_EQ(balance_rate(stats, cfg), 0.0);
}

}  // namespace
}  // namespace mcmm
