// The master-worker substrate (the original Maximum Reuse Algorithm of
// [7]) and its relationship to the multicore Algorithm 2.
#include "mw/master_worker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alg/registry.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

MwConfig mw(int workers = 4, std::int64_t memory = 21) {
  MwConfig cfg;
  cfg.workers = workers;
  cfg.memory_blocks = memory;
  return cfg;
}

TEST(MasterWorker, TileSides) {
  EXPECT_EQ(mw_tile_side(MwSchedule::kMaximumReuse, 21), 4);
  EXPECT_EQ(mw_tile_side(MwSchedule::kEqualThirds, 21), 2);
  EXPECT_EQ(mw_tile_side(MwSchedule::kMaximumReuse, 3), 1);
  EXPECT_EQ(mw_tile_side(MwSchedule::kEqualThirds, 3), 1);
}

TEST(MasterWorker, MaximumReuseVolumeFormula) {
  // Divisible sizes: volume = mn (C returns) + 2mnz/mu (A + B streams).
  const Problem prob{16, 16, 16};
  const MwResult r =
      run_master_worker(mw(), prob, MwSchedule::kMaximumReuse);
  EXPECT_EQ(r.volume, 16 * 16 + 2 * 16 * 16 * 16 / 4);
  EXPECT_EQ(r.fmas, prob.fmas());
}

TEST(MasterWorker, EqualThirdsVolumeFormula) {
  // s = 2: volume = mn + 2mnz/s.
  const Problem prob{16, 16, 16};
  const MwResult r =
      run_master_worker(mw(), prob, MwSchedule::kEqualThirds);
  EXPECT_EQ(r.volume, 16 * 16 + 2 * 16 * 16 * 16 / 2);
}

TEST(MasterWorker, MaximumReuseBeatsEqualThirdsByAboutSqrtThree) {
  // Large memory so mu/s -> sqrt(3) cleanly: M = 1000 -> mu = 31, s = 18.
  const Problem prob{62 * 9, 62 * 9, 100};  // divisible by mu = 31 and s = 18
  const MwResult mra = run_master_worker(mw(4, 1000), prob,
                                         MwSchedule::kMaximumReuse);
  const MwResult eq = run_master_worker(mw(4, 1000), prob,
                                        MwSchedule::kEqualThirds);
  EXPECT_LT(mra.volume, eq.volume);
  const double stream_ratio =
      static_cast<double>(eq.volume - prob.m * prob.n) /
      static_cast<double>(mra.volume - prob.m * prob.n);
  EXPECT_NEAR(stream_ratio, 31.0 / 18.0, 0.01);
}

TEST(MasterWorker, CcrApproachesTwoOverMuForLargeMatrices) {
  const Problem prob{400, 400, 400};
  const MwResult r =
      run_master_worker(mw(4, 21), prob, MwSchedule::kMaximumReuse);
  // CCR = 1/z + 2/mu -> 2/mu = 0.5.
  EXPECT_NEAR(r.ccr(), 2.0 / 4.0, 0.01);
}

TEST(MasterWorker, VolumeNeverBeatsTheLowerBound) {
  for (const std::int64_t memory : {3, 7, 21, 57, 157}) {
    const Problem prob{24, 24, 24};
    for (const MwSchedule s :
         {MwSchedule::kMaximumReuse, MwSchedule::kEqualThirds}) {
      const MwResult r = run_master_worker(mw(4, memory), prob, s);
      EXPECT_GE(static_cast<double>(r.volume),
                0.999 * mw_volume_lower_bound(prob, memory))
          << to_string(s) << " M=" << memory;
    }
  }
}

TEST(MasterWorker, MakespanRegimes) {
  const Problem prob{32, 32, 32};
  // Fast link: compute-bound — makespan within a whisker of compute time.
  MwConfig fast = mw();
  fast.bandwidth = 1e9;
  const MwResult rf = run_master_worker(fast, prob, MwSchedule::kMaximumReuse);
  EXPECT_NEAR(rf.makespan, rf.compute_time, 1e-3 * rf.compute_time + 1e-3);
  // Slow link: communication-bound.
  MwConfig slow = mw();
  slow.bandwidth = 1e-3;
  const MwResult rs = run_master_worker(slow, prob, MwSchedule::kMaximumReuse);
  EXPECT_GT(rs.comm_time, rs.compute_time);
  EXPECT_GE(rs.makespan, rs.comm_time);
  EXPECT_LE(rs.makespan, 1.01 * rs.comm_time);
}

TEST(MasterWorker, MoreWorkersShrinkComputeNotVolume) {
  const Problem prob{32, 32, 32};
  const MwResult w1 = run_master_worker(mw(1), prob, MwSchedule::kMaximumReuse);
  const MwResult w8 = run_master_worker(mw(8), prob, MwSchedule::kMaximumReuse);
  EXPECT_EQ(w1.volume, w8.volume) << "the link carries the same data";
  EXPECT_NEAR(w8.compute_time, w1.compute_time / 8, w1.compute_time * 0.01);
}

// The lineage check: the multicore Algorithm 2's total distributed-cache
// loads equal the original MRA's communication volume — the distributed
// caches receive exactly what the master would have sent (C loads play
// the role of the C returns).
TEST(MasterWorker, Algorithm2DegeneratesToTheOriginalMra) {
  const Problem prob{16, 16, 16};
  const MachineConfig flat = mcmm::testing::paper_quadcore();  // CD = 21
  Machine machine(flat, Policy::kIdeal);
  make_algorithm("distributed-opt")->run(machine, prob, flat);
  std::int64_t total_loads = 0;
  for (int c = 0; c < flat.p; ++c) {
    total_loads += machine.stats().dist_misses[static_cast<std::size_t>(c)];
  }
  const MwResult mra = run_master_worker(mw(4, flat.cd), prob,
                                         MwSchedule::kMaximumReuse);
  EXPECT_EQ(total_loads, mra.volume);
}

TEST(MasterWorker, HeterogeneousWorkersLoadBalanceByRate) {
  // [7] targets heterogeneous platforms: a worker 3x faster should take
  // roughly 3x the tiles under the earliest-finish rule.
  const Problem prob{32, 32, 8};
  MwConfig cfg = mw(2, 21);
  cfg.worker_rates = {1.0, 3.0};
  const MwResult het =
      run_master_worker(cfg, prob, MwSchedule::kMaximumReuse);
  // With a perfect 1:3 split, compute time = fmas/4 / 1.0.
  const double perfect =
      static_cast<double>(prob.fmas()) / (1.0 + 3.0);
  EXPECT_LE(het.compute_time, 1.15 * perfect);

  // Round-robin on the same platform would leave half the work on the
  // slow worker: strictly worse.
  MwConfig rr = mw(2, 21);  // homogeneous dealing...
  const MwResult rr_res =
      run_master_worker(rr, prob, MwSchedule::kMaximumReuse);
  // ...evaluated at the slow worker's rate: fmas/2 / 1.0.
  EXPECT_GT(static_cast<double>(prob.fmas()) / 2.0, het.compute_time);
  EXPECT_EQ(het.volume, rr_res.volume) << "scheduling cannot change volume";
}

TEST(MasterWorker, HeterogeneousValidation) {
  MwConfig cfg = mw(2, 21);
  cfg.worker_rates = {1.0};  // wrong length
  EXPECT_THROW(cfg.validate(), Error);
  cfg.worker_rates = {1.0, 0.0};
  EXPECT_THROW(cfg.validate(), Error);
  cfg.worker_rates = {1.0, 2.0};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MasterWorker, Validation) {
  MwConfig bad = mw();
  bad.workers = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = mw();
  bad.memory_blocks = 2;
  EXPECT_THROW(bad.validate(), Error);
  bad = mw();
  bad.bandwidth = 0;
  EXPECT_THROW(bad.validate(), Error);
  EXPECT_THROW(mw_tile_side(MwSchedule::kMaximumReuse, 2), Error);
}

}  // namespace
}  // namespace mcmm
