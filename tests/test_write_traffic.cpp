// Per-core write-back attribution and the write-inclusive Tdata variant.
#include <gtest/gtest.h>

#include <numeric>

#include "alg/registry.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

TEST(WriteTraffic, PerCoreAttributionSumsToAggregate) {
  const Problem prob{16, 16, 16};
  for (const auto& name : algorithm_names()) {
    for (const Policy policy : {Policy::kLru, Policy::kIdeal}) {
      if (policy == Policy::kIdeal &&
          !make_algorithm(name)->supports_ideal()) {
        continue;
      }
      Machine machine(paper_quadcore(), policy);
      make_algorithm(name)->run(machine, prob, paper_quadcore());
      machine.flush();
      const auto& st = machine.stats();
      const std::int64_t sum =
          std::accumulate(st.wb_to_shared_per_core.begin(),
                          st.wb_to_shared_per_core.end(), std::int64_t{0});
      EXPECT_EQ(sum, st.writebacks_to_shared)
          << name << " under " << to_string(policy);
    }
  }
}

TEST(WriteTraffic, SharedOptWritesBackEveryFma) {
  // Algorithm 1 evicts its dirty C element after every FMA: exactly mnz
  // write-backs to the shared cache under IDEAL.
  const Problem prob{16, 16, 8};
  Machine machine(paper_quadcore(), Policy::kIdeal);
  make_algorithm("shared-opt")->run(machine, prob, paper_quadcore());
  EXPECT_EQ(machine.stats().writebacks_to_shared, prob.fmas());
}

TEST(WriteTraffic, DistributedOptWritesBackOncePerCBlock) {
  // Algorithm 2 keeps each C sub-block private until fully computed:
  // exactly mn write-backs, z-independent.
  const Problem prob{16, 16, 8};
  Machine machine(paper_quadcore(), Policy::kIdeal);
  make_algorithm("distributed-opt")->run(machine, prob, paper_quadcore());
  EXPECT_EQ(machine.stats().writebacks_to_shared, prob.m * prob.n);
}

TEST(WriteTraffic, WriteInclusiveTdataNeverBelowLoadsOnly) {
  const Problem prob{12, 12, 12};
  for (const auto& name : algorithm_names()) {
    const MachineConfig cfg = paper_quadcore();
    Machine machine(cfg, Policy::kLru);
    make_algorithm(name)->run(machine, prob, cfg);
    machine.flush();
    EXPECT_GE(machine.stats().tdata_with_writebacks(cfg.sigma_s, cfg.sigma_d),
              machine.stats().tdata(cfg.sigma_s, cfg.sigma_d))
        << name;
  }
}

TEST(WriteTraffic, IncludingWritesPenalisesSharedOptAtDistributedLevel) {
  // The structural gap: mnz vs mn write-backs means Shared Opt.'s
  // write-inclusive Tdata grows much more than Distributed Opt.'s.
  const Problem prob{32, 32, 32};
  const MachineConfig cfg = paper_quadcore();
  auto penalty = [&](const char* name) {
    Machine machine(cfg, Policy::kIdeal);
    make_algorithm(name)->run(machine, prob, cfg);
    machine.flush();
    return machine.stats().tdata_with_writebacks(cfg.sigma_s, cfg.sigma_d) /
           machine.stats().tdata(cfg.sigma_s, cfg.sigma_d);
  };
  EXPECT_GT(penalty("shared-opt"), 1.3);
  EXPECT_LT(penalty("distributed-opt"), 1.3);
}

}  // namespace
}  // namespace mcmm
