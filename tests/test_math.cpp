#include "util/math.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(Isqrt, ExactSquares) {
  for (std::int64_t s = 0; s <= 2000; ++s) {
    EXPECT_EQ(isqrt(s * s), s);
  }
}

TEST(Isqrt, BetweenSquares) {
  for (std::int64_t s = 1; s <= 1000; ++s) {
    EXPECT_EQ(isqrt(s * s + 1), s);
    EXPECT_EQ(isqrt(s * s + 2 * s), s) << "just below next square";
  }
}

TEST(Isqrt, LargeValues) {
  EXPECT_EQ(isqrt(std::int64_t{1} << 62), std::int64_t{1} << 31);
  const std::int64_t big = 3037000499LL;  // floor(sqrt(2^63 - 1))
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big + big), big);
}

TEST(Isqrt, RejectsNegative) { EXPECT_THROW(isqrt(-1), Error); }

TEST(PerfectSquare, Basics) {
  EXPECT_TRUE(is_perfect_square(0));
  EXPECT_TRUE(is_perfect_square(1));
  EXPECT_TRUE(is_perfect_square(4));
  EXPECT_TRUE(is_perfect_square(144));
  EXPECT_FALSE(is_perfect_square(2));
  EXPECT_FALSE(is_perfect_square(143));
  EXPECT_FALSE(is_perfect_square(-4));
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(100, 7), 15);
}

TEST(RoundDownMultiple, Basics) {
  EXPECT_EQ(round_down_multiple(10, 3), 9);
  EXPECT_EQ(round_down_multiple(9, 3), 9);
  EXPECT_EQ(round_down_multiple(2, 3), 3) << "clamps up to one step";
  EXPECT_EQ(round_down_multiple(100, 1), 100);
}

TEST(LargestDivisorAtMost, Basics) {
  EXPECT_EQ(largest_divisor_at_most(12, 5), 4);
  EXPECT_EQ(largest_divisor_at_most(12, 6), 6);
  EXPECT_EQ(largest_divisor_at_most(12, 100), 12);
  EXPECT_EQ(largest_divisor_at_most(13, 12), 1) << "prime: only 1 fits";
  EXPECT_EQ(largest_divisor_at_most(1, 1), 1);
}

TEST(Divisors, Basics) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(divisors(17), (std::vector<std::int64_t>{1, 17}));
}

TEST(MaxReuseParameter, SmallCapacities) {
  // 1 + v + v^2 <= capacity.
  EXPECT_EQ(max_reuse_parameter(0), 0);
  EXPECT_EQ(max_reuse_parameter(2), 0);
  EXPECT_EQ(max_reuse_parameter(3), 1);
  EXPECT_EQ(max_reuse_parameter(6), 1);
  EXPECT_EQ(max_reuse_parameter(7), 2);
  EXPECT_EQ(max_reuse_parameter(12), 2);
  EXPECT_EQ(max_reuse_parameter(13), 3);
}

TEST(MaxReuseParameter, PaperCapacities) {
  // The paper's quad-core configurations (Section 4.1).
  EXPECT_EQ(max_reuse_parameter(977), 30);   // lambda for CS=977
  EXPECT_EQ(max_reuse_parameter(245), 15);   // CS=245
  EXPECT_EQ(max_reuse_parameter(157), 12);   // CS=157 (1+12+144 == 157)
  EXPECT_EQ(max_reuse_parameter(21), 4);     // mu for CD=21 (1+4+16 == 21)
  EXPECT_EQ(max_reuse_parameter(16), 3);     // CD=16
  EXPECT_EQ(max_reuse_parameter(6), 1);      // CD=6 (the mu=1 regime)
  EXPECT_EQ(max_reuse_parameter(4), 1);
  EXPECT_EQ(max_reuse_parameter(3), 1);
}

TEST(MaxReuseParameter, DefinitionHolds) {
  for (std::int64_t cap = 3; cap <= 5000; ++cap) {
    const std::int64_t v = max_reuse_parameter(cap);
    EXPECT_LE(1 + v + v * v, cap);
    EXPECT_GT(1 + (v + 1) + (v + 1) * (v + 1), cap);
  }
}

TEST(ChunkRange, EvenSplit) {
  for (int c = 0; c < 4; ++c) {
    const Range r = chunk_range(12, 4, c);
    EXPECT_EQ(r.size(), 3);
    EXPECT_EQ(r.lo, 3 * c);
  }
}

TEST(ChunkRange, RaggedSplit) {
  // 10 over 4 -> 3,3,2,2; chunks contiguous and exhaustive.
  std::int64_t covered = 0;
  std::int64_t prev_hi = 0;
  for (int c = 0; c < 4; ++c) {
    const Range r = chunk_range(10, 4, c);
    EXPECT_EQ(r.lo, prev_hi);
    EXPECT_GE(r.size(), 2);
    EXPECT_LE(r.size(), 3);
    covered += r.size();
    prev_hi = r.hi;
  }
  EXPECT_EQ(covered, 10);
}

TEST(ChunkRange, MoreChunksThanItems) {
  std::int64_t covered = 0;
  for (int c = 0; c < 8; ++c) {
    const Range r = chunk_range(3, 8, c);
    covered += r.size();
    EXPECT_LE(r.size(), 1);
  }
  EXPECT_EQ(covered, 3);
}

TEST(ChunkRange, SizesDifferByAtMostOne) {
  for (std::int64_t total : {0, 1, 5, 17, 100, 101}) {
    for (int parts : {1, 2, 3, 4, 7, 16}) {
      std::int64_t mn = total + 1, mx = -1, sum = 0;
      for (int c = 0; c < parts; ++c) {
        const Range r = chunk_range(total, parts, c);
        mn = std::min(mn, r.size());
        mx = std::max(mx, r.size());
        sum += r.size();
      }
      EXPECT_EQ(sum, total);
      EXPECT_LE(mx - mn, 1);
    }
  }
}

}  // namespace
}  // namespace mcmm
