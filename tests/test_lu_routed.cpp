// The kernel-routed parallel LU (src/lu/parallel_lu.hpp, KernelContext
// overload) and the kc-blocking fix it exposed in the packed engine:
//
//  * parity — routed factors match the unblocked oracle within the same
//    absolute-or-ULP bound the GEMM engines are held to, for every forced
//    kernel path and ragged shape;
//  * determinism — bit-identical factors across 1/2/4 workers per fixed
//    kernel path (each tile's value chain is worker-independent);
//  * degenerate shapes — n < q, q = 1, 1 x 1 and 0 x 0 all factor;
//  * zero pivot — the error surfaces at the dispatch site as mcmm::Error
//    and the pool stays usable for the next factorization;
//  * kc split — a tuned kc < kb block_op packs and sweeps at depth kc
//    (one pack-A span per sub-panel) and reproduces the kb = kc run
//    bit-for-bit, the regression for the bug where the tuned depth was
//    ignored and the full k panel was packed in one strip.
#include "lu/parallel_lu.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "gemm/kernel.hpp"
#include "gemm/microkernel.hpp"
#include "gemm/thread_pool.hpp"
#include "gemm/validate.hpp"
#include "lu/lu_kernel.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

/// ULP distance between two doubles (the monotone-integer-line mapping,
/// same as test_kernel.cpp).
std::uint64_t ulp_distance(double x, double y) {
  const auto key = [](double v) {
    const auto u = std::bit_cast<std::uint64_t>(v);
    return (u & 0x8000000000000000ull) != 0 ? ~u : (u | 0x8000000000000000ull);
  };
  const std::uint64_t a = key(x);
  const std::uint64_t b = key(y);
  return a > b ? a - b : b - a;
}

/// Cell passes on EITHER the absolute bound (scaled to n like the GEMM
/// tolerance) or the ULP bound — near-cancellation cells are judged by
/// absolute error, large-magnitude cells by relative error.
::testing::AssertionResult factors_match(const Matrix& got,
                                         const Matrix& expect,
                                         std::uint64_t max_ulp) {
  const double tol = gemm_tolerance(expect.rows());
  for (std::int64_t i = 0; i < got.rows(); ++i) {
    for (std::int64_t j = 0; j < got.cols(); ++j) {
      const double g = got.at(i, j);
      const double e = expect.at(i, j);
      const double diff = g > e ? g - e : e - g;
      if (diff <= tol) continue;
      if (ulp_distance(g, e) <= max_ulp) continue;
      return ::testing::AssertionFailure()
             << "factor (" << i << "," << j << "): got " << g << " expect "
             << e << " (diff " << diff << " > tol " << tol << ", "
             << ulp_distance(g, e) << " ulp > " << max_ulp << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// The routed path reassociates the trailing sums (block tiles + FMA) and
/// the divisions then amplify a few ulp more than pure GEMM; 512 is still
/// ~1e12 below what a wrong coefficient produces.
constexpr std::uint64_t kMaxUlp = 512;

::testing::AssertionResult bit_identical(const Matrix& x, const Matrix& y) {
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    for (std::int64_t j = 0; j < x.cols(); ++j) {
      if (std::bit_cast<std::uint64_t>(x.at(i, j)) !=
          std::bit_cast<std::uint64_t>(y.at(i, j))) {
        return ::testing::AssertionFailure()
               << "cell (" << i << "," << j << "): " << x.at(i, j)
               << " != " << y.at(i, j);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class LuRoutedPaths : public ::testing::TestWithParam<KernelPath> {
 protected:
  /// Why this host cannot run the forced path; empty when it can.
  static std::string unavailable_reason(KernelPath path) {
    if ((path == KernelPath::kSimd || path == KernelPath::kAvx2) &&
        !simd_kernel_available()) {
      return "SIMD kernel not available: " + simd_unavailable_reason();
    }
    if (path == KernelPath::kAvx512 && !avx512_kernel_available()) {
      return "AVX-512 kernels not available: " + avx512_unavailable_reason();
    }
    return {};
  }
};

TEST_P(LuRoutedPaths, MatchesUnblockedOracle) {
  const KernelPath path = GetParam();
  if (const std::string skip = unavailable_reason(path); !skip.empty()) {
    GTEST_SKIP() << skip;
  }
  ThreadPool pool(4);
  KernelContext ctx(pool.workers(), path);
  const std::int64_t q = 16;
  const std::int64_t sizes[] = {1, q - 1, q, q + 1, 3 * q + 5};
  for (const std::int64_t n : sizes) {
    Matrix oracle = diagonally_dominant_matrix(n, 100 + static_cast<std::uint64_t>(n));
    Matrix routed = oracle;
    lu_factor_unblocked(oracle);
    parallel_lu_factor(routed, q, pool, ctx);
    ASSERT_TRUE(factors_match(routed, oracle, kMaxUlp))
        << "n=" << n << " q=" << q << " under " << ctx.dispatch_name();
  }
}

TEST_P(LuRoutedPaths, BitIdenticalAcrossWorkerCounts) {
  const KernelPath path = GetParam();
  if (const std::string skip = unavailable_reason(path); !skip.empty()) {
    GTEST_SKIP() << skip;
  }
  const std::int64_t n = 3 * 16 + 5;
  const std::int64_t q = 16;
  const Matrix original = diagonally_dominant_matrix(n, 7);
  Matrix reference(0, 0);
  for (const int workers : {1, 2, 4}) {
    ThreadPool pool(workers);
    KernelContext ctx(workers, path);
    Matrix a = original;
    parallel_lu_factor(a, q, pool, ctx);
    if (workers == 1) {
      reference = std::move(a);
      continue;
    }
    ASSERT_TRUE(bit_identical(a, reference))
        << workers << " workers under " << ctx.dispatch_name();
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, LuRoutedPaths,
                         ::testing::Values(KernelPath::kScalar,
                                           KernelPath::kSimd,
                                           KernelPath::kAvx2,
                                           KernelPath::kAvx512),
                         [](const ::testing::TestParamInfo<KernelPath>& p) {
                           switch (p.param) {
                             case KernelPath::kScalar: return "scalar";
                             case KernelPath::kSimd: return "simd";
                             case KernelPath::kAvx2: return "avx2";
                             case KernelPath::kAvx512: return "avx512";
                             default: return "auto";
                           }
                         });

TEST(LuRoutedShapes, DegenerateShapesFactor) {
  ThreadPool pool(2);
  KernelContext ctx(pool.workers());
  // (n, q): n < q, q = 1 on a multi-tile order, 1 x 1, and 0 x 0.
  const std::int64_t cases[][2] = {{5, 64}, {7, 1}, {1, 1}, {1, 64}, {0, 4}};
  for (const auto& c : cases) {
    const std::int64_t n = c[0];
    const std::int64_t q = c[1];
    Matrix routed = diagonally_dominant_matrix(n, 33);
    Matrix oracle = routed;
    parallel_lu_factor(routed, q, pool, ctx);
    lu_factor_unblocked(oracle);
    ASSERT_TRUE(factors_match(routed, oracle, kMaxUlp))
        << "n=" << n << " q=" << q;
    // The loop-based overload must accept the same degenerate shapes.
    Matrix looped = diagonally_dominant_matrix(n, 33);
    parallel_lu_factor(looped, q, pool);
    ASSERT_TRUE(factors_match(looped, oracle, kMaxUlp))
        << "loop-based n=" << n << " q=" << q;
  }
}

TEST(LuRoutedShapes, RejectsNonSquareAndBadQ) {
  ThreadPool pool(1);
  KernelContext ctx(1);
  Matrix rect(4, 6);
  EXPECT_THROW(parallel_lu_factor(rect, 2, pool, ctx), Error);
  Matrix square = diagonally_dominant_matrix(4, 1);
  EXPECT_THROW(parallel_lu_factor(square, 0, pool, ctx), Error);
}

TEST(LuRoutedZeroPivot, ThrowsWithoutWedgingThePool) {
  ThreadPool pool(2);
  KernelContext ctx(pool.workers());
  Matrix bad = diagonally_dominant_matrix(24, 5);
  bad.at(0, 0) = 0.0;  // first pivot of the first diagonal factor
  EXPECT_THROW(parallel_lu_factor(bad, 8, pool, ctx), Error);

  // The throw surfaced at the dispatch site; the pool and context must
  // serve the next factorization normally.
  Matrix good = diagonally_dominant_matrix(24, 6);
  Matrix oracle = good;
  parallel_lu_factor(good, 8, pool, ctx);
  lu_factor_unblocked(oracle);
  EXPECT_TRUE(factors_match(good, oracle, kMaxUlp));
}

TEST(LuRoutedTrace, RecordsEveryPhase) {
  ThreadPool pool(2);
  KernelContext ctx(pool.workers());
  ExecutionTracer tracer(pool.workers());
  pool.set_tracer(&tracer);
  ctx.set_tracer(&tracer);
  Matrix a = diagonally_dominant_matrix(64, 9);
  parallel_lu_factor(a, 16, pool, ctx);
  const TraceSummary summary = summarize_trace(tracer);
  PhaseTotals all;
  for (const PhaseTotals& worker : summary.totals) all.merge(worker);
  // The routed factorization must actually execute through the packed
  // engine: pack + micro-kernel spans, plus the LU-only phases.
  EXPECT_GT(all.spans[static_cast<int>(TracePhase::kPackA)], 0);
  EXPECT_GT(all.spans[static_cast<int>(TracePhase::kPackB)], 0);
  EXPECT_GT(all.spans[static_cast<int>(TracePhase::kMicroKernel)], 0);
  EXPECT_GT(all.spans[static_cast<int>(TracePhase::kTrsm)], 0);
  EXPECT_GT(all.spans[static_cast<int>(TracePhase::kFactor)], 0);
}

// ---------------------------------------------------------------------------
// The kc-blocking regression: a tuned k-panel depth must actually block
// the packing and the sweep.

TEST(LuRoutedKcSplit, TunedKcPacksAtDepthKcAndMatchesBitForBit) {
  const std::int64_t m = 8, n = 8, kb = 256, kc = 64;
  Matrix a(m, kb);
  a.fill_random(11);
  Matrix b(kb, n);
  b.fill_random(12);

  // Split path: one block_op over the full k panel with kc installed.
  KernelContext split_ctx(1, KernelPath::kScalar);
  split_ctx.set_kc(kc);
  ExecutionTracer tracer(1);
  split_ctx.set_tracer(&tracer);
  Matrix c_split(m, n, 0.25);
  split_ctx.invalidate();
  split_ctx.block_op(0, c_split, a, b, 0, 0, 0, m, n, kb);
  const TraceSummary summary = summarize_trace(tracer);
  ASSERT_FALSE(summary.totals.empty());
  // One pack-A, pack-B and micro-kernel span PER kc-deep sub-panel: the
  // q = 256 / kc = 64 run demonstrably packs at depth 64, not 256.
  EXPECT_EQ(summary.totals[0].spans[static_cast<int>(TracePhase::kPackA)],
            kb / kc);
  EXPECT_EQ(summary.totals[0].spans[static_cast<int>(TracePhase::kPackB)],
            kb / kc);
  EXPECT_EQ(summary.totals[0].spans[static_cast<int>(TracePhase::kMicroKernel)],
            kb / kc);

  // Reference: an untuned context fed kc-deep panels explicitly.  The
  // split must reproduce it bit-for-bit (same per-coefficient chain).
  KernelContext plain_ctx(1, KernelPath::kScalar);
  Matrix c_plain(m, n, 0.25);
  for (std::int64_t k0 = 0; k0 < kb; k0 += kc) {
    plain_ctx.invalidate();
    plain_ctx.block_op(0, c_plain, a, b, 0, 0, k0, m, n, kc);
  }
  EXPECT_TRUE(bit_identical(c_split, c_plain));
}

TEST(LuRoutedKcSplit, KcAtLeastKbIsUnsplit) {
  const std::int64_t m = 4, n = 4, kb = 32;
  Matrix a(m, kb);
  a.fill_random(21);
  Matrix b(kb, n);
  b.fill_random(22);
  Matrix c_ref(m, n, 0.0);
  KernelContext ref_ctx(1, KernelPath::kScalar);
  ref_ctx.block_op(0, c_ref, a, b, 0, 0, 0, m, n, kb);

  for (const std::int64_t kc : {kb, kb * 2}) {
    KernelContext ctx(1, KernelPath::kScalar);
    ctx.set_kc(kc);
    ExecutionTracer tracer(1);
    ctx.set_tracer(&tracer);
    Matrix c(m, n, 0.0);
    ctx.block_op(0, c, a, b, 0, 0, 0, m, n, kb);
    const TraceSummary summary = summarize_trace(tracer);
    EXPECT_EQ(summary.totals[0].spans[static_cast<int>(TracePhase::kPackA)],
              1)
        << "kc=" << kc;
    EXPECT_TRUE(bit_identical(c, c_ref)) << "kc=" << kc;
  }
}

}  // namespace
}  // namespace mcmm
