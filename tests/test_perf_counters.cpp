// The hard requirement on PerfCounterSession is graceful degradation:
// whatever the host (no PMU, seccomp, paranoid kernel, non-Linux), the
// session constructs, never throws, and degraded reads are flagged zeros.
#include "hw/perf_counters.hpp"

#include <gtest/gtest.h>

#include "gemm/thread_pool.hpp"

namespace mcmm {
namespace {

void expect_zero_sample(const CounterSample& s) {
  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.cycles, 0);
  EXPECT_EQ(s.instructions, 0);
  EXPECT_EQ(s.llc_misses, 0);
  EXPECT_EQ(s.llc_references, 0);
  EXPECT_EQ(s.l1d_misses, 0);
}

TEST(PerfCounters, DisabledSessionIsDegradedWithZeroReads) {
  PerfCounterSession::Options opt;
  opt.enabled = false;
  PerfCounterSession session(opt);
  EXPECT_FALSE(session.counters_available());
  EXPECT_FALSE(session.degradation_reason().empty());
  expect_zero_sample(session.sample());
  session.begin();
  expect_zero_sample(session.end());
}

TEST(PerfCounters, SimulatedDenialDegradesLikeEperm) {
  PerfCounterSession::Options opt;
  opt.simulate_denied = true;
  PerfCounterSession session(opt);
  EXPECT_FALSE(session.counters_available());
  EXPECT_FALSE(session.degradation_reason().empty());
  expect_zero_sample(session.sample());
}

TEST(PerfCounters, DefaultConstructionNeverThrows) {
  // Whether counters open depends on the host; the contract is only that
  // construction and reads are safe either way.
  EXPECT_NO_THROW({
    PerfCounterSession session;
    const CounterSample s = session.sample();
    if (session.counters_available()) {
      EXPECT_TRUE(session.degradation_reason().empty());
      EXPECT_TRUE(s.available);
    } else {
      EXPECT_FALSE(session.degradation_reason().empty());
      expect_zero_sample(s);
    }
  });
}

TEST(PerfCounters, BeginEndBracketsAreMonotoneWhenAvailable) {
  PerfCounterSession session;
  session.begin();
  // Some instructions to count; harmless when degraded.
  volatile double acc = 0;
  for (int i = 0; i < 100000; ++i) acc = acc + static_cast<double>(i);
  const CounterSample d = session.end();
  if (session.counters_available()) {
    EXPECT_TRUE(d.available);
    EXPECT_GE(d.cycles, 0);
    EXPECT_GT(d.instructions, 0);
    EXPECT_GT(d.scale, 0.0);
  } else {
    expect_zero_sample(d);
  }
}

TEST(PerfCounters, SurvivesThreadPoolCreatedAfterSession) {
  // The documented usage order: session first, pool second (inherit).
  PerfCounterSession session;
  ThreadPool pool(2);
  session.begin();
  EXPECT_NO_THROW(session.end());
}

TEST(PerfCounters, DeltaIsComponentWiseAndAvailabilityAnded) {
  CounterSample a;
  a.available = true;
  a.cycles = 100;
  a.instructions = 200;
  a.llc_misses = 10;
  a.llc_references = 40;
  a.l1d_misses = 20;
  CounterSample b = a;
  b.cycles = 175;
  b.instructions = 260;
  b.llc_misses = 13;
  b.llc_references = 52;
  b.l1d_misses = 29;
  const CounterSample d = CounterSample::delta(a, b);
  EXPECT_TRUE(d.available);
  EXPECT_EQ(d.cycles, 75);
  EXPECT_EQ(d.instructions, 60);
  EXPECT_EQ(d.llc_misses, 3);
  EXPECT_EQ(d.llc_references, 12);
  EXPECT_EQ(d.l1d_misses, 9);

  b.available = false;
  EXPECT_FALSE(CounterSample::delta(a, b).available);
}

TEST(PerfCounters, ParanoidLevelIsReadableOrExplicitlyUnknown) {
  const int level = PerfCounterSession::perf_event_paranoid();
  if (level == PerfCounterSession::kUnknownParanoid) {
    SUCCEED();  // masked /proc or non-Linux
  } else {
    EXPECT_GE(level, -1);
    EXPECT_LE(level, 4);
  }
}

}  // namespace
}  // namespace mcmm
