#include "sim/ideal_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mcmm {
namespace {

BlockId blk(std::int64_t i) { return BlockId::c(i, i); }

TEST(IdealCache, LoadReportsFirstLoadOnly) {
  IdealCache c(4);
  EXPECT_TRUE(c.load(blk(1))) << "first load is a miss";
  EXPECT_FALSE(c.load(blk(1))) << "re-load of resident block is a hit";
  EXPECT_TRUE(c.contains(blk(1)));
  EXPECT_EQ(c.size(), 1);
}

TEST(IdealCache, EvictReturnsDirtiness) {
  IdealCache c(4);
  c.load(blk(1));
  c.load(blk(2));
  c.mark_dirty(blk(2));
  EXPECT_FALSE(c.evict(blk(1)));
  EXPECT_TRUE(c.evict(blk(2)));
  EXPECT_EQ(c.size(), 0);
}

TEST(IdealCache, DirtinessResetsOnReload) {
  IdealCache c(2);
  c.load(blk(1));
  c.mark_dirty(blk(1));
  EXPECT_TRUE(c.evict(blk(1)));
  c.load(blk(1));
  EXPECT_FALSE(c.is_dirty(blk(1)));
}

TEST(IdealCache, ContentsListsResidents) {
  IdealCache c(8);
  c.load(blk(3));
  c.load(blk(5));
  auto contents = c.contents();
  std::sort(contents.begin(), contents.end());
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], blk(3));
  EXPECT_EQ(contents[1], blk(5));
}

TEST(IdealCache, FillsExactlyToCapacity) {
  IdealCache c(3);
  EXPECT_TRUE(c.load(blk(1)));
  EXPECT_TRUE(c.load(blk(2)));
  EXPECT_TRUE(c.load(blk(3)));
  EXPECT_EQ(c.size(), 3);
  // A fourth distinct load would abort (capacity violation); re-loading a
  // resident block at full capacity must still be fine.
  EXPECT_FALSE(c.load(blk(2)));
}

TEST(IdealCacheDeath, OverCapacityLoadAborts) {
  IdealCache c(1);
  c.load(blk(1));
  EXPECT_DEATH(c.load(blk(2)), "exceed capacity");
}

TEST(IdealCacheDeath, EvictingAbsentBlockAborts) {
  IdealCache c(1);
  EXPECT_DEATH(c.evict(blk(7)), "non-resident");
}

TEST(IdealCacheDeath, DirtyingAbsentBlockAborts) {
  IdealCache c(1);
  EXPECT_DEATH(c.mark_dirty(blk(7)), "non-resident");
}

}  // namespace
}  // namespace mcmm
