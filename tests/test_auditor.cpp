#include "verify/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "exp/experiment.hpp"
#include "sim/parallel_section.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

MachineConfig small_cfg(int p = 2, std::int64_t cs = 64, std::int64_t cd = 8) {
  MachineConfig c;
  c.p = p;
  c.cs = cs;
  c.cd = cd;
  return c;
}

std::int64_t count(const AuditReport& r, ViolationKind k) {
  return r.count_by_kind[static_cast<int>(k)];
}

// --- seeded violations: the auditor must actually fire --------------------

TEST(InvariantAuditor, FlagsWriteRaceBetweenCoresInOneStep) {
  Machine m(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(m);
  ParallelSection par(m);
  // Both cores write C[0,0] in the same parallel step: a schedule-level
  // race that the paper's partitioned schedules must never produce.
  par.access(0, BlockId::c(0, 0), Rw::kWrite);
  par.access(1, BlockId::c(0, 0), Rw::kWrite);
  par.run();
  const AuditReport& r = auditor.report();
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(count(r, ViolationKind::kWriteRace), 1);
  ASSERT_FALSE(r.violations.empty());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.kind, ViolationKind::kWriteRace);
  EXPECT_EQ(v.step, 0);
  EXPECT_EQ(v.block, BlockId::c(0, 0));
  EXPECT_NE(v.str().find("write-race"), std::string::npos);
}

TEST(InvariantAuditor, SameCoreRewritingABlockIsNotARace) {
  Machine m(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(m);
  ParallelSection par(m);
  par.access(0, BlockId::c(0, 0), Rw::kWrite);
  par.access(0, BlockId::c(0, 0), Rw::kWrite);
  par.access(1, BlockId::c(1, 1), Rw::kWrite);
  par.run();
  EXPECT_TRUE(auditor.report().clean());
}

TEST(InvariantAuditor, ConcurrentReadsAreNotARace) {
  Machine m(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(m);
  ParallelSection par(m);
  par.access(0, BlockId::a(0, 0), Rw::kRead);
  par.access(1, BlockId::a(0, 0), Rw::kRead);
  par.run();
  EXPECT_TRUE(auditor.report().clean());
}

TEST(InvariantAuditor, WritesToSameBlockInDifferentStepsAreNotARace) {
  Machine m(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(m);
  ParallelSection par(m);
  par.access(0, BlockId::c(0, 0), Rw::kWrite);
  par.run();
  par.access(1, BlockId::c(0, 0), Rw::kWrite);
  par.run();
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_EQ(auditor.report().steps, 2);
}

TEST(InvariantAuditor, FlagsSharedCapacityOverflowAgainstTightenedLimit) {
  // The physical machine enforces its own CS; an over-capacity *config* is
  // seeded by auditing against a tighter declared limit than the schedule
  // actually uses.
  Machine m(small_cfg(1, /*cs=*/64, /*cd=*/8), Policy::kLru);
  AuditLimits limits;
  limits.cs = 2;
  InvariantAuditor auditor(m, limits);
  for (std::int64_t j = 0; j < 4; ++j) {
    m.access(0, BlockId::a(0, j), Rw::kRead);
  }
  const AuditReport& r = auditor.report();
  EXPECT_FALSE(r.clean());
  EXPECT_GE(count(r, ViolationKind::kSharedCapacity), 1);
}

TEST(InvariantAuditor, FlagsDistributedCapacityOverflowAgainstTightenedLimit) {
  Machine m(small_cfg(2, /*cs=*/64, /*cd=*/8), Policy::kLru);
  AuditLimits limits;
  limits.cd = 2;
  InvariantAuditor auditor(m, limits);
  for (std::int64_t j = 0; j < 5; ++j) {
    m.access(1, BlockId::b(j, 0), Rw::kRead);
  }
  const AuditReport& r = auditor.report();
  EXPECT_FALSE(r.clean());
  EXPECT_GE(count(r, ViolationKind::kDistributedCapacity), 1);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().core, 1);
}

TEST(InvariantAuditor, CapacityViolationIsEdgeTriggeredPerExcursion) {
  Machine m(small_cfg(1, 64, 8), Policy::kLru);
  AuditLimits limits;
  limits.cs = 2;
  InvariantAuditor auditor(m, limits);
  // One long excursion above the limit: many accesses, one violation.
  for (std::int64_t j = 0; j < 16; ++j) {
    m.access(0, BlockId::a(0, j), Rw::kRead);
  }
  EXPECT_EQ(count(auditor.report(), ViolationKind::kSharedCapacity), 1);
}

// --- clean schedules: zero violations on the paper's configurations ------

class CleanSchedules
    : public ::testing::TestWithParam<std::tuple<std::string, Setting>> {};

TEST_P(CleanSchedules, DefaultMachineAuditsClean) {
  const auto& [name, setting] = GetParam();
  const Problem prob{12, 12, 12};
  AuditReport report;
  run_audited_experiment(name, prob, paper_quadcore(), setting, &report);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.steps, 0) << "schedule never entered a parallel step";
  EXPECT_EQ(report.accesses, 3 * prob.fmas());
  EXPECT_TRUE(report.bounds_checked);
  EXPECT_GE(static_cast<double>(report.ms_measured), report.ms_bound);
  EXPECT_GE(static_cast<double>(report.md_measured), report.md_bound);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchedules, CleanSchedules,
    ::testing::Combine(::testing::Values("shared-opt", "distributed-opt",
                                         "tradeoff"),
                       ::testing::Values(Setting::kIdeal, Setting::kLru50,
                                         Setting::kLruFull)),
    [](const ::testing::TestParamInfo<CleanSchedules::ParamType>& p_info) {
      std::string n = std::get<0>(p_info.param) + "_" +
                      to_string(std::get<1>(p_info.param));
      for (char& c : n) {
        if (c == '-' || c == '(' || c == ')') c = '_';
      }
      return n;
    });

TEST(InvariantAuditor, AllExtendedAlgorithmsAuditCleanUnderLru50) {
  for (const std::string& name : extended_algorithm_names()) {
    AuditReport report;
    run_audited_experiment(name, Problem{8, 8, 8}, paper_quadcore(),
                           Setting::kLru50, &report);
    EXPECT_TRUE(report.clean()) << name << ": " << report.summary();
  }
}

// --- trace replay audit ---------------------------------------------------

TEST(InvariantAuditor, RecordedTraceReplaysWithStepProvenance) {
  const Problem prob{6, 6, 6};
  AuditReport report;
  Trace trace;
  run_audited_experiment("tradeoff", prob, paper_quadcore(), Setting::kLru50,
                         &report, &trace);
  ASSERT_TRUE(report.clean()) << report.summary();
  const TraceStats ts = trace.stats();
  EXPECT_EQ(ts.steps, report.steps);
  EXPECT_EQ(ts.accesses, report.accesses);

  // Replaying the recorded stream must audit clean too, with the same step
  // structure driving the write-race detector.
  Machine machine(paper_quadcore(), Policy::kLru);
  InvariantAuditor auditor(machine);
  trace.replay(machine);
  machine.flush();
  auditor.finalize_without_bounds();
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
  EXPECT_EQ(auditor.report().steps, report.steps);
}

TEST(InvariantAuditor, RacyTraceIsFlaggedOnReplay) {
  Trace trace;
  trace.append_step_begin();
  trace.append(0, BlockId::c(0, 0), Rw::kWrite);
  trace.append(1, BlockId::c(0, 0), Rw::kWrite);
  trace.append_step_end();

  Machine machine(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(machine);
  trace.replay(machine);
  EXPECT_EQ(count(auditor.report(), ViolationKind::kWriteRace), 1);
}

TEST(InvariantAuditor, ReportSummaryListsKindsAndProvenance) {
  Machine m(small_cfg(), Policy::kLru);
  InvariantAuditor auditor(m);
  ParallelSection par(m);
  par.access(0, BlockId::c(3, 4), Rw::kWrite);
  par.access(1, BlockId::c(3, 4), Rw::kWrite);
  par.run();
  const std::string s = auditor.report().summary();
  EXPECT_NE(s.find("write-race"), std::string::npos) << s;
  EXPECT_NE(s.find("C[3,4]"), std::string::npos) << s;
  EXPECT_NE(s.find("step 0"), std::string::npos) << s;
}

TEST(InvariantAuditor, HooksDoNotPerturbMissCounts) {
  const Problem prob{10, 10, 10};
  const RunResult plain =
      run_experiment("tradeoff", prob, paper_quadcore(), Setting::kLru50);
  AuditReport report;
  const RunResult audited = run_audited_experiment(
      "tradeoff", prob, paper_quadcore(), Setting::kLru50, &report);
  EXPECT_EQ(plain.ms, audited.ms);
  EXPECT_EQ(plain.md, audited.md);
  EXPECT_EQ(plain.stats.writebacks_to_memory,
            audited.stats.writebacks_to_memory);
}

}  // namespace
}  // namespace mcmm
