// Topology detection against fixture sysfs trees, plus the machine-profile
// JSON round trip (byte-stable, as machine_profile.hpp promises).
#include "hw/topology.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hw/affinity.hpp"
#include "hw/machine_profile.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace mcmm {
namespace {

namespace fs = std::filesystem;

/// Builds a sysfs cache tree under a fresh temp dir, removed on teardown.
class SysfsFixture : public ::testing::Test {
protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("mcmm_hw_topo_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text << "\n";
    ASSERT_TRUE(out.good()) << path;
  }

  /// One cache index dir with the usual five files; pass "" to omit a file.
  void add_index(int cpu, int index, const std::string& level,
                 const std::string& type, const std::string& size,
                 const std::string& shared_list,
                 const std::string& shared_map = "") {
    const std::string dir = "cpu" + std::to_string(cpu) + "/cache/index" +
                            std::to_string(index) + "/";
    write(dir + "level", level);
    write(dir + "type", type);
    if (!size.empty()) write(dir + "size", size);
    if (!shared_list.empty()) write(dir + "shared_cpu_list", shared_list);
    if (!shared_map.empty()) write(dir + "shared_cpu_map", shared_map);
    write(dir + "coherency_line_size", "64");
  }

  fs::path root_;
};

TEST(ParseCacheSize, AcceptsSysfsForms) {
  EXPECT_EQ(parse_cache_size("32K"), 32 << 10);
  EXPECT_EQ(parse_cache_size("256k"), 256 << 10);
  EXPECT_EQ(parse_cache_size("8M"), 8 << 20);
  EXPECT_EQ(parse_cache_size("1G"), std::int64_t{1} << 30);
  EXPECT_EQ(parse_cache_size("12582912"), 12582912);
  EXPECT_EQ(parse_cache_size("0"), 0);
}

TEST(ParseCacheSize, RejectsMalformedInput) {
  EXPECT_THROW(parse_cache_size(""), Error);
  EXPECT_THROW(parse_cache_size("abc"), Error);
  EXPECT_THROW(parse_cache_size("32KB"), Error);
  EXPECT_THROW(parse_cache_size("32Q"), Error);
  EXPECT_THROW(parse_cache_size("-4K"), Error);
}

TEST(CountCpuList, AcceptsSysfsForms) {
  EXPECT_EQ(count_cpu_list("7"), 1);
  EXPECT_EQ(count_cpu_list("0-3"), 4);
  EXPECT_EQ(count_cpu_list("0,4-5"), 3);
  EXPECT_EQ(count_cpu_list("0-1,4-5,9"), 5);
}

TEST(CountCpuList, RejectsMalformedInput) {
  EXPECT_THROW(count_cpu_list(""), Error);
  EXPECT_THROW(count_cpu_list("a-b"), Error);
  EXPECT_THROW(count_cpu_list("3-1"), Error);
  EXPECT_THROW(count_cpu_list("1-"), Error);
}

TEST(CountCpuMask, CountsSetBitsAcrossWords) {
  EXPECT_EQ(count_cpu_mask("ff"), 8);
  EXPECT_EQ(count_cpu_mask("0000000f"), 4);
  EXPECT_EQ(count_cpu_mask("FF00"), 8);
  EXPECT_EQ(count_cpu_mask("ffffffff,00000003"), 34);
}

TEST(CountCpuMask, RejectsMalformedInput) {
  EXPECT_THROW(count_cpu_mask(""), Error);
  EXPECT_THROW(count_cpu_mask(","), Error);
  EXPECT_THROW(count_cpu_mask("xyz"), Error);
}

TEST(ParseCpuList, ExpandsRangesSortedAndDeduplicated) {
  EXPECT_EQ(parse_cpu_list("7"), (std::vector<int>{7}));
  EXPECT_EQ(parse_cpu_list("0,4"), (std::vector<int>{0, 4}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("4-5,0,4"), (std::vector<int>{0, 4, 5}));
}

TEST(ParseCpuList, RejectsMalformedInput) {
  EXPECT_THROW(parse_cpu_list(""), Error);
  EXPECT_THROW(parse_cpu_list("a-b"), Error);
  EXPECT_THROW(parse_cpu_list("3-1"), Error);
  EXPECT_THROW(parse_cpu_list("1-"), Error);
}

TEST(ParseCpuMask, ReadsHexWordsMostSignificantFirst) {
  EXPECT_EQ(parse_cpu_mask("3"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_mask("11"), (std::vector<int>{0, 4}));
  EXPECT_EQ(parse_cpu_mask("F0"), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(parse_cpu_mask("00000001,00000000,00000000"),
            (std::vector<int>{64}));
}

TEST(ParseCpuMask, RejectsMalformedInput) {
  EXPECT_THROW(parse_cpu_mask(""), Error);
  EXPECT_THROW(parse_cpu_mask(","), Error);
  EXPECT_THROW(parse_cpu_mask("xyz"), Error);
}

TEST_F(SysfsFixture, SharedL3PrivateL2QuadCore) {
  for (int cpu = 0; cpu < 4; ++cpu) {
    const std::string self = std::to_string(cpu);
    add_index(cpu, 0, "1", "Data", "32K", self);
    add_index(cpu, 1, "1", "Instruction", "32K", self);
    add_index(cpu, 2, "2", "Unified", "256K", self);
    add_index(cpu, 3, "3", "Unified", "8192K", "0-3");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.source, "sysfs");
  EXPECT_TRUE(topo.detected());
  EXPECT_EQ(topo.logical_cpus, 4);
  EXPECT_EQ(topo.line_bytes, 64);
  EXPECT_EQ(topo.l1d_bytes, 32 << 10);
  EXPECT_EQ(topo.l2_bytes, 256 << 10);
  EXPECT_EQ(topo.l2_shared_by, 1);
  EXPECT_EQ(topo.l3_bytes, 8 << 20);
  EXPECT_EQ(topo.l3_shared_by, 4);
  EXPECT_EQ(topo.shared_cache_bytes(), 8 << 20);
  EXPECT_EQ(topo.private_cache_bytes(), 256 << 10);
}

TEST_F(SysfsFixture, HybridSharingTakesTheWidestDegree) {
  // Two SMT P-cores (L2 shared by 2) plus a 4-wide E-cluster L2: the
  // capacity-pressure worst case is the cluster, so l2_shared_by == 4.
  for (int cpu = 0; cpu < 4; ++cpu) {
    add_index(cpu, 0, "1", "Data", "48K", std::to_string(cpu));
    add_index(cpu, 1, "2", "Unified", "1024K", cpu < 2 ? "0-1" : "2-3");
    add_index(cpu, 2, "3", "Unified", "12M", "0-7");
  }
  for (int cpu = 4; cpu < 8; ++cpu) {
    add_index(cpu, 0, "1", "Data", "32K", std::to_string(cpu));
    add_index(cpu, 1, "2", "Unified", "2M", "4-7");
    add_index(cpu, 2, "3", "Unified", "12M", "0-7");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.logical_cpus, 8);
  EXPECT_EQ(topo.l1d_bytes, 48 << 10);       // largest instance wins
  EXPECT_EQ(topo.l2_bytes, 2 << 20);
  EXPECT_EQ(topo.l2_shared_by, 4);
  EXPECT_EQ(topo.l3_bytes, 12 << 20);
  EXPECT_EQ(topo.l3_shared_by, 8);
}

TEST_F(SysfsFixture, SharedCpuMapFallbackWhenListMissing) {
  // No shared_cpu_list anywhere: sharing degrees come from the hex masks.
  for (int cpu = 0; cpu < 2; ++cpu) {
    add_index(cpu, 0, "1", "Data", "32K", "", cpu == 0 ? "1" : "2");
    add_index(cpu, 1, "2", "Unified", "512K", "", "3");
    add_index(cpu, 2, "3", "Unified", "4M", "", "ffffffff,00000003");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.source, "sysfs");
  EXPECT_EQ(topo.l2_shared_by, 2);
  EXPECT_EQ(topo.l3_shared_by, 34);
}

TEST_F(SysfsFixture, MalformedIndexIsSkippedNotFatal) {
  add_index(0, 0, "1", "Data", "garbage", "0");  // bad size -> skipped
  add_index(0, 1, "2", "Unified", "256K", "0");
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.source, "sysfs");
  EXPECT_EQ(topo.l1d_bytes, 0);                  // nothing valid at L1
  EXPECT_EQ(topo.l2_bytes, 256 << 10);
}

TEST_F(SysfsFixture, CpuDirsWithoutCachesFallBack) {
  fs::create_directories(root_ / "cpu0");
  fs::create_directories(root_ / "cpu1");
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.source, "fallback");
  EXPECT_FALSE(topo.detected());
}

TEST(Topology, MissingTreeNeverThrows) {
  const HostTopology topo =
      detect_host_topology("/nonexistent/mcmm/sysfs/root");
  EXPECT_EQ(topo.source, "fallback");
  EXPECT_GE(topo.logical_cpus, 1);
  EXPECT_EQ(topo.l2_bytes, 256 << 10);   // paper's quad-core defaults
  EXPECT_EQ(topo.l3_bytes, 8 << 20);
  EXPECT_EQ(topo.shared_cache_bytes(), topo.l3_bytes);
  EXPECT_EQ(topo.private_cache_bytes(), topo.l2_bytes);
}

MachineProfile reference_profile() {
  MachineProfile profile;
  profile.topology.logical_cpus = 8;
  profile.topology.line_bytes = 64;
  profile.topology.l1d_bytes = 48 << 10;
  profile.topology.l2_bytes = 1 << 20;
  profile.topology.l2_shared_by = 2;
  profile.topology.l3_bytes = 16 << 20;
  profile.topology.l3_shared_by = 8;
  profile.topology.source = "sysfs";
  profile.bandwidth.measured = true;
  profile.bandwidth.mem_gbs = 23.456789012345671;
  profile.bandwidth.llc_gbs = 87.654321098765432;
  profile.bandwidth.mem_buffer_bytes = 256 << 20;
  profile.bandwidth.llc_buffer_bytes = 8 << 20;
  profile.counters_available = true;
  profile.perf_event_paranoid = 2;
  profile.q = 32;
  profile.data_fraction = 2.0 / 3.0;
  return profile;
}

TEST(MachineProfile, JsonRoundTripIsByteStable) {
  const MachineProfile profile = reference_profile();
  const std::string text = machine_profile_to_json(profile);
  // Writer -> parser -> writer is the identity...
  EXPECT_EQ(machine_profile_to_json(machine_profile_from_json(text)), text);
  // ...and so is the generic order-preserving JSON layer underneath.
  EXPECT_EQ(json_serialize(json_parse(text)), text);
}

TEST(MachineProfile, RoundTripPreservesMeasuredFields) {
  const MachineProfile a = reference_profile();
  const MachineProfile b =
      machine_profile_from_json(machine_profile_to_json(a));
  EXPECT_EQ(b.topology.logical_cpus, a.topology.logical_cpus);
  EXPECT_EQ(b.topology.l2_shared_by, a.topology.l2_shared_by);
  EXPECT_EQ(b.topology.l3_bytes, a.topology.l3_bytes);
  EXPECT_EQ(b.topology.source, a.topology.source);
  EXPECT_EQ(b.bandwidth.measured, a.bandwidth.measured);
  EXPECT_DOUBLE_EQ(b.bandwidth.mem_gbs, a.bandwidth.mem_gbs);
  EXPECT_DOUBLE_EQ(b.bandwidth.llc_gbs, a.bandwidth.llc_gbs);
  EXPECT_EQ(b.counters_available, a.counters_available);
  EXPECT_EQ(b.perf_event_paranoid, a.perf_event_paranoid);
  EXPECT_EQ(b.q, a.q);
  EXPECT_DOUBLE_EQ(b.data_fraction, a.data_fraction);
}

TEST(MachineProfile, DerivesModelFromTopology) {
  const MachineProfile profile = reference_profile();
  const MachineConfig cfg = profile.machine_config();
  // 8 logical CPUs over SMT-paired L2s -> 4 private-cache domains.
  EXPECT_EQ(cfg.p, 4);
  const std::int64_t block_bytes = 32 * 32 * 8;
  EXPECT_EQ(cfg.cs, (16 << 20) / block_bytes);  // whole shared cache
  EXPECT_EQ(cfg.cd,
            static_cast<std::int64_t>((1 << 20) * (2.0 / 3.0)) / block_bytes);
  // Measured asymmetric bandwidths, normalised to sigma_s + sigma_d == 2.
  EXPECT_NEAR(cfg.sigma_s + cfg.sigma_d, 2.0, 1e-12);
  EXPECT_LT(cfg.sigma_s, cfg.sigma_d);  // mem is slower than LLC here
  const Tiling t = profile.tiling();
  EXPECT_EQ(t.q, 32);
  EXPECT_GE(t.lambda, 1);
  EXPECT_GE(t.mu, 1);
}

MachineProfile tuned_profile() {
  MachineProfile profile = reference_profile();
  profile.kernel_tuning.tuned = true;
  profile.kernel_tuning.kernel = "avx2-fma-4x8";
  profile.kernel_tuning.kc = 64;
  profile.kernel_tuning.prefetch_a = 2;
  profile.kernel_tuning.prefetch_b = 4;
  profile.kernel_tuning.pack_prefetch = 1;
  profile.kernel_tuning.stream_stores = true;
  profile.kernel_tuning.gflops = 24.517283946172839;
  return profile;
}

TEST(MachineProfile, KernelTuningRoundTripIsByteStable) {
  const MachineProfile profile = tuned_profile();
  const std::string text = machine_profile_to_json(profile);
  EXPECT_NE(text.find("\"kernel_tuning\""), std::string::npos);
  EXPECT_EQ(machine_profile_to_json(machine_profile_from_json(text)), text);
  EXPECT_EQ(json_serialize(json_parse(text)), text);
}

TEST(MachineProfile, KernelTuningFieldsSurviveTheRoundTrip) {
  const MachineProfile a = tuned_profile();
  const MachineProfile b =
      machine_profile_from_json(machine_profile_to_json(a));
  EXPECT_TRUE(b.kernel_tuning.tuned);
  EXPECT_EQ(b.kernel_tuning.kernel, a.kernel_tuning.kernel);
  EXPECT_EQ(b.kernel_tuning.kc, a.kernel_tuning.kc);
  EXPECT_EQ(b.kernel_tuning.prefetch_a, a.kernel_tuning.prefetch_a);
  EXPECT_EQ(b.kernel_tuning.prefetch_b, a.kernel_tuning.prefetch_b);
  EXPECT_EQ(b.kernel_tuning.pack_prefetch, a.kernel_tuning.pack_prefetch);
  EXPECT_EQ(b.kernel_tuning.stream_stores, a.kernel_tuning.stream_stores);
  EXPECT_DOUBLE_EQ(b.kernel_tuning.gflops, a.kernel_tuning.gflops);
}

TEST(MachineProfile, UntunedProfileOmitsKernelTuning) {
  const std::string text = machine_profile_to_json(reference_profile());
  EXPECT_EQ(text.find("kernel_tuning"), std::string::npos);
  EXPECT_FALSE(machine_profile_from_json(text).kernel_tuning.tuned);
}

TEST(MachineProfile, TuningKcOverridesTheExecutionTiling) {
  MachineProfile profile = tuned_profile();
  profile.kernel_tuning.kc = 16;  // tuned depth differs from model q=32
  const Tiling t = profile.tiling();
  EXPECT_EQ(t.q, 16);
  EXPECT_GE(t.lambda, 1);
  // The *model* geometry stays at the declared q.
  EXPECT_EQ(profile.machine_config().cs,
            (16 << 20) / (32 * 32 * 8));
}

TEST(MachineProfile, RejectsForeignOrMalformedDocuments) {
  EXPECT_THROW(machine_profile_from_json("not json"), Error);
  EXPECT_THROW(machine_profile_from_json("[1,2]"), Error);
  EXPECT_THROW(machine_profile_from_json("{\"schema\":\"other-v9\"}"), Error);
  // Valid schema but a missing subtree.
  EXPECT_THROW(
      machine_profile_from_json("{\"schema\":\"mcmm-machine-v1\"}"), Error);
  // Wrong type for a field.
  std::string text = machine_profile_to_json(reference_profile());
  const std::string needle = "\"logical_cpus\":8";
  text.replace(text.find(needle), needle.size(), "\"logical_cpus\":\"8\"");
  EXPECT_THROW(machine_profile_from_json(text), Error);
}

TEST(MachineProfile, RejectsMalformedKernelTuning) {
  std::string text = machine_profile_to_json(tuned_profile());
  const std::string needle = "\"kc\":64";
  ASSERT_NE(text.find(needle), std::string::npos);
  std::string bad = text;
  bad.replace(bad.find(needle), needle.size(), "\"kc\":0");
  EXPECT_THROW(machine_profile_from_json(bad), Error);
  bad = text;
  const std::string kname = "\"kernel\":\"avx2-fma-4x8\"";
  ASSERT_NE(bad.find(kname), std::string::npos);
  bad.replace(bad.find(kname), kname.size(), "\"kernel\":\"\"");
  EXPECT_THROW(machine_profile_from_json(bad), Error);
}

TEST(MachineProfile, LoadRejectsMissingFile) {
  EXPECT_THROW(load_machine_profile("/nonexistent/machine.json"), Error);
}

TEST(MachineProfile, SaveLoadRoundTripsThroughDisk) {
  const fs::path path =
      fs::temp_directory_path() / "mcmm_hw_profile_roundtrip.json";
  const MachineProfile a = reference_profile();
  save_machine_profile(a, path.string());
  const MachineProfile b = load_machine_profile(path.string());
  EXPECT_EQ(machine_profile_to_json(b), machine_profile_to_json(a));
  fs::remove(path);
}

// Per-CPU L2 domain detection (the affinity bugfix): domain ids come from
// the canonicalised sharing sets, not from CPU numbering assumptions.

TEST_F(SysfsFixture, SplitSiblingSmtBuildsL2Domains) {
  // Split-sibling SMT numbering (siblings i and i+4 share an L2): the old
  // stride heuristic assumed contiguous siblings and would pick cpus
  // {0,2,4,6} for four workers — but 0 and 4 are the SAME physical core.
  for (int cpu = 0; cpu < 8; ++cpu) {
    const int core = cpu % 4;
    const std::string pair =
        std::to_string(core) + "," + std::to_string(core + 4);
    add_index(cpu, 0, "1", "Data", "32K", std::to_string(cpu));
    add_index(cpu, 1, "2", "Unified", "1024K", pair);
    add_index(cpu, 2, "3", "Unified", "16M", "0-7");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_EQ(topo.l2_shared_by, 2);
  ASSERT_EQ(topo.l2_domain, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  // One worker per physical core: four distinct domains, no siblings.
  EXPECT_EQ(affinity_cpus(topo, 4), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(affinity_cpus(topo, 8),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(SysfsFixture, ContiguousSiblingDomainsMatchTheStrideHeuristic) {
  for (int cpu = 0; cpu < 8; ++cpu) {
    const int base = (cpu / 2) * 2;
    const std::string pair =
        std::to_string(base) + "-" + std::to_string(base + 1);
    add_index(cpu, 0, "1", "Data", "32K", std::to_string(cpu));
    add_index(cpu, 1, "2", "Unified", "1024K", pair);
    add_index(cpu, 2, "3", "Unified", "16M", "0-7");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  ASSERT_EQ(topo.l2_domain, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
  EXPECT_EQ(affinity_cpus(topo, 8),
            (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST_F(SysfsFixture, IncompleteL2DomainsFallBackToTheStride) {
  // cpu3 exposes no L2 index: the domain vector would have a hole, so it
  // stays empty and affinity falls back to the stride heuristic.
  for (int cpu = 0; cpu < 4; ++cpu) {
    add_index(cpu, 0, "1", "Data", "32K", std::to_string(cpu));
    if (cpu != 3) {
      add_index(cpu, 1, "2", "Unified", "512K", std::to_string(cpu));
    }
    add_index(cpu, 2, "3", "Unified", "8M", "0-3");
  }
  const HostTopology topo = detect_host_topology(root_.string());
  EXPECT_TRUE(topo.l2_domain.empty());
  EXPECT_EQ(affinity_cpus(topo, 4), (std::vector<int>{0, 1, 2, 3}));
}

// Affinity plans (hw/affinity.hpp): exhaust distinct L2 domains before SMT
// siblings, cycle when workers exceed logical CPUs.

TEST(AffinityCpus, StridesAcrossL2DomainsFirst) {
  HostTopology topo;
  topo.logical_cpus = 8;
  topo.l2_shared_by = 2;  // SMT pairs: (0,1), (2,3), ...
  EXPECT_EQ(affinity_cpus(topo, 8),
            (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
  EXPECT_EQ(affinity_cpus(topo, 3), (std::vector<int>{0, 2, 4}));
}

TEST(AffinityCpus, PrivateL2IsTheIdentityOrder) {
  HostTopology topo;
  topo.logical_cpus = 4;
  topo.l2_shared_by = 1;
  EXPECT_EQ(affinity_cpus(topo, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(AffinityCpus, CyclesWhenWorkersExceedCpus) {
  HostTopology topo;
  topo.logical_cpus = 2;
  topo.l2_shared_by = 1;
  EXPECT_EQ(affinity_cpus(topo, 5), (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(AffinityCpus, OversizedSharingDegreeIsClamped) {
  HostTopology topo;
  topo.logical_cpus = 4;
  topo.l2_shared_by = 16;  // nonsense degree must not produce an empty plan
  const std::vector<int> cpus = affinity_cpus(topo, 4);
  ASSERT_EQ(cpus.size(), 4u);
  for (const int cpu : cpus) {
    EXPECT_GE(cpu, 0);
    EXPECT_LT(cpu, 4);
  }
}

TEST(AffinityCpus, RejectsNonPositiveWorkers) {
  EXPECT_THROW(affinity_cpus(HostTopology{}, 0), Error);
}

TEST(PinPoolToHost, PinsAtMostTheWorkerCount) {
  HostTopology topo = fallback_topology();
  ThreadPool pool(2);
  const int pinned = pin_pool_to_host(pool, topo);
  EXPECT_GE(pinned, 0);
  EXPECT_LE(pinned, pool.workers());
  EXPECT_EQ(pool.pinned_workers(), pinned);
  // The pool must stay fully functional after pinning.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace mcmm
