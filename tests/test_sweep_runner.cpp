// The sweep-parity test layer for the parallel sweep engine: the tables a
// bench prints must be *bit-identical* no matter how many workers ran the
// sweep, the memo cache must account precisely for shared points, and a
// worker exception must surface in the caller.
#include "exp/sweep_runner.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exp/bench_report.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

MachineConfig quadcore_q32() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  return cfg;
}

// A reduced Figure 9 sweep: every algorithm under LRU-50 and IDEAL at two
// orders, plus the Tradeoff-IDEAL overlay the LRU-50 sub-figure repeats.
std::vector<std::size_t> request_fig09(SweepRunner& runner) {
  const MachineConfig cfg = quadcore_q32();
  const std::vector<std::string> algs = {
      "shared-opt",    "distributed-opt", "tradeoff",
      "outer-product", "shared-equal",    "distributed-equal"};
  std::vector<std::size_t> ids;
  for (const Setting setting : {Setting::kLru50, Setting::kIdeal}) {
    for (const std::int64_t order : {8, 16}) {
      for (const auto& alg : algs) {
        ids.push_back(runner.request(
            SweepPoint::square(alg, order, cfg, setting), Metric::kTdata));
      }
      ids.push_back(runner.request(
          SweepPoint::square("tradeoff", order, cfg, Setting::kIdeal),
          Metric::kTdata));
    }
  }
  return ids;
}

BenchReport report_of(const SweepRunner& runner) {
  BenchReport report("fig09-parity");
  for (std::size_t sim = 0; sim < runner.num_simulations(); ++sim) {
    const RunResult& res = runner.result(sim);
    report.add_point(runner.simulation(sim), static_cast<double>(res.ms),
                     static_cast<double>(res.md), res.tdata,
                     runner.wall_ms(sim));
  }
  report.set_requests(runner.num_requests(), runner.cache_hits());
  return report;
}

TEST(SweepRunner, ParallelRunIsBitIdenticalToSerial) {
  SweepRunner serial(1);
  const std::vector<std::size_t> serial_ids = request_fig09(serial);
  serial.run();

  SweepRunner parallel(8);
  const std::vector<std::size_t> parallel_ids = request_fig09(parallel);
  parallel.run();

  // Identical request streams get identical slot ids...
  ASSERT_EQ(serial_ids, parallel_ids);
  // ...and every slot holds the exact same bits.
  for (const std::size_t id : serial_ids) {
    EXPECT_EQ(serial.value(id), parallel.value(id)) << "request " << id;
  }
  // The deterministic JSON subtree is byte-identical too (wall times live
  // in the "timing" subtree, which is deliberately excluded).
  EXPECT_EQ(report_of(serial).results_json(),
            report_of(parallel).results_json());
}

TEST(SweepRunner, MemoCacheAccounting) {
  SweepRunner runner(2);
  const SweepPoint point =
      SweepPoint::square("shared-opt", 8, quadcore_q32(), Setting::kIdeal);

  const std::size_t ms_id = runner.request(point, Metric::kMs);
  const std::size_t md_id = runner.request(point, Metric::kMd);
  // Two metrics of one point: one simulation, the second request hits.
  EXPECT_NE(ms_id, md_id);
  EXPECT_EQ(runner.num_simulations(), 1u);
  EXPECT_EQ(runner.num_requests(), 2u);
  EXPECT_EQ(runner.cache_hits(), 1u);

  // Exact duplicate: same slot id, another hit, still one simulation.
  EXPECT_EQ(runner.request(point, Metric::kMs), ms_id);
  EXPECT_EQ(runner.num_simulations(), 1u);
  EXPECT_EQ(runner.num_requests(), 3u);
  EXPECT_EQ(runner.cache_hits(), 2u);

  runner.run();
  EXPECT_GT(runner.value(ms_id), 0);
  EXPECT_GT(runner.value(md_id), 0);
}

TEST(SweepRunner, SharedPointsSimulateOnceAcrossTheFig09Sweep) {
  SweepRunner runner(4);
  request_fig09(runner);
  // 6 algorithms x 2 settings x 2 orders = 24 distinct points; the overlay
  // and the IDEAL sub-figure's tradeoff rows are memo hits.
  EXPECT_EQ(runner.num_simulations(), 24u);
  EXPECT_EQ(runner.num_requests(), 28u);
  EXPECT_EQ(runner.cache_hits(), 4u);
}

TEST(SweepRunner, WorkerExceptionPropagates) {
  for (const int jobs : {1, 8}) {
    SweepRunner runner(jobs);
    runner.request(SweepPoint::square("no-such-algorithm", 8, quadcore_q32(),
                                      Setting::kLru50),
                   Metric::kMs);
    EXPECT_THROW(runner.run(), Error) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, MemoPersistsAcrossRuns) {
  SweepRunner runner(2);
  const MachineConfig cfg = quadcore_q32();
  const std::size_t first = runner.request(
      SweepPoint::square("shared-opt", 8, cfg, Setting::kIdeal), Metric::kMs);
  runner.run();
  const double first_value = runner.value(first);

  const std::size_t second = runner.request(
      SweepPoint::square("tradeoff", 8, cfg, Setting::kIdeal), Metric::kMs);
  runner.run();
  EXPECT_EQ(runner.num_simulations(), 2u);
  EXPECT_EQ(runner.value(first), first_value);
  EXPECT_GT(runner.value(second), 0);
}

TEST(SweepRunner, WallTimesAreFiniteAndNonNegative) {
  SweepRunner runner(4);
  request_fig09(runner);
  runner.run();
  for (std::size_t sim = 0; sim < runner.num_simulations(); ++sim) {
    EXPECT_TRUE(std::isfinite(runner.wall_ms(sim)));
    EXPECT_GE(runner.wall_ms(sim), 0);
  }
  EXPECT_TRUE(std::isfinite(runner.total_wall_ms()));
  EXPECT_GE(runner.total_wall_ms(), 0);
  EXPECT_GE(runner.serial_wall_ms(), 0);
}

TEST(SweepRunner, RejectsNonPositiveJobs) {
  EXPECT_THROW(SweepRunner(0), Error);
  EXPECT_THROW(SweepRunner(-3), Error);
}

TEST(SweepRunner, WallClockAccumulatesEvenWhenARunThrows) {
  // total_wall_ms_ is updated by an RAII guard, so a worker exception must
  // not leave the failed run() unaccounted.
  for (const int jobs : {1, 4}) {
    SweepRunner runner(jobs);
    runner.request(SweepPoint::square("no-such-algorithm", 8, quadcore_q32(),
                                      Setting::kLru50),
                   Metric::kMs);
    EXPECT_THROW(runner.run(), Error);
    EXPECT_GT(runner.total_wall_ms(), 0) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, TracedRunRecordsOneTaskSpanPerSimulation) {
  for (const int jobs : {1, 4}) {
    SweepRunner runner(jobs);
    ExecutionTracer tracer(runner.jobs());
    runner.set_tracer(&tracer);
    request_fig09(runner);
    runner.run();
    const TraceSummary summary = summarize_trace(tracer);
    std::int64_t task_spans = 0;
    for (const PhaseTotals& t : summary.totals) {
      task_spans += t.spans[static_cast<int>(TracePhase::kTask)];
    }
    EXPECT_EQ(task_spans,
              static_cast<std::int64_t>(runner.num_simulations()))
        << "jobs=" << jobs;
    ASSERT_EQ(summary.regions.size(), 1u) << "jobs=" << jobs;
    EXPECT_EQ(summary.regions[0].label, "sweep") << "jobs=" << jobs;
    // Tracing must not perturb the results: still bit-identical to an
    // untraced serial replay.
    SweepRunner untraced(1);
    const std::vector<std::size_t> ids = request_fig09(untraced);
    untraced.run();
    for (const std::size_t id : ids) {
      EXPECT_EQ(runner.value(id), untraced.value(id)) << "request " << id;
    }
  }
}

TEST(SweepRunner, TracerWithTooFewRingsIsRejected) {
  // Enough pending points that run() actually goes parallel (workers are
  // clamped to min(jobs, pending)); two rings cannot hold four workers.
  SweepRunner runner(4);
  ExecutionTracer tracer(2);
  runner.set_tracer(&tracer);
  request_fig09(runner);
  EXPECT_THROW(runner.run(), Error);
}

TEST(SweepRunner, ValueBeforeRunIsAnError) {
  SweepRunner runner(1);
  const std::size_t id = runner.request(
      SweepPoint::square("shared-opt", 8, quadcore_q32(), Setting::kIdeal),
      Metric::kMs);
  EXPECT_THROW(runner.value(id), Error);
  EXPECT_THROW(runner.value(id + 1), Error);
}

}  // namespace
}  // namespace mcmm
