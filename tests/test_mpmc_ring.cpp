// MpmcRing unit and stress tests (real threads).
//
// The deterministic interleaving coverage lives in the model-check suite
// (tests/test_model_check.cpp, scenarios "ring/..."); this file covers the
// production std::atomic instantiation: API edges, FIFO/conservation
// properties, and multi-threaded stress designed to run under TSan (the
// CI tsan job includes this binary) — TSan validates the real memory
// orderings that the model checker validates symbolically.
#include "util/mpmc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(MpmcRing, RejectsBadCapacity) {
  EXPECT_THROW(MpmcRing<int>(0), Error);
  EXPECT_THROW(MpmcRing<int>(3), Error);
  EXPECT_THROW(MpmcRing<int>(100), Error);
  EXPECT_NO_THROW(MpmcRing<int>(1));
  EXPECT_NO_THROW(MpmcRing<int>(2));
  EXPECT_NO_THROW(MpmcRing<int>(64));
}

// Capacity 1 is the degenerate single-slot ring (mask_ == 0): full after
// one push, empty after one pop, and the slot must re-arm on every lap.
TEST(MpmcRing, CapacityOneFullEmptyCycling) {
  MpmcRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  int v = -1;
  EXPECT_FALSE(ring.try_pop(v)) << "fresh ring must be empty";
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(ring.try_push(lap));
    EXPECT_FALSE(ring.try_push(lap)) << "capacity-1 ring full after one push";
    EXPECT_EQ(ring.size_estimate(), 1u);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, lap);
    EXPECT_FALSE(ring.try_pop(v)) << "capacity-1 ring empty after one pop";
    EXPECT_EQ(ring.size_estimate(), 0u);
  }
}

TEST(MpmcRing, FifoSingleThread) {
  MpmcRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "full ring must reject";
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v)) << "empty ring must reject";
}

TEST(MpmcRing, WrapsAroundManyLaps) {
  MpmcRing<int> ring(2);
  int v = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(ring.try_push(lap));
    ASSERT_TRUE(ring.try_push(lap + 1000000));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, lap);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, lap + 1000000);
  }
}

TEST(MpmcRing, SizeEstimateQuiescent) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.size_estimate(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size_estimate(), 2u);
  int v;
  ring.try_pop(v);
  EXPECT_EQ(ring.size_estimate(), 1u);
}

TEST(MpmcRing, MovesNonTrivialPayloads) {
  MpmcRing<std::vector<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::vector<int>{1, 2, 3}));
  std::vector<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

// Stress: P producers push disjoint value ranges, C consumers drain; every
// value must surface exactly once (conservation), and each producer's
// values must be consumed in its push order (per-producer FIFO follows
// from ticket ordering).  Runs under TSan in CI.
void stress(int producers, int consumers, int per_producer,
            std::size_t capacity) {
  MpmcRing<int> ring(capacity);
  const int total = producers * per_producer;
  std::vector<std::thread> threads;
  std::vector<std::vector<int>> consumed(
      static_cast<std::size_t>(consumers));
  std::atomic<int> popped{0};

  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&ring, p, per_producer] {
      for (int i = 0; i < per_producer; ++i) {
        const int value = p * per_producer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&ring, &consumed, &popped, total, c] {
      int v = -1;
      while (popped.load(std::memory_order_relaxed) < total) {
        if (ring.try_pop(v)) {
          consumed[static_cast<std::size_t>(c)].push_back(v);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<int> all;
  for (const auto& c : consumed) all.insert(all.end(), c.begin(), c.end());
  ASSERT_EQ(static_cast<int>(all.size()), total);
  std::vector<int> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < total; ++i) {
    ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i)
        << "value lost or duplicated";
  }
  // Per-producer FIFO within each consumer's stream.
  for (const auto& stream : consumed) {
    std::vector<int> last(static_cast<std::size_t>(producers), -1);
    for (const int v : stream) {
      const auto p = static_cast<std::size_t>(v / per_producer);
      EXPECT_LT(last[p], v % per_producer)
          << "producer " << p << " order inverted";
      last[p] = v % per_producer;
    }
  }
}

TEST(MpmcRingStress, SpscTinyCapacity) { stress(1, 1, 20000, 2); }

TEST(MpmcRingStress, MpmcContended) { stress(4, 4, 5000, 8); }

TEST(MpmcRingStress, ManyProducersOneConsumer) { stress(8, 1, 2000, 16); }

TEST(MpmcRingStress, OneProducerManyConsumers) { stress(1, 8, 16000, 16); }

// Every transfer through a capacity-1 ring serialises on the single
// slot's seq — the hardest wraparound case for the ticket protocol.
TEST(MpmcRingStress, CapacityOneContended) { stress(2, 2, 4000, 1); }

// Producer count == capacity: a burst can claim every slot of one lap
// concurrently, so each producer's CAS lands on a distinct slot and the
// consumers observe a full ring being drained while it refills.
TEST(MpmcRingStress, MultiProducerBurstAtExactCapacity) {
  stress(4, 2, 4000, 4);
  stress(8, 4, 2000, 8);
}

}  // namespace
}  // namespace mcmm
